module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng

type ('s, 'a) t =
  ('s, 'a) Tm_core.Time_automaton.t ->
  's Tm_core.Tstate.t ->
  ('a * Rational.t * Time.t) list ->
  ('a * Rational.t) option

let eager _aut _s moves =
  match moves with
  | [] -> None
  | (a0, lo0, _) :: rest ->
      let act, lo =
        List.fold_left
          (fun (act, lo) (a, l, _) ->
            if Rational.(l < lo) then (a, l) else (act, lo))
          (a0, lo0) rest
      in
      Some (act, lo)

let lazy_ ?prefer:(pref = fun _ -> false) ~cap () =
  (* Actions already fired at the instant currently being processed;
     a preferred action is scheduled before the others at a shared
     instant, but at most once per instant (repeating it forever would
     produce a Zeno run that never lets deadlines force progress). *)
  let fired_at : (Rational.t * int) ref = ref (Rational.zero, 0) in
  fun _aut s moves ->
    match moves with
    | [] -> None
    | _ ->
        (* All windows share the same upper endpoint (min over all Lt);
           the latest legal instant is that global deadline. *)
        let deadline =
          List.fold_left (fun acc (_, _, hi) -> Time.min acc hi)
            Time.infinity moves
        in
        let t =
          match deadline with
          | Time.Fin q -> q
          | Time.Inf ->
              let max_lo =
                List.fold_left
                  (fun acc (_, lo, _) -> Rational.max acc lo)
                  s.Tm_core.Tstate.now moves
              in
              Rational.add max_lo cap
        in
        let candidates =
          List.filter (fun (_, lo, _) -> Rational.(lo <= t)) moves
        in
        let prev_t, prev_pref = !fired_at in
        let pref_budget =
          if Rational.equal prev_t t then prev_pref = 0 else true
        in
        let preferred =
          if pref_budget then
            List.filter (fun (a, _, _) -> pref a) candidates
          else []
        in
        (* Otherwise fire the move released first (waiting longest). *)
        let pick = function
          | [] -> None
          | (a0, lo0, _) :: rest ->
              let act, _ =
                List.fold_left
                  (fun (act, lo) (a, l, _) ->
                    if Rational.(l < lo) then (a, l) else (act, lo))
                  (a0, lo0) rest
              in
              Some act
        in
        (match (pick preferred, pick candidates) with
        | Some act, _ ->
            fired_at :=
              (t, if Rational.equal prev_t t then prev_pref + 1 else 1);
            Some (act, t)
        | None, Some act ->
            fired_at := (t, if Rational.equal prev_t t then prev_pref else 0);
            Some (act, t)
        | None, None ->
            (* Cannot happen for nonempty windows: lo <= hi <= t. *)
            None)

let random ~prng ~denominator ~cap _aut s moves =
  match moves with
  | [] -> None
  | _ ->
      let act, lo, hi = Prng.pick prng moves in
      let hi_capped =
        let cap_abs =
          Rational.add (Rational.max s.Tm_core.Tstate.now lo) cap
        in
        match hi with
        | Time.Fin q -> Rational.min q cap_abs
        | Time.Inf -> cap_abs
      in
      let hi_capped = Rational.max hi_capped lo in
      Some (act, Prng.rational_in prng ~denominator lo hi_capped)

let prefer pred inner aut s moves =
  let preferred = List.filter (fun (a, _, _) -> pred a) moves in
  inner aut s (if preferred = [] then moves else preferred)

let replay ~equal schedule =
  let remaining = ref schedule in
  fun _aut _s moves ->
    match !remaining with
    | [] -> None
    | (act, t) :: rest ->
        let feasible =
          List.exists
            (fun (a, lo, hi) ->
              equal a act && Rational.(lo <= t) && Time.le_q t hi)
            moves
        in
        if feasible then begin
          remaining := rest;
          Some (act, t)
        end
        else None
