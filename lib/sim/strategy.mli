(** Scheduling strategies for simulating [time(A, U)] automata.

    A strategy resolves the two choices the semantics leaves open at
    each step: which enabled action fires next and at which time inside
    its feasible window.  Strategies receive the automaton, the current
    state and the nonempty list of enabled moves with their windows,
    and return the chosen (action, time) — or [None] to stop.

    The [eager]/[lazy_] pair drives executions to the extreme ends of
    every window, which is how the benchmark harness probes whether the
    proved bounds are *tight*; [random] samples the interior. *)

type ('s, 'a) t =
  ('s, 'a) Tm_core.Time_automaton.t ->
  's Tm_core.Tstate.t ->
  ('a * Tm_base.Rational.t * Tm_base.Time.t) list ->
  ('a * Tm_base.Rational.t) option

val eager : ('s, 'a) t
(** Fire the move with the earliest feasible time, at that time. *)

val lazy_ :
  ?prefer:('a -> bool) -> cap:Tm_base.Rational.t -> unit -> ('s, 'a) t
(** The procrastination adversary: wait as long as the deadlines
    permit, then fire at the global deadline [min over conditions of
    Lt] (or [cap] beyond the latest release point when no deadline is
    pending), choosing the move that has been waiting longest.
    [prefer] schedules a preferred action before the others at a shared
    instant — but at most once per instant, so progress is still forced
    (this realizes worst-case event orderings like "idle step, then
    tick, then grant" at the same time point).  Stateful: build a fresh
    strategy per run. *)

val random :
  prng:Tm_base.Prng.t ->
  denominator:int ->
  cap:Tm_base.Rational.t ->
  ('s, 'a) t
(** Pick an enabled move uniformly and a grid time uniformly inside its
    (capped) window.  Deterministic given the generator state. *)

val prefer : ('a -> bool) -> ('s, 'a) t -> ('s, 'a) t
(** Restrict the move list to preferred actions when any is enabled;
    fall back to the full list otherwise. *)

val replay :
  equal:('a -> 'a -> bool) ->
  ('a * Tm_base.Rational.t) list ->
  ('s, 'a) t
(** Replay a recorded timed schedule move by move; stops (returns
    [None]) when the schedule is exhausted or the next recorded move is
    not currently enabled at its recorded time.  Stateful: build a
    fresh strategy per run. *)
