(** Extracting timing measurements from simulated runs.

    The benchmark harness compares the paper's proved bounds against
    envelopes of event times measured over many simulated executions:
    the time of the first occurrence of an action, and the gaps between
    consecutive occurrences. *)

val occurrence_times :
  ('a -> bool) -> ('s, 'a) Tm_timed.Tseq.t -> Tm_base.Rational.t list
(** Times of the moves whose action satisfies the predicate. *)

val first_time :
  ('a -> bool) -> ('s, 'a) Tm_timed.Tseq.t -> Tm_base.Rational.t option

val gaps : Tm_base.Rational.t list -> Tm_base.Rational.t list
(** Differences between consecutive elements. *)

type envelope = {
  count : int;
  min : Tm_base.Rational.t;
  max : Tm_base.Rational.t;
  mean : float;
}

val envelope : Tm_base.Rational.t list -> envelope option
(** [None] on an empty sample. *)

val merge : envelope -> envelope -> envelope
(** Combine the envelopes of two disjoint sample sets: counts add,
    extremes take min/max, and the mean is the sample-count-weighted
    average [(a.mean*a.count + b.mean*b.count) / (a.count + b.count)]
    — so [merge (envelope xs) (envelope ys)] agrees with
    [envelope (xs @ ys)] exactly on [count]/[min]/[max] and up to
    float-summation rounding on [mean].  Commutative. *)

val within : Tm_base.Interval.t -> envelope -> bool
(** Both extremes of the envelope lie inside the interval. *)

val pp_envelope : Format.formatter -> envelope -> unit

val quantile : Tm_base.Rational.t list -> float -> Tm_base.Rational.t option
(** [quantile samples p] for [0 <= p <= 1]: the nearest-rank quantile of
    the sample (exact, no interpolation). [None] on an empty sample. *)

val summary : Tm_base.Rational.t list -> string
(** One-line human summary: count, min, p50, p90, max. *)

type ('s, 'a) ensemble = {
  runs : int;
  seeds_with_events : int;
  first : envelope option;  (** first occurrence per run *)
  gap : envelope option;  (** gaps between consecutive occurrences *)
}

val ensemble :
  ?domains:int ->
  runs:int ->
  steps:int ->
  denominator:int ->
  cap:Tm_base.Rational.t ->
  event:('a -> bool) ->
  ('s, 'a) Tm_core.Time_automaton.t ->
  ('s, 'a) ensemble
(** Run [runs] seeded random simulations and collect the envelopes of
    the first occurrence time and of the inter-occurrence gaps of
    [event] — the measurement loop used throughout the benchmark
    harness and tests, deterministic in the seed range [0..runs-1].
    [domains > 1] dispatches the runs over a pool (via
    {!Simulator.batch}); the ensemble is identical at any domain
    count. *)
