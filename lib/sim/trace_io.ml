module Rational = Tm_base.Rational

let to_string ~show schedule =
  let buf = Buffer.create 256 in
  List.iter
    (fun (act, t) ->
      Buffer.add_string buf (Rational.to_string t);
      Buffer.add_char buf '\t';
      Buffer.add_string buf (show act);
      Buffer.add_char buf '\n')
    schedule;
  Buffer.contents buf

let of_string ~parse s =
  let lines = String.split_on_char '\n' s in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc (lineno + 1) rest
        else begin
          match String.index_opt line '\t' with
          | None -> Error (Printf.sprintf "line %d: missing tab" lineno)
          | Some i -> (
              let tstr = String.sub line 0 i in
              let astr =
                String.sub line (i + 1) (String.length line - i - 1)
              in
              match (Rational.of_string tstr, parse astr) with
              | exception Invalid_argument _ ->
                  Error (Printf.sprintf "line %d: bad time %S" lineno tstr)
              | _, None ->
                  Error (Printf.sprintf "line %d: bad action %S" lineno astr)
              | t, Some act -> go ((act, t) :: acc) (lineno + 1) rest)
        end
  in
  go [] 1 lines

let save ~path ~show schedule =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~show schedule))

let load ~path ~parse =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = in_channel_length ic in
          of_string ~parse (really_input_string ic n))

let schedule_of_seq = Tm_timed.Tseq.timed_schedule
