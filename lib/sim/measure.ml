module Rational = Tm_base.Rational
module Interval = Tm_base.Interval

let occurrence_times pred (seq : ('s, 'a) Tm_timed.Tseq.t) =
  List.filter_map
    (fun ((act, tm), _) -> if pred act then Some tm else None)
    seq.Tm_timed.Tseq.moves

let first_time pred seq =
  match occurrence_times pred seq with [] -> None | t :: _ -> Some t

let gaps = function
  | [] -> []
  | first :: rest ->
      let rec go prev = function
        | [] -> []
        | t :: ts -> Rational.sub t prev :: go t ts
      in
      go first rest

type envelope = {
  count : int;
  min : Rational.t;
  max : Rational.t;
  mean : float;
}

let envelope = function
  | [] -> None
  | t :: ts ->
      let count, mn, mx, sum =
        List.fold_left
          (fun (c, mn, mx, sum) t ->
            (c + 1, Rational.min mn t, Rational.max mx t,
             sum +. Rational.to_float t))
          (1, t, t, Rational.to_float t)
          ts
      in
      Some { count; min = mn; max = mx; mean = sum /. float_of_int count }

let merge a b =
  {
    count = a.count + b.count;
    min = Rational.min a.min b.min;
    max = Rational.max a.max b.max;
    mean =
      ((a.mean *. float_of_int a.count) +. (b.mean *. float_of_int b.count))
      /. float_of_int (a.count + b.count);
  }

let within iv e = Interval.mem e.min iv && Interval.mem e.max iv

let pp_envelope fmt e =
  Format.fprintf fmt "{n=%d; min=%a; max=%a; mean=%.4f}" e.count Rational.pp
    e.min Rational.pp e.max e.mean

let quantile samples p =
  if p < 0.0 || p > 1.0 then invalid_arg "Measure.quantile";
  match List.sort Rational.compare samples with
  | [] -> None
  | sorted ->
      let n = List.length sorted in
      let rank =
        Stdlib.min (n - 1)
          (Stdlib.max 0 (int_of_float (ceil (p *. float_of_int n)) - 1))
      in
      Some (List.nth sorted rank)

let summary samples =
  match envelope samples with
  | None -> "(no samples)"
  | Some e ->
      let q p =
        match quantile samples p with
        | Some v -> Rational.to_string v
        | None -> "-"
      in
      Printf.sprintf "n=%d min=%s p50=%s p90=%s max=%s" e.count
        (Rational.to_string e.min) (q 0.5) (q 0.9)
        (Rational.to_string e.max)

type ('s, 'a) ensemble = {
  runs : int;
  seeds_with_events : int;
  first : envelope option;
  gap : envelope option;
}

let ensemble ?(domains = 1) ~runs ~steps ~denominator ~cap ~event aut =
  (* Run i is seeded with [Prng.create i], exactly as the historical
     sequential loop, so measured envelopes are bit-identical at any
     domain count (and to pre-parallel versions of this library). *)
  let results =
    Simulator.batch ~domains ~runs ~steps
      ~prng:(fun seed -> Tm_base.Prng.create seed)
      ~strategy:(fun prng -> Strategy.random ~prng ~denominator ~cap)
      aut
  in
  let firsts = ref [] and gap_samples = ref [] in
  let seeds_with_events = ref 0 in
  Array.iter
    (fun run ->
      let ts = occurrence_times event (Simulator.project run) in
      if ts <> [] then incr seeds_with_events;
      (match ts with t :: _ -> firsts := t :: !firsts | [] -> ());
      gap_samples := gaps ts @ !gap_samples)
    results;
  {
    runs;
    seeds_with_events = !seeds_with_events;
    first = envelope !firsts;
    gap = envelope !gap_samples;
  }
