module Time_automaton = Tm_core.Time_automaton
module Execution = Tm_ioa.Execution
module Metrics = Tm_obs.Metrics
module Tracing = Tm_obs.Tracing
module Events = Tm_obs.Events
module Json = Tm_obs.Json
module Pool = Tm_par.Pool

type stop_reason = Step_limit | Deadlock | Strategy_stop | Stopped | Watchdog

type ('s, 'a) run = {
  exec : ('s, 'a) Time_automaton.texec;
  reason : stop_reason;
}

(* Instrumentation handles are created once at module initialization;
   each update is a single field write on the hot path. *)
let c_runs = Metrics.counter "sim.runs"
let c_steps = Metrics.counter "sim.steps"
let c_windows = Metrics.counter "sim.feasible_windows"
let c_choices = Metrics.counter "sim.strategy_choices"
let h_delay = Metrics.histogram "sim.step_delay"

let stop_label = function
  | Step_limit -> "step_limit"
  | Deadlock -> "deadlock"
  | Strategy_stop -> "strategy_stop"
  | Stopped -> "stopped"
  | Watchdog -> "watchdog"

let c_stop reason =
  Metrics.counter "sim.stop" ~labels:[ ("reason", stop_label reason) ]

let c_stop_step_limit = c_stop Step_limit
let c_stop_deadlock = c_stop Deadlock
let c_stop_strategy = c_stop Strategy_stop
let c_stop_stopped = c_stop Stopped
let c_stop_watchdog = c_stop Watchdog

let record_stop = function
  | Step_limit -> Metrics.incr c_stop_step_limit
  | Deadlock -> Metrics.incr c_stop_deadlock
  | Strategy_stop -> Metrics.incr c_stop_strategy
  | Stopped -> Metrics.incr c_stop_stopped
  | Watchdog -> Metrics.incr c_stop_watchdog

let simulate_from ?(stop = fun _ -> false) ?deadline_s ~steps ~strategy aut s0
    =
  Metrics.incr c_runs;
  let deadline = Option.map (fun d -> Tracing.now_s () +. d) deadline_s in
  let expired () =
    match deadline with None -> false | Some t -> Tracing.now_s () > t
  in
  let moves_rev = ref [] in
  let rec go s k =
    if stop s then Stopped
    else if k = 0 then Step_limit
    else if expired () then Watchdog
    else
      let enabled = Time_automaton.enabled_moves aut s in
      Metrics.add c_windows (List.length enabled);
      if enabled = [] then Deadlock
      else
        match strategy aut s enabled with
        | None -> Strategy_stop
        | Some (act, tm) -> (
            Metrics.incr c_choices;
            match Time_automaton.fire aut s act tm with
            | [] ->
                invalid_arg
                  "Simulator: strategy chose a move outside its window"
            | s' :: _ ->
                Metrics.incr c_steps;
                Metrics.observe h_delay
                  (Tm_base.Rational.sub tm s.Tm_core.Tstate.now);
                moves_rev := ((act, tm), s') :: !moves_rev;
                go s' (k - 1))
  in
  let reason = Tracing.with_span "sim.simulate" (fun () -> go s0 steps) in
  record_stop reason;
  (* One event per run (not per step): carries the step count, so the
     stream stays bounded at high step budgets.  Safe from the worker
     domains [batch] fans out over. *)
  Events.emit "sim.run"
    [
      ("steps", Json.Int (List.length !moves_rev));
      ("reason", Json.String (stop_label reason));
    ];
  { exec = Execution.of_states s0 (List.rev !moves_rev); reason }

let simulate ?stop ?deadline_s ~steps ~strategy aut =
  match aut.Time_automaton.start with
  | [] -> invalid_arg "Simulator: automaton has no start state"
  | s0 :: _ -> simulate_from ?stop ?deadline_s ~steps ~strategy aut s0

(* Batch fan-out: runs are independent, so they dispatch over the pool
   with one job per run.  Randomness is pinned per run *index* — the
   PRNGs are materialized on the main domain, in run order, before any
   job starts — so run [i] computes the same trajectory whichever
   domain executes it and the result array is identical at any domain
   count (with [domains = 1], identical to a plain sequential loop). *)
let batch ?(domains = 1) ?stop ?deadline_s ~runs ~steps ~prng ~strategy aut =
  if runs < 0 then invalid_arg "Simulator.batch: runs < 0";
  let prngs = Array.init runs prng in
  let out = Array.make runs None in
  Pool.run ~domains (fun p ->
      Pool.parallel_for p ~n:runs (fun ~domain:_ i ->
          out.(i) <-
            Some
              (simulate ?stop ?deadline_s ~steps
                 ~strategy:(strategy prngs.(i))
                 aut)));
  Array.map (function Some r -> r | None -> assert false) out

let project r = Time_automaton.project r.exec

let describe_stop = function
  | Step_limit -> "step limit reached"
  | Deadlock -> "deadlock: no enabled move"
  | Strategy_stop -> "strategy stopped"
  | Stopped -> "stop predicate fired"
  | Watchdog -> "watchdog: wall-clock deadline exceeded"
