module Time_automaton = Tm_core.Time_automaton
module Execution = Tm_ioa.Execution

type stop_reason = Step_limit | Deadlock | Strategy_stop | Stopped

type ('s, 'a) run = {
  exec : ('s, 'a) Time_automaton.texec;
  reason : stop_reason;
}

let simulate_from ?(stop = fun _ -> false) ~steps ~strategy aut s0 =
  let moves_rev = ref [] in
  let rec go s k =
    if stop s then Stopped
    else if k = 0 then Step_limit
    else
      let enabled = Time_automaton.enabled_moves aut s in
      if enabled = [] then Deadlock
      else
        match strategy aut s enabled with
        | None -> Strategy_stop
        | Some (act, tm) -> (
            match Time_automaton.fire aut s act tm with
            | [] ->
                invalid_arg
                  "Simulator: strategy chose a move outside its window"
            | s' :: _ ->
                moves_rev := ((act, tm), s') :: !moves_rev;
                go s' (k - 1))
  in
  let reason = go s0 steps in
  { exec = Execution.of_states s0 (List.rev !moves_rev); reason }

let simulate ?stop ~steps ~strategy aut =
  match aut.Time_automaton.start with
  | [] -> invalid_arg "Simulator: automaton has no start state"
  | s0 :: _ -> simulate_from ?stop ~steps ~strategy aut s0

let project r = Time_automaton.project r.exec
