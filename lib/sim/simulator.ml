module Time_automaton = Tm_core.Time_automaton
module Execution = Tm_ioa.Execution
module Metrics = Tm_obs.Metrics
module Tracing = Tm_obs.Tracing

type stop_reason = Step_limit | Deadlock | Strategy_stop | Stopped

type ('s, 'a) run = {
  exec : ('s, 'a) Time_automaton.texec;
  reason : stop_reason;
}

(* Instrumentation handles are created once at module initialization;
   each update is a single field write on the hot path. *)
let c_runs = Metrics.counter "sim.runs"
let c_steps = Metrics.counter "sim.steps"
let c_windows = Metrics.counter "sim.feasible_windows"
let c_choices = Metrics.counter "sim.strategy_choices"
let h_delay = Metrics.histogram "sim.step_delay"

let c_stop reason =
  Metrics.counter "sim.stop"
    ~labels:
      [
        ( "reason",
          match reason with
          | Step_limit -> "step_limit"
          | Deadlock -> "deadlock"
          | Strategy_stop -> "strategy_stop"
          | Stopped -> "stopped" );
      ]

let c_stop_step_limit = c_stop Step_limit
let c_stop_deadlock = c_stop Deadlock
let c_stop_strategy = c_stop Strategy_stop
let c_stop_stopped = c_stop Stopped

let record_stop = function
  | Step_limit -> Metrics.incr c_stop_step_limit
  | Deadlock -> Metrics.incr c_stop_deadlock
  | Strategy_stop -> Metrics.incr c_stop_strategy
  | Stopped -> Metrics.incr c_stop_stopped

let simulate_from ?(stop = fun _ -> false) ~steps ~strategy aut s0 =
  Metrics.incr c_runs;
  let moves_rev = ref [] in
  let rec go s k =
    if stop s then Stopped
    else if k = 0 then Step_limit
    else
      let enabled = Time_automaton.enabled_moves aut s in
      Metrics.add c_windows (List.length enabled);
      if enabled = [] then Deadlock
      else
        match strategy aut s enabled with
        | None -> Strategy_stop
        | Some (act, tm) -> (
            Metrics.incr c_choices;
            match Time_automaton.fire aut s act tm with
            | [] ->
                invalid_arg
                  "Simulator: strategy chose a move outside its window"
            | s' :: _ ->
                Metrics.incr c_steps;
                Metrics.observe h_delay
                  (Tm_base.Rational.sub tm s.Tm_core.Tstate.now);
                moves_rev := ((act, tm), s') :: !moves_rev;
                go s' (k - 1))
  in
  let reason = Tracing.with_span "sim.simulate" (fun () -> go s0 steps) in
  record_stop reason;
  { exec = Execution.of_states s0 (List.rev !moves_rev); reason }

let simulate ?stop ~steps ~strategy aut =
  match aut.Time_automaton.start with
  | [] -> invalid_arg "Simulator: automaton has no start state"
  | s0 :: _ -> simulate_from ?stop ~steps ~strategy aut s0

let project r = Time_automaton.project r.exec

let describe_stop = function
  | Step_limit -> "step limit reached"
  | Deadlock -> "deadlock: no enabled move"
  | Strategy_stop -> "strategy stopped"
  | Stopped -> "stop predicate fired"
