(** Timed-trace serialization.

    A stable, line-oriented text format for timed schedules: one
    [time<TAB>action] line per move, times as exact rationals.  Actions
    are serialized through caller-provided [show]/[parse] so the format
    is independent of the action type.  Round-tripping is exact (no
    float involved); used for golden traces, the CLI's trace export,
    and {!Strategy.replay}. *)

val to_string :
  show:('a -> string) -> ('a * Tm_base.Rational.t) list -> string
(** Serialize a timed schedule. *)

val of_string :
  parse:(string -> 'a option) ->
  string ->
  (('a * Tm_base.Rational.t) list, string) result
(** Parse; reports the first offending line.  Blank lines and lines
    starting with ['#'] are ignored. *)

val save :
  path:string -> show:('a -> string) -> ('a * Tm_base.Rational.t) list ->
  unit

val load :
  path:string ->
  parse:(string -> 'a option) ->
  (('a * Tm_base.Rational.t) list, string) result

val schedule_of_seq : ('s, 'a) Tm_timed.Tseq.t -> ('a * Tm_base.Rational.t) list
(** The timed schedule of a sequence (re-exported for convenience). *)
