(** Discrete-event simulation of [time(A, U)] automata.

    The simulator executes the predictive semantics directly: at each
    step it computes the feasible windows of all enabled actions, lets
    a {!Strategy} choose the next move, and applies it.  Every produced
    execution is by construction an execution of [time(A, U)], hence
    its projection is a timed semi-execution of [(A, U)] (Lemma 3.2) —
    which the test suite re-checks independently. *)

type stop_reason =
  | Step_limit  (** performed the requested number of steps *)
  | Deadlock  (** no enabled move — impossible under a boundmap whose
                  classes cover the automaton and with an always-on
                  dummy; common for un-dummified finite systems *)
  | Strategy_stop  (** the strategy returned [None] *)
  | Stopped  (** the [stop] predicate fired *)
  | Watchdog  (** the [deadline_s] wall-clock budget ran out *)

type ('s, 'a) run = {
  exec : ('s, 'a) Tm_core.Time_automaton.texec;
  reason : stop_reason;
}

val simulate :
  ?stop:('s Tm_core.Tstate.t -> bool) ->
  ?deadline_s:float ->
  steps:int ->
  strategy:('s, 'a) Strategy.t ->
  ('s, 'a) Tm_core.Time_automaton.t ->
  ('s, 'a) run
(** Run from the first start state.  [stop] is evaluated on every
    reached state (including the start).  [deadline_s] is a wall-clock
    watchdog: a run that exceeds it stops with {!stop_reason.Watchdog}
    before taking its next step. *)

val batch :
  ?domains:int ->
  ?stop:('s Tm_core.Tstate.t -> bool) ->
  ?deadline_s:float ->
  runs:int ->
  steps:int ->
  prng:(int -> Tm_base.Prng.t) ->
  strategy:(Tm_base.Prng.t -> ('s, 'a) Strategy.t) ->
  ('s, 'a) Tm_core.Time_automaton.t ->
  ('s, 'a) run array
(** [batch ~domains ~runs ~steps ~prng ~strategy aut] performs [runs]
    independent {!simulate} calls, dispatched over a [Tm_par.Pool] of
    [domains] domains (default 1 = plain sequential loop), and returns
    run [i] at index [i].  [prng i] supplies run [i]'s generator — e.g.
    [fun i -> Prng.create i] for the classic seed sweep, or index into
    {!Tm_base.Prng.streams} to split one seed.  PRNGs are materialized
    in run order on the calling domain before dispatch, so results are
    identical at any domain count.  [sim.*] metrics and [sim.simulate]
    spans land in per-domain sinks/rows and merge at shutdown. *)

val simulate_from :
  ?stop:('s Tm_core.Tstate.t -> bool) ->
  ?deadline_s:float ->
  steps:int ->
  strategy:('s, 'a) Strategy.t ->
  ('s, 'a) Tm_core.Time_automaton.t ->
  's Tm_core.Tstate.t ->
  ('s, 'a) run

val project : ('s, 'a) run -> ('s, 'a) Tm_timed.Tseq.t
(** The timed sequence of the run. *)

val describe_stop : stop_reason -> string
(** Short human-readable description, used by the CLI to explain why a
    run ended (and to flag deadlocks with a nonzero exit). *)
