(* Reference DBM kernel: the original straightforward implementation,
   kept verbatim (minus metrics) as the oracle for differential testing
   of the fast in-place kernel in {!Dbm}.  Every operation copies the
   matrix; [sat] re-runs a full constrain; [zero]/[top]/[intersect]
   re-canonicalize from scratch.  Slow on purpose — do not optimise. *)

module Rational = Tm_base.Rational

type bnd = Dbm_bound.t = Lt of Rational.t | Le of Rational.t | Inf

let bnd_compare = Dbm_bound.compare
let bnd_min = Dbm_bound.min_b
let bnd_add = Dbm_bound.add
let bnd_neg_ok = Dbm_bound.neg_ok

type t = { n : int; m : bnd array; empty : bool }

let name = "ref"
let dim z = z.n
let get z i j = z.m.(i * z.n + j)
let is_empty z = z.empty

(* Floyd–Warshall tightening; detects emptiness via negative diagonal. *)
let canonicalize_arr n m =
  let idx i j = (i * n) + j in
  (try
     for k = 0 to n - 1 do
       for i = 0 to n - 1 do
         for j = 0 to n - 1 do
           let via = bnd_add m.(idx i k) m.(idx k j) in
           if bnd_compare via m.(idx i j) < 0 then m.(idx i j) <- via
         done;
         if not (bnd_neg_ok m.(idx i i)) then raise Exit
       done
     done
   with Exit -> m.(0) <- Lt Rational.zero);
  let empty = not (bnd_neg_ok m.(0)) in
  empty

let of_arr n m =
  let empty = canonicalize_arr n m in
  { n; m; empty }

let zero n =
  if n < 1 then invalid_arg "Dbm_ref.zero";
  of_arr n (Array.make (n * n) (Le Rational.zero))

let top n =
  if n < 1 then invalid_arg "Dbm_ref.top";
  let m = Array.make (n * n) Inf in
  for i = 0 to n - 1 do
    m.((i * n) + i) <- Le Rational.zero;
    (* reference minus any clock is <= 0: clocks are nonnegative *)
    m.(i) <- Le Rational.zero
  done;
  m.(0) <- Le Rational.zero;
  of_arr n m

(* Incremental tightening after adding x_i - x_j <= b to a canonical
   DBM: every entry can only improve through the new edge, so one
   O(n^2) pass over pairs (x, y) via x -> i -> j -> y suffices. *)
let constrain z i j b =
  if i < 0 || i >= z.n || j < 0 || j >= z.n then invalid_arg "Dbm_ref.constrain";
  if z.empty then z
  else if bnd_compare b (get z i j) >= 0 then z
  else begin
    let n = z.n in
    let m = Array.copy z.m in
    let idx x y = (x * n) + y in
    if i = j then m.(idx i i) <- bnd_min m.(idx i i) b
    else begin
      for x = 0 to n - 1 do
        let x_to_i = m.(idx x i) in
        if x_to_i <> Inf then begin
          let via = bnd_add x_to_i b in
          for y = 0 to n - 1 do
            let cand = bnd_add via m.(idx j y) in
            if bnd_compare cand m.(idx x y) < 0 then m.(idx x y) <- cand
          done
        end
      done
    end;
    let empty =
      let ok = ref true in
      for x = 0 to n - 1 do
        if not (bnd_neg_ok m.(idx x x)) then ok := false
      done;
      not !ok
    in
    { n; m; empty }
  end

(* Both [up] and [reset] preserve canonical form (standard DBM
   results), so no re-closing is needed. *)
let up z =
  if z.empty then z
  else begin
    let m = Array.copy z.m in
    for i = 1 to z.n - 1 do
      m.((i * z.n) + 0) <- Inf
    done;
    { z with m }
  end

let reset z x =
  if x < 1 || x >= z.n then invalid_arg "Dbm_ref.reset";
  if z.empty then z
  else begin
    let n = z.n in
    let m = Array.copy z.m in
    for j = 0 to n - 1 do
      m.((x * n) + j) <- z.m.(j);
      (* x_x − x_j = 0 − x_j *)
      m.((j * n) + x) <- z.m.((j * n) + 0)
    done;
    m.((x * n) + x) <- Le Rational.zero;
    { z with m }
  end

(* Like [up] and [reset], [free] preserves canonical form. *)
let free z x =
  if x < 1 || x >= z.n then invalid_arg "Dbm_ref.free";
  if z.empty then z
  else begin
    let n = z.n in
    let m = Array.copy z.m in
    for j = 0 to n - 1 do
      if j <> x then begin
        m.((x * n) + j) <- Inf;
        m.((j * n) + x) <- z.m.((j * n) + 0)
      end
    done;
    { z with m }
  end

let intersect a b =
  if a.n <> b.n then invalid_arg "Dbm_ref.intersect";
  if a.empty then a
  else if b.empty then b
  else begin
    let m = Array.init (a.n * a.n) (fun k -> bnd_min a.m.(k) b.m.(k)) in
    of_arr a.n m
  end

let includes big small =
  if big.n <> small.n then invalid_arg "Dbm_ref.includes";
  if small.empty then true
  else if big.empty then false
  else
    let ok = ref true in
    Array.iteri
      (fun k b -> if bnd_compare small.m.(k) b > 0 then ok := false)
      big.m;
    !ok

let extrapolate mc z =
  if z.empty then z
  else begin
    let n = z.n in
    let m = Array.copy z.m in
    let changed = ref false in
    for k = 0 to (n * n) - 1 do
      (match m.(k) with
      | Inf -> ()
      | Le c | Lt c ->
          if Rational.(c > mc) then begin
            m.(k) <- Inf;
            changed := true
          end
          else if Rational.(c < Rational.neg mc) then begin
            m.(k) <- Lt (Rational.neg mc);
            changed := true
          end)
    done;
    if not !changed then z
    else begin
      ignore (canonicalize_arr n m);
      { z with m }
    end
  end

(* LU relaxation by the same constant-only rules as the fast kernel —
   see {!Dbm.extrapolate_lu_arr}.  Straightforward copy-and-reclose. *)
let extrapolate_lu ~lower ~upper z =
  if z.empty then z
  else begin
    let n = z.n in
    let m = Array.copy z.m in
    let changed = ref false in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then
          match m.((i * n) + j) with
          | Inf -> ()
          | Le c | Lt c -> (
              let wipe =
                match lower.(i) with
                | None -> true
                | Some l -> Rational.compare c l > 0
              in
              if wipe then begin
                m.((i * n) + j) <- Inf;
                changed := true
              end
              else
                match upper.(j) with
                | None ->
                    m.((i * n) + j) <- Inf;
                    changed := true
                | Some u ->
                    let nu = Rational.neg u in
                    if Rational.compare c nu < 0 then begin
                      m.((i * n) + j) <- Lt nu;
                      changed := true
                    end)
      done
    done;
    if not !changed then z
    else begin
      ignore (canonicalize_arr n m);
      { z with m }
    end
  end

let sat z i j b = not (is_empty (constrain z i j b))

let loose z =
  if z.empty then 0
  else Array.fold_left (fun acc b -> if b = Inf then acc + 1 else acc) 0 z.m

let equal a b =
  a.n = b.n && a.empty = b.empty
  && (a.empty || Array.for_all2 (fun x y -> bnd_compare x y = 0) a.m b.m)

let hash z =
  if z.empty then 0
  else Array.fold_left (fun h b -> (h * 31) + Dbm_bound.hash b) z.n z.m

let pp fmt z =
  if z.empty then Format.pp_print_string fmt "empty"
  else begin
    Format.fprintf fmt "@[<v>";
    for i = 0 to z.n - 1 do
      for j = 0 to z.n - 1 do
        Format.fprintf fmt "%a " Dbm_bound.pp (get z i j)
      done;
      Format.fprintf fmt "@,"
    done;
    Format.fprintf fmt "@]"
  end

(* The reference kernel stores plain persistent zones, so its arena is
   a unit token: [copy_into] and [freeze_into] change nothing, which is
   exactly what the oracle should do — the differential wall then pins
   the arena-backed kernels to these semantics. *)
module Arena = struct
  type arena = unit

  let create () = ()
  let reset () = ()
end

let copy_into () z = z

(* Minimal-constraint form via the shared {!Dbm_min} reduction. *)
module Min = struct
  type min = MEmpty of int | M of Dbm_min.t

  let of_zone z =
    if z.empty then MEmpty z.n
    else M (Dbm_min.reduce z.n (fun i j -> z.m.((i * z.n) + j)))

  let to_zone = function
    | MEmpty n -> { n; m = Array.make (n * n) Inf; empty = true }
    | M r -> { n = r.Dbm_min.mn; m = Dbm_min.to_matrix r; empty = false }

  let subsumes mn z =
    match mn with
    | MEmpty _ -> z.empty
    | M r ->
        if z.n <> r.Dbm_min.mn then invalid_arg "Dbm_ref.Min.subsumes";
        z.empty || Dbm_min.subsumes r (fun i j -> z.m.((i * z.n) + j))

  let equal a b =
    match (a, b) with
    | MEmpty n, MEmpty n' -> n = n'
    | M r, M r' -> Dbm_min.equal r r'
    | _ -> false

  let count = function MEmpty _ -> 0 | M r -> Dbm_min.count r
end

(* Scratch for the reference kernel is just a cell holding a persistent
   zone: every "destructive" op pays the full persistent cost, which is
   exactly what the differential benchmark wants to compare against.
   [src] remembers the loaded zone so a pipeline that rebuilt an equal
   matrix still freezes to the original (matching the fast kernels'
   short-circuit). *)
module Scratch = struct
  type scratch = { mutable cur : t; mutable src : t option }

  let create n = { cur = zero n; src = None }

  let load s z =
    s.cur <- z;
    s.src <- Some z

  let constrain s i j b = s.cur <- constrain s.cur i j b
  let up s = s.cur <- up s.cur
  let reset s x = s.cur <- reset s.cur x
  let free s x = s.cur <- free s.cur x
  let extrapolate mc s = s.cur <- extrapolate mc s.cur

  let extrapolate_lu ~lower ~upper s =
    s.cur <- extrapolate_lu ~lower ~upper s.cur

  let is_empty s = is_empty s.cur
  let sat s i j b = sat s.cur i j b

  let freeze s =
    match s.src with Some z when equal z s.cur -> z | _ -> s.cur

  let hash s = hash s.cur
  let equal_zone s z = equal s.cur z
  let freeze_into ?hash:_ () s = freeze s
end
