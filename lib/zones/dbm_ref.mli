(** Reference DBM kernel — the original copy-everything implementation,
    retained solely as the oracle for the differential test/bench
    harness against the fast in-place {!Dbm}.  Production code should
    never use this module directly; go through {!Reach} (or {!Reach.Ref}
    for the reference engine). *)

include Dbm_sig.S
