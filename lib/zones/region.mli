(** The Alur–Dill region construction, as a second exact engine.

    Regions are the classic finite time-abstract bisimulation quotient
    for timed automata: each clock keeps its integer part up to a
    maximum constant (beyond which only "large" matters) and whether
    its fractional part is zero, plus the relative order of the nonzero
    fractional parts.  The region graph is exact for reachability, like
    the zone graph of {!Reach}, but built from a completely different
    abstraction — the test suite uses the two as independent oracles
    that must agree.

    Rational bound constants are handled by scaling all constants (and
    hence clock valuations) by the lcm of their denominators.

    Scope: timed reachability and state-invariant checking for boundmap
    (MMT) automata; condition observers live in {!Reach}. *)

type t
(** A region over a fixed clock set. *)

val initial : nclocks:int -> max_const:int -> t
(** All clocks exactly 0.  [nclocks] counts real clocks (the reference
    is implicit); [max_const] is the (scaled, integer) ceiling. *)

val reset : t -> int -> t
(** Clock index is 0-based over the real clocks. *)

val free : t -> int -> t
(** Forget a clock (activity reduction): modelled as "large". *)

val time_successor : t -> t
(** The immediate time successor; the region with all clocks large is
    its own successor. *)

val sat_ge : t -> int -> int -> bool
(** [sat_ge r x c]: does (every valuation of) the region satisfy
    [x >= c]?  ([c <= max_const].) *)

val sat_le : t -> int -> int -> bool
(** [sat_le r x c]: does the region satisfy [x <= c]? *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

type stats = { locations : int; regions : int; edges : int }

val reachable :
  ?limit:int ->
  ('s, 'a) Tm_ioa.Ioa.t ->
  Tm_timed.Boundmap.t ->
  stats * 's list
(** Region-graph reachability for a closed boundmap automaton, with the
    same clock encoding as {!Reach} (one clock per class, reset on
    (re-)enabling and firing, guards [x_C >= b_l], invariants
    [x_C <= b_u], inactive clocks freed).
    @raise Reach.Open_system as in {!Reach}. *)

val check_state_invariant :
  ?limit:int ->
  ('s, 'a) Tm_ioa.Ioa.t ->
  Tm_timed.Boundmap.t ->
  ('s -> bool) ->
  (stats, 's) result
