module Rational = Tm_base.Rational
module Hstore = Tm_base.Hstore
module Ioa = Tm_ioa.Ioa

(* A clock is either strictly above the ceiling, exactly at an integer,
   or strictly between two integers; the fractional ordering of the
   Between clocks is kept separately. *)
type clock_val = Large | Exact of int | Between of int

type t = {
  vals : clock_val array;
  frac_order : int list list;
      (* groups of clock indices with equal nonzero fractional part, in
         increasing fractional order; contains exactly the Between
         clocks *)
  max_const : int;
}

let initial ~nclocks ~max_const =
  if nclocks < 0 || max_const < 0 then invalid_arg "Region.initial";
  { vals = Array.make nclocks (Exact 0); frac_order = []; max_const }

let remove_from_order x order =
  List.filter_map
    (fun group ->
      match List.filter (fun c -> c <> x) group with
      | [] -> None
      | g -> Some g)
    order

let reset r x =
  if x < 0 || x >= Array.length r.vals then invalid_arg "Region.reset";
  let vals = Array.copy r.vals in
  vals.(x) <- Exact 0;
  { r with vals; frac_order = remove_from_order x r.frac_order }

let free r x =
  if x < 0 || x >= Array.length r.vals then invalid_arg "Region.free";
  let vals = Array.copy r.vals in
  vals.(x) <- Large;
  { r with vals; frac_order = remove_from_order x r.frac_order }

let time_successor r =
  let at_integer = ref [] in
  Array.iteri
    (fun i v -> match v with Exact _ -> at_integer := i :: !at_integer
                           | Large | Between _ -> ())
    r.vals;
  match List.rev !at_integer with
  | _ :: _ as zeros ->
      (* The integer-valued clocks move into the open interval just
         above, acquiring the smallest fractional parts. *)
      let vals = Array.copy r.vals in
      let moved =
        List.filter
          (fun i ->
            match vals.(i) with
            | Exact k when k >= r.max_const ->
                vals.(i) <- Large;
                false
            | Exact k ->
                vals.(i) <- Between k;
                true
            | Large | Between _ -> false)
          zeros
      in
      let frac_order =
        if moved = [] then r.frac_order else moved :: r.frac_order
      in
      { r with vals; frac_order }
  | [] -> (
      (* No clock at an integer: the largest fractional group reaches
         the next integer.  With no Between clocks either, every clock
         is Large and the region is time-closed. *)
      match List.rev r.frac_order with
      | [] -> r
      | last :: rest_rev ->
          let vals = Array.copy r.vals in
          List.iter
            (fun i ->
              match vals.(i) with
              | Between k -> vals.(i) <- Exact (k + 1)
              | Large | Exact _ -> assert false)
            last;
          { r with vals; frac_order = List.rev rest_rev })

let sat_ge r x c =
  match r.vals.(x) with
  | Large -> true
  | Exact k | Between k -> k >= c

let sat_le r x c =
  match r.vals.(x) with
  | Large -> false
  | Exact k -> k <= c
  | Between k -> k < c

let equal a b =
  a.max_const = b.max_const && a.vals = b.vals
  && a.frac_order = b.frac_order

let hash r = Hashtbl.hash (r.vals, r.frac_order)

let pp fmt r =
  Format.fprintf fmt "@[<h>{";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt "; ";
      match v with
      | Large -> Format.fprintf fmt "x%d>%d" i r.max_const
      | Exact k -> Format.fprintf fmt "x%d=%d" i k
      | Between k -> Format.fprintf fmt "x%d in(%d,%d)" i k (k + 1))
    r.vals;
  Format.fprintf fmt " | %s}"
    (String.concat "<"
       (List.map
          (fun g -> String.concat "=" (List.map string_of_int g))
          r.frac_order))

type stats = { locations : int; regions : int; edges : int }

let explore (type s a) ?(limit = 500_000) (a : (s, a) Ioa.t) bm
    ~(inspect : s -> t -> unit) =
  let enc = Clock_enc.make a bm in
  let scale = Clock_enc.scale enc in
  let to_int q =
    let scaled = Rational.mul_int scale q in
    assert (Rational.is_integer scaled);
    Rational.floor scaled
  in
  let max_const =
    let m = Rational.mul_int scale enc.Clock_enc.max_const in
    Rational.ceil m
  in
  let nclocks = enc.Clock_enc.nclasses in
  (* Clock_enc indices are 1-based (0 is the DBM reference); regions
     use 0-based clocks. *)
  let cx x = x - 1 in
  let sat_invariant s r =
    List.for_all
      (fun (x, q) -> sat_le r (cx x) (to_int q))
      (Clock_enc.invariant enc s)
  in
  let sat_guard act r =
    match Clock_enc.guard enc act with
    | None -> true
    | Some (x, bl) -> sat_ge r (cx x) (to_int bl)
  in
  let apply_ops r ops =
    List.fold_left
      (fun r op ->
        match op with
        | Clock_enc.Reset x -> reset r (cx x)
        | Clock_enc.Free x -> free r (cx x))
      r ops
  in
  let store =
    Hstore.create
      ~equal:(fun (s1, r1) (s2, r2) -> a.Ioa.equal_state s1 s2 && equal r1 r2)
      ~hash:(fun (s, r) -> (a.Ioa.hash_state s * 31) + hash r)
      256
  in
  let locs =
    Hstore.create ~equal:a.Ioa.equal_state ~hash:a.Ioa.hash_state 64
  in
  let edges = ref 0 in
  let queue = Queue.create () in
  let exception Limit in
  let add s r =
    if Hstore.length store >= limit then raise Limit;
    match Hstore.add store (s, r) with
    | `Added _ ->
        ignore (Hstore.add locs s);
        inspect s r;
        Queue.add (s, r) queue
    | `Present _ -> ()
  in
  (try
     List.iter
       (fun s0 ->
         let r0 =
           apply_ops (initial ~nclocks ~max_const)
             (Clock_enc.start_ops enc s0)
         in
         if sat_invariant s0 r0 then add s0 r0)
       a.Ioa.start;
     while not (Queue.is_empty queue) do
       let s, r = Queue.pop queue in
       (* time successor *)
       let r' = time_successor r in
       if (not (equal r' r)) && sat_invariant s r' then begin
         incr edges;
         add s r'
       end;
       (* discrete successors *)
       List.iter
         (fun act ->
           if sat_guard act r then
             List.iter
               (fun s' ->
                 incr edges;
                 let r2 = apply_ops r (Clock_enc.step_ops enc s act s') in
                 if sat_invariant s' r2 then add s' r2)
               (a.Ioa.delta s act))
         a.Ioa.alphabet
     done
   with Limit -> raise (Clock_enc.Open_system "region limit exceeded"));
  ( {
      locations = Hstore.length locs;
      regions = Hstore.length store;
      edges = !edges;
    },
    Hstore.to_list locs )

let reachable ?limit (a : ('s, 'a) Ioa.t) bm =
  explore ?limit a bm ~inspect:(fun _ _ -> ())

let check_state_invariant (type s a) ?limit (a : (s, a) Ioa.t) bm pred =
  let bad = ref None in
  let exception Found in
  match
    explore ?limit a bm ~inspect:(fun s _ ->
        if not (pred s) then begin
          bad := Some s;
          raise Found
        end)
  with
  | exception Found -> (
      match !bad with Some s -> Error s | None -> assert false)
  | stats, _ -> Ok stats
