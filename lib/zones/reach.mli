(** Zone-graph reachability for boundmap timed automata, with
    timing-condition monitors.

    This is the classic MMT-automaton encoding into a (diagonal-free)
    clock automaton: one clock per partition class, reset whenever the
    class fires or becomes (re-)enabled; an action of class [C] is
    guarded by [x_C >= b_l(C)]; every location carries the invariant
    [x_C <= b_u(C)] for each enabled class.  Zones are explored as
    DBMs with max-constant extrapolation and inclusion subsumption —
    exact verification, no time discretization.

    A timing condition is checked by an observer with one extra clock
    [y], armed by the condition's triggers and disarmed by [Π]-actions
    and [S]-states:
    - a reachable armed zone admitting [y > b_u] witnesses an
      upper-bound violation;
    - a [Π]-transition from an armed zone admitting [y < b_l] (with no
      intervening disarm) witnesses a lower-bound violation.

    Supported condition shapes: a trigger step that fires while the
    observer is already armed must itself be a [Π]-action (then the
    observer re-arms); other overlapping-trigger shapes would need the
    paper's [min] merge of deadlines and are reported as
    [Unsupported].  Both example systems and all conditions in this
    repository are of the supported shape.

    The engine is a functor over the DBM kernel ({!Dbm_sig.S}): the
    default engine runs on the fast in-place {!Dbm}, and {!Ref} runs
    the identical exploration on the reference {!Dbm_ref} kernel.
    Because the two share every policy decision (subsumption-aware
    waiting list bucketed by discrete location, largest-zone-first
    expansion, hash-consed zone store), their [stats] agree exactly —
    the differential harness in test/ and bench/ checks this. *)

type stats = {
  locations : int;  (** distinct (state, observer-phase) pairs *)
  zones : int;  (** zones stored after subsumption *)
  edges : int;  (** symbolic transitions processed *)
}

type exhausted = {
  reason : string;  (** which budget ran out, human-readable *)
  partial : stats;  (** how far the search got before exhaustion *)
}

type outcome =
  | Verified of stats
  | Lower_violation of stats
  | Upper_violation of stats
  | Unknown of exhausted
      (** The search exhausted its zone or wall-clock budget before
          reaching a fixpoint — neither a proof nor a refutation.
          Exhaustion is never reported as [Verified]. *)
  | Unsupported of string

exception Open_system of string
(** Raised when the automaton has input actions (the encoding needs a
    closed system) or a locally controlled action without bounds. *)

exception Out_of_budget of exhausted
(** Raised by {!S.reachable} and {!S.check_state_invariant} when the
    zone or wall-clock budget is exhausted before the fixpoint (the
    condition checker returns {!outcome.Unknown} instead, since it
    already returns a sum). *)

(** What a zone engine offers, whatever its kernel.  The CLI selects an
    engine as a first-class module of this type.

    Every entry point takes a graceful-degradation budget: [limit]
    bounds stored zones (default [200_000]) and [deadline_s] bounds
    wall-clock seconds.  Running out of either yields an {!exhausted}
    carrying partial {!stats} — via {!Out_of_budget} or
    {!outcome.Unknown} — rather than a truncated (unsound) verdict.
    Zone-budget exhaustion is deterministic and agrees exactly across
    kernels; the wall-clock deadline, necessarily, does not.

    Every entry point also takes [?domains] (default 1): with
    [domains > 1] the exploration runs on a [Tm_par.Pool] of that many
    domains in speculate-then-commit style — successor DBM pipelines
    are computed in parallel on per-domain scratch arenas and
    enabled-vector caches, and the main domain replays the results in
    exact sequential order.  Verdicts, the reachable base-state set,
    and every counter ([zones.stored], [zones.subsumed], edge counts,
    deterministic budget exhaustion) are bit-identical to [domains = 1]
    at any domain count; only wall-clock time changes. *)
module type S = sig
  val reachable :
    ?limit:int -> ?deadline_s:float -> ?domains:int ->
    ('s, 'a) Tm_ioa.Ioa.t -> Tm_timed.Boundmap.t -> stats * 's list
  (** Timed reachability: explored stats and the base states reachable
      under the timing assumptions (a subset of the untimed reachable
      set).
      @raise Out_of_budget when a budget is exhausted. *)

  val check_state_invariant :
    ?limit:int ->
    ?deadline_s:float ->
    ?domains:int ->
    ('s, 'a) Tm_ioa.Ioa.t ->
    Tm_timed.Boundmap.t ->
    ('s -> bool) ->
    (stats, 's) result
  (** [Error s] returns a reachable (under timing) state violating the
      predicate.
      @raise Out_of_budget when a budget is exhausted. *)

  val check_condition :
    ?limit:int ->
    ?deadline_s:float ->
    ?domains:int ->
    ('s, 'a) Tm_ioa.Ioa.t ->
    Tm_timed.Boundmap.t ->
    ('s, 'a) Tm_timed.Condition.t ->
    outcome
  (** Exact verification that every timed execution of [(A, b)]
      satisfies the condition; [Unknown] when a budget is exhausted. *)
end

module Make (K : Dbm_sig.S) : S
(** Build an engine from a kernel; both engines below come from this
    functor, so they share one exploration discipline. *)

module Default : S
(** The production engine on the fast in-place {!Dbm} kernel. *)

module Ref : S
(** The same exploration on the {!Dbm_ref} reference kernel — for the
    differential test/bench harness only. *)

include S
(** The default engine's operations, available unqualified. *)
