(** Zone-graph reachability for boundmap timed automata, with
    timing-condition monitors.

    This is the classic MMT-automaton encoding into a (diagonal-free)
    clock automaton: one clock per partition class, reset whenever the
    class fires or becomes (re-)enabled; an action of class [C] is
    guarded by [x_C >= b_l(C)]; every location carries the invariant
    [x_C <= b_u(C)] for each enabled class.  Zones are explored as
    DBMs with max-constant extrapolation and inclusion subsumption —
    exact verification, no time discretization.

    A timing condition is checked by an observer with one extra clock
    [y], armed by the condition's triggers and disarmed by [Π]-actions
    and [S]-states:
    - a reachable armed zone admitting [y > b_u] witnesses an
      upper-bound violation;
    - a [Π]-transition from an armed zone admitting [y < b_l] (with no
      intervening disarm) witnesses a lower-bound violation.

    Supported condition shapes: a trigger step that fires while the
    observer is already armed must itself be a [Π]-action (then the
    observer re-arms); other overlapping-trigger shapes would need the
    paper's [min] merge of deadlines and are reported as
    [Unsupported].  Both example systems and all conditions in this
    repository are of the supported shape. *)

type stats = {
  locations : int;  (** distinct (state, observer-phase) pairs *)
  zones : int;  (** zones stored after subsumption *)
  edges : int;  (** symbolic transitions processed *)
}

type outcome =
  | Verified of stats
  | Lower_violation of stats
  | Upper_violation of stats
  | Unsupported of string

exception Open_system of string
(** Raised when the automaton has input actions (the encoding needs a
    closed system) or a locally controlled action without bounds. *)

val reachable :
  ?limit:int -> ('s, 'a) Tm_ioa.Ioa.t -> Tm_timed.Boundmap.t ->
  stats * 's list
(** Timed reachability: explored stats and the base states reachable
    under the timing assumptions (a subset of the untimed reachable
    set). [limit] bounds stored zones, default [200_000]. *)

val check_state_invariant :
  ?limit:int ->
  ('s, 'a) Tm_ioa.Ioa.t ->
  Tm_timed.Boundmap.t ->
  ('s -> bool) ->
  (stats, 's) result
(** [Error s] returns a reachable (under timing) state violating the
    predicate. *)

val check_condition :
  ?limit:int ->
  ('s, 'a) Tm_ioa.Ioa.t ->
  Tm_timed.Boundmap.t ->
  ('s, 'a) Tm_timed.Condition.t ->
  outcome
(** Exact verification that every timed execution of [(A, b)] satisfies
    the condition. *)
