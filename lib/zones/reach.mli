(** Zone-graph reachability for boundmap timed automata, with
    timing-condition monitors.

    This is the classic MMT-automaton encoding into a (diagonal-free)
    clock automaton: one clock per partition class, reset whenever the
    class fires or becomes (re-)enabled; an action of class [C] is
    guarded by [x_C >= b_l(C)]; every location carries the invariant
    [x_C <= b_u(C)] for each enabled class.  Zones are explored as
    DBMs with extrapolation and inclusion subsumption — exact
    verification, no time discretization.

    {b Widening.}  Zones are widened with LU-bound extrapolation: each
    clock carries the largest constant it is compared against from
    below (its guard constant [b_l]) and from above (its invariant
    constant [b_u], plus the inverted condition-probe constants for the
    observer clock), and entries beyond those per-clock bounds are
    discarded.  LU is coarser than the classic max-constant widening —
    the zone graph is smaller, often dramatically so on systems like
    fischer — while verdicts are unchanged, because the per-clock
    bounds dominate every constraint and probe the engine evaluates.  A
    clock compared against nothing on a side is unbounded there, which
    erases inactive clocks from zones entirely (clock-activity
    reduction).  The widening is applied uniformly by all kernels and
    on the sequential, speculative and seeding paths, so [zones.stored]
    stays kernel- and domain-independent.  Setting [TM_NO_LU=1] in the
    environment falls back to max-constant extrapolation (verdicts must
    not change — the metamorphic suite in test/ checks exactly that);
    the widening mode is part of the checkpoint fingerprint, so
    snapshots never cross modes.

    A timing condition is checked by an observer with one extra clock
    [y], armed by the condition's triggers and disarmed by [Π]-actions
    and [S]-states:
    - a reachable armed zone admitting [y > b_u] witnesses an
      upper-bound violation;
    - a [Π]-transition from an armed zone admitting [y < b_l] (with no
      intervening disarm) witnesses a lower-bound violation.

    Supported condition shapes: a trigger step that fires while the
    observer is already armed must itself be a [Π]-action (then the
    observer re-arms); other overlapping-trigger shapes would need the
    paper's [min] merge of deadlines and are reported as
    [Unsupported].  Both example systems and all conditions in this
    repository are of the supported shape.

    The engine is a functor over the DBM kernel ({!Dbm_sig.S}): the
    default engine runs on the fast in-place {!Dbm}, and {!Ref} runs
    the identical exploration on the reference {!Dbm_ref} kernel.
    Because the two share every policy decision (subsumption-aware
    waiting list bucketed by discrete location, largest-zone-first
    expansion, hash-consed zone store), their [stats] agree exactly —
    the differential harness in test/ and bench/ checks this.

    {b Checkpointing.}  Every entry point can write a checkpoint — a
    versioned, checksummed, atomically replaced snapshot of the whole
    search frontier ([Tm_recover.Snapshot]) — and resume from one.
    Snapshots are taken only at batch boundaries, where the frontier is
    self-contained and (under [?domains]) every worker has quiesced at
    the commit barrier, so a resumed run replays the identical commit
    sequence: verdict, reachable set (as a set), [zones.stored] and the
    other guarded counters all equal the uninterrupted run, at any
    domain count.  Resuming requires the same kernel, entry point,
    automaton and bounds — a job fingerprint embedded in the snapshot
    is checked before any state is trusted, and automaton states must
    be marshalable (no closures). *)

type stats = {
  locations : int;  (** distinct (state, observer-phase) pairs *)
  zones : int;  (** zones stored after subsumption *)
  edges : int;  (** symbolic transitions processed *)
}

type exhausted = {
  reason : string;  (** which budget ran out, human-readable *)
  partial : stats;  (** how far the search got before exhaustion *)
  checkpoint : string option;
      (** final snapshot written on the way out, when checkpointing was
          enabled — resume from here to keep the partial work *)
}

type outcome =
  | Verified of stats
  | Lower_violation of stats
  | Upper_violation of stats
  | Unknown of exhausted
      (** The search exhausted its zone or wall-clock budget (or was
          interrupted) before reaching a fixpoint — neither a proof nor
          a refutation.  Exhaustion is never reported as [Verified]. *)
  | Unsupported of string

exception Open_system of string
(** Raised when the automaton has input actions (the encoding needs a
    closed system) or a locally controlled action without bounds. *)

exception Out_of_budget of exhausted
(** Raised by {!S.reachable} and {!S.check_state_invariant} when the
    zone or wall-clock budget is exhausted before the fixpoint (the
    condition checker returns {!outcome.Unknown} instead, since it
    already returns a sum). *)

(** What a zone engine offers, whatever its kernel.  The CLI selects an
    engine as a first-class module of this type.

    Every entry point takes a graceful-degradation budget: [limit]
    bounds stored zones (default [200_000]) and [deadline_s] bounds
    wall-clock seconds.  Running out of either yields an {!exhausted}
    carrying partial {!stats} — via {!Out_of_budget} or
    {!outcome.Unknown} — rather than a truncated (unsound) verdict.
    The zone budget acts at batch boundaries (so a run can finish at
    most one location batch beyond [limit], and a completed fixpoint is
    reported [Verified] only when it stayed within [limit]); it is
    deterministic and agrees exactly across kernels and domain counts.
    The wall-clock deadline is probed before every successor pipeline,
    so one expensive pipeline cannot overshoot it by more than a single
    zone expansion — but which zone it stops at, necessarily, is not
    deterministic.

    Every entry point also takes [?domains] (default 1): with
    [domains > 1] the exploration runs on a [Tm_par.Pool] of that many
    domains in speculate-then-commit style — successor DBM pipelines
    are computed in parallel on per-domain scratch arenas and
    enabled-vector caches, and the main domain replays the results in
    exact sequential order.  Verdicts, the reachable base-state set,
    and every counter ([zones.stored], [zones.subsumed], edge counts,
    deterministic budget exhaustion) are bit-identical to [domains = 1]
    at any domain count; only wall-clock time changes.

    [?checkpoint:(path, every)] snapshots the frontier to [path] after
    every [every] newly stored zones ([every <= 0]: only final
    snapshots), and always on budget exhaustion or a cooperative
    interrupt ([Tm_recover.Supervisor]) — the resulting
    {!exhausted.checkpoint} tells the caller where.  A checkpoint left
    behind by a run that then completes is removed.  [?resume:path]
    restores a snapshot instead of seeding from the initial states and
    continues the fixpoint exactly; it raises
    [Tm_recover.Snapshot.Bad_snapshot] on a corrupt, truncated,
    wrong-version or wrong-job file — a bad snapshot can never produce
    a wrong verdict. *)
module type S = sig
  val reachable :
    ?limit:int -> ?deadline_s:float -> ?domains:int ->
    ?checkpoint:string * int -> ?resume:string ->
    ('s, 'a) Tm_ioa.Ioa.t -> Tm_timed.Boundmap.t -> stats * 's list
  (** Timed reachability: explored stats and the base states reachable
      under the timing assumptions (a subset of the untimed reachable
      set).  After a resume the list holds the same states, though not
      necessarily in first-discovery order.
      @raise Out_of_budget when a budget is exhausted. *)

  val check_state_invariant :
    ?limit:int ->
    ?deadline_s:float ->
    ?domains:int ->
    ?checkpoint:string * int ->
    ?resume:string ->
    ('s, 'a) Tm_ioa.Ioa.t ->
    Tm_timed.Boundmap.t ->
    ('s -> bool) ->
    (stats, 's) result
  (** [Error s] returns a reachable (under timing) state violating the
      predicate.
      @raise Out_of_budget when a budget is exhausted. *)

  val check_condition :
    ?limit:int ->
    ?deadline_s:float ->
    ?domains:int ->
    ?checkpoint:string * int ->
    ?resume:string ->
    ('s, 'a) Tm_ioa.Ioa.t ->
    Tm_timed.Boundmap.t ->
    ('s, 'a) Tm_timed.Condition.t ->
    outcome
  (** Exact verification that every timed execution of [(A, b)]
      satisfies the condition; [Unknown] when a budget is exhausted. *)

  val fingerprint_reachable :
    ('s, 'a) Tm_ioa.Ioa.t -> Tm_timed.Boundmap.t -> string
  (** The job fingerprint {!reachable} embeds in its checkpoints — the
      CLI uses these to route a [--resume] file to the right job. *)

  val fingerprint_invariant :
    ('s, 'a) Tm_ioa.Ioa.t -> Tm_timed.Boundmap.t -> string

  val fingerprint_condition :
    ('s, 'a) Tm_ioa.Ioa.t ->
    Tm_timed.Boundmap.t ->
    ('s, 'a) Tm_timed.Condition.t ->
    string
end

module Make (K : Dbm_sig.S) : S
(** Build an engine from a kernel; both engines below come from this
    functor, so they share one exploration discipline. *)

module Default : S
(** The production engine on the fast in-place {!Dbm} kernel. *)

module Ref : S
(** The same exploration on the {!Dbm_ref} reference kernel — for the
    differential test/bench harness only. *)

module Int : S
(** The same exploration on the packed-int {!Dbm_int} kernel.  Only
    sound on integral inputs (integer boundmap endpoints and condition
    bounds); a non-integer constant raises [Invalid_argument] instead
    of being truncated.  Prefer {!Auto}, which performs that check. *)

module Auto : S
(** Per-call kernel selection: {!Int} when the boundmap (and, for
    condition checks, the condition bounds) are integral, {!Default}
    otherwise.  This is the CLI's default engine.  Margin's mediant
    walks perturb boundmaps to non-integral rationals, so their probes
    transparently land back on the rational kernel. *)

module Paranoid : S
(** The fast kernel under a sampled in-flight self-check
    ({!Dbm_paranoid}; period from [Tm_recover.Paranoid.set_every]).
    Explores exactly like {!Default}; if any checked pipeline disagrees
    with the reference kernel, the run is restarted from scratch on
    {!Ref} (counting [recover.degraded]) instead of reporting a
    possibly corrupt verdict. *)

include S
(** The default engine's operations, available unqualified. *)
