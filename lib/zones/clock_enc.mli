(** The MMT clock encoding shared by the zone ({!Reach}) and region
    ({!Region}) engines.

    One clock per partition class (indices [1..n] with [0] reserved for
    the DBM reference; {!Region} uses [clock-1] as its 0-based index).
    An action of class [C] is guarded by [x_C >= b_l(C)]; a location
    carries the invariant [x_C <= b_u(C)] for every enabled class; a
    step resets the clocks of classes that fire or become (re-)enabled
    and frees those of classes disabled in the target (activity
    reduction). *)

exception Open_system of string
(** The encoding needs a closed system (no input actions) whose classes
    are all covered by the boundmap. *)

type ('s, 'a) t = {
  aut : ('s, 'a) Tm_ioa.Ioa.t;
  bm : Tm_timed.Boundmap.t;
  classes : string array;
  nclasses : int;
  max_const : Tm_base.Rational.t;  (** largest finite bound constant *)
  members : 'a array array;
      (** actions of each class, indexed by class index — resolved once
          at {!make} so the per-state enabledness scans never call
          [Ioa.class_of] (whose class names are typically built afresh
          per call) *)
}

val make : ('s, 'a) Tm_ioa.Ioa.t -> Tm_timed.Boundmap.t -> ('s, 'a) t
(** @raise Open_system *)

val clock : ('s, 'a) t -> string -> int
(** 1-based clock index of a class. *)

val class_index : ('s, 'a) t -> 'a -> int option
(** 0-based class index of an action's class ([clock enc c - 1]). *)

val enabled_vec : ('s, 'a) t -> 's -> bool array
(** Per-class enabledness in a state, indexed by class index.  {!Reach}
    caches this per discrete location so [step_ops]-style decisions are
    array reads instead of repeated [Ioa.class_enabled] scans. *)

val guard : ('s, 'a) t -> 'a -> (int * Tm_base.Rational.t) option
(** [(clock, b_l)] when the action's class has a positive lower bound. *)

type op = Reset of int | Free of int

val step_ops : ('s, 'a) t -> 's -> 'a -> 's -> op list
(** Clock operations induced by the step [(s, act, s')], in clock
    order. *)

val start_ops : ('s, 'a) t -> 's -> op list
(** Frees for the classes disabled in a start state. *)

val invariant : ('s, 'a) t -> 's -> (int * Tm_base.Rational.t) list
(** [(clock, b_u)] for every enabled class with a finite upper bound. *)

val scale : ('s, 'a) t -> int
(** The lcm of the denominators of all bound constants: multiplying
    constants by [scale] makes them integers (used by {!Region}). *)
