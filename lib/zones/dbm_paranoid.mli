(** Self-checking DBM kernel: {!Dbm} arithmetic, with every [k]-th
    successor pipeline re-executed on {!Dbm_ref} and compared.

    Persistent operations and representations are exactly {!Dbm}'s
    ([type t = Dbm.t]), so an exploration on this kernel stores
    bit-identical zones to the fast engine — the self-check is pure
    overhead, never a behaviour change.  The sampling period comes from
    [Tm_recover.Paranoid.every]; each {!Dbm_sig.S.Scratch} arena counts
    its own pipeline loads, so under a pool every domain samples
    independently.

    On any divergence the kernel records [recover.selfcheck_mismatch]
    and raises [Tm_recover.Paranoid.Mismatch]; {!Reach.Paranoid}
    catches it and degrades the run to the reference engine. *)

include Dbm_sig.S with type t = Dbm.t
