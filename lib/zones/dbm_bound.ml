(* The bound domain shared by every DBM kernel: an upper bound on a
   clock difference, strict or weak, or no bound at all.  Split out of
   {!Dbm} so the fast in-place kernel and the {!Dbm_ref} reference
   kernel compare and add bounds with the exact same code — a
   differential test that used two bound arithmetics would prove
   nothing. *)

module Rational = Tm_base.Rational

type t = Lt of Rational.t | Le of Rational.t | Inf

(* Order by tightness: smaller = tighter; [Lt c < Le c < Inf]. *)
let compare a b =
  match (a, b) with
  | Inf, Inf -> 0
  | Inf, _ -> 1
  | _, Inf -> -1
  | Lt x, Lt y | Le x, Le y -> Rational.compare x y
  | Lt x, Le y ->
      let c = Rational.compare x y in
      if c = 0 then -1 else c
  | Le x, Lt y ->
      let c = Rational.compare x y in
      if c = 0 then 1 else c

let min_b a b = if compare a b <= 0 then a else b

let add a b =
  match (a, b) with
  | Inf, _ | _, Inf -> Inf
  | Le x, Le y -> Le (Rational.add x y)
  | Le x, Lt y | Lt x, Le y | Lt x, Lt y -> Lt (Rational.add x y)

(* Does the bound admit the value 0?  The diagonal entry m[i][i] bounds
   x_i − x_i = 0, so a diagonal failing this test witnesses emptiness. *)
let neg_ok = function
  | Le q -> Rational.sign q >= 0
  | Lt q -> Rational.sign q > 0
  | Inf -> true

let hash = function
  | Inf -> 7
  | Le q -> 3 + Rational.hash q
  | Lt q -> 5 + Rational.hash q

let pp fmt = function
  | Inf -> Format.pp_print_string fmt "inf"
  | Le q -> Format.fprintf fmt "<=%a" Rational.pp q
  | Lt q -> Format.fprintf fmt "<%a" Rational.pp q
