(* Signature shared by the fast in-place kernel ({!Dbm}) and the
   straightforward reference kernel ({!Dbm_ref}).  {!Reach.Make} is a
   functor over this signature, so the two engines share one
   exploration discipline and differ only in DBM arithmetic — which is
   what makes op-for-op and fixpoint-for-fixpoint differential testing
   meaningful, and keeps [zones.stored] identical by construction.

   Clock [0] is the reference clock fixed at 0; entry [(i, j)] bounds
   the difference [x_i - x_j].  All values are canonical (shortest-path
   closed) unless empty. *)

module type S = sig
  type t
  (** A persistent zone: immutable from the caller's point of view. *)

  val name : string
  (** Short stable kernel identifier ("fast", "ref", ...) — part of the
      checkpoint job fingerprint, so a snapshot is only ever resumed on
      the kernel that wrote it. *)

  val dim : t -> int
  (** Number of clocks including the reference clock. *)

  val zero : int -> t
  (** All clocks equal to 0. *)

  val top : int -> t
  (** All clocks unconstrained (but nonnegative). *)

  val is_empty : t -> bool

  val get : t -> int -> int -> Dbm_bound.t
  (** [get z i j] is the bound on [x_i - x_j]. *)

  val constrain : t -> int -> int -> Dbm_bound.t -> t
  (** [constrain z i j b] intersects with [x_i - x_j <= b] ([<] if
      strict) and re-canonicalizes incrementally. *)

  val up : t -> t
  (** Delay closure: let arbitrary time elapse. *)

  val reset : t -> int -> t
  (** [reset z x] sets clock [x] to 0. *)

  val free : t -> int -> t
  (** [free z x] forgets all constraints on clock [x]. *)

  val intersect : t -> t -> t
  val includes : t -> t -> bool

  val extrapolate : Tm_base.Rational.t -> t -> t
  (** Max-constant extrapolation: bounds above [mc] become [Inf],
      bounds below [-mc] become [Lt (-mc)]. *)

  val extrapolate_lu :
    lower:Tm_base.Rational.t option array ->
    upper:Tm_base.Rational.t option array ->
    t ->
    t
  (** LU-bound extrapolation (Behrmann–Bouyer–Larsen–Pelánek): entry
      [(i, j)] with constant [c] becomes [Inf] when [c > lower.(i)],
      else [Lt (-upper.(j))] when [c < -upper.(j)].  [lower.(x)] /
      [upper.(x)] are the largest constants appearing in lower-bound
      (resp. upper-bound) comparisons against clock [x]; [None] means
      no such comparison exists ([-inf]), which wipes the whole
      row/column — clock-activity reduction falls out for free.  Index
      [0] is the reference clock and must carry [Some 0].  Coarser than
      (so at least as aggressive as) max-constant extrapolation when
      the arrays dominate the constraint constants, and sound for
      verdicts for the same reason. *)

  val sat : t -> int -> int -> Dbm_bound.t -> bool
  (** [sat z i j b]: is [z /\ (x_i - x_j <= b)] nonempty? *)

  val loose : t -> int
  (** Number of [Inf] entries — a cheap "largeness" proxy used to order
      waiting-list expansion (larger zones first subsume more). *)

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  (** Bump arena for stored-zone payloads.  Zones frozen into an arena
      are slices of a shared chunk (grow-by-doubling, chunks large
      enough to be major-heap allocated), so storing a zone costs no
      minor-heap traffic beyond its small record.  [reset] rewinds the
      bump pointer — only safe when every zone frozen since the last
      reset is discarded speculative work (the per-domain arenas in
      {!Reach} reset at batch boundaries; the main arena never does).
      Already-handed-out slices keep their chunk alive through their
      own pointer, so a reset after a chunk swap never corrupts live
      zones. *)
  module Arena : sig
    type arena

    val create : unit -> arena
    val reset : arena -> unit
  end

  val copy_into : Arena.arena -> t -> t
  (** Re-home a zone's payload into the arena (used when a
      speculatively frozen zone is committed into the shared store). *)

  (** Minimal-constraint form (Larsen et al., RTSS'97): the
      non-redundant subset of a canonical DBM's constraints, enough to
      reconstruct the exact matrix by re-closing.  Stored alongside
      each zone in the waiting/passed lists so subsumption probes scan
      O(active constraints) instead of O(n²).  Construction is
      deterministic, so structural [equal] is exact. *)
  module Min : sig
    type min

    val of_zone : t -> min
    val to_zone : min -> t
    (** Re-closes the kept constraints; round-trips to the identical
        canonical matrix. *)

    val subsumes : min -> t -> bool
    (** [subsumes m z]: does the zone [m] came from include [z]?
        Exact — equivalent to [includes (to_zone m) z]. *)

    val equal : min -> min -> bool

    val count : min -> int
    (** Number of kept constraints (diagnostic / bench column). *)
  end

  (** Destructive operations on a reusable scratch matrix.  One scratch
      lives for a whole exploration; each edge loads a stored zone,
      applies the guard/reset/delay/invariant pipeline in place, and
      freezes the result only if it survives. *)
  module Scratch : sig
    type scratch

    val create : int -> scratch
    (** [create n] allocates a scratch matrix for [n] clocks. *)

    val load : scratch -> t -> unit
    (** Copy a persistent zone into the scratch. *)

    val constrain : scratch -> int -> int -> Dbm_bound.t -> unit
    val up : scratch -> unit
    val reset : scratch -> int -> unit
    val free : scratch -> int -> unit
    val extrapolate : Tm_base.Rational.t -> scratch -> unit

    val extrapolate_lu :
      lower:Tm_base.Rational.t option array ->
      upper:Tm_base.Rational.t option array ->
      scratch ->
      unit
    (** In-place LU-bound extrapolation; see the persistent
        [extrapolate_lu]. *)

    val is_empty : scratch -> bool

    val sat : scratch -> int -> int -> Dbm_bound.t -> bool
    (** Satisfiability of one extra constraint, without mutating. *)

    val freeze : scratch -> t
    (** Snapshot the scratch as a persistent zone.  When the scratch is
        still byte-equal to the zone it was loaded from, returns that
        original (already-interned) zone instead of copying. *)

    val hash : scratch -> int
    (** The hash [freeze] 's result would have — same formula as the
        persistent [hash], computed over the scratch in place. *)

    val equal_zone : scratch -> t -> bool
    (** Would [freeze] 's result be [equal] to this stored zone?
        Compared in place, no allocation. *)

    val freeze_into : ?hash:int -> Arena.arena -> scratch -> t
    (** Like [freeze] (including the loaded-zone short-circuit) but a
        genuine copy lands in the arena instead of the minor heap.
        [?hash] seeds the zone's hash memo when the caller already
        computed {!hash}. *)
  end
end
