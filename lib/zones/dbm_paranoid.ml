(* Paranoid kernel: delegate everything to the fast {!Dbm}, and under a
   sampling period k re-run every k-th scratch pipeline on the
   reference kernel, comparing every observable answer.  The zones this
   kernel produces are Dbm.t values untouched by the checking, so
   exploration behaviour (and zones.stored) is identical to the fast
   engine unless a mismatch aborts the run. *)

module Metrics = Tm_obs.Metrics
module Paranoid = Tm_recover.Paranoid

let c_selfcheck = Metrics.counter "recover.selfcheck_total"
let c_mismatch = Metrics.counter "recover.selfcheck_mismatch"

type t = Dbm.t

let name = "fast+selfcheck"
let dim = Dbm.dim
let zero = Dbm.zero
let top = Dbm.top
let is_empty = Dbm.is_empty
let get = Dbm.get
let constrain = Dbm.constrain
let up = Dbm.up
let reset = Dbm.reset
let free = Dbm.free
let intersect = Dbm.intersect
let includes = Dbm.includes
let extrapolate = Dbm.extrapolate
let extrapolate_lu = Dbm.extrapolate_lu
let sat = Dbm.sat
let loose = Dbm.loose
let equal = Dbm.equal
let hash = Dbm.hash
let pp = Dbm.pp

(* Zones are Dbm.t values, so arena and minimal-constraint storage
   delegate wholesale — the self-check happens at freeze time, before
   a zone enters either. *)
module Arena = Dbm.Arena

let copy_into = Dbm.copy_into

module Min = Dbm.Min

let mismatch fmt =
  Format.kasprintf
    (fun m ->
      Metrics.incr c_mismatch;
      raise (Paranoid.Mismatch m))
    fmt

(* Rebuild a fast zone on the reference kernel from its public bounds.
   The source is canonical, so adding its constraints to [top] one by
   one reproduces the same matrix. *)
let ref_of_fast z =
  let n = Dbm.dim z in
  let r = ref (Dbm_ref.top n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        match Dbm.get z i j with
        | Dbm_bound.Inf -> ()
        | b -> r := Dbm_ref.constrain !r i j b
    done
  done;
  !r

(* The int-kernel cross-check only makes sense while everything in the
   pipeline is exactly representable as a packed integer; integrality
   is probed at load and re-probed per operand, and the mirror simply
   drops out of the pipeline (no verdict either way) on the first
   non-integral value it sees — e.g. a margin-perturbed invariant. *)
let int_q q = q.Tm_base.Rational.den = 1

let int_bound = function
  | Dbm_bound.Inf -> true
  | Dbm_bound.Le q | Dbm_bound.Lt q -> int_q q

let int_zone z =
  let n = Dbm.dim z in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if not (int_bound (Dbm.get z i j)) then ok := false
    done
  done;
  !ok

let int_of_fast z =
  let n = Dbm.dim z in
  let r = ref (Dbm_int.top n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        match Dbm.get z i j with
        | Dbm_bound.Inf -> ()
        | b -> r := Dbm_int.constrain !r i j b
    done
  done;
  !r

(* Test hook: derange a frozen fast zone into a legitimately different
   zone using only public kernel operations, so the entry-by-entry
   comparison below must notice.  Tightening clock 1 against the
   reference clock changes any zone that admits more than a point of
   clock 1 (and empties point zones, which the emptiness comparison
   catches); an empty zone is replaced by [top]. *)
let corrupt_fast z =
  let n = Dbm.dim z in
  if Dbm.is_empty z then Dbm.top n
  else if n < 2 then Dbm.up z
  else
    match Dbm.get z 1 0 with
    | Dbm_bound.Inf -> Dbm.constrain z 1 0 (Dbm_bound.Le Tm_base.Rational.zero)
    | Dbm_bound.Le c -> Dbm.constrain z 1 0 (Dbm_bound.Lt c)
    | Dbm_bound.Lt c ->
        Dbm.constrain z 1 0
          (Dbm_bound.Lt (Tm_base.Rational.sub c Tm_base.Rational.one))

module Scratch = struct
  type scratch = {
    fast : Dbm.Scratch.scratch;
    refk : Dbm_ref.Scratch.scratch;
    intk : Dbm_int.Scratch.scratch;
    mutable loads : int;  (** pipelines seen by this arena *)
    mutable checking : bool;  (** current pipeline is being mirrored *)
    mutable int_checking : bool;
        (** int kernel also mirrors this (so-far integral) pipeline *)
  }

  let create n =
    {
      fast = Dbm.Scratch.create n;
      refk = Dbm_ref.Scratch.create n;
      intk = Dbm_int.Scratch.create n;
      loads = 0;
      checking = false;
      int_checking = false;
    }

  let load s z =
    Dbm.Scratch.load s.fast z;
    let k = Paranoid.every () in
    s.loads <- s.loads + 1;
    s.checking <- k > 0 && s.loads mod k = 0;
    s.int_checking <- false;
    if s.checking then begin
      Metrics.incr c_selfcheck;
      Dbm_ref.Scratch.load s.refk (ref_of_fast z);
      if int_zone z then begin
        s.int_checking <- true;
        Dbm_int.Scratch.load s.intk (int_of_fast z)
      end
    end

  let constrain s i j b =
    Dbm.Scratch.constrain s.fast i j b;
    if s.checking then begin
      Dbm_ref.Scratch.constrain s.refk i j b;
      if s.int_checking then
        if int_bound b then Dbm_int.Scratch.constrain s.intk i j b
        else s.int_checking <- false
    end

  let up s =
    Dbm.Scratch.up s.fast;
    if s.checking then begin
      Dbm_ref.Scratch.up s.refk;
      if s.int_checking then Dbm_int.Scratch.up s.intk
    end

  let reset s x =
    Dbm.Scratch.reset s.fast x;
    if s.checking then begin
      Dbm_ref.Scratch.reset s.refk x;
      if s.int_checking then Dbm_int.Scratch.reset s.intk x
    end

  let free s x =
    Dbm.Scratch.free s.fast x;
    if s.checking then begin
      Dbm_ref.Scratch.free s.refk x;
      if s.int_checking then Dbm_int.Scratch.free s.intk x
    end

  let extrapolate mc s =
    Dbm.Scratch.extrapolate mc s.fast;
    if s.checking then begin
      Dbm_ref.Scratch.extrapolate mc s.refk;
      if s.int_checking then
        if int_q mc then Dbm_int.Scratch.extrapolate mc s.intk
        else s.int_checking <- false
    end

  let extrapolate_lu ~lower ~upper s =
    Dbm.Scratch.extrapolate_lu ~lower ~upper s.fast;
    if s.checking then begin
      Dbm_ref.Scratch.extrapolate_lu ~lower ~upper s.refk;
      if s.int_checking then begin
        (* The int kernel rounds non-integer L/U bounds up, which is
           sound but no longer the same abstraction — only mirror an
           exactly representable extrapolation. *)
        let int_opt = function None -> true | Some q -> int_q q in
        if Array.for_all int_opt lower && Array.for_all int_opt upper then
          Dbm_int.Scratch.extrapolate_lu ~lower ~upper s.intk
        else s.int_checking <- false
      end
    end

  let is_empty s =
    let fa = Dbm.Scratch.is_empty s.fast in
    if s.checking then begin
      let ra = Dbm_ref.Scratch.is_empty s.refk in
      if fa <> ra then
        mismatch
          "selfcheck: emptiness disagrees mid-pipeline (fast=%b, ref=%b)" fa
          ra;
      if s.int_checking then begin
        let ia = Dbm_int.Scratch.is_empty s.intk in
        if ia <> ra then
          mismatch
            "selfcheck: emptiness disagrees mid-pipeline (int=%b, ref=%b)" ia
            ra
      end
    end;
    fa

  let sat s i j b =
    let fa = Dbm.Scratch.sat s.fast i j b in
    if s.checking then begin
      let ra = Dbm_ref.Scratch.sat s.refk i j b in
      if fa <> ra then
        mismatch "selfcheck: sat(%d,%d) disagrees (fast=%b, ref=%b)" i j fa ra;
      if s.int_checking && int_bound b then begin
        let ia = Dbm_int.Scratch.sat s.intk i j b in
        if ia <> ra then
          mismatch "selfcheck: sat(%d,%d) disagrees (int=%b, ref=%b)" i j ia
            ra
      end
    end;
    fa

  (* Cross-kernel comparison of a frozen fast zone against the mirror
     pipelines; shared by [freeze] and [freeze_into]. *)
  let check_frozen s zf =
    if not s.checking then zf
    else begin
      let zf = if Paranoid.corrupt () then corrupt_fast zf else zf in
      let zr = Dbm_ref.Scratch.freeze s.refk in
      let fe = Dbm.is_empty zf and re = Dbm_ref.is_empty zr in
      if fe <> re then
        mismatch "selfcheck: frozen emptiness disagrees (fast=%b, ref=%b)" fe
          re;
      if not fe then begin
        let n = Dbm.dim zf in
        if n <> Dbm_ref.dim zr then
          mismatch "selfcheck: frozen dimension disagrees (fast=%d, ref=%d)" n
            (Dbm_ref.dim zr);
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let bf = Dbm.get zf i j and br = Dbm_ref.get zr i j in
            if Dbm_bound.compare bf br <> 0 then
              mismatch
                "selfcheck: frozen zone disagrees at (%d,%d): fast %a, ref %a"
                i j Dbm_bound.pp bf Dbm_bound.pp br
          done
        done
      end;
      (* Int-vs-ref leg of the cross-check: on an all-integral pipeline
         the packed-int kernel must land on the very same zone. *)
      if s.int_checking then begin
        let zi = Dbm_int.Scratch.freeze s.intk in
        let ie = Dbm_int.is_empty zi in
        if ie <> re then
          mismatch "selfcheck: frozen emptiness disagrees (int=%b, ref=%b)"
            ie re;
        if not ie then begin
          let n = Dbm_ref.dim zr in
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              let bi = Dbm_int.get zi i j and br = Dbm_ref.get zr i j in
              if Dbm_bound.compare bi br <> 0 then
                mismatch
                  "selfcheck: frozen zone disagrees at (%d,%d): int %a, ref \
                   %a"
                  i j Dbm_bound.pp bi Dbm_bound.pp br
            done
          done
        end
      end;
      zf
    end

  let freeze s = check_frozen s (Dbm.Scratch.freeze s.fast)

  let freeze_into ?hash a s =
    check_frozen s (Dbm.Scratch.freeze_into ?hash a s.fast)

  let hash s = Dbm.Scratch.hash s.fast
  let equal_zone s z = Dbm.Scratch.equal_zone s.fast z
end
