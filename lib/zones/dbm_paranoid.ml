(* Paranoid kernel: delegate everything to the fast {!Dbm}, and under a
   sampling period k re-run every k-th scratch pipeline on the
   reference kernel, comparing every observable answer.  The zones this
   kernel produces are Dbm.t values untouched by the checking, so
   exploration behaviour (and zones.stored) is identical to the fast
   engine unless a mismatch aborts the run. *)

module Metrics = Tm_obs.Metrics
module Paranoid = Tm_recover.Paranoid

let c_selfcheck = Metrics.counter "recover.selfcheck_total"
let c_mismatch = Metrics.counter "recover.selfcheck_mismatch"

type t = Dbm.t

let name = "fast+selfcheck"
let dim = Dbm.dim
let zero = Dbm.zero
let top = Dbm.top
let is_empty = Dbm.is_empty
let get = Dbm.get
let constrain = Dbm.constrain
let up = Dbm.up
let reset = Dbm.reset
let free = Dbm.free
let intersect = Dbm.intersect
let includes = Dbm.includes
let extrapolate = Dbm.extrapolate
let sat = Dbm.sat
let loose = Dbm.loose
let equal = Dbm.equal
let hash = Dbm.hash
let pp = Dbm.pp

let mismatch fmt =
  Format.kasprintf
    (fun m ->
      Metrics.incr c_mismatch;
      raise (Paranoid.Mismatch m))
    fmt

(* Rebuild a fast zone on the reference kernel from its public bounds.
   The source is canonical, so adding its constraints to [top] one by
   one reproduces the same matrix. *)
let ref_of_fast z =
  let n = Dbm.dim z in
  let r = ref (Dbm_ref.top n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        match Dbm.get z i j with
        | Dbm_bound.Inf -> ()
        | b -> r := Dbm_ref.constrain !r i j b
    done
  done;
  !r

(* Test hook: derange a frozen fast zone into a legitimately different
   zone using only public kernel operations, so the entry-by-entry
   comparison below must notice.  Tightening clock 1 against the
   reference clock changes any zone that admits more than a point of
   clock 1 (and empties point zones, which the emptiness comparison
   catches); an empty zone is replaced by [top]. *)
let corrupt_fast z =
  let n = Dbm.dim z in
  if Dbm.is_empty z then Dbm.top n
  else if n < 2 then Dbm.up z
  else
    match Dbm.get z 1 0 with
    | Dbm_bound.Inf -> Dbm.constrain z 1 0 (Dbm_bound.Le Tm_base.Rational.zero)
    | Dbm_bound.Le c -> Dbm.constrain z 1 0 (Dbm_bound.Lt c)
    | Dbm_bound.Lt c ->
        Dbm.constrain z 1 0
          (Dbm_bound.Lt (Tm_base.Rational.sub c Tm_base.Rational.one))

module Scratch = struct
  type scratch = {
    fast : Dbm.Scratch.scratch;
    refk : Dbm_ref.Scratch.scratch;
    mutable loads : int;  (** pipelines seen by this arena *)
    mutable checking : bool;  (** current pipeline is being mirrored *)
  }

  let create n =
    {
      fast = Dbm.Scratch.create n;
      refk = Dbm_ref.Scratch.create n;
      loads = 0;
      checking = false;
    }

  let load s z =
    Dbm.Scratch.load s.fast z;
    let k = Paranoid.every () in
    s.loads <- s.loads + 1;
    s.checking <- k > 0 && s.loads mod k = 0;
    if s.checking then begin
      Metrics.incr c_selfcheck;
      Dbm_ref.Scratch.load s.refk (ref_of_fast z)
    end

  let constrain s i j b =
    Dbm.Scratch.constrain s.fast i j b;
    if s.checking then Dbm_ref.Scratch.constrain s.refk i j b

  let up s =
    Dbm.Scratch.up s.fast;
    if s.checking then Dbm_ref.Scratch.up s.refk

  let reset s x =
    Dbm.Scratch.reset s.fast x;
    if s.checking then Dbm_ref.Scratch.reset s.refk x

  let free s x =
    Dbm.Scratch.free s.fast x;
    if s.checking then Dbm_ref.Scratch.free s.refk x

  let extrapolate mc s =
    Dbm.Scratch.extrapolate mc s.fast;
    if s.checking then Dbm_ref.Scratch.extrapolate mc s.refk

  let is_empty s =
    let fa = Dbm.Scratch.is_empty s.fast in
    if s.checking then begin
      let ra = Dbm_ref.Scratch.is_empty s.refk in
      if fa <> ra then
        mismatch
          "selfcheck: emptiness disagrees mid-pipeline (fast=%b, ref=%b)" fa
          ra
    end;
    fa

  let sat s i j b =
    let fa = Dbm.Scratch.sat s.fast i j b in
    if s.checking then begin
      let ra = Dbm_ref.Scratch.sat s.refk i j b in
      if fa <> ra then
        mismatch "selfcheck: sat(%d,%d) disagrees (fast=%b, ref=%b)" i j fa ra
    end;
    fa

  let freeze s =
    let zf = Dbm.Scratch.freeze s.fast in
    if not s.checking then zf
    else begin
      let zf = if Paranoid.corrupt () then corrupt_fast zf else zf in
      let zr = Dbm_ref.Scratch.freeze s.refk in
      let fe = Dbm.is_empty zf and re = Dbm_ref.is_empty zr in
      if fe <> re then
        mismatch "selfcheck: frozen emptiness disagrees (fast=%b, ref=%b)" fe
          re;
      if not fe then begin
        let n = Dbm.dim zf in
        if n <> Dbm_ref.dim zr then
          mismatch "selfcheck: frozen dimension disagrees (fast=%d, ref=%d)" n
            (Dbm_ref.dim zr);
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let bf = Dbm.get zf i j and br = Dbm_ref.get zr i j in
            if Dbm_bound.compare bf br <> 0 then
              mismatch
                "selfcheck: frozen zone disagrees at (%d,%d): fast %a, ref %a"
                i j Dbm_bound.pp bf Dbm_bound.pp br
          done
        done
      end;
      zf
    end
end
