module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Ioa = Tm_ioa.Ioa
module Boundmap = Tm_timed.Boundmap

exception Open_system of string

type ('s, 'a) t = {
  aut : ('s, 'a) Ioa.t;
  bm : Boundmap.t;
  classes : string array;
  nclasses : int;
  max_const : Rational.t;
  members : 'a array array;
}

let make (a : ('s, 'a) Ioa.t) bm =
  (match
     List.find_opt (fun act -> a.Ioa.kind_of act = Ioa.Input) a.Ioa.alphabet
   with
  | Some _ -> raise (Open_system "automaton has input actions")
  | None -> ());
  (match Boundmap.covers bm a with
  | Ok () -> ()
  | Error m -> raise (Open_system m));
  let classes = Array.of_list a.Ioa.classes in
  (* Class membership of every action, resolved once: [Ioa.class_of]
     may build its class name on every call (systems typically
     [sprintf] it), so the per-state paths below must never consult it
     again — {!Reach} computes an enabled-vector per discrete location,
     and an alphabet-times-classes name scan there dominates the whole
     exploration's allocation. *)
  let members =
    Array.map
      (fun c ->
        Array.of_list
          (List.filter
             (fun act -> a.Ioa.class_of act = Some c)
             a.Ioa.alphabet))
      classes
  in
  {
    aut = a;
    bm;
    classes;
    nclasses = Array.length classes;
    max_const = Boundmap.max_constant bm;
    members;
  }

let clock enc c =
  let found = ref (-1) in
  Array.iteri
    (fun i c' -> if !found < 0 && String.equal c c' then found := i + 1)
    enc.classes;
  if !found < 0 then raise (Open_system ("unknown class " ^ c));
  !found

let class_index enc act =
  match enc.aut.Ioa.class_of act with
  | None -> None
  | Some c -> Some (clock enc c - 1)

(* Enabledness of class [i] in [s] over the precomputed members —
   allocation-free except for the successor lists [delta] builds. *)
let class_on enc i s =
  Array.exists (fun act -> enc.aut.Ioa.delta s act <> []) enc.members.(i)

let enabled_vec enc s = Array.init enc.nclasses (fun i -> class_on enc i s)

let guard enc act =
  match enc.aut.Ioa.class_of act with
  | None -> None
  | Some c ->
      let bl = Boundmap.lower enc.bm c in
      if Rational.sign bl = 0 then None else Some (clock enc c, bl)

type op = Reset of int | Free of int

let step_ops enc s act s' =
  let ops = ref [] in
  Array.iteri
    (fun i c ->
      let x = i + 1 in
      if class_on enc i s' then begin
        if enc.aut.Ioa.class_of act = Some c || not (class_on enc i s) then
          ops := Reset x :: !ops
      end
      else ops := Free x :: !ops)
    enc.classes;
  List.rev !ops

let start_ops enc s =
  let ops = ref [] in
  Array.iteri
    (fun i _ ->
      if not (class_on enc i s) then ops := Free (i + 1) :: !ops)
    enc.classes;
  List.rev !ops

let invariant enc s =
  let invs = ref [] in
  Array.iteri
    (fun i c ->
      if class_on enc i s then
        match Boundmap.upper enc.bm c with
        | Time.Fin q -> invs := (i + 1, q) :: !invs
        | Time.Inf -> ())
    enc.classes;
  List.rev !invs

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let scale enc =
  Array.fold_left
    (fun acc c ->
      let iv = Boundmap.find enc.bm c in
      let acc = lcm acc (Interval.lo iv).Rational.den in
      match Interval.hi iv with
      | Time.Fin q -> lcm acc q.Rational.den
      | Time.Inf -> acc)
    1 enc.classes
