module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Ioa = Tm_ioa.Ioa
module Boundmap = Tm_timed.Boundmap

exception Open_system of string

type ('s, 'a) t = {
  aut : ('s, 'a) Ioa.t;
  bm : Boundmap.t;
  classes : string array;
  nclasses : int;
  max_const : Rational.t;
}

let make (a : ('s, 'a) Ioa.t) bm =
  (match
     List.find_opt (fun act -> a.Ioa.kind_of act = Ioa.Input) a.Ioa.alphabet
   with
  | Some _ -> raise (Open_system "automaton has input actions")
  | None -> ());
  (match Boundmap.covers bm a with
  | Ok () -> ()
  | Error m -> raise (Open_system m));
  let classes = Array.of_list a.Ioa.classes in
  {
    aut = a;
    bm;
    classes;
    nclasses = Array.length classes;
    max_const = Boundmap.max_constant bm;
  }

let clock enc c =
  let found = ref (-1) in
  Array.iteri
    (fun i c' -> if !found < 0 && String.equal c c' then found := i + 1)
    enc.classes;
  if !found < 0 then raise (Open_system ("unknown class " ^ c));
  !found

let class_index enc act =
  match enc.aut.Ioa.class_of act with
  | None -> None
  | Some c -> Some (clock enc c - 1)

let enabled_vec enc s =
  Array.map (fun c -> Ioa.class_enabled enc.aut c s) enc.classes

let guard enc act =
  match enc.aut.Ioa.class_of act with
  | None -> None
  | Some c ->
      let bl = Boundmap.lower enc.bm c in
      if Rational.sign bl = 0 then None else Some (clock enc c, bl)

type op = Reset of int | Free of int

let step_ops enc s act s' =
  let ops = ref [] in
  Array.iteri
    (fun i c ->
      let x = i + 1 in
      if Ioa.class_enabled enc.aut c s' then begin
        if
          enc.aut.Ioa.class_of act = Some c
          || not (Ioa.class_enabled enc.aut c s)
        then ops := Reset x :: !ops
      end
      else ops := Free x :: !ops)
    enc.classes;
  List.rev !ops

let start_ops enc s =
  let ops = ref [] in
  Array.iteri
    (fun i c ->
      if not (Ioa.class_enabled enc.aut c s) then ops := Free (i + 1) :: !ops)
    enc.classes;
  List.rev !ops

let invariant enc s =
  let invs = ref [] in
  Array.iteri
    (fun i c ->
      if Ioa.class_enabled enc.aut c s then
        match Boundmap.upper enc.bm c with
        | Time.Fin q -> invs := (i + 1, q) :: !invs
        | Time.Inf -> ())
    enc.classes;
  List.rev !invs

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let scale enc =
  Array.fold_left
    (fun acc c ->
      let iv = Boundmap.find enc.bm c in
      let acc = lcm acc (Interval.lo iv).Rational.den in
      match Interval.hi iv with
      | Time.Fin q -> lcm acc q.Rational.den
      | Time.Inf -> acc)
    1 enc.classes
