(* Fast DBM kernel: flat array, in-place destructive core, persistent
   API on top.

   Compared with the reference kernel ({!Dbm_ref}) this kernel
   - keeps a [Scratch] matrix that whole edge pipelines mutate in
     place, so a guard+reset+up+invariant+extrapolate chain costs two
     array copies (load and freeze) instead of one per operation;
   - answers [sat] in O(1) on a canonical matrix: adding
     [x_i - x_j <= b] empties the zone iff the cycle [b + m[j][i]]
     rejects 0, so no copy or quadratic pass is needed;
   - builds [zero]/[top] from their closed forms, which are already
     canonical, skipping the O(n^3) Floyd-Warshall of the reference;
   - memoizes the structural hash per zone and short-circuits [equal]
     and [includes] on physical equality, which the hash-consed store
     in {!Reach} makes the common case.

   Every optimisation here is checked op-for-op against {!Dbm_ref} by
   test/test_dbm_diff.ml. *)

module Rational = Tm_base.Rational
module Metrics = Tm_obs.Metrics

(* Per-operation counters; handles are module-level so each DBM
   operation pays one field increment.  Scratch ops count too: dbm.ops
   measures arithmetic work, not API style. *)
let op name = Metrics.counter "dbm.ops" ~labels:[ ("op", name) ]
let c_canonicalize = op "canonicalize"
let c_constrain = op "constrain"
let c_up = op "up"
let c_reset = op "reset"
let c_free = op "free"
let c_intersect = op "intersect"
let c_includes = op "includes"
let c_extrapolate = op "extrapolate"
let c_sat = op "sat"

type bnd = Dbm_bound.t = Lt of Rational.t | Le of Rational.t | Inf

let bnd_compare = Dbm_bound.compare
let bnd_min = Dbm_bound.min_b
let bnd_add = Dbm_bound.add
let bnd_neg_ok = Dbm_bound.neg_ok

(* [hmemo] caches the structural hash ([min_int] = not yet computed);
   persistent values are immutable apart from this memo. *)
type t = { n : int; m : bnd array; empty : bool; mutable hmemo : int }

let name = "fast"
let dim z = z.n
let get z i j = z.m.(i * z.n + j)
let is_empty z = z.empty
let mk n m empty = { n; m; empty; hmemo = min_int }

(* ------------------------------------------------------------------ *)
(* In-place core: all operations work directly on a flat array and
   assume a canonical, nonempty input unless stated otherwise.         *)

(* Floyd-Warshall tightening; detects emptiness via negative diagonal.
   Only needed after [intersect]/[extrapolate]; the single-constraint
   path uses [tighten_arr]. *)
let canonicalize_arr n m =
  Metrics.incr c_canonicalize;
  (* Floyd–Warshall with the [i -> k] hop hoisted: an [Inf] hop can
     tighten nothing through [k], so the inner loop is skipped — under
     LU widening (inactive clocks are all-[Inf] rows) this saves most
     of the n^3 work on the per-edge re-closure path. *)
  (try
     for k = 0 to n - 1 do
       let rowk = k * n in
       for i = 0 to n - 1 do
         let rowi = i * n in
         (match m.(rowi + k) with
         | Inf -> ()
         | ik when k <> i ->
             for j = 0 to n - 1 do
               match m.(rowk + j) with
               | Inf -> ()
               | kj ->
                   let via = bnd_add ik kj in
                   if bnd_compare via m.(rowi + j) < 0 then
                     m.(rowi + j) <- via
             done
         | _ -> ());
         if not (bnd_neg_ok m.(rowi + i)) then raise Exit
       done
     done
   with Exit -> m.(0) <- Lt Rational.zero);
  not (bnd_neg_ok m.(0))

(* Partial re-canonicalization after adding x_i - x_j <= b (i <> j) to
   a canonical nonempty matrix where the constraint is known both
   tightening and satisfiable: every entry improves only through the
   new edge, so one O(n^2) pass x -> i -> [b] -> j -> y suffices.
   In-place is safe: the pass never tightens row j or column i (their
   shortest paths through the new edge close a nonnegative cycle), so
   all values it reads are originals. *)
let tighten_arr n m i j b =
  let rowj = j * n in
  for x = 0 to n - 1 do
    let x_to_i = m.((x * n) + i) in
    if x_to_i <> Inf then begin
      let via = bnd_add x_to_i b in
      let rowx = x * n in
      for y = 0 to n - 1 do
        let jy = m.(rowj + y) in
        if jy <> Inf then begin
          let cand = bnd_add via jy in
          if bnd_compare cand m.(rowx + y) < 0 then m.(rowx + y) <- cand
        end
      done
    end
  done

(* Emptiness of [z /\ (x_i - x_j <= b)] for canonical nonempty m in
   O(1): the only candidate negative cycle is i -> j (new edge) -> i. *)
let unsat_with n m i j b = not (bnd_neg_ok (bnd_add b m.((j * n) + i)))

let up_arr n m =
  for i = 1 to n - 1 do
    m.(i * n) <- Inf
  done

(* In-place is safe: writes hit row x / column x only, reads come from
   row 0 / column 0, and the overlap cells m[0][x], m[x][0] are written
   at j = 0 before any j > 0 read (which skips j = x anyway). *)
let reset_arr n m x =
  for j = 0 to n - 1 do
    if j <> x then begin
      m.((x * n) + j) <- m.(j);
      (* x_x - x_j = 0 - x_j *)
      m.((j * n) + x) <- m.(j * n)
    end
  done;
  m.((x * n) + x) <- Le Rational.zero

let free_arr n m x =
  for j = 0 to n - 1 do
    if j <> x then begin
      m.((x * n) + j) <- Inf;
      m.((j * n) + x) <- m.(j * n)
    end
  done

(* LU relaxation: entry (i, j) with constant c goes to Inf when
   c > lower.(i), else to Lt (-upper.(j)) when c < -upper.(j); a [None]
   bound is -inf and wipes unconditionally.  Comparisons are on the
   constant only (strictness does not matter), exactly as in the int
   kernel, so the differential harness can demand bit-equal results.
   Returns whether anything changed. *)
let extrapolate_lu_arr n m lower upper =
  let changed = ref false in
  for i = 0 to n - 1 do
    let row = i * n in
    for j = 0 to n - 1 do
      if i <> j then
        match m.(row + j) with
        | Inf -> ()
        | Le c | Lt c -> (
            let wipe =
              match lower.(i) with
              | None -> true
              | Some l -> Rational.compare c l > 0
            in
            if wipe then begin
              m.(row + j) <- Inf;
              changed := true
            end
            else
              match upper.(j) with
              | None ->
                  m.(row + j) <- Inf;
                  changed := true
              | Some u ->
                  let nu = Rational.neg u in
                  if Rational.compare c nu < 0 then begin
                    m.(row + j) <- Lt nu;
                    changed := true
                  end)
    done
  done;
  !changed

(* Relax entries beyond the max constant; returns whether anything
   changed (in which case the matrix needs re-closing). *)
let extrapolate_arr n m mc neg_mc =
  let changed = ref false in
  for k = 0 to (n * n) - 1 do
    match m.(k) with
    | Inf -> ()
    | Le c | Lt c ->
        if Rational.compare c mc > 0 then begin
          m.(k) <- Inf;
          changed := true
        end
        else if Rational.compare c neg_mc < 0 then begin
          m.(k) <- Lt neg_mc;
          changed := true
        end
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* Persistent API.                                                     *)

(* The closed forms of [zero] and [top] are already canonical — no
   Floyd-Warshall needed. *)
let zero n =
  if n < 1 then invalid_arg "Dbm.zero";
  mk n (Array.make (n * n) (Le Rational.zero)) false

let top n =
  if n < 1 then invalid_arg "Dbm.top";
  let m = Array.make (n * n) Inf in
  for i = 0 to n - 1 do
    m.((i * n) + i) <- Le Rational.zero;
    (* reference minus any clock is <= 0: clocks are nonnegative *)
    m.(i) <- Le Rational.zero
  done;
  mk n m false

let constrain z i j b =
  Metrics.incr c_constrain;
  if i < 0 || i >= z.n || j < 0 || j >= z.n then invalid_arg "Dbm.constrain";
  if z.empty then z
  else if bnd_compare b (get z i j) >= 0 then z
  else if unsat_with z.n z.m i j b then
    (* Keep the untouched matrix; [equal]/[hash]/[includes] never look
       at the entries of an empty zone. *)
    { n = z.n; m = z.m; empty = true; hmemo = 0 }
  else begin
    (* i = j would require b < Le 0, which [unsat_with] already caught
       (m[i][i] = Le 0), so the tightening pass only sees i <> j. *)
    let m = Array.copy z.m in
    tighten_arr z.n m i j b;
    mk z.n m false
  end

let up z =
  Metrics.incr c_up;
  if z.empty then z
  else begin
    let m = Array.copy z.m in
    up_arr z.n m;
    mk z.n m false
  end

let reset z x =
  Metrics.incr c_reset;
  if x < 1 || x >= z.n then invalid_arg "Dbm.reset";
  if z.empty then z
  else begin
    let m = Array.copy z.m in
    reset_arr z.n m x;
    mk z.n m false
  end

let free z x =
  Metrics.incr c_free;
  if x < 1 || x >= z.n then invalid_arg "Dbm.free";
  if z.empty then z
  else begin
    let m = Array.copy z.m in
    free_arr z.n m x;
    mk z.n m false
  end

let includes big small =
  Metrics.incr c_includes;
  if big.n <> small.n then invalid_arg "Dbm.includes";
  if big == small then true
  else if small.empty then true
  else if big.empty then false
  else begin
    let len = big.n * big.n in
    let k = ref 0 in
    let ok = ref true in
    while !ok && !k < len do
      if bnd_compare small.m.(!k) big.m.(!k) > 0 then ok := false;
      incr k
    done;
    !ok
  end

let intersect a b =
  Metrics.incr c_intersect;
  if a.n <> b.n then invalid_arg "Dbm.intersect";
  if a == b then a
  else if a.empty then a
  else if b.empty then b
  else begin
    let m = Array.init (a.n * a.n) (fun k -> bnd_min a.m.(k) b.m.(k)) in
    let empty = canonicalize_arr a.n m in
    mk a.n m empty
  end

let extrapolate mc z =
  Metrics.incr c_extrapolate;
  if z.empty then z
  else begin
    let m = Array.copy z.m in
    if not (extrapolate_arr z.n m mc (Rational.neg mc)) then z
    else begin
      (* Extrapolation relaxes a nonempty zone, so it stays nonempty. *)
      ignore (canonicalize_arr z.n m);
      mk z.n m false
    end
  end

let extrapolate_lu ~lower ~upper z =
  Metrics.incr c_extrapolate;
  if z.empty then z
  else begin
    let m = Array.copy z.m in
    if not (extrapolate_lu_arr z.n m lower upper) then z
    else begin
      (* LU extrapolation only relaxes entries, so nonempty stays
         nonempty. *)
      ignore (canonicalize_arr z.n m);
      mk z.n m false
    end
  end

let sat z i j b =
  Metrics.incr c_sat;
  if i < 0 || i >= z.n || j < 0 || j >= z.n then invalid_arg "Dbm.sat";
  (not z.empty) && not (unsat_with z.n z.m i j b)

let loose z =
  if z.empty then 0
  else Array.fold_left (fun acc b -> if b = Inf then acc + 1 else acc) 0 z.m

let hash z =
  if z.empty then 0
  else if z.hmemo <> min_int then z.hmemo
  else begin
    let h =
      Array.fold_left (fun h b -> (h * 31) + Dbm_bound.hash b) z.n z.m
    in
    let h = if h = min_int then min_int + 1 else h in
    z.hmemo <- h;
    h
  end

let equal a b =
  a == b
  || a.n = b.n && a.empty = b.empty
     && (a.empty
        || (a.hmemo = min_int || b.hmemo = min_int || a.hmemo = b.hmemo)
           &&
           let len = a.n * a.n in
           let k = ref 0 in
           let eq = ref true in
           while !eq && !k < len do
             if bnd_compare a.m.(!k) b.m.(!k) <> 0 then eq := false;
             incr k
           done;
           !eq)

let pp fmt z =
  if z.empty then Format.pp_print_string fmt "empty"
  else begin
    Format.fprintf fmt "@[<v>";
    for i = 0 to z.n - 1 do
      for j = 0 to z.n - 1 do
        Format.fprintf fmt "%a " Dbm_bound.pp (get z i j)
      done;
      Format.fprintf fmt "@,"
    done;
    Format.fprintf fmt "@]"
  end

(* ------------------------------------------------------------------ *)
(* Scratch: one reusable matrix per exploration; every op mutates it
   in place and keeps it canonical, so [freeze] is a plain copy.       *)

module Scratch = struct
  type scratch = { sn : int; sm : bnd array; mutable sempty : bool }

  let create n =
    if n < 1 then invalid_arg "Dbm.Scratch.create";
    { sn = n; sm = Array.make (n * n) Inf; sempty = true }

  let load s z =
    if s.sn <> z.n then invalid_arg "Dbm.Scratch.load";
    Array.blit z.m 0 s.sm 0 (s.sn * s.sn);
    s.sempty <- z.empty

  let is_empty s = s.sempty

  let constrain s i j b =
    Metrics.incr c_constrain;
    if i < 0 || i >= s.sn || j < 0 || j >= s.sn then
      invalid_arg "Dbm.Scratch.constrain";
    if (not s.sempty) && bnd_compare b s.sm.((i * s.sn) + j) < 0 then
      if unsat_with s.sn s.sm i j b then s.sempty <- true
      else tighten_arr s.sn s.sm i j b

  let up s =
    Metrics.incr c_up;
    if not s.sempty then up_arr s.sn s.sm

  let reset s x =
    Metrics.incr c_reset;
    if x < 1 || x >= s.sn then invalid_arg "Dbm.Scratch.reset";
    if not s.sempty then reset_arr s.sn s.sm x

  let free s x =
    Metrics.incr c_free;
    if x < 1 || x >= s.sn then invalid_arg "Dbm.Scratch.free";
    if not s.sempty then free_arr s.sn s.sm x

  let extrapolate mc s =
    Metrics.incr c_extrapolate;
    if (not s.sempty) && extrapolate_arr s.sn s.sm mc (Rational.neg mc) then
      ignore (canonicalize_arr s.sn s.sm)

  let extrapolate_lu ~lower ~upper s =
    Metrics.incr c_extrapolate;
    if (not s.sempty) && extrapolate_lu_arr s.sn s.sm lower upper then
      ignore (canonicalize_arr s.sn s.sm)

  let sat s i j b =
    Metrics.incr c_sat;
    if i < 0 || i >= s.sn || j < 0 || j >= s.sn then
      invalid_arg "Dbm.Scratch.sat";
    (not s.sempty) && not (unsat_with s.sn s.sm i j b)

  let freeze s = mk s.sn (Array.copy s.sm) s.sempty
end
