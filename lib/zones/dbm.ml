(* Fast DBM kernel: flat array, in-place destructive core, persistent
   API on top.

   Compared with the reference kernel ({!Dbm_ref}) this kernel
   - keeps a [Scratch] matrix that whole edge pipelines mutate in
     place, so a guard+reset+up+invariant+extrapolate chain costs two
     array copies (load and freeze) instead of one per operation;
   - answers [sat] in O(1) on a canonical matrix: adding
     [x_i - x_j <= b] empties the zone iff the cycle [b + m[j][i]]
     rejects 0, so no copy or quadratic pass is needed;
   - builds [zero]/[top] from their closed forms, which are already
     canonical, skipping the O(n^3) Floyd-Warshall of the reference;
   - memoizes the structural hash per zone and short-circuits [equal]
     and [includes] on physical equality, which the hash-consed store
     in {!Reach} makes the common case.

   Every optimisation here is checked op-for-op against {!Dbm_ref} by
   test/test_dbm_diff.ml. *)

module Rational = Tm_base.Rational
module Metrics = Tm_obs.Metrics

(* Per-operation counters; handles are module-level so each DBM
   operation pays one field increment.  Scratch ops count too: dbm.ops
   measures arithmetic work, not API style. *)
let op name = Metrics.counter "dbm.ops" ~labels:[ ("op", name) ]
let c_canonicalize = op "canonicalize"
let c_constrain = op "constrain"
let c_up = op "up"
let c_reset = op "reset"
let c_free = op "free"
let c_intersect = op "intersect"
let c_includes = op "includes"
let c_extrapolate = op "extrapolate"
let c_sat = op "sat"
let c_minimize = op "minimize"
let c_min_subsumes = op "min_subsumes"

type bnd = Dbm_bound.t = Lt of Rational.t | Le of Rational.t | Inf

let bnd_compare = Dbm_bound.compare
let bnd_min = Dbm_bound.min_b
let bnd_add = Dbm_bound.add
let bnd_neg_ok = Dbm_bound.neg_ok

(* [hmemo] caches the structural hash ([min_int] = not yet computed);
   persistent values are immutable apart from this memo.  [off] is the
   start of this zone's n*n slice inside [m]: zones frozen into an
   {!Arena} share one large chunk array (off > 0 possible), heap zones
   own a exactly-sized array at off 0. *)
type t = { n : int; m : bnd array; off : int; empty : bool; mutable hmemo : int }

let name = "fast"
let dim z = z.n
let get z i j = z.m.(z.off + (i * z.n) + j)
let is_empty z = z.empty
let mk n m empty = { n; m; off = 0; empty; hmemo = min_int }

(* Copy a zone's payload out to a fresh exactly-sized array (the
   in-place core always works at offset 0 on owned arrays). *)
let dup z =
  if z.off = 0 && Array.length z.m = z.n * z.n then Array.copy z.m
  else Array.sub z.m z.off (z.n * z.n)

(* ------------------------------------------------------------------ *)
(* In-place core: all operations work directly on a flat array and
   assume a canonical, nonempty input unless stated otherwise.         *)

(* Floyd-Warshall tightening; detects emptiness via negative diagonal.
   Only needed after [intersect]/[extrapolate]; the single-constraint
   path uses [tighten_arr]. *)
let canonicalize_arr n m =
  Metrics.incr c_canonicalize;
  (* Floyd–Warshall with the [i -> k] hop hoisted: an [Inf] hop can
     tighten nothing through [k], so the inner loop is skipped — under
     LU widening (inactive clocks are all-[Inf] rows) this saves most
     of the n^3 work on the per-edge re-closure path. *)
  (try
     for k = 0 to n - 1 do
       let rowk = k * n in
       for i = 0 to n - 1 do
         let rowi = i * n in
         (match m.(rowi + k) with
         | Inf -> ()
         | ik when k <> i ->
             for j = 0 to n - 1 do
               match m.(rowk + j) with
               | Inf -> ()
               | kj ->
                   let via = bnd_add ik kj in
                   if bnd_compare via m.(rowi + j) < 0 then
                     m.(rowi + j) <- via
             done
         | _ -> ());
         if not (bnd_neg_ok m.(rowi + i)) then raise Exit
       done
     done
   with Exit -> m.(0) <- Lt Rational.zero);
  not (bnd_neg_ok m.(0))

(* Partial re-canonicalization after adding x_i - x_j <= b (i <> j) to
   a canonical nonempty matrix where the constraint is known both
   tightening and satisfiable: every entry improves only through the
   new edge, so one O(n^2) pass x -> i -> [b] -> j -> y suffices.
   In-place is safe: the pass never tightens row j or column i (their
   shortest paths through the new edge close a nonnegative cycle), so
   all values it reads are originals. *)
let tighten_arr n m i j b =
  let rowj = j * n in
  for x = 0 to n - 1 do
    let x_to_i = m.((x * n) + i) in
    if x_to_i <> Inf then begin
      let via = bnd_add x_to_i b in
      let rowx = x * n in
      for y = 0 to n - 1 do
        let jy = m.(rowj + y) in
        if jy <> Inf then begin
          let cand = bnd_add via jy in
          if bnd_compare cand m.(rowx + y) < 0 then m.(rowx + y) <- cand
        end
      done
    end
  done

(* Emptiness of [z /\ (x_i - x_j <= b)] for canonical nonempty m in
   O(1): the only candidate negative cycle is i -> j (new edge) -> i.
   Takes the slice offset so it works on arena zones directly. *)
let unsat_with n m off i j b =
  not (bnd_neg_ok (bnd_add b m.(off + (j * n) + i)))

let up_arr n m =
  for i = 1 to n - 1 do
    m.(i * n) <- Inf
  done

(* In-place is safe: writes hit row x / column x only, reads come from
   row 0 / column 0, and the overlap cells m[0][x], m[x][0] are written
   at j = 0 before any j > 0 read (which skips j = x anyway). *)
let reset_arr n m x =
  for j = 0 to n - 1 do
    if j <> x then begin
      m.((x * n) + j) <- m.(j);
      (* x_x - x_j = 0 - x_j *)
      m.((j * n) + x) <- m.(j * n)
    end
  done;
  m.((x * n) + x) <- Le Rational.zero

let free_arr n m x =
  for j = 0 to n - 1 do
    if j <> x then begin
      m.((x * n) + j) <- Inf;
      m.((j * n) + x) <- m.(j * n)
    end
  done

(* LU relaxation: entry (i, j) with constant c goes to Inf when
   c > lower.(i), else to Lt (-upper.(j)) when c < -upper.(j); a [None]
   bound is -inf and wipes unconditionally.  Comparisons are on the
   constant only (strictness does not matter), exactly as in the int
   kernel, so the differential harness can demand bit-equal results.
   Returns whether anything changed. *)
(* Per-clock [Lt (-U_j)] replacement bounds, hoisted out of the sweep:
   [Inf] encodes a missing upper bound (wipe the entry).  Sharing one
   bound value per clock keeps the sweep allocation-free — the scratch
   caches this array per exploration under the physical identity of
   [upper]. *)
let lu_negs n upper =
  Array.init n (fun j ->
      match upper.(j) with None -> Inf | Some u -> Lt (Rational.neg u))

let extrapolate_lu_wide n m lower nlt =
  let changed = ref false in
  for i = 0 to n - 1 do
    let row = i * n in
    for j = 0 to n - 1 do
      if i <> j then
        match m.(row + j) with
        | Inf -> ()
        | Le c | Lt c -> (
            let wipe =
              match lower.(i) with
              | None -> true
              | Some l -> Rational.compare c l > 0
            in
            if wipe then begin
              m.(row + j) <- Inf;
              changed := true
            end
            else
              match nlt.(j) with
              | Le _ -> assert false
              | Inf ->
                  m.(row + j) <- Inf;
                  changed := true
              | Lt nu as b ->
                  if Rational.compare c nu < 0 then begin
                    m.(row + j) <- b;
                    changed := true
                  end)
    done
  done;
  !changed

(* Relax entries beyond the max constant; returns whether anything
   changed (in which case the matrix needs re-closing). *)
let extrapolate_arr n m mc neg_mc =
  let changed = ref false in
  for k = 0 to (n * n) - 1 do
    match m.(k) with
    | Inf -> ()
    | Le c | Lt c ->
        if Rational.compare c mc > 0 then begin
          m.(k) <- Inf;
          changed := true
        end
        else if Rational.compare c neg_mc < 0 then begin
          m.(k) <- Lt neg_mc;
          changed := true
        end
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* Persistent API.                                                     *)

(* The closed forms of [zero] and [top] are already canonical — no
   Floyd-Warshall needed. *)
let zero n =
  if n < 1 then invalid_arg "Dbm.zero";
  mk n (Array.make (n * n) (Le Rational.zero)) false

let top n =
  if n < 1 then invalid_arg "Dbm.top";
  let m = Array.make (n * n) Inf in
  for i = 0 to n - 1 do
    m.((i * n) + i) <- Le Rational.zero;
    (* reference minus any clock is <= 0: clocks are nonnegative *)
    m.(i) <- Le Rational.zero
  done;
  mk n m false

let constrain z i j b =
  Metrics.incr c_constrain;
  if i < 0 || i >= z.n || j < 0 || j >= z.n then invalid_arg "Dbm.constrain";
  if z.empty then z
  else if bnd_compare b (get z i j) >= 0 then z
  else if unsat_with z.n z.m z.off i j b then
    (* Keep the untouched matrix; [equal]/[hash]/[includes] never look
       at the entries of an empty zone. *)
    { n = z.n; m = z.m; off = z.off; empty = true; hmemo = 0 }
  else begin
    (* i = j would require b < Le 0, which [unsat_with] already caught
       (m[i][i] = Le 0), so the tightening pass only sees i <> j. *)
    let m = dup z in
    tighten_arr z.n m i j b;
    mk z.n m false
  end

let up z =
  Metrics.incr c_up;
  if z.empty then z
  else begin
    let m = dup z in
    up_arr z.n m;
    mk z.n m false
  end

let reset z x =
  Metrics.incr c_reset;
  if x < 1 || x >= z.n then invalid_arg "Dbm.reset";
  if z.empty then z
  else begin
    let m = dup z in
    reset_arr z.n m x;
    mk z.n m false
  end

let free z x =
  Metrics.incr c_free;
  if x < 1 || x >= z.n then invalid_arg "Dbm.free";
  if z.empty then z
  else begin
    let m = dup z in
    free_arr z.n m x;
    mk z.n m false
  end

let includes big small =
  Metrics.incr c_includes;
  if big.n <> small.n then invalid_arg "Dbm.includes";
  if big == small then true
  else if small.empty then true
  else if big.empty then false
  else begin
    let len = big.n * big.n in
    let bo = big.off and so = small.off in
    let k = ref 0 in
    let ok = ref true in
    while !ok && !k < len do
      if bnd_compare small.m.(so + !k) big.m.(bo + !k) > 0 then ok := false;
      incr k
    done;
    !ok
  end

let intersect a b =
  Metrics.incr c_intersect;
  if a.n <> b.n then invalid_arg "Dbm.intersect";
  if a == b then a
  else if a.empty then a
  else if b.empty then b
  else begin
    let m =
      Array.init (a.n * a.n) (fun k -> bnd_min a.m.(a.off + k) b.m.(b.off + k))
    in
    let empty = canonicalize_arr a.n m in
    mk a.n m empty
  end

let extrapolate mc z =
  Metrics.incr c_extrapolate;
  if z.empty then z
  else begin
    let m = dup z in
    if not (extrapolate_arr z.n m mc (Rational.neg mc)) then z
    else begin
      (* Extrapolation relaxes a nonempty zone, so it stays nonempty. *)
      ignore (canonicalize_arr z.n m);
      mk z.n m false
    end
  end

let extrapolate_lu ~lower ~upper z =
  Metrics.incr c_extrapolate;
  if z.empty then z
  else begin
    let m = dup z in
    if not (extrapolate_lu_wide z.n m lower (lu_negs z.n upper)) then z
    else begin
      (* LU extrapolation only relaxes entries, so nonempty stays
         nonempty. *)
      ignore (canonicalize_arr z.n m);
      mk z.n m false
    end
  end

let sat z i j b =
  Metrics.incr c_sat;
  if i < 0 || i >= z.n || j < 0 || j >= z.n then invalid_arg "Dbm.sat";
  (not z.empty) && not (unsat_with z.n z.m z.off i j b)

let loose z =
  if z.empty then 0
  else begin
    let acc = ref 0 in
    for k = z.off to z.off + (z.n * z.n) - 1 do
      if z.m.(k) = Inf then incr acc
    done;
    !acc
  end

(* One hash recurrence for persistent zones and in-place scratches —
   [Scratch.hash] feeding [Hstore.intern_scratch] must produce exactly
   the value the frozen zone would memoize, or the hash-consed store
   would miss genuine duplicates. *)
let hash_arr n m off =
  let h = ref n in
  for k = off to off + (n * n) - 1 do
    h := (!h * 31) + Dbm_bound.hash m.(k)
  done;
  if !h = min_int then min_int + 1 else !h

let hash z =
  if z.empty then 0
  else if z.hmemo <> min_int then z.hmemo
  else begin
    let h = hash_arr z.n z.m z.off in
    z.hmemo <- h;
    h
  end

let equal a b =
  a == b
  || a.n = b.n && a.empty = b.empty
     && (a.empty
        || (a.hmemo = min_int || b.hmemo = min_int || a.hmemo = b.hmemo)
           &&
           let len = a.n * a.n in
           let ao = a.off and bo = b.off in
           let k = ref 0 in
           let eq = ref true in
           while !eq && !k < len do
             if bnd_compare a.m.(ao + !k) b.m.(bo + !k) <> 0 then eq := false;
             incr k
           done;
           !eq)

let pp fmt z =
  if z.empty then Format.pp_print_string fmt "empty"
  else begin
    Format.fprintf fmt "@[<v>";
    for i = 0 to z.n - 1 do
      for j = 0 to z.n - 1 do
        Format.fprintf fmt "%a " Dbm_bound.pp (get z i j)
      done;
      Format.fprintf fmt "@,"
    done;
    Format.fprintf fmt "@]"
  end

(* ------------------------------------------------------------------ *)
(* Arena: bump allocation for stored-zone payloads.  Chunks start at
   512 entries so they land on the major heap directly — freezing a
   zone into the arena costs no minor-heap words beyond its record.
   Growth swaps in a doubled chunk and abandons the old one to the
   zones already pointing into it; [reset] rewinds only the current
   chunk, which is exactly right for the per-domain speculative arenas
   (everything since the last reset is discarded or was copied out by
   the commit loop).                                                   *)

let arena_chunk_min = 512

module Arena = struct
  type arena = { mutable buf : bnd array; mutable pos : int }

  let create () = { buf = [||]; pos = 0 }
  let reset a = a.pos <- 0

  let alloc a size =
    if a.pos + size > Array.length a.buf then begin
      a.buf <-
        Array.make (max (2 * Array.length a.buf) (max size arena_chunk_min)) Inf;
      a.pos <- 0
    end;
    let off = a.pos in
    a.pos <- a.pos + size;
    (a.buf, off)
end

let copy_into a z =
  if z.empty then z
  else begin
    let len = z.n * z.n in
    let buf, off = Arena.alloc a len in
    Array.blit z.m z.off buf off len;
    { n = z.n; m = buf; off; empty = false; hmemo = z.hmemo }
  end

(* ------------------------------------------------------------------ *)
(* Minimal-constraint form; the reduction itself lives in {!Dbm_min}.  *)

module Min = struct
  type min = MEmpty of int | M of Dbm_min.t

  let of_zone z =
    if z.empty then MEmpty z.n
    else begin
      Metrics.incr c_minimize;
      M (Dbm_min.reduce z.n (fun i j -> z.m.(z.off + (i * z.n) + j)))
    end

  let to_zone = function
    | MEmpty n -> { n; m = Array.make (n * n) Inf; off = 0; empty = true; hmemo = 0 }
    | M r -> mk r.Dbm_min.mn (Dbm_min.to_matrix r) false

  let subsumes mn z =
    Metrics.incr c_min_subsumes;
    match mn with
    | MEmpty _ -> z.empty
    | M r ->
        if z.n <> r.Dbm_min.mn then invalid_arg "Dbm.Min.subsumes";
        z.empty || Dbm_min.subsumes r (fun i j -> z.m.(z.off + (i * z.n) + j))

  let equal a b =
    match (a, b) with
    | MEmpty n, MEmpty n' -> n = n'
    | M r, M r' -> Dbm_min.equal r r'
    | _ -> false

  let count = function MEmpty _ -> 0 | M r -> Dbm_min.count r
end

(* ------------------------------------------------------------------ *)
(* Scratch: one reusable matrix per exploration; every op mutates it
   in place and keeps it canonical, so [freeze] is a plain copy.
   [ssrc] remembers the zone last loaded: when a whole edge pipeline
   turns out to be a no-op, [freeze] hands back the already-interned
   original instead of copying.                                        *)

module Scratch = struct
  type scratch = {
    sn : int;
    sm : bnd array;
    mutable sempty : bool;
    mutable ssrc : t option;
    (* [lu_negs] of the last ~upper seen, cached under its physical
       identity: one conversion per exploration, not one per edge. *)
    mutable slu_upper : Rational.t option array;
    mutable slu_negs : bnd array;
  }

  let create n =
    if n < 1 then invalid_arg "Dbm.Scratch.create";
    {
      sn = n;
      sm = Array.make (n * n) Inf;
      sempty = true;
      ssrc = None;
      slu_upper = [||];
      slu_negs = [||];
    }

  let load s z =
    if s.sn <> z.n then invalid_arg "Dbm.Scratch.load";
    Array.blit z.m z.off s.sm 0 (s.sn * s.sn);
    s.sempty <- z.empty;
    s.ssrc <- Some z

  let is_empty s = s.sempty

  let constrain s i j b =
    Metrics.incr c_constrain;
    if i < 0 || i >= s.sn || j < 0 || j >= s.sn then
      invalid_arg "Dbm.Scratch.constrain";
    if (not s.sempty) && bnd_compare b s.sm.((i * s.sn) + j) < 0 then
      if unsat_with s.sn s.sm 0 i j b then s.sempty <- true
      else tighten_arr s.sn s.sm i j b

  let up s =
    Metrics.incr c_up;
    if not s.sempty then up_arr s.sn s.sm

  let reset s x =
    Metrics.incr c_reset;
    if x < 1 || x >= s.sn then invalid_arg "Dbm.Scratch.reset";
    if not s.sempty then reset_arr s.sn s.sm x

  let free s x =
    Metrics.incr c_free;
    if x < 1 || x >= s.sn then invalid_arg "Dbm.Scratch.free";
    if not s.sempty then free_arr s.sn s.sm x

  let extrapolate mc s =
    Metrics.incr c_extrapolate;
    if (not s.sempty) && extrapolate_arr s.sn s.sm mc (Rational.neg mc) then
      ignore (canonicalize_arr s.sn s.sm)

  let extrapolate_lu ~lower ~upper s =
    Metrics.incr c_extrapolate;
    if not s.sempty then begin
      if s.slu_upper != upper then begin
        s.slu_negs <- lu_negs s.sn upper;
        s.slu_upper <- upper
      end;
      if extrapolate_lu_wide s.sn s.sm lower s.slu_negs then
        ignore (canonicalize_arr s.sn s.sm)
    end

  let sat s i j b =
    Metrics.incr c_sat;
    if i < 0 || i >= s.sn || j < 0 || j >= s.sn then
      invalid_arg "Dbm.Scratch.sat";
    (not s.sempty) && not (unsat_with s.sn s.sm 0 i j b)

  (* Is the scratch still (structurally) the zone it was loaded from?
     Emptiness matching is enough for empty zones — nothing ever reads
     an empty zone's entries. *)
  let unchanged s =
    match s.ssrc with
    | None -> None
    | Some z ->
        if z.n <> s.sn || z.empty <> s.sempty then None
        else if s.sempty then Some z
        else begin
          let len = s.sn * s.sn in
          let zo = z.off in
          let k = ref 0 in
          let eq = ref true in
          while !eq && !k < len do
            if bnd_compare s.sm.(!k) z.m.(zo + !k) <> 0 then eq := false;
            incr k
          done;
          if !eq then Some z else None
        end

  let freeze s =
    match unchanged s with
    | Some z -> z
    | None -> mk s.sn (Array.copy s.sm) s.sempty

  let hash s = if s.sempty then 0 else hash_arr s.sn s.sm 0

  let equal_zone s z =
    s.sn = z.n && s.sempty = z.empty
    && (s.sempty
       ||
       let len = s.sn * s.sn in
       let zo = z.off in
       let k = ref 0 in
       let eq = ref true in
       while !eq && !k < len do
         if bnd_compare s.sm.(!k) z.m.(zo + !k) <> 0 then eq := false;
         incr k
       done;
       !eq)

  let freeze_into ?hash a s =
    match unchanged s with
    | Some z -> z
    | None ->
        if s.sempty then mk s.sn (Array.copy s.sm) true
        else begin
          let len = s.sn * s.sn in
          let buf, off = Arena.alloc a len in
          Array.blit s.sm 0 buf off len;
          let hmemo = match hash with Some h -> h | None -> min_int in
          { n = s.sn; m = buf; off; empty = false; hmemo }
        end
end
