(** Difference bound matrices over exact rationals.

    The zone engine gives an exact (non-discretized) verification path
    for boundmap timed automata, independent of the mapping method — an
    oracle the reproduction uses to cross-check the paper's bounds.

    A DBM over clocks [x_1 … x_{n-1}] (clock 0 is the constant-zero
    reference) stores for every ordered pair a bound
    [x_i − x_j < c] or [x_i − x_j <= c] or unbounded.  All exposed
    values are kept in canonical (all-pairs-tightened) form, so
    equality of zones is equality of representations. *)

type bnd = Lt of Tm_base.Rational.t | Le of Tm_base.Rational.t | Inf

val bnd_compare : bnd -> bnd -> int
(** Order by tightness: smaller = tighter; [Lt c < Le c < Inf]. *)

val bnd_add : bnd -> bnd -> bnd

type t

val dim : t -> int
(** Number of clocks including the reference. *)

val zero : int -> t
(** [zero n]: the zone where all [n-1] real clocks equal 0. *)

val top : int -> t
(** All clocks nonnegative, otherwise unconstrained. *)

val is_empty : t -> bool
val get : t -> int -> int -> bnd

val constrain : t -> int -> int -> bnd -> t
(** [constrain z i j b]: intersect with [x_i − x_j ≤/< c].  Result is
    canonical (and possibly empty). *)

val up : t -> t
(** Time elapse: remove the upper bounds of all clocks (the "future"
    operator). *)

val reset : t -> int -> t
(** [reset z x]: set clock [x] to 0. *)

val free : t -> int -> t
(** [free z x]: forget everything about clock [x] except [x >= 0].
    Sound whenever [x] is inactive (not read before its next reset);
    the classic activity reduction. *)

val intersect : t -> t -> t
val includes : t -> t -> bool
(** [includes big small]: every valuation of [small] is in [big]. *)

val extrapolate : Tm_base.Rational.t -> t -> t
(** Classic max-constant extrapolation: bounds above [m] become
    unbounded, lower bounds below [−m] are relaxed to [−m].  Sound for
    the diagonal-free automata produced by {!Clock_enc}; guarantees
    termination of reachability. *)

val sat : t -> int -> int -> bnd -> bool
(** Is the intersection with [x_i − x_j ≤/< c] nonempty? *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
