(** Difference bound matrices over exact rationals — fast kernel.

    The zone engine gives an exact (non-discretized) verification path
    for boundmap timed automata, independent of the mapping method — an
    oracle the reproduction uses to cross-check the paper's bounds.

    A DBM over clocks [x_1 … x_{n-1}] (clock 0 is the constant-zero
    reference) stores for every ordered pair a bound
    [x_i − x_j < c] or [x_i − x_j <= c] or unbounded.  All exposed
    values are kept in canonical (all-pairs-tightened) form, so
    equality of zones is equality of representations.

    This is the in-place flat-array kernel: persistent operations copy
    once and tighten incrementally (O(n²) after a single constraint,
    O(1) [sat]), and the [Scratch] sub-module exposes the destructive
    core so a whole successor pipeline costs two copies.  Structural
    hashes are memoized and [equal]/[includes] short-circuit on
    physical equality, which the hash-consed store in {!Reach} makes
    the common case.  The original straightforward kernel survives as
    {!Dbm_ref}; test/test_dbm_diff.ml checks this one against it
    op-for-op. *)

type bnd = Dbm_bound.t = Lt of Tm_base.Rational.t | Le of Tm_base.Rational.t | Inf

val bnd_compare : bnd -> bnd -> int
(** Order by tightness: smaller = tighter; [Lt c < Le c < Inf]. *)

val bnd_add : bnd -> bnd -> bnd

include Dbm_sig.S
