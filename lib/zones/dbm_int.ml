(* Integer-specialized DBM kernel: an unboxed flat [int array] with the
   strictness packed in the low bit.

   Every shipped system (fischer, relay, token ring, resource manager)
   has an integral boundmap, so all DBM constants are integers and the
   rational kernel's boxing and GCD normalization are pure overhead.
   A bound is packed as

     Lt c  ->  2c          Le c  ->  2c + 1          Inf  ->  max_int

   which makes the tightness order ([Lt c < Le c < Inf]) the native
   integer order, bound addition two adds and a mask, and the whole
   Scratch pipeline allocation-free.  {!Reach.Auto} selects this kernel
   whenever the boundmap (and condition bounds) are integral; the
   rational kernels stay the fallback for Margin's mediant walks.
   Feeding a non-integer bound to [constrain]/[sat]/[extrapolate] is a
   dispatch bug, never a truncation: it raises [Invalid_argument] so
   the differential wall notices immediately.

   Structure mirrors {!Dbm} op for op (same tighten/canonicalize/reset
   recurrences, same memoized hash and physical-equality fast paths),
   which is what lets test/test_dbm_diff.ml demand trace equality
   across int == fast == ref on integral scripts. *)

module Rational = Tm_base.Rational
module Metrics = Tm_obs.Metrics

let op name = Metrics.counter "dbm.ops" ~labels:[ ("op", name) ]
let c_canonicalize = op "canonicalize"
let c_constrain = op "constrain"
let c_up = op "up"
let c_reset = op "reset"
let c_free = op "free"
let c_intersect = op "intersect"
let c_includes = op "includes"
let c_extrapolate = op "extrapolate"
let c_sat = op "sat"

(* Packed bounds.  Constants in this repository are tiny (single-digit
   boundmap endpoints), so overflow of [2c] or packed addition is a
   logic error, not a case to handle. *)
let inf = max_int
let le_zero = 1 (* Le 0 *)

let pack = function
  | Dbm_bound.Inf -> inf
  | Dbm_bound.Le q ->
      if q.Rational.den <> 1 then
        invalid_arg "Dbm_int: non-integer bound (kernel misdispatched)";
      (q.Rational.num lsl 1) lor 1
  | Dbm_bound.Lt q ->
      if q.Rational.den <> 1 then
        invalid_arg "Dbm_int: non-integer bound (kernel misdispatched)";
      q.Rational.num lsl 1

let unpack p =
  if p = inf then Dbm_bound.Inf
  else if p land 1 = 1 then Dbm_bound.Le (Rational.of_int (p asr 1))
  else Dbm_bound.Lt (Rational.of_int (p asr 1))

(* Le x + Le y keeps the weak bit; any strict operand clears it:
   (2x+1) + (2y+1) - 1 = 2(x+y) + 1, and with a strict operand the
   subtracted [(a lor b) land 1] is exactly the surviving weak bit. *)
let bnd_add a b = if a = inf || b = inf then inf else a + b - ((a lor b) land 1)

(* Does the bound admit 0?  Le 0 = 1, Lt 0 = 0, so the test is a sign
   check — this is why the weak bit lives in the LOW bit. *)
let bnd_neg_ok p = p > 0

(* A non-integer rational has no exact packed form; both extrapolation
   entry points take rationals, so clamp the direction soundly:
   rounding an L/U bound or the max constant UP only makes the
   abstraction finer, never unsound.  (On integral systems — the only
   ones dispatched here — this is exact.) *)
let ceil_int q = Rational.ceil q

type t = { n : int; m : int array; empty : bool; mutable hmemo : int }

let name = "int"
let dim z = z.n
let get z i j = unpack z.m.((i * z.n) + j)
let is_empty z = z.empty
let mk n m empty = { n; m; empty; hmemo = min_int }

(* ------------------------------------------------------------------ *)
(* In-place core, mirroring {!Dbm} recurrence for recurrence.          *)

let canonicalize_arr n m =
  Metrics.incr c_canonicalize;
  (* Floyd–Warshall with the [i -> k] hop hoisted out of the inner
     loop: when [m.(i,k) = inf] no path through [k] can tighten row
     [i], so the whole inner loop is skipped.  Under LU widening most
     rows of an inactive clock are [inf], which turns the n^3 closure
     into roughly (active clocks)^3 — this is the kernel's hottest
     loop, re-run after every per-edge extrapolation. *)
  (try
     for k = 0 to n - 1 do
       let rowk = k * n in
       for i = 0 to n - 1 do
         let rowi = i * n in
         let ik = m.(rowi + k) in
         if ik <> inf && k <> i then
           for j = 0 to n - 1 do
             let kj = m.(rowk + j) in
             if kj <> inf then begin
               let via = ik + kj - ((ik lor kj) land 1) in
               if via < m.(rowi + j) then m.(rowi + j) <- via
             end
           done;
         if m.(rowi + i) <= 0 then raise Exit
       done
     done
   with Exit -> m.(0) <- 0 (* Lt 0 *));
  not (bnd_neg_ok m.(0))

let tighten_arr n m i j b =
  let rowj = j * n in
  for x = 0 to n - 1 do
    let x_to_i = m.((x * n) + i) in
    if x_to_i <> inf then begin
      let via = bnd_add x_to_i b in
      let rowx = x * n in
      for y = 0 to n - 1 do
        let jy = m.(rowj + y) in
        if jy <> inf then begin
          let cand = bnd_add via jy in
          if cand < m.(rowx + y) then m.(rowx + y) <- cand
        end
      done
    end
  done

let unsat_with n m i j b = not (bnd_neg_ok (bnd_add b m.((j * n) + i)))

let up_arr n m =
  for i = 1 to n - 1 do
    m.(i * n) <- inf
  done

let reset_arr n m x =
  for j = 0 to n - 1 do
    if j <> x then begin
      m.((x * n) + j) <- m.(j);
      m.((j * n) + x) <- m.(j * n)
    end
  done;
  m.((x * n) + x) <- le_zero

let free_arr n m x =
  for j = 0 to n - 1 do
    if j <> x then begin
      m.((x * n) + j) <- inf;
      m.((j * n) + x) <- m.(j * n)
    end
  done

let extrapolate_arr n m mc neg_mc =
  (* mc / neg_mc are plain integer constants; entry constant is
     [p asr 1] for either strictness, so both rules are integer
     compares.  [Lt (-mc)] packs to [neg_mc * 2]. *)
  let lt_neg_mc = neg_mc lsl 1 in
  let changed = ref false in
  for k = 0 to (n * n) - 1 do
    let p = m.(k) in
    if p <> inf then
      if p asr 1 > mc then begin
        m.(k) <- inf;
        changed := true
      end
      else if p asr 1 < neg_mc then begin
        m.(k) <- lt_neg_mc;
        changed := true
      end
  done;
  !changed

(* LU relaxation on packed entries; the constant-only rules match
   {!Dbm.extrapolate_lu_arr} exactly, so on integral inputs all three
   kernels extrapolate to the same zone.  The per-clock thresholds are
   hoisted into int rows up front: [lceil.(i) = ceil L_i] (a [None]
   lower bound is -inf, encoded [min_int] so every constant exceeds
   it) and [nuc.(j) = -ceil U_j] ([None] upper encoded [max_int],
   meaning wipe). *)
let extrapolate_lu_arr n m lower upper =
  let lceil = Array.make n min_int in
  let nuc = Array.make n max_int in
  for k = 0 to n - 1 do
    (match lower.(k) with None -> () | Some l -> lceil.(k) <- ceil_int l);
    match upper.(k) with None -> () | Some u -> nuc.(k) <- -ceil_int u
  done;
  let changed = ref false in
  for i = 0 to n - 1 do
    let row = i * n in
    let li = lceil.(i) in
    for j = 0 to n - 1 do
      if i <> j then begin
        let p = m.(row + j) in
        if p <> inf then begin
          let c = p asr 1 in
          if c > li then begin
            m.(row + j) <- inf;
            changed := true
          end
          else begin
            let nu = nuc.(j) in
            if nu = max_int then begin
              m.(row + j) <- inf;
              changed := true
            end
            else if c < nu then begin
              m.(row + j) <- nu lsl 1;
              changed := true
            end
          end
        end
      end
    done
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* Persistent API.                                                     *)

let zero n =
  if n < 1 then invalid_arg "Dbm_int.zero";
  mk n (Array.make (n * n) le_zero) false

let top n =
  if n < 1 then invalid_arg "Dbm_int.top";
  let m = Array.make (n * n) inf in
  for i = 0 to n - 1 do
    m.((i * n) + i) <- le_zero;
    m.(i) <- le_zero
  done;
  mk n m false

let constrain z i j b =
  Metrics.incr c_constrain;
  if i < 0 || i >= z.n || j < 0 || j >= z.n then
    invalid_arg "Dbm_int.constrain";
  let b = pack b in
  if z.empty then z
  else if b >= z.m.((i * z.n) + j) then z
  else if unsat_with z.n z.m i j b then
    { n = z.n; m = z.m; empty = true; hmemo = 0 }
  else begin
    let m = Array.copy z.m in
    tighten_arr z.n m i j b;
    mk z.n m false
  end

let up z =
  Metrics.incr c_up;
  if z.empty then z
  else begin
    let m = Array.copy z.m in
    up_arr z.n m;
    mk z.n m false
  end

let reset z x =
  Metrics.incr c_reset;
  if x < 1 || x >= z.n then invalid_arg "Dbm_int.reset";
  if z.empty then z
  else begin
    let m = Array.copy z.m in
    reset_arr z.n m x;
    mk z.n m false
  end

let free z x =
  Metrics.incr c_free;
  if x < 1 || x >= z.n then invalid_arg "Dbm_int.free";
  if z.empty then z
  else begin
    let m = Array.copy z.m in
    free_arr z.n m x;
    mk z.n m false
  end

let includes big small =
  Metrics.incr c_includes;
  if big.n <> small.n then invalid_arg "Dbm_int.includes";
  if big == small then true
  else if small.empty then true
  else if big.empty then false
  else begin
    let len = big.n * big.n in
    let k = ref 0 in
    let ok = ref true in
    while !ok && !k < len do
      if small.m.(!k) > big.m.(!k) then ok := false;
      incr k
    done;
    !ok
  end

let intersect a b =
  Metrics.incr c_intersect;
  if a.n <> b.n then invalid_arg "Dbm_int.intersect";
  if a == b then a
  else if a.empty then a
  else if b.empty then b
  else begin
    let m = Array.init (a.n * a.n) (fun k -> min a.m.(k) b.m.(k)) in
    let empty = canonicalize_arr a.n m in
    mk a.n m empty
  end

let extrapolate mc z =
  Metrics.incr c_extrapolate;
  if not (Rational.is_integer mc) then
    invalid_arg "Dbm_int.extrapolate: non-integer max constant";
  if z.empty then z
  else begin
    let mci = ceil_int mc in
    let m = Array.copy z.m in
    if not (extrapolate_arr z.n m mci (-mci)) then z
    else begin
      ignore (canonicalize_arr z.n m);
      mk z.n m false
    end
  end

let extrapolate_lu ~lower ~upper z =
  Metrics.incr c_extrapolate;
  if z.empty then z
  else begin
    let m = Array.copy z.m in
    if not (extrapolate_lu_arr z.n m lower upper) then z
    else begin
      ignore (canonicalize_arr z.n m);
      mk z.n m false
    end
  end

let sat z i j b =
  Metrics.incr c_sat;
  if i < 0 || i >= z.n || j < 0 || j >= z.n then invalid_arg "Dbm_int.sat";
  (not z.empty) && not (unsat_with z.n z.m i j (pack b))

let loose z =
  if z.empty then 0
  else Array.fold_left (fun acc p -> if p = inf then acc + 1 else acc) 0 z.m

(* Memoized structural hash over the packed entries; like {!Dbm} the
   cost is once per distinct zone and [min_int] is the "uncomputed"
   sentinel (shifted if the fold lands on it). *)
let hash z =
  if z.empty then 0
  else if z.hmemo <> min_int then z.hmemo
  else begin
    let h =
      Array.fold_left
        (fun h p -> (h * 31) + if p = inf then 7 else p)
        z.n z.m
    in
    let h = if h = min_int then min_int + 1 else h in
    z.hmemo <- h;
    h
  end

let equal a b =
  a == b
  || a.n = b.n && a.empty = b.empty
     && (a.empty
        || (a.hmemo = min_int || b.hmemo = min_int || a.hmemo = b.hmemo)
           &&
           let len = a.n * a.n in
           let k = ref 0 in
           let eq = ref true in
           while !eq && !k < len do
             if a.m.(!k) <> b.m.(!k) then eq := false;
             incr k
           done;
           !eq)

let pp fmt z =
  if z.empty then Format.pp_print_string fmt "empty"
  else begin
    Format.fprintf fmt "@[<v>";
    for i = 0 to z.n - 1 do
      for j = 0 to z.n - 1 do
        Format.fprintf fmt "%a " Dbm_bound.pp (get z i j)
      done;
      Format.fprintf fmt "@,"
    done;
    Format.fprintf fmt "@]"
  end

(* ------------------------------------------------------------------ *)
(* Scratch: allocation-free between [load] and [freeze].               *)

module Scratch = struct
  type scratch = { sn : int; sm : int array; mutable sempty : bool }

  let create n =
    if n < 1 then invalid_arg "Dbm_int.Scratch.create";
    { sn = n; sm = Array.make (n * n) inf; sempty = true }

  let load s z =
    if s.sn <> z.n then invalid_arg "Dbm_int.Scratch.load";
    Array.blit z.m 0 s.sm 0 (s.sn * s.sn);
    s.sempty <- z.empty

  let is_empty s = s.sempty

  let constrain s i j b =
    Metrics.incr c_constrain;
    if i < 0 || i >= s.sn || j < 0 || j >= s.sn then
      invalid_arg "Dbm_int.Scratch.constrain";
    let b = pack b in
    if (not s.sempty) && b < s.sm.((i * s.sn) + j) then
      if unsat_with s.sn s.sm i j b then s.sempty <- true
      else tighten_arr s.sn s.sm i j b

  let up s =
    Metrics.incr c_up;
    if not s.sempty then up_arr s.sn s.sm

  let reset s x =
    Metrics.incr c_reset;
    if x < 1 || x >= s.sn then invalid_arg "Dbm_int.Scratch.reset";
    if not s.sempty then reset_arr s.sn s.sm x

  let free s x =
    Metrics.incr c_free;
    if x < 1 || x >= s.sn then invalid_arg "Dbm_int.Scratch.free";
    if not s.sempty then free_arr s.sn s.sm x

  let extrapolate mc s =
    Metrics.incr c_extrapolate;
    if not (Rational.is_integer mc) then
      invalid_arg "Dbm_int.Scratch.extrapolate: non-integer max constant";
    let mci = ceil_int mc in
    if (not s.sempty) && extrapolate_arr s.sn s.sm mci (-mci) then
      ignore (canonicalize_arr s.sn s.sm)

  let extrapolate_lu ~lower ~upper s =
    Metrics.incr c_extrapolate;
    if (not s.sempty) && extrapolate_lu_arr s.sn s.sm lower upper then
      ignore (canonicalize_arr s.sn s.sm)

  let sat s i j b =
    Metrics.incr c_sat;
    if i < 0 || i >= s.sn || j < 0 || j >= s.sn then
      invalid_arg "Dbm_int.Scratch.sat";
    (not s.sempty) && not (unsat_with s.sn s.sm i j (pack b))

  let freeze s = mk s.sn (Array.copy s.sm) s.sempty
end
