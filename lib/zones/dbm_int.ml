(* Integer-specialized DBM kernel: an unboxed flat [int array] with the
   strictness packed in the low bit.

   Every shipped system (fischer, relay, token ring, resource manager)
   has an integral boundmap, so all DBM constants are integers and the
   rational kernel's boxing and GCD normalization are pure overhead.
   A bound is packed as

     Lt c  ->  2c          Le c  ->  2c + 1          Inf  ->  max_int

   which makes the tightness order ([Lt c < Le c < Inf]) the native
   integer order, bound addition two adds and a mask, and the whole
   Scratch pipeline allocation-free.  {!Reach.Auto} selects this kernel
   whenever the boundmap (and condition bounds) are integral; the
   rational kernels stay the fallback for Margin's mediant walks.
   Feeding a non-integer bound to [constrain]/[sat]/[extrapolate] is a
   dispatch bug, never a truncation: it raises [Invalid_argument] so
   the differential wall notices immediately.

   Structure mirrors {!Dbm} op for op (same tighten/canonicalize/reset
   recurrences, same memoized hash and physical-equality fast paths),
   which is what lets test/test_dbm_diff.ml demand trace equality
   across int == fast == ref on integral scripts. *)

module Rational = Tm_base.Rational
module Metrics = Tm_obs.Metrics

let op name = Metrics.counter "dbm.ops" ~labels:[ ("op", name) ]
let c_canonicalize = op "canonicalize"
let c_constrain = op "constrain"
let c_up = op "up"
let c_reset = op "reset"
let c_free = op "free"
let c_intersect = op "intersect"
let c_includes = op "includes"
let c_extrapolate = op "extrapolate"
let c_sat = op "sat"
let c_minimize = op "minimize"
let c_min_subsumes = op "min_subsumes"

(* Packed bounds.  Constants in this repository are tiny (single-digit
   boundmap endpoints), so overflow of [2c] or packed addition is a
   logic error, not a case to handle. *)
let inf = max_int
let le_zero = 1 (* Le 0 *)

let pack = function
  | Dbm_bound.Inf -> inf
  | Dbm_bound.Le q ->
      if q.Rational.den <> 1 then
        invalid_arg "Dbm_int: non-integer bound (kernel misdispatched)";
      (q.Rational.num lsl 1) lor 1
  | Dbm_bound.Lt q ->
      if q.Rational.den <> 1 then
        invalid_arg "Dbm_int: non-integer bound (kernel misdispatched)";
      q.Rational.num lsl 1

let unpack p =
  if p = inf then Dbm_bound.Inf
  else if p land 1 = 1 then Dbm_bound.Le (Rational.of_int (p asr 1))
  else Dbm_bound.Lt (Rational.of_int (p asr 1))

(* Le x + Le y keeps the weak bit; any strict operand clears it:
   (2x+1) + (2y+1) - 1 = 2(x+y) + 1, and with a strict operand the
   subtracted [(a lor b) land 1] is exactly the surviving weak bit. *)
let bnd_add a b = if a = inf || b = inf then inf else a + b - ((a lor b) land 1)

(* Does the bound admit 0?  Le 0 = 1, Lt 0 = 0, so the test is a sign
   check — this is why the weak bit lives in the LOW bit. *)
let bnd_neg_ok p = p > 0

(* A non-integer rational has no exact packed form; both extrapolation
   entry points take rationals, so clamp the direction soundly:
   rounding an L/U bound or the max constant UP only makes the
   abstraction finer, never unsound.  (On integral systems — the only
   ones dispatched here — this is exact.) *)
let ceil_int q = Rational.ceil q

(* [off] is the start of this zone's n*n slice inside [m]: arena zones
   share one large chunk array, heap zones own an exactly-sized array
   at offset 0. *)
type t = { n : int; m : int array; off : int; empty : bool; mutable hmemo : int }

let name = "int"
let dim z = z.n
let get z i j = unpack z.m.(z.off + (i * z.n) + j)
let is_empty z = z.empty
let mk n m empty = { n; m; off = 0; empty; hmemo = min_int }

let dup z =
  if z.off = 0 && Array.length z.m = z.n * z.n then Array.copy z.m
  else Array.sub z.m z.off (z.n * z.n)

(* ------------------------------------------------------------------ *)
(* In-place core, mirroring {!Dbm} recurrence for recurrence.          *)

let canonicalize_arr n m =
  Metrics.incr c_canonicalize;
  (* Floyd–Warshall with the [i -> k] hop hoisted out of the inner
     loop: when [m.(i,k) = inf] no path through [k] can tighten row
     [i], so the whole inner loop is skipped.  Under LU widening most
     rows of an inactive clock are [inf], which turns the n^3 closure
     into roughly (active clocks)^3 — this is the kernel's hottest
     loop, re-run after every per-edge extrapolation.

     The inner loop is branchless: packing makes tightness native int
     order, so "keep the min" is a select, expressed as masked blends
     flambda can keep in registers and unroll.  [via] wraps around
     when [kj = inf], but [take] is forced to 0 in exactly that case,
     so the blend writes back [cur] untouched.  Bounds are in range by
     construction ([rowi + j], [rowk + j] < n*n), hence the unsafe
     accesses. *)
  (try
     for k = 0 to n - 1 do
       let rowk = k * n in
       for i = 0 to n - 1 do
         let rowi = i * n in
         let ik = m.(rowi + k) in
         if ik <> inf && k <> i then
           for j = 0 to n - 1 do
             let kj = Array.unsafe_get m (rowk + j) in
             let cur = Array.unsafe_get m (rowi + j) in
             let via = ik + kj - ((ik lor kj) land 1) in
             let take = Bool.to_int (kj <> inf) land Bool.to_int (via < cur) in
             let mask = -take in
             Array.unsafe_set m (rowi + j)
               ((via land mask) lor (cur land lnot mask))
           done;
         if m.(rowi + i) <= 0 then raise Exit
       done
     done
   with Exit -> m.(0) <- 0 (* Lt 0 *));
  not (bnd_neg_ok m.(0))

(* [b] is a genuinely tightening bound, hence finite — so [via] below
   is finite too and the branchless blend only has to mask the
   [jy = inf] wrap-around, mirroring the closure loop. *)
let tighten_arr n m i j b =
  let rowj = j * n in
  for x = 0 to n - 1 do
    let x_to_i = m.((x * n) + i) in
    if x_to_i <> inf then begin
      let via = bnd_add x_to_i b in
      let rowx = x * n in
      for y = 0 to n - 1 do
        let jy = Array.unsafe_get m (rowj + y) in
        let cur = Array.unsafe_get m (rowx + y) in
        let cand = via + jy - ((via lor jy) land 1) in
        let take = Bool.to_int (jy <> inf) land Bool.to_int (cand < cur) in
        let mask = -take in
        Array.unsafe_set m (rowx + y) ((cand land mask) lor (cur land lnot mask))
      done
    end
  done

let unsat_with n m off i j b =
  not (bnd_neg_ok (bnd_add b m.(off + (j * n) + i)))

let up_arr n m =
  for i = 1 to n - 1 do
    m.(i * n) <- inf
  done

let reset_arr n m x =
  for j = 0 to n - 1 do
    if j <> x then begin
      m.((x * n) + j) <- m.(j);
      m.((j * n) + x) <- m.(j * n)
    end
  done;
  m.((x * n) + x) <- le_zero

let free_arr n m x =
  for j = 0 to n - 1 do
    if j <> x then begin
      m.((x * n) + j) <- inf;
      m.((j * n) + x) <- m.(j * n)
    end
  done

let extrapolate_arr n m mc neg_mc =
  (* mc / neg_mc are plain integer constants; entry constant is
     [p asr 1] for either strictness, so both rules are integer
     compares.  [Lt (-mc)] packs to [neg_mc * 2]. *)
  let lt_neg_mc = neg_mc lsl 1 in
  let changed = ref false in
  for k = 0 to (n * n) - 1 do
    let p = m.(k) in
    if p <> inf then
      if p asr 1 > mc then begin
        m.(k) <- inf;
        changed := true
      end
      else if p asr 1 < neg_mc then begin
        m.(k) <- lt_neg_mc;
        changed := true
      end
  done;
  !changed

(* LU relaxation on packed entries; the constant-only rules match
   {!Dbm.extrapolate_lu_arr} exactly, so on integral inputs all three
   kernels extrapolate to the same zone.  The per-clock thresholds are
   hoisted into int rows up front: [lceil.(i) = ceil L_i] (a [None]
   lower bound is -inf, encoded [min_int] so every constant exceeds
   it) and [nuc.(j) = -ceil U_j] ([None] upper encoded [max_int],
   meaning wipe). *)
let lu_thresholds n lower upper =
  let lceil = Array.make n min_int in
  let nuc = Array.make n max_int in
  for k = 0 to n - 1 do
    (match lower.(k) with None -> () | Some l -> lceil.(k) <- ceil_int l);
    match upper.(k) with None -> () | Some u -> nuc.(k) <- -ceil_int u
  done;
  (lceil, nuc)

let extrapolate_lu_packed n m lceil nuc =
  let changed = ref false in
  for i = 0 to n - 1 do
    let row = i * n in
    let li = lceil.(i) in
    for j = 0 to n - 1 do
      if i <> j then begin
        let p = m.(row + j) in
        if p <> inf then begin
          let c = p asr 1 in
          if c > li then begin
            m.(row + j) <- inf;
            changed := true
          end
          else begin
            let nu = nuc.(j) in
            if nu = max_int then begin
              m.(row + j) <- inf;
              changed := true
            end
            else if c < nu then begin
              m.(row + j) <- nu lsl 1;
              changed := true
            end
          end
        end
      end
    done
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* Persistent API.                                                     *)

let zero n =
  if n < 1 then invalid_arg "Dbm_int.zero";
  mk n (Array.make (n * n) le_zero) false

let top n =
  if n < 1 then invalid_arg "Dbm_int.top";
  let m = Array.make (n * n) inf in
  for i = 0 to n - 1 do
    m.((i * n) + i) <- le_zero;
    m.(i) <- le_zero
  done;
  mk n m false

let constrain z i j b =
  Metrics.incr c_constrain;
  if i < 0 || i >= z.n || j < 0 || j >= z.n then
    invalid_arg "Dbm_int.constrain";
  let b = pack b in
  if z.empty then z
  else if b >= z.m.(z.off + (i * z.n) + j) then z
  else if unsat_with z.n z.m z.off i j b then
    { n = z.n; m = z.m; off = z.off; empty = true; hmemo = 0 }
  else begin
    let m = dup z in
    tighten_arr z.n m i j b;
    mk z.n m false
  end

let up z =
  Metrics.incr c_up;
  if z.empty then z
  else begin
    let m = dup z in
    up_arr z.n m;
    mk z.n m false
  end

let reset z x =
  Metrics.incr c_reset;
  if x < 1 || x >= z.n then invalid_arg "Dbm_int.reset";
  if z.empty then z
  else begin
    let m = dup z in
    reset_arr z.n m x;
    mk z.n m false
  end

let free z x =
  Metrics.incr c_free;
  if x < 1 || x >= z.n then invalid_arg "Dbm_int.free";
  if z.empty then z
  else begin
    let m = dup z in
    free_arr z.n m x;
    mk z.n m false
  end

let includes big small =
  Metrics.incr c_includes;
  if big.n <> small.n then invalid_arg "Dbm_int.includes";
  if big == small then true
  else if small.empty then true
  else if big.empty then false
  else begin
    let len = big.n * big.n in
    let bo = big.off and so = small.off in
    let k = ref 0 in
    let ok = ref true in
    while !ok && !k < len do
      if small.m.(so + !k) > big.m.(bo + !k) then ok := false;
      incr k
    done;
    !ok
  end

let intersect a b =
  Metrics.incr c_intersect;
  if a.n <> b.n then invalid_arg "Dbm_int.intersect";
  if a == b then a
  else if a.empty then a
  else if b.empty then b
  else begin
    let m =
      Array.init (a.n * a.n) (fun k -> min a.m.(a.off + k) b.m.(b.off + k))
    in
    let empty = canonicalize_arr a.n m in
    mk a.n m empty
  end

let extrapolate mc z =
  Metrics.incr c_extrapolate;
  if not (Rational.is_integer mc) then
    invalid_arg "Dbm_int.extrapolate: non-integer max constant";
  if z.empty then z
  else begin
    let mci = ceil_int mc in
    let m = dup z in
    if not (extrapolate_arr z.n m mci (-mci)) then z
    else begin
      ignore (canonicalize_arr z.n m);
      mk z.n m false
    end
  end

let extrapolate_lu ~lower ~upper z =
  Metrics.incr c_extrapolate;
  if z.empty then z
  else begin
    let m = dup z in
    let lceil, nuc = lu_thresholds z.n lower upper in
    if not (extrapolate_lu_packed z.n m lceil nuc) then z
    else begin
      ignore (canonicalize_arr z.n m);
      mk z.n m false
    end
  end

let sat z i j b =
  Metrics.incr c_sat;
  if i < 0 || i >= z.n || j < 0 || j >= z.n then invalid_arg "Dbm_int.sat";
  (not z.empty) && not (unsat_with z.n z.m z.off i j (pack b))

let loose z =
  if z.empty then 0
  else begin
    let acc = ref 0 in
    for k = z.off to z.off + (z.n * z.n) - 1 do
      if z.m.(k) = inf then incr acc
    done;
    !acc
  end

(* One hash recurrence for persistent zones and in-place scratches;
   [Scratch.hash] must match the frozen zone's memo exactly or the
   hash-consed store misses duplicates. *)
let hash_arr n m off =
  let h = ref n in
  for k = off to off + (n * n) - 1 do
    let p = m.(k) in
    h := (!h * 31) + if p = inf then 7 else p
  done;
  if !h = min_int then min_int + 1 else !h

(* Memoized structural hash over the packed entries; like {!Dbm} the
   cost is once per distinct zone and [min_int] is the "uncomputed"
   sentinel (shifted if the fold lands on it). *)
let hash z =
  if z.empty then 0
  else if z.hmemo <> min_int then z.hmemo
  else begin
    let h = hash_arr z.n z.m z.off in
    z.hmemo <- h;
    h
  end

let equal a b =
  a == b
  || a.n = b.n && a.empty = b.empty
     && (a.empty
        || (a.hmemo = min_int || b.hmemo = min_int || a.hmemo = b.hmemo)
           &&
           let len = a.n * a.n in
           let ao = a.off and bo = b.off in
           let k = ref 0 in
           let eq = ref true in
           while !eq && !k < len do
             if a.m.(ao + !k) <> b.m.(bo + !k) then eq := false;
             incr k
           done;
           !eq)

let pp fmt z =
  if z.empty then Format.pp_print_string fmt "empty"
  else begin
    Format.fprintf fmt "@[<v>";
    for i = 0 to z.n - 1 do
      for j = 0 to z.n - 1 do
        Format.fprintf fmt "%a " Dbm_bound.pp (get z i j)
      done;
      Format.fprintf fmt "@,"
    done;
    Format.fprintf fmt "@]"
  end

(* ------------------------------------------------------------------ *)
(* Arena: bump allocation for stored-zone payloads; see {!Dbm.Arena}
   (chunks >= 512 words go straight to the major heap, [reset] rewinds
   the current chunk only — per-domain speculative arenas reset at
   batch boundaries, the main arena never does).                       *)

let arena_chunk_min = 512

module Arena = struct
  type arena = { mutable buf : int array; mutable pos : int }

  let create () = { buf = [||]; pos = 0 }
  let reset a = a.pos <- 0

  let alloc a size =
    if a.pos + size > Array.length a.buf then begin
      a.buf <-
        Array.make (max (2 * Array.length a.buf) (max size arena_chunk_min)) inf;
      a.pos <- 0
    end;
    let off = a.pos in
    a.pos <- a.pos + size;
    (a.buf, off)
end

let copy_into a z =
  if z.empty then z
  else begin
    let len = z.n * z.n in
    let buf, off = Arena.alloc a len in
    Array.blit z.m z.off buf off len;
    { n = z.n; m = buf; off; empty = false; hmemo = z.hmemo }
  end

(* ------------------------------------------------------------------ *)
(* Minimal-constraint form: the {!Dbm_min} reduction hand-specialized
   to packed ints so the waiting/passed-list subsumption probe is a
   tight loop over two int arrays — no closures, no boxing.  Same
   class-cycle + representative-edge construction, in the same
   deterministic order, so [equal] is structural here too.             *)

module Min = struct
  type min = { mn : int; mempty : bool; midx : int array; mbnd : int array }

  let of_zone z =
    if z.empty then { mn = z.n; mempty = true; midx = [||]; mbnd = [||] }
    else begin
      Metrics.incr c_minimize;
      let n = z.n and m = z.m and o = z.off in
      let r i j = m.(o + (i * n) + j) in
      (* Zero-equivalence: the 2-cycle adds up to exactly Le 0 = 1. *)
      let rep = Array.init n (fun i -> i) in
      for i = 1 to n - 1 do
        (try
           for j = 0 to i - 1 do
             if rep.(j) = j && bnd_add (r j i) (r i j) = le_zero then begin
               rep.(i) <- j;
               raise Exit
             end
           done
         with Exit -> ())
      done;
      let idx = ref [] and bnd = ref [] in
      let keep i j b =
        idx := ((i * n) + j) :: !idx;
        bnd := b :: !bnd
      in
      for c = 0 to n - 1 do
        if rep.(c) = c then begin
          let members = ref [] in
          for i = n - 1 downto c do
            if rep.(i) = c then members := i :: !members
          done;
          match !members with
          | [] | [ _ ] -> ()
          | first :: _ as ms ->
              let rec cyc = function
                | [ last ] -> keep last first (r last first)
                | a :: (b :: _ as tl) ->
                    keep a b (r a b);
                    cyc tl
                | [] -> ()
              in
              cyc ms
        end
      done;
      for i = 0 to n - 1 do
        if rep.(i) = i then
          for j = 0 to n - 1 do
            if j <> i && rep.(j) = j then begin
              let b = r i j in
              if b <> inf then begin
                let redundant = ref false in
                let k = ref 0 in
                while (not !redundant) && !k < n do
                  if !k <> i && !k <> j && rep.(!k) = !k then
                    if bnd_add (r i !k) (r !k j) <= b then redundant := true;
                  incr k
                done;
                if not !redundant then keep i j b
              end
            end
          done
      done;
      {
        mn = n;
        mempty = false;
        midx = Array.of_list (List.rev !idx);
        mbnd = Array.of_list (List.rev !bnd);
      }
    end

  let to_zone mn =
    if mn.mempty then
      { n = mn.mn; m = Array.make (mn.mn * mn.mn) inf; off = 0; empty = true;
        hmemo = 0 }
    else begin
      let n = mn.mn in
      let m = Array.make (n * n) inf in
      for i = 0 to n - 1 do
        m.((i * n) + i) <- le_zero
      done;
      Array.iteri (fun e ij -> m.(ij) <- mn.mbnd.(e)) mn.midx;
      for k = 0 to n - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let via = bnd_add m.((i * n) + k) m.((k * n) + j) in
            if via < m.((i * n) + j) then m.((i * n) + j) <- via
          done
        done
      done;
      mk n m false
    end

  (* [subsumes mn z]: does the zone [mn] was reduced from include [z]?
     Checking the kept constraints suffices: every reconstructed entry
     is a path sum of kept bounds, and canonical [z] satisfies the
     triangle inequality along that path. *)
  let subsumes mn z =
    Metrics.incr c_min_subsumes;
    if mn.mempty then z.empty
    else if z.empty then true
    else begin
      if z.n <> mn.mn then invalid_arg "Dbm_int.Min.subsumes";
      let m = z.m and o = z.off in
      let midx = mn.midx and mbnd = mn.mbnd in
      let ne = Array.length midx in
      let ok = ref true in
      let e = ref 0 in
      while !ok && !e < ne do
        if m.(o + Array.unsafe_get midx !e) > Array.unsafe_get mbnd !e then
          ok := false;
        incr e
      done;
      !ok
    end

  let equal a b =
    a.mn = b.mn && a.mempty = b.mempty && a.midx = b.midx && a.mbnd = b.mbnd

  let count mn = Array.length mn.midx
end

(* ------------------------------------------------------------------ *)
(* Scratch: allocation-free between [load] and [freeze].  [ssrc]
   remembers the zone last loaded so a no-op pipeline freezes to the
   already-interned original.                                          *)

module Scratch = struct
  type scratch = {
    sn : int;
    sm : int array;
    mutable sempty : bool;
    mutable ssrc : t option;
    (* LU thresholds, cached under the physical identity of the bound
       arrays: an exploration extrapolates every pipeline with the same
       two arrays, so the rational-to-int conversion runs once per
       exploration instead of once per edge. *)
    mutable slu_lower : Rational.t option array;
    mutable slu_upper : Rational.t option array;
    mutable slu_lceil : int array;
    mutable slu_nuc : int array;
  }

  let create n =
    if n < 1 then invalid_arg "Dbm_int.Scratch.create";
    {
      sn = n;
      sm = Array.make (n * n) inf;
      sempty = true;
      ssrc = None;
      slu_lower = [||];
      slu_upper = [||];
      slu_lceil = [||];
      slu_nuc = [||];
    }

  let load s z =
    if s.sn <> z.n then invalid_arg "Dbm_int.Scratch.load";
    Array.blit z.m z.off s.sm 0 (s.sn * s.sn);
    s.sempty <- z.empty;
    s.ssrc <- Some z

  let is_empty s = s.sempty

  let constrain s i j b =
    Metrics.incr c_constrain;
    if i < 0 || i >= s.sn || j < 0 || j >= s.sn then
      invalid_arg "Dbm_int.Scratch.constrain";
    let b = pack b in
    if (not s.sempty) && b < s.sm.((i * s.sn) + j) then
      if unsat_with s.sn s.sm 0 i j b then s.sempty <- true
      else tighten_arr s.sn s.sm i j b

  let up s =
    Metrics.incr c_up;
    if not s.sempty then up_arr s.sn s.sm

  let reset s x =
    Metrics.incr c_reset;
    if x < 1 || x >= s.sn then invalid_arg "Dbm_int.Scratch.reset";
    if not s.sempty then reset_arr s.sn s.sm x

  let free s x =
    Metrics.incr c_free;
    if x < 1 || x >= s.sn then invalid_arg "Dbm_int.Scratch.free";
    if not s.sempty then free_arr s.sn s.sm x

  let extrapolate mc s =
    Metrics.incr c_extrapolate;
    if not (Rational.is_integer mc) then
      invalid_arg "Dbm_int.Scratch.extrapolate: non-integer max constant";
    let mci = ceil_int mc in
    if (not s.sempty) && extrapolate_arr s.sn s.sm mci (-mci) then
      ignore (canonicalize_arr s.sn s.sm)

  let extrapolate_lu ~lower ~upper s =
    Metrics.incr c_extrapolate;
    if not s.sempty then begin
      if s.slu_lower != lower || s.slu_upper != upper then begin
        let lceil, nuc = lu_thresholds s.sn lower upper in
        s.slu_lower <- lower;
        s.slu_upper <- upper;
        s.slu_lceil <- lceil;
        s.slu_nuc <- nuc
      end;
      if extrapolate_lu_packed s.sn s.sm s.slu_lceil s.slu_nuc then
        ignore (canonicalize_arr s.sn s.sm)
    end

  let sat s i j b =
    Metrics.incr c_sat;
    if i < 0 || i >= s.sn || j < 0 || j >= s.sn then
      invalid_arg "Dbm_int.Scratch.sat";
    (not s.sempty) && not (unsat_with s.sn s.sm 0 i j (pack b))

  (* Is the scratch still (structurally) the zone it was loaded from?
     Empty zones match on the flag alone — their entries are never
     read. *)
  let unchanged s =
    match s.ssrc with
    | None -> None
    | Some z ->
        if z.n <> s.sn || z.empty <> s.sempty then None
        else if s.sempty then Some z
        else begin
          let len = s.sn * s.sn in
          let zo = z.off in
          let k = ref 0 in
          let eq = ref true in
          while !eq && !k < len do
            if s.sm.(!k) <> z.m.(zo + !k) then eq := false;
            incr k
          done;
          if !eq then Some z else None
        end

  let freeze s =
    match unchanged s with
    | Some z -> z
    | None -> mk s.sn (Array.copy s.sm) s.sempty

  let hash s = if s.sempty then 0 else hash_arr s.sn s.sm 0

  let equal_zone s z =
    s.sn = z.n && s.sempty = z.empty
    && (s.sempty
       ||
       let len = s.sn * s.sn in
       let zo = z.off in
       let k = ref 0 in
       let eq = ref true in
       while !eq && !k < len do
         if s.sm.(!k) <> z.m.(zo + !k) then eq := false;
         incr k
       done;
       !eq)

  let freeze_into ?hash a s =
    match unchanged s with
    | Some z -> z
    | None ->
        if s.sempty then mk s.sn (Array.copy s.sm) true
        else begin
          let len = s.sn * s.sn in
          let buf, off = Arena.alloc a len in
          Array.blit s.sm 0 buf off len;
          let hmemo = match hash with Some h -> h | None -> min_int in
          { n = s.sn; m = buf; off; empty = false; hmemo }
        end
end
