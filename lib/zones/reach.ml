module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Hstore = Tm_base.Hstore
module Ioa = Tm_ioa.Ioa
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module Metrics = Tm_obs.Metrics
module Tracing = Tm_obs.Tracing
module Events = Tm_obs.Events
module Json = Tm_obs.Json
module Log = Tm_obs.Log
module Pool = Tm_par.Pool
module Snapshot = Tm_recover.Snapshot
module Supervisor = Tm_recover.Supervisor

(* Counter handles are shared by every engine instantiation, so the
   fast and reference engines report into the same metrics. *)
let c_zones_stored = Metrics.counter "zones.stored"
let c_zones_subsumed = Metrics.counter "zones.subsumed"
let c_zone_edges = Metrics.counter "zones.edges"
let c_zones_pruned_waiting = Metrics.counter "zones.pruned_waiting"
let c_zones_interned = Metrics.counter "zones.interned"
let g_waiting_max = Metrics.gauge "zones.waiting_max"

let c_budget_states =
  Metrics.counter "zones.budget_exhausted" ~labels:[ ("kind", "states") ]

let c_budget_deadline =
  Metrics.counter "zones.budget_exhausted" ~labels:[ ("kind", "deadline") ]

let c_resumed = Metrics.counter "recover.resumed"
let c_interrupted = Metrics.counter "recover.interrupted"

type stats = { locations : int; zones : int; edges : int }

type exhausted = {
  reason : string;
  partial : stats;
  checkpoint : string option;
}

type outcome =
  | Verified of stats
  | Lower_violation of stats
  | Upper_violation of stats
  | Unknown of exhausted
  | Unsupported of string

exception Open_system = Clock_enc.Open_system
exception Out_of_budget of exhausted

type phase = Idle | Armed

(* The no-op observer shared by [reachable] and [check_state_invariant]:
   phases never change and the observer clock is untouched.  The result
   values are preallocated — this runs once per explored edge. *)
let keep_idle = Ok (Idle, `Keep)
let keep_armed = Ok (Armed, `Keep)

let keep_phase p _ _ _ ~sat:_ =
  match p with Idle -> keep_idle | Armed -> keep_armed

(* LU extrapolation is the default widening; TM_NO_LU=1 falls back to
   classic max-constant extrapolation — the escape hatch CI uses to
   keep the non-LU path covered, and the toggle the metamorphic
   soundness tests flip.  Read per encoding, so one process can build
   both modes in sequence. *)
let lu_disabled () =
  match Sys.getenv_opt "TM_NO_LU" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* Zone-storage ablation toggle, read per exploration like TM_NO_LU.
   [arena] (default): scratches are probed in place against the
   hash-consed store and only copied — into bump arenas — on a genuine
   miss.  [heap]: probe in place but freeze misses to the minor heap
   (isolates the probe-in-place win from the arena win).  [seed]: the
   pre-arena path — freeze a copy first, intern it afterwards.  All
   three store the same zones in the same order by construction; e17
   measures the allocation difference and CI pins the agreement. *)
type store_mode = Store_arena | Store_heap | Store_seed

let store_mode () =
  match Sys.getenv_opt "TM_STORE" with
  | Some "heap" -> Store_heap
  | Some "seed" -> Store_seed
  | _ -> Store_arena

module type S = sig
  val reachable :
    ?limit:int -> ?deadline_s:float -> ?domains:int ->
    ?checkpoint:string * int -> ?resume:string ->
    ('s, 'a) Ioa.t -> Boundmap.t -> stats * 's list

  val check_state_invariant :
    ?limit:int -> ?deadline_s:float -> ?domains:int ->
    ?checkpoint:string * int -> ?resume:string ->
    ('s, 'a) Ioa.t -> Boundmap.t -> ('s -> bool) -> (stats, 's) result

  val check_condition :
    ?limit:int -> ?deadline_s:float -> ?domains:int ->
    ?checkpoint:string * int -> ?resume:string ->
    ('s, 'a) Ioa.t -> Boundmap.t -> ('s, 'a) Condition.t -> outcome

  val fingerprint_reachable : ('s, 'a) Ioa.t -> Boundmap.t -> string

  val fingerprint_invariant : ('s, 'a) Ioa.t -> Boundmap.t -> string

  val fingerprint_condition :
    ('s, 'a) Ioa.t -> Boundmap.t -> ('s, 'a) Condition.t -> string
end

(* The exploration discipline — waiting-list policy, subsumption,
   caches, metrics — lives in this functor and is therefore shared by
   the fast engine and the reference engine; only the DBM arithmetic
   differs.  That makes [zones.stored] identical across kernels by
   construction, which the CI determinism guard and the differential
   harness both rely on. *)
module Make (K : Dbm_sig.S) : S = struct
  (* The zone engine's view of the encoding: the shared class clocks of
     {!Clock_enc} (DBM indices 1..n, index 0 is the reference), plus an
     optional observer clock.  Guards and invariants are precomputed
     into arrays so the per-edge pipeline does no boundmap lookups and
     allocates no bound values. *)
  type ('s, 'a) enc = {
    cenc : ('s, 'a) Clock_enc.t;
    nclocks : int;  (** DBM dimension *)
    y : int option;  (** observer clock *)
    max_const : Rational.t;
    guards : ('a * (int * Dbm_bound.t) option * int) array;
        (** per action: guard [(clock, Le (-b_l))] and class index
            ([-1] when classless) *)
    uppers : Dbm_bound.t option array;
        (** per class index: invariant bound [Le b_u] when finite *)
    lu : (Rational.t option array * Rational.t option array) option;
        (** per DBM clock LU-extrapolation bounds, [None] when LU is
            disabled (fall back to max-constant widening) *)
  }

  let make_enc a bm ~with_observer ~cond_bounds =
    let cenc = Clock_enc.make a bm in
    let max_const =
      match cond_bounds with
      | None -> cenc.Clock_enc.max_const
      | Some iv -> (
          let m = Rational.max cenc.Clock_enc.max_const (Interval.lo iv) in
          match Interval.hi iv with
          | Time.Fin q -> Rational.max m q
          | Time.Inf -> m)
    in
    let nreal = cenc.Clock_enc.nclasses in
    let guards =
      Array.of_list
        (List.map
           (fun act ->
             let g =
               match Clock_enc.guard cenc act with
               | None -> None
               | Some (x, bl) ->
                   Some (x, Dbm_bound.Le (Rational.neg bl))
             in
             let ci =
               match Clock_enc.class_index cenc act with
               | Some i -> i
               | None -> -1
             in
             (act, g, ci))
           a.Ioa.alphabet)
    in
    let uppers =
      Array.map
        (fun c ->
          match Boundmap.upper bm c with
          | Time.Fin q -> Some (Dbm_bound.Le q)
          | Time.Inf -> None)
        cenc.Clock_enc.classes
    in
    let nclocks = nreal + 1 + (if with_observer then 1 else 0) in
    let y = if with_observer then Some (nreal + 1) else None in
    let lu =
      if lu_disabled () then None
      else begin
        (* L(x) / U(x) must dominate every constant the exploration
           ever compares clock x against.  Class clocks only meet their
           guard (x >= b_l, a lower comparison) and their invariant
           (x <= b_u, an upper comparison) — {!Boundmap.lu_bounds}.
           The observer clock is only met by the condition probes, and
           those INVERT: [y < b_l] is an upper-type comparison (so b_l
           feeds U(y)) and [y > b_u] is a lower-type one (so b_u feeds
           L(y)).  The reference clock carries [Some 0] on both sides.
           A clock with no comparison on a side keeps [None] (-inf)
           there, which wipes the corresponding entries — inactive
           clocks vanish from the zone for free. *)
        let lower = Array.make nclocks None in
        let upper = Array.make nclocks None in
        lower.(0) <- Some Rational.zero;
        upper.(0) <- Some Rational.zero;
        Array.iteri
          (fun i c ->
            let l, u = Boundmap.lu_bounds bm c in
            lower.(i + 1) <- l;
            upper.(i + 1) <- u)
          cenc.Clock_enc.classes;
        (match (y, cond_bounds) with
        | Some yi, Some iv ->
            let bl = Interval.lo iv in
            if Rational.sign bl > 0 then upper.(yi) <- Some bl;
            (match Interval.hi iv with
            | Time.Fin q -> lower.(yi) <- Some q
            | Time.Inf -> ())
        | Some _, None | None, _ -> ());
        Some (lower, upper)
      end
    in
    { cenc; nclocks; y; max_const; guards; uppers; lu }

  (* The job fingerprint ties a checkpoint to the run shape that wrote
     it: kernel, entry point, and the whole timing side of the encoding
     (class bounds, max constant, alphabet size, DBM dimension).  It
     cannot observe the automaton's transition function — that is
     re-supplied at resume (closures do not marshal) and trusted to be
     the same program calling again. *)
  let fingerprint_of ~kind bm (enc : _ enc) =
    Format.asprintf
      "tmjob1|kernel=%s|widen=%s|kind=%s|nclocks=%d|maxc=%a|alpha=%d|%a"
      K.name
      (match enc.lu with Some _ -> "lu" | None -> "maxc")
      kind enc.nclocks Rational.pp enc.max_const
      (Array.length enc.guards)
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_char f ',')
         (fun f (c, iv) -> Format.fprintf f "%s:%a" c Interval.pp iv))
      (Boundmap.to_list bm)

  let cond_kind (c : _ Condition.t) =
    Format.asprintf "condition:%s:%a" c.Condition.cname Interval.pp
      c.Condition.bounds

  let fingerprint_reachable a bm =
    fingerprint_of ~kind:"reachable" bm
      (make_enc a bm ~with_observer:false ~cond_bounds:None)

  let fingerprint_invariant a bm =
    fingerprint_of ~kind:"invariant" bm
      (make_enc a bm ~with_observer:false ~cond_bounds:None)

  let fingerprint_condition a bm c =
    fingerprint_of ~kind:(cond_kind c) bm
      (make_enc a bm ~with_observer:true
         ~cond_bounds:(Some c.Condition.bounds))

  (* A stored zone doubling as a waiting-list entry.  [alive] is
     cleared when a later, larger zone at the same location subsumes
     it; [expanded] distinguishes passed-list members from entries
     pruned while still waiting (the [zones.pruned_waiting] signal).
     [zmin] is the minimal-constraint form of [z], computed once at
     store time: both subsumption directions probe it in O(kept
     constraints) instead of scanning the full n² matrix. *)
  type zentry = {
    z : K.t;
    zmin : K.Min.min;
    zloose : int;
    seq : int;
    mutable alive : bool;
    mutable expanded : bool;
  }

  (* Checkpoint payload: the whole search frontier at a batch boundary.
     Zones and waiting-list entries are plain data ([K.t] carries no
     closures), and one [Marshal] call preserves the sharing between
     [p_cells] and [p_pending], so pending entries come back as the
     same records as their cell copies.  States must themselves be
     marshalable — true of every system in this repository.  Counter
     deltas are this job's contribution to the shared metrics, replayed
     with [Metrics.add] at resume so a resumed run's totals equal an
     uninterrupted one's. *)
  type 's snap = {
    p_keys : ('s * phase) array;  (** store keys in id order *)
    p_cells : (int * zentry list) array;
    p_pending : (int * zentry list) array;
    p_locq : int array;
    p_edges : int;
    p_zones : int;
    p_seq : int;
    p_subsumed_d : int;
    p_pruned_d : int;
    p_interned_d : int;
    p_waiting_max : float;
  }

  (* Per-domain expansion context for the parallel path: a private
     scratch matrix plus a private enabled-vector cache (its own
     Hstore, so the single-domain owner assertion holds).  Created
     lazily by the domain that uses it. *)
  type 's dctx = {
    dscr : K.Scratch.scratch;
    darena : K.Arena.arena;
        (** speculative zones freeze into this bump arena; it rewinds
            at the end of every batch, after the commit loop has copied
            the survivors into the main arena *)
    dvids : 's Hstore.t;
    dvecs : (int, bool array) Hashtbl.t;
    dsat : int -> int -> Dbm_bound.t -> bool;
        (** shared satisfiability probe over [dscr], so the per-edge
            [observe] call allocates no closure *)
  }

  (* Generic exploration.  [observe] sees each discrete step plus a
     satisfiability query on the guard-constrained successor zone and
     returns the observer phase transition and the operation on the
     observer clock ([`Reset], [`Free] while it is not being read, or
     [`Keep]); [inspect] sees every stored (state, phase, zone).

     With a [pool] of size > 1 the engine runs speculate-then-commit
     per popped location batch: workers compute the pure DBM successor
     pipelines of the batch in parallel on per-domain scratches, then
     the main domain replays the outcomes in exact sequential order —
     edge counting, observer probes, interning, subsumption, storing,
     queueing all happen at commit.  Every state-mutating decision is
     thus made in the sequential order, so verdicts, the reachable
     set, and every counter (including [zones.stored] and
     [zones.subsumed]) are bit-identical to the sequential engine at
     any domain count.  The only speculative waste is computing
     successors of entries that a same-batch commit prunes; their
     results are discarded exactly where the sequential engine would
     have skipped the dead entry.  [observe] and the automaton's
     [delta] must be pure — they run on worker domains.

     Checkpointing discipline: snapshots, the (deterministic) zone
     budget, and cooperative interrupts all act only at batch
     boundaries — the top of the drain loop — where the frontier state
     is exactly [cells]/[pending]/[locq] and (under a pool) every
     worker has quiesced at the [parallel_for] commit barrier.  That is
     what makes a resumed run replay the identical commit sequence.
     The wall-clock deadline is the one check allowed to fire
     mid-batch (per successor pipeline, so one slow pipeline cannot
     overshoot by more than one zone expansion); its final snapshot
     re-queues the unfinished remainder of the current batch, which
     keeps resumption sound (subsumption absorbs re-derived
     successors) at the cost of exact counter equality — the deadline
     is documented as non-deterministic anyway. *)
  let explore (type s a) ?(limit = 200_000) ?deadline_s ?pool ?checkpoint
      ?resume ~fingerprint:fp
      (enc : (s, a) enc)
      ~(initial_phase : s -> phase)
      ~(observe :
         phase -> s -> a -> s -> sat:(int -> int -> Dbm_bound.t -> bool)
         -> (phase * [ `Reset | `Free | `Keep ], string) result)
      ~(inspect : phase -> s -> K.t -> unit) =
    let a = enc.cenc.Clock_enc.aut in
    let nclasses = enc.cenc.Clock_enc.nclasses in
    let store =
      Hstore.create
        ~equal:(fun (s1, p1) (s2, p2) -> p1 = p2 && a.Ioa.equal_state s1 s2)
        ~hash:(fun (s, p) ->
          (a.Ioa.hash_state s * 2) + match p with Idle -> 0 | Armed -> 1)
        256
    in
    (* Hash-consed zone store: structurally equal zones become one
       pointer, so passed-list inclusion checks start with a physical
       equality hit and hash at most once per distinct zone. *)
    let zstore = Hstore.create ~equal:K.equal ~hash:K.hash 64 in
    (* Passed + waiting zones per location id. *)
    let cells : (int, zentry list ref) Hashtbl.t = Hashtbl.create 64 in
    (* Waiting list: per-location pending buckets drained in FIFO
       location order, largest zone first within a bucket. *)
    let pending : (int, zentry list ref) Hashtbl.t = Hashtbl.create 64 in
    let locq = Queue.create () in
    let queued : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    (* Per-state caches of {!Clock_enc.enabled_vec}, shared across
       observer phases. *)
    let vec_ids = Hstore.create ~equal:a.Ioa.equal_state ~hash:a.Ioa.hash_state 64 in
    let vecs : (int, bool array) Hashtbl.t = Hashtbl.create 64 in
    let enabled_vec s =
      let id = match Hstore.add vec_ids s with `Added i | `Present i -> i in
      match Hashtbl.find_opt vecs id with
      | Some v -> v
      | None ->
          let v = Clock_enc.enabled_vec enc.cenc s in
          Hashtbl.add vecs id v;
          v
    in
    let scr = K.Scratch.create enc.nclocks in
    (* One shared satisfiability probe over [scr]: building the partial
       application here keeps the per-edge [observe] call closure-free. *)
    let sat_scr i j b = K.Scratch.sat scr i j b in
    let smode = store_mode () in
    (* The main arena holds every stored zone's payload (arena mode).
       It is never reset: everything frozen into it on the sequential
       path, or copied into it by the commit loop, is a stored zone. *)
    let arena = K.Arena.create () in
    (* The one widening applied to every zone before it is stored —
       LU-bound extrapolation by default, classic max-constant when
       disabled.  Uniform across kernels and across the sequential,
       speculative and seeding paths, so [zones.stored] stays identical
       by construction whatever the kernel or domain count. *)
    let widen scr =
      match enc.lu with
      | Some (lower, upper) -> K.Scratch.extrapolate_lu ~lower ~upper scr
      | None -> K.Scratch.extrapolate enc.max_const scr
    in
    let z_init = K.zero enc.nclocks in
    let edges = ref 0 in
    let zone_count = ref 0 in
    let waiting = ref 0 in
    let seq = ref 0 in
    (* This job's baseline of the shared counters, taken before any
       restore: [value - base] is the delta a snapshot must carry. *)
    let base_subsumed = Metrics.value c_zones_subsumed in
    let base_pruned = Metrics.value c_zones_pruned_waiting in
    let base_interned = Metrics.value c_zones_interned in
    let exception Unsupported_shape of string in
    let exception Budget of [ `States | `Deadline | `Interrupt ] in
    (* Absolute wall-clock deadline; probed at every batch boundary and
       before every successor pipeline, so a single expensive pipeline
       cannot overshoot by more than one zone expansion. *)
    let deadline =
      match deadline_s with
      | None -> None
      | Some d -> Some (Tracing.now_s () +. d)
    in
    let check_deadline =
      match deadline with
      | None -> fun () -> ()
      | Some t ->
          fun () -> if Tracing.now_s () > t then raise (Budget `Deadline)
    in
    (* Streaming telemetry.  Observation-only: it reads the loop's own
       counters and never influences what gets explored, so verdicts
       and [zones.stored] are byte-identical with telemetry on or off.
       With neither an event sink nor the progress line active, the
       per-batch cost is two flag reads and no clock access. *)
    let t_start =
      if Events.enabled () || Events.progress_enabled () then
        Tracing.now_s ()
      else 0.
    in
    let last_emit = ref neg_infinity in
    let emit_telemetry ?(force = false) ?(ev = "zones.batch") () =
      if Events.enabled () || Events.progress_enabled () then begin
        let now = Tracing.now_s () in
        if force || now -. !last_emit >= 0.05 then begin
          last_emit := now;
          let elapsed = now -. t_start in
          let rate =
            if elapsed > 0. then float_of_int !zone_count /. elapsed else 0.
          in
          if Events.enabled () then begin
            let queues =
              match pool with
              | Some pl when Pool.size pl > 1 ->
                  [ ( "queues",
                      Json.List
                        (Array.to_list
                           (Array.map
                              (fun d -> Json.Int d)
                              (Pool.queue_depths pl))) ) ]
              | Some _ | None -> []
            in
            Events.emit ev
              ([
                 ("stored", Json.Int !zone_count);
                 ("frontier", Json.Int !waiting);
                 ("locations", Json.Int (Hstore.length store));
                 ("edges", Json.Int !edges);
                 ( "subsumed",
                   Json.Int (Metrics.value c_zones_subsumed - base_subsumed)
                 );
                 ( "pruned",
                   Json.Int
                     (Metrics.value c_zones_pruned_waiting - base_pruned) );
                 ("rate", Json.Float rate);
               ]
              @ queues)
          end;
          let eta_s =
            (* ETA toward whichever budget will end the run first: the
               wall-clock deadline, or the state budget at the current
               rate. *)
            match deadline with
            | Some t -> Some (Float.max 0. (t -. now))
            | None ->
                if rate > 0. then
                  Some (float_of_int (max 0 (limit - !zone_count)) /. rate)
                else None
          in
          Events.progress ?eta_s ~stored:!zone_count ~frontier:!waiting
            ~rate ()
        end
      end
    in
    let cell_of id =
      match Hashtbl.find_opt cells id with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add cells id c;
          c
    in
    (* Store one already-interned zone: subsumption (both directions
       through the minimal-constraint forms), storing, inspection,
       queueing.  All callers run on the main domain in sequential
       commit order, so everything here is deterministic at any domain
       count. *)
    let add_interned s p z =
      let id = match Hstore.add store (s, p) with `Added i | `Present i -> i in
      let cell = cell_of id in
      if List.exists (fun e -> K.Min.subsumes e.zmin z) !cell then
        Metrics.incr c_zones_subsumed
      else begin
        let zmin = K.Min.of_zone z in
        cell :=
          List.filter
            (fun e ->
              if K.Min.subsumes zmin e.z then begin
                e.alive <- false;
                if not e.expanded then Metrics.incr c_zones_pruned_waiting;
                false
              end
              else true)
            !cell;
        incr seq;
        let e =
          {
            z;
            zmin;
            zloose = K.loose z;
            seq = !seq;
            alive = true;
            expanded = false;
          }
        in
        cell := e :: !cell;
        incr zone_count;
        Metrics.incr c_zones_stored;
        inspect p s z;
        let bucket =
          match Hashtbl.find_opt pending id with
          | Some b -> b
          | None ->
              let b = ref [] in
              Hashtbl.add pending id b;
              b
        in
        bucket := e :: !bucket;
        if not (Hashtbl.mem queued id) then begin
          Hashtbl.add queued id ();
          Queue.add id locq
        end;
        incr waiting;
        Metrics.set_max g_waiting_max (float_of_int !waiting)
      end
    in
    (* Sequential path: the surviving successor is still in [scr].
       Arena/heap modes hash and probe it in place — a hit never copies
       the matrix at all; a miss freezes exactly once (into the main
       arena, or the heap).  Seed mode keeps the pre-arena discipline:
       freeze a copy first, intern it afterwards. *)
    let add_scratch s p =
      match smode with
      | Store_seed ->
          let z0 = K.Scratch.freeze scr in
          let z = Hstore.intern zstore z0 in
          if z != z0 then Metrics.incr c_zones_interned;
          add_interned s p z
      | Store_heap | Store_arena -> (
          let h = K.Scratch.hash scr in
          match
            Hstore.intern_scratch zstore ~hash:h
              ~equal:(K.Scratch.equal_zone scr)
              ~freeze:(fun () ->
                match smode with
                | Store_arena -> K.Scratch.freeze_into ~hash:h arena scr
                | Store_heap | Store_seed -> K.Scratch.freeze scr)
          with
          | `Hit z ->
              Metrics.incr c_zones_interned;
              add_interned s p z
          | `Miss z -> add_interned s p z)
    in
    (* Commit path: the speculated zone was frozen on a worker domain
       (into its per-domain arena under arena mode).  Probe it against
       the store; only a genuine miss is copied into the main arena —
       the worker arenas rewind at the end of the batch. *)
    let add_spec s p z =
      match smode with
      | Store_seed ->
          let z0 = z in
          let z = Hstore.intern zstore z in
          if z != z0 then Metrics.incr c_zones_interned;
          add_interned s p z
      | Store_heap | Store_arena -> (
          match
            Hstore.intern_scratch zstore ~hash:(K.hash z)
              ~equal:(fun k -> K.equal k z)
              ~freeze:(fun () ->
                match smode with
                | Store_arena -> K.copy_into arena z
                | Store_heap | Store_seed -> z)
          with
          | `Hit z ->
              Metrics.incr c_zones_interned;
              add_interned s p z
          | `Miss z -> add_interned s p z)
    in
    (* The unfinished tail of the batch being drained: the entry under
       expansion plus the ones not yet reached.  Only a mid-batch
       deadline can observe a nonempty tail; it is folded back into the
       snapshot so no committed-but-unexpanded work is lost. *)
    let batch_loc = ref (-1) in
    let batch_left : zentry list ref = ref [] in
    let pop_batch_left () =
      batch_left := (match !batch_left with _ :: t -> t | [] -> [])
    in
    (* ---------------- checkpointing ---------------- *)
    let wrote_snapshot = ref false in
    let last_snap = ref 0 in
    let save_snapshot () =
      match checkpoint with
      | None -> None
      | Some (path, _) ->
          Tracing.with_span "recover.snapshot" @@ fun () ->
          let p_keys =
            Array.init (Hstore.length store) (Hstore.key_of_id store)
          in
          let p_cells =
            Array.of_seq
              (Seq.map
                 (fun (id, es) -> (id, !es))
                 (Hashtbl.to_seq cells))
          in
          let base_pending =
            List.of_seq
              (Seq.map (fun (id, es) -> (id, !es)) (Hashtbl.to_seq pending))
          in
          (* Fold the unfinished batch tail back into the frontier. *)
          let pend, q_extra =
            match !batch_left with
            | [] -> (base_pending, [])
            | tail ->
                let id = !batch_loc in
                let merged =
                  match List.assoc_opt id base_pending with
                  | Some es -> (id, tail @ es) :: List.remove_assoc id base_pending
                  | None -> (id, tail) :: base_pending
                in
                (merged, if Hashtbl.mem queued id then [] else [ id ])
          in
          let p_pending = Array.of_list pend in
          let p_locq =
            Array.of_list (q_extra @ List.of_seq (Queue.to_seq locq))
          in
          let snap =
            {
              p_keys;
              p_cells;
              p_pending;
              p_locq;
              p_edges = !edges;
              p_zones = !zone_count;
              p_seq = !seq;
              p_subsumed_d = Metrics.value c_zones_subsumed - base_subsumed;
              p_pruned_d =
                Metrics.value c_zones_pruned_waiting - base_pruned;
              p_interned_d = Metrics.value c_zones_interned - base_interned;
              p_waiting_max = Metrics.gauge_value g_waiting_max;
            }
          in
          let info =
            Printf.sprintf "zones=%d locations=%d edges=%d" !zone_count
              (Hstore.length store) !edges
          in
          Snapshot.write ~path ~fingerprint:fp ~info
            (Marshal.to_bytes (snap : s snap) []);
          wrote_snapshot := true;
          last_snap := !zone_count;
          Some path
    in
    let restore path =
      let fp_got, info, payload = Snapshot.read path in
      if fp_got <> fp then
        raise
          (Snapshot.Bad_snapshot
             (Printf.sprintf
                "%s: snapshot belongs to a different job\n\
                \  snapshot: %s\n\
                \  this run: %s" path fp_got fp));
      let snap = (Marshal.from_bytes payload 0 : s snap) in
      (* Dense Hstore ids are assigned in insertion order, so re-adding
         the keys in id order reproduces every id exactly. *)
      Array.iter (fun k -> ignore (Hstore.add store k)) snap.p_keys;
      Array.iter
        (fun (id, es) ->
          Hashtbl.replace cells id (ref es);
          (* Re-seed the hash-consing store.  Marshal preserved the
             sharing among stored zones, so structurally equal zones
             are still one pointer and each distinct zone is interned
             once. *)
          List.iter (fun e -> ignore (Hstore.intern zstore e.z)) es)
        snap.p_cells;
      Array.iter
        (fun (id, es) -> Hashtbl.replace pending id (ref es))
        snap.p_pending;
      Array.iter
        (fun id ->
          Queue.add id locq;
          Hashtbl.replace queued id ())
        snap.p_locq;
      edges := snap.p_edges;
      zone_count := snap.p_zones;
      seq := snap.p_seq;
      waiting :=
        Array.fold_left (fun n (_, es) -> n + List.length es) 0 snap.p_pending;
      last_snap := !zone_count;
      (* Replay this job's counter contribution so a resumed run's
         totals equal an uninterrupted one's. *)
      Metrics.add c_zones_stored snap.p_zones;
      Metrics.add c_zone_edges snap.p_edges;
      Metrics.add c_zones_subsumed snap.p_subsumed_d;
      Metrics.add c_zones_pruned_waiting snap.p_pruned_d;
      Metrics.add c_zones_interned snap.p_interned_d;
      Metrics.set_max g_waiting_max snap.p_waiting_max;
      Metrics.incr c_resumed;
      Events.emit "recover.resume"
        [
          ("path", Json.String path);
          ("zones", Json.Int !zone_count);
          ("edges", Json.Int !edges);
          ("info", Json.String info);
        ];
      Log.info "resumed from %s (%s)" path info;
      (* Replay [inspect] over the restored frontier in original
         storage order: reachable-set accumulators see every stored
         location again, and condition probes re-audit zones that
         already passed (pure, so they pass again). *)
      let entries =
        Hashtbl.fold
          (fun id es acc ->
            List.fold_left (fun acc e -> (id, e) :: acc) acc !es)
          cells []
      in
      let entries =
        List.sort (fun (_, e1) (_, e2) -> compare e1.seq e2.seq) entries
      in
      List.iter
        (fun (id, e) ->
          let s, p = Hstore.key_of_id store id in
          inspect p s e.z)
        entries
    in
    (* Batch-boundary discipline: deterministic budget, cooperative
       interrupt, periodic snapshot — in that order, so an exhausted
       run never first spends time snapshotting. *)
    let boundary_checks () =
      if !zone_count > limit then raise (Budget `States);
      if Supervisor.interrupt_requested () then raise (Budget `Interrupt);
      match checkpoint with
      | Some (_, every) when every > 0 && !zone_count - !last_snap >= every ->
          ignore (save_snapshot ())
      | _ -> ()
    in
    let expand s p pre z =
      Array.iter
        (fun (act, gopt, ci) ->
          List.iter
            (fun s' ->
              incr edges;
              Metrics.incr c_zone_edges;
              check_deadline ();
              K.Scratch.load scr z;
              (match gopt with
              | None -> ()
              | Some (x, b) -> K.Scratch.constrain scr 0 x b);
              if not (K.Scratch.is_empty scr) then begin
                match observe p s act s' ~sat:sat_scr with
                | Error m -> raise (Unsupported_shape m)
                | Ok (p', y_op) ->
                    let post = enabled_vec s' in
                    for i = 0 to nclasses - 1 do
                      if post.(i) then begin
                        if ci = i || not pre.(i) then
                          K.Scratch.reset scr (i + 1)
                      end
                      else K.Scratch.free scr (i + 1)
                    done;
                    (match (enc.y, y_op) with
                    | Some y, `Reset -> K.Scratch.reset scr y
                    | Some y, `Free -> K.Scratch.free scr y
                    | Some _, `Keep | None, _ -> ());
                    K.Scratch.up scr;
                    for i = 0 to nclasses - 1 do
                      if post.(i) then
                        match enc.uppers.(i) with
                        | Some b -> K.Scratch.constrain scr (i + 1) 0 b
                        | None -> ()
                    done;
                    widen scr;
                    if not (K.Scratch.is_empty scr) then add_scratch s' p'
              end)
            (a.Ioa.delta s act))
        enc.guards
    in
    (* Parallel path: pure successor pipeline for one (entry, guard)
       pair, mirroring [expand]'s inner loop op for op but recording
       outcomes instead of committing them.  Runs on worker domains;
       exceptions from [observe] (violation witnesses use local
       exceptions) are captured and re-raised at the commit point. *)
    let dctxs =
      Array.make (match pool with Some p -> Pool.size p | None -> 1) None
    in
    let domain_ctx d =
      match dctxs.(d) with
      | Some c -> c
      | None ->
          let dscr = K.Scratch.create enc.nclocks in
          let c =
            {
              dscr;
              darena = K.Arena.create ();
              dvids =
                Hstore.create ~equal:a.Ioa.equal_state ~hash:a.Ioa.hash_state
                  64;
              dvecs = Hashtbl.create 64;
              dsat = (fun i j b -> K.Scratch.sat dscr i j b);
            }
          in
          dctxs.(d) <- Some c;
          c
    in
    let denabled_vec dc s' =
      let id =
        match Hstore.add dc.dvids s' with `Added i | `Present i -> i
      in
      match Hashtbl.find_opt dc.dvecs id with
      | Some v -> v
      | None ->
          let v = Clock_enc.enabled_vec enc.cenc s' in
          Hashtbl.add dc.dvecs id v;
          v
    in
    let speculate dc s p pre z (act, gopt, ci) =
      List.map
        (fun s' ->
          let scr = dc.dscr in
          K.Scratch.load scr z;
          (match gopt with
          | None -> ()
          | Some (x, b) -> K.Scratch.constrain scr 0 x b);
          if K.Scratch.is_empty scr then `Skip
          else
            match observe p s act s' ~sat:dc.dsat with
            | exception ex -> `Raised ex
            | Error m -> `Unsup m
            | Ok (p', y_op) ->
                let post = denabled_vec dc s' in
                for i = 0 to nclasses - 1 do
                  if post.(i) then begin
                    if ci = i || not pre.(i) then K.Scratch.reset scr (i + 1)
                  end
                  else K.Scratch.free scr (i + 1)
                done;
                (match (enc.y, y_op) with
                | Some y, `Reset -> K.Scratch.reset scr y
                | Some y, `Free -> K.Scratch.free scr y
                | Some _, `Keep | None, _ -> ());
                K.Scratch.up scr;
                for i = 0 to nclasses - 1 do
                  if post.(i) then
                    match enc.uppers.(i) with
                    | Some b -> K.Scratch.constrain scr (i + 1) 0 b
                    | None -> ()
                done;
                widen scr;
                if K.Scratch.is_empty scr then `Dead
                else
                  `Succ
                    ( s',
                      p',
                      match smode with
                      | Store_arena -> K.Scratch.freeze_into dc.darena scr
                      | Store_heap | Store_seed -> K.Scratch.freeze scr ))
        (a.Ioa.delta s act)
    in
    (* Sequential-order replay of one speculated edge. *)
    let commit_edge out =
      incr edges;
      Metrics.incr c_zone_edges;
      check_deadline ();
      match out with
      | `Skip | `Dead -> ()
      | `Unsup m -> raise (Unsupported_shape m)
      | `Raised ex -> raise ex
      | `Succ (s', p', z) -> add_spec s' p' z
    in
    let expand_batch_par pl s p pre batch =
      (* Aliveness is sampled twice, exactly like the sequential loop:
         entries dead at pop get no tasks; entries killed by an earlier
         commit of this very batch have their speculation discarded. *)
      let marks = List.map (fun e -> (e, e.alive)) batch in
      let alive = Array.of_list (List.filter (fun e -> e.alive) batch) in
      let ng = Array.length enc.guards in
      let ntasks = Array.length alive * ng in
      let res = Array.make (max ntasks 1) [] in
      Pool.parallel_for pl ~n:ntasks (fun ~domain t ->
          res.(t) <-
            speculate (domain_ctx domain) s p pre
              alive.(t / ng).z
              enc.guards.(t mod ng));
      let ai = ref 0 in
      List.iter
        (fun (e, was_alive) ->
          decr waiting;
          (if was_alive then begin
             let base = !ai * ng in
             incr ai;
             if e.alive then begin
               e.expanded <- true;
               for gi = 0 to ng - 1 do
                 List.iter commit_edge res.(base + gi)
               done
             end
           end);
          pop_batch_left ())
        marks;
      (* Batch boundary: every committed zone was re-homed into the
         main arena, so whatever the workers froze this batch is now
         discarded speculative work — rewind the per-domain arenas. *)
      Array.iter
        (function Some dc -> K.Arena.reset dc.darena | None -> ())
        dctxs
    in
    let result =
      try
        (match resume with
        | Some path -> restore path
        | None ->
            List.iter
              (fun s0 ->
                K.Scratch.load scr z_init;
                let v0 = enabled_vec s0 in
                for i = 0 to nclasses - 1 do
                  if not v0.(i) then K.Scratch.free scr (i + 1)
                done;
                let p0 = initial_phase s0 in
                (match enc.y with
                | Some y when p0 = Idle -> K.Scratch.free scr y
                | Some _ | None -> ());
                K.Scratch.up scr;
                for i = 0 to nclasses - 1 do
                  if v0.(i) then
                    match enc.uppers.(i) with
                    | Some b -> K.Scratch.constrain scr (i + 1) 0 b
                    | None -> ()
                done;
                widen scr;
                if not (K.Scratch.is_empty scr) then add_scratch s0 p0)
              a.Ioa.start);
        while
          boundary_checks ();
          not (Queue.is_empty locq)
        do
          check_deadline ();
          emit_telemetry ();
          let id = Queue.pop locq in
          Hashtbl.remove queued id;
          let batch =
            match Hashtbl.find_opt pending id with
            | Some b ->
                let entries = !b in
                Hashtbl.remove pending id;
                entries
            | None -> []
          in
          (* Largest zone first: the biggest zone subsumes the most
             successors, so expanding it first maximizes pruning.  The
             insertion sequence breaks ties for determinism. *)
          let batch =
            List.sort
              (fun e1 e2 ->
                if e1.zloose <> e2.zloose then compare e2.zloose e1.zloose
                else compare e1.seq e2.seq)
              batch
          in
          let s, p = Hstore.key_of_id store id in
          let pre = enabled_vec s in
          batch_loc := id;
          batch_left := batch;
          (match pool with
          | Some pl when Pool.size pl > 1 -> expand_batch_par pl s p pre batch
          | Some _ | None ->
              List.iter
                (fun e ->
                  decr waiting;
                  (if e.alive then begin
                     e.expanded <- true;
                     expand s p pre e.z
                   end);
                  pop_batch_left ())
                batch)
        done;
        (* The fixpoint was reached: a leftover snapshot — periodic from
           this run, or the one this run resumed from when it doubles as
           the checkpoint path — would only invite resuming a finished
           job, so drop it.  A file at the checkpoint path this run
           neither wrote nor consumed is someone else's and stays. *)
        (match checkpoint with
        | Some (path, _)
          when !wrote_snapshot
               || (match resume with
                  | Some r -> String.equal r path
                  | None -> false) -> (
            try Sys.remove path with Sys_error _ -> ())
        | _ -> ());
        emit_telemetry ~force:true ~ev:"zones.done" ();
        Events.progress_clear ();
        Ok
          {
            locations = Hstore.length store;
            zones = !zone_count;
            edges = !edges;
          }
      with
      | Unsupported_shape m -> Error (`Unsupported m)
      | Budget kind ->
          (* Exhaustion must never masquerade as a verdict: surface the
             partial stats so the caller can report how far the search
             got before the budget ran out — and leave a final snapshot
             behind so none of that work is lost. *)
          let ck = save_snapshot () in
          let partial =
            {
              locations = Hstore.length store;
              zones = !zone_count;
              edges = !edges;
            }
          in
          let reason =
            match kind with
            | `States ->
                Metrics.incr c_budget_states;
                Printf.sprintf "zone budget exhausted (limit=%d stored zones)"
                  limit
            | `Deadline ->
                Metrics.incr c_budget_deadline;
                let d = match deadline_s with Some d -> d | None -> 0. in
                Printf.sprintf "deadline exceeded (%.0f ms)" (d *. 1000.)
            | `Interrupt ->
                Metrics.incr c_interrupted;
                "interrupted (SIGINT/SIGTERM)"
          in
          emit_telemetry ~force:true ~ev:"zones.exhausted" ();
          Events.emit "zones.budget"
            [
              ("reason", Json.String reason);
              ( "checkpoint",
                match ck with
                | Some p -> Json.String p
                | None -> Json.Null );
            ];
          Events.progress_clear ();
          Error (`Budget { reason; partial; checkpoint = ck })
    in
    result

  (* [?domains] scopes a pool around one exploration; [domains <= 1]
     (the default) never touches the pool machinery. *)
  let with_domains domains f =
    match domains with
    | Some d when d > 1 -> Pool.run ~domains:d (fun p -> f (Some p))
    | Some _ | None -> f None

  let span_args domains =
    [ ("domains", string_of_int (match domains with Some d -> max 1 d | None -> 1)) ]

  let reachable ?limit ?deadline_s ?domains ?checkpoint ?resume
      (a : ('s, 'a) Ioa.t) bm =
    Tracing.with_span "zones.reachable" ~args:(span_args domains) @@ fun () ->
    let enc = make_enc a bm ~with_observer:false ~cond_bounds:None in
    let fingerprint = fingerprint_of ~kind:"reachable" bm enc in
    let seen = ref [] in
    let inspect _ s _ =
      if not (List.exists (a.Ioa.equal_state s) !seen) then seen := s :: !seen
    in
    match
      with_domains domains @@ fun pool ->
      explore ?limit ?deadline_s ?pool ?checkpoint ?resume ~fingerprint enc
        ~initial_phase:(fun _ -> Idle)
        ~observe:keep_phase
        ~inspect
    with
    | Ok stats -> (stats, List.rev !seen)
    | Error (`Unsupported m) -> raise (Open_system m)
    | Error (`Budget e) -> raise (Out_of_budget e)

  let check_state_invariant ?limit ?deadline_s ?domains ?checkpoint ?resume
      (a : ('s, 'a) Ioa.t) bm pred =
    Tracing.with_span "zones.check_state_invariant" ~args:(span_args domains)
    @@ fun () ->
    let enc = make_enc a bm ~with_observer:false ~cond_bounds:None in
    let fingerprint = fingerprint_of ~kind:"invariant" bm enc in
    let bad = ref None in
    let exception Found in
    match
      with_domains domains @@ fun pool ->
      explore ?limit ?deadline_s ?pool ?checkpoint ?resume ~fingerprint enc
        ~initial_phase:(fun _ -> Idle)
        ~observe:keep_phase
        ~inspect:(fun _ s _ ->
          if not (pred s) then begin
            bad := Some s;
            raise Found
          end)
    with
    | exception Found -> (
        match !bad with Some s -> Error s | None -> assert false)
    | Ok stats -> Ok stats
    | Error (`Unsupported m) -> raise (Open_system m)
    | Error (`Budget e) -> raise (Out_of_budget e)

  let check_condition ?limit ?deadline_s ?domains ?checkpoint ?resume
      (a : ('s, 'a) Ioa.t) bm (c : ('s, 'a) Condition.t) =
    Tracing.with_span "zones.check_condition"
      ~args:(("cond", c.Condition.cname) :: span_args domains)
    @@ fun () ->
    let enc =
      make_enc a bm ~with_observer:true ~cond_bounds:(Some c.Condition.bounds)
    in
    let fingerprint = fingerprint_of ~kind:(cond_kind c) bm enc in
    let y = match enc.y with Some y -> y | None -> assert false in
    let bl = Interval.lo c.Condition.bounds in
    let bu = Interval.hi c.Condition.bounds in
    let check_lower = Rational.sign bl > 0 in
    let lt_bl = Dbm_bound.Lt bl in
    let upper_probe =
      match bu with
      | Time.Fin q -> Some (Dbm_bound.Lt (Rational.neg q))
      | Time.Inf -> None
    in
    let exception Lower in
    let exception Upper in
    let observe p s act s' ~sat =
      let triggered = c.Condition.t_step s act s' in
      let pi = c.Condition.in_pi act in
      match p with
      | Armed when pi ->
          (* Occurrence: too early iff the zone admits y < b_l. *)
          if check_lower && sat y 0 lt_bl then raise Lower;
          if triggered then Ok (Armed, `Reset) else Ok (Idle, `Free)
      | Armed when triggered ->
          Error
            "trigger fired while armed with a non-Pi action (needs deadline \
             merge)"
      | Armed ->
          if c.Condition.in_s s' then Ok (Idle, `Free) else Ok (Armed, `Keep)
      | Idle -> if triggered then Ok (Armed, `Reset) else Ok (Idle, `Free)
    in
    let inspect p _s z =
      match (p, upper_probe) with
      | Armed, Some probe ->
          (* Violation iff time can pass the deadline while still armed:
             the zone admits y > q, i.e. 0 − y < −q is satisfiable. *)
          if K.sat z 0 y probe then raise Upper
      | Armed, None | Idle, _ -> ()
    in
    match
      with_domains domains @@ fun pool ->
      explore ?limit ?deadline_s ?pool ?checkpoint ?resume ~fingerprint enc
        ~initial_phase:(fun s0 ->
          if c.Condition.t_start s0 then Armed else Idle)
        ~observe ~inspect
    with
    | Ok stats -> Verified stats
    | Error (`Unsupported m) -> Unsupported m
    | Error (`Budget e) -> Unknown e
    | exception Lower -> Lower_violation { locations = 0; zones = 0; edges = 0 }
    | exception Upper -> Upper_violation { locations = 0; zones = 0; edges = 0 }
end

module Default = Make (Dbm)
module Ref = Make (Dbm_ref)
module Int = Make (Dbm_int)

(* Automatic kernel selection, decided per call: the packed-int kernel
   whenever every constant the exploration will see is an integer —
   the boundmap's endpoints and, for a condition check, the condition
   bounds — and the fast rational kernel otherwise.  The check runs on
   the arguments of each call, so a margin walk whose mediant probe
   perturbs an integral boundmap into a non-integral one transparently
   falls back to the rational kernel for exactly that probe.  The
   fingerprints dispatch identically, so a checkpoint written through
   [Auto] records which kernel actually ran and resumes on it. *)
module Auto : S = struct
  let pick bm : (module S) =
    if Boundmap.is_integral bm then (module Int) else (module Default)

  let integral_cond (c : _ Condition.t) =
    Rational.is_integer (Interval.lo c.Condition.bounds)
    &&
    match Interval.hi c.Condition.bounds with
    | Time.Fin q -> Rational.is_integer q
    | Time.Inf -> true

  let pick_cond bm c : (module S) =
    if Boundmap.is_integral bm && integral_cond c then (module Int)
    else (module Default)

  let reachable ?limit ?deadline_s ?domains ?checkpoint ?resume a bm =
    let (module E : S) = pick bm in
    E.reachable ?limit ?deadline_s ?domains ?checkpoint ?resume a bm

  let check_state_invariant ?limit ?deadline_s ?domains ?checkpoint ?resume a
      bm pred =
    let (module E : S) = pick bm in
    E.check_state_invariant ?limit ?deadline_s ?domains ?checkpoint ?resume a
      bm pred

  let check_condition ?limit ?deadline_s ?domains ?checkpoint ?resume a bm c =
    let (module E : S) = pick_cond bm c in
    E.check_condition ?limit ?deadline_s ?domains ?checkpoint ?resume a bm c

  let fingerprint_reachable a bm =
    let (module E : S) = pick bm in
    E.fingerprint_reachable a bm

  let fingerprint_invariant a bm =
    let (module E : S) = pick bm in
    E.fingerprint_invariant a bm

  let fingerprint_condition a bm c =
    let (module E : S) = pick_cond bm c in
    E.fingerprint_condition a bm c
end

(* Paranoid engine: the self-checking kernel, degrading to the
   reference engine when a checked pipeline disagrees.  The degraded
   rerun starts fresh — a snapshot written by the (suspect) fast
   kernel must not seed the trustworthy run — but keeps writing to the
   caller's checkpoint path, so preemption still works after a
   degrade. *)
module Paranoid : S = struct
  module P = Make (Dbm_paranoid)

  let c_degraded = Metrics.counter "recover.degraded"

  let degrade what fallback f =
    try f () with
    | Tm_recover.Paranoid.Mismatch m ->
        Metrics.incr c_degraded;
        Events.emit "recover.degraded"
          [ ("what", Json.String what); ("mismatch", Json.String m) ];
        Log.warn
          "paranoid %s: fast kernel self-check failed (%s) — degrading to \
           the reference kernel"
          what m;
        fallback ()

  let reachable ?limit ?deadline_s ?domains ?checkpoint ?resume a bm =
    degrade "reachable"
      (fun () -> Ref.reachable ?limit ?deadline_s ?domains ?checkpoint a bm)
      (fun () ->
        P.reachable ?limit ?deadline_s ?domains ?checkpoint ?resume a bm)

  let check_state_invariant ?limit ?deadline_s ?domains ?checkpoint ?resume a
      bm pred =
    degrade "invariant"
      (fun () ->
        Ref.check_state_invariant ?limit ?deadline_s ?domains ?checkpoint a bm
          pred)
      (fun () ->
        P.check_state_invariant ?limit ?deadline_s ?domains ?checkpoint
          ?resume a bm pred)

  let check_condition ?limit ?deadline_s ?domains ?checkpoint ?resume a bm c =
    degrade "condition"
      (fun () ->
        Ref.check_condition ?limit ?deadline_s ?domains ?checkpoint a bm c)
      (fun () ->
        P.check_condition ?limit ?deadline_s ?domains ?checkpoint ?resume a bm
          c)

  let fingerprint_reachable = P.fingerprint_reachable
  let fingerprint_invariant = P.fingerprint_invariant
  let fingerprint_condition = P.fingerprint_condition
end

include Default
