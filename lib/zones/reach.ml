module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Hstore = Tm_base.Hstore
module Ioa = Tm_ioa.Ioa
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module Metrics = Tm_obs.Metrics
module Tracing = Tm_obs.Tracing

let c_zones_stored = Metrics.counter "zones.stored"
let c_zones_subsumed = Metrics.counter "zones.subsumed"
let c_zone_edges = Metrics.counter "zones.edges"
let g_waiting_max = Metrics.gauge "zones.waiting_max"

type stats = { locations : int; zones : int; edges : int }

type outcome =
  | Verified of stats
  | Lower_violation of stats
  | Upper_violation of stats
  | Unsupported of string

exception Open_system = Clock_enc.Open_system

type phase = Idle | Armed

(* The zone engine's view of the encoding: the shared class clocks of
   {!Clock_enc} (DBM indices 1..n, index 0 is the reference), plus an
   optional observer clock. *)
type ('s, 'a) enc = {
  cenc : ('s, 'a) Clock_enc.t;
  nclocks : int;  (** DBM dimension *)
  y : int option;  (** observer clock *)
  max_const : Rational.t;
}

let make_enc a bm ~with_observer ~cond_bounds =
  let cenc = Clock_enc.make a bm in
  let max_const =
    match cond_bounds with
    | None -> cenc.Clock_enc.max_const
    | Some iv -> (
        let m = Rational.max cenc.Clock_enc.max_const (Interval.lo iv) in
        match Interval.hi iv with
        | Time.Fin q -> Rational.max m q
        | Time.Inf -> m)
  in
  let nreal = cenc.Clock_enc.nclasses in
  {
    cenc;
    nclocks = nreal + 1 + (if with_observer then 1 else 0);
    y = (if with_observer then Some (nreal + 1) else None);
    max_const;
  }

let apply_invariant enc s z =
  List.fold_left
    (fun z (x, q) -> Dbm.constrain z x 0 (Dbm.Le q))
    z
    (Clock_enc.invariant enc.cenc s)

let apply_ops z ops =
  List.fold_left
    (fun z op ->
      match op with
      | Clock_enc.Reset x -> Dbm.reset z x
      | Clock_enc.Free x -> Dbm.free z x)
    z ops

let guard enc act z =
  match Clock_enc.guard enc.cenc act with
  | None -> z
  | Some (x, bl) -> Dbm.constrain z 0 x (Dbm.Le (Rational.neg bl))

(* Generic exploration.  [observe] sees each discrete step and the
   guard-constrained zone and returns the observer phase transition
   plus the operation on the observer clock ([`Reset], [`Free] while it
   is not being read, or [`Keep]); [inspect] sees every stored
   (state, phase, zone). *)
let explore (type s a) ?(limit = 200_000) (enc : (s, a) enc)
    ~(initial_phase : s -> phase)
    ~(observe :
       phase -> s -> a -> s -> Dbm.t
       -> (phase * [ `Reset | `Free | `Keep ], string) result)
    ~(inspect : phase -> s -> Dbm.t -> unit) =
  let a = enc.cenc.Clock_enc.aut in
  let store =
    Hstore.create
      ~equal:(fun (s1, p1) (s2, p2) -> p1 = p2 && a.Ioa.equal_state s1 s2)
      ~hash:(fun (s, p) ->
        (a.Ioa.hash_state s * 2) + match p with Idle -> 0 | Armed -> 1)
      256
  in
  let zones : (int, Dbm.t list ref) Hashtbl.t = Hashtbl.create 256 in
  let edges = ref 0 in
  let zone_count = ref 0 in
  let queue = Queue.create () in
  let exception Unsupported_shape of string in
  let exception Limit in
  let add s p z =
    if Dbm.is_empty z then ()
    else begin
      let id =
        match Hstore.add store (s, p) with `Added i | `Present i -> i
      in
      let cell =
        match Hashtbl.find_opt zones id with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.add zones id c;
            c
      in
      if not (List.exists (fun z' -> Dbm.includes z' z) !cell) then begin
        cell := z :: List.filter (fun z' -> not (Dbm.includes z z')) !cell;
        incr zone_count;
        Metrics.incr c_zones_stored;
        if !zone_count > limit then raise Limit;
        inspect p s z;
        Queue.add (s, p, z) queue;
        Metrics.set_max g_waiting_max (float_of_int (Queue.length queue))
      end
      else Metrics.incr c_zones_subsumed
    end
  in
  let result =
    try
      List.iter
        (fun s0 ->
          let z0 = Dbm.zero enc.nclocks in
          let z0 = apply_ops z0 (Clock_enc.start_ops enc.cenc s0) in
          let p0 = initial_phase s0 in
          let z0 =
            match enc.y with
            | Some y when p0 = Idle -> Dbm.free z0 y
            | Some _ | None -> z0
          in
          let z0 = Dbm.up z0 in
          let z0 = apply_invariant enc s0 z0 in
          let z0 = Dbm.extrapolate enc.max_const z0 in
          add s0 p0 z0)
        a.Ioa.start;
      while not (Queue.is_empty queue) do
        let s, p, z = Queue.pop queue in
        List.iter
          (fun act ->
            List.iter
              (fun s' ->
                incr edges;
                Metrics.incr c_zone_edges;
                let zg = guard enc act z in
                if not (Dbm.is_empty zg) then begin
                  match observe p s act s' zg with
                  | Error m -> raise (Unsupported_shape m)
                  | Ok (p', y_op) ->
                      let zr =
                        apply_ops zg (Clock_enc.step_ops enc.cenc s act s')
                      in
                      let zr =
                        match (enc.y, y_op) with
                        | Some y, `Reset -> Dbm.reset zr y
                        | Some y, `Free -> Dbm.free zr y
                        | Some _, `Keep | None, _ -> zr
                      in
                      let zu = Dbm.up zr in
                      let zi = apply_invariant enc s' zu in
                      let ze = Dbm.extrapolate enc.max_const zi in
                      add s' p' ze
                end)
              (a.Ioa.delta s act))
          a.Ioa.alphabet
      done;
      Ok
        {
          locations = Hstore.length store;
          zones = !zone_count;
          edges = !edges;
        }
    with
    | Unsupported_shape m -> Error (`Unsupported m)
    | Limit -> Error (`Unsupported "zone limit exceeded")
  in
  result

let reachable ?limit (a : ('s, 'a) Ioa.t) bm =
  Tracing.with_span "zones.reachable" @@ fun () ->
  let enc = make_enc a bm ~with_observer:false ~cond_bounds:None in
  let seen = ref [] in
  let inspect _ s _ =
    if not (List.exists (a.Ioa.equal_state s) !seen) then seen := s :: !seen
  in
  match
    explore ?limit enc
      ~initial_phase:(fun _ -> Idle)
      ~observe:(fun p _ _ _ _ -> Ok (p, `Keep))
      ~inspect
  with
  | Ok stats -> (stats, List.rev !seen)
  | Error (`Unsupported m) -> raise (Open_system m)

let check_state_invariant ?limit (a : ('s, 'a) Ioa.t) bm pred =
  Tracing.with_span "zones.check_state_invariant" @@ fun () ->
  let enc = make_enc a bm ~with_observer:false ~cond_bounds:None in
  let bad = ref None in
  let exception Found in
  match
    explore ?limit enc
      ~initial_phase:(fun _ -> Idle)
      ~observe:(fun p _ _ _ _ -> Ok (p, `Keep))
      ~inspect:(fun _ s _ ->
        if not (pred s) then begin
          bad := Some s;
          raise Found
        end)
  with
  | exception Found -> (
      match !bad with Some s -> Error s | None -> assert false)
  | Ok stats -> Ok stats
  | Error (`Unsupported m) -> raise (Open_system m)

let check_condition ?limit (a : ('s, 'a) Ioa.t) bm
    (c : ('s, 'a) Condition.t) =
  Tracing.with_span "zones.check_condition"
    ~args:[ ("cond", c.Condition.cname) ]
  @@ fun () ->
  let enc =
    make_enc a bm ~with_observer:true ~cond_bounds:(Some c.Condition.bounds)
  in
  let y = match enc.y with Some y -> y | None -> assert false in
  let bl = Interval.lo c.Condition.bounds in
  let bu = Interval.hi c.Condition.bounds in
  let exception Lower in
  let exception Upper in
  let observe p s act s' zg =
    let triggered = c.Condition.t_step s act s' in
    let pi = c.Condition.in_pi act in
    match p with
    | Armed when pi ->
        (* Occurrence: too early iff the zone admits y < b_l. *)
        if Rational.sign bl > 0 && Dbm.sat zg y 0 (Dbm.Lt bl) then raise Lower;
        if triggered then Ok (Armed, `Reset) else Ok (Idle, `Free)
    | Armed when triggered ->
        Error
          "trigger fired while armed with a non-Pi action (needs deadline \
           merge)"
    | Armed ->
        if c.Condition.in_s s' then Ok (Idle, `Free) else Ok (Armed, `Keep)
    | Idle -> if triggered then Ok (Armed, `Reset) else Ok (Idle, `Free)
  in
  let inspect p _s z =
    match (p, bu) with
    | Armed, Time.Fin q ->
        (* Violation iff time can pass the deadline while still armed:
           the zone admits y > q, i.e. 0 − y < −q is satisfiable. *)
        if Dbm.sat z 0 y (Dbm.Lt (Rational.neg q)) then raise Upper
    | Armed, Time.Inf | Idle, _ -> ()
  in
  match
    explore ?limit enc
      ~initial_phase:(fun s0 -> if c.Condition.t_start s0 then Armed else Idle)
      ~observe ~inspect
  with
  | Ok stats -> Verified stats
  | Error (`Unsupported m) -> Unsupported m
  | exception Lower -> Lower_violation { locations = 0; zones = 0; edges = 0 }
  | exception Upper -> Upper_violation { locations = 0; zones = 0; edges = 0 }
