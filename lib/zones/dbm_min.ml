(* Minimal-constraint form of a canonical DBM (Larsen–Larsson–
   Pettersson–Yi, RTSS'97): the non-redundant subset of constraints
   from which re-closing reconstructs the exact matrix.

   The reduction runs in two steps on a canonical nonempty matrix:

   1. Collapse zero-equivalence classes.  [i ~ j] iff the 2-cycle
      [m_ij + m_ji] is exactly [Le 0] (both edges weak, constants
      negating).  In a canonical matrix this relation is transitive,
      so each clock's representative is the smallest class member.
      For a class [c_0 < c_1 < ... < c_k] (k >= 1) the kept edges are
      the cycle [c_0 -> c_1 -> ... -> c_k -> c_0] with the original
      bounds — within a zero class [m_ab = m_ac + m_cb] holds with
      equality, so the cycle regenerates every intra-class entry.

   2. Among representatives every cycle is strictly positive (a zero
      cycle would have merged its classes, a negative one means the
      zone is empty), so redundant edges can all be removed
      simultaneously: drop [(i, j)] iff some third representative [k]
      gives [m_ik + m_kj <= m_ij].  [Inf] edges are never kept —
      closure over a subset of a closed matrix can only stay above it.

   Construction is deterministic (fixed iteration order), so two
   reductions of equal matrices are structurally equal — [equal] is
   exact, no re-closure needed.

   This module is the rational-bound instance shared by {!Dbm} and
   {!Dbm_ref}; {!Dbm_int} hand-specializes the same algorithm over
   packed ints to keep its subsumption probe allocation-free.  The
   QCheck round-trip in test/test_dbm_min.ml pins all three to the
   dense kernels. *)

module Rational = Tm_base.Rational

type t = {
  mn : int;  (* clock count of the source matrix *)
  midx : int array;  (* kept constraint positions, [i * mn + j] *)
  mbnd : Dbm_bound.t array;  (* bound of each kept constraint *)
}

let count t = Array.length t.midx
let le_zero = Dbm_bound.Le Rational.zero

(* [r i j] reads entry (i, j) of the source matrix — canonical and
   nonempty, callers guarantee both. *)
let reduce n r =
  (* rep.(i) = smallest clock zero-equivalent to i.  Transitivity lets
     us compare i against earlier representatives only. *)
  let rep = Array.init n (fun i -> i) in
  for i = 1 to n - 1 do
    (try
       for j = 0 to i - 1 do
         if
           rep.(j) = j
           && Dbm_bound.compare (Dbm_bound.add (r j i) (r i j)) le_zero = 0
         then begin
           rep.(i) <- j;
           raise Exit
         end
       done
     with Exit -> ())
  done;
  let idx = ref [] and bnd = ref [] in
  let keep i j b =
    idx := ((i * n) + j) :: !idx;
    bnd := b :: !bnd
  in
  (* Class cycles, classes in representative order, members ascending. *)
  for c = 0 to n - 1 do
    if rep.(c) = c then begin
      let members = ref [] in
      for i = n - 1 downto c do
        if rep.(i) = c then members := i :: !members
      done;
      match !members with
      | [] | [ _ ] -> ()
      | first :: _ as ms ->
          let rec cyc = function
            | [ last ] -> keep last first (r last first)
            | a :: (b :: _ as tl) ->
                keep a b (r a b);
                cyc tl
            | [] -> ()
          in
          cyc ms
    end
  done;
  (* Representative-to-representative edges, minus redundant ones. *)
  for i = 0 to n - 1 do
    if rep.(i) = i then
      for j = 0 to n - 1 do
        if j <> i && rep.(j) = j then begin
          match r i j with
          | Dbm_bound.Inf -> ()
          | b ->
              let redundant = ref false in
              let k = ref 0 in
              while (not !redundant) && !k < n do
                if !k <> i && !k <> j && rep.(!k) = !k then begin
                  let via = Dbm_bound.add (r i !k) (r !k j) in
                  if Dbm_bound.compare via b <= 0 then redundant := true
                end;
                incr k
              done;
              if not !redundant then keep i j b
        end
      done
  done;
  {
    mn = n;
    midx = Array.of_list (List.rev !idx);
    mbnd = Array.of_list (List.rev !bnd);
  }

(* Rebuild the full canonical matrix: kept constraints over an
   unconstrained diagonal-zero skeleton, then a full Floyd–Warshall
   re-closure.  Test/diagnostic path — clarity over speed. *)
let to_matrix t =
  let n = t.mn in
  let m = Array.make (n * n) Dbm_bound.Inf in
  for i = 0 to n - 1 do
    m.((i * n) + i) <- le_zero
  done;
  Array.iteri (fun e ij -> m.(ij) <- t.mbnd.(e)) t.midx;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = Dbm_bound.add m.((i * n) + k) m.((k * n) + j) in
        if Dbm_bound.compare via m.((i * n) + j) < 0 then
          m.((i * n) + j) <- via
      done
    done
  done;
  m

(* Does the zone this reduction came from include the (canonical,
   nonempty) zone read by [r]?  Dense inclusion checks all n² entries;
   here it suffices to check the kept constraints: any reconstructed
   entry is a path sum of kept bounds, and a canonical [r] satisfies
   the triangle inequality along that path. *)
let subsumes t r =
  let ne = Array.length t.midx in
  let ok = ref true in
  let e = ref 0 in
  while !ok && !e < ne do
    let ij = t.midx.(!e) in
    if Dbm_bound.compare (r (ij / t.mn) (ij mod t.mn)) t.mbnd.(!e) > 0 then
      ok := false;
    incr e
  done;
  !ok

let equal a b =
  a.mn = b.mn
  && Array.length a.midx = Array.length b.midx
  && a.midx = b.midx
  &&
  let ne = Array.length a.mbnd in
  let eq = ref true in
  let e = ref 0 in
  while !eq && !e < ne do
    if Dbm_bound.compare a.mbnd.(!e) b.mbnd.(!e) <> 0 then eq := false;
    incr e
  done;
  !eq
