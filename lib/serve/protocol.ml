module Json = Tm_obs.Json

let default_max_frame = 1 lsl 20
let max_encodable = 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* incremental reader *)

(* Pending bytes live in a queue of chunks with a read offset into the
   head chunk, so feeding is O(chunk) and a hostile peer that announces
   a huge frame costs O(1) memory: skip mode drops chunks as they
   arrive instead of buffering them. *)
type reader = {
  max_frame : int;
  mutable chunks : string list;  (** newest first; reversed on drain *)
  mutable avail : int;  (** total unconsumed bytes across [chunks] *)
  mutable skip : int;  (** bytes of an oversized payload still to drop *)
}

let reader ?(max_frame = default_max_frame) () =
  if max_frame < 1 then invalid_arg "Protocol.reader: max_frame < 1";
  { max_frame; chunks = []; avail = 0; skip = 0 }

(* Drop [n] buffered bytes (n <= avail). *)
let drop r n =
  let rec go n ordered =
    if n = 0 then ordered
    else
      match ordered with
      | [] -> assert false
      | c :: rest ->
          let l = String.length c in
          if n >= l then go (n - l) rest
          else String.sub c n (l - n) :: rest
  in
  r.chunks <- List.rev (go n (List.rev r.chunks));
  r.avail <- r.avail - n

(* Copy [n] buffered bytes without consuming (n <= avail). *)
let peek r n =
  let b = Buffer.create n in
  let rec go n = function
    | [] -> ()
    | c :: rest ->
        if n > 0 then begin
          let l = min n (String.length c) in
          Buffer.add_substring b c 0 l;
          go (n - l) rest
        end
  in
  go n (List.rev r.chunks);
  Buffer.contents b

let feed r b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Protocol.feed";
  if len > 0 then begin
    (* Skip mode eats directly out of the incoming chunk. *)
    let eaten = min r.skip len in
    r.skip <- r.skip - eaten;
    let len = len - eaten and off = off + eaten in
    if len > 0 then begin
      r.chunks <- Bytes.sub_string b off len :: r.chunks;
      r.avail <- r.avail + len
    end
  end

let feed_string r s = feed r (Bytes.unsafe_of_string s) 0 (String.length s)

type read_result = Frame of string | Oversized of int | Await

let u32_of s =
  ((Char.code s.[0] lsl 24) lor (Char.code s.[1] lsl 16)
  lor (Char.code s.[2] lsl 8) lor Char.code s.[3])
  land 0xFFFFFFFF

let next r =
  if r.avail < 4 then Await
  else
    let len = u32_of (peek r 4) in
    if len > r.max_frame then begin
      drop r 4;
      (* Whatever of the payload is already buffered goes now; the
         rest is dropped as it arrives. *)
      let buffered = min len r.avail in
      drop r buffered;
      r.skip <- len - buffered;
      Oversized len
    end
    else if r.avail >= 4 + len then begin
      drop r 4;
      let payload = peek r len in
      drop r len;
      Frame payload
    end
    else Await

let at_frame_boundary r = r.avail = 0 && r.skip = 0

(* ------------------------------------------------------------------ *)
(* encoding + blocking fd helpers *)

let encode_frame payload =
  let n = String.length payload in
  if n > max_encodable then invalid_arg "Protocol.encode_frame: too large";
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let write_all fd b off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    let n = Unix.write fd b !off !len in
    off := !off + n;
    len := !len - n
  done

let write_frame fd payload =
  let s = encode_frame payload in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

let read_frame_with r fd =
  let buf = Bytes.create 8192 in
  let rec go () =
    match next r with
    | Frame p -> Some p
    | Oversized n -> failwith (Printf.sprintf "oversized frame (%d bytes)" n)
    | Await -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 ->
            if at_frame_boundary r then None
            else failwith "truncated frame (peer closed mid-frame)"
        | n ->
            feed r buf 0 n;
            go ())
  in
  go ()

let read_frame ?max_frame fd = read_frame_with (reader ?max_frame ()) fd

exception Timeout

let read_frame_deadline r fd ~deadline =
  let buf = Bytes.create 8192 in
  let rec go () =
    match next r with
    | Frame p -> Some p
    | Oversized n -> failwith (Printf.sprintf "oversized frame (%d bytes)" n)
    | Await ->
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0. then raise Timeout;
        let ready =
          (* EINTR just means "check the clock again". *)
          match Unix.select [ fd ] [] [] left with
          | rs, _, _ -> rs <> []
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
        in
        if not ready then go ()
        else (
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 ->
              if at_frame_boundary r then None
              else failwith "truncated frame (peer closed mid-frame)"
          | n ->
              feed r buf 0 n;
              go ())
  in
  go ()

(* ------------------------------------------------------------------ *)
(* envelopes *)

let response ?id ?cached ?verdict ?reason ?retry_after_s ?error ~status () =
  let opt k v = Option.map (fun v -> (k, v)) v in
  Json.Obj
    (List.filter_map Fun.id
       [
         opt "id" id;
         Some ("status", Json.String status);
         opt "cached" (Option.map (fun b -> Json.Bool b) cached);
         opt "verdict" verdict;
         opt "reason" (Option.map (fun s -> Json.String s) reason);
         opt "retry_after_s"
           (Option.map (fun f -> Json.Float f) retry_after_s);
         opt "error" (Option.map (fun s -> Json.String s) error);
       ])

let status_of_response j = Option.bind (Json.member "status" j) Json.string_opt
