(** Content-addressed verdict cache.

    Verdicts are memoized under the job's {e fingerprint} — the exact
    string [Tm_zones.Reach] embeds in its checkpoints (kernel, widening
    mode, boundmap, condition), extended by the catalog for margin and
    simulation jobs — so a duplicate request is answered in O(1)
    without touching the pool, and the answer is byte-identical to a
    fresh computation by construction: the cache stores the rendered
    verdict JSON itself.

    With a [dir], entries also persist as {!Tm_recover.Snapshot} files
    named by {!digest}: atomically written, CRC-checksummed, carrying
    the full fingerprint.  A daemon killed with [kill -9] and restarted
    therefore recovers every verdict it ever computed; a torn or
    corrupt entry reads as a miss (and is deleted), never as a wrong
    answer, and a digest collision is detected by comparing the stored
    fingerprint and also reads as a miss. *)

type t

val create : ?dir:string -> unit -> t
(** In-memory cache; with [dir] (created if missing) entries are also
    written through to disk and faulted back in on miss. *)

val digest : string -> string
(** Stable, filesystem-safe name for a fingerprint.  Not
    collision-free — {!find} re-checks the full fingerprint — just
    collision-unlikely. *)

val find : t -> fingerprint:string -> string option
(** The cached verdict document, if any.  Counts [serve.cache_hit] /
    [serve.cache_miss]. *)

val store : t -> fingerprint:string -> string -> unit
(** Memoize (and persist, when backed by a directory).  Counts
    [serve.cache_store].  I/O failures degrade to memory-only — the
    daemon never dies because the cache disk filled up. *)

val size : t -> int
(** Entries currently held in memory. *)
