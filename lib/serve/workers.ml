module Json = Tm_obs.Json
module Metrics = Tm_obs.Metrics
module Events = Tm_obs.Events
module Prng = Tm_base.Prng
module Supervisor = Tm_recover.Supervisor
module Snapshot = Tm_recover.Snapshot
module Reach = Tm_zones.Reach

let c_spawned = Metrics.counter "serve.worker_spawned"
let c_restarted = Metrics.counter "serve.worker_restarted"
let c_crashed = Metrics.counter "serve.worker_crashed"
let c_hb_timeout = Metrics.counter "serve.worker_hb_timeout"
let c_quarantined = Metrics.counter "serve.worker_quarantined"
let c_jobs = Metrics.counter "serve.worker_jobs"
let c_retried = Metrics.counter "serve.worker_retried"
let g_live = Metrics.gauge "serve.workers_live"

(* ------------------------------------------------------------------ *)
(* execution caps, shipped to workers through the environment *)

type caps = {
  state_dir : string option;
  max_limit : int option;
  max_deadline_s : float option;
  domains : int;
  attempts : int;
  backoff_s : float;
  default_engine : string;
}

let caps_to_json c =
  Json.Obj
    [
      ("state_dir",
       match c.state_dir with Some d -> Json.String d | None -> Json.Null);
      ("max_limit",
       match c.max_limit with Some n -> Json.Int n | None -> Json.Null);
      ("max_deadline_s",
       match c.max_deadline_s with Some f -> Json.Float f | None -> Json.Null);
      ("domains", Json.Int c.domains);
      ("attempts", Json.Int c.attempts);
      ("backoff_s", Json.Float c.backoff_s);
      ("default_engine", Json.String c.default_engine);
    ]

let caps_of_json j =
  let m k = Json.member k j in
  let num_opt v =
    match v with
    | Some (Json.Int n) -> Some (float_of_int n)
    | Some (Json.Float f) -> Some f
    | _ -> None
  in
  {
    state_dir = Option.bind (m "state_dir") Json.string_opt;
    max_limit = Option.bind (m "max_limit") Json.int_opt;
    max_deadline_s = num_opt (m "max_deadline_s");
    domains =
      Option.value ~default:1 (Option.bind (m "domains") Json.int_opt);
    attempts =
      Option.value ~default:3 (Option.bind (m "attempts") Json.int_opt);
    backoff_s = Option.value ~default:0.05 (num_opt (m "backoff_s"));
    default_engine =
      Option.value ~default:"auto"
        (Option.bind (m "default_engine") Json.string_opt);
  }

(* ------------------------------------------------------------------ *)
(* the job runner (shared by workers and the in-process server path) *)

type exec_result = E_ok of Json.t | E_unknown of string | E_error of string

let clamp_limit cap req =
  match (cap, req) with
  | None, r -> r
  | Some c, None -> Some c
  | Some c, Some r -> Some (min c (max 1 r))

let clamp_deadline cap req =
  match (cap, req) with
  | None, r -> r
  | Some c, None -> Some c
  | Some c, Some r -> Some (Float.min c (Float.max 0.01 r))

let zones_of_info info =
  try Scanf.sscanf info "zones=%d" (fun z -> z) with _ -> 0

let checkpoint_path caps fingerprint =
  Option.map
    (fun d -> Filename.concat d (Cache.digest fingerprint ^ ".ckpt"))
    caps.state_dir

(* Adopt a checkpoint a killed process left behind — but only one that
   provably belongs to this job (fingerprint match) and is readable
   (CRC); anything else is deleted, not trusted. *)
let stale_checkpoint caps fingerprint =
  match checkpoint_path caps fingerprint with
  | Some p when Sys.file_exists p -> (
      match Snapshot.inspect p with
      | fp, _info when String.equal fp fingerprint -> Some p
      | _ ->
          (try Sys.remove p with Sys_error _ -> ());
          None
      | exception Snapshot.Bad_snapshot _ ->
          (try Sys.remove p with Sys_error _ -> ());
          None)
  | _ -> None

let execute_job caps (job : Catalog.job) =
  let limit0 = clamp_limit caps.max_limit job.Catalog.req_limit in
  let deadline_s =
    clamp_deadline caps.max_deadline_s job.Catalog.req_deadline_s
  in
  let ckpt = checkpoint_path caps job.Catalog.fingerprint in
  let checkpoint = Option.map (fun p -> (p, 512)) ckpt in
  let next_resume = ref (stale_checkpoint caps job.Catalog.fingerprint) in
  let last_reason = ref "budget exhausted" in
  let attempt ~attempt:_ =
    if Supervisor.interrupt_requested () then
      Supervisor.Done (E_unknown "interrupted: daemon shutting down")
    else
      let resume = !next_resume in
      let limit =
        (* re-base the zone budget on restored progress so every
           chained attempt gets [limit0] fresh zones *)
        match (limit0, resume) with
        | Some b, Some path -> (
            match Snapshot.inspect path with
            | _, info -> Some (zones_of_info info + b)
            | exception _ -> Some b)
        | Some b, None -> Some b
        | None, _ -> None
      in
      match
        job.Catalog.exec ~limit ~deadline_s ~domains:caps.domains ~checkpoint
          ~resume
      with
      | Ok v -> Supervisor.Done (E_ok v)
      | Error (e : Reach.exhausted) ->
          last_reason := e.Reach.reason;
          (match e.Reach.checkpoint with
          | Some _ as ck -> next_resume := ck
          | None -> ());
          if Supervisor.interrupt_requested () then
            Supervisor.Done (E_unknown e.Reach.reason)
          else if e.Reach.checkpoint <> None && job.Catalog.checkpointable
          then Supervisor.Transient e.Reach.reason
          else Supervisor.Done (E_unknown e.Reach.reason)
      | exception Supervisor.Interrupted ->
          Supervisor.Done (E_unknown "interrupted: daemon shutting down")
      | exception ex ->
          (* contain the job: a crashing job is this job's problem *)
          Supervisor.Transient (Printexc.to_string ex)
  in
  (* decorrelated jitter, deterministically seeded per fingerprint: a
     fleet of retries spreads out, a repeated run replays exactly *)
  let jitter =
    Prng.create (Snapshot.crc32 (Bytes.of_string job.Catalog.fingerprint))
  in
  match
    Supervisor.with_retries ~attempts:caps.attempts ~backoff_s:caps.backoff_s
      ~jitter ~max_backoff_s:2.0 attempt
  with
  | Ok r -> r
  | Error reason ->
      if !last_reason = reason then E_unknown reason else E_error reason

let execute caps request =
  match Catalog.of_request ~default_engine:caps.default_engine request with
  | Error m -> E_error m
  | Ok job -> execute_job caps job
  | exception ex -> E_error (Printexc.to_string ex)

(* ------------------------------------------------------------------ *)
(* worker wire protocol (frames on the socketpair) *)

let result_to_json = function
  | E_ok v ->
      Json.Obj
        [ ("op", Json.String "result"); ("status", Json.String "ok");
          ("doc", v) ]
  | E_unknown m ->
      Json.Obj
        [ ("op", Json.String "result"); ("status", Json.String "unknown");
          ("msg", Json.String m) ]
  | E_error m ->
      Json.Obj
        [ ("op", Json.String "result"); ("status", Json.String "error");
          ("msg", Json.String m) ]

let result_of_json j =
  match Option.bind (Json.member "status" j) Json.string_opt with
  | Some "ok" -> (
      match Json.member "doc" j with
      | Some v -> Some (E_ok v)
      | None -> None)
  | Some "unknown" ->
      Some
        (E_unknown
           (Option.value ~default:"unknown"
              (Option.bind (Json.member "msg" j) Json.string_opt)))
  | Some "error" ->
      Some
        (E_error
           (Option.value ~default:"error"
              (Option.bind (Json.member "msg" j) Json.string_opt)))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* worker side: re-exec'd child serving jobs over fd 0 *)

let env_flag = "TM_SERVE_WORKER"
let env_caps = "TM_SERVE_WORKER_CAPS"
let env_hb = "TM_SERVE_WORKER_HB"
let env_poison = "TM_WORKER_POISON"

let default_hb_interval_s = 0.25
let default_hb_timeout_s = 5.0

(* All frame writes to the parent go through one mutex: the heartbeat
   domain and the job loop must never interleave bytes mid-frame. *)
let worker_write_frame =
  let m = Mutex.create () in
  fun fd payload ->
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () -> Protocol.write_frame fd payload)

let worker_send fd doc =
  try worker_write_frame fd (Json.to_string doc)
  with Unix.Unix_error _ | Sys_error _ ->
    (* the parent is gone: an orphan worker terminates itself instead
       of computing for nobody *)
    Unix._exit 0

let rec read_retry fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf

let worker_main () =
  let fd = Unix.stdin in
  let caps =
    match Sys.getenv_opt env_caps with
    | None -> exit 12
    | Some s -> (
        match Json.of_string s with
        | Ok j -> caps_of_json j
        | Error _ -> exit 12)
  in
  let hb_interval =
    match Sys.getenv_opt env_hb with
    | Some s -> ( try float_of_string s with _ -> default_hb_interval_s)
    | None -> default_hb_interval_s
  in
  let poison =
    match Sys.getenv_opt env_poison with
    | Some "" | None -> None
    | Some m -> Some m
  in
  Supervisor.install_handlers ();
  (* A detached heartbeat: liveness stays visible even while a job
     monopolizes the main domain's OCaml code for seconds.  EPIPE on a
     heartbeat means the parent died — the orphan exits. *)
  let (_ : unit Domain.t) =
    Domain.spawn (fun () ->
        let hb = Json.to_string (Json.Obj [ ("op", Json.String "hb") ]) in
        let rec beat () =
          Unix.sleepf hb_interval;
          (match worker_write_frame fd hb with
          | () -> ()
          | exception (Unix.Unix_error _ | Sys_error _) -> Unix._exit 0);
          beat ()
        in
        beat ())
  in
  worker_send fd
    (Json.Obj
       [ ("op", Json.String "ready"); ("pid", Json.Int (Unix.getpid ())) ]);
  let rd = Protocol.reader () in
  let buf = Bytes.create 65536 in
  let rec pump () =
    match Protocol.next rd with
    | Protocol.Frame payload ->
        (match poison with
        | Some marker
          when marker <> ""
               && (let ml = String.length marker in
                   let pl = String.length payload in
                   let rec scan i =
                     i + ml <= pl
                     && (String.sub payload i ml = marker || scan (i + 1))
                   in
                   scan 0) ->
            (* test hook: this payload is poison — die like a real
               kernel bug would, abruptly *)
            Unix.kill (Unix.getpid ()) Sys.sigkill
        | _ -> ());
        (match Json.of_string payload with
        | Error _ -> exit 13
        | Ok j -> (
            match Option.bind (Json.member "op" j) Json.string_opt with
            | Some "quit" -> exit 0
            | Some "job" -> (
                match Json.member "request" j with
                | None -> exit 13
                | Some request ->
                    Supervisor.clear_interrupt ();
                    let result =
                      Supervisor.graceful (fun () -> execute caps request)
                    in
                    worker_send fd (result_to_json result))
            | _ -> exit 13));
        pump ()
    | Protocol.Oversized _ -> exit 13
    | Protocol.Await -> (
        match read_retry fd buf with
        | 0 -> exit 0 (* parent closed: clean retirement *)
        | n ->
            Protocol.feed rd buf 0 n;
            pump ())
  in
  pump ()

let maybe_worker_main () =
  match Sys.getenv_opt env_flag with
  | Some "1" -> ( try worker_main () with _ -> exit 14)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* parent side: the supervised pool *)

type 'a busy = {
  b_fingerprint : string;
  b_payload : 'a;
  b_started : float;
}

type 'a slot_state =
  | Starting
  | Idle
  | Busy of 'a busy
  | Dead of float  (** respawn not before *)

type 'a slot = {
  idx : int;
  mutable pid : int;
  mutable fd : Unix.file_descr;
  mutable rd : Protocol.reader;
  mutable state : 'a slot_state;
  mutable hb_deadline : float;
  backoff : Supervisor.Backoff.t;
}

type 'a event =
  | Completed of 'a * exec_result * float
  | Crash_retry of 'a
  | Crash_quarantined of 'a * string

type 'a t = {
  caps : caps;
  caps_env : string;
  hb_timeout_s : float;
  quarantine_after : int;
  slots : 'a slot array;
  crash_counts : (string, int) Hashtbl.t;  (** fingerprint -> crashes *)
  quarantine : (string, string) Hashtbl.t;  (** fingerprint -> reason *)
  chaos_every_s : float option;
  chaos_prng : Prng.t;
  mutable next_chaos : float;
  mutable unreaped : int list;
}

let live_count t =
  Array.fold_left
    (fun n s -> match s.state with Dead _ -> n | _ -> n + 1)
    0 t.slots

let set_live_gauge t = Metrics.set g_live (float_of_int (live_count t))

let filtered_env () =
  Array.to_list (Unix.environment ())
  |> List.filter (fun kv ->
         not
           (String.length kv >= String.length env_flag
           && String.sub kv 0 (String.length env_flag) = env_flag))

let spawn t slot =
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  Unix.set_close_on_exec parent_fd;
  let env =
    Array.of_list
      (filtered_env ()
      @ [
          env_flag ^ "=1";
          env_caps ^ "=" ^ t.caps_env;
          env_hb ^ "=" ^ string_of_float default_hb_interval_s;
        ])
  in
  (* The child talks frames on fd 0 (the socketpair is bidirectional);
     its stdout is pointed at our stderr so a stray [print_string]
     anywhere in the engine can never corrupt the framing. *)
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env child_fd Unix.stderr Unix.stderr
  in
  (try Unix.close child_fd with Unix.Unix_error _ -> ());
  slot.pid <- pid;
  slot.fd <- parent_fd;
  slot.rd <- Protocol.reader ();
  slot.state <- Starting;
  slot.hb_deadline <- Unix.gettimeofday () +. t.hb_timeout_s;
  Metrics.incr c_spawned;
  set_live_gauge t;
  Events.emit "serve.worker"
    [
      ("op", Json.String "spawn");
      ("slot", Json.Int slot.idx);
      ("pid", Json.Int pid);
    ]

let create ?chaos_kill_every_s ?(hb_timeout_s = default_hb_timeout_s)
    ?(quarantine_after = 3) caps ~n =
  if n < 1 then invalid_arg "Workers.create: n < 1";
  if quarantine_after < 1 then
    invalid_arg "Workers.create: quarantine_after < 1";
  let t =
    {
      caps;
      caps_env = Json.to_string (caps_to_json caps);
      hb_timeout_s;
      quarantine_after;
      slots =
        Array.init n (fun idx ->
            {
              idx;
              pid = 0;
              fd = Unix.stdin;
              rd = Protocol.reader ();
              state = Dead 0.;
              hb_deadline = infinity;
              backoff =
                Supervisor.Backoff.create
                  ~jitter:(Prng.create (0x5EED + idx))
                  ~max_s:5.0 ~base_s:0.05 ();
            });
      crash_counts = Hashtbl.create 16;
      quarantine = Hashtbl.create 4;
      chaos_every_s = chaos_kill_every_s;
      chaos_prng = Prng.create 0xC4A05;
      next_chaos =
        (match chaos_kill_every_s with
        | Some s -> Unix.gettimeofday () +. s
        | None -> infinity);
      unreaped = [];
    }
  in
  Array.iter (fun slot -> spawn t slot) t.slots;
  t

let fds t =
  Array.fold_left
    (fun acc s -> match s.state with Dead _ -> acc | _ -> s.fd :: acc)
    [] t.slots

let capacity = live_count

let has_idle t =
  Array.exists (fun s -> match s.state with Idle -> true | _ -> false) t.slots

let busy_count t =
  Array.fold_left
    (fun n s -> match s.state with Busy _ -> n + 1 | _ -> n)
    0 t.slots

let quarantined t ~fingerprint = Hashtbl.find_opt t.quarantine fingerprint

(* A dead worker: close our end, account the in-flight job (if any) as
   a crash, and park the slot on the backoff schedule.  The job is
   either handed back for a retry or — after [quarantine_after] crashes
   of the same fingerprint — quarantined for good, so one poison job
   cannot grind the pool down forever. *)
let mark_dead t slot ~reason =
  (try Unix.close slot.fd with Unix.Unix_error _ -> ());
  if slot.pid > 0 then begin
    (try Unix.kill slot.pid Sys.sigkill with Unix.Unix_error _ -> ());
    (match Unix.waitpid [ Unix.WNOHANG ] slot.pid with
    | 0, _ -> t.unreaped <- slot.pid :: t.unreaped
    | _ -> ()
    | exception Unix.Unix_error _ -> ())
  end;
  let events =
    match slot.state with
    | Busy b ->
        Metrics.incr c_crashed;
        let n =
          1
          + Option.value ~default:0
              (Hashtbl.find_opt t.crash_counts b.b_fingerprint)
        in
        Hashtbl.replace t.crash_counts b.b_fingerprint n;
        if n >= t.quarantine_after then begin
          let why =
            Printf.sprintf
              "quarantined: crashed %d worker(s) (last: %s) — refusing to \
               run again"
              n reason
          in
          Hashtbl.replace t.quarantine b.b_fingerprint why;
          Metrics.incr c_quarantined;
          Events.emit "serve.worker"
            [
              ("op", Json.String "quarantine");
              ("fingerprint", Json.String b.b_fingerprint);
              ("crashes", Json.Int n);
            ];
          [ Crash_quarantined (b.b_payload, why) ]
        end
        else begin
          Metrics.incr c_retried;
          [ Crash_retry b.b_payload ]
        end
    | Starting | Idle | Dead _ -> []
  in
  let delay = Supervisor.Backoff.next slot.backoff in
  slot.pid <- 0;
  slot.state <- Dead (Unix.gettimeofday () +. delay);
  slot.hb_deadline <- infinity;
  set_live_gauge t;
  Events.emit "serve.worker"
    [
      ("op", Json.String "dead");
      ("slot", Json.Int slot.idx);
      ("reason", Json.String reason);
      ("respawn_in_s", Json.Float delay);
    ];
  events

let submit t ~fingerprint ~request payload =
  let rec find i =
    if i >= Array.length t.slots then None
    else
      match t.slots.(i).state with
      | Idle -> Some t.slots.(i)
      | _ -> find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some slot -> (
      let doc =
        Json.Obj [ ("op", Json.String "job"); ("request", request) ]
      in
      match Protocol.write_frame slot.fd (Json.to_string doc) with
      | () ->
          Metrics.incr c_jobs;
          slot.state <-
            Busy
              {
                b_fingerprint = fingerprint;
                b_payload = payload;
                b_started = Unix.gettimeofday ();
              };
          true
      | exception (Unix.Unix_error _ | Sys_error _) ->
          (* died between select rounds; the caller retries elsewhere *)
          ignore (mark_dead t slot ~reason:"write failed");
          false)

let handle_frame t slot payload =
  slot.hb_deadline <- Unix.gettimeofday () +. t.hb_timeout_s;
  match Json.of_string payload with
  | Error _ -> mark_dead t slot ~reason:"garbage frame from worker"
  | Ok j -> (
      match Option.bind (Json.member "op" j) Json.string_opt with
      | Some "hb" -> []
      | Some "ready" ->
          (match slot.state with
          | Starting ->
              Supervisor.Backoff.reset slot.backoff;
              slot.state <- Idle
          | _ -> ());
          []
      | Some "result" -> (
          match (slot.state, result_of_json j) with
          | Busy b, Some r ->
              slot.state <- Idle;
              Supervisor.Backoff.reset slot.backoff;
              Hashtbl.remove t.crash_counts b.b_fingerprint;
              [ Completed
                  (b.b_payload, r, Unix.gettimeofday () -. b.b_started) ]
          | _ -> mark_dead t slot ~reason:"unsolicited result")
      | _ -> mark_dead t slot ~reason:"unknown frame op from worker")

let on_readable t fd =
  match
    Array.find_opt
      (fun s ->
        match s.state with Dead _ -> false | _ -> s.fd = fd)
      t.slots
  with
  | None -> []
  | Some slot -> (
      let buf = Bytes.create 65536 in
      match Unix.read slot.fd buf 0 (Bytes.length buf) with
      | 0 -> mark_dead t slot ~reason:"eof"
      | n ->
          Protocol.feed slot.rd buf 0 n;
          let rec drain acc =
            match slot.state with
            | Dead _ -> acc
            | _ -> (
                match Protocol.next slot.rd with
                | Protocol.Frame p -> drain (acc @ handle_frame t slot p)
                | Protocol.Oversized _ ->
                    acc @ mark_dead t slot ~reason:"oversized worker frame"
                | Protocol.Await -> acc)
          in
          drain []
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      | exception Unix.Unix_error _ ->
          mark_dead t slot ~reason:"read failed")

let reap t =
  t.unreaped <-
    List.filter
      (fun pid ->
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> true
        | _ -> false
        | exception Unix.Unix_error _ -> false)
      t.unreaped

let tick t =
  let now = Unix.gettimeofday () in
  reap t;
  let events = ref [] in
  Array.iter
    (fun slot ->
      match slot.state with
      | Dead not_before ->
          if now >= not_before then begin
            Metrics.incr c_restarted;
            spawn t slot
          end
      | Starting | Idle | Busy _ ->
          (* a worker that stopped heartbeating is as good as dead:
             SIGKILL it and let the crash path take over *)
          (match Unix.waitpid [ Unix.WNOHANG ] slot.pid with
          | 0, _ ->
              if now > slot.hb_deadline then begin
                Metrics.incr c_hb_timeout;
                events :=
                  !events @ mark_dead t slot ~reason:"heartbeat timeout"
              end
          | _ -> events := !events @ mark_dead t slot ~reason:"exited"
          | exception Unix.Unix_error _ ->
              events := !events @ mark_dead t slot ~reason:"exited"))
    t.slots;
  (* chaos: murder a random worker on a timer, preferring one that is
     mid-job — the whole point is proving no job is ever lost *)
  (match t.chaos_every_s with
  | Some every when now >= t.next_chaos ->
      t.next_chaos <- now +. every;
      let victims =
        let busy =
          Array.to_list t.slots
          |> List.filter (fun s ->
                 match s.state with Busy _ -> true | _ -> false)
        in
        if busy <> [] then busy
        else
          Array.to_list t.slots
          |> List.filter (fun s ->
                 match s.state with Dead _ -> false | _ -> true)
      in
      (match victims with
      | [] -> ()
      | vs ->
          let v = Prng.pick t.chaos_prng vs in
          Events.emit "serve.worker"
            [
              ("op", Json.String "chaos_kill");
              ("slot", Json.Int v.idx);
              ("pid", Json.Int v.pid);
            ];
          try Unix.kill v.pid Sys.sigkill with Unix.Unix_error _ -> ())
  | _ -> ());
  !events

let interrupt_busy t =
  Array.iter
    (fun slot ->
      match slot.state with
      | Busy _ -> (
          try Unix.kill slot.pid Sys.sigterm with Unix.Unix_error _ -> ())
      | _ -> ())
    t.slots

let drain_busy t =
  Array.fold_left
    (fun acc s ->
      match s.state with
      | Busy b ->
          s.state <- Idle;
          b.b_payload :: acc
      | _ -> acc)
    [] t.slots
  |> List.rev

let shutdown t =
  let quit = Json.to_string (Json.Obj [ ("op", Json.String "quit") ]) in
  Array.iter
    (fun slot ->
      match slot.state with
      | Dead _ -> ()
      | _ -> (
          (try Protocol.write_frame slot.fd quit
           with Unix.Unix_error _ | Sys_error _ -> ());
          try Unix.close slot.fd with Unix.Unix_error _ -> ()))
    t.slots;
  (* a short grace for voluntary exits, then the hammer *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  let pids =
    List.filter
      (fun p -> p > 0)
      (t.unreaped
      @ Array.to_list
          (Array.map
             (fun s -> match s.state with Dead _ -> 0 | _ -> s.pid)
             t.slots))
  in
  let rec wait_all pending =
    if pending <> [] then begin
      let pending =
        List.filter
          (fun pid ->
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ -> true
            | _ -> false
            | exception Unix.Unix_error _ -> false)
          pending
      in
      if pending <> [] then
        if Unix.gettimeofday () >= deadline then begin
          List.iter
            (fun pid ->
              try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
            pending;
          List.iter
            (fun pid ->
              try ignore (Unix.waitpid [] pid)
              with Unix.Unix_error _ -> ())
            pending
        end
        else begin
          Unix.sleepf 0.02;
          wait_all pending
        end
    end
  in
  wait_all pids;
  t.unreaped <- [];
  Array.iter
    (fun s ->
      s.pid <- 0;
      s.state <- Dead infinity)
    t.slots;
  set_live_gauge t
