module Json = Tm_obs.Json
module Metrics = Tm_obs.Metrics
module Events = Tm_obs.Events
module Prng = Tm_base.Prng
module Supervisor = Tm_recover.Supervisor
module Snapshot = Tm_recover.Snapshot
module Reach = Tm_zones.Reach

let c_conns = Metrics.counter "serve.conns"
let c_frames = Metrics.counter "serve.frames"
let c_bad_frame = Metrics.counter "serve.bad_frame"
let c_oversized = Metrics.counter "serve.oversized"
let c_truncated = Metrics.counter "serve.truncated"
let c_rejected = Metrics.counter "serve.rejected"
let c_jobs = Metrics.counter "serve.jobs"
let c_job_ok = Metrics.counter "serve.job_ok"
let c_job_unknown = Metrics.counter "serve.job_unknown"
let c_job_error = Metrics.counter "serve.job_error"
let c_epipe = Metrics.counter "serve.epipe"
let c_drained = Metrics.counter "serve.drained"

type config = {
  socket_path : string;
  state_dir : string option;
  max_queue : int;
  max_frame : int;
  max_limit : int option;
  max_deadline_s : float option;
  domains : int;
  attempts : int;
  backoff_s : float;
  default_engine : string;
  workers : int;
  quarantine_after : int;
  hb_timeout_s : float;
  chaos_kill_every_s : float option;
}

let default_config ~socket_path =
  {
    socket_path;
    state_dir = None;
    max_queue = 16;
    max_frame = Protocol.default_max_frame;
    max_limit = Some 200_000;
    max_deadline_s = Some 30.;
    domains = 1;
    attempts = 3;
    backoff_s = 0.05;
    default_engine = "auto";
    workers = 0;
    quarantine_after = 3;
    hb_timeout_s = 5.;
    chaos_kill_every_s = None;
  }

let caps_of_config cfg =
  {
    Workers.state_dir = cfg.state_dir;
    max_limit = cfg.max_limit;
    max_deadline_s = cfg.max_deadline_s;
    domains = cfg.domains;
    attempts = cfg.attempts;
    backoff_s = cfg.backoff_s;
    default_engine = cfg.default_engine;
  }

exception Already_running of string

(* ------------------------------------------------------------------ *)
(* connections *)

type conn = {
  fd : Unix.file_descr;
  rd : Protocol.reader;
  mutable alive : bool;
}

type respondent = { r_conn : conn; r_id : Json.t option }

(* A job that has been handed to (or is waiting for) a worker process:
   the admission record plus what the completion paths need to account
   it — label/op for the event, submission time for the EWMA. *)
type pending = {
  p_ajob : respondent Admission.job;
  p_label : string;
  p_op : string;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  cache : Cache.t;
  adm : respondent Admission.t;
  workers : pending Workers.t option;  (** [None] = in-process execution *)
  retryq : pending Queue.t;  (** crashed-worker jobs awaiting resubmission *)
  mutable running : bool;
}

let drop_conn t c =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c' -> c' != c) t.conns
  end

(* A vanished peer is routine, not fatal: detach and count it.  SIGPIPE
   is already ignored ([Supervisor.install_handlers]), so a write to a
   dead socket surfaces as EPIPE here instead of killing the daemon. *)
let respond t (r : respondent) doc =
  if r.r_conn.alive then begin
    let doc =
      match (r.r_id, doc) with
      | Some id, Json.Obj kvs -> Json.Obj (("id", id) :: kvs)
      | _ -> doc
    in
    try Protocol.write_frame r.r_conn.fd (Json.to_string doc)
    with Unix.Unix_error _ | Sys_error _ ->
      Metrics.incr c_epipe;
      Events.emit "serve.conn" [ ("op", Json.String "epipe") ];
      drop_conn t r.r_conn
  end

(* ------------------------------------------------------------------ *)
(* job accounting: execution itself lives in {!Workers.execute_job}
   (shared verbatim by worker processes and the in-process path) *)

(* Commit a finished job: cache the verdict, bump the counters, emit
   the event.  In worker mode this runs in the PARENT only — workers
   compute, the daemon commits, so a worker dying mid-job can never
   half-commit. *)
let account_result t ~fingerprint ~label ~op result =
  (match result with
  | Workers.E_ok v ->
      Metrics.incr c_job_ok;
      Cache.store t.cache ~fingerprint (Json.to_string v)
  | Workers.E_unknown _ -> Metrics.incr c_job_unknown
  | Workers.E_error _ -> Metrics.incr c_job_error);
  Events.emit "serve.job"
    [
      ("label", Json.String label);
      ("op", Json.String op);
      ("status",
       Json.String
         (match result with
         | Workers.E_ok _ -> "ok"
         | Workers.E_unknown _ -> "unknown"
         | Workers.E_error _ -> "error"));
    ]

let run_job t (job : Catalog.job) =
  Metrics.incr c_jobs;
  let result = Workers.execute_job (caps_of_config t.cfg) job in
  account_result t ~fingerprint:job.Catalog.fingerprint
    ~label:job.Catalog.label ~op:job.Catalog.op result;
  result

let response_of_result t ?cached result =
  match result with
  | Workers.E_ok v -> Protocol.response ?cached ~verdict:v ~status:"ok" ()
  | Workers.E_unknown reason ->
      Protocol.response ~reason
        ~retry_after_s:(Admission.retry_hint_s t.adm)
        ~status:"unknown" ()
  | Workers.E_error e -> Protocol.response ~error:e ~status:"error" ()

(* ------------------------------------------------------------------ *)
(* dispatch *)

let stats_doc t =
  let snap = Metrics.snapshot () in
  let c name = (name, Json.Int (Metrics.counter_total snap ("serve." ^ name))) in
  Json.Obj
    [
      ("queue_depth", Json.Int (Admission.depth t.adm));
      ("cache_entries", Json.Int (Cache.size t.cache));
      c "conns"; c "frames"; c "admitted"; c "coalesced"; c "shed";
      c "cache_hit"; c "cache_miss"; c "cache_store";
      c "jobs"; c "job_ok"; c "job_unknown"; c "job_error";
      c "bad_frame"; c "oversized"; c "truncated"; c "rejected";
      c "epipe"; c "drained";
      c "worker_spawned"; c "worker_restarted"; c "worker_crashed";
      c "worker_hb_timeout"; c "worker_quarantined"; c "worker_jobs";
      c "worker_retried";
      ("workers_live",
       Json.Int (match t.workers with Some p -> Workers.capacity p | None -> 0));
    ]

let handle_request t conn req =
  let r_id = Json.member "id" req in
  let r = { r_conn = conn; r_id } in
  let op =
    match Option.bind (Json.member "op" req) Json.string_opt with
    | Some s -> s
    | None -> "verify"
  in
  match op with
  | "ping" -> respond t r (Protocol.response ~reason:"pong" ~status:"ok" ())
  | "stats" ->
      respond t r (Protocol.response ~verdict:(stats_doc t) ~status:"ok" ())
  | "shutdown" ->
      respond t r (Protocol.response ~reason:"draining" ~status:"ok" ());
      t.running <- false
  | _ -> (
      match Catalog.of_request ~default_engine:t.cfg.default_engine req with
      | Error m ->
          Metrics.incr c_rejected;
          respond t r (Protocol.response ~error:m ~status:"error" ())
      | Ok job -> (
          match Cache.find t.cache ~fingerprint:job.Catalog.fingerprint with
          | Some text ->
              let doc =
                match Json.of_string text with
                | Ok v ->
                    Protocol.response ~cached:true ~verdict:v ~status:"ok" ()
                | Error m ->
                    Protocol.response ~error:("corrupt cache entry: " ^ m)
                      ~status:"error" ()
              in
              respond t r doc
          | None
            when (match t.workers with
                 | Some pool ->
                     Workers.quarantined pool
                       ~fingerprint:job.Catalog.fingerprint
                     <> None
                 | None -> false) ->
              (* this job killed too many workers: a permanent,
                 structured refusal instead of another crash *)
              let why =
                match
                  Option.bind t.workers (fun pool ->
                      Workers.quarantined pool
                        ~fingerprint:job.Catalog.fingerprint)
                with
                | Some why -> why
                | None -> assert false
              in
              Metrics.incr c_rejected;
              respond t r (Protocol.response ~error:why ~status:"error" ())
          | None -> (
              match
                Admission.try_admit t.adm
                  ~fingerprint:job.Catalog.fingerprint ~request:req r
              with
              | Admission.Shed hint ->
                  Events.emit "serve.shed"
                    [ ("label", Json.String job.Catalog.label) ];
                  respond t r
                    (Protocol.response ~reason:"queue full"
                       ~retry_after_s:hint ~status:"unknown" ())
              | Admission.Admitted _ | Admission.Coalesced _ ->
                  (* answered when the job runs *)
                  ())))

let handle_frame t conn payload =
  Metrics.incr c_frames;
  match Json.of_string payload with
  | Error m ->
      Metrics.incr c_bad_frame;
      respond t
        { r_conn = conn; r_id = None }
        (Protocol.response ~error:("bad json: " ^ m) ~status:"error" ())
  | Ok req -> handle_request t conn req

(* ------------------------------------------------------------------ *)
(* the select loop *)

let read_buf = Bytes.create 65536

let pump_conn t conn =
  let closed =
    match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> true
    | n ->
        Protocol.feed conn.rd read_buf 0 n;
        false
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  let rec drain () =
    if conn.alive then
      match Protocol.next conn.rd with
      | Protocol.Frame payload ->
          handle_frame t conn payload;
          drain ()
      | Protocol.Oversized n ->
          Metrics.incr c_oversized;
          respond t
            { r_conn = conn; r_id = None }
            (Protocol.response
               ~error:
                 (Printf.sprintf "oversized frame: %d bytes > max %d" n
                    t.cfg.max_frame)
               ~status:"error" ());
          drain ()
      | Protocol.Await -> ()
  in
  drain ();
  if closed then begin
    if not (Protocol.at_frame_boundary conn.rd) then begin
      Metrics.incr c_truncated;
      Events.emit "serve.conn" [ ("op", Json.String "truncated") ]
    end;
    drop_conn t conn
  end

let answer_result t (ajob : respondent Admission.job) result ~wall_s =
  Admission.finished t.adm ajob ~note_wall_s:wall_s;
  let cached = match result with Workers.E_ok _ -> Some false | _ -> None in
  List.iter
    (fun r -> respond t r (response_of_result t ?cached result))
    (List.rev ajob.Admission.respondents)

let run_next_job t =
  match Admission.pop t.adm with
  | None -> ()
  | Some ajob ->
      let t0 = Unix.gettimeofday () in
      let result =
        (* the request parsed once already; a failure here is a bug,
           but even then the client gets a structured error *)
        match
          Catalog.of_request ~default_engine:t.cfg.default_engine
            ajob.Admission.request
        with
        | Error m -> Workers.E_error m
        | Ok job -> run_job t job
        | exception ex -> Workers.E_error (Printexc.to_string ex)
      in
      answer_result t ajob result ~wall_s:(Unix.gettimeofday () -. t0)

let drain_queue t ~reason =
  List.iter
    (fun (ajob : respondent Admission.job) ->
      Metrics.incr c_drained;
      List.iter
        (fun r ->
          respond t r
            (Protocol.response ~reason
               ~retry_after_s:(Admission.retry_hint_s t.adm)
               ~status:"unknown" ()))
        (List.rev ajob.Admission.respondents))
    (Admission.drain t.adm)

(* ------------------------------------------------------------------ *)
(* worker-mode plumbing *)

let handle_worker_event t = function
  | Workers.Completed (p, result, wall_s) ->
      account_result t ~fingerprint:p.p_ajob.Admission.fingerprint
        ~label:p.p_label ~op:p.p_op result;
      answer_result t p.p_ajob result ~wall_s
  | Workers.Crash_retry p ->
      (* the worker died holding this job; it goes to the front of the
         line so a coalesced crowd is not starved by fresh admissions *)
      Events.emit "serve.job"
        [
          ("label", Json.String p.p_label);
          ("op", Json.String p.p_op);
          ("status", Json.String "worker_crash_retry");
        ];
      Queue.push p t.retryq
  | Workers.Crash_quarantined (p, why) ->
      Metrics.incr c_job_error;
      Events.emit "serve.job"
        [
          ("label", Json.String p.p_label);
          ("op", Json.String p.p_op);
          ("status", Json.String "quarantined");
        ];
      answer_result t p.p_ajob (Workers.E_error why) ~wall_s:(-1.)

(* Keep idle workers fed: crashed-job retries first, then the admission
   queue.  A job whose submission fails (the chosen worker died under
   us) stays pending for the next tick. *)
let dispatch_to_workers t pool =
  let rec go () =
    if Workers.has_idle pool then
      if not (Queue.is_empty t.retryq) then begin
        let p = Queue.pop t.retryq in
        if
          Workers.submit pool ~fingerprint:p.p_ajob.Admission.fingerprint
            ~request:p.p_ajob.Admission.request p
        then go ()
        else Queue.push p t.retryq
      end
      else
        match Admission.pop t.adm with
        | None -> ()
        | Some ajob -> (
            match
              Catalog.of_request ~default_engine:t.cfg.default_engine
                ajob.Admission.request
            with
            | Error m ->
                answer_result t ajob (Workers.E_error m) ~wall_s:(-1.);
                go ()
            | exception ex ->
                answer_result t ajob
                  (Workers.E_error (Printexc.to_string ex))
                  ~wall_s:(-1.);
                go ()
            | Ok job ->
                Metrics.incr c_jobs;
                let p =
                  {
                    p_ajob = ajob;
                    p_label = job.Catalog.label;
                    p_op = job.Catalog.op;
                  }
                in
                if
                  Workers.submit pool
                    ~fingerprint:job.Catalog.fingerprint
                    ~request:ajob.Admission.request p
                then go ()
                else Queue.push p t.retryq)
  in
  go ()

(* SIGTERM with jobs on workers: forward the stop so each in-flight job
   checkpoints and answers UNKNOWN (exactly the in-process drain
   semantics), wait out the stragglers, then answer whatever is left. *)
let drain_workers t pool ~reason =
  Workers.interrupt_busy pool;
  let deadline =
    Unix.gettimeofday ()
    +. Option.value ~default:30. t.cfg.max_deadline_s
    +. 5.
  in
  let rec wait () =
    if Workers.busy_count pool > 0 && Unix.gettimeofday () < deadline then begin
      (match Unix.select (Workers.fds pool) [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          List.iter
            (fun fd ->
              List.iter (handle_worker_event t) (Workers.on_readable pool fd))
            ready);
      wait ()
    end
  in
  wait ();
  (* anything still on a wedged worker, plus crashed jobs that never
     got resubmitted: answered, not dropped *)
  let answer_pending p =
    Metrics.incr c_drained;
    List.iter
      (fun r ->
        respond t r
          (Protocol.response ~reason
             ~retry_after_s:(Admission.retry_hint_s t.adm)
             ~status:"unknown" ()))
      (List.rev p.p_ajob.Admission.respondents)
  in
  Queue.iter answer_pending t.retryq;
  Queue.clear t.retryq;
  List.iter answer_pending (Workers.drain_busy pool);
  Workers.shutdown pool

let loop t =
  let timeout = match t.workers with Some _ -> 0.05 | None -> 0.25 in
  while t.running && not (Supervisor.interrupt_requested ()) do
    let wfds = match t.workers with Some p -> Workers.fds p | None -> [] in
    let fds = (t.listen_fd :: wfds) @ List.map (fun c -> c.fd) t.conns in
    (match Unix.select fds [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.listen_fd then begin
              match Unix.accept ~cloexec:true t.listen_fd with
              | cfd, _ ->
                  Metrics.incr c_conns;
                  t.conns <-
                    { fd = cfd;
                      rd = Protocol.reader ~max_frame:t.cfg.max_frame ();
                      alive = true }
                    :: t.conns
              | exception Unix.Unix_error _ -> ()
            end
            else if List.exists (fun wfd -> wfd = fd) wfds then
              match t.workers with
              | Some pool ->
                  List.iter (handle_worker_event t)
                    (Workers.on_readable pool fd)
              | None -> ()
            else
              match List.find_opt (fun c -> c.fd = fd) t.conns with
              | Some conn -> pump_conn t conn
              | None -> ())
          ready);
    match t.workers with
    | None -> run_next_job t
    | Some pool ->
        List.iter (handle_worker_event t) (Workers.tick pool);
        Admission.set_capacity t.adm (Workers.capacity pool);
        dispatch_to_workers t pool
  done;
  let reason =
    if Supervisor.interrupt_requested () then "interrupted: daemon shutting down"
    else "daemon shutting down"
  in
  drain_queue t ~reason;
  match t.workers with
  | None -> ()
  | Some pool -> drain_workers t pool ~reason

(* ------------------------------------------------------------------ *)
(* lifecycle *)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then raise (Already_running path);
    (* a stale socket from a killed daemon: reclaim it *)
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

let run cfg =
  Supervisor.install_handlers ();
  Option.iter mkdir_p cfg.state_dir;
  (* a kill -9 between a checkpoint's temp write and its rename leaks
     the temp file; long-lived daemons sweep the debris on startup *)
  Option.iter
    (fun d ->
      let swept = Snapshot.sweep_temps d in
      if swept > 0 then
        Events.emit "serve.sweep"
          [ ("dir", Json.String d); ("removed", Json.Int swept) ])
    cfg.state_dir;
  claim_socket cfg.socket_path;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let chaos_kill_every_s =
    match cfg.chaos_kill_every_s with
    | Some _ as s -> s
    | None -> Option.bind (Sys.getenv_opt "TM_CHAOS") float_of_string_opt
  in
  let workers =
    if cfg.workers > 0 then
      Some
        (Workers.create ?chaos_kill_every_s ~hb_timeout_s:cfg.hb_timeout_s
           ~quarantine_after:cfg.quarantine_after (caps_of_config cfg)
           ~n:cfg.workers)
    else None
  in
  let t =
    {
      cfg;
      listen_fd;
      conns = [];
      cache =
        Cache.create
          ?dir:(Option.map (fun d -> Filename.concat d "cache") cfg.state_dir)
          ();
      adm = Admission.create ~max_depth:cfg.max_queue;
      workers;
      retryq = Queue.create ();
      running = true;
    }
  in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  Events.emit "serve.start"
    [
      ("socket", Json.String cfg.socket_path);
      ("queue", Json.Int cfg.max_queue);
      ("workers", Json.Int cfg.workers);
    ];
  Fun.protect
    ~finally:(fun () ->
      (* belt and braces: on every exit path — including an escalated
         second signal — no worker process outlives the daemon *)
      (match t.workers with
      | Some pool -> ( try Workers.shutdown pool with _ -> ())
      | None -> ());
      List.iter (fun c -> drop_conn t c) t.conns;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
      Events.emit "serve.stop" [ ("socket", Json.String cfg.socket_path) ])
    (fun () -> Supervisor.graceful (fun () -> loop t))
