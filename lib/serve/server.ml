module Json = Tm_obs.Json
module Metrics = Tm_obs.Metrics
module Events = Tm_obs.Events
module Prng = Tm_base.Prng
module Supervisor = Tm_recover.Supervisor
module Snapshot = Tm_recover.Snapshot
module Reach = Tm_zones.Reach

let c_conns = Metrics.counter "serve.conns"
let c_frames = Metrics.counter "serve.frames"
let c_bad_frame = Metrics.counter "serve.bad_frame"
let c_oversized = Metrics.counter "serve.oversized"
let c_truncated = Metrics.counter "serve.truncated"
let c_rejected = Metrics.counter "serve.rejected"
let c_jobs = Metrics.counter "serve.jobs"
let c_job_ok = Metrics.counter "serve.job_ok"
let c_job_unknown = Metrics.counter "serve.job_unknown"
let c_job_error = Metrics.counter "serve.job_error"
let c_epipe = Metrics.counter "serve.epipe"
let c_drained = Metrics.counter "serve.drained"

type config = {
  socket_path : string;
  state_dir : string option;
  max_queue : int;
  max_frame : int;
  max_limit : int option;
  max_deadline_s : float option;
  domains : int;
  attempts : int;
  backoff_s : float;
  default_engine : string;
}

let default_config ~socket_path =
  {
    socket_path;
    state_dir = None;
    max_queue = 16;
    max_frame = Protocol.default_max_frame;
    max_limit = Some 200_000;
    max_deadline_s = Some 30.;
    domains = 1;
    attempts = 3;
    backoff_s = 0.05;
    default_engine = "auto";
  }

exception Already_running of string

(* ------------------------------------------------------------------ *)
(* connections *)

type conn = {
  fd : Unix.file_descr;
  rd : Protocol.reader;
  mutable alive : bool;
}

type respondent = { r_conn : conn; r_id : Json.t option }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  cache : Cache.t;
  adm : respondent Admission.t;
  mutable running : bool;
}

let drop_conn t c =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c' -> c' != c) t.conns
  end

(* A vanished peer is routine, not fatal: detach and count it.  SIGPIPE
   is already ignored ([Supervisor.install_handlers]), so a write to a
   dead socket surfaces as EPIPE here instead of killing the daemon. *)
let respond t (r : respondent) doc =
  if r.r_conn.alive then begin
    let doc =
      match (r.r_id, doc) with
      | Some id, Json.Obj kvs -> Json.Obj (("id", id) :: kvs)
      | _ -> doc
    in
    try Protocol.write_frame r.r_conn.fd (Json.to_string doc)
    with Unix.Unix_error _ | Sys_error _ ->
      Metrics.incr c_epipe;
      Events.emit "serve.conn" [ ("op", Json.String "epipe") ];
      drop_conn t r.r_conn
  end

(* ------------------------------------------------------------------ *)
(* budgets *)

let clamp_limit cap req =
  match (cap, req) with
  | None, r -> r
  | Some c, None -> Some c
  | Some c, Some r -> Some (min c (max 1 r))

let clamp_deadline cap req =
  match (cap, req) with
  | None, r -> r
  | Some c, None -> Some c
  | Some c, Some r -> Some (Float.min c (Float.max 0.01 r))

let zones_of_info info =
  try Scanf.sscanf info "zones=%d" (fun z -> z) with _ -> 0

(* ------------------------------------------------------------------ *)
(* job execution: bounded retries, checkpoint chaining, containment *)

type job_result =
  | R_ok of Json.t  (** definite verdict — cacheable *)
  | R_unknown of string  (** budget / interrupt — retryable by client *)
  | R_error of string  (** contained failure *)

let checkpoint_path t fingerprint =
  Option.map
    (fun d -> Filename.concat d (Cache.digest fingerprint ^ ".ckpt"))
    t.cfg.state_dir

(* Adopt a checkpoint a killed daemon left behind — but only one that
   provably belongs to this job (fingerprint match) and is readable
   (CRC); anything else is deleted, not trusted. *)
let stale_checkpoint t fingerprint =
  match checkpoint_path t fingerprint with
  | Some p when Sys.file_exists p -> (
      match Snapshot.inspect p with
      | fp, _info when String.equal fp fingerprint -> Some p
      | _ ->
          (try Sys.remove p with Sys_error _ -> ());
          None
      | exception Snapshot.Bad_snapshot _ ->
          (try Sys.remove p with Sys_error _ -> ());
          None)
  | _ -> None

let run_job t (job : Catalog.job) =
  Metrics.incr c_jobs;
  let limit0 = clamp_limit t.cfg.max_limit job.Catalog.req_limit in
  let deadline_s =
    clamp_deadline t.cfg.max_deadline_s job.Catalog.req_deadline_s
  in
  let ckpt = checkpoint_path t job.Catalog.fingerprint in
  let checkpoint = Option.map (fun p -> (p, 512)) ckpt in
  let next_resume = ref (stale_checkpoint t job.Catalog.fingerprint) in
  let last_reason = ref "budget exhausted" in
  let attempt ~attempt:_ =
    if Supervisor.interrupt_requested () then
      Supervisor.Done (R_unknown "interrupted: daemon shutting down")
    else
      let resume = !next_resume in
      let limit =
        (* re-base the zone budget on restored progress so every
           chained attempt gets [limit0] fresh zones *)
        match (limit0, resume) with
        | Some b, Some path -> (
            match Snapshot.inspect path with
            | _, info -> Some (zones_of_info info + b)
            | exception _ -> Some b)
        | Some b, None -> Some b
        | None, _ -> None
      in
      match
        job.Catalog.exec ~limit ~deadline_s ~domains:t.cfg.domains
          ~checkpoint ~resume
      with
      | Ok v -> Supervisor.Done (R_ok v)
      | Error (e : Reach.exhausted) ->
          last_reason := e.Reach.reason;
          (match e.Reach.checkpoint with
          | Some _ as ck -> next_resume := ck
          | None -> ());
          if Supervisor.interrupt_requested () then
            Supervisor.Done (R_unknown e.Reach.reason)
          else if e.Reach.checkpoint <> None && job.Catalog.checkpointable
          then Supervisor.Transient e.Reach.reason
          else Supervisor.Done (R_unknown e.Reach.reason)
      | exception Supervisor.Interrupted ->
          Supervisor.Done (R_unknown "interrupted: daemon shutting down")
      | exception ex ->
          (* contain the worker: a crashing job is this job's problem *)
          Supervisor.Transient (Printexc.to_string ex)
  in
  (* decorrelated jitter, deterministically seeded per fingerprint: a
     fleet of retries spreads out, a repeated run replays exactly *)
  let jitter =
    Prng.create (Snapshot.crc32 (Bytes.of_string job.Catalog.fingerprint))
  in
  let result =
    match
      Supervisor.with_retries ~attempts:t.cfg.attempts
        ~backoff_s:t.cfg.backoff_s ~jitter ~max_backoff_s:2.0 attempt
    with
    | Ok r -> r
    | Error reason ->
        if !last_reason = reason then R_unknown reason else R_error reason
  in
  (match result with
  | R_ok v ->
      Metrics.incr c_job_ok;
      Cache.store t.cache ~fingerprint:job.Catalog.fingerprint
        (Json.to_string v)
  | R_unknown _ -> Metrics.incr c_job_unknown
  | R_error _ -> Metrics.incr c_job_error);
  Events.emit "serve.job"
    [
      ("label", Json.String job.Catalog.label);
      ("op", Json.String job.Catalog.op);
      ("status",
       Json.String
         (match result with
         | R_ok _ -> "ok"
         | R_unknown _ -> "unknown"
         | R_error _ -> "error"));
    ];
  result

let response_of_result t ?cached result =
  match result with
  | R_ok v -> Protocol.response ?cached ~verdict:v ~status:"ok" ()
  | R_unknown reason ->
      Protocol.response ~reason
        ~retry_after_s:(Admission.retry_hint_s t.adm)
        ~status:"unknown" ()
  | R_error e -> Protocol.response ~error:e ~status:"error" ()

(* ------------------------------------------------------------------ *)
(* dispatch *)

let stats_doc t =
  let snap = Metrics.snapshot () in
  let c name = (name, Json.Int (Metrics.counter_total snap ("serve." ^ name))) in
  Json.Obj
    [
      ("queue_depth", Json.Int (Admission.depth t.adm));
      ("cache_entries", Json.Int (Cache.size t.cache));
      c "conns"; c "frames"; c "admitted"; c "coalesced"; c "shed";
      c "cache_hit"; c "cache_miss"; c "cache_store";
      c "jobs"; c "job_ok"; c "job_unknown"; c "job_error";
      c "bad_frame"; c "oversized"; c "truncated"; c "rejected";
      c "epipe"; c "drained";
    ]

let handle_request t conn req =
  let r_id = Json.member "id" req in
  let r = { r_conn = conn; r_id } in
  let op =
    match Option.bind (Json.member "op" req) Json.string_opt with
    | Some s -> s
    | None -> "verify"
  in
  match op with
  | "ping" -> respond t r (Protocol.response ~reason:"pong" ~status:"ok" ())
  | "stats" ->
      respond t r (Protocol.response ~verdict:(stats_doc t) ~status:"ok" ())
  | "shutdown" ->
      respond t r (Protocol.response ~reason:"draining" ~status:"ok" ());
      t.running <- false
  | _ -> (
      match Catalog.of_request ~default_engine:t.cfg.default_engine req with
      | Error m ->
          Metrics.incr c_rejected;
          respond t r (Protocol.response ~error:m ~status:"error" ())
      | Ok job -> (
          match Cache.find t.cache ~fingerprint:job.Catalog.fingerprint with
          | Some text ->
              let doc =
                match Json.of_string text with
                | Ok v ->
                    Protocol.response ~cached:true ~verdict:v ~status:"ok" ()
                | Error m ->
                    Protocol.response ~error:("corrupt cache entry: " ^ m)
                      ~status:"error" ()
              in
              respond t r doc
          | None -> (
              match
                Admission.try_admit t.adm
                  ~fingerprint:job.Catalog.fingerprint ~request:req r
              with
              | Admission.Shed hint ->
                  Events.emit "serve.shed"
                    [ ("label", Json.String job.Catalog.label) ];
                  respond t r
                    (Protocol.response ~reason:"queue full"
                       ~retry_after_s:hint ~status:"unknown" ())
              | Admission.Admitted _ | Admission.Coalesced _ ->
                  (* answered when the job runs *)
                  ())))

let handle_frame t conn payload =
  Metrics.incr c_frames;
  match Json.of_string payload with
  | Error m ->
      Metrics.incr c_bad_frame;
      respond t
        { r_conn = conn; r_id = None }
        (Protocol.response ~error:("bad json: " ^ m) ~status:"error" ())
  | Ok req -> handle_request t conn req

(* ------------------------------------------------------------------ *)
(* the select loop *)

let read_buf = Bytes.create 65536

let pump_conn t conn =
  let closed =
    match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> true
    | n ->
        Protocol.feed conn.rd read_buf 0 n;
        false
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  let rec drain () =
    if conn.alive then
      match Protocol.next conn.rd with
      | Protocol.Frame payload ->
          handle_frame t conn payload;
          drain ()
      | Protocol.Oversized n ->
          Metrics.incr c_oversized;
          respond t
            { r_conn = conn; r_id = None }
            (Protocol.response
               ~error:
                 (Printf.sprintf "oversized frame: %d bytes > max %d" n
                    t.cfg.max_frame)
               ~status:"error" ());
          drain ()
      | Protocol.Await -> ()
  in
  drain ();
  if closed then begin
    if not (Protocol.at_frame_boundary conn.rd) then begin
      Metrics.incr c_truncated;
      Events.emit "serve.conn" [ ("op", Json.String "truncated") ]
    end;
    drop_conn t conn
  end

let run_next_job t =
  match Admission.pop t.adm with
  | None -> ()
  | Some ajob ->
      let t0 = Unix.gettimeofday () in
      let result =
        (* the request parsed once already; a failure here is a bug,
           but even then the client gets a structured error *)
        match
          Catalog.of_request ~default_engine:t.cfg.default_engine
            ajob.Admission.request
        with
        | Error m -> R_error m
        | Ok job -> run_job t job
        | exception ex -> R_error (Printexc.to_string ex)
      in
      Admission.finished t.adm ajob
        ~note_wall_s:(Unix.gettimeofday () -. t0);
      let cached = match result with R_ok _ -> Some false | _ -> None in
      List.iter
        (fun r -> respond t r (response_of_result t ?cached result))
        (List.rev ajob.Admission.respondents)

let drain_queue t ~reason =
  List.iter
    (fun (ajob : respondent Admission.job) ->
      Metrics.incr c_drained;
      List.iter
        (fun r ->
          respond t r
            (Protocol.response ~reason
               ~retry_after_s:(Admission.retry_hint_s t.adm)
               ~status:"unknown" ()))
        (List.rev ajob.Admission.respondents))
    (Admission.drain t.adm)

let loop t =
  while t.running && not (Supervisor.interrupt_requested ()) do
    let fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
    (match Unix.select fds [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.listen_fd then begin
              match Unix.accept t.listen_fd with
              | cfd, _ ->
                  Metrics.incr c_conns;
                  t.conns <-
                    { fd = cfd;
                      rd = Protocol.reader ~max_frame:t.cfg.max_frame ();
                      alive = true }
                    :: t.conns
              | exception Unix.Unix_error _ -> ()
            end
            else
              match List.find_opt (fun c -> c.fd = fd) t.conns with
              | Some conn -> pump_conn t conn
              | None -> ())
          ready);
    run_next_job t
  done;
  let reason =
    if Supervisor.interrupt_requested () then "interrupted: daemon shutting down"
    else "daemon shutting down"
  in
  drain_queue t ~reason

(* ------------------------------------------------------------------ *)
(* lifecycle *)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then raise (Already_running path);
    (* a stale socket from a killed daemon: reclaim it *)
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

let run cfg =
  Supervisor.install_handlers ();
  Option.iter mkdir_p cfg.state_dir;
  claim_socket cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let t =
    {
      cfg;
      listen_fd;
      conns = [];
      cache =
        Cache.create
          ?dir:(Option.map (fun d -> Filename.concat d "cache") cfg.state_dir)
          ();
      adm = Admission.create ~max_depth:cfg.max_queue;
      running = true;
    }
  in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  Events.emit "serve.start"
    [
      ("socket", Json.String cfg.socket_path);
      ("queue", Json.Int cfg.max_queue);
    ];
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> drop_conn t c) t.conns;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
      Events.emit "serve.stop" [ ("socket", Json.String cfg.socket_path) ])
    (fun () -> Supervisor.graceful (fun () -> loop t))
