(** Crash-isolated worker processes for the verification daemon.

    With [--workers N >= 1] the daemon no longer runs jobs in its own
    address space: it keeps a pool of [N] long-lived child processes
    (re-executions of the current binary, flagged through the
    environment) and ships each admitted job to an idle worker as a
    length-prefixed JSON frame over a private socketpair.  A job that
    segfaults, OOMs, or is [kill -9]ed takes down one worker — never
    the daemon, never the other [N-1] jobs in flight.

    {b Topology.}  Each worker talks frames bidirectionally on its fd 0
    (the child end of the socketpair); its stdout and stderr point at
    the daemon's stderr, so a stray [print_string] in engine code can
    never corrupt the framing.  The parent end is close-on-exec, so
    workers do not inherit each other's channels (a dead worker's EOF
    arrives promptly).

    {b Liveness.}  Workers heartbeat from a dedicated domain every
    ~250 ms, so the parent distinguishes "computing for seconds" from
    "wedged": no frame of any kind within [hb_timeout_s] ⇒ SIGKILL and
    the crash path.  Deaths are also caught by [waitpid] polling and by
    EOF on the socketpair — whichever fires first.

    {b Supervision.}  A dead slot respawns on a
    {!Tm_recover.Supervisor.Backoff} decorrelated-jitter schedule
    (reset once the replacement reports ready).  The job a worker died
    holding is handed back to the caller as {!event.Crash_retry} — or,
    after [quarantine_after] crashes attributed to the same job
    fingerprint, as {!event.Crash_quarantined}: a poison job is refused
    forever rather than allowed to grind the pool down.  Crash counts
    reset when a fingerprint completes normally.

    {b Orphans.}  A worker whose parent vanished (heartbeat write hits
    EPIPE, or EOF on fd 0) exits on its own; [kill -9] of the daemon
    leaves no stray compute.

    {b Determinism.}  Workers compute; only the parent commits —
    caching, metrics accounting and event emission for job outcomes
    stay in the daemon, and the verdict document travels as structured
    JSON whose canonical re-rendering is byte-identical.  [--workers 0]
    (the default) bypasses this module entirely. *)

type caps = {
  state_dir : string option;
  max_limit : int option;
  max_deadline_s : float option;
  domains : int;
  attempts : int;
  backoff_s : float;
  default_engine : string;
}
(** The execution half of the server's config — everything a worker
    needs to run a job exactly as the in-process path would.  Shipped
    to workers as JSON through the environment. *)

type exec_result = E_ok of Tm_obs.Json.t | E_unknown of string | E_error of string

val execute : caps -> Tm_obs.Json.t -> exec_result
(** Parse a request through {!Catalog} and run it under the bounded
    retry / checkpoint-chaining discipline (see {!Server}): this is the
    single job-execution path, called by workers on shipped jobs and by
    the in-process server when [--workers 0].  Never raises: parse
    failures and contained crashes come back as [E_error]. *)

val execute_job : caps -> Catalog.job -> exec_result
(** {!execute} for an already-parsed job (the server parses once for
    fingerprinting and reuses the result). *)

val maybe_worker_main : unit -> unit
(** Call FIRST in every binary that may host a worker (the CLI, the
    test runner, the bench runner): when the worker environment flag is
    set, runs the worker protocol loop on fd 0 and never returns.
    A no-op otherwise. *)

(** {1 The pool (parent side)} *)

type 'a t
(** A pool whose in-flight jobs carry a caller payload ['a] (the
    server's pending-job record). *)

type 'a event =
  | Completed of 'a * exec_result * float
      (** a worker finished this job (wall seconds attached) *)
  | Crash_retry of 'a
      (** the worker died mid-job; resubmit it *)
  | Crash_quarantined of 'a * string
      (** the job killed [quarantine_after] workers; answer the reason
          as a structured error and never run it again *)

val create :
  ?chaos_kill_every_s:float ->
  ?hb_timeout_s:float ->
  ?quarantine_after:int ->
  caps ->
  n:int ->
  'a t
(** Spawn [n >= 1] workers.  [hb_timeout_s] (default 5) is the silence
    threshold before a worker is declared wedged; [quarantine_after]
    (default 3) the per-fingerprint crash budget;
    [chaos_kill_every_s], when given, SIGKILLs a random (preferably
    busy) worker on that period — the built-in chaos harness. *)

val fds : 'a t -> Unix.file_descr list
(** Parent ends of live workers' socketpairs, for the select loop. *)

val capacity : 'a t -> int
(** Live (non-dead) workers right now — feeds
    {!Admission.set_capacity} so shed prices track reality. *)

val has_idle : 'a t -> bool
val busy_count : 'a t -> int

val submit :
  'a t -> fingerprint:string -> request:Tm_obs.Json.t -> 'a -> bool
(** Ship a job to an idle worker; [false] when none is idle (leave the
    job queued).  The fingerprint is remembered for crash attribution. *)

val quarantined : 'a t -> fingerprint:string -> string option
(** The quarantine reason, if this fingerprint is banned. *)

val on_readable : 'a t -> Unix.file_descr -> 'a event list
(** Pump one readable worker fd: feeds frames, resets the heartbeat
    deadline, returns completions (and crash events if the read shows
    the worker died).  Unknown fds are ignored. *)

val tick : 'a t -> 'a event list
(** Periodic housekeeping: reap exited workers, SIGKILL heartbeat
    flat-liners, respawn dead slots whose backoff elapsed, fire the
    chaos timer.  Call once per select-loop iteration. *)

val drain_busy : 'a t -> 'a list
(** Pull the payloads of jobs still on busy workers (oldest slot
    first), marking those slots idle — the shutdown path answers them
    UNKNOWN rather than dropping them on a worker that will never
    finish. *)

val interrupt_busy : 'a t -> unit
(** Forward SIGTERM to every busy worker — the cooperative-stop half of
    daemon drain: each job checkpoints at its next batch boundary and
    answers UNKNOWN, exactly as the in-process path would. *)

val shutdown : 'a t -> unit
(** Send quit frames, close the pipes, wait briefly for voluntary
    exits, SIGKILL and reap stragglers.  The pool is unusable after. *)
