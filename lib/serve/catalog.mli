(** Request catalog: parse a job request into a runnable, fingerprinted
    job.

    A request is a JSON object:

    {v
    { "op": "verify" | "margin" | "simulate",
      "system": "rm"|"im"|"relay"|"fischer"|"rg"|"ring"|"fd"|"two",
      "params": { "n": 3, "a": 1, ... },      // system knobs, all optional
      "item": 0,                               // verify: which check
      "engine": "auto"|"int"|"fast"|"ref"|"paranoid",
      "limit": 50000, "deadline_s": 10.0,      // per-job budgets
      "steps": 60, "strategy": "random", "seed": 42 }   // simulate only
    v}

    Parsing is total and paranoid: unknown ops, systems, engines,
    params, non-integer knobs, out-of-range items all come back as
    [Error msg] — the server turns that into a structured error frame,
    never an exception.

    The job's [fingerprint] is the content address for the verdict
    cache and the checkpoint routing key.  For verify jobs it is {e
    exactly} the [Tm_zones.Reach] checkpoint fingerprint (kernel,
    widening mode, boundmap, condition/invariant encoding), so cache
    entries and checkpoint files agree on identity.  Margin and
    simulation fingerprints extend it with every input that can change
    the answer (props and budgets; steps/strategy/seed/deadline). *)

module Reach = Tm_zones.Reach

type job = {
  label : string;  (** human name for logs and responses *)
  op : string;
  fingerprint : string;
  checkpointable : bool;
      (** verify jobs resume from checkpoints; margin/simulate rerun *)
  req_limit : int option;  (** the budgets the request asked for; the *)
  req_deadline_s : float option;  (** server clamps them to its caps *)
  exec :
    limit:int option ->
    deadline_s:float option ->
    domains:int ->
    checkpoint:(string * int) option ->
    resume:string option ->
    (Tm_obs.Json.t, Reach.exhausted) result;
      (** Run the job.  [Ok verdict] is cacheable and definite;
          [Error e] is a budget exhaustion / cooperative interrupt with
          partial stats (never cached). *)
}

val of_request :
  ?default_engine:string -> Tm_obs.Json.t -> (job, string) result
(** [default_engine] (default ["auto"]) applies when the request names
    none. *)

val systems : string list
(** Known system names, for error messages and docs. *)
