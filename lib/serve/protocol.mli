(** Wire protocol of the verification daemon: length-prefixed JSON
    frames over a Unix-domain stream socket.

    A frame is a 4-byte big-endian unsigned payload length followed by
    that many bytes of UTF-8 JSON.  The framing layer is deliberately
    dumb — one length, one blob — so every robustness decision lives in
    one place:

    - an {b oversized} declared length (above the reader's
      [max_frame]) switches the reader into skip mode: the announced
      bytes are discarded as they arrive in O(1) memory, the event is
      reported once as {!read_result.Oversized}, and the stream stays
      framed — the server answers a structured error instead of dying
      or desynchronizing;
    - a {b truncated} frame (EOF mid-length or mid-payload) is visible
      as {!at_frame_boundary} being false when the connection closes —
      never an exception;
    - {b garbage} payloads are delivered as ordinary frames; deciding
      whether the bytes are valid JSON (and a valid request) is the
      dispatcher's job, which answers a structured error frame.

    The reader is incremental and push-based so it can sit behind a
    [select] loop and be fuzzed byte-by-byte: {!feed} appends whatever
    arrived, {!next} pops at most one event. *)

val default_max_frame : int
(** 1 MiB — generous for any request or response this protocol
    carries. *)

type reader

val reader : ?max_frame:int -> unit -> reader

val feed : reader -> bytes -> int -> int -> unit
(** [feed r b off len] appends [len] bytes of [b] starting at [off].
    Never raises (beyond [Invalid_argument] on a bogus slice). *)

val feed_string : reader -> string -> unit

type read_result =
  | Frame of string  (** one complete payload *)
  | Oversized of int
      (** a frame announced this many bytes, above [max_frame]; the
          payload is being discarded, framing stays intact *)
  | Await  (** need more bytes *)

val next : reader -> read_result
(** Pop the next event.  Total: never raises on any byte sequence. *)

val at_frame_boundary : reader -> bool
(** True iff every fed byte has been consumed as complete frames — the
    clean place for a connection to end.  False at EOF means the peer
    died mid-frame. *)

val encode_frame : string -> string
(** [length ^ payload], ready to write. *)

val max_encodable : int
(** Upper bound on an encodable payload (u32 range). *)

(** {1 Blocking helpers over file descriptors}

    Used by the client, the tests and the server's response path.  All
    of them raise [Unix.Unix_error] on transport failure — callers
    decide whether that is fatal (client) or just a vanished peer
    (server). *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame, handling short writes.
    @raise Invalid_argument when the payload exceeds {!max_encodable}. *)

val read_frame_with : reader -> Unix.file_descr -> string option
(** Blocking read of one frame through a caller-held reader; [None] on
    EOF at a frame boundary.  When reading several pipelined responses
    from one connection the SAME reader must be reused for every call:
    a single [read] can pull multiple coalesced frames off the socket,
    and the extras live in the reader until the next call pops them.
    @raise Failure on a truncated or oversized frame. *)

val read_frame : ?max_frame:int -> Unix.file_descr -> string option
(** [read_frame_with] with a fresh throwaway reader.  Only safe when at
    most one frame will ever arrive on [fd] — any buffered surplus is
    lost with the reader. *)

exception Timeout
(** Raised by {!read_frame_deadline} when the deadline passes. *)

val read_frame_deadline :
  reader -> Unix.file_descr -> deadline:float -> string option
(** Like {!read_frame_with}, but gives up once [Unix.gettimeofday ()]
    passes [deadline] — the client's [--timeout] and the worker-drain
    path both need "a frame or a clock", never an indefinite block on a
    daemon that stopped answering.  Same reader-reuse rule as
    {!read_frame_with}.
    @raise Timeout when the deadline passes with no complete frame.
    @raise Failure on a truncated or oversized frame. *)

(** {1 Request/response envelopes}

    Thin helpers shared by server and client so both sides agree on
    field names.  The payload JSON shapes are documented in the README
    ("Serving verification jobs"). *)

val response :
  ?id:Tm_obs.Json.t ->
  ?cached:bool ->
  ?verdict:Tm_obs.Json.t ->
  ?reason:string ->
  ?retry_after_s:float ->
  ?error:string ->
  status:string ->
  unit ->
  Tm_obs.Json.t
(** Build a response object; [status] is ["ok"], ["unknown"] or
    ["error"].  Omitted fields are omitted from the JSON. *)

val status_of_response : Tm_obs.Json.t -> string option
