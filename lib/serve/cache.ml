module Metrics = Tm_obs.Metrics
module Events = Tm_obs.Events
module Json = Tm_obs.Json
module Snapshot = Tm_recover.Snapshot

let c_hit = Metrics.counter "serve.cache_hit"
let c_miss = Metrics.counter "serve.cache_miss"
let c_store = Metrics.counter "serve.cache_store"

type t = { dir : string option; mem : (string, string) Hashtbl.t }

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | _ -> ());
  { dir; mem = Hashtbl.create 64 }

let digest fp =
  let rev s = String.init (String.length s) (fun i ->
      s.[String.length s - 1 - i]) in
  Printf.sprintf "%08x%08x-%d"
    (Snapshot.crc32 (Bytes.of_string fp))
    (Snapshot.crc32 (Bytes.of_string (rev fp)))
    (String.length fp)

let path_of t fp =
  Option.map (fun d -> Filename.concat d (digest fp ^ ".tmv")) t.dir

let size t = Hashtbl.length t.mem

let find t ~fingerprint =
  match Hashtbl.find_opt t.mem fingerprint with
  | Some v ->
      Metrics.incr c_hit;
      Some v
  | None -> (
      let from_disk =
        match path_of t fingerprint with
        | Some p when Sys.file_exists p -> (
            match Snapshot.read p with
            | fp, _info, payload when String.equal fp fingerprint ->
                Some (Bytes.to_string payload)
            | _ ->
                (* digest collision: someone else's verdict — a miss *)
                None
            | exception Snapshot.Bad_snapshot _ ->
                (* torn/corrupt entry: drop it so it cannot keep
                   costing a read, and recompute *)
                (try Sys.remove p with Sys_error _ -> ());
                None)
        | _ -> None
      in
      match from_disk with
      | Some v ->
          Hashtbl.replace t.mem fingerprint v;
          Metrics.incr c_hit;
          Events.emit "serve.cache"
            [ ("op", Json.String "disk_hit");
              ("digest", Json.String (digest fingerprint)) ];
          Some v
      | None ->
          Metrics.incr c_miss;
          None)

let store t ~fingerprint verdict =
  Hashtbl.replace t.mem fingerprint verdict;
  Metrics.incr c_store;
  (match path_of t fingerprint with
  | Some p -> (
      try
        Snapshot.write ~path:p ~fingerprint ~info:"verdict"
          (Bytes.of_string verdict)
      with Sys_error _ | Unix.Unix_error _ ->
        (* a full or read-only disk degrades the cache to memory-only *)
        ())
  | None -> ());
  Events.emit "serve.cache"
    [ ("op", Json.String "store");
      ("digest", Json.String (digest fingerprint)) ]
