module Metrics = Tm_obs.Metrics

let c_admitted = Metrics.counter "serve.admitted"
let c_coalesced = Metrics.counter "serve.coalesced"
let c_shed = Metrics.counter "serve.shed"
let g_depth = Metrics.gauge "serve.queue_depth"
let g_depth_max = Metrics.gauge "serve.queue_depth_max"
let g_capacity = Metrics.gauge "serve.capacity"

type 'r job = {
  fingerprint : string;
  request : Tm_obs.Json.t;
  mutable respondents : 'r list;
}

type 'r t = {
  max_depth : int;
  q : 'r job Queue.t;
  (* fingerprint -> pending job (queued or running): the coalescing
     index.  Entries leave at [finished], not at [pop], so a request
     arriving while its twin computes still piggybacks. *)
  pending : (string, 'r job) Hashtbl.t;
  mutable ewma_s : float;  (** recent job wall time; prices retry hints *)
  mutable capacity : int;  (** live executor slots; prices retry hints *)
}

let create ~max_depth =
  if max_depth < 0 then invalid_arg "Admission.create: max_depth < 0";
  Metrics.set g_capacity 1.;
  {
    max_depth;
    q = Queue.create ();
    pending = Hashtbl.create 16;
    ewma_s = 0.1;
    capacity = 1;
  }

let depth t = Queue.length t.q

let set_capacity t n =
  if n < 0 then invalid_arg "Admission.set_capacity: capacity < 0";
  t.capacity <- n;
  Metrics.set g_capacity (float_of_int n)

let capacity t = t.capacity

let set_depth_gauges t =
  let d = float_of_int (depth t) in
  Metrics.set g_depth d;
  Metrics.set_max g_depth_max d

let retry_hint_s t =
  (* Everything ahead of a hypothetical re-submission, priced at the
     recent per-job wall time, floored so a hint is never "retry
     immediately" during a flood.  Capacity scales the price: more live
     executors drain the queue proportionally faster, and a pool with
     zero live workers (all crashed, none respawned yet) prices at a
     hard one-second floor — "come back when something is alive". *)
  let base = t.ewma_s *. float_of_int (depth t + 1) in
  if t.capacity = 0 then Float.max 1.0 base
  else Float.max 0.1 (base /. float_of_int t.capacity)

type 'r admitted = Admitted of 'r job | Coalesced of 'r job | Shed of float

let try_admit t ~fingerprint ~request r =
  match Hashtbl.find_opt t.pending fingerprint with
  | Some job ->
      job.respondents <- r :: job.respondents;
      Metrics.incr c_coalesced;
      Coalesced job
  | None ->
      if Queue.length t.q >= t.max_depth then begin
        Metrics.incr c_shed;
        Shed (retry_hint_s t)
      end
      else begin
        let job = { fingerprint; request; respondents = [ r ] } in
        Queue.add job t.q;
        Hashtbl.replace t.pending fingerprint job;
        Metrics.incr c_admitted;
        set_depth_gauges t;
        Admitted job
      end

let pop t =
  match Queue.take_opt t.q with
  | None -> None
  | Some job ->
      set_depth_gauges t;
      Some job

let finished t job ~note_wall_s =
  Hashtbl.remove t.pending job.fingerprint;
  if note_wall_s >= 0. then
    t.ewma_s <- (0.7 *. t.ewma_s) +. (0.3 *. note_wall_s)

let drain t =
  let jobs = List.of_seq (Queue.to_seq t.q) in
  Queue.clear t.q;
  List.iter (fun j -> Hashtbl.remove t.pending j.fingerprint) jobs;
  set_depth_gauges t;
  jobs
