(** The verification daemon: a single-threaded [select] loop over a
    Unix-domain stream socket, serving {!Catalog} jobs with admission
    control, verdict caching and crash tolerance.

    {b Life of a request.}  A frame arrives ({!Protocol}), parses to
    JSON, and is dispatched:

    - admin ops ([ping], [stats], [shutdown]) answer immediately;
    - anything malformed — bad JSON, unknown op/system/engine/param,
      oversized frame — answers a structured [status = "error"] frame;
      the daemon never dies on input;
    - a job whose fingerprint is in the verdict {!Cache} answers
      [status = "ok", cached = true] in O(1), with the verdict bytes
      identical to a fresh computation (the cache stores the rendered
      verdict document itself);
    - otherwise the job goes through {!Admission}: coalesced onto an
      identical in-flight job, shed with [status = "unknown"] and a
      [retry_after_s] hint when the queue is full, or enqueued.

    {b Execution.}  One job runs at a time (jobs parallelize
    internally over [domains]); budgets are the request's, clamped to
    the server's caps.  Each job runs under
    {!Tm_recover.Supervisor.with_retries} with decorrelated-jitter
    backoff seeded from the job fingerprint: worker exceptions are
    contained and retried, budget exhaustions that left a checkpoint
    chain into the next attempt with the zone limit re-based on
    restored progress, deterministic failures are answered directly.
    Only definite verdicts are cached.

    {b Crash tolerance.}  SIGTERM/SIGINT inside the loop's
    {!Tm_recover.Supervisor.graceful} scope requests a cooperative
    stop: the in-flight job checkpoints at its next batch boundary and
    is answered UNKNOWN, queued jobs are drained with
    UNKNOWN-plus-retry answers, the socket is unlinked.  A [kill -9]
    loses nothing durable: verdicts are already on disk, and the
    orphaned checkpoint of the interrupted job is adopted by the next
    run of the same fingerprint (stale or corrupt checkpoints are
    detected by fingerprint/CRC and deleted).

    Every degradation path increments a [serve.*] metric and emits a
    [serve.*] event, so floods and failures are visible in the
    Prometheus export and the NDJSON event stream. *)

type config = {
  socket_path : string;
  state_dir : string option;
      (** verdict cache + checkpoint directory; [None] = memory only,
          losing kill-9 durability but nothing else *)
  max_queue : int;  (** admission queue depth before shedding *)
  max_frame : int;  (** per-frame byte cap (see {!Protocol}) *)
  max_limit : int option;  (** cap and default for per-job zone budgets *)
  max_deadline_s : float option;  (** cap and default for job deadlines *)
  domains : int;  (** worker domains per job *)
  attempts : int;  (** supervisor attempts per job *)
  backoff_s : float;  (** retry backoff base *)
  default_engine : string;  (** engine when the request names none *)
  workers : int;
      (** worker processes ({!Workers}); 0 = classic in-process
          execution, byte-identical verdicts either way *)
  quarantine_after : int;
      (** crashes of one fingerprint before it is refused for good *)
  hb_timeout_s : float;  (** worker silence before it is declared wedged *)
  chaos_kill_every_s : float option;
      (** chaos harness: SIGKILL a random worker this often (also
          settable via the [TM_CHAOS] environment variable) *)
}

val default_config : socket_path:string -> config
(** queue 16, 1 MiB frames, limit 200000 zones, deadline 30 s,
    1 domain, 3 attempts, 0.05 s backoff, engine ["auto"], 0 workers
    (quarantine after 3, 5 s heartbeat timeout, no chaos). *)

exception Already_running of string
(** The socket path is live: another daemon answered a probe connect. *)

val run : config -> unit
(** Serve until [shutdown] or SIGTERM/SIGINT; returns after draining.
    @raise Already_running instead of stealing a live socket. *)
