module Json = Tm_obs.Json
module Rational = Tm_base.Rational
module Interval = Tm_base.Interval
module Prng = Tm_base.Prng
module Ioa = Tm_ioa.Ioa
module TA = Tm_core.Time_automaton
module Condition = Tm_timed.Condition
module Semantics = Tm_timed.Semantics
module Tseq = Tm_timed.Tseq
module Reach = Tm_zones.Reach
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module Margin = Tm_faults.Margin
module RM = Tm_systems.Resource_manager
module IM = Tm_systems.Interrupt_manager
module SR = Tm_systems.Signal_relay
module F = Tm_systems.Fischer
module RG = Tm_systems.Request_grant
module TR = Tm_systems.Token_ring
module FD = Tm_systems.Failure_detector
module TS = Tm_systems.Two_stage

let q = Rational.of_int

type job = {
  label : string;
  op : string;
  fingerprint : string;
  checkpointable : bool;
  req_limit : int option;
  req_deadline_s : float option;
  exec :
    limit:int option ->
    deadline_s:float option ->
    domains:int ->
    checkpoint:(string * int) option ->
    resume:string option ->
    (Json.t, Reach.exhausted) result;
}

let systems = [ "rm"; "im"; "relay"; "fischer"; "rg"; "ring"; "fd"; "two" ]

(* ------------------------------------------------------------------ *)
(* verdict documents.  Field order is fixed, so re-rendering the same
   outcome yields byte-identical JSON — the cache equality the tests
   and CI check. *)

let stats_fields (st : Reach.stats) =
  [
    ("locations", Json.Int st.Reach.locations);
    ("zones", Json.Int st.Reach.zones);
    ("edges", Json.Int st.Reach.edges);
  ]

let verdict_doc ~label ~result extra =
  Json.Obj
    (("item", Json.String label) :: ("result", Json.String result) :: extra)

(* ------------------------------------------------------------------ *)
(* verification items (mirrors bin/timedmap.ml's vitems) *)

type item = {
  it_label : string;
  it_fingerprint : (module Reach.S) -> string;
  it_exec :
    (module Reach.S) ->
    limit:int option ->
    deadline_s:float option ->
    domains:int ->
    checkpoint:(string * int) option ->
    resume:string option ->
    (Json.t, Reach.exhausted) result;
}

let cond_item (type s a) name (sys : (s, a) Ioa.t) bm
    (c : (s, a) Condition.t) =
  let label = Printf.sprintf "%s %s" name c.Condition.cname in
  {
    it_label = label;
    it_fingerprint =
      (fun (module E : Reach.S) -> E.fingerprint_condition sys bm c);
    it_exec =
      (fun (module E : Reach.S) ~limit ~deadline_s ~domains ~checkpoint
           ~resume ->
        match
          E.check_condition ?limit ?deadline_s ~domains ?checkpoint ?resume
            sys bm c
        with
        | Reach.Verified st ->
            Ok
              (verdict_doc ~label ~result:"verified"
                 (("bounds",
                   Json.String (Interval.to_string c.Condition.bounds))
                 :: stats_fields st))
        | Reach.Lower_violation st ->
            Ok (verdict_doc ~label ~result:"lower_violation" (stats_fields st))
        | Reach.Upper_violation st ->
            Ok (verdict_doc ~label ~result:"upper_violation" (stats_fields st))
        | Reach.Unsupported m ->
            Ok
              (verdict_doc ~label ~result:"unsupported"
                 [ ("message", Json.String m) ])
        | Reach.Unknown e -> Error e);
  }

let inv_item (type s a) label (sys : (s, a) Ioa.t) bm (pred : s -> bool) =
  {
    it_label = label;
    it_fingerprint =
      (fun (module E : Reach.S) -> E.fingerprint_invariant sys bm);
    it_exec =
      (fun (module E : Reach.S) ~limit ~deadline_s ~domains ~checkpoint
           ~resume ->
        match
          E.check_state_invariant ?limit ?deadline_s ~domains ?checkpoint
            ?resume sys bm pred
        with
        | Ok st -> Ok (verdict_doc ~label ~result:"invariant_ok" (stats_fields st))
        | Error s ->
            Ok
              (verdict_doc ~label ~result:"invariant_violated"
                 [ ("state",
                    Json.String (Format.asprintf "%a" sys.Ioa.pp_state s)) ])
        | exception Reach.Out_of_budget e -> Error e);
  }

(* ------------------------------------------------------------------ *)
(* margin + simulation closures *)

type ('s, 'a) prop = Pcond of ('s, 'a) Condition.t | Pinv of string * ('s -> bool)

let prop_name = function
  | Pcond c -> c.Condition.cname
  | Pinv (n, _) -> n ^ ":invariant"

let budget_suffix ~limit ~deadline_s =
  Printf.sprintf "|limit=%s|deadline=%s"
    (match limit with Some n -> string_of_int n | None -> "-")
    (match deadline_s with Some s -> Printf.sprintf "%g" s | None -> "-")

type margin_fns = {
  mg_fp :
    ename:string -> (module Reach.S) -> limit:int option ->
    deadline_s:float option -> string;
  mg_run :
    ename:string -> (module Reach.S) -> domains:int -> limit:int option ->
    deadline_s:float option -> Json.t;
}

let make_margin (type s a) name (sys : (s, a) Ioa.t) bm
    (props : (s, a) prop list) =
  let pin ~ename e = Margin.probe_engine ~name:ename e in
  {
    mg_fp =
      (fun ~ename e ~limit ~deadline_s ->
        let module E = (val pin ~ename e) in
        E.fingerprint_invariant sys bm
        ^ "|serve=margin|props="
        ^ String.concat "," (List.map prop_name props)
        ^ budget_suffix ~limit ~deadline_s);
    mg_run =
      (fun ~ename e ~domains ~limit ~deadline_s ->
        let module E = (val pin ~ename e) in
        let reports =
          List.map
            (fun prop ->
              let subject, check =
                match prop with
                | Pcond c ->
                    ( Printf.sprintf "%s %s %s" name c.Condition.cname
                        (Interval.to_string c.Condition.bounds),
                      fun bm' ->
                        Margin.condition_status
                          (module E : Reach.S)
                          ?limit ?deadline_s sys c bm' )
                | Pinv (iname, pred) ->
                    ( Printf.sprintf "%s %s (invariant)" name iname,
                      fun bm' ->
                        Margin.invariant_status
                          (module E : Reach.S)
                          ?limit ?deadline_s sys pred bm' )
              in
              Margin.to_json (Margin.report ~domains ~subject ~check bm))
            props
        in
        Json.Obj
          [ ("item", Json.String (name ^ " margin"));
            ("result", Json.String "margin");
            ("reports", Json.List reports) ]);
  }

type sim_fns = {
  sm_fp :
    steps:int -> strategy:string -> seed:int -> deadline_s:float option ->
    string;
  sm_run :
    steps:int -> strategy:string -> seed:int -> deadline_s:float option ->
    Json.t;
}

let make_strategy name seed denominator =
  match name with
  | "eager" -> Ok Strategy.eager
  | "lazy" -> Ok (Strategy.lazy_ ~cap:(q 1) ())
  | "random" ->
      Ok (Strategy.random ~prng:(Prng.create seed) ~denominator ~cap:(q 1))
  | other -> Error (Printf.sprintf "unknown strategy %S" other)

let make_sim (type s a) ~sysname ~paramstr (aut : (s, a) TA.t)
    (conds : (s, a) Condition.t list) ~denominator =
  {
    sm_fp =
      (fun ~steps ~strategy ~seed ~deadline_s ->
        Printf.sprintf "tmsim1|system=%s|%s|steps=%d|strategy=%s|seed=%d%s"
          sysname paramstr steps strategy seed
          (budget_suffix ~limit:None ~deadline_s));
    sm_run =
      (fun ~steps ~strategy ~seed ~deadline_s ->
        match make_strategy strategy seed denominator with
        | Error m ->
            Json.Obj
              [ ("item", Json.String (sysname ^ " simulate"));
                ("result", Json.String "error");
                ("message", Json.String m) ]
        | Ok strat ->
            let run = Simulator.simulate ?deadline_s ~steps ~strategy:strat aut in
            let seq = Simulator.project run in
            let violations = Semantics.semi_satisfies_all seq conds in
            let base = aut.TA.base in
            let moves =
              List.map
                (fun ((act, t), _) ->
                  Json.Obj
                    [
                      ("t", Json.String (Rational.to_string t));
                      ("act",
                       Json.String
                         (Format.asprintf "%a" base.Ioa.pp_action act));
                    ])
                seq.Tseq.moves
            in
            Json.Obj
              [
                ("item", Json.String (sysname ^ " simulate"));
                ("result", Json.String "simulated");
                ("stop",
                 Json.String (Simulator.describe_stop run.Simulator.reason));
                ("violations", Json.Int (List.length violations));
                ("moves", Json.List moves);
              ]);
  }

type pack = { pk_items : item list; pk_margin : margin_fns; pk_sim : sim_fns }

(* ------------------------------------------------------------------ *)
(* parameters *)

type params = {
  k : int; c1 : int; c2 : int; l : int;
  n : int; d1 : int; d2 : int;
  a : int; b : int;
  g1 : int; g2 : int; m : int;
}

(* The failure-detector defaults differ per op exactly as the CLI's
   per-subcommand defaults do: margin wants the single-miss detector
   whose accuracy margin is the paper's exact slack g1 - h2. *)
let defaults ~op =
  let margin = String.equal op "margin" in
  { k = 3; c1 = 2; c2 = 3; l = 1; n = 4; d1 = 1; d2 = 2; a = 1; b = 2;
    g1 = (if margin then 3 else 2); g2 = 3; m = (if margin then 1 else 2) }

let param_names =
  [ "k"; "c1"; "c2"; "l"; "n"; "d1"; "d2"; "a"; "b"; "g1"; "g2"; "m" ]

let parse_params ~op json =
  match json with
  | None -> Ok (defaults ~op, "")
  | Some (Json.Obj kvs) ->
      let rec go p acc = function
        | [] -> Ok (p, String.concat "," (List.rev acc))
        | (key, v) :: rest -> (
            match Json.int_opt v with
            | None ->
                Error (Printf.sprintf "param %S must be an integer" key)
            | Some i -> (
                let acc = Printf.sprintf "%s=%d" key i :: acc in
                match key with
                | "k" -> go { p with k = i } acc rest
                | "c1" -> go { p with c1 = i } acc rest
                | "c2" -> go { p with c2 = i } acc rest
                | "l" -> go { p with l = i } acc rest
                | "n" -> go { p with n = i } acc rest
                | "d1" -> go { p with d1 = i } acc rest
                | "d2" -> go { p with d2 = i } acc rest
                | "a" -> go { p with a = i } acc rest
                | "b" -> go { p with b = i } acc rest
                | "g1" -> go { p with g1 = i } acc rest
                | "g2" -> go { p with g2 = i } acc rest
                | "m" -> go { p with m = i } acc rest
                | other ->
                    Error
                      (Printf.sprintf "unknown param %S (known: %s)" other
                         (String.concat ", " param_names))))
      in
      go (defaults ~op) [] kvs
  | Some _ -> Error "\"params\" must be an object of integers"

(* ------------------------------------------------------------------ *)
(* system packs (mirrors the CLI instance builders) *)

let pack_of system (p : params) paramstr : (pack, string) result =
  let sim_name = system in
  match system with
  | "rm" ->
      let pp = RM.params_of_ints ~k:p.k ~c1:p.c1 ~c2:p.c2 ~l:p.l in
      let conds = [ RM.g1 pp; RM.g2 pp ] in
      Ok
        {
          pk_items =
            List.map (cond_item "manager" (RM.system pp) (RM.boundmap pp)) conds;
          pk_margin =
            make_margin "manager" (RM.system pp) (RM.boundmap pp)
              [ Pcond (RM.g1 pp); Pcond (RM.g2 pp) ];
          pk_sim =
            make_sim ~sysname:sim_name ~paramstr (RM.impl pp) conds
              ~denominator:4;
        }
  | "im" ->
      let pp = IM.params_of_ints ~k:p.k ~c1:p.c1 ~c2:p.c2 ~l:p.l in
      let conds = [ IM.g1 pp; IM.g2 pp ] in
      Ok
        {
          pk_items =
            List.map (cond_item "interrupt" (IM.system pp) (IM.boundmap pp))
              conds;
          pk_margin =
            make_margin "interrupt" (IM.system pp) (IM.boundmap pp)
              [ Pcond (IM.g1 pp); Pcond (IM.g2 pp) ];
          pk_sim =
            make_sim ~sysname:sim_name ~paramstr (IM.impl pp) conds
              ~denominator:4;
        }
  | "relay" ->
      let pp = SR.params_of_ints ~n:p.n ~d1:p.d1 ~d2:p.d2 in
      let u_line =
        Condition.make ~name:"U(0,n)"
          ~t_step:(fun _ a _ -> a = SR.Signal 0)
          ~bounds:(SR.delay_interval pp)
          ~in_pi:(fun a -> a = SR.Signal p.n)
          ()
      in
      let sim_conds = List.init p.n (fun k -> SR.u_cond pp ~k) in
      Ok
        {
          pk_items =
            [ cond_item "relay" (SR.line pp) (SR.boundmap pp) u_line ];
          pk_margin =
            make_margin "relay" (SR.line pp) (SR.boundmap pp)
              [ Pcond u_line ];
          pk_sim =
            make_sim ~sysname:sim_name ~paramstr (SR.impl pp) sim_conds
              ~denominator:2;
        }
  | "fischer" ->
      let n = max 2 (min p.n 6) in
      let pp =
        F.params_of_ints ~n ~r:2 ~t:1 ~a:p.a ~b:p.b ~b2:(p.b + 1) ~e:2
      in
      Ok
        {
          pk_items =
            [
              inv_item "mutual exclusion" (F.system pp) (F.boundmap pp)
                F.mutual_exclusion;
              cond_item "fischer" (F.system pp) (F.boundmap pp) (F.u_enter pp);
            ];
          pk_margin =
            make_margin "fischer" (F.system pp) (F.boundmap pp)
              [
                Pinv ("mutual exclusion", F.mutual_exclusion);
                Pcond (F.u_enter pp);
              ];
          pk_sim =
            make_sim ~sysname:sim_name ~paramstr (F.impl pp)
              [ F.u_enter pp ] ~denominator:2;
        }
  | "rg" ->
      let pp = RG.params_of_ints ~r1:2 ~r2:5 ~w1:1 ~w2:3 in
      Ok
        {
          pk_items =
            [ cond_item "request-grant" (RG.system pp) (RG.boundmap pp)
                (RG.u_response pp) ];
          pk_margin =
            make_margin "request-grant" (RG.system pp) (RG.boundmap pp)
              [ Pcond (RG.u_response pp) ];
          pk_sim =
            make_sim ~sysname:sim_name ~paramstr (RG.impl pp)
              [ RG.u_response pp ] ~denominator:2;
        }
  | "ring" ->
      let pp = TR.params_of_ints ~n:p.n ~d1:p.d1 ~d2:p.d2 in
      Ok
        {
          pk_items =
            [ cond_item "ring" (TR.system pp) (TR.boundmap pp)
                (TR.u_rotation pp) ];
          pk_margin =
            make_margin "ring" (TR.system pp) (TR.boundmap pp)
              [ Pcond (TR.u_rotation pp) ];
          pk_sim =
            make_sim ~sysname:sim_name ~paramstr (TR.impl pp)
              [ TR.u_rotation pp ] ~denominator:2;
        }
  | "fd" ->
      let pp = FD.params_of_ints ~h1:1 ~h2:2 ~g1:p.g1 ~g2:p.g2 ~m:p.m in
      Ok
        {
          pk_items =
            [
              inv_item "accuracy" (FD.system pp) (FD.boundmap pp)
                FD.no_false_suspicion;
              cond_item "detector" (FD.system pp) (FD.boundmap pp)
                (FD.u_detect pp);
            ];
          pk_margin =
            make_margin "detector" (FD.system pp) (FD.boundmap pp)
              [
                Pinv ("accuracy", FD.no_false_suspicion);
                Pcond (FD.u_detect pp);
              ];
          pk_sim =
            make_sim ~sysname:sim_name ~paramstr (FD.impl pp)
              [ FD.u_detect pp ] ~denominator:2;
        }
  | "two" ->
      let pp = TS.params_of_ints ~p1:1 ~p2:3 ~q1:1 ~q2:2 ~r1:2 ~r2:4 in
      let conds = [ TS.u_start_mid pp; TS.u_mid_done pp; TS.u_end_to_end pp ] in
      Ok
        {
          pk_items =
            List.map (cond_item "two-stage" (TS.system pp) (TS.boundmap pp))
              conds;
          pk_margin =
            make_margin "two-stage" (TS.system pp) (TS.boundmap pp)
              (List.map (fun c -> Pcond c) conds);
          pk_sim =
            make_sim ~sysname:sim_name ~paramstr (TS.impl pp) conds
              ~denominator:2;
        }
  | other ->
      Error
        (Printf.sprintf "unknown system %S (known: %s)" other
           (String.concat ", " systems))

(* ------------------------------------------------------------------ *)
(* engines *)

let engine_of = function
  | "auto" -> Ok ("auto", (module Reach.Auto : Reach.S))
  | "int" -> Ok ("int", (module Reach.Int : Reach.S))
  | "fast" -> Ok ("fast", (module Reach.Default : Reach.S))
  | "ref" -> Ok ("ref", (module Reach.Ref : Reach.S))
  | "paranoid" ->
      if Tm_recover.Paranoid.every () = 0 then Tm_recover.Paranoid.set_every 64;
      Ok ("paranoid", (module Reach.Paranoid : Reach.S))
  | other ->
      Error
        (Printf.sprintf
           "unknown engine %S (auto | int | fast | ref | paranoid)" other)

(* ------------------------------------------------------------------ *)
(* request parsing *)

let field k j = Json.member k j
let str_field k j = Option.bind (field k j) Json.string_opt
let int_field k j = Option.bind (field k j) Json.int_opt
let float_field k j = Option.bind (field k j) Json.float_opt

let of_request ?(default_engine = "auto") req =
  match req with
  | Json.Obj _ -> (
      let op = Option.value (str_field "op" req) ~default:"verify" in
      let system = Option.value (str_field "system" req) ~default:"rm" in
      let ename = Option.value (str_field "engine" req) ~default:default_engine in
      match engine_of ename with
      | Error m -> Error m
      | Ok (ename, engine) -> (
          match parse_params ~op (field "params" req) with
          | Error m -> Error m
          | Ok (params, paramstr) -> (
              (* system constructors validate interval shapes with
                 exceptions; a daemon must turn those into errors *)
              match pack_of system params paramstr with
              | exception Invalid_argument m -> Error m
              | exception Failure m -> Error m
              | Error m -> Error m
              | Ok pack -> (
                  let limit = int_field "limit" req in
                  let deadline_s = float_field "deadline_s" req in
                  match op with
                  | "verify" -> (
                      let idx = Option.value (int_field "item" req) ~default:0 in
                      match List.nth_opt pack.pk_items idx with
                      | None ->
                          Error
                            (Printf.sprintf
                               "item %d out of range (%s has %d items)" idx
                               system
                               (List.length pack.pk_items))
                      | Some it ->
                          Ok
                            {
                              label = it.it_label;
                              op;
                              fingerprint = it.it_fingerprint engine;
                              checkpointable = true;
                              req_limit = limit;
                              req_deadline_s = deadline_s;
                              exec =
                                (fun ~limit ~deadline_s ~domains ~checkpoint
                                     ~resume ->
                                  it.it_exec engine ~limit ~deadline_s
                                    ~domains ~checkpoint ~resume);
                            })
                  | "margin" ->
                      Ok
                        {
                          label = system ^ " margin";
                          op;
                          fingerprint =
                            pack.pk_margin.mg_fp ~ename engine ~limit
                              ~deadline_s;
                          checkpointable = false;
                          req_limit = limit;
                          req_deadline_s = deadline_s;
                          exec =
                            (fun ~limit ~deadline_s ~domains ~checkpoint:_
                                 ~resume:_ ->
                              Ok
                                (pack.pk_margin.mg_run ~ename engine ~domains
                                   ~limit ~deadline_s));
                        }
                  | "simulate" -> (
                      let steps =
                        max 1 (min 5000
                                 (Option.value (int_field "steps" req)
                                    ~default:60))
                      in
                      let strategy =
                        Option.value (str_field "strategy" req)
                          ~default:"random"
                      in
                      let seed =
                        Option.value (int_field "seed" req) ~default:42
                      in
                      match strategy with
                      | "eager" | "lazy" | "random" ->
                          Ok
                            {
                              label = system ^ " simulate";
                              op;
                              fingerprint =
                                pack.pk_sim.sm_fp ~steps ~strategy ~seed
                                  ~deadline_s;
                              checkpointable = false;
                              req_limit = limit;
                              req_deadline_s = deadline_s;
                              exec =
                                (fun ~limit:_ ~deadline_s ~domains:_
                                     ~checkpoint:_ ~resume:_ ->
                                  Ok
                                    (pack.pk_sim.sm_run ~steps ~strategy
                                       ~seed ~deadline_s));
                            }
                      | other ->
                          Error
                            (Printf.sprintf
                               "unknown strategy %S (eager | lazy | random)"
                               other))
                  | other ->
                      Error
                        (Printf.sprintf
                           "unknown op %S (verify | margin | simulate | ping \
                            | stats | shutdown)"
                           other)))))
  | _ -> Error "request must be a JSON object"
