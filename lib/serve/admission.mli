(** Admission control: a bounded FIFO of pending jobs with in-flight
    coalescing and load shedding.

    Every request that is not a cache hit goes through {!try_admit}:

    - if a job with the same fingerprint is already queued or running,
      the request {e coalesces} onto it — one computation, many
      respondents, no extra queue slot ([serve.coalesced]);
    - else if the queue is full, the request is {e shed}: the caller
      answers UNKNOWN with a retry hint derived from the queue depth
      and an EWMA of recent job durations ([serve.shed]) — the daemon
      never hangs and never grows an unbounded backlog;
    - else it is enqueued ([serve.admitted], gauge
      [serve.queue_depth]).

    The queue is single-domain (the daemon's event loop); no locking. *)

type 'r t
(** ['r] is the respondent handle attached to each admitted job (the
    server uses [connection * request id]). *)

type 'r job = {
  fingerprint : string;
  request : Tm_obs.Json.t;  (** the parsed request that first created it *)
  mutable respondents : 'r list;  (** newest first *)
}

val create : max_depth:int -> 'r t
(** [max_depth >= 0]; depth 0 sheds every non-coalescible request. *)

type 'r admitted =
  | Admitted of 'r job  (** newly queued *)
  | Coalesced of 'r job  (** attached to an existing pending job *)
  | Shed of float  (** queue full; suggested retry delay in seconds *)

val try_admit :
  'r t -> fingerprint:string -> request:Tm_obs.Json.t -> 'r -> 'r admitted

val pop : 'r t -> 'r job option
(** Dequeue the oldest job and mark it running (still coalescible until
    {!finished}). *)

val finished : 'r t -> 'r job -> note_wall_s:float -> unit
(** Job answered: stop coalescing onto it and feed the duration EWMA
    that prices retry hints. *)

val depth : 'r t -> int
(** Queued jobs (excluding the one running). *)

val set_capacity : 'r t -> int -> unit
(** Tell admission how many live executor slots exist (gauge
    [serve.capacity]).  Defaults to 1 — the classic in-process daemon.
    The worker-mode server updates it every tick as workers die and
    respawn, so shed prices track real capacity: more workers cheapen
    the hint, zero live workers floors it at a full second.
    @raise Invalid_argument on a negative capacity. *)

val capacity : 'r t -> int

val drain : 'r t -> 'r job list
(** Remove and return every queued job, oldest first — the SIGTERM
    path answers them UNKNOWN-with-retry instead of dropping them. *)

val retry_hint_s : 'r t -> float
(** What a shed response would advise right now. *)
