module Interval = Tm_base.Interval
module Rational = Tm_base.Rational
module Time = Tm_base.Time

type t = (string * Interval.t) list

let of_list entries =
  List.iteri
    (fun i (c, _) ->
      List.iteri
        (fun j (c', _) ->
          if i < j && String.equal c c' then
            invalid_arg
              (Printf.sprintf "Boundmap.of_list: duplicate class %S" c))
        entries)
    entries;
  entries

let find t c =
  match List.assoc_opt c t with
  | Some iv -> iv
  | None ->
      invalid_arg (Printf.sprintf "Boundmap.find: class %S has no bounds" c)

let lower t c = Interval.lo (find t c)
let upper t c = Interval.hi (find t c)
let classes t = List.map fst t
(* Sorted by class name, not declaration order: parallel-merged margin
   reports and JSON dumps stay stable however the map was built. *)
let to_list t =
  List.sort (fun (a, _) (b, _) -> String.compare a b) t

let map f t = List.map (fun (c, iv) -> (c, f c iv)) t

let mem t c = List.mem_assoc c t

let covers t (a : ('s, 'a) Tm_ioa.Ioa.t) =
  match
    List.find_opt (fun c -> not (List.mem_assoc c t)) a.Tm_ioa.Ioa.classes
  with
  | None -> Ok ()
  | Some c -> Error (Printf.sprintf "class %S has no bounds" c)

let add t c iv =
  if List.mem_assoc c t then
    invalid_arg (Printf.sprintf "Boundmap.add: class %S already bound" c)
  else (c, iv) :: t

let is_integral t =
  List.for_all
    (fun (_, iv) ->
      Rational.is_integer (Interval.lo iv)
      &&
      match Interval.hi iv with
      | Time.Fin q -> Rational.is_integer q
      | Time.Inf -> true)
    t

(* LU bounds in the zone encoding's sense: the class clock is compared
   against b_l only by the guard (which only exists when b_l > 0) and
   against b_u only by the invariant (which only exists when b_u is
   finite).  [None] means the comparison never happens, so the clock is
   unbounded on that side for extrapolation purposes. *)
let lu_bounds t c =
  let iv = find t c in
  let l =
    let lo = Interval.lo iv in
    if Rational.sign lo > 0 then Some lo else None
  in
  let u =
    match Interval.hi iv with Time.Fin q -> Some q | Time.Inf -> None
  in
  (l, u)

let max_constant t =
  List.fold_left
    (fun acc (_, iv) ->
      let acc = Rational.max acc (Interval.lo iv) in
      match Interval.hi iv with
      | Time.Fin q -> Rational.max acc q
      | Time.Inf -> acc)
    Rational.zero t

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (c, iv) -> Format.fprintf fmt "%s -> %a@," c Interval.pp iv)
    t;
  Format.fprintf fmt "@]"
