(** Timing conditions (Section 2.3).

    A timing condition [(T_start, T_step, b, Π, S)] specifies upper and
    lower bounds on the time until the next occurrence of an action in
    [Π], measured from triggering start states and triggering steps;
    the measurement is abandoned if a state in the disabling set [S]
    intervenes.  Trigger sets and [Π]/[S] are represented as
    predicates. *)

type ('s, 'a) t = {
  cname : string;
  t_start : 's -> bool;  (** trigger start states [T_start] *)
  t_step : 's -> 'a -> 's -> bool;  (** trigger steps [T_step] *)
  bounds : Tm_base.Interval.t;  (** [b = [b_l, b_u]] *)
  in_pi : 'a -> bool;  (** membership in the action set [Π] *)
  in_s : 's -> bool;  (** membership in the disabling set [S] *)
}

val make :
  name:string ->
  ?t_start:('s -> bool) ->
  ?t_step:('s -> 'a -> 's -> bool) ->
  bounds:Tm_base.Interval.t ->
  in_pi:('a -> bool) ->
  ?in_s:('s -> bool) ->
  unit ->
  ('s, 'a) t
(** Omitted trigger components default to empty sets; [in_s] defaults
    to the empty disabling set. *)

val well_formed_on :
  ('s, 'a) t ->
  starts:'s list ->
  steps:('s * 'a * 's) list ->
  (unit, string) result
(** Checks the two technical requirements of Section 2.3 on a sample:
    no trigger start state lies in [S], and no trigger step ends in
    [S]. *)

val upper_bounded : ('s, 'a) t -> bool
(** [b_u < ∞]. *)
