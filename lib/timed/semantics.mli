(** Satisfaction of timing conditions by timed sequences.

    Implements, as executable checks over finite timed sequences:
    - Definition 2.1 — timed executions of a timed automaton [(A, b)];
    - Definition 2.2 — a timed sequence satisfies a timing condition;
    - Definition 3.1 — semi-satisfaction (the safety part only: an
      upper bound is excused when the sequence ends before the
      deadline);
    - the boundmap conditions [U_b = { cond(C) }] of Section 2.3, whose
      equivalence with Definition 2.1 is Lemma 2.1 / Corollary 2.2.

    A finite sequence checked with {!satisfies} is treated as complete:
    a pending deadline with no later event is a violation.  Use
    {!semi_satisfies} for prefixes of ongoing executions. *)

type which = Lower | Upper

type 'a violation = {
  vcond : string;  (** name of the violated condition *)
  vwhich : which;
  vtrigger : int;  (** index of the triggering event (0 = start state) *)
  vtrigger_time : Tm_base.Rational.t;
  vdeadline : Tm_base.Time.t;
      (** absolute bound that was crossed: [t_i + b_u] or [t_i + b_l] *)
  voffender : int option;
      (** for lower-bound violations, the index of the too-early [Π]
          event *)
}

val pp_violation : Format.formatter -> 'a violation -> unit

val satisfies :
  ('s, 'a) Tseq.t -> ('s, 'a) Condition.t -> 'a violation list
(** Definition 2.2 on a finite sequence treated as complete; empty list
    means the condition holds. *)

val semi_satisfies :
  ('s, 'a) Tseq.t -> ('s, 'a) Condition.t -> 'a violation list
(** Definition 3.1. *)

val satisfies_all :
  ('s, 'a) Tseq.t -> ('s, 'a) Condition.t list -> 'a violation list

val semi_satisfies_all :
  ('s, 'a) Tseq.t -> ('s, 'a) Condition.t list -> 'a violation list

val cond_of_class :
  ('s, 'a) Tm_ioa.Ioa.t -> Boundmap.t -> string -> ('s, 'a) Condition.t
(** [cond(C)] from Section 2.3: triggers are start-or-(re)enabling
    points of class [C], [Π = C], [S = disabled(A, C)]. *)

val conds_of_boundmap :
  ('s, 'a) Tm_ioa.Ioa.t -> Boundmap.t -> ('s, 'a) Condition.t list
(** The set [U_b]: one condition per partition class. *)

val is_timed_execution :
  complete:bool ->
  ('s, 'a) Tm_ioa.Ioa.t ->
  Boundmap.t ->
  ('s, 'a) Tseq.t ->
  ('a violation list, string) result
(** Direct implementation of Definition 2.1.  Checks that [ord α] is an
    execution of [A] (otherwise [Error]), then checks both bound
    conditions per class.  [complete = false] excuses upper bounds that
    are still pending at the end of the sequence (the Definition 3.1
    reading), which is the right notion for prefixes. *)
