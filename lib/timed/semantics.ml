module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Ioa = Tm_ioa.Ioa
module Execution = Tm_ioa.Execution

type which = Lower | Upper

type 'a violation = {
  vcond : string;
  vwhich : which;
  vtrigger : int;
  vtrigger_time : Rational.t;
  vdeadline : Time.t;
  voffender : int option;
}

let pp_violation fmt v =
  Format.fprintf fmt "%s bound of %S violated (trigger at event %d, t=%a, deadline %a%s)"
    (match v.vwhich with Lower -> "lower" | Upper -> "upper")
    v.vcond v.vtrigger Rational.pp v.vtrigger_time Time.pp v.vdeadline
    (match v.voffender with
    | None -> ""
    | Some j -> Printf.sprintf ", offending event %d" j)

(* Unpacked view of a timed sequence: [states.(i)] for i in 0..m,
   [acts.(j-1)] / [times.(j-1)] for events j in 1..m. *)
type ('s, 'a) view = {
  m : int;
  state : int -> 's;
  act : int -> 'a;  (* event index 1..m *)
  time : int -> Rational.t;  (* event index 1..m *)
}

let view (seq : ('s, 'a) Tseq.t) =
  let states = Array.of_list (Tseq.states seq) in
  let moves = Array.of_list seq.Tseq.moves in
  {
    m = Array.length moves;
    state = (fun i -> states.(i));
    act = (fun j -> fst (fst moves.(j - 1)));
    time = (fun j -> snd (fst moves.(j - 1)));
  }

(* Triggering points of a condition in a sequence: event index (0 for
   the start-state trigger) paired with the trigger time. *)
let triggers (c : ('s, 'a) Condition.t) v =
  let from_start =
    if c.Condition.t_start (v.state 0) then [ (0, Rational.zero) ] else []
  in
  let rec steps j acc =
    if j > v.m then List.rev acc
    else
      let acc =
        if c.Condition.t_step (v.state (j - 1)) (v.act j) (v.state j) then
          (j, v.time j) :: acc
        else acc
      in
      steps (j + 1) acc
  in
  from_start @ steps 1 []

let check_upper ~complete (c : ('s, 'a) Condition.t) v (i, ti) =
  match Interval.hi c.Condition.bounds with
  | Time.Inf -> None
  | Time.Fin bu ->
      let deadline = Rational.add ti bu in
      let viol () =
        Some
          {
            vcond = c.Condition.cname;
            vwhich = Upper;
            vtrigger = i;
            vtrigger_time = ti;
            vdeadline = Time.Fin deadline;
            voffender = None;
          }
      in
      let rec scan j =
        if j > v.m then if complete then viol () else None
        else if Rational.(v.time j > deadline) then viol ()
        else if
          c.Condition.in_pi (v.act j) || c.Condition.in_s (v.state j)
        then None
        else scan (j + 1)
      in
      scan (i + 1)

let check_lower (c : ('s, 'a) Condition.t) v (i, ti) =
  let bl = Interval.lo c.Condition.bounds in
  if Rational.(bl = Rational.zero) then None
  else
    let deadline = Rational.add ti bl in
    let rec scan j seen_s =
      if j > v.m then None
      else if Rational.(v.time j >= deadline) then None
      else if c.Condition.in_pi (v.act j) && not seen_s then
        Some
          {
            vcond = c.Condition.cname;
            vwhich = Lower;
            vtrigger = i;
            vtrigger_time = ti;
            vdeadline = Time.Fin deadline;
            voffender = Some j;
          }
      else scan (j + 1) (seen_s || c.Condition.in_s (v.state j))
    in
    scan (i + 1) false

let check ~complete seq c =
  let v = view seq in
  List.filter_map
    (fun tr ->
      match check_upper ~complete c v tr with
      | Some viol -> Some viol
      | None -> check_lower c v tr)
    (triggers c v)

let satisfies seq c = check ~complete:true seq c
let semi_satisfies seq c = check ~complete:false seq c
let satisfies_all seq cs = List.concat_map (satisfies seq) cs
let semi_satisfies_all seq cs = List.concat_map (semi_satisfies seq) cs

let cond_of_class (a : ('s, 'a) Ioa.t) bm cl =
  let enabled s = Ioa.class_enabled a cl s in
  let is_start s = List.exists (a.Ioa.equal_state s) a.Ioa.start in
  let in_class act = a.Ioa.class_of act = Some cl in
  Condition.make ~name:("cond(" ^ cl ^ ")")
    ~t_start:(fun s -> is_start s && enabled s)
    ~t_step:(fun s' act s ->
      enabled s && ((not (enabled s')) || in_class act))
    ~bounds:(Boundmap.find bm cl) ~in_pi:in_class
    ~in_s:(fun s -> not (enabled s))
    ()

let conds_of_boundmap a bm =
  List.map (cond_of_class a bm) a.Ioa.classes

(* Direct implementation of Definition 2.1. *)
let is_timed_execution ~complete (a : ('s, 'a) Ioa.t) bm seq =
  if not (Tseq.times_ok seq) then Error "times are not nondecreasing"
  else if not (Execution.is_execution a (Tseq.ord seq)) then
    Error "ord(alpha) is not an execution of A"
  else begin
    let v = view seq in
    let violations = ref [] in
    List.iter
      (fun cl ->
        let enabled s = Ioa.class_enabled a cl s in
        let in_class act = a.Ioa.class_of act = Some cl in
        let bounds = Boundmap.find bm cl in
        (* Trigger indices per Definition 2.1: s_i enabled, and i = 0 or
           s_{i-1} disabled or pi_i in C. *)
        let trigger_points =
          let pts = ref [] in
          for i = v.m downto 0 do
            if
              enabled (v.state i)
              && (i = 0
                 || (not (enabled (v.state (i - 1))))
                 || in_class (v.act i))
            then
              pts :=
                (i, if i = 0 then Rational.zero else v.time i) :: !pts
          done;
          !pts
        in
        List.iter
          (fun (i, ti) ->
            (match Interval.hi bounds with
            | Time.Inf -> ()
            | Time.Fin bu ->
                let deadline = Rational.add ti bu in
                let rec scan j =
                  if j > v.m then begin
                    if complete then
                      violations :=
                        {
                          vcond = "class " ^ cl;
                          vwhich = Upper;
                          vtrigger = i;
                          vtrigger_time = ti;
                          vdeadline = Time.Fin deadline;
                          voffender = None;
                        }
                        :: !violations
                  end
                  else if Rational.(v.time j > deadline) then
                    violations :=
                      {
                        vcond = "class " ^ cl;
                        vwhich = Upper;
                        vtrigger = i;
                        vtrigger_time = ti;
                        vdeadline = Time.Fin deadline;
                        voffender = None;
                      }
                      :: !violations
                  else if in_class (v.act j) || not (enabled (v.state j))
                  then ()
                  else scan (j + 1)
                in
                scan (i + 1));
            let bl = Interval.lo bounds in
            if Rational.(bl > Rational.zero) then begin
              let deadline = Rational.add ti bl in
              let rec scan j =
                if j > v.m then ()
                else if Rational.(v.time j >= deadline) then ()
                else if in_class (v.act j) then
                  violations :=
                    {
                      vcond = "class " ^ cl;
                      vwhich = Lower;
                      vtrigger = i;
                      vtrigger_time = ti;
                      vdeadline = Time.Fin deadline;
                      voffender = Some j;
                    }
                    :: !violations
                else scan (j + 1)
              in
              scan (i + 1)
            end)
          trigger_points)
      a.Ioa.classes;
    Ok (List.rev !violations)
  end
