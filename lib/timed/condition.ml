module Interval = Tm_base.Interval
module Time = Tm_base.Time

type ('s, 'a) t = {
  cname : string;
  t_start : 's -> bool;
  t_step : 's -> 'a -> 's -> bool;
  bounds : Interval.t;
  in_pi : 'a -> bool;
  in_s : 's -> bool;
}

let make ~name ?(t_start = fun _ -> false) ?(t_step = fun _ _ _ -> false)
    ~bounds ~in_pi ?(in_s = fun _ -> false) () =
  { cname = name; t_start; t_step; bounds; in_pi; in_s }

let well_formed_on c ~starts ~steps =
  match List.find_opt (fun s -> c.t_start s && c.in_s s) starts with
  | Some _ ->
      Error
        (Printf.sprintf "condition %S: a trigger start state is in S" c.cname)
  | None -> (
      match
        List.find_opt
          (fun (s', a, s) -> c.t_step s' a s && c.in_s s)
          steps
      with
      | Some _ ->
          Error
            (Printf.sprintf "condition %S: a trigger step ends in S" c.cname)
      | None -> Ok ())

let upper_bounded c = Time.is_finite (Interval.hi c.bounds)
