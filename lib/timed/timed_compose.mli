(** Composition of timed automata (footnote 2 of the paper).

    The paper models each system as a single timed automaton whose
    underlying I/O automaton is a composition; [MMT88] develops the
    equivalent view of composing the timed automata themselves, with
    theorems showing the two coincide.  This module provides that
    second view: compose [(A1, b1)] and [(A2, b2)] into
    [(A1 ∥ A2, b1 ∪ b2)].  Since boundmaps attach to partition classes
    and composition keeps the classes of both components (requiring
    them disjoint), the union boundmap is the composition's boundmap —
    which is exactly why the two views coincide; the test suite checks
    the resulting timed semantics agree on both constructions. *)

val binary :
  name:string ->
  ('s1, 'a) Tm_ioa.Ioa.t * Boundmap.t ->
  ('s2, 'a) Tm_ioa.Ioa.t * Boundmap.t ->
  ('s1 * 's2, 'a) Tm_ioa.Ioa.t * Boundmap.t
(** @raise Tm_ioa.Compose.Incompatible on incompatible components.
    @raise Invalid_argument if the boundmaps share a class or miss one
    of their automaton's classes. *)

val array :
  name:string ->
  (('s, 'a) Tm_ioa.Ioa.t * Boundmap.t) array ->
  ('s array, 'a) Tm_ioa.Ioa.t * Boundmap.t
