module Rational = Tm_base.Rational

type ('s, 'a) t = {
  first : 's;
  moves : (('a * Rational.t) * 's) list;
}

let of_moves first moves = { first; moves }
let length t = List.length t.moves

let last_state t =
  match List.rev t.moves with [] -> t.first | (_, s) :: _ -> s

let t_end t =
  match List.rev t.moves with
  | [] -> Rational.zero
  | ((_, tm), _) :: _ -> tm

let times_ok t =
  let rec go prev = function
    | [] -> true
    | ((_, tm), _) :: rest -> Rational.(prev <= tm) && go tm rest
  in
  go Rational.zero t.moves

let ord t =
  Tm_ioa.Execution.of_states t.first
    (List.map (fun ((act, _), s) -> (act, s)) t.moves)

let timed_schedule t = List.map fst t.moves

let timed_behavior (a : ('s, 'a) Tm_ioa.Ioa.t) t =
  List.filter
    (fun (act, _) -> Tm_ioa.Ioa.is_external (a.Tm_ioa.Ioa.kind_of act))
    (timed_schedule t)

let append t act tm s = { t with moves = t.moves @ [ ((act, tm), s) ] }

let prefix n t =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: xs -> x :: take (n - 1) xs
  in
  { t with moves = take n t.moves }

let states t = t.first :: List.map snd t.moves

let events t =
  let rec go pre = function
    | [] -> []
    | ((act, tm), post) :: rest -> (pre, act, tm, post) :: go post rest
  in
  go t.first t.moves

let pp (a : ('s, 'a) Tm_ioa.Ioa.t) fmt t =
  Format.fprintf fmt "@[<v>%a" a.Tm_ioa.Ioa.pp_state t.first;
  List.iter
    (fun ((act, tm), s) ->
      Format.fprintf fmt "@,--(%a @@ %a)--> %a" a.Tm_ioa.Ioa.pp_action act
        Rational.pp tm a.Tm_ioa.Ioa.pp_state s)
    t.moves;
  Format.fprintf fmt "@]"
