(** Timed sequences (Section 2.2): alternating states and
    (action, time) pairs with nondecreasing times, starting at time 0.

    A finite timed sequence is represented like an execution whose
    moves carry occurrence times.  [ord] strips the times, recovering
    the underlying ordinary execution fragment. *)

type ('s, 'a) t = {
  first : 's;
  moves : (('a * Tm_base.Rational.t) * 's) list;
}

val of_moves : 's -> (('a * Tm_base.Rational.t) * 's) list -> ('s, 'a) t
val length : ('s, 'a) t -> int
val last_state : ('s, 'a) t -> 's

val t_end : ('s, 'a) t -> Tm_base.Rational.t
(** Time of the last event, or 0 for an event-free sequence. *)

val times_ok : ('s, 'a) t -> bool
(** Times are nonnegative and nondecreasing. *)

val ord : ('s, 'a) t -> ('s, 'a) Tm_ioa.Execution.t
(** The "ordinary part": the sequence with time components removed. *)

val timed_schedule : ('s, 'a) t -> ('a * Tm_base.Rational.t) list

val timed_behavior :
  ('s, 'a) Tm_ioa.Ioa.t -> ('s, 'a) t -> ('a * Tm_base.Rational.t) list
(** The subsequence of (action, time) pairs with external actions. *)

val append : ('s, 'a) t -> 'a -> Tm_base.Rational.t -> 's -> ('s, 'a) t
val prefix : int -> ('s, 'a) t -> ('s, 'a) t
val states : ('s, 'a) t -> 's list

val events : ('s, 'a) t -> ('s * 'a * Tm_base.Rational.t * 's) list
(** (pre-state, action, time, post-state) per move, in order. *)

val pp :
  ('s, 'a) Tm_ioa.Ioa.t -> Format.formatter -> ('s, 'a) t -> unit
