module Ioa = Tm_ioa.Ioa
module Compose = Tm_ioa.Compose

let check_covers (a : ('s, 'a) Ioa.t) bm =
  match Boundmap.covers bm a with
  | Ok () -> ()
  | Error m ->
      invalid_arg ("Timed_compose: component boundmap incomplete: " ^ m)

let union_boundmaps b1 b2 =
  List.fold_left
    (fun acc c -> Boundmap.add acc c (Boundmap.find b2 c))
    b1 (Boundmap.classes b2)

let binary ~name (a1, b1) (a2, b2) =
  check_covers a1 b1;
  check_covers a2 b2;
  let composed = Compose.binary ~name a1 a2 in
  (composed, union_boundmaps b1 b2)

let array ~name components =
  Array.iter (fun (a, b) -> check_covers a b) components;
  let composed = Compose.array ~name (Array.map fst components) in
  let bm =
    Array.fold_left
      (fun acc (_, b) ->
        match acc with
        | None -> Some b
        | Some acc -> Some (union_boundmaps acc b))
      None components
  in
  match bm with
  | Some bm -> (composed, bm)
  | None -> invalid_arg "Timed_compose.array: empty composition"
