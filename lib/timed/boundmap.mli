(** Boundmaps (Section 2.2).

    A boundmap assigns to each partition class of an I/O automaton a
    closed interval [[b_l(C), b_u(C)]] with finite lower bound and
    nonzero upper bound: the range of possible lengths of time between
    successive chances for the class to perform an action.  A timed
    automaton is a pair of an automaton and a boundmap. *)

type t

val of_list : (string * Tm_base.Interval.t) list -> t
(** @raise Invalid_argument on duplicate class names. *)

val find : t -> string -> Tm_base.Interval.t
(** @raise Invalid_argument naming the class if it has no bounds
    assigned. *)

val lower : t -> string -> Tm_base.Rational.t
(** [b_l(C)]. *)

val upper : t -> string -> Tm_base.Time.t
(** [b_u(C)]. *)

val classes : t -> string list

val to_list : t -> (string * Tm_base.Interval.t) list
(** The bindings sorted by class name — deterministic whatever order
    the map was declared or merged in ({!classes} keeps declaration
    order). *)

val map : (string -> Tm_base.Interval.t -> Tm_base.Interval.t) -> t -> t
(** Rewrite every interval (class set unchanged) — the primitive the
    fault-perturbation layer builds on. *)

val mem : t -> string -> bool

val covers : t -> ('s, 'a) Tm_ioa.Ioa.t -> (unit, string) result
(** Every partition class of the automaton has an interval. *)

val add : t -> string -> Tm_base.Interval.t -> t
(** @raise Invalid_argument if the class is already bound. *)

val max_constant : t -> Tm_base.Rational.t
(** The largest finite endpoint appearing in the map (used to pick
    normalization clamps and zone extrapolation constants). *)

val is_integral : t -> bool
(** Every finite interval endpoint is an integer.  True for all shipped
    systems; the zone engine uses it to dispatch to the packed-int DBM
    kernel.  Margin's mediant probes perturb endpoints to non-integer
    rationals, which this probe rejects — that is what transparently
    pins the rational kernel during a margin walk. *)

val lu_bounds :
  t -> string -> Tm_base.Rational.t option * Tm_base.Rational.t option
(** [(l, u)] for a class clock in the LU-extrapolation sense: [l] is
    [b_l] when positive (the guard constant), [u] is [b_u] when finite
    (the invariant constant); [None] when the respective comparison
    does not exist in the zone encoding, letting extrapolation discard
    that side entirely (clock-activity reduction).
    @raise Invalid_argument like {!find} on an unbound class. *)

val pp : Format.formatter -> t -> unit
