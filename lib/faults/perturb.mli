(** Composable fault models over boundmaps.

    A perturbation rewrites the intervals of a boundmap — wider timing
    envelopes, slower/faster clocks, replaced crash-rate bounds — and
    is the unit the robustness analysis quantifies over: {!Margin}
    searches for the largest perturbation magnitude under which a
    property still verifies.

    Widening is monotone in the timed-trace preorder: every interval of
    [widen e1 bm] is a subset of the matching interval of [widen e2 bm]
    when [e1 <= e2], so the perturbed automaton's timed executions only
    grow with [e].  Hence a property verified at [e2] is verified at
    every [e1 <= e2] — the fact the margin search and the metamorphic
    test suite both rely on.  The same holds for [drift]. *)

type spec =
  | Widen of Tm_base.Rational.t
      (** symmetric jitter on every class: [lo - e] (floored at 0),
          [hi + e] *)
  | Widen_class of string * Tm_base.Rational.t
      (** the same, on one class only *)
  | Drift of Tm_base.Rational.t
      (** relative clock drift [r >= 0] on every class:
          [lo / (1+r)], [hi * (1+r)] *)
  | Drift_class of string * Tm_base.Rational.t
  | Rebound of string * Tm_base.Interval.t
      (** replace one class's interval outright (e.g. changed crash
          rate: give a crash class finite bounds) *)
  | Seq of spec list  (** left-to-right composition *)

(** {1 Constructors} — the [Rational.t -> spec] shapes double as the
    one-parameter families {!Margin.search} bisects over. *)

val widen : Tm_base.Rational.t -> spec
val widen_class : string -> Tm_base.Rational.t -> spec
val drift : Tm_base.Rational.t -> spec
val drift_class : string -> Tm_base.Rational.t -> spec
val rebound : string -> Tm_base.Interval.t -> spec
val seq : spec list -> spec

val apply :
  spec -> Tm_timed.Boundmap.t -> (Tm_timed.Boundmap.t, string) result
(** Apply the perturbation, validating as it goes: magnitudes must be
    nonnegative, per-class specs must name a class of the map, and
    every rewritten interval must still be a legal boundmap interval
    ([0 <= lo <= hi], [hi <> 0]). *)

val apply_exn : spec -> Tm_timed.Boundmap.t -> Tm_timed.Boundmap.t
(** @raise Invalid_argument on what {!apply} reports as [Error]. *)

val pp : Format.formatter -> spec -> unit
val to_string : spec -> string
