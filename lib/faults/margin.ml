module Rational = Tm_base.Rational
module Boundmap = Tm_timed.Boundmap
module Reach = Tm_zones.Reach
module Metrics = Tm_obs.Metrics
module Json = Tm_obs.Json

let c_probes = Metrics.counter "faults.margin_probes"

type status = Sat | Unsat | Unknown of string

type verdict = {
  threshold : Rational.t;
  attained : bool;
  refuted_at : Rational.t option;
  exact : bool;
  probes : int;
}

type row = { cls : string; verdict : (verdict, string) result }

type report = {
  subject : string;
  overall : (verdict, string) result;
  per_class : row list;
  critical : string option;
}

let ( let* ) = Result.bind

(* Mediant of two reduced fractions.  On a unimodular bracket this is
   the Stern–Brocot descent: the mediant is already reduced and the
   bracket stays unimodular, so every rational inside is reachable. *)
let mediant lo hi =
  Rational.make
    (lo.Rational.num + hi.Rational.num)
    (lo.Rational.den + hi.Rational.den)

let search ?(eps_max = 8) ?(stable = 12) ?(max_probes = 96) ~family ~check bm
    =
  if eps_max < 1 then invalid_arg "Margin.search: eps_max must be >= 1";
  if stable < 2 then invalid_arg "Margin.search: stable must be >= 2";
  let probes = ref 0 in
  let probe e =
    match Perturb.apply (family e) bm with
    | Error m -> Error m
    | Ok bm' -> (
        incr probes;
        Metrics.incr c_probes;
        let res =
          match check bm' with
          | Sat -> Ok true
          | Unsat -> Ok false
          | Unknown m ->
              Error
                (Printf.sprintf "inconclusive at e = %s: %s"
                   (Rational.to_string e) m)
        in
        (* Probe events stream from the pool workers [report] fans
           over; the sink serializes concurrent emissions. *)
        Tm_obs.Events.emit "faults.probe"
          [
            ("e", Json.String (Rational.to_string e));
            ( "sat",
              match res with
              | Ok b -> Json.Bool b
              | Error _ -> Json.Null );
          ];
        res)
  in
  let* sat0 = probe Rational.zero in
  if not sat0 then Error "refuted with no perturbation (e = 0)"
  else
    let* sat_top = probe (Rational.of_int eps_max) in
    if sat_top then
      Ok
        {
          threshold = Rational.of_int eps_max;
          attained = true;
          refuted_at = None;
          exact = false;
          probes = !probes;
        }
    else
      (* Bracket e* between consecutive integers: [ilo] verified,
         [ihi = ilo + 1] refuted.  This keeps the rational bracket
         below unimodular, which the exactness argument needs. *)
      let rec int_bracket ilo ihi =
        if ihi - ilo <= 1 then Ok (ilo, ihi)
        else
          let mid = ilo + ((ihi - ilo) / 2) in
          let* sat = probe (Rational.of_int mid) in
          if sat then int_bracket mid ihi else int_bracket ilo mid
      in
      let* ilo, ihi = int_bracket 0 eps_max in
      (* Mediant walk: [lo] always verified, [hi] always refuted.  The
         walk reaches e* exactly; from then on only one endpoint ever
         moves, and which one it is tells whether e* is attained. *)
      let rec walk lo hi sat_run unsat_run =
        if unsat_run >= stable then
          Ok
            {
              threshold = lo;
              attained = true;
              refuted_at = Some hi;
              exact = true;
              probes = !probes;
            }
        else if sat_run >= stable then
          Ok
            {
              threshold = hi;
              attained = false;
              refuted_at = Some hi;
              exact = true;
              probes = !probes;
            }
        else if !probes >= max_probes then
          Ok
            {
              threshold = lo;
              attained = true;
              refuted_at = Some hi;
              exact = false;
              probes = !probes;
            }
        else
          let m = mediant lo hi in
          let* sat = probe m in
          if sat then walk m hi (sat_run + 1) 0
          else walk lo m 0 (unsat_run + 1)
      in
      walk (Rational.of_int ilo) (Rational.of_int ihi) 0 0

let report ?eps_max ?stable ?max_probes ?(domains = 1) ~subject ~check bm =
  (* The overall search and each per-class search are independent
     Stern–Brocot descents, so they fan out over the pool as whole
     tasks (the walk inside a search is adaptive and stays
     sequential).  Each search draws a self-contained probe sequence,
     so verdicts and probe counts are identical at any domain count;
     with [domains = 1] the inline pool runs them in the exact
     sequential order. *)
  let tasks =
    (fun () ->
      `Overall
        (search ?eps_max ?stable ?max_probes ~family:Perturb.widen ~check bm))
    :: List.map
         (fun cls () ->
           `Row
             {
               cls;
               verdict =
                 search ?eps_max ?stable ?max_probes
                   ~family:(Perturb.widen_class cls) ~check bm;
             })
         (Boundmap.classes bm)
  in
  let results =
    Tm_obs.Tracing.with_span "faults.margin_report"
      ~args:[ ("subject", subject) ]
    @@ fun () ->
    Tm_par.Pool.run ~domains (fun p ->
        Tm_par.Pool.map_list p (fun task -> task ()) tasks)
  in
  let overall =
    match results with
    | `Overall v :: _ -> v
    | _ -> assert false
  in
  let per_class =
    List.filter_map (function `Row r -> Some r | `Overall _ -> None) results
  in
  let critical =
    List.fold_left
      (fun acc r ->
        match r.verdict with
        | Ok v when v.refuted_at <> None -> (
            match acc with
            | Some (_, best) when Rational.(best <= v.threshold) -> acc
            | _ -> Some (r.cls, v.threshold))
        | Ok _ | Error _ -> acc)
      None per_class
    |> Option.map fst
  in
  { subject; overall; per_class; critical }

(* Mediant probes produce non-integral boundmaps, which the packed-int
   kernel rejects (it refuses to truncate).  [Reach.Auto] already
   re-checks integrality per probe, but a caller who forced the int
   kernel explicitly must be pinned back onto a rational kernel before
   a walk starts — same exploration, same verdicts, no truncation. *)
let probe_engine ~name (e : (module Reach.S)) : (module Reach.S) =
  if String.equal name "int" then (module Reach.Default) else e

let condition_status (module E : Reach.S) ?limit ?deadline_s a c bm =
  match E.check_condition ?limit ?deadline_s a bm c with
  | Reach.Verified _ -> Sat
  | Reach.Lower_violation _ | Reach.Upper_violation _ -> Unsat
  | Reach.Unknown e -> Unknown e.Reach.reason
  | Reach.Unsupported m -> Unknown ("unsupported: " ^ m)

let invariant_status (module E : Reach.S) ?limit ?deadline_s a pred bm =
  match E.check_state_invariant ?limit ?deadline_s a bm pred with
  | Ok _ -> Sat
  | Error _ -> Unsat
  | exception Reach.Out_of_budget e -> Unknown e.Reach.reason

let pp_verdict fmt v =
  if v.refuted_at = None then
    Format.fprintf fmt ">= %s (censored, %d probes)"
      (Rational.to_string v.threshold)
      v.probes
  else
    Format.fprintf fmt "%s (%s%s, %d probes%s)"
      (Rational.to_string v.threshold)
      (if v.attained then "attained" else "open")
      (if v.exact then ", exact" else ", inexact")
      v.probes
      (match v.refuted_at with
      | Some r -> Printf.sprintf "; refuted at %s" (Rational.to_string r)
      | None -> "")

let verdict_to_json = function
  | Error m -> Json.Obj [ ("error", Json.String m) ]
  | Ok v ->
      Json.Obj
        [
          ("threshold", Json.String (Rational.to_string v.threshold));
          ("attained", Json.Bool v.attained);
          ("exact", Json.Bool v.exact);
          ( "refuted_at",
            match v.refuted_at with
            | Some r -> Json.String (Rational.to_string r)
            | None -> Json.Null );
          ("probes", Json.Int v.probes);
        ]

let to_json r =
  Json.Obj
    [
      ("subject", Json.String r.subject);
      ("overall", verdict_to_json r.overall);
      ( "per_class",
        Json.Obj
          (List.map (fun row -> (row.cls, verdict_to_json row.verdict))
             r.per_class) );
      ( "critical",
        match r.critical with
        | Some c -> Json.String c
        | None -> Json.Null );
    ]
