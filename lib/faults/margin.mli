(** Exact robustness margins by rational bisection.

    For a one-parameter perturbation family [family : e -> spec] that
    only loosens bounds as [e] grows (e.g. {!Perturb.widen}), the set
    of magnitudes under which a property verifies is downward closed,
    so it has a single threshold

      [e* = sup { e | check (apply (family e) bm) = Sat }].

    {!search} finds [e*] exactly when it is rational, which it always
    is here: the zone engine compares clock values against boundmap
    constants, so verdict flips happen where perturbed endpoints meet,
    i.e. at small rationals.  The search first brackets [e*] between
    consecutive integers, then walks the Stern–Brocot tree of the unit
    bracket: probe the mediant of the bracket, move one endpoint,
    repeat.  Because the integer bracket is unimodular, every rational
    in it is reached by some mediant, and once a probe hits [e*]
    exactly the walk moves the *other* endpoint forever after —
    detected as [stable] consecutive one-sided moves, which also tells
    whether the supremum is attained ([check] still Sat at [e*]) or
    open (Sat strictly below only, e.g. Fischer's [a < b]).  A
    one-sided run can also come from a continued-fraction coefficient
    [>= stable] in [e*]; for the small-denominator thresholds of timing
    systems this does not occur, and a run capped by [max_probes] is
    reported with [exact = false] rather than trusted. *)

type status = Sat | Unsat | Unknown of string

type verdict = {
  threshold : Tm_base.Rational.t;  (** [e*] *)
  attained : bool;
      (** the property still holds at [e*] itself (when [false], every
          probe at or above [e*] refuted, every probe below verified) *)
  refuted_at : Tm_base.Rational.t option;
      (** tightest refuting magnitude probed; [None] when the search
          never saw a refutation (censored at [eps_max]) *)
  exact : bool;
  probes : int;
}

type row = { cls : string; verdict : (verdict, string) result }

type report = {
  subject : string;
  overall : (verdict, string) result;  (** widening every class at once *)
  per_class : row list;  (** widening one class at a time *)
  critical : string option;
      (** class with the smallest non-censored per-class margin — the
          bound the property is most sensitive to *)
}

val search :
  ?eps_max:int ->
  ?stable:int ->
  ?max_probes:int ->
  family:(Tm_base.Rational.t -> Perturb.spec) ->
  check:(Tm_timed.Boundmap.t -> status) ->
  Tm_timed.Boundmap.t ->
  (verdict, string) result
(** [Error] when the unperturbed property already refutes, a probe
    returns [Unknown] (budget exhausted), or the family is invalid.
    Censored at [eps_max] (default [8]; [exact = false],
    [refuted_at = None]) when even the largest probe verifies.
    [stable] defaults to [12], [max_probes] to [96]. *)

val report :
  ?eps_max:int ->
  ?stable:int ->
  ?max_probes:int ->
  ?domains:int ->
  subject:string ->
  check:(Tm_timed.Boundmap.t -> status) ->
  Tm_timed.Boundmap.t ->
  report
(** {!search} over {!Perturb.widen} plus {!Perturb.widen_class} for
    every class of the map, and the sensitivity verdict.  With
    [domains > 1] the independent searches (overall + one per class)
    fan out over a [Tm_par.Pool]; the report — verdicts, probe counts,
    [faults.margin_probes] totals — is identical at any domain count.
    [check] then runs on worker domains and must be self-contained
    (the zone-engine adapters below are). *)

val probe_engine :
  name:string -> (module Tm_zones.Reach.S) -> (module Tm_zones.Reach.S)
(** The engine margin probes must run on, given the engine the caller
    selected under [name].  A forced ["int"] engine is replaced by the
    fast rational engine: mediant probes perturb boundmaps to
    non-integer rationals, which the packed-int kernel rejects rather
    than truncates.  Every other engine (including ["auto"], which
    re-checks integrality per probe on its own) passes through. *)

(** {1 Property checks}

    Adapters from the zone engine to [check] functions; pick the engine
    as a first-class module so margins can be cross-checked between
    kernels. *)

val condition_status :
  (module Tm_zones.Reach.S) ->
  ?limit:int ->
  ?deadline_s:float ->
  ('s, 'a) Tm_ioa.Ioa.t ->
  ('s, 'a) Tm_timed.Condition.t ->
  Tm_timed.Boundmap.t ->
  status

val invariant_status :
  (module Tm_zones.Reach.S) ->
  ?limit:int ->
  ?deadline_s:float ->
  ('s, 'a) Tm_ioa.Ioa.t ->
  ('s -> bool) ->
  Tm_timed.Boundmap.t ->
  status

val pp_verdict : Format.formatter -> verdict -> unit
val to_json : report -> Tm_obs.Json.t
