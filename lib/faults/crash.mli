(** Crash-stop fault transformer.

    [automaton ~kill a] composes [a] with a one-shot crash event: a new
    always-enabled [Crash] output (its own partition class) that, when
    it fires, permanently disables every action whose class is in
    [kill].  States carry an [up] flag; the base behavior is untouched
    while [up] holds, so the transformed automaton restricted to
    crash-free executions is isomorphic to the original — the same
    argument as dummification (Section 5).

    A crashed system may have only finite executions left (every class
    died), which Theorem 3.4-style mapping proofs and the simulator's
    deadlock discipline both dislike; {!live} composes with
    {!Tm_core.Dummify} so timed executions stay infinite
    (Theorem 5.4). *)

type 'a action = Step of 'a | Crash
type 's state = { base : 's; up : bool }

val fault_class : string
(** Default partition class of the crash event ("FAULT" — not "CRASH",
    which the failure-detector system already uses). *)

val automaton :
  ?class_name:string ->
  kill:string list ->
  ('s, 'a) Tm_ioa.Ioa.t ->
  ('s state, 'a action) Tm_ioa.Ioa.t
(** @raise Invalid_argument if [kill] names a class the automaton does
    not have, or if the crash class name is already taken. *)

val boundmap :
  ?class_name:string ->
  crash_bounds:Tm_base.Interval.t ->
  Tm_timed.Boundmap.t ->
  Tm_timed.Boundmap.t
(** Add bounds for the crash class — [Interval.unbounded_above zero]
    for "may crash at any moment, or never"; a finite interval forces
    the crash (a guaranteed-fault scenario). *)

val condition :
  ('s, 'a) Tm_timed.Condition.t -> ('s state, 'a action) Tm_timed.Condition.t
(** Lift a condition: triggers and [Π] see only [Step] actions ([Crash]
    is neither), [S]-states and start triggers read the base state. *)

val lift_pred : ('s -> bool) -> 's state -> bool
(** Lift a state predicate to the base component. *)

val crashed : 's state -> bool

val live :
  ?class_name:string ->
  ?null_bounds:Tm_base.Interval.t ->
  kill:string list ->
  crash_bounds:Tm_base.Interval.t ->
  ('s, 'a) Tm_ioa.Ioa.t ->
  Tm_timed.Boundmap.t ->
  ('s state, 'a action Tm_core.Dummify.action) Tm_ioa.Ioa.t
  * Tm_timed.Boundmap.t
(** Crash transformer followed by dummification ([null_bounds] defaults
    to [[1, 2]]): all timed executions of the result are infinite even
    after every [kill]ed class is down. *)
