(** Adversarial fault-injecting simulation strategies.

    The simulator chooses which enabled move fires and when inside its
    feasible window; this module biases both choices toward the
    failure-prone corners: scheduling at window *edges* (the earliest
    release or the latest deadline — where bound proofs are tight) and
    preferring fault actions (e.g. the {!Crash.action.Crash} event of a
    crash-transformed system) when they are enabled.

    Perturbation enters through the automaton, not the strategy: build
    the [time(A, b')] automaton from a perturbed boundmap with
    {!automaton} and every window the strategy sees is already the
    perturbed one. *)

val automaton :
  ('s, 'a) Tm_ioa.Ioa.t ->
  Tm_timed.Boundmap.t ->
  Perturb.spec ->
  (('s, 'a) Tm_core.Time_automaton.t, string) result
(** [time(A, apply spec b)]. *)

val strategy :
  ?is_fault:('a -> bool) ->
  ?fault_bias_pct:int ->
  ?edge_bias_pct:int ->
  prng:Tm_base.Prng.t ->
  denominator:int ->
  cap:Tm_base.Rational.t ->
  unit ->
  ('s, 'a) Tm_sim.Strategy.t
(** With probability [fault_bias_pct]% (default 50) pick uniformly
    among the enabled moves satisfying [is_fault] (when any; default
    predicate: none); otherwise uniformly among all moves.  With
    probability [edge_bias_pct]% (default 75) fire at a window edge —
    the lower endpoint or the (capped) upper endpoint, equiprobably —
    otherwise at a uniform grid point of the window, as
    {!Tm_sim.Strategy.random} does.  Deterministic given the PRNG
    state; build a fresh strategy per run only if you reuse the PRNG.
    Injections and edge schedules are counted in the
    [faults.crash_injected] and [faults.edge_scheduled] metrics. *)
