module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng
module TA = Tm_core.Time_automaton
module Metrics = Tm_obs.Metrics

let c_injected = Metrics.counter "faults.crash_injected"
let c_edge = Metrics.counter "faults.edge_scheduled"

let automaton a bm spec =
  Result.map (fun bm' -> TA.of_boundmap a bm') (Perturb.apply spec bm)

let strategy ?(is_fault = fun _ -> false) ?(fault_bias_pct = 50)
    ?(edge_bias_pct = 75) ~prng ~denominator ~cap () _aut s moves =
  match moves with
  | [] -> None
  | _ ->
      let faults = List.filter (fun (a, _, _) -> is_fault a) moves in
      let act, lo, hi =
        if faults <> [] && Prng.int prng 100 < fault_bias_pct then begin
          Metrics.incr c_injected;
          Prng.pick prng faults
        end
        else Prng.pick prng moves
      in
      (* Same capping discipline as {!Tm_sim.Strategy.random}: an
         unbounded window is probed at most [cap] past its release. *)
      let hi_capped =
        let cap_abs =
          Rational.add (Rational.max s.Tm_core.Tstate.now lo) cap
        in
        match hi with
        | Time.Fin q -> Rational.min q cap_abs
        | Time.Inf -> cap_abs
      in
      let hi_capped = Rational.max hi_capped lo in
      let t =
        if Prng.int prng 100 < edge_bias_pct then begin
          Metrics.incr c_edge;
          if Prng.bool prng then lo else hi_capped
        end
        else Prng.rational_in prng ~denominator lo hi_capped
      in
      Some (act, t)
