module Ioa = Tm_ioa.Ioa
module Interval = Tm_base.Interval
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module Dummify = Tm_core.Dummify

type 'a action = Step of 'a | Crash
type 's state = { base : 's; up : bool }

let fault_class = "FAULT"

let automaton ?(class_name = fault_class) ~kill (a : ('s, 'a) Ioa.t) :
    ('s state, 'a action) Ioa.t =
  if List.mem class_name a.Ioa.classes then
    invalid_arg
      (Printf.sprintf "Crash.automaton: class %S already present" class_name);
  List.iter
    (fun c ->
      if not (List.mem c a.Ioa.classes) then
        invalid_arg (Printf.sprintf "Crash.automaton: unknown class %S" c))
    kill;
  let killed act =
    match a.Ioa.class_of act with Some c -> List.mem c kill | None -> false
  in
  {
    Ioa.name = a.Ioa.name ^ "!crash";
    start = List.map (fun s -> { base = s; up = true }) a.Ioa.start;
    alphabet = Crash :: List.map (fun act -> Step act) a.Ioa.alphabet;
    kind_of =
      (function Crash -> Ioa.Output | Step act -> a.Ioa.kind_of act);
    delta =
      (fun s -> function
        | Crash -> if s.up then [ { s with up = false } ] else []
        | Step act ->
            if (not s.up) && killed act then []
            else
              List.map (fun b -> { s with base = b }) (a.Ioa.delta s.base act));
    classes = class_name :: a.Ioa.classes;
    class_of =
      (function Crash -> Some class_name | Step act -> a.Ioa.class_of act);
    equal_state =
      (fun x y -> x.up = y.up && a.Ioa.equal_state x.base y.base);
    hash_state =
      (fun s -> (a.Ioa.hash_state s.base * 2) + if s.up then 1 else 0);
    pp_state =
      (fun fmt s ->
        Format.fprintf fmt "%a%s" a.Ioa.pp_state s.base
          (if s.up then "" else " [down]"));
    equal_action =
      (fun x y ->
        match (x, y) with
        | Crash, Crash -> true
        | Step x, Step y -> a.Ioa.equal_action x y
        | Crash, Step _ | Step _, Crash -> false);
    pp_action =
      (fun fmt -> function
        | Crash -> Format.pp_print_string fmt "CRASH!"
        | Step act -> a.Ioa.pp_action fmt act);
  }

let boundmap ?(class_name = fault_class) ~crash_bounds bm =
  Boundmap.add bm class_name crash_bounds

let condition (c : ('s, 'a) Condition.t) : ('s state, 'a action) Condition.t =
  {
    Condition.cname = c.Condition.cname;
    t_start = (fun s -> c.Condition.t_start s.base);
    t_step =
      (fun s act s' ->
        match act with
        | Crash -> false
        | Step act -> c.Condition.t_step s.base act s'.base);
    bounds = c.Condition.bounds;
    in_pi = (function Crash -> false | Step act -> c.Condition.in_pi act);
    in_s = (fun s -> c.Condition.in_s s.base);
  }

let lift_pred pred s = pred s.base
let crashed s = not s.up

let live ?class_name ?(null_bounds = Interval.of_ints 1 2) ~kill ~crash_bounds
    a bm =
  let a' = Dummify.automaton (automaton ?class_name ~kill a) in
  let bm' = Dummify.boundmap (boundmap ?class_name ~crash_bounds bm) ~null_bounds in
  (a', bm')
