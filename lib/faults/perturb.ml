module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Boundmap = Tm_timed.Boundmap
module Metrics = Tm_obs.Metrics

let c_applied = Metrics.counter "faults.perturb_applied"

type spec =
  | Widen of Rational.t
  | Widen_class of string * Rational.t
  | Drift of Rational.t
  | Drift_class of string * Rational.t
  | Rebound of string * Interval.t
  | Seq of spec list

let widen e = Widen e
let widen_class c e = Widen_class (c, e)
let drift r = Drift r
let drift_class c r = Drift_class (c, r)
let rebound c iv = Rebound (c, iv)
let seq ss = Seq ss

let rec pp fmt = function
  | Widen e -> Format.fprintf fmt "widen %s" (Rational.to_string e)
  | Widen_class (c, e) ->
      Format.fprintf fmt "widen[%s] %s" c (Rational.to_string e)
  | Drift r -> Format.fprintf fmt "drift %s" (Rational.to_string r)
  | Drift_class (c, r) ->
      Format.fprintf fmt "drift[%s] %s" c (Rational.to_string r)
  | Rebound (c, iv) -> Format.fprintf fmt "rebound[%s] %a" c Interval.pp iv
  | Seq ss ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
           pp)
        ss

let to_string s = Format.asprintf "%a" pp s

let ( let* ) = Result.bind

(* Interval rewrites.  Widening keeps [lo >= 0] by flooring; both
   rewrites keep [lo <= hi] because [lo] only shrinks and [hi] only
   grows, so {!Interval.make} can fail only on a malformed input. *)
let widen_iv e iv =
  let lo = Rational.max Rational.zero (Rational.sub (Interval.lo iv) e) in
  Interval.make lo (Time.add_q (Interval.hi iv) e)

let drift_iv r iv =
  let f = Rational.add Rational.one r in
  let lo = Rational.div (Interval.lo iv) f in
  let hi =
    match Interval.hi iv with
    | Time.Fin q -> Time.Fin (Rational.mul q f)
    | Time.Inf -> Time.Inf
  in
  Interval.make lo hi

let check_magnitude what q =
  if Rational.sign q < 0 then
    Error (Printf.sprintf "%s magnitude %s is negative" what
             (Rational.to_string q))
  else Ok ()

let check_class bm c =
  if Boundmap.mem bm c then Ok ()
  else Error (Printf.sprintf "class %S not in the boundmap" c)

let rec apply_inner spec bm =
  match spec with
  | Widen e ->
      let* () = check_magnitude "widen" e in
      Ok (Boundmap.map (fun _ iv -> widen_iv e iv) bm)
  | Widen_class (c, e) ->
      let* () = check_magnitude "widen" e in
      let* () = check_class bm c in
      Ok
        (Boundmap.map
           (fun c' iv -> if String.equal c c' then widen_iv e iv else iv)
           bm)
  | Drift r ->
      let* () = check_magnitude "drift" r in
      Ok (Boundmap.map (fun _ iv -> drift_iv r iv) bm)
  | Drift_class (c, r) ->
      let* () = check_magnitude "drift" r in
      let* () = check_class bm c in
      Ok
        (Boundmap.map
           (fun c' iv -> if String.equal c c' then drift_iv r iv else iv)
           bm)
  | Rebound (c, iv) ->
      let* () = check_class bm c in
      Ok (Boundmap.map (fun c' iv0 -> if String.equal c c' then iv else iv0) bm)
  | Seq ss ->
      List.fold_left (fun acc s -> Result.bind acc (apply_inner s)) (Ok bm) ss

let apply spec bm =
  match apply_inner spec bm with
  | Ok bm' ->
      Metrics.incr c_applied;
      Ok bm'
  | Error m -> Error (Printf.sprintf "%s: %s" (to_string spec) m)
  | exception Interval.Ill_formed m ->
      Error (Printf.sprintf "%s: ill-formed interval (%s)" (to_string spec) m)

let apply_exn spec bm =
  match apply spec bm with
  | Ok bm' -> bm'
  | Error m -> invalid_arg ("Perturb.apply: " ^ m)
