type 'k t = {
  equal : 'k -> 'k -> bool;
  hash : 'k -> int;
  buckets : (int, (int * 'k) list) Hashtbl.t;
  mutable keys : 'k array;
  mutable count : int;
  owner : int;  (* Domain.id of the creating domain *)
}

(* Stores are single-domain by design: the zone engine gives each
   domain its own tables instead of locking a shared one.  Every
   operation asserts ownership so a cross-domain access fails loudly
   (naming both domains) instead of corrupting the buckets. *)
let check_owner t =
  let d = (Domain.self () :> int) in
  if d <> t.owner then
    invalid_arg
      (Printf.sprintf
         "Hstore: store owned by domain %d used from domain %d (stores are \
          single-domain; create one per domain)"
         t.owner d)

let create ~equal ~hash n =
  {
    equal;
    hash;
    buckets = Hashtbl.create n;
    keys = [||];
    count = 0;
    owner = (Domain.self () :> int);
  }

let length t = t.count

let find t k =
  check_owner t;
  let h = t.hash k in
  match Hashtbl.find_opt t.buckets h with
  | None -> None
  | Some entries ->
      List.find_map
        (fun (id, k') -> if t.equal k k' then Some id else None)
        entries

let add t k =
  match find t k with
  | Some id -> `Present id
  | None ->
      let id = t.count in
      let h = t.hash k in
      let entries =
        match Hashtbl.find_opt t.buckets h with None -> [] | Some e -> e
      in
      Hashtbl.replace t.buckets h ((id, k) :: entries);
      let cap = Array.length t.keys in
      if id >= cap then begin
        let ncap = if cap = 0 then 16 else cap * 2 in
        let keys = Array.make ncap k in
        Array.blit t.keys 0 keys 0 cap;
        t.keys <- keys
      end;
      t.keys.(id) <- k;
      t.count <- id + 1;
      `Added id

let intern t k =
  match add t k with `Added _ -> k | `Present id -> t.keys.(id)

(* Probe-in-place interning: the candidate key lives in a mutable
   scratch buffer, so hashing and equality run against the buffer
   directly and the immutable key is only materialized (via [freeze])
   on a genuine miss.  The caller promises [t.hash (freeze ()) = hash]
   and [equal k <=> t.equal (freeze ()) k] — the differential harness
   checks both ways. *)
let intern_scratch t ~hash ~equal ~freeze =
  check_owner t;
  let hit =
    match Hashtbl.find_opt t.buckets hash with
    | None -> None
    | Some entries ->
        List.find_map (fun (_, k') -> if equal k' then Some k' else None) entries
  in
  match hit with
  | Some k -> `Hit k
  | None ->
      let k = freeze () in
      let id = t.count in
      let entries =
        match Hashtbl.find_opt t.buckets hash with None -> [] | Some e -> e
      in
      Hashtbl.replace t.buckets hash ((id, k) :: entries);
      let cap = Array.length t.keys in
      if id >= cap then begin
        let ncap = if cap = 0 then 16 else cap * 2 in
        let keys = Array.make ncap k in
        Array.blit t.keys 0 keys 0 cap;
        t.keys <- keys
      end;
      t.keys.(id) <- k;
      t.count <- id + 1;
      `Miss k

let key_of_id t id =
  if id < 0 || id >= t.count then invalid_arg "Hstore.key_of_id";
  t.keys.(id)

let iter f t =
  for id = 0 to t.count - 1 do
    f id t.keys.(id)
  done

let to_list t =
  let acc = ref [] in
  for id = t.count - 1 downto 0 do
    acc := t.keys.(id) :: !acc
  done;
  !acc
