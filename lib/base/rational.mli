(** Exact rational arithmetic over native integers.

    All times and time bounds in this library are exact rationals: the
    paper's definitions compare times with [<=] and [<] at interval
    endpoints, and floating point rounding would corrupt exactly those
    boundary cases.  [zarith] is not available in this environment, so
    values are normalized fractions of native 63-bit integers with
    overflow-checked arithmetic; the constants appearing in the
    reproduced systems are tiny, so overflow indicates a logic error and
    raises {!Overflow}. *)

type t = private { num : int; den : int }
(** A rational [num/den] with [den > 0] and [gcd (abs num) den = 1]. *)

exception Overflow
(** Raised when an intermediate native-integer computation would
    overflow. *)

exception Division_by_zero
(** Raised by {!make} and {!div} on a zero denominator/divisor. *)

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val inv : t -> t

val mul_int : int -> t -> t
(** [mul_int n q] is [n * q]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sign : t -> int

val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( = ) : t -> t -> bool
val ( <> ) : t -> t -> bool
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

val is_integer : t -> bool
val floor : t -> int
val ceil : t -> int

val divides : t -> t -> bool
(** [divides step q] is [true] when [q] is an integer multiple of
    [step]; used to validate discretization grids.  [step] must be
    positive. *)

val to_float : t -> float
val of_string : string -> t
(** Parses ["3"], ["-3"], ["3/4"] and decimal literals like ["0.25"].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val hash : t -> int
