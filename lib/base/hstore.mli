(** Polymorphic hash store with caller-supplied equality and hashing.

    Automaton states come from arbitrary OCaml types whose structural
    equality/hash functions are carried in the automaton record rather
    than derived from the type, so [Hashtbl.Make] does not apply.  This
    store buckets by a caller hash and resolves collisions with a
    caller equality; each key is assigned a dense integer id on first
    insertion (ids are handy as graph-node indices).

    A store belongs to the domain that created it: {!find}, {!add} and
    {!intern} raise [Invalid_argument] (naming the owning and the
    calling domain) when used from another domain.  Parallel callers —
    the zone engine's per-domain intern tables — create one store per
    domain rather than sharing one. *)

type 'k t

val create : equal:('k -> 'k -> bool) -> hash:('k -> int) -> int -> 'k t
(** [create ~equal ~hash initial_size]. *)

val length : 'k t -> int

val find : 'k t -> 'k -> int option
(** The id of a previously added key. *)

val add : 'k t -> 'k -> [ `Added of int | `Present of int ]
(** Insert a key; returns its fresh id, or the existing id. *)

val intern : 'k t -> 'k -> 'k
(** [intern t k] is the canonical representative of [k]: the stored key
    equal to [k] if one exists (so callers can rely on physical
    equality of interned values), otherwise [k] itself after adding it.
    This is what makes hash-consing work: two structurally equal zones
    interned through the same store are the same pointer. *)

val intern_scratch :
  'k t ->
  hash:int ->
  equal:('k -> bool) ->
  freeze:(unit -> 'k) ->
  [ `Hit of 'k | `Miss of 'k ]
(** Copy-on-intern: probe the store for a key still sitting in a
    mutable scratch buffer without materializing it.  [hash] is the
    hash the frozen key would have; [equal k] compares the scratch
    contents against a stored key [k]; [freeze] is called only on a
    miss to build the immutable key that is then added under [hash].
    [`Hit k] returns the stored representative (no allocation);
    [`Miss k] returns the freshly frozen-and-added key.  The caller
    must guarantee [t.hash (freeze ()) = hash] and that [equal]
    agrees with [t.equal] on the frozen key. *)

val key_of_id : 'k t -> int -> 'k
(** @raise Invalid_argument if the id was never assigned. *)

val iter : (int -> 'k -> unit) -> 'k t -> unit
(** Iterates in id order. *)

val to_list : 'k t -> 'k list
(** Keys in id order. *)
