(** Closed time intervals [[lo, hi]] with [lo] finite and [hi] possibly
    infinite.

    These are exactly the intervals a boundmap may assign to a partition
    class (Section 2.2 of the paper: the lower bound of each interval is
    not [∞] and the upper bound is nonzero) and the [b] component of a
    timing condition (Section 2.3). *)

type t = private { lo : Rational.t; hi : Time.t }

exception Ill_formed of string

val make : Rational.t -> Time.t -> t
(** [make lo hi] checks [0 <= lo], [lo <= hi] and [hi <> 0].
    @raise Ill_formed otherwise. *)

val of_ints : int -> int -> t
val unbounded_above : Rational.t -> t
(** [unbounded_above lo] is [[lo, ∞]]. *)

val trivial : t
(** [[0, ∞]] — imposes no constraint. *)

val lower_only : Rational.t -> t
(** [[lo, ∞]]: a pure lower-bound condition. *)

val upper_only : Time.t -> t
(** [[0, hi]]: a pure upper-bound condition. *)

val lo : t -> Rational.t
val hi : t -> Time.t

val mem : Rational.t -> t -> bool
(** [mem t iv] is [lo <= t <= hi]. *)

val mem_time : Time.t -> t -> bool

val shift : Rational.t -> t -> t
(** [shift d iv] is [[lo + d, hi + d]]. *)

val scale : int -> t -> t
(** [scale n iv] is [[n*lo, n*hi]] for [n >= 1]. *)

val width : t -> Time.t
val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b]: every point of [a] lies in [b]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
