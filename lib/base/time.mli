(** Extended time values: a nonnegative-or-arbitrary rational, or [+∞].

    Upper bounds in boundmaps and the [Lt] components of predictive
    states range over [Fin q | Inf]; lower bounds and [Ft] components
    are plain rationals ({!Rational.t}).  Arithmetic saturates at
    infinity in the usual way ([Inf + q = Inf]); operations that would
    be ill-defined ([Inf - Inf]) raise [Invalid_argument]. *)

type t = Fin of Rational.t | Inf

val fin : Rational.t -> t
val of_int : int -> t
val zero : t
val infinity : t

val is_finite : t -> bool

val to_rational : t -> Rational.t
(** @raise Invalid_argument on [Inf]. *)

val add : t -> t -> t
val add_q : t -> Rational.t -> t
val sub_q : t -> Rational.t -> t
(** [sub_q t q] is [t - q]; [Inf - q = Inf]. *)

val mul_int : int -> t -> t
(** [mul_int n t] for [n >= 0]; [0 * Inf = 0]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val le_q : Rational.t -> t -> bool
(** [le_q q t] is [Fin q <= t]. *)

val lt_q : Rational.t -> t -> bool
(** [lt_q q t] is [Fin q < t]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val hash : t -> int
