type t = Fin of Rational.t | Inf

let fin q = Fin q
let of_int n = Fin (Rational.of_int n)
let zero = Fin Rational.zero
let infinity = Inf
let is_finite = function Fin _ -> true | Inf -> false

let to_rational = function
  | Fin q -> q
  | Inf -> invalid_arg "Time.to_rational: infinite"

let add a b =
  match (a, b) with
  | Fin x, Fin y -> Fin (Rational.add x y)
  | Inf, _ | _, Inf -> Inf

let add_q t q = match t with Fin x -> Fin (Rational.add x q) | Inf -> Inf
let sub_q t q = match t with Fin x -> Fin (Rational.sub x q) | Inf -> Inf

let mul_int n t =
  if n < 0 then invalid_arg "Time.mul_int: negative multiplier";
  match t with
  | Fin x -> Fin (Rational.mul_int n x)
  | Inf -> if n = 0 then zero else Inf

let compare a b =
  match (a, b) with
  | Fin x, Fin y -> Rational.compare x y
  | Fin _, Inf -> -1
  | Inf, Fin _ -> 1
  | Inf, Inf -> 0

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let le_q q t = Fin q <= t
let lt_q q t = Fin q < t
let to_string = function Fin q -> Rational.to_string q | Inf -> "inf"
let pp fmt t = Format.pp_print_string fmt (to_string t)

let hash = function
  | Fin q -> Rational.hash q
  | Inf -> 0x7fffffff
