(** Deterministic pseudo-random number generator (SplitMix64).

    Simulation runs must be reproducible from a seed, independent of the
    OCaml runtime's [Random] self-initialization; this is a small,
    self-contained SplitMix64 implementation.  Generators are mutable;
    use {!split} to derive independent streams. *)

type t

val create : int -> t
(** [create seed] makes a generator from a seed. *)

val copy : t -> t

val split : t -> t
(** Derives an independent generator; the parent advances. *)

val streams : seed:int -> n:int -> t array
(** [n] independent generators split off a master seeded with [seed],
    in index order — stream [i] depends only on [(seed, i)], so work
    fanned out over domains draws the same randomness per item at any
    domain count. *)

val next_int64 : t -> int64
val int : t -> int -> int
(** [int g bound] is uniform in [[0, bound)]. [bound >= 1]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [[0,1)]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val rational_in : t -> denominator:int -> Rational.t -> Rational.t -> Rational.t
(** [rational_in g ~denominator lo hi] draws a rational uniformly from
    the grid [{ lo + i/denominator | 0 <= i, lo + i/denominator <= hi }].
    Requires [lo <= hi] and [denominator >= 1]. *)
