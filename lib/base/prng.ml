type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy g = { state = g.state }

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = { state = mix (next_int64 g) }

let streams ~seed ~n =
  if n < 0 then invalid_arg "Prng.streams: n < 0";
  let master = create seed in
  Array.init n (fun _ -> split master)

let int g bound =
  if bound < 1 then invalid_arg "Prng.int: bound < 1";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g =
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let pick g = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int g (List.length xs))

let rational_in g ~denominator lo hi =
  if denominator < 1 then invalid_arg "Prng.rational_in: denominator < 1";
  if Rational.(hi < lo) then invalid_arg "Prng.rational_in: hi < lo";
  let step = Rational.make 1 denominator in
  let slots = Rational.div (Rational.sub hi lo) step in
  let n = Rational.floor slots in
  let i = int g (n + 1) in
  Rational.add lo (Rational.mul_int i step)
