type t = { lo : Rational.t; hi : Time.t }

exception Ill_formed of string

let make lo hi =
  if Rational.sign lo < 0 then
    raise (Ill_formed "interval lower bound is negative");
  if not (Time.le_q lo hi) then raise (Ill_formed "interval lower > upper");
  if Time.equal hi Time.zero && Rational.sign lo = 0 then
    (* The paper requires the upper bound of a boundmap interval to be
       nonzero; [0,0] would force an action at the very instant its
       class is enabled. *)
    raise (Ill_formed "interval upper bound is zero");
  { lo; hi }

let of_ints lo hi = make (Rational.of_int lo) (Time.of_int hi)
let unbounded_above lo = make lo Time.infinity
let trivial = unbounded_above Rational.zero
let lower_only lo = make lo Time.infinity
let upper_only hi = make Rational.zero hi
let lo iv = iv.lo
let hi iv = iv.hi
let mem t iv = Rational.(iv.lo <= t) && Time.le_q t iv.hi

let mem_time t iv =
  match t with Time.Fin q -> mem q iv | Time.Inf -> not (Time.is_finite iv.hi)

let shift d iv = make (Rational.add iv.lo d) (Time.add_q iv.hi d)

let scale n iv =
  if n < 1 then invalid_arg "Interval.scale: multiplier < 1";
  make (Rational.mul_int n iv.lo) (Time.mul_int n iv.hi)

let width iv = Time.sub_q iv.hi iv.lo

let equal a b = Rational.equal a.lo b.lo && Time.equal a.hi b.hi

let subset a b = Rational.(b.lo <= a.lo) && Time.(a.hi <= b.hi)

let to_string iv =
  Printf.sprintf "[%s, %s]" (Rational.to_string iv.lo) (Time.to_string iv.hi)

let pp fmt iv = Format.pp_print_string fmt (to_string iv)
