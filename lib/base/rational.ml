type t = { num : int; den : int }

exception Overflow
exception Division_by_zero

(* Overflow-checked native integer arithmetic.  The systems reproduced
   here use single-digit constants, so hitting these checks means a bug
   rather than a genuinely large value. *)

let add_exn a b =
  let r = a + b in
  if (a >= 0) = (b >= 0) && (r >= 0) <> (a >= 0) then raise Overflow;
  r

let sub_exn a b =
  let r = a - b in
  if (a >= 0) <> (b >= 0) && (r >= 0) <> (a >= 0) then raise Overflow;
  r

let mul_exn a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a then raise Overflow;
    r

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let norm num den =
  if den = 0 then raise Division_by_zero;
  let num, den = if den < 0 then (-num, -den) else (num, den) in
  if num = 0 then { num = 0; den = 1 }
  else
    let g = gcd (Stdlib.abs num) den in
    { num = num / g; den = den / g }

let make num den = norm num den
let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

(* Integer-valued rationals dominate the DBM hot path; adding two of
   them (or adding zero) needs no gcd renormalization. *)
let add a b =
  if a.num = 0 then b
  else if b.num = 0 then a
  else if a.den = 1 && b.den = 1 then { num = add_exn a.num b.num; den = 1 }
  else
    norm
      (add_exn (mul_exn a.num b.den) (mul_exn b.num a.den))
      (mul_exn a.den b.den)

let sub a b =
  if b.num = 0 then a
  else if a.den = 1 && b.den = 1 then { num = sub_exn a.num b.num; den = 1 }
  else
    norm
      (sub_exn (mul_exn a.num b.den) (mul_exn b.num a.den))
      (mul_exn a.den b.den)

let mul a b = norm (mul_exn a.num b.num) (mul_exn a.den b.den)

let div a b =
  if b.num = 0 then raise Division_by_zero;
  norm (mul_exn a.num b.den) (mul_exn a.den b.num)

let neg a = { a with num = -a.num }
let abs a = { a with num = Stdlib.abs a.num }

let inv a =
  if a.num = 0 then raise Division_by_zero;
  norm a.den a.num

let mul_int n q = norm (mul_exn n q.num) q.den

let compare a b =
  (* Cross-multiplication with overflow checking keeps comparisons
     exact; equal denominators (the common case on the DBM hot path)
     compare numerators directly. *)
  if a.den = b.den then Stdlib.compare a.num b.num
  else Stdlib.compare (mul_exn a.num b.den) (mul_exn b.num a.den)

let equal a b = a.num = b.num && a.den = b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sign a = Stdlib.compare a.num 0
let is_integer a = a.den = 1

let floor a =
  if a.num >= 0 then a.num / a.den
  else if a.num mod a.den = 0 then a.num / a.den
  else (a.num / a.den) - 1

let ceil a = -floor (neg a)

let divides step q =
  if sign step <= 0 then invalid_arg "Rational.divides: nonpositive step";
  is_integer (div q step)

let to_float a = float_of_int a.num /. float_of_int a.den

let of_string s =
  let s = String.trim s in
  let fail () = invalid_arg (Printf.sprintf "Rational.of_string: %S" s) in
  let int_of s = match int_of_string_opt s with Some n -> n | None -> fail () in
  match String.index_opt s '/' with
  | Some i ->
      let num = int_of (String.sub s 0 i) in
      let den = int_of (String.sub s (Stdlib.( + ) i 1)
                          (Stdlib.( - ) (String.length s) (Stdlib.( + ) i 1)))
      in
      if den = 0 then fail () else make num den
  | None -> (
      match String.index_opt s '.' with
      | None -> of_int (int_of s)
      | Some i ->
          let whole = String.sub s 0 i in
          let frac =
            String.sub s (Stdlib.( + ) i 1)
              (Stdlib.( - ) (String.length s) (Stdlib.( + ) i 1))
          in
          if String.length frac = 0 then fail ();
          let negative = String.length whole > 0 && whole.[0] = '-' in
          let whole_n = if whole = "" || whole = "-" then 0 else int_of whole in
          let frac_n = int_of frac in
          if Stdlib.( < ) frac_n 0 then fail ();
          let scale =
            let rec pow acc n =
              if n = 0 then acc else pow (mul_exn acc 10) (Stdlib.( - ) n 1)
            in
            pow 1 (String.length frac)
          in
          let mag =
            add (of_int (Stdlib.abs whole_n)) (make frac_n scale)
          in
          if negative || Stdlib.( < ) whole_n 0 then neg mag else mag)

let to_string a =
  if a.den = 1 then string_of_int a.num
  else Printf.sprintf "%d/%d" a.num a.den

let pp fmt a = Format.pp_print_string fmt (to_string a)
let hash a = Stdlib.( + ) (Stdlib.( * ) a.num 1000003) a.den

let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let ( = ) a b = equal a b
let ( <> ) a b = not (equal a b)
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
