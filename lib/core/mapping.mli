(** Strong possibilities mappings (Definition 3.2) and their checkers.

    A strong possibilities mapping from [time(A, U)] to [time(A, V)] is
    a multivalued map [f] such that (1) every start state of the source
    has an [f]-image among the start states of the target, (2) steps of
    the source from a reachable state can be matched by target steps
    preserving membership, and (3) the map is the identity on the
    A-state components.  By Theorem 3.4, such a mapping proves that
    every infinite timed execution of [(A, U)] is one of [(A, V)].

    Because [time(A, V)] steps are deterministic once the base step and
    the action time are fixed, step-matching reduces to: the move must
    be enabled on the target side, and the unique target successor must
    be in the image of the source successor.  The checkers below verify
    exactly this, either along a given execution (refutation on traces)
    or exhaustively over a discretized product graph. *)

type 's t = {
  mname : string;
  contains : 's Tstate.t -> 's Tstate.t -> bool;
      (** [contains s u] iff [u ∈ f(s)].  Implementations should only
          constrain the predictive components: the checkers separately
          enforce identity of base states and of current time. *)
}

type ('s, 'a) failure =
  | No_start_image of 's Tstate.t
      (** a source start state with no matching target start state *)
  | Move_not_enabled of {
      source_pre : 's Tstate.t;
      target_pre : 's Tstate.t;
      action : 'a;
      time : Tm_base.Rational.t;
    }  (** the matched move is not enabled in the target state *)
  | Image_lost of {
      source_post : 's Tstate.t;
      target_post : 's Tstate.t;
      action : 'a;
      time : Tm_base.Rational.t;
    }  (** the unique target successor fell outside [f(source_post)] *)

val pp_failure :
  ('s, 'a) Time_automaton.t -> Format.formatter -> ('s, 'a) failure -> unit

val start_witness :
  source:('s, 'a) Time_automaton.t ->
  target:('s, 'a) Time_automaton.t ->
  's t ->
  's Tstate.t ->
  ('s Tstate.t, ('s, 'a) failure) result
(** Condition 1 of Definition 3.2 for one source start state: find a
    target start state with the same base that lies in the image. *)

val check_exec :
  source:('s, 'a) Time_automaton.t ->
  target:('s, 'a) Time_automaton.t ->
  's t ->
  ('s, 'a) Time_automaton.texec ->
  (unit, ('s, 'a) failure) result
(** Walk an execution of the source, maintaining the deterministic
    target witness, verifying enabledness and image membership at every
    step.  A sound refutation check: any [Error] is a genuine
    counterexample to the mapping (on this execution). *)

type stats = { product_states : int; product_edges : int; truncated : bool }

val check_exhaustive :
  ?params:Tgraph.params ->
  source:('s, 'a) Time_automaton.t ->
  target:('s, 'a) Time_automaton.t ->
  's t ->
  unit ->
  (stats, ('s, 'a) failure) result
(** Exhaustive check of conditions 1–2 over the product of the
    discretized, normalized source graph with its deterministic target
    witnesses (see {!Tgraph} for the discretization caveats).  For a
    finite base automaton and adequate [params], [Ok] means the mapping
    is a strong possibilities mapping on the explored grid. *)
