let full_relation =
  { Mapping.mname = "full relation"; contains = (fun _ _ -> true) }

let check ?params ~source ~target () =
  Mapping.check_exhaustive ?params ~source ~target full_relation ()
