let full_relation =
  { Mapping.mname = "full relation"; contains = (fun _ _ -> true) }

let check ?params ~source ~target () =
  Tm_obs.Tracing.with_span "refinement.check" @@ fun () ->
  Mapping.check_exhaustive ?params ~source ~target full_relation ()
