module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Hstore = Tm_base.Hstore
module Condition = Tm_timed.Condition

exception Dead_state

type ('s, 'a) t = {
  graph : ('s, 'a) Tgraph.t;
  conds : ('s, 'a) Condition.t array;
  sup : Time.t array array;  (** [sup.(cond).(node)] *)
  inf : Time.t array array;  (** [inf.(cond).(node)] *)
}

let graph a = a.graph
let sup_first a ~cond ~node = a.sup.(cond).(node)
let inf_first_pi a ~cond ~node = a.inf.(cond).(node)

(* Adjacency lists from the edge list. *)
let adjacency g =
  let n = Tgraph.node_count g in
  let out = Array.make n [] in
  List.iter
    (fun (src, (act, dt), dst) -> out.(src) <- (act, dt, dst) :: out.(src))
    g.Tgraph.edges;
  Array.iteri (fun v es -> if es = [] then (ignore v; raise Dead_state)) out;
  out

(* sup over infinite extensions of the first time an action in Pi or a
   state in S occurs.  Longest-path value iteration; divergence (a
   positive-weight cycle avoiding the markers) means [∞]. *)
let compute_sup g out (c : ('s, 'a) Condition.t) =
  let n = Tgraph.node_count g in
  let base v = (Hstore.key_of_id g.Tgraph.nodes v).Tstate.base in
  let in_s = Array.init n (fun v -> c.Condition.in_s (base v)) in
  let value = Array.make n Time.zero in
  let contribution (act, dt, v') =
    if c.Condition.in_pi act || in_s.(v') then Time.Fin dt
    else Time.add_q value.(v') dt
  in
  let round () =
    let changed = ref false in
    for v = 0 to n - 1 do
      if not in_s.(v) then begin
        let nv =
          List.fold_left
            (fun acc e -> Time.max acc (contribution e))
            Time.zero out.(v)
        in
        if not (Time.equal nv value.(v)) then begin
          value.(v) <- nv;
          changed := true
        end
      end
    done;
    !changed
  in
  let rec iterate k = if round () && k > 0 then iterate (k - 1) in
  iterate n;
  (* One probe round: nodes still increasing lie on (or feed) a
     positive cycle that avoids the markers — their sup is infinite. *)
  let diverging = ref [] in
  for v = 0 to n - 1 do
    if not in_s.(v) then begin
      let nv =
        List.fold_left
          (fun acc e -> Time.max acc (contribution e))
          Time.zero out.(v)
      in
      if Time.(nv > value.(v)) then diverging := v :: !diverging
    end
  done;
  List.iter (fun v -> value.(v) <- Time.infinity) !diverging;
  if !diverging <> [] then iterate n;
  value

(* inf over infinite extensions of the first time an action in Pi
   occurs with no earlier S state.  Shortest-path value iteration. *)
let compute_inf g out (c : ('s, 'a) Condition.t) =
  let n = Tgraph.node_count g in
  let base v = (Hstore.key_of_id g.Tgraph.nodes v).Tstate.base in
  let in_s = Array.init n (fun v -> c.Condition.in_s (base v)) in
  let value = Array.make n Time.infinity in
  let contribution (act, dt, v') =
    if c.Condition.in_pi act then Time.Fin dt
    else if in_s.(v') then Time.infinity
    else Time.add_q value.(v') dt
  in
  let round () =
    let changed = ref false in
    for v = 0 to n - 1 do
      if not in_s.(v) then begin
        let nv =
          List.fold_left
            (fun acc e -> Time.min acc (contribution e))
            Time.infinity out.(v)
        in
        if not (Time.equal nv value.(v)) then begin
          value.(v) <- nv;
          changed := true
        end
      end
    done;
    !changed
  in
  let rec iterate k = if round () && k > 0 then iterate (k - 1) in
  iterate (n + 1);
  value

let analyze ?params ~source ~conds () =
  let g = Tgraph.build ?params source in
  let out = adjacency g in
  {
    graph = g;
    conds;
    sup = Array.map (compute_sup g out) conds;
    inf = Array.map (compute_inf g out) conds;
  }

let start_node a =
  match a.graph.Tgraph.aut.Time_automaton.start with
  | [] -> invalid_arg "Completeness: no start state"
  | s0 :: _ -> (
      let s0n =
        Tstate.normalize ~clamp:a.graph.Tgraph.params.Tgraph.clamp s0
      in
      match Hstore.find a.graph.Tgraph.nodes s0n with
      | Some id -> id
      | None -> invalid_arg "Completeness: start state not in graph")

let start_bounds a ~cond =
  let v = start_node a in
  (a.inf.(cond).(v), a.sup.(cond).(v))

let bounds_after a ~trigger ~cond =
  let base v = (Hstore.key_of_id a.graph.Tgraph.nodes v).Tstate.base in
  List.fold_left
    (fun acc (src, (act, _dt), dst) ->
      if trigger (base src) act (base dst) then
        let lo = a.inf.(cond).(dst) and hi = a.sup.(cond).(dst) in
        match acc with
        | None -> Some (lo, hi)
        | Some (alo, ahi) -> Some (Time.min alo lo, Time.max ahi hi)
      else acc)
    None a.graph.Tgraph.edges

let mapping a ~spec =
  (* Match spec conditions to analysis conditions by name. *)
  let index_of name =
    let found = ref (-1) in
    Array.iteri
      (fun i (c : ('s, 'a) Condition.t) ->
        if !found < 0 && String.equal c.Condition.cname name then found := i)
      a.conds;
    if !found < 0 then
      invalid_arg
        (Printf.sprintf
           "Completeness.mapping: spec condition %S not analyzed" name)
    else !found
  in
  let spec_to_analysis =
    Array.map index_of spec.Time_automaton.cond_names
  in
  let clamp = a.graph.Tgraph.params.Tgraph.clamp in
  let contains (s : 's Tstate.t) (u : 's Tstate.t) =
    match Hstore.find a.graph.Tgraph.nodes (Tstate.normalize ~clamp s) with
    | None -> false
    | Some v ->
        let ok = ref true in
        Array.iteri
          (fun i j ->
            let sup = Time.add_q a.sup.(j).(v) s.Tstate.now in
            let inf = Time.add_q a.inf.(j).(v) s.Tstate.now in
            if not (Time.(u.Tstate.lt.(i) >= sup)
                   && Time.le_q u.Tstate.ft.(i) inf)
            then ok := false)
          spec_to_analysis;
        !ok
  in
  { Mapping.mname = "Theorem 7.1 completeness mapping"; contains }
