module Rational = Tm_base.Rational
module Time = Tm_base.Time

type 's t = {
  base : 's;
  now : Rational.t;
  ft : Rational.t array;
  lt : Time.t array;
}

let make ~base ~now ~ft ~lt =
  if Array.length ft <> Array.length lt then
    invalid_arg "Tstate.make: ft/lt arity mismatch";
  { base; now; ft; lt }

let n_conds s = Array.length s.ft

let equal eq_base a b =
  eq_base a.base b.base
  && Rational.equal a.now b.now
  && Array.length a.ft = Array.length b.ft
  && Array.for_all2 Rational.equal a.ft b.ft
  && Array.for_all2 Time.equal a.lt b.lt

let hash hash_base s =
  let h = ref (hash_base s.base) in
  h := (!h * 31) + Rational.hash s.now;
  Array.iter (fun q -> h := (!h * 31) + Rational.hash q) s.ft;
  Array.iter (fun t -> h := (!h * 31) + Time.hash t) s.lt;
  !h

let pp ?names pp_base fmt s =
  let name i =
    match names with
    | Some ns when i < Array.length ns -> ns.(i)
    | _ -> string_of_int i
  in
  Format.fprintf fmt "@[<h>{%a; Ct=%a" pp_base s.base Rational.pp s.now;
  Array.iteri
    (fun i q ->
      Format.fprintf fmt "; Ft(%s)=%a Lt(%s)=%a" (name i) Rational.pp q
        (name i) Time.pp s.lt.(i))
    s.ft;
  Format.fprintf fmt "}@]"

let shift d s =
  {
    s with
    now = Rational.add s.now d;
    ft = Array.map (fun q -> Rational.add q d) s.ft;
    lt = Array.map (fun t -> Time.add_q t d) s.lt;
  }

let normalize ~clamp s =
  let s = shift (Rational.neg s.now) s in
  let floor = Rational.neg clamp in
  {
    s with
    ft =
      Array.mapi
        (fun i q ->
          (* A condition with no pending deadline and an already-passed
             release point is behaviourally identical to the default
             (0, ∞) state: collapse its ft to the floor so that such
             conditions do not multiply the normalized state space by
             tracking -now. *)
          if Time.equal s.lt.(i) Time.Inf && Rational.(q <= Rational.zero)
          then floor
          else Rational.max q floor)
        s.ft;
  }
