module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Ioa = Tm_ioa.Ioa
module Execution = Tm_ioa.Execution
module Condition = Tm_timed.Condition
module Tseq = Tm_timed.Tseq
module Semantics = Tm_timed.Semantics

type ('s, 'a) t = {
  base : ('s, 'a) Ioa.t;
  conds : ('s, 'a) Condition.t array;
  cond_names : string array;
  start : 's Tstate.t list;
}

let initial_of_base conds base_start =
  let n = Array.length conds in
  let ft = Array.make n Rational.zero in
  let lt = Array.make n Time.infinity in
  Array.iteri
    (fun i (c : ('s, 'a) Condition.t) ->
      if c.Condition.t_start base_start then begin
        ft.(i) <- Interval.lo c.Condition.bounds;
        lt.(i) <- Interval.hi c.Condition.bounds
      end)
    conds;
  Tstate.make ~base:base_start ~now:Rational.zero ~ft ~lt

let make base conds =
  let conds = Array.of_list conds in
  let cond_names = Array.map (fun c -> c.Condition.cname) conds in
  Array.iteri
    (fun i n ->
      Array.iteri
        (fun j n' ->
          if i < j && String.equal n n' then
            invalid_arg
              (Printf.sprintf "Time_automaton.make: duplicate condition %S" n))
        cond_names)
    cond_names;
  {
    base;
    conds;
    cond_names;
    start = List.map (initial_of_base conds) base.Ioa.start;
  }

let of_boundmap base bm =
  (match Tm_timed.Boundmap.covers bm base with
  | Ok () -> ()
  | Error m -> invalid_arg ("Time_automaton.of_boundmap: " ^ m));
  make base (Semantics.conds_of_boundmap base bm)

let cond_index t name =
  let found = ref (-1) in
  Array.iteri
    (fun i n -> if !found < 0 && String.equal n name then found := i)
    t.cond_names;
  if !found < 0 then raise Not_found else !found

let window t (s : 's Tstate.t) act =
  if not (Ioa.enabled t.base s.Tstate.base act) then None
  else begin
    let lo = ref s.Tstate.now in
    let hi = ref Time.infinity in
    Array.iteri
      (fun i (c : ('s, 'a) Condition.t) ->
        (* 4(a)/3(a) upper part: t <= Lt(U) for every condition *)
        hi := Time.min !hi s.Tstate.lt.(i);
        (* 3(a) lower part: t >= Ft(U) when pi is in Pi(U) *)
        if c.Condition.in_pi act then lo := Rational.max !lo s.Tstate.ft.(i))
      t.conds;
    if Time.le_q !lo !hi then Some (!lo, !hi) else None
  end

let recompute t (s' : 's Tstate.t) act tm base_post =
  let n = Array.length t.conds in
  let ft = Array.make n Rational.zero in
  let lt = Array.make n Time.infinity in
  Array.iteri
    (fun i (c : ('s, 'a) Condition.t) ->
      let triggered = c.Condition.t_step s'.Tstate.base act base_post in
      if c.Condition.in_pi act then
        (* 3(b) / 3(c) *)
        if triggered then begin
          ft.(i) <- Rational.add tm (Interval.lo c.Condition.bounds);
          lt.(i) <- Time.add_q (Interval.hi c.Condition.bounds) tm
        end
        else begin
          ft.(i) <- Rational.zero;
          lt.(i) <- Time.infinity
        end
      else if triggered then begin
        (* 4(b): a new prediction, merged with any prior one *)
        ft.(i) <- Rational.add tm (Interval.lo c.Condition.bounds);
        lt.(i) <-
          Time.min s'.Tstate.lt.(i)
            (Time.add_q (Interval.hi c.Condition.bounds) tm)
      end
      else if c.Condition.in_s base_post then begin
        (* 4(d): disabled, back to defaults *)
        ft.(i) <- Rational.zero;
        lt.(i) <- Time.infinity
      end
      else begin
        (* 4(c): predictions carry over *)
        ft.(i) <- s'.Tstate.ft.(i);
        lt.(i) <- s'.Tstate.lt.(i)
      end)
    t.conds;
  Tstate.make ~base:base_post ~now:tm ~ft ~lt

let fire_det t s' act tm ~base_post =
  match window t s' act with
  | None -> None
  | Some (lo, hi) ->
      if not (Rational.(lo <= tm) && Time.le_q tm hi) then None
      else if not (Ioa.step_exists t.base s'.Tstate.base act base_post) then
        None
      else Some (recompute t s' act tm base_post)

let fire t s' act tm =
  match window t s' act with
  | None -> []
  | Some (lo, hi) ->
      if not (Rational.(lo <= tm) && Time.le_q tm hi) then []
      else
        List.map
          (fun base_post -> recompute t s' act tm base_post)
          (t.base.Ioa.delta s'.Tstate.base act)

let check_step t s' (act, tm) s =
  match fire_det t s' act tm ~base_post:s.Tstate.base with
  | None -> false
  | Some s'' -> Tstate.equal t.base.Ioa.equal_state s s''

let enabled_moves t s =
  List.filter_map
    (fun act ->
      match window t s act with
      | None -> None
      | Some (lo, hi) -> Some (act, lo, hi))
    t.base.Ioa.alphabet

type ('s, 'a) texec = ('s Tstate.t, 'a * Rational.t) Execution.t

let is_execution t (e : ('s, 'a) texec) =
  List.exists
    (Tstate.equal t.base.Ioa.equal_state e.Execution.first)
    t.start
  && List.for_all
       (fun (pre, move, post) -> check_step t pre move post)
       (Execution.steps e)

let project (e : ('s, 'a) texec) =
  Tseq.of_moves e.Execution.first.Tstate.base
    (List.map
       (fun ((act, tm), s) -> ((act, tm), s.Tstate.base))
       e.Execution.moves)

let equal_state t = Tstate.equal t.base.Ioa.equal_state
let hash_state t = Tstate.hash t.base.Ioa.hash_state
let pp_state t = Tstate.pp ~names:t.cond_names t.base.Ioa.pp_state

let max_constant t =
  Array.fold_left
    (fun acc (c : ('s, 'a) Condition.t) ->
      let acc = Rational.max acc (Interval.lo c.Condition.bounds) in
      match Interval.hi c.Condition.bounds with
      | Time.Fin q -> Rational.max acc q
      | Time.Inf -> acc)
    Rational.one t.conds
