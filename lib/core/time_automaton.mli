(** The [time(A, U)] construction (Section 3.1) and its boundmap
    special case [time(A, b)] (Section 3.2).

    Given an I/O automaton [A] and timing conditions [U], [time(A, U)]
    is an ordinary automaton over actions [(π, t)] whose states carry
    the predictive components of {!Tstate}; the timing restrictions of
    [U] are built into the step relation (conditions 1–4 of the
    definition).  Because the action component [t] ranges over the
    rationals, the action alphabet is infinite and the value is its own
    record type rather than an {!Tm_ioa.Ioa.t}; {!window} and {!fire}
    expose what simulation and exploration need. *)

type ('s, 'a) t = private {
  base : ('s, 'a) Tm_ioa.Ioa.t;
  conds : ('s, 'a) Tm_timed.Condition.t array;
  cond_names : string array;
  start : 's Tstate.t list;
}

val make :
  ('s, 'a) Tm_ioa.Ioa.t -> ('s, 'a) Tm_timed.Condition.t list -> ('s, 'a) t
(** [time(A, U)].  Initial predictive components follow the paper: if
    the start state triggers [U] then [Ft = b_l, Lt = b_u], otherwise
    the defaults [Ft = 0, Lt = ∞].
    @raise Invalid_argument on duplicate condition names. *)

val of_boundmap :
  ('s, 'a) Tm_ioa.Ioa.t -> Tm_timed.Boundmap.t -> ('s, 'a) t
(** [time(A, b)] — i.e. [make A U_b] with one [cond(C)] per partition
    class (Section 3.2).
    @raise Invalid_argument if the boundmap misses a class. *)

val cond_index : ('s, 'a) t -> string -> int
(** Index of a condition by name, for reading [ft]/[lt] components in
    mapping definitions.  @raise Not_found. *)

val window :
  ('s, 'a) t ->
  's Tstate.t ->
  'a ->
  (Tm_base.Rational.t * Tm_base.Time.t) option
(** The set of times at which [π] may fire from a state, as an interval
    [[max(now, Ft over conditions with π ∈ Π), min over all Lt]]:
    conditions 2, 3(a) and 4(a) of the construction.  [None] when [π]
    is not enabled in the base state or the interval is empty. *)

val fire_det :
  ('s, 'a) t ->
  's Tstate.t ->
  'a ->
  Tm_base.Rational.t ->
  base_post:'s ->
  's Tstate.t option
(** The unique successor for a chosen base-automaton post-state, or
    [None] when [(π, t)] is not a legal move (conditions 1–4).  Given
    the base step, the new [Ft]/[Lt] components are determined
    (conditions 3(b,c) / 4(b,c,d)). *)

val fire :
  ('s, 'a) t ->
  's Tstate.t ->
  'a ->
  Tm_base.Rational.t ->
  's Tstate.t list
(** All successors of a move, one per base post-state; [[]] when
    illegal. *)

val check_step :
  ('s, 'a) t ->
  's Tstate.t ->
  'a * Tm_base.Rational.t ->
  's Tstate.t ->
  bool
(** Membership test for the step relation of [time(A, U)]. *)

val enabled_moves :
  ('s, 'a) t -> 's Tstate.t -> ('a * Tm_base.Rational.t * Tm_base.Time.t) list
(** For every base action enabled with a nonempty window, the action
    and its window endpoints. *)

type ('s, 'a) texec = ('s Tstate.t, 'a * Tm_base.Rational.t) Tm_ioa.Execution.t
(** Executions of [time(A, U)]. *)

val is_execution : ('s, 'a) t -> ('s, 'a) texec -> bool

val project : ('s, 'a) texec -> ('s, 'a) Tm_timed.Tseq.t
(** [project α]: map each [time(A,U)] state to its A-state, keeping the
    (action, time) pairs (Section 3.1). *)

val equal_state : ('s, 'a) t -> 's Tstate.t -> 's Tstate.t -> bool
val hash_state : ('s, 'a) t -> 's Tstate.t -> int
val pp_state : ('s, 'a) t -> Format.formatter -> 's Tstate.t -> unit

val max_constant : ('s, 'a) t -> Tm_base.Rational.t
(** Largest finite bound constant among the conditions; the natural
    normalization clamp and exploration delay cap. *)
