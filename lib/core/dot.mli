(** Graphviz export of exploration graphs.

    Handy for inspecting small discretized graphs and untimed
    reachability graphs ([dot -Tsvg graph.dot > graph.svg]). *)

val of_tgraph :
  ?max_nodes:int -> ('s, 'a) Tgraph.t -> string
(** The discretized [time(A, U)] graph: nodes are normalized predictive
    states, edge labels are "action @ relative time".  Output is
    truncated (with a warning node) beyond [max_nodes] (default 500). *)

val of_explore :
  ?max_nodes:int -> ('s, 'a) Tm_ioa.Explore.graph -> string
(** An untimed reachability graph. *)
