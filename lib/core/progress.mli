(** Time divergence (non-Zenoness) and deadlock analysis.

    The paper's liveness story rests on one assumption: in infinite
    timed executions, time increases without bound (Section 1 and the
    discussion after Theorem 3.4).  This module makes that assumption
    checkable on the discretized graph of a [time(A, U)] automaton:

    - a {b deadlock} is a reachable state with no outgoing move at all
      (Lemma 4.2 asserts the resource manager has none; the raw signal
      relay has plenty — hence dummification);
    - a {b Zeno trap} is a reachable state from which time can no
      longer diverge: every infinite continuation has bounded total
      duration.  On the finite graph this is equivalent to not reaching
      any strongly connected component that contains a
      positive-duration edge.

    Note that a system may admit Zeno {e executions} (the eager
    schedule of the Section 4 manager stutters ELSE at one instant
    forever) while having no Zeno {e traps}: the paper's semantics
    simply excludes such executions from the set of timed executions,
    which is harmless as long as every prefix can still be extended
    with diverging time — exactly what this module verifies. *)

type ('s, 'a) report = {
  graph : ('s, 'a) Tgraph.t;
  deadlocked : int list;  (** node ids with no outgoing move *)
  zeno_trapped : int list;
      (** node ids (deadlocks excluded) from which time cannot
          diverge *)
}

val analyze : ?params:Tgraph.params -> ('s, 'a) Time_automaton.t ->
  ('s, 'a) report

val ok : ('s, 'a) report -> bool
(** No deadlocks and no Zeno traps: every reachable state has an
    extension with unbounded time, so Theorem 3.4 delivers the liveness
    half of every upper bound. *)

val pp_report :
  Format.formatter -> ('s, 'a) report -> unit
