(** Discretized exploration of a [time(A, U)] automaton.

    Action times range over the rationals, so the raw state space of
    [time(A, U)] is uncountable.  For exhaustive checking we restrict
    moves to a rational grid [1/denominator] (which must divide every
    bound constant, so no interval endpoint falls between grid points),
    cap pure waiting at [cap] beyond the current time, and work with
    {!Tstate.normalize}d states.  For a finite base automaton the
    resulting graph is finite; the grid/clamp assumptions are the
    standard region-construction argument and are recorded in the
    result. *)

type params = {
  denominator : int;  (** grid step is [1/denominator] *)
  cap : Tm_base.Rational.t;
      (** candidate firing times are drawn from
          [[window lo, min (window hi) (now + cap)]] *)
  clamp : Tm_base.Rational.t;  (** normalization floor, see {!Tstate} *)
  limit : int;  (** maximum number of nodes *)
  deadline_s : float option;
      (** wall-clock budget for {!build}; exceeding it stops the
          exploration with [truncated = true] *)
}

val default_params : ('s, 'a) Time_automaton.t -> params
(** Grid from the denominators of all bound constants; [cap] and
    [clamp] from the largest constant. *)

type ('s, 'a) t = {
  aut : ('s, 'a) Time_automaton.t;
  params : params;
  nodes : 's Tstate.t Tm_base.Hstore.t;  (** normalized states *)
  edges : (int * ('a * Tm_base.Rational.t) * int) list;
      (** (source, (action, relative time), target); the move fired at
          time [Δt] from the source with its clock shifted to 0 *)
  truncated : bool;
}

val moves :
  params ->
  ('s, 'a) Time_automaton.t ->
  's Tstate.t ->
  ('a * Tm_base.Rational.t) list
(** Grid moves out of a (normalized) state: every enabled action at
    every grid time in its (capped) window. *)

val build : ?params:params -> ('s, 'a) Time_automaton.t -> ('s, 'a) t

val node_count : ('s, 'a) t -> int
val edge_count : ('s, 'a) t -> int
