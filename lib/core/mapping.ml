module Rational = Tm_base.Rational
module Hstore = Tm_base.Hstore
module Execution = Tm_ioa.Execution
module Metrics = Tm_obs.Metrics
module Tracing = Tm_obs.Tracing

let c_product_states = Metrics.counter "mapping.product_states"
let c_product_edges = Metrics.counter "mapping.product_edges"
let c_exec_steps = Metrics.counter "mapping.exec_steps"
let c_failures = Metrics.counter "mapping.failures"

type 's t = {
  mname : string;
  contains : 's Tstate.t -> 's Tstate.t -> bool;
}

type ('s, 'a) failure =
  | No_start_image of 's Tstate.t
  | Move_not_enabled of {
      source_pre : 's Tstate.t;
      target_pre : 's Tstate.t;
      action : 'a;
      time : Rational.t;
    }
  | Image_lost of {
      source_post : 's Tstate.t;
      target_post : 's Tstate.t;
      action : 'a;
      time : Rational.t;
    }

let pp_failure (aut : ('s, 'a) Time_automaton.t) fmt = function
  | No_start_image s ->
      Format.fprintf fmt "no start-state image for %a"
        (Time_automaton.pp_state aut) s
  | Move_not_enabled { source_pre; target_pre; action; time } ->
      Format.fprintf fmt
        "move (%a, %a) from source %a not enabled in target witness %a"
        aut.Time_automaton.base.Tm_ioa.Ioa.pp_action action Rational.pp time
        (Time_automaton.pp_state aut) source_pre
        (Time_automaton.pp_state aut) target_pre
  | Image_lost { source_post; target_post; action; time } ->
      Format.fprintf fmt
        "after (%a, %a): target successor %a is not in the image of %a"
        aut.Time_automaton.base.Tm_ioa.Ioa.pp_action action Rational.pp time
        (Time_automaton.pp_state aut) target_post
        (Time_automaton.pp_state aut) source_post

let start_witness ~source ~target f s0 =
  let eq_base = source.Time_automaton.base.Tm_ioa.Ioa.equal_state in
  match
    List.find_opt
      (fun u0 ->
        eq_base u0.Tstate.base s0.Tstate.base
        && Rational.equal u0.Tstate.now s0.Tstate.now
        && f.contains s0 u0)
      target.Time_automaton.start
  with
  | Some u0 -> Ok u0
  | None -> Error (No_start_image s0)

let step_witness ~target f source_post target_pre (act, tm) =
  match
    Time_automaton.fire_det target target_pre act tm
      ~base_post:source_post.Tstate.base
  with
  | None -> Error `Not_enabled
  | Some u ->
      if f.contains source_post u then Ok u else Error (`Image_lost u)

let check_exec ~source ~target f (e : ('s, 'a) Time_automaton.texec) =
  let ( let* ) r k = Result.bind r k in
  let* u0 = start_witness ~source ~target f e.Execution.first in
  let rec go u' steps =
    match steps with
    | [] -> Ok ()
    | (pre, (act, tm), post) :: rest -> (
        ignore pre;
        Metrics.incr c_exec_steps;
        match step_witness ~target f post u' (act, tm) with
        | Ok u -> go u rest
        | Error `Not_enabled ->
            Error
              (Move_not_enabled
                 { source_pre = pre; target_pre = u'; action = act; time = tm })
        | Error (`Image_lost u) ->
            Error
              (Image_lost
                 { source_post = post; target_post = u; action = act; time = tm }))
  in
  go u0 (Execution.steps e)

type stats = { product_states : int; product_edges : int; truncated : bool }

let check_exhaustive (type s a) ?params ~(source : (s, a) Time_automaton.t)
    ~(target : (s, a) Time_automaton.t) (f : s t) () =
  Tracing.with_span "mapping.check_exhaustive" ~args:[ ("mapping", f.mname) ]
  @@ fun () ->
  let params =
    match params with Some p -> p | None -> Tgraph.default_params source
  in
  let eq = Time_automaton.equal_state source in
  let hash = Time_automaton.hash_state source in
  let store =
    Hstore.create
      ~equal:(fun (s1, u1) (s2, u2) -> eq s1 s2 && eq u1 u2)
      ~hash:(fun (s, u) -> (hash s * 31) + hash u)
      1024
  in
  let normalize st = Tstate.normalize ~clamp:params.Tgraph.clamp st in
  let queue = Queue.create () in
  let edges = ref 0 in
  let truncated = ref false in
  let exception Fail of (s, a) failure in
  try
    List.iter
      (fun s0 ->
        match start_witness ~source ~target f s0 with
        | Error e -> raise (Fail e)
        | Ok u0 -> (
            let pair = (normalize s0, normalize u0) in
            match Hstore.add store pair with
            | `Added id ->
                Metrics.incr c_product_states;
                Queue.add id queue
            | `Present _ -> ()))
      source.Time_automaton.start;
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      let s, u = Hstore.key_of_id store id in
      List.iter
        (fun (act, tm) ->
          List.iter
            (fun s_post ->
              incr edges;
              Metrics.incr c_product_edges;
              match step_witness ~target f s_post u (act, tm) with
              | Error `Not_enabled ->
                  raise
                    (Fail
                       (Move_not_enabled
                          {
                            source_pre = s;
                            target_pre = u;
                            action = act;
                            time = tm;
                          }))
              | Error (`Image_lost u_post) ->
                  raise
                    (Fail
                       (Image_lost
                          {
                            source_post = s_post;
                            target_post = u_post;
                            action = act;
                            time = tm;
                          }))
              | Ok u_post ->
                  if Hstore.length store >= params.Tgraph.limit then
                    truncated := true
                  else
                    let pair = (normalize s_post, normalize u_post) in
                    (match Hstore.add store pair with
                    | `Added id' ->
                        Metrics.incr c_product_states;
                        Queue.add id' queue
                    | `Present _ -> ()))
            (Time_automaton.fire source s act tm))
        (Tgraph.moves params source s)
    done;
    Ok
      {
        product_states = Hstore.length store;
        product_edges = !edges;
        truncated = !truncated;
      }
  with Fail e ->
    (* first counterexample: count it and mark it in the trace *)
    Metrics.incr c_failures;
    Tracing.instant "mapping.counterexample" ~args:[ ("mapping", f.mname) ];
    Error e
