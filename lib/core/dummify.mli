(** Dummification (Section 5).

    Mapping proofs via Theorem 3.4 need all timed executions to be
    infinite.  For a timed automaton with finite executions, the paper
    composes it with a "dummy" component whose single [NULL] output is
    always enabled (with bounds [[n1, n2]], [n2 < ∞]); then all timed
    executions of the dummified automaton are infinite (Lemma 5.1) and
    correspond exactly to those of the original (Lemmas 5.2/5.3,
    Theorem 5.4).

    The dummy has one state, so the composed state space is isomorphic
    to the original's; we keep the state type and extend the action
    type with {!action.Null}. *)

type 'a action = Base of 'a | Null

val null_class : string
(** Partition-class name of the dummy ("NULL"). *)

val automaton : ('s, 'a) Tm_ioa.Ioa.t -> ('s, 'a action) Tm_ioa.Ioa.t
(** [Ã]: alphabet extended with [Null] (an output that changes no
    state), partition extended with the {!null_class}.
    @raise Invalid_argument if the automaton already has a class named
    "NULL". *)

val boundmap :
  Tm_timed.Boundmap.t -> null_bounds:Tm_base.Interval.t -> Tm_timed.Boundmap.t
(** [b̃]: the original boundmap plus bounds for the dummy class. *)

val condition :
  ('s, 'a) Tm_timed.Condition.t -> ('s, 'a action) Tm_timed.Condition.t
(** [Ũ]: same triggers, bounds and disabling set; [Null ∉ Π(Ũ)]. *)

val tseq : ('s, 'a action) Tm_timed.Tseq.t -> ('s, 'a) Tm_timed.Tseq.t
(** [undum α̃]: remove the [Null] moves. *)
