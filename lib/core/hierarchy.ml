module Rational = Tm_base.Rational
module Hstore = Tm_base.Hstore
module Execution = Tm_ioa.Execution

type ('s, 'a) level = {
  target : ('s, 'a) Time_automaton.t;
  map : 's Mapping.t;
}

type ('s, 'a) chain_failure = {
  level_index : int;
  level_name : string;
  failure : ('s, 'a) Mapping.failure;
}

let fail i (lv : ('s, 'a) level) failure =
  Error { level_index = i; level_name = lv.map.Mapping.mname; failure }

(* Initial witnesses, one per level: level i's witness is a start state
   of its target containing the witness of level i-1 (level 0 contains
   the source start state). *)
let start_witnesses ~source ~levels s0 =
  let rec go i prev acc = function
    | [] -> Ok (List.rev acc)
    | lv :: rest -> (
        match
          Mapping.start_witness ~source ~target:lv.target lv.map prev
        with
        | Error e -> fail i lv e
        | Ok u -> go (i + 1) u (u :: acc) rest)
  in
  ignore source;
  go 0 s0 [] levels

(* Advance all witnesses by one move; [post] is the source post-state. *)
let step_witnesses ~levels witnesses post (act, tm) =
  let rec go i prev_post acc lvs ws =
    match (lvs, ws) with
    | [], [] -> Ok (List.rev acc)
    | lv :: lvs, w :: ws -> (
        match
          Time_automaton.fire_det lv.target w act tm
            ~base_post:post.Tstate.base
        with
        | None ->
            fail i lv
              (Mapping.Move_not_enabled
                 {
                   source_pre = prev_post;
                   target_pre = w;
                   action = act;
                   time = tm;
                 })
        | Some u ->
            if lv.map.Mapping.contains prev_post u then
              go (i + 1) u (u :: acc) lvs ws
            else
              fail i lv
                (Mapping.Image_lost
                   {
                     source_post = prev_post;
                     target_post = u;
                     action = act;
                     time = tm;
                   }))
    | _ -> invalid_arg "Hierarchy: witness arity mismatch"
  in
  go 0 post [] levels witnesses

let check_exec ~source ~levels (e : ('s, 'a) Time_automaton.texec) =
  let ( let* ) r k = Result.bind r k in
  let* ws = start_witnesses ~source ~levels e.Execution.first in
  let rec go ws steps =
    match steps with
    | [] -> Ok ()
    | (_, (act, tm), post) :: rest ->
        let* ws = step_witnesses ~levels ws post (act, tm) in
        go ws rest
  in
  go ws (Execution.steps e)

let check_exhaustive (type s a) ?params
    ~(source : (s, a) Time_automaton.t) ~(levels : (s, a) level list) () =
  let params =
    match params with Some p -> p | None -> Tgraph.default_params source
  in
  let eq = Time_automaton.equal_state source in
  let hash = Time_automaton.hash_state source in
  let eq_key (s1, ws1) (s2, ws2) =
    eq s1 s2 && List.for_all2 eq ws1 ws2
  in
  let hash_key (s, ws) =
    List.fold_left (fun h w -> (h * 31) + hash w) (hash s) ws
  in
  let store = Hstore.create ~equal:eq_key ~hash:hash_key 1024 in
  let normalize st = Tstate.normalize ~clamp:params.Tgraph.clamp st in
  let queue = Queue.create () in
  let edges = ref 0 in
  let truncated = ref false in
  let exception Fail of (s, a) chain_failure in
  let ok_or_raise = function Ok v -> v | Error e -> raise (Fail e) in
  try
    List.iter
      (fun s0 ->
        let ws = ok_or_raise (start_witnesses ~source ~levels s0) in
        let key = (normalize s0, List.map normalize ws) in
        match Hstore.add store key with
        | `Added id -> Queue.add id queue
        | `Present _ -> ())
      source.Time_automaton.start;
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      let s, ws = Hstore.key_of_id store id in
      List.iter
        (fun (act, tm) ->
          List.iter
            (fun s_post ->
              incr edges;
              let ws' =
                ok_or_raise (step_witnesses ~levels ws s_post (act, tm))
              in
              if Hstore.length store >= params.Tgraph.limit then
                truncated := true
              else
                let key = (normalize s_post, List.map normalize ws') in
                match Hstore.add store key with
                | `Added id' -> Queue.add id' queue
                | `Present _ -> ())
            (Time_automaton.fire source s act tm))
        (Tgraph.moves params source s)
    done;
    Ok
      {
        Mapping.product_states = Hstore.length store;
        product_edges = !edges;
        truncated = !truncated;
      }
  with Fail e -> Error e
