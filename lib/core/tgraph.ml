module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Hstore = Tm_base.Hstore
module Condition = Tm_timed.Condition
module Tracing = Tm_obs.Tracing

type params = {
  denominator : int;
  cap : Rational.t;
  clamp : Rational.t;
  limit : int;
  deadline_s : float option;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let default_params (aut : ('s, 'a) Time_automaton.t) =
  let denominator =
    Array.fold_left
      (fun acc (c : ('s, 'a) Condition.t) ->
        let acc = lcm acc (Interval.lo c.Condition.bounds).Rational.den in
        match Interval.hi c.Condition.bounds with
        | Time.Fin q -> lcm acc q.Rational.den
        | Time.Inf -> acc)
      1 aut.Time_automaton.conds
  in
  let m = Time_automaton.max_constant aut in
  let clamp = Rational.mul_int 4 m in
  {
    denominator;
    cap = Rational.add clamp m;
    clamp;
    limit = 500_000;
    deadline_s = None;
  }

type ('s, 'a) t = {
  aut : ('s, 'a) Time_automaton.t;
  params : params;
  nodes : 's Tstate.t Hstore.t;
  edges : (int * ('a * Rational.t) * int) list;
  truncated : bool;
}

let grid_times params lo hi =
  (* Grid points of [lo, hi]; [lo] is included even if off-grid (it is
     an interval endpoint and therefore semantically relevant). *)
  let step = Rational.make 1 params.denominator in
  let first =
    if Rational.divides step lo then lo
    else
      Rational.mul_int
        (Rational.ceil (Rational.div lo step))
        step
  in
  let rec up t acc =
    if Rational.(t > hi) then List.rev acc else up (Rational.add t step) (t :: acc)
  in
  let pts = up first [] in
  if Rational.divides step lo then pts else lo :: pts

let moves params (aut : ('s, 'a) Time_automaton.t) s =
  List.concat_map
    (fun (act, lo, hi) ->
      let hi_capped =
        let cap_abs = Rational.add s.Tstate.now params.cap in
        match hi with
        | Time.Fin q -> Rational.min q cap_abs
        | Time.Inf -> cap_abs
      in
      if Rational.(hi_capped < lo) then []
      else
        List.map (fun t -> (act, t)) (grid_times params lo hi_capped))
    (Time_automaton.enabled_moves aut s)

let build ?params (aut : ('s, 'a) Time_automaton.t) =
  let params =
    match params with Some p -> p | None -> default_params aut
  in
  let normalize s = Tstate.normalize ~clamp:params.clamp s in
  let store =
    Hstore.create
      ~equal:(Time_automaton.equal_state aut)
      ~hash:(Time_automaton.hash_state aut)
      1024
  in
  let queue = Queue.create () in
  let edges = ref [] in
  let truncated = ref false in
  List.iter
    (fun s ->
      match Hstore.add store (normalize s) with
      | `Added id -> Queue.add id queue
      | `Present _ -> ())
    aut.Time_automaton.start;
  let deadline = Option.map (fun d -> Tracing.now_s () +. d) params.deadline_s in
  let expired () =
    match deadline with None -> false | Some t -> Tracing.now_s () > t
  in
  while not (Queue.is_empty queue) do
    if expired () then begin
      truncated := true;
      Queue.clear queue
    end
    else begin
      let id = Queue.pop queue in
      let s = Hstore.key_of_id store id in
      List.iter
        (fun (act, t) ->
          List.iter
            (fun s' ->
              if Hstore.length store >= params.limit then truncated := true
              else
                let s'n = normalize s' in
                match Hstore.add store s'n with
                | `Added id' ->
                    edges := (id, (act, t), id') :: !edges;
                    Queue.add id' queue
                | `Present id' -> edges := (id, (act, t), id') :: !edges)
            (Time_automaton.fire aut s act t))
        (moves params aut s)
    end
  done;
  {
    aut;
    params;
    nodes = store;
    edges = List.rev !edges;
    truncated = !truncated;
  }

let node_count g = Hstore.length g.nodes
let edge_count g = List.length g.edges
