(** The completeness construction (Section 7, Theorem 7.1).

    If every timed execution of [(A, b)] satisfies the conditions [U],
    then a strong possibilities mapping exists from [time(Ã, b̃)] to
    [time(Ã, Ũ)]; the paper constructs it from, per condition [U] and
    reachable state [s]:

    - [sup { first_U α | α ∈ Ext(s) }] — the latest, over all infinite
      extensions of [s], that an action of [Π(U)] or a state of [S(U)]
      first occurs, and
    - [inf { first_ΠU α | α ∈ Ext(s) }] — the earliest that an action
      of [Π(U)] first occurs no later than any [S(U)] state.

    On the discretized normalized graph of {!Tgraph} both quantities
    are computable by value iteration (longest/shortest
    first-occurrence paths, with divergence detected as [∞]); the
    mapping of Theorem 7.1 is then an executable predicate that can be
    re-verified with {!Mapping.check_exhaustive}.

    The same analysis yields *exact* (on the grid) envelopes of
    first-occurrence times, which the benchmark harness compares
    against the paper's closed-form bounds.

    Requirement: every node of the graph must have a successor (all
    executions extend to infinite ones) — dummify first if the system
    has finite executions. *)

type ('s, 'a) t

exception Dead_state
(** Raised by {!analyze} when some reachable discretized state has no
    outgoing move; apply {!Dummify} to the system first. *)

val analyze :
  ?params:Tgraph.params ->
  source:('s, 'a) Time_automaton.t ->
  conds:('s, 'a) Tm_timed.Condition.t array ->
  unit ->
  ('s, 'a) t
(** Build the graph of [source] and compute both value tables for every
    condition.  [conds] are the requirement conditions [U], given over
    the base states/actions of [source]. *)

val graph : ('s, 'a) t -> ('s, 'a) Tgraph.t

val sup_first : ('s, 'a) t -> cond:int -> node:int -> Tm_base.Time.t
(** [∞] when some extension avoids [Π ∪ S] forever. *)

val inf_first_pi : ('s, 'a) t -> cond:int -> node:int -> Tm_base.Time.t
(** [∞] when no extension reaches [Π] before [S]. *)

val start_bounds : ('s, 'a) t -> cond:int -> Tm_base.Time.t * Tm_base.Time.t
(** [(inf, sup)] from the (first) start node: the exact envelope of the
    first [Π]-occurrence time over all discretized executions. *)

val bounds_after :
  ('s, 'a) t ->
  trigger:('s -> 'a -> 's -> bool) ->
  cond:int ->
  (Tm_base.Time.t * Tm_base.Time.t) option
(** Envelope of the first [Π]-occurrence measured from every reachable
    edge matching [trigger] (e.g. inter-grant gaps measured from GRANT
    steps); [None] when no such edge is reachable. *)

val mapping :
  ('s, 'a) t -> spec:('s, 'a) Time_automaton.t -> 's Mapping.t
(** The mapping of Theorem 7.1: [u ∈ f(s)] iff for every condition
    index [i] of [spec], [u.lt(i) >= s.now + sup_first] and
    [u.ft(i) <= s.now + inf_first_pi] at the node of [normalize s].
    Spec conditions are matched to analysis conditions by name.
    States outside the analyzed graph are mapped to the empty set. *)
