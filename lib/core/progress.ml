module Rational = Tm_base.Rational

type ('s, 'a) report = {
  graph : ('s, 'a) Tgraph.t;
  deadlocked : int list;
  zeno_trapped : int list;
}

(* Tarjan's strongly connected components, iterative to stay safe on
   deep graphs. *)
let sccs n out =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comp_of = Array.make n (-1) in
  let ncomps = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (_, w) ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      out.(v);
    if lowlink.(v) = index.(v) then begin
      let comp = !ncomps in
      incr ncomps;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp_of.(w) <- comp;
            if w <> v then pop ()
      in
      pop ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (comp_of, !ncomps)

let analyze ?params (aut : ('s, 'a) Time_automaton.t) =
  let graph = Tgraph.build ?params aut in
  let n = Tgraph.node_count graph in
  let out = Array.make n [] in
  List.iter
    (fun (src, (_, t), dst) -> out.(src) <- (t, dst) :: out.(src))
    graph.Tgraph.edges;
  let deadlocked = ref [] in
  for v = n - 1 downto 0 do
    if out.(v) = [] then deadlocked := v :: !deadlocked
  done;
  let comp_of, ncomps = sccs n out in
  (* An SCC is "diverging" if it contains an internal positive-duration
     edge; a node is Zeno-trapped unless it can reach a diverging SCC.
     Edge times in the graph are relative to the source node's clock,
     so an edge duration is just its time label. *)
  let diverging = Array.make ncomps false in
  List.iter
    (fun (src, (_, t), dst) ->
      if comp_of.(src) = comp_of.(dst) && Rational.sign t > 0 then
        diverging.(comp_of.(src)) <- true)
    graph.Tgraph.edges;
  (* Propagate reachability of diverging SCCs backwards: fixpoint over
     nodes (the graph is small; a simple iteration suffices). *)
  let escapes = Array.init n (fun v -> diverging.(comp_of.(v))) in
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to n - 1 do
      if not escapes.(v) then
        if List.exists (fun (_, w) -> escapes.(w)) out.(v) then begin
          escapes.(v) <- true;
          changed := true
        end
    done
  done;
  let zeno_trapped = ref [] in
  for v = n - 1 downto 0 do
    if out.(v) <> [] && not escapes.(v) then zeno_trapped := v :: !zeno_trapped
  done;
  { graph; deadlocked = !deadlocked; zeno_trapped = !zeno_trapped }

let ok r = r.deadlocked = [] && r.zeno_trapped = []

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%d reachable discretized states: %d deadlocked, %d Zeno-trapped%s@]"
    (Tgraph.node_count r.graph)
    (List.length r.deadlocked)
    (List.length r.zeno_trapped)
    (if ok r then " — time can always diverge" else "")
