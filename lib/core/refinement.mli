(** Mapping-free refinement checking.

    The paper's method asks the prover to *supply* a strong
    possibilities mapping; by Theorem 7.1 one exists whenever the
    refinement holds at all.  On the discretized graph the existence
    question is directly decidable: because [time(A, V)] steps are
    deterministic given the base step and the action time, the
    refinement "every (discretized) execution of [time(A, U)] is an
    execution of [time(A, V)]" holds iff the deterministic witness
    never gets stuck — which is exactly {!Mapping.check_exhaustive}
    with the full relation as the mapping.

    Use this to *test* whether a timing claim holds before investing in
    a proof mapping; a [Error] refutation is genuine, an [Ok] verdict is
    exact on the grid. *)

val full_relation : 's Mapping.t
(** The mapping whose image is everything (identity on base state and
    current time is still enforced by the checkers). *)

val check :
  ?params:Tgraph.params ->
  source:('s, 'a) Time_automaton.t ->
  target:('s, 'a) Time_automaton.t ->
  unit ->
  (Mapping.stats, ('s, 'a) Mapping.failure) result
(** Discretized refinement: can the target always match the source? *)
