module Ioa = Tm_ioa.Ioa
module Condition = Tm_timed.Condition
module Tseq = Tm_timed.Tseq

type 'a action = Base of 'a | Null

let null_class = "NULL"

let automaton (a : ('s, 'a) Ioa.t) : ('s, 'a action) Ioa.t =
  if List.mem null_class a.Ioa.classes then
    invalid_arg "Dummify.automaton: class NULL already present";
  {
    Ioa.name = a.Ioa.name ^ "~";
    start = a.Ioa.start;
    alphabet = Null :: List.map (fun act -> Base act) a.Ioa.alphabet;
    kind_of =
      (function Null -> Ioa.Output | Base act -> a.Ioa.kind_of act);
    delta =
      (fun s -> function
        | Null -> [ s ]
        | Base act -> a.Ioa.delta s act);
    classes = null_class :: a.Ioa.classes;
    class_of =
      (function Null -> Some null_class | Base act -> a.Ioa.class_of act);
    equal_state = a.Ioa.equal_state;
    hash_state = a.Ioa.hash_state;
    pp_state = a.Ioa.pp_state;
    equal_action =
      (fun x y ->
        match (x, y) with
        | Null, Null -> true
        | Base x, Base y -> a.Ioa.equal_action x y
        | Null, Base _ | Base _, Null -> false);
    pp_action =
      (fun fmt -> function
        | Null -> Format.pp_print_string fmt "NULL"
        | Base act -> a.Ioa.pp_action fmt act);
  }

let boundmap bm ~null_bounds = Tm_timed.Boundmap.add bm null_class null_bounds

let condition (c : ('s, 'a) Condition.t) : ('s, 'a action) Condition.t =
  {
    Condition.cname = c.Condition.cname;
    t_start = c.Condition.t_start;
    t_step =
      (fun s' act s ->
        match act with
        | Null -> false
        | Base act -> c.Condition.t_step s' act s);
    bounds = c.Condition.bounds;
    in_pi = (function Null -> false | Base act -> c.Condition.in_pi act);
    in_s = c.Condition.in_s;
  }

let tseq (t : ('s, 'a action) Tseq.t) : ('s, 'a) Tseq.t =
  Tseq.of_moves t.Tseq.first
    (List.filter_map
       (fun ((act, tm), s) ->
         match act with
         | Null -> None
         | Base act -> Some ((act, tm), s))
       t.Tseq.moves)
