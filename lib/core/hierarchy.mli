(** Hierarchical mapping proofs (Section 6.3).

    Instead of one mapping from the assumptions automaton to the
    requirements automaton, a proof may pass through a chain of
    intermediate requirement automata [B_{n-1}, …, B_0, B], with a
    strong possibilities mapping between each consecutive pair; the
    composition of the chain is the desired mapping (Corollary 6.3).

    A chain level pairs a target automaton with the mapping from the
    previous level into it.  The checkers walk executions of the lowest
    level, maintaining one deterministic witness per level; a chain
    that checks at every level witnesses the composed mapping. *)

type ('s, 'a) level = {
  target : ('s, 'a) Time_automaton.t;
  map : 's Mapping.t;  (** from the previous level's automaton *)
}

type ('s, 'a) chain_failure = {
  level_index : int;  (** 0 = first level above the source *)
  level_name : string;
  failure : ('s, 'a) Mapping.failure;
}

val check_exec :
  source:('s, 'a) Time_automaton.t ->
  levels:('s, 'a) level list ->
  ('s, 'a) Time_automaton.texec ->
  (unit, ('s, 'a) chain_failure) result
(** Verify every level's mapping simultaneously along one execution of
    the source automaton. *)

val check_exhaustive :
  ?params:Tgraph.params ->
  source:('s, 'a) Time_automaton.t ->
  levels:('s, 'a) level list ->
  unit ->
  (Mapping.stats, ('s, 'a) chain_failure) result
(** Exhaustive check over the discretized product of the source graph
    with the deterministic witnesses of all levels (see {!Tgraph} for
    the discretization caveats). *)
