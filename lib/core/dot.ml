module Hstore = Tm_base.Hstore

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let render ~name ~nodes ~edges ~max_nodes =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" name);
  Buffer.add_string buf "  node [shape=box, fontsize=10];\n";
  let shown = min max_nodes (List.length nodes) in
  List.iteri
    (fun i label ->
      if i < max_nodes then
        Buffer.add_string buf
          (Printf.sprintf "  n%d [label=\"%s\"];\n" i (escape label)))
    nodes;
  if List.length nodes > max_nodes then
    Buffer.add_string buf
      (Printf.sprintf
         "  truncated [label=\"… %d more nodes\", shape=plaintext];\n"
         (List.length nodes - max_nodes));
  List.iter
    (fun (src, label, dst) ->
      if src < shown && dst < shown then
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [label=\"%s\", fontsize=9];\n" src
             dst (escape label)))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_tgraph ?(max_nodes = 500) (g : ('s, 'a) Tgraph.t) =
  let aut = g.Tgraph.aut in
  let pp_state = Time_automaton.pp_state aut in
  let nodes =
    List.map (Format.asprintf "%a" pp_state) (Hstore.to_list g.Tgraph.nodes)
  in
  let edges =
    List.map
      (fun (src, (act, t), dst) ->
        ( src,
          Format.asprintf "%a @ %a"
            aut.Time_automaton.base.Tm_ioa.Ioa.pp_action act
            Tm_base.Rational.pp t,
          dst ))
      g.Tgraph.edges
  in
  render ~name:aut.Time_automaton.base.Tm_ioa.Ioa.name ~nodes ~edges
    ~max_nodes

let of_explore ?(max_nodes = 500) (g : ('s, 'a) Tm_ioa.Explore.graph) =
  let aut = g.Tm_ioa.Explore.automaton in
  let nodes =
    List.map
      (Format.asprintf "%a" aut.Tm_ioa.Ioa.pp_state)
      (Hstore.to_list g.Tm_ioa.Explore.states)
  in
  let edges =
    List.map
      (fun (src, act, dst) ->
        (src, Format.asprintf "%a" aut.Tm_ioa.Ioa.pp_action act, dst))
      g.Tm_ioa.Explore.edges
  in
  render ~name:aut.Tm_ioa.Ioa.name ~nodes ~edges ~max_nodes
