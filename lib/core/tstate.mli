(** States of the [time(A, U)] automaton (Section 3.1).

    A state augments a base-automaton state with the current time [Ct]
    (the time of the last preceding event) and, for each timing
    condition [U ∈ U], predictive components [Ft(U)] and [Lt(U)] — the
    first and last times at which an action from [Π(U)] may next
    occur.  [Ft] is always finite ([b_l ≠ ∞]); [Lt] may be [∞]. *)

type 's t = {
  base : 's;  (** the A-state [s.As] *)
  now : Tm_base.Rational.t;  (** [Ct] *)
  ft : Tm_base.Rational.t array;  (** [Ft(U)], indexed by condition *)
  lt : Tm_base.Time.t array;  (** [Lt(U)], indexed by condition *)
}

val make :
  base:'s ->
  now:Tm_base.Rational.t ->
  ft:Tm_base.Rational.t array ->
  lt:Tm_base.Time.t array ->
  's t

val n_conds : 's t -> int

val equal : ('s -> 's -> bool) -> 's t -> 's t -> bool
val hash : ('s -> int) -> 's t -> int

val pp :
  ?names:string array ->
  (Format.formatter -> 's -> unit) ->
  Format.formatter ->
  's t ->
  unit

val shift : Tm_base.Rational.t -> 's t -> 's t
(** [shift d s] adds [d] to [now] and to every deadline component:
    the same state observed on a clock offset by [d]. *)

val normalize : clamp:Tm_base.Rational.t -> 's t -> 's t
(** Shift so that [now = 0], then clamp every (relative) [ft]
    component below at [-clamp].  In any reachable state, a component
    [ft <= now] only ever participates in comparisons [ft <= t] with
    [t >= now], so clamping at a floor below [-(max constant)] does not
    change the step relation; it makes the normalized state space
    finite for finite base automata on a time grid. *)
