module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Ioa = Tm_ioa.Ioa
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module Time_automaton = Tm_core.Time_automaton

type pc = Rem | Test | Set | Check | Crit

type act =
  | Retry of int
  | Test_succ of int
  | Test_fail of int
  | Set_x of int
  | Enter of int
  | Fail of int
  | Exit of int

let pp_act fmt = function
  | Retry i -> Format.fprintf fmt "retry_%d" i
  | Test_succ i -> Format.fprintf fmt "test+_%d" i
  | Test_fail i -> Format.fprintf fmt "test-_%d" i
  | Set_x i -> Format.fprintf fmt "set_%d" i
  | Enter i -> Format.fprintf fmt "enter_%d" i
  | Fail i -> Format.fprintf fmt "fail_%d" i
  | Exit i -> Format.fprintf fmt "exit_%d" i

type params = {
  n : int;
  r : Rational.t;
  t : Rational.t;
  a : Rational.t;
  b : Rational.t;
  b2 : Rational.t;
  e : Rational.t;
}

let params ~n ~r ~t ~a ~b ~b2 ~e =
  if n < 2 then invalid_arg "Fischer.params: n < 2";
  let pos name q =
    if Rational.(q <= Rational.zero) then
      invalid_arg (Printf.sprintf "Fischer.params: %s <= 0" name)
  in
  pos "r" r; pos "t" t; pos "a" a; pos "b2" b2; pos "e" e;
  if Rational.(b < Rational.zero) then invalid_arg "Fischer.params: b < 0";
  if Rational.(b2 < b) then invalid_arg "Fischer.params: b2 < b";
  { n; r; t; a; b; b2; e }

let params_of_ints ~n ~r ~t ~a ~b ~b2 ~e =
  params ~n ~r:(Rational.of_int r) ~t:(Rational.of_int t)
    ~a:(Rational.of_int a) ~b:(Rational.of_int b) ~b2:(Rational.of_int b2)
    ~e:(Rational.of_int e)

type state = { x : int; pcs : pc array }

let retry_class i = Printf.sprintf "RETRY_%d" i
let test_class i = Printf.sprintf "TEST_%d" i
let set_class i = Printf.sprintf "SET_%d" i
let check_class i = Printf.sprintf "CHECK_%d" i
let crit_class i = Printf.sprintf "CRIT_%d" i

let proc_of = function
  | Retry i | Test_succ i | Test_fail i | Set_x i | Enter i | Fail i
  | Exit i ->
      i

let class_of = function
  | Retry i -> retry_class i
  | Test_succ i | Test_fail i -> test_class i
  | Set_x i -> set_class i
  | Enter i | Fail i -> check_class i
  | Exit i -> crit_class i

let with_pc s i pc =
  let pcs = Array.copy s.pcs in
  pcs.(i - 1) <- pc;
  { s with pcs }

let pc_of s i = s.pcs.(i - 1)

let system p : (state, act) Ioa.t =
  let procs = List.init p.n (fun i -> i + 1) in
  let alphabet =
    List.concat_map
      (fun i ->
        [ Retry i; Test_succ i; Test_fail i; Set_x i; Enter i; Fail i;
          Exit i ])
      procs
  in
  let delta s act =
    let i = proc_of act in
    match (act, pc_of s i) with
    | Retry _, Rem -> [ with_pc s i Test ]
    | Test_succ _, Test when s.x = 0 -> [ with_pc s i Set ]
    | Test_fail _, Test when s.x <> 0 -> [ with_pc s i Test ]
    | Set_x _, Set -> [ { (with_pc s i Check) with x = i } ]
    | Enter _, Check when s.x = i -> [ with_pc s i Crit ]
    | Fail _, Check when s.x <> i -> [ with_pc s i Rem ]
    | Exit _, Crit -> [ { (with_pc s i Rem) with x = 0 } ]
    | ( ( Retry _ | Test_succ _ | Test_fail _ | Set_x _ | Enter _
        | Fail _ | Exit _ ),
        _ ) ->
        []
  in
  {
    Ioa.name = Printf.sprintf "fischer-%d" p.n;
    start = [ { x = 0; pcs = Array.make p.n Rem } ];
    alphabet;
    kind_of =
      (function
      | Enter _ | Exit _ -> Ioa.Output
      | Retry _ | Test_succ _ | Test_fail _ | Set_x _ | Fail _ ->
          Ioa.Internal);
    delta;
    classes =
      List.concat_map
        (fun i ->
          [ retry_class i; test_class i; set_class i; check_class i;
            crit_class i ])
        procs;
    class_of = (fun act -> Some (class_of act));
    equal_state =
      (fun s1 s2 ->
        s1.x = s2.x
        && Array.for_all2 (fun a b -> a = b) s1.pcs s2.pcs);
    hash_state =
      (fun s ->
        Array.fold_left
          (fun h pc ->
            (h * 7)
            + match pc with Rem -> 0 | Test -> 1 | Set -> 2 | Check -> 3
              | Crit -> 4)
          s.x s.pcs);
    pp_state =
      (fun fmt s ->
        Format.fprintf fmt "x=%d[" s.x;
        Array.iter
          (fun pc ->
            Format.pp_print_string fmt
              (match pc with
              | Rem -> "R" | Test -> "T" | Set -> "S" | Check -> "C"
              | Crit -> "!"))
          s.pcs;
        Format.fprintf fmt "]");
    equal_action = ( = );
    pp_action = pp_act;
  }

let boundmap p =
  Boundmap.of_list
    (List.concat_map
       (fun i ->
         [
           (retry_class i, Interval.make Rational.zero (Time.Fin p.r));
           (test_class i, Interval.make Rational.zero (Time.Fin p.t));
           (set_class i, Interval.make Rational.zero (Time.Fin p.a));
           (check_class i, Interval.make p.b (Time.Fin p.b2));
           (crit_class i, Interval.make Rational.zero (Time.Fin p.e));
         ])
       (List.init p.n (fun i -> i + 1)))

let impl p = Time_automaton.of_boundmap (system p) (boundmap p)

let mutual_exclusion s =
  Array.fold_left (fun c pc -> c + if pc = Crit then 1 else 0) 0 s.pcs <= 1

let u_enter p =
  Condition.make ~name:"U_enter"
    ~t_step:(fun s' act _s ->
      match act with
      | Set_x i ->
          let uncontended = ref true in
          Array.iteri
            (fun j pc -> if j <> i - 1 && pc = Set then uncontended := false)
            s'.pcs;
          !uncontended
      | Retry _ | Test_succ _ | Test_fail _ | Enter _ | Fail _ | Exit _ ->
          false)
    ~bounds:(Interval.make p.b (Time.Fin p.b2))
    ~in_pi:(function
      | Enter _ -> true
      | Retry _ | Test_succ _ | Test_fail _ | Set_x _ | Fail _ | Exit _ ->
          false)
    ()

let spec p = Time_automaton.make (system p) [ u_enter p ]
