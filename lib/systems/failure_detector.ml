module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Ioa = Tm_ioa.Ioa
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module Time_automaton = Tm_core.Time_automaton

type act = Hb | Crash | Check_ok | Check_miss | Check_suspect | Check_idle

let pp_act fmt a =
  Format.pp_print_string fmt
    (match a with
    | Hb -> "HB"
    | Crash -> "CRASH"
    | Check_ok -> "CHECK/ok"
    | Check_miss -> "CHECK/miss"
    | Check_suspect -> "CHECK/suspect"
    | Check_idle -> "CHECK/idle")

type state = {
  alive : bool;
  fresh : bool;
  misses : int;
  suspected : bool;
}

type params = {
  h1 : Rational.t;
  h2 : Rational.t;
  g1 : Rational.t;
  g2 : Rational.t;
  m : int;
}

let params_of_ints ~h1 ~h2 ~g1 ~g2 ~m =
  let chk lo hi name =
    if lo < 0 || hi < lo || hi = 0 then
      invalid_arg
        (Printf.sprintf "Failure_detector.params: bad %s interval" name)
  in
  chk h1 h2 "heartbeat";
  chk g1 g2 "polling";
  if m < 1 then invalid_arg "Failure_detector.params: m < 1";
  let f = Rational.of_int in
  { h1 = f h1; h2 = f h2; g1 = f g1; g2 = f g2; m }

let accurate p =
  (* With h2 = g1 a heartbeat and a poll may coincide, ordered either
     way; a single boundary coincidence already fools an m = 1
     detector, while m >= 2 needs two consecutive stale polls, which
     h2 <= g1 rules out. *)
  Rational.(p.h2 < p.g1) || (Rational.(p.h2 <= p.g1) && p.m >= 2)
let hb_class = "HB"
let crash_class = "CRASH"
let check_class = "CHECK"

let system p : (state, act) Ioa.t =
  let delta s = function
    | Hb -> if s.alive then [ { s with fresh = true } ] else []
    | Crash -> if s.alive then [ { s with alive = false } ] else []
    | Check_ok ->
        if (not s.suspected) && s.fresh then
          [ { s with fresh = false; misses = 0 } ]
        else []
    | Check_miss ->
        if (not s.suspected) && (not s.fresh) && s.misses + 1 < p.m then
          [ { s with misses = s.misses + 1 } ]
        else []
    | Check_suspect ->
        if (not s.suspected) && (not s.fresh) && s.misses + 1 >= p.m then
          [ { s with misses = p.m; suspected = true } ]
        else []
    | Check_idle -> if s.suspected then [ s ] else []
  in
  {
    Ioa.name = "failure-detector";
    start = [ { alive = true; fresh = false; misses = 0; suspected = false } ];
    alphabet = [ Hb; Crash; Check_ok; Check_miss; Check_suspect; Check_idle ];
    kind_of =
      (function
      | Check_suspect -> Ioa.Output
      | Hb | Crash | Check_ok | Check_miss | Check_idle -> Ioa.Internal);
    delta;
    classes = [ hb_class; crash_class; check_class ];
    class_of =
      (function
      | Hb -> Some hb_class
      | Crash -> Some crash_class
      | Check_ok | Check_miss | Check_suspect | Check_idle ->
          Some check_class);
    equal_state = ( = );
    hash_state =
      (fun s ->
        (if s.alive then 1 else 0)
        + (if s.fresh then 2 else 0)
        + (if s.suspected then 4 else 0)
        + (8 * s.misses));
    pp_state =
      (fun fmt s ->
        Format.fprintf fmt "{%s%s misses=%d%s}"
          (if s.alive then "alive" else "dead")
          (if s.fresh then "+hb" else "")
          s.misses
          (if s.suspected then " SUSPECTED" else ""));
    equal_action = ( = );
    pp_action = pp_act;
  }

let boundmap p =
  Boundmap.of_list
    [
      (hb_class, Interval.make p.h1 (Time.Fin p.h2));
      (crash_class, Interval.unbounded_above Rational.zero);
      (check_class, Interval.make p.g1 (Time.Fin p.g2));
    ]

let impl p = Time_automaton.of_boundmap (system p) (boundmap p)
let no_false_suspicion s = (not s.suspected) || not s.alive

let detection_interval p =
  (* Lower bound: the first post-crash stale poll cannot occur sooner
     than g1 - h2 after the crash (a poll at least g1 after its
     predecessor is stale only if the crash preempted a heartbeat that
     was due within h2 of that predecessor), then m-1 further polls at
     least g1 apart.  Upper bound: one poll may consume a heartbeat
     that landed just before the crash, then m missing polls, each at
     most g2 apart. *)
  Interval.make
    (Rational.add
       (Rational.mul_int (p.m - 1) p.g1)
       (Rational.max Rational.zero (Rational.sub p.g1 p.h2)))
    (Time.Fin (Rational.mul_int (p.m + 1) p.g2))

let u_detect p =
  Condition.make ~name:"U(detect)"
    ~t_step:(fun _ act _ -> act = Crash)
    ~bounds:(detection_interval p)
    ~in_pi:(fun act -> act = Check_suspect)
    ()

let spec p = Time_automaton.make (system p) [ u_detect p ]
