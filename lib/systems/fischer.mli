(** Fischer's timed mutual exclusion — the kind of timing-dependent
    algorithm the paper's conclusions propose as a target for the
    method.

    [n] processes share a variable [x ∈ {0 … n}] ([0] = free).  Process
    [i] cycles through program counters
    [Rem → Test → Set → Check → Crit → Rem]:

    - [Retry i]  ([Rem → Test], class [RETRY_i], bounds [[0, r]]);
    - [Test i]   (in [Test]: if [x = 0] go to [Set], else stay — a
      busy-wait poll; class [TEST_i], bounds [[0, t]]);
    - [Set i]    ([Set]: [x := i], go to [Check]; class [SET_i], bounds
      [[0, a]] — the write happens within [a] of passing the test);
    - [Enter i] / [Fail i] (in [Check], after waiting at least [b]:
      enter the critical section if [x = i] still, else back to [Rem];
      class [CHECK_i], bounds [[b, b2]]);
    - [Exit i]   ([Crit]: [x := 0], back to [Rem]; class [CRIT_i],
      bounds [[0, e]]).

    The shared-memory system is modelled as a single closed automaton.

    Mutual exclusion holds exactly when [a < b]; the test suite
    verifies it by zone reachability for [a < b] and refutes it for
    [a >= b].  The timing property analyzed with the paper's machinery:
    an *uncontended* [Set i] step (no other process in [Set]) is
    followed by some [Enter] within [[b, b2]] ({!u_enter}). *)

type pc = Rem | Test | Set | Check | Crit

type act =
  | Retry of int
  | Test_succ of int
  | Test_fail of int
  | Set_x of int
  | Enter of int
  | Fail of int
  | Exit of int

val pp_act : Format.formatter -> act -> unit

type params = {
  n : int;  (** number of processes, [>= 2] *)
  r : Tm_base.Rational.t;  (** retry delay upper bound *)
  t : Tm_base.Rational.t;  (** test-step upper bound *)
  a : Tm_base.Rational.t;  (** set-step upper bound *)
  b : Tm_base.Rational.t;  (** check-step lower bound *)
  b2 : Tm_base.Rational.t;  (** check-step upper bound, [>= b] *)
  e : Tm_base.Rational.t;  (** critical-section upper bound *)
}

val params :
  n:int -> r:Tm_base.Rational.t -> t:Tm_base.Rational.t ->
  a:Tm_base.Rational.t -> b:Tm_base.Rational.t -> b2:Tm_base.Rational.t ->
  e:Tm_base.Rational.t -> params
(** Validates shapes only; [a < b] is *not* required (refutation runs
    deliberately violate it). *)

val params_of_ints : n:int -> r:int -> t:int -> a:int -> b:int -> b2:int ->
  e:int -> params

type state = { x : int; pcs : pc array }

val system : params -> (state, act) Tm_ioa.Ioa.t
val boundmap : params -> Tm_timed.Boundmap.t
val impl : params -> (state, act) Tm_core.Time_automaton.t

val mutual_exclusion : state -> bool
(** At most one process in [Crit]. *)

val u_enter : params -> (state, act) Tm_timed.Condition.t
(** Triggered by uncontended [Set] steps; [Π] = all [Enter] actions;
    bounds [[b, b2]]. *)

val spec : params -> (state, act) Tm_core.Time_automaton.t
(** [time(A, {u_enter})]. *)
