module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Ioa = Tm_ioa.Ioa
module Compose = Tm_ioa.Compose
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module Time_automaton = Tm_core.Time_automaton
module Tstate = Tm_core.Tstate
module Mapping = Tm_core.Mapping

type act = Tick | Grant | Else

let pp_act fmt a =
  Format.pp_print_string fmt
    (match a with Tick -> "TICK" | Grant -> "GRANT" | Else -> "ELSE")

type params = { k : int; c1 : Rational.t; c2 : Rational.t; l : Rational.t }

let params ~k ~c1 ~c2 ~l =
  if k <= 0 then invalid_arg "Resource_manager.params: k <= 0";
  if Rational.(c1 <= Rational.zero) then
    invalid_arg "Resource_manager.params: c1 <= 0";
  if Rational.(c2 < c1) then invalid_arg "Resource_manager.params: c2 < c1";
  if Rational.(l <= Rational.zero) then
    invalid_arg "Resource_manager.params: l <= 0 (boundmap upper bounds are nonzero)";
  if Rational.(c1 <= l) then
    invalid_arg "Resource_manager.params: the analysis assumes c1 > l";
  { k; c1; c2; l }

let params_of_ints ~k ~c1 ~c2 ~l =
  params ~k ~c1:(Rational.of_int c1) ~c2:(Rational.of_int c2)
    ~l:(Rational.of_int l)

type state = unit * int

let timer ((), t) = t
let tick_class = "TICK"
let local_class = "LOCAL"

let clock : (unit, act) Ioa.t =
  {
    Ioa.name = "clock";
    start = [ () ];
    alphabet = [ Tick ];
    kind_of = (fun _ -> Ioa.Output);
    delta = (fun () act -> match act with Tick -> [ () ] | _ -> []);
    classes = [ tick_class ];
    class_of = (function Tick -> Some tick_class | _ -> None);
    equal_state = (fun () () -> true);
    hash_state = (fun () -> 0);
    pp_state = (fun fmt () -> Format.pp_print_string fmt "·");
    equal_action = ( = );
    pp_action = pp_act;
  }

let manager p : (int, act) Ioa.t =
  {
    Ioa.name = "manager";
    start = [ p.k ];
    alphabet = [ Tick; Grant; Else ];
    kind_of =
      (function Tick -> Ioa.Input | Grant -> Ioa.Output | Else -> Ioa.Internal);
    delta =
      (fun timer -> function
        | Tick -> [ timer - 1 ]
        | Grant -> if timer <= 0 then [ p.k ] else []
        | Else -> if timer > 0 then [ timer ] else []);
    classes = [ local_class ];
    class_of =
      (function Tick -> None | Grant | Else -> Some local_class);
    equal_state = Int.equal;
    hash_state = Fun.id;
    pp_state = (fun fmt t -> Format.fprintf fmt "TIMER=%d" t);
    equal_action = ( = );
    pp_action = pp_act;
  }

let system p =
  let composed = Compose.binary ~name:"resource-manager" clock (manager p) in
  Ioa.hide composed (fun act -> act = Tick)

let boundmap p =
  Boundmap.of_list
    [
      (tick_class, Interval.make p.c1 (Time.Fin p.c2));
      (local_class, Interval.make Rational.zero (Time.Fin p.l));
    ]

let grant_interval_first p =
  Interval.make
    (Rational.mul_int p.k p.c1)
    (Time.Fin (Rational.add (Rational.mul_int p.k p.c2) p.l))

let grant_interval_between p =
  Interval.make
    (Rational.sub (Rational.mul_int p.k p.c1) p.l)
    (Time.Fin (Rational.add (Rational.mul_int p.k p.c2) p.l))

let g1 p =
  Condition.make ~name:"G1"
    ~t_start:(fun _ -> true)
    ~bounds:(grant_interval_first p)
    ~in_pi:(fun act -> act = Grant)
    ()

let g2 p =
  Condition.make ~name:"G2"
    ~t_step:(fun _ act _ -> act = Grant)
    ~bounds:(grant_interval_between p)
    ~in_pi:(fun act -> act = Grant)
    ()

let impl p = Time_automaton.of_boundmap (system p) (boundmap p)
let spec p = Time_automaton.make (system p) [ g1 p; g2 p ]

let mapping p =
  (* Indices are fixed by construction: impl conditions follow the
     class order [TICK; LOCAL]; spec conditions are [G1; G2]. *)
  let i_tick = 0 and i_local = 1 and i_g1 = 0 and i_g2 = 1 in
  let contains (s : state Tstate.t) (u : state Tstate.t) =
    let min_lt_g = Time.min u.Tstate.lt.(i_g1) u.Tstate.lt.(i_g2) in
    let max_ft_g = Rational.max u.Tstate.ft.(i_g1) u.Tstate.ft.(i_g2) in
    let timer = timer s.Tstate.base in
    let tm1 = timer - 1 in
    if timer > 0 then
      (* 1(a): min Lt(G) >= Lt(TICK) + (TIMER-1)·c2 + l *)
      Time.(
        min_lt_g
        >= add_q s.Tstate.lt.(i_tick)
             (Rational.add (Rational.mul_int tm1 p.c2) p.l))
      (* 1(b): max Ft(G) <= Ft(TICK) + (TIMER-1)·c1 *)
      && Rational.(
           max_ft_g <= add s.Tstate.ft.(i_tick) (Rational.mul_int tm1 p.c1))
    else
      (* 2(a): min Lt(G) >= Lt(LOCAL);  2(b): max Ft(G) <= Ct *)
      Time.(min_lt_g >= s.Tstate.lt.(i_local))
      && Rational.(max_ft_g <= s.Tstate.now)
  in
  { Mapping.mname = "f: time(A,b) -> time(A,{G1,G2})"; contains }

let lemma_4_1 p (impl : (state, act) Time_automaton.t)
    (s : state Tstate.t) =
  let i_tick = Time_automaton.cond_index impl "cond(TICK)" in
  let i_local = Time_automaton.cond_index impl "cond(LOCAL)" in
  let timer = timer s.Tstate.base in
  timer >= 0
  && (timer > 0
     || Time.(
          Fin s.Tstate.ft.(i_tick)
          >= add_q s.Tstate.lt.(i_local) (Rational.sub p.c1 p.l)))
