module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Ioa = Tm_ioa.Ioa
module Compose = Tm_ioa.Compose
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module Semantics = Tm_timed.Semantics
module Time_automaton = Tm_core.Time_automaton
module Tstate = Tm_core.Tstate
module Mapping = Tm_core.Mapping
module Dummify = Tm_core.Dummify
module Hierarchy = Tm_core.Hierarchy

type act = Signal of int

let pp_act fmt (Signal i) = Format.fprintf fmt "SIGNAL_%d" i

type dact = act Dummify.action

type params = {
  n : int;
  d1 : Rational.t;
  d2 : Rational.t;
  null_bounds : Interval.t;
}

let params ~n ~d1 ~d2 ?(null_bounds = Interval.of_ints 1 2) () =
  if n < 1 then invalid_arg "Signal_relay.params: n < 1";
  if Rational.(d1 < Rational.zero) then
    invalid_arg "Signal_relay.params: d1 < 0";
  if Rational.(d2 < d1) then invalid_arg "Signal_relay.params: d2 < d1";
  if Rational.(d2 <= Rational.zero) then
    invalid_arg "Signal_relay.params: d2 <= 0";
  { n; d1; d2; null_bounds }

let params_of_ints ~n ~d1 ~d2 =
  params ~n ~d1:(Rational.of_int d1) ~d2:(Rational.of_int d2) ()

type state = bool array

let sig_class i = Printf.sprintf "SIG_%d" i

let process _p i : (bool, act) Ioa.t =
  let alphabet =
    if i = 0 then [ Signal 0 ] else [ Signal (i - 1); Signal i ]
  in
  {
    Ioa.name = Printf.sprintf "P_%d" i;
    start = [ i = 0 ];
    alphabet;
    kind_of =
      (fun (Signal j) -> if j = i then Ioa.Output else Ioa.Input);
    delta =
      (fun flag (Signal j) ->
        if j = i - 1 && i > 0 then [ true ]
        else if j = i then if flag then [ false ] else []
        else []);
    classes = [ sig_class i ];
    class_of =
      (fun (Signal j) -> if j = i then Some (sig_class i) else None);
    equal_state = Bool.equal;
    hash_state = (fun b -> if b then 1 else 0);
    pp_state = (fun fmt b -> Format.fprintf fmt "%B" b);
    equal_action = ( = );
    pp_action = pp_act;
  }

let line p =
  let composed =
    Compose.array ~name:"signal-relay"
      (Array.init (p.n + 1) (fun i -> process p i))
  in
  Ioa.hide composed (fun (Signal i) -> i > 0 && i < p.n)

let boundmap p =
  Boundmap.of_list
    ((sig_class 0, Interval.unbounded_above Rational.zero)
    :: List.init p.n (fun i ->
           (sig_class (i + 1), Interval.make p.d1 (Time.Fin p.d2))))

let dsystem p = Dummify.automaton (line p)
let dboundmap p = Dummify.boundmap (boundmap p) ~null_bounds:p.null_bounds

let delay_interval p =
  Interval.make
    (Rational.mul_int p.n p.d1)
    (Time.Fin (Rational.mul_int p.n p.d2))

let u_name k n = Printf.sprintf "U(%d,%d)" k n

let u_cond p ~k =
  if k < 0 || k > p.n - 1 then invalid_arg "Signal_relay.u_cond: bad k";
  let hops = p.n - k in
  Condition.make ~name:(u_name k p.n)
    ~t_step:(fun _ act _ ->
      match act with
      | Dummify.Base (Signal j) -> j = k
      | Dummify.Null -> false)
    ~bounds:
      (Interval.make
         (Rational.mul_int hops p.d1)
         (Time.Fin (Rational.mul_int hops p.d2)))
    ~in_pi:(fun act ->
      match act with
      | Dummify.Base (Signal j) -> j = p.n
      | Dummify.Null -> false)
    ()

let impl p = Time_automaton.of_boundmap (dsystem p) (dboundmap p)

(* Conditions of B_k, in a fixed order the mappings below rely on:
   index 0 = U_{k,n}; index j+1 = cond(SIG_j) for 0 <= j <= k;
   index k+2 = cond(NULL). *)
let b_k_conds p ~k =
  let sys = dsystem p in
  let bm = dboundmap p in
  (u_cond p ~k :: List.init (k + 1) (fun j ->
       Semantics.cond_of_class sys bm (sig_class j)))
  @ [ Semantics.cond_of_class sys bm Dummify.null_class ]

let b_k p ~k = Time_automaton.make (dsystem p) (b_k_conds p ~k)
let spec p = Time_automaton.make (dsystem p) [ u_cond p ~k:0 ]

let eq_pred s u i j =
  Rational.equal s.Tstate.ft.(i) u.Tstate.ft.(j)
  && Time.equal s.Tstate.lt.(i) u.Tstate.lt.(j)

(* The mapping of Section 6.4 from B_k to B_{k-1}. *)
let f_k p ~k =
  if k < 1 || k > p.n - 1 then invalid_arg "Signal_relay.f_k: bad k";
  let hops = p.n - k in
  let contains (s : state Tstate.t) (u : state Tstate.t) =
    let flags = s.Tstate.base in
    let past_k =
      let rec any i = i <= p.n && (flags.(i) || any (i + 1)) in
      any (k + 1)
    in
    (* Source indices: U at 0, cond(SIG_j) at j+1, NULL at k+2.
       Target indices: U at 0, cond(SIG_j) at j+1, NULL at k+1. *)
    let i_sig_k = k + 1 in
    let rhs_lt =
      if past_k then s.Tstate.lt.(0)
      else if flags.(k) then
        Time.add_q s.Tstate.lt.(i_sig_k) (Rational.mul_int hops p.d2)
      else Time.infinity
    in
    let ft_constraint =
      if past_k then Rational.(u.Tstate.ft.(0) <= s.Tstate.ft.(0))
      else if flags.(k) then
        Rational.(
          u.Tstate.ft.(0)
          <= add s.Tstate.ft.(i_sig_k) (Rational.mul_int hops p.d1))
      else Rational.(u.Tstate.ft.(0) <= Rational.zero)
    in
    Time.(u.Tstate.lt.(0) >= rhs_lt)
    && ft_constraint
    (* every other component of u equals the corresponding one of s *)
    && (let rec shared j =
          j > k - 1 || (eq_pred s u (j + 1) (j + 1) && shared (j + 1))
        in
        shared 0)
    && eq_pred s u (k + 2) (k + 1)
  in
  { Mapping.mname = Printf.sprintf "f_%d: B_%d -> B_%d" k k (k - 1);
    contains }

(* time(A~, b~) -> B_{n-1}: the component of cond(SIG_n) is renamed to
   U_{n-1,n}; all other components are shared.  Source indices follow
   the dummified class order: cond(NULL) at 0, cond(SIG_j) at j+1. *)
let trivial_top p =
  let n = p.n in
  let i_sig_n = n + 1 in
  let contains (s : state Tstate.t) (u : state Tstate.t) =
    Time.(u.Tstate.lt.(0) >= s.Tstate.lt.(i_sig_n))
    && Rational.(u.Tstate.ft.(0) <= s.Tstate.ft.(i_sig_n))
    && (let rec shared j =
          j > n - 1 || (eq_pred s u (j + 1) (j + 1) && shared (j + 1))
        in
        shared 0)
    && eq_pred s u 0 i_sig_n
  in
  { Mapping.mname = "rename: time(A~,b~) -> B_{n-1}"; contains }

(* B_0 -> B: forget the boundmap components. *)
let trivial_bottom _p =
  let contains (s : state Tstate.t) (u : state Tstate.t) =
    Time.(u.Tstate.lt.(0) >= s.Tstate.lt.(0))
    && Rational.(u.Tstate.ft.(0) <= s.Tstate.ft.(0))
  in
  { Mapping.mname = "forget: B_0 -> B"; contains }

let chain p =
  let top = { Hierarchy.target = b_k p ~k:(p.n - 1); map = trivial_top p } in
  let middles =
    List.init (p.n - 1) (fun i ->
        let k = p.n - 1 - i in
        { Hierarchy.target = b_k p ~k:(k - 1); map = f_k p ~k })
  in
  let bottom = { Hierarchy.target = spec p; map = trivial_bottom p } in
  (top :: middles) @ [ bottom ]

let lemma_6_1 flags =
  Array.fold_left (fun acc f -> acc + if f then 1 else 0) 0 flags <= 1
