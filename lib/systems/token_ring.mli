(** A timed token ring — the signal relay bent into a cycle.

    [n] stations pass a token around a ring; station [i] holds the
    token and forwards it to station [(i+1) mod n] within [[d1, d2]].
    Unlike the relay, the system runs forever, so the interesting
    condition is *recurring*, in the style of [G2]: measured from every
    departure of the token from station 0, the next departure from
    station 0 happens within [[n·d1, n·d2]] (one full rotation).

    A second condition bounds each visit: once station [i] receives the
    token it forwards it within [[d1, d2]] — these are exactly the
    boundmap conditions, so the rotation bound is proved from them by a
    strong possibilities mapping with the same shape as the relay's
    [f_k], adapted to the cyclic index arithmetic. *)

type act = Pass of int  (** [Pass i]: station [i] forwards the token *)

val pp_act : Format.formatter -> act -> unit

type params = {
  n : int;  (** ring size, [>= 2] *)
  d1 : Tm_base.Rational.t;
  d2 : Tm_base.Rational.t;
}

val params_of_ints : n:int -> d1:int -> d2:int -> params

type state = int
(** Index of the station currently holding the token. *)

val pass_class : int -> string
val system : params -> (state, act) Tm_ioa.Ioa.t
val boundmap : params -> Tm_timed.Boundmap.t
val impl : params -> (state, act) Tm_core.Time_automaton.t

val rotation_interval : params -> Tm_base.Interval.t
(** [[n·d1, n·d2]]. *)

val u_rotation : params -> (state, act) Tm_timed.Condition.t
(** Triggered by every [Pass 0] step; [Π = {Pass 0}]; bounds
    [[n·d1, n·d2]]. *)

val u_from : params -> k:int -> (state, act) Tm_timed.Condition.t
(** Intermediate condition: from every [Pass k] step, the next
    [Pass 0] occurs within [[(n−k)·d1, (n−k)·d2]] (for [1 <= k <=
    n−1]). *)

val spec : params -> (state, act) Tm_core.Time_automaton.t
(** [time(A, {u_rotation})]. *)

val b_k : params -> k:int -> (state, act) Tm_core.Time_automaton.t
(** Intermediate requirements automaton carrying [u_from k] plus the
    boundmap conditions for stations [0..k]. *)

val f_k : params -> k:int -> state Tm_core.Mapping.t
(** [B_k -> B_{k-1}]-style mapping for the ring ([2 <= k <= n−1]);
    [k = 1] connects to the rotation condition via {!f_close}. *)

val f_close : params -> state Tm_core.Mapping.t
(** [B_1 -> spec]: a rotation is one hop from station 0 followed by the
    [u_from 1] distance. *)

val trivial_top : params -> state Tm_core.Mapping.t
(** [time(A,b) -> B_{n-1}]. *)

val chain : params -> (state, act) Tm_core.Hierarchy.level list
