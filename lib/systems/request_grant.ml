module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Ioa = Tm_ioa.Ioa
module Compose = Tm_ioa.Compose
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module Time_automaton = Tm_core.Time_automaton

type act = Req | Resp

let pp_act fmt a =
  Format.pp_print_string fmt (match a with Req -> "REQ" | Resp -> "RESP")

type params = {
  r1 : Rational.t;
  r2 : Rational.t;
  w1 : Rational.t;
  w2 : Rational.t;
}

let params ~r1 ~r2 ~w1 ~w2 =
  if Rational.(r1 < Rational.zero) then
    invalid_arg "Request_grant.params: r1 < 0";
  if Rational.(r2 < r1) then invalid_arg "Request_grant.params: r2 < r1";
  if Rational.(r2 <= Rational.zero) then
    invalid_arg "Request_grant.params: r2 <= 0";
  if Rational.(w1 < Rational.zero) then
    invalid_arg "Request_grant.params: w1 < 0";
  if Rational.(w2 < w1) then invalid_arg "Request_grant.params: w2 < w1";
  if Rational.(w2 <= Rational.zero) then
    invalid_arg "Request_grant.params: w2 <= 0";
  { r1; r2; w1; w2 }

let params_of_ints ~r1 ~r2 ~w1 ~w2 =
  params ~r1:(Rational.of_int r1) ~r2:(Rational.of_int r2)
    ~w1:(Rational.of_int w1) ~w2:(Rational.of_int w2)

type server = { pending : bool; overloaded : bool }
type state = unit * server

let req_class = "REQ"
let resp_class = "RESP"

let requester : (unit, act) Ioa.t =
  {
    Ioa.name = "requester";
    start = [ () ];
    alphabet = [ Req ];
    kind_of = (fun _ -> Ioa.Output);
    delta = (fun () act -> match act with Req -> [ () ] | Resp -> []);
    classes = [ req_class ];
    class_of = (function Req -> Some req_class | Resp -> None);
    equal_state = (fun () () -> true);
    hash_state = (fun () -> 0);
    pp_state = (fun fmt () -> Format.pp_print_string fmt "·");
    equal_action = ( = );
    pp_action = pp_act;
  }

let server_aut : (server, act) Ioa.t =
  {
    Ioa.name = "server";
    start = [ { pending = false; overloaded = false } ];
    alphabet = [ Req; Resp ];
    kind_of = (function Req -> Ioa.Input | Resp -> Ioa.Output);
    delta =
      (fun s -> function
        | Req ->
            if s.pending then
              (* overload: drop the pending request *)
              [ { pending = false; overloaded = true } ]
            else [ { pending = true; overloaded = false } ]
        | Resp ->
            if s.pending then [ { s with pending = false } ] else []);
    classes = [ resp_class ];
    class_of = (function Resp -> Some resp_class | Req -> None);
    equal_state = (fun a b -> a = b);
    hash_state =
      (fun s ->
        (if s.pending then 1 else 0) + if s.overloaded then 2 else 0);
    pp_state =
      (fun fmt s ->
        Format.fprintf fmt "%s%s"
          (if s.pending then "pending" else "idle")
          (if s.overloaded then "+overloaded" else ""));
    equal_action = ( = );
    pp_action = pp_act;
  }

let system _p = Compose.binary ~name:"request-grant" requester server_aut

let boundmap p =
  Boundmap.of_list
    [
      (req_class, Interval.make p.r1 (Time.Fin p.r2));
      (resp_class, Interval.make p.w1 (Time.Fin p.w2));
    ]

let impl p = Time_automaton.of_boundmap (system p) (boundmap p)

let make_response p ~name ~in_s =
  Condition.make ~name
    ~t_step:(fun (_, s') act _ ->
      act = Req && (not s'.pending) && not s'.overloaded)
    ~bounds:(Interval.make p.w1 (Time.Fin p.w2))
    ~in_pi:(fun act -> act = Resp)
    ~in_s ()

let u_response p =
  make_response p ~name:"U_response" ~in_s:(fun (_, s) -> s.overloaded)

let u_response_no_disable p =
  make_response p ~name:"U_response_noS" ~in_s:(fun _ -> false)

let spec p = Time_automaton.make (system p) [ u_response p ]
