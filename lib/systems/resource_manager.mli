(** The resource manager of Section 4.

    A [clock] whose [TICK] output is always enabled fires with bounds
    [[c1, c2]]; a [manager] counts [k] ticks down on a TIMER and issues
    [GRANT] when the TIMER reaches 0 (resetting it to [k]), taking a
    local step ([GRANT] or the idling [ELSE]) with bounds [[0, l]],
    where [c1 > l > 0].  The system is their composition with [TICK]
    hidden; [GRANT] is the only external action.

    Proved timing behaviour (Theorem 4.4): the first [GRANT] occurs at
    a time in [[k·c1, k·c2 + l]] (condition [G1]) and consecutive
    [GRANT]s are separated by a time in [[k·c1 − l, k·c2 + l]]
    (condition [G2]). *)

type act = Tick | Grant | Else

val pp_act : Format.formatter -> act -> unit

type params = {
  k : int;  (** ticks per grant, [k > 0] *)
  c1 : Tm_base.Rational.t;  (** clock lower bound, [0 < c1 <= c2] *)
  c2 : Tm_base.Rational.t;  (** clock upper bound *)
  l : Tm_base.Rational.t;  (** local-step upper bound, [0 < l < c1] *)
}

val params : k:int -> c1:Tm_base.Rational.t -> c2:Tm_base.Rational.t ->
  l:Tm_base.Rational.t -> params
(** @raise Invalid_argument when the side conditions fail. *)

val params_of_ints : k:int -> c1:int -> c2:int -> l:int -> params

type state = unit * int
(** (clock state, manager TIMER). *)

val timer : state -> int

val tick_class : string
val local_class : string

val clock : (unit, act) Tm_ioa.Ioa.t
val manager : params -> (int, act) Tm_ioa.Ioa.t
val system : params -> (state, act) Tm_ioa.Ioa.t
(** The composition, with [TICK] hidden. *)

val boundmap : params -> Tm_timed.Boundmap.t

val g1 : params -> (state, act) Tm_timed.Condition.t
(** Time to the first [GRANT]: triggered by every start state, bounds
    [[k·c1, k·c2 + l]], [Π = {GRANT}], no disabling. *)

val g2 : params -> (state, act) Tm_timed.Condition.t
(** Time between consecutive [GRANT]s: triggered by [GRANT] steps,
    bounds [[k·c1 − l, k·c2 + l]]. *)

val impl : params -> (state, act) Tm_core.Time_automaton.t
(** The assumptions automaton [time(A, b)]. *)

val spec : params -> (state, act) Tm_core.Time_automaton.t
(** The requirements automaton [B = time(A, {G1, G2})]. *)

val mapping : params -> state Tm_core.Mapping.t
(** The strong possibilities mapping of Section 4.3: a conjunction of
    inequalities bounding the spec deadlines by expressions over the
    implementation's predictive state. *)

val lemma_4_1 :
  params -> (state, act) Tm_core.Time_automaton.t -> state Tm_core.Tstate.t
  -> bool
(** The invariant of Lemma 4.1: [TIMER >= 0], and when [TIMER = 0],
    [Ft(TICK) >= Lt(LOCAL) + c1 - l]. *)

val grant_interval_first : params -> Tm_base.Interval.t
(** [[k·c1, k·c2 + l]]. *)

val grant_interval_between : params -> Tm_base.Interval.t
(** [[k·c1 − l, k·c2 + l]]. *)
