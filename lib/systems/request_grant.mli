(** A request–response manager exercising disabling sets.

    The conclusions of the paper discuss requirements like "the manager
    responds to requests as long as they do not arrive too close
    together" (the "cement mixer" example of [FG89]).  This system
    makes the disabling-set component [S] of timing conditions do real
    work:

    - a requester emits [REQ] forever, with bounds [[r1, r2]];
    - the server, when idle, accepts a [REQ] and must emit [RESP]
      within [[w1, w2]];
    - a second [REQ] arriving while one is pending *overloads* the
      server: the pending request is dropped ([RESP] becomes disabled)
      until a later [REQ] restarts service.

    The timing condition {!u_response} — "[RESP] follows within
    [[w1, w2]] of a [REQ] accepted from the idle state" — holds only
    thanks to its disabling set (overloaded states); with [S = ∅]
    ({!u_response_no_disable}) it is refutably false whenever
    [r1 < w2] (a second request can beat the response).  The test
    suite checks both, making this the failure-injection fixture for
    the [S] machinery. *)

type act = Req | Resp

val pp_act : Format.formatter -> act -> unit

type params = {
  r1 : Tm_base.Rational.t;  (** request spacing lower bound *)
  r2 : Tm_base.Rational.t;  (** request spacing upper bound *)
  w1 : Tm_base.Rational.t;  (** service lower bound *)
  w2 : Tm_base.Rational.t;  (** service upper bound *)
}

val params :
  r1:Tm_base.Rational.t -> r2:Tm_base.Rational.t ->
  w1:Tm_base.Rational.t -> w2:Tm_base.Rational.t -> params

val params_of_ints : r1:int -> r2:int -> w1:int -> w2:int -> params

type server = { pending : bool; overloaded : bool }
type state = unit * server

val system : params -> (state, act) Tm_ioa.Ioa.t
val boundmap : params -> Tm_timed.Boundmap.t
val impl : params -> (state, act) Tm_core.Time_automaton.t

val u_response : params -> (state, act) Tm_timed.Condition.t
(** Triggered by [REQ] steps from an idle, non-overloaded server;
    [Π = {RESP}]; [S] = overloaded states; bounds [[w1, w2]]. *)

val u_response_no_disable : params -> (state, act) Tm_timed.Condition.t
(** The same condition with an empty disabling set — false whenever a
    second request can arrive before the response. *)

val spec : params -> (state, act) Tm_core.Time_automaton.t
(** [time(A, {u_response})]. *)
