module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Ioa = Tm_ioa.Ioa
module Compose = Tm_ioa.Compose
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module Time_automaton = Tm_core.Time_automaton

type act = Tick | Grant

let pp_act fmt a =
  Format.pp_print_string fmt (match a with Tick -> "TICK" | Grant -> "GRANT")

type params = { k : int; c1 : Rational.t; c2 : Rational.t; l : Rational.t }

let params ~k ~c1 ~c2 ~l =
  if k <= 0 then invalid_arg "Interrupt_manager.params: k <= 0";
  if Rational.(c1 <= Rational.zero) then
    invalid_arg "Interrupt_manager.params: c1 <= 0";
  if Rational.(c2 < c1) then invalid_arg "Interrupt_manager.params: c2 < c1";
  if Rational.(l <= Rational.zero) then
    invalid_arg "Interrupt_manager.params: l <= 0";
  { k; c1; c2; l }

let params_of_ints ~k ~c1 ~c2 ~l =
  params ~k ~c1:(Rational.of_int c1) ~c2:(Rational.of_int c2)
    ~l:(Rational.of_int l)

type state = unit * int

let tick_class = "TICK"
let local_class = "LOCAL"

let clock : (unit, act) Ioa.t =
  {
    Ioa.name = "clock";
    start = [ () ];
    alphabet = [ Tick ];
    kind_of = (fun _ -> Ioa.Output);
    delta = (fun () act -> match act with Tick -> [ () ] | Grant -> []);
    classes = [ tick_class ];
    class_of = (function Tick -> Some tick_class | Grant -> None);
    equal_state = (fun () () -> true);
    hash_state = (fun () -> 0);
    pp_state = (fun fmt () -> Format.pp_print_string fmt "·");
    equal_action = ( = );
    pp_action = pp_act;
  }

let manager p : (int, act) Ioa.t =
  {
    Ioa.name = "interrupt-manager";
    start = [ p.k ];
    alphabet = [ Tick; Grant ];
    kind_of = (function Tick -> Ioa.Input | Grant -> Ioa.Output);
    delta =
      (fun timer -> function
        | Tick -> [ timer - 1 ]
        | Grant -> if timer <= 0 then [ p.k ] else []);
    classes = [ local_class ];
    class_of = (function Tick -> None | Grant -> Some local_class);
    equal_state = Int.equal;
    hash_state = Fun.id;
    pp_state = (fun fmt t -> Format.fprintf fmt "TIMER=%d" t);
    equal_action = ( = );
    pp_action = pp_act;
  }

let system p =
  let composed =
    Compose.binary ~name:"interrupt-resource-manager" clock (manager p)
  in
  Ioa.hide composed (fun act -> act = Tick)

let boundmap p =
  Boundmap.of_list
    [
      (tick_class, Interval.make p.c1 (Time.Fin p.c2));
      (local_class, Interval.make Rational.zero (Time.Fin p.l));
    ]

let grant_interval_first p =
  Interval.make
    (Rational.mul_int p.k p.c1)
    (Time.Fin (Rational.add (Rational.mul_int p.k p.c2) p.l))

let grant_interval_between p =
  Interval.make
    (Rational.max
       (Rational.sub (Rational.mul_int p.k p.c1) p.l)
       (Rational.mul_int (p.k - 1) p.c1))
    (Time.Fin (Rational.add (Rational.mul_int p.k p.c2) p.l))

let g1 p =
  Condition.make ~name:"G1"
    ~t_start:(fun _ -> true)
    ~bounds:(grant_interval_first p)
    ~in_pi:(fun act -> act = Grant)
    ()

let g2 p =
  Condition.make ~name:"G2"
    ~t_step:(fun _ act _ -> act = Grant)
    ~bounds:(grant_interval_between p)
    ~in_pi:(fun act -> act = Grant)
    ()

let impl p = Time_automaton.of_boundmap (system p) (boundmap p)
let spec p = Time_automaton.make (system p) [ g1 p; g2 p ]
