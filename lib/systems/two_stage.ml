module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Ioa = Tm_ioa.Ioa
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module Semantics = Tm_timed.Semantics
module Time_automaton = Tm_core.Time_automaton
module Tstate = Tm_core.Tstate
module Mapping = Tm_core.Mapping
module Hierarchy = Tm_core.Hierarchy

type act = Start | Mid | Done

let pp_act fmt a =
  Format.pp_print_string fmt
    (match a with Start -> "START" | Mid -> "MID" | Done -> "DONE")

type phase = Idle | Wait_mid | Wait_done
type state = phase

type params = {
  p1 : Rational.t;
  p2 : Rational.t;
  q1 : Rational.t;
  q2 : Rational.t;
  r1 : Rational.t;
  r2 : Rational.t;
}

let params_of_ints ~p1 ~p2 ~q1 ~q2 ~r1 ~r2 =
  let chk lo hi name =
    if lo < 0 || hi < lo || hi = 0 then
      invalid_arg (Printf.sprintf "Two_stage.params: bad %s interval" name)
  in
  chk p1 p2 "restart";
  chk q1 q2 "first-stage";
  chk r1 r2 "second-stage";
  let f = Rational.of_int in
  { p1 = f p1; p2 = f p2; q1 = f q1; q2 = f q2; r1 = f r1; r2 = f r2 }

let start_class = "START"
let mid_class = "MID"
let done_class = "DONE"

let system _p : (state, act) Ioa.t =
  {
    Ioa.name = "two-stage";
    start = [ Idle ];
    alphabet = [ Start; Mid; Done ];
    kind_of = (function Start | Done -> Ioa.Output | Mid -> Ioa.Internal);
    delta =
      (fun phase act ->
        match (phase, act) with
        | Idle, Start -> [ Wait_mid ]
        | Wait_mid, Mid -> [ Wait_done ]
        | Wait_done, Done -> [ Idle ]
        | (Idle | Wait_mid | Wait_done), (Start | Mid | Done) -> []);
    classes = [ start_class; mid_class; done_class ];
    class_of =
      (function
      | Start -> Some start_class
      | Mid -> Some mid_class
      | Done -> Some done_class);
    equal_state = ( = );
    hash_state =
      (function Idle -> 0 | Wait_mid -> 1 | Wait_done -> 2);
    pp_state =
      (fun fmt ph ->
        Format.pp_print_string fmt
          (match ph with
          | Idle -> "idle"
          | Wait_mid -> "wait-mid"
          | Wait_done -> "wait-done"));
    equal_action = ( = );
    pp_action = pp_act;
  }

let boundmap p =
  Boundmap.of_list
    [
      (start_class, Interval.make p.p1 (Time.Fin p.p2));
      (mid_class, Interval.make p.q1 (Time.Fin p.q2));
      (done_class, Interval.make p.r1 (Time.Fin p.r2));
    ]

let impl p = Time_automaton.of_boundmap (system p) (boundmap p)

let u_start_mid p =
  Condition.make ~name:"U(start,mid)"
    ~t_step:(fun _ act _ -> act = Start)
    ~bounds:(Interval.make p.q1 (Time.Fin p.q2))
    ~in_pi:(fun act -> act = Mid)
    ()

let u_mid_done p =
  Condition.make ~name:"U(mid,done)"
    ~t_step:(fun _ act _ -> act = Mid)
    ~bounds:(Interval.make p.r1 (Time.Fin p.r2))
    ~in_pi:(fun act -> act = Done)
    ()

let end_to_end_interval p =
  Interval.make (Rational.add p.q1 p.r1)
    (Time.Fin (Rational.add p.q2 p.r2))

let u_end_to_end p =
  Condition.make ~name:"U(start,done)"
    ~t_step:(fun _ act _ -> act = Start)
    ~bounds:(end_to_end_interval p)
    ~in_pi:(fun act -> act = Done)
    ()

(* Condition order in the intermediate automaton: u_mid_done at 0, then
   cond(START) at 1 and cond(MID) at 2; the DONE class condition is
   subsumed by u_mid_done exactly as cond(SIGNAL_n) is by U_{n-1,n} in
   the relay. *)
let intermediate p =
  let sys = system p in
  let bm = boundmap p in
  Time_automaton.make sys
    [
      u_mid_done p;
      Semantics.cond_of_class sys bm start_class;
      Semantics.cond_of_class sys bm mid_class;
    ]

let spec p = Time_automaton.make (system p) [ u_end_to_end p ]

let eq_pred s u i j =
  Rational.equal s.Tstate.ft.(i) u.Tstate.ft.(j)
  && Time.equal s.Tstate.lt.(i) u.Tstate.lt.(j)

(* impl condition order follows the class order: cond(START) at 0,
   cond(MID) at 1, cond(DONE) at 2. *)
let top_mapping _p =
  let contains (s : state Tstate.t) (u : state Tstate.t) =
    Time.(u.Tstate.lt.(0) >= s.Tstate.lt.(2))
    && Rational.(u.Tstate.ft.(0) <= s.Tstate.ft.(2))
    && eq_pred s u 0 1 && eq_pred s u 1 2
  in
  { Mapping.mname = "rename: time(A,b) -> B_1"; contains }

let stage_mapping p =
  let contains (s : state Tstate.t) (u : state Tstate.t) =
    let rhs_lt =
      match s.Tstate.base with
      | Wait_done -> s.Tstate.lt.(0)
      | Wait_mid -> Time.add_q s.Tstate.lt.(2) p.r2
      | Idle -> Time.infinity
    in
    let ft_ok =
      match s.Tstate.base with
      | Wait_done -> Rational.(u.Tstate.ft.(0) <= s.Tstate.ft.(0))
      | Wait_mid ->
          Rational.(u.Tstate.ft.(0) <= add s.Tstate.ft.(2) p.r1)
      | Idle -> Rational.(u.Tstate.ft.(0) <= Rational.zero)
    in
    Time.(u.Tstate.lt.(0) >= rhs_lt) && ft_ok
  in
  { Mapping.mname = "stage composition: B_1 -> B"; contains }

let chain p =
  [
    { Hierarchy.target = intermediate p; map = top_mapping p };
    { Hierarchy.target = spec p; map = stage_mapping p };
  ]
