(** The interrupt-driven manager variant of Section 4, footnote 7.

    The paper notes an alternative modelling in which the manager is
    interrupt-driven: the idling [ELSE] action is omitted, so the
    [LOCAL] class (now just [{GRANT}]) is enabled only when the TIMER
    has expired, and the [GRANT] occurs within [l] of that moment.

    The footnote observes the two automata have slightly different
    timing properties; this module makes the difference concrete
    (confirmed by the exact zone/graph analyses in the test suite):

    - first GRANT: [[k·c1, k·c2 + l]] — unchanged;
    - between GRANTs: [[max(k·c1 − l, (k−1)·c1), k·c2 + l]];
    - the [c1 > l] assumption of Section 4 is not needed: the paper's
      analysis of the polling manager relies on Lemma 4.1
      ([TIMER >= 0]), which fails when [l >= c1], whereas the
      interrupt-driven manager is analyzable for any [l > 0].  When
      [c1 > l] the two variants have identical bounds; when [l >= c1]
      the inter-GRANT lower bound degrades to [(k−1)·c1].

    The benchmark harness uses this system as an ablation of the
    polling design. *)

type act = Tick | Grant

val pp_act : Format.formatter -> act -> unit

type params = {
  k : int;
  c1 : Tm_base.Rational.t;
  c2 : Tm_base.Rational.t;
  l : Tm_base.Rational.t;
}

val params : k:int -> c1:Tm_base.Rational.t -> c2:Tm_base.Rational.t ->
  l:Tm_base.Rational.t -> params

val params_of_ints : k:int -> c1:int -> c2:int -> l:int -> params

type state = unit * int

val system : params -> (state, act) Tm_ioa.Ioa.t
val boundmap : params -> Tm_timed.Boundmap.t

val g1 : params -> (state, act) Tm_timed.Condition.t
(** First GRANT in [[k·c1, k·c2 + l]]. *)

val g2 : params -> (state, act) Tm_timed.Condition.t
(** Consecutive GRANTs separated by a time in
    [[max(k·c1 − l, (k−1)·c1), k·c2 + l]]. *)

val impl : params -> (state, act) Tm_core.Time_automaton.t
val spec : params -> (state, act) Tm_core.Time_automaton.t

val grant_interval_first : params -> Tm_base.Interval.t
val grant_interval_between : params -> Tm_base.Interval.t
