(** The conclusions' chained-trigger requirement, made to fit.

    Section 8 of the paper asks whether requirements like "event [π]
    triggers a later [φ] within one interval, and [φ] triggers a later
    [ψ] within another" can be expressed with plain timing conditions.
    This system shows the affirmative answer the paper anticipates: a
    two-stage pipeline

    - [Start] (π): enabled when idle, class bounds [[p1, p2]];
    - [Mid]   (φ): within [[q1, q2]] of [Start], class bounds ditto;
    - [Done]  (ψ): within [[r1, r2]] of [Mid].

    The chained end-to-end requirement — [Done] within
    [[q1 + r1, q2 + r2]] of [Start] ({!u_end_to_end}) — is a plain
    timing condition, and is proved exactly as in Section 6: through an
    intermediate requirements automaton carrying the second-stage
    condition {!u_mid_done} and a strong possibilities mapping
    ({!stage_mapping}) whose inequalities have the same shape as the
    relay's [f_k], here with heterogeneous bounds. *)

type act = Start | Mid | Done

val pp_act : Format.formatter -> act -> unit

type phase = Idle | Wait_mid | Wait_done
type state = phase

type params = {
  p1 : Tm_base.Rational.t;  (** restart lower bound *)
  p2 : Tm_base.Rational.t;  (** restart upper bound *)
  q1 : Tm_base.Rational.t;  (** first-stage lower bound *)
  q2 : Tm_base.Rational.t;  (** first-stage upper bound *)
  r1 : Tm_base.Rational.t;  (** second-stage lower bound *)
  r2 : Tm_base.Rational.t;  (** second-stage upper bound *)
}

val params_of_ints :
  p1:int -> p2:int -> q1:int -> q2:int -> r1:int -> r2:int -> params

val system : params -> (state, act) Tm_ioa.Ioa.t
val boundmap : params -> Tm_timed.Boundmap.t
val impl : params -> (state, act) Tm_core.Time_automaton.t
(** [time(A, b)]. *)

val u_start_mid : params -> (state, act) Tm_timed.Condition.t
(** [Mid] within [[q1, q2]] of every [Start] step. *)

val u_mid_done : params -> (state, act) Tm_timed.Condition.t
(** [Done] within [[r1, r2]] of every [Mid] step. *)

val u_end_to_end : params -> (state, act) Tm_timed.Condition.t
(** [Done] within [[q1 + r1, q2 + r2]] of every [Start] step. *)

val intermediate : params -> (state, act) Tm_core.Time_automaton.t
(** [B_1 = time(A, {u_mid_done} ∪ U_b)]. *)

val spec : params -> (state, act) Tm_core.Time_automaton.t
(** [B = time(A, {u_end_to_end})]. *)

val stage_mapping : params -> state Tm_core.Mapping.t
(** From {!intermediate} to {!spec}: when waiting for [Done] the
    end-to-end deadline is bounded by the second-stage deadline; when
    waiting for [Mid] it is bounded by the [Mid]-class deadline plus
    the second stage's width. *)

val top_mapping : params -> state Tm_core.Mapping.t
(** From {!impl} to {!intermediate}: renames the [Done]-class boundmap
    components into [u_mid_done] (the relay's [trivial_top]
    analogue). *)

val chain : params -> (state, act) Tm_core.Hierarchy.level list
(** [impl -> intermediate -> spec]. *)

val end_to_end_interval : params -> Tm_base.Interval.t
