module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Ioa = Tm_ioa.Ioa
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module Semantics = Tm_timed.Semantics
module Time_automaton = Tm_core.Time_automaton
module Tstate = Tm_core.Tstate
module Mapping = Tm_core.Mapping
module Hierarchy = Tm_core.Hierarchy

type act = Pass of int

let pp_act fmt (Pass i) = Format.fprintf fmt "PASS_%d" i

type params = { n : int; d1 : Rational.t; d2 : Rational.t }

let params_of_ints ~n ~d1 ~d2 =
  if n < 2 then invalid_arg "Token_ring.params: n < 2";
  if d1 < 0 || d2 < d1 || d2 = 0 then
    invalid_arg "Token_ring.params: bad hop interval";
  { n; d1 = Rational.of_int d1; d2 = Rational.of_int d2 }

type state = int

let pass_class i = Printf.sprintf "PASS_%d" i

let system p : (state, act) Ioa.t =
  {
    Ioa.name = Printf.sprintf "token-ring-%d" p.n;
    start = [ 0 ];
    alphabet = List.init p.n (fun i -> Pass i);
    kind_of = (fun (Pass i) -> if i = 0 then Ioa.Output else Ioa.Internal);
    delta =
      (fun holder (Pass i) ->
        if holder = i then [ (i + 1) mod p.n ] else []);
    classes = List.init p.n pass_class;
    class_of = (fun (Pass i) -> Some (pass_class i));
    equal_state = Int.equal;
    hash_state = Fun.id;
    pp_state = (fun fmt h -> Format.fprintf fmt "token@%d" h);
    equal_action = ( = );
    pp_action = pp_act;
  }

let boundmap p =
  Boundmap.of_list
    (List.init p.n (fun i ->
         (pass_class i, Interval.make p.d1 (Time.Fin p.d2))))

let impl p = Time_automaton.of_boundmap (system p) (boundmap p)

let rotation_interval p =
  Interval.make
    (Rational.mul_int p.n p.d1)
    (Time.Fin (Rational.mul_int p.n p.d2))

let u_rotation p =
  Condition.make ~name:"U(rotation)"
    ~t_step:(fun _ act _ -> act = Pass 0)
    ~bounds:(rotation_interval p)
    ~in_pi:(fun act -> act = Pass 0)
    ()

let u_from p ~k =
  if k < 1 || k > p.n - 1 then invalid_arg "Token_ring.u_from: bad k";
  let hops = p.n - k in
  Condition.make
    ~name:(Printf.sprintf "U(from %d)" k)
    ~t_step:(fun _ act _ -> act = Pass k)
    ~bounds:
      (Interval.make
         (Rational.mul_int hops p.d1)
         (Time.Fin (Rational.mul_int hops p.d2)))
    ~in_pi:(fun act -> act = Pass 0)
    ()

let spec p = Time_automaton.make (system p) [ u_rotation p ]

(* Condition order in B_k: u_from k at index 0, cond(PASS_j) at index j
   for 1 <= j <= k. *)
let b_k p ~k =
  let sys = system p in
  let bm = boundmap p in
  Time_automaton.make sys
    (u_from p ~k
    :: List.init k (fun j ->
           Semantics.cond_of_class sys bm (pass_class (j + 1))))

let eq_pred s u i j =
  Rational.equal s.Tstate.ft.(i) u.Tstate.ft.(j)
  && Time.equal s.Tstate.lt.(i) u.Tstate.lt.(j)

(* The token is strictly past station k (u_from k armed) when it sits
   in the cyclic interval {k+1, ..., n-1, 0}. *)
let past k h n = h = 0 || (h > k && h < n)

let f_k p ~k =
  if k < 2 || k > p.n - 1 then invalid_arg "Token_ring.f_k: bad k";
  let hops = p.n - k in
  let contains (s : state Tstate.t) (u : state Tstate.t) =
    let h = s.Tstate.base in
    let rhs_lt =
      if past k h p.n then s.Tstate.lt.(0)
      else if h = k then
        Time.add_q s.Tstate.lt.(k) (Rational.mul_int hops p.d2)
      else Time.infinity
    in
    let ft_ok =
      if past k h p.n then Rational.(u.Tstate.ft.(0) <= s.Tstate.ft.(0))
      else if h = k then
        Rational.(
          u.Tstate.ft.(0) <= add s.Tstate.ft.(k) (Rational.mul_int hops p.d1))
      else Rational.(u.Tstate.ft.(0) <= Rational.zero)
    in
    Time.(u.Tstate.lt.(0) >= rhs_lt)
    && ft_ok
    && (let rec shared j = j > k - 1 || (eq_pred s u j j && shared (j + 1)) in
        shared 1)
  in
  { Mapping.mname = Printf.sprintf "ring f_%d: B_%d -> B_%d" k k (k - 1);
    contains }

(* B_1 -> spec: a rotation from the last PASS_0 is the pending PASS_1
   hop plus the distance measured by u_from 1. *)
let f_close p =
  let hops = p.n - 1 in
  let contains (s : state Tstate.t) (u : state Tstate.t) =
    let h = s.Tstate.base in
    let rhs_lt =
      if past 1 h p.n then s.Tstate.lt.(0)
      else
        (* h = 1: PASS_1 pending *)
        Time.add_q s.Tstate.lt.(1) (Rational.mul_int hops p.d2)
    in
    let ft_ok =
      if past 1 h p.n then Rational.(u.Tstate.ft.(0) <= s.Tstate.ft.(0))
      else
        Rational.(
          u.Tstate.ft.(0) <= add s.Tstate.ft.(1) (Rational.mul_int hops p.d1))
    in
    Time.(u.Tstate.lt.(0) >= rhs_lt) && ft_ok
  in
  { Mapping.mname = "ring close: B_1 -> spec"; contains }

(* impl condition order follows the class order: cond(PASS_i) at i.
   B_{n-1} expects u_from(n-1) at 0 (the renamed cond(PASS_0)) and
   cond(PASS_j) at j. *)
let trivial_top p =
  let contains (s : state Tstate.t) (u : state Tstate.t) =
    Time.(u.Tstate.lt.(0) >= s.Tstate.lt.(0))
    && Rational.(u.Tstate.ft.(0) <= s.Tstate.ft.(0))
    && (let rec shared j =
          j > p.n - 1 || (eq_pred s u j j && shared (j + 1))
        in
        shared 1)
  in
  { Mapping.mname = "ring rename: time(A,b) -> B_{n-1}"; contains }

let chain p =
  let top = { Hierarchy.target = b_k p ~k:(p.n - 1); map = trivial_top p } in
  let middles =
    List.init
      (max 0 (p.n - 2))
      (fun i ->
        let k = p.n - 1 - i in
        { Hierarchy.target = b_k p ~k:(k - 1); map = f_k p ~k })
  in
  let close = { Hierarchy.target = spec p; map = f_close p } in
  (top :: middles) @ [ close ]
