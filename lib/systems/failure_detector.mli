(** A heartbeat failure detector, analyzed with the paper's machinery.

    Timing-based failure detection is the canonical "real-time
    computing and communication" target the conclusions point to.  A
    sender emits heartbeats every [[h1, h2]] while alive and may crash
    at any moment; a monitor polls every [[g1, g2]] (the same
    tick-counting pattern as the Section 4 manager), clearing a miss
    counter when a heartbeat arrived since the previous poll and
    incrementing it otherwise; after [m] consecutive misses it raises a
    suspicion.

    Two properties, each a timing property in the paper's sense:

    - {b accuracy} — while [h2 <= g1] (every polling gap contains a
      heartbeat), a live sender is never suspected: the state invariant
      [suspected => crashed], verified exactly by zone reachability and
      refuted when heartbeats are slower than polls;
    - {b completeness} — after a crash, suspicion is raised within
      [[(m−1)·g1 + max(0, g1−h2), (m+1)·g2]] ({!u_detect}): at worst
      one poll consumes a heartbeat that arrived just before the crash,
      then [m] missing polls each at most [g2] apart; at best the crash
      preempts a pending heartbeat and the first stale poll lands
      [g1−h2] later, with the remaining [m−1] polls as fast as
      possible.  Both endpoints are exactly tight — the test suite
      checks them against the exact first-occurrence analysis. *)

type act =
  | Hb  (** heartbeat delivery *)
  | Crash  (** the sender dies (may never happen: upper bound ∞) *)
  | Check_ok  (** poll: heartbeat seen, counter cleared *)
  | Check_miss  (** poll: nothing since last poll *)
  | Check_suspect  (** poll: [m]-th consecutive miss — suspicion *)
  | Check_idle  (** poll after suspicion (monitor keeps running) *)

val pp_act : Format.formatter -> act -> unit

type state = {
  alive : bool;
  fresh : bool;  (** heartbeat since the last poll *)
  misses : int;
  suspected : bool;
}

type params = {
  h1 : Tm_base.Rational.t;  (** heartbeat spacing lower bound *)
  h2 : Tm_base.Rational.t;  (** heartbeat spacing upper bound *)
  g1 : Tm_base.Rational.t;  (** polling gap lower bound *)
  g2 : Tm_base.Rational.t;  (** polling gap upper bound *)
  m : int;  (** misses before suspicion, [>= 1] *)
}

val params_of_ints : h1:int -> h2:int -> g1:int -> g2:int -> m:int -> params
(** Validates only interval shapes; [h2 <= g1] (the accuracy
    assumption) is deliberately not enforced so that refutation runs
    can violate it. *)

val accurate : params -> bool
(** The regime in which no false suspicion is possible:
    [h2 < g1], or [h2 <= g1] with [m >= 2] (at [h2 = g1] a heartbeat
    and a poll can coincide and be ordered poll-first, which fools a
    single-miss detector). *)

val hb_class : string
val crash_class : string
val check_class : string

val system : params -> (state, act) Tm_ioa.Ioa.t
val boundmap : params -> Tm_timed.Boundmap.t
val impl : params -> (state, act) Tm_core.Time_automaton.t

val no_false_suspicion : state -> bool
(** [suspected => not alive]. *)

val detection_interval : params -> Tm_base.Interval.t
(** [[(m−1)·g1 + max(0, g1−h2), (m+1)·g2]]. *)

val u_detect : params -> (state, act) Tm_timed.Condition.t
(** Triggered by the [Crash] step; [Π = {Check_suspect}]; bounds
    {!detection_interval}. *)

val spec : params -> (state, act) Tm_core.Time_automaton.t
