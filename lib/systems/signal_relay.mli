(** The signal relay of Section 6.

    A line of [n+1] processes [P_0 … P_n].  [P_0] may emit [SIGNAL_0]
    once ([b(SIGNAL_0) = [0, ∞]]); each [P_i] waits for [SIGNAL_{i-1}]
    and then emits [SIGNAL_i] within [[d1, d2]].  The composition hides
    the intermediate signals.

    Proved timing behaviour (Theorem 6.4): if [SIGNAL_0] occurs at
    [t1], a single [SIGNAL_n] follows at [t2] with
    [n·d1 <= t2 − t1 <= n·d2] (condition [U_{0,n}]).

    All timed executions of the relay are finite, so the proof goes
    through the dummification of Section 5, and — following the paper —
    through a *hierarchy* of intermediate requirement automata [B_k]
    ([time(Ã, U_k)] with [U_k = {U_{k,n}} ∪ cond(SIGNAL_0..k) ∪
    cond(NULL)]) connected by the mappings [f_k : B_k → B_{k−1}] of
    Section 6.4; the chain composes into the required mapping
    (Corollary 6.3). *)

type act = Signal of int

val pp_act : Format.formatter -> act -> unit

type dact = act Tm_core.Dummify.action
(** Actions of the dummified relay. *)

type params = {
  n : int;  (** [n >= 1]; the line has [n+1] processes *)
  d1 : Tm_base.Rational.t;  (** per-hop lower bound, [0 <= d1 <= d2] *)
  d2 : Tm_base.Rational.t;  (** per-hop upper bound, [d2 > 0] *)
  null_bounds : Tm_base.Interval.t;  (** boundmap interval of the dummy *)
}

val params :
  n:int -> d1:Tm_base.Rational.t -> d2:Tm_base.Rational.t ->
  ?null_bounds:Tm_base.Interval.t -> unit -> params
(** [null_bounds] defaults to [[1, 2]].
    @raise Invalid_argument when the side conditions fail. *)

val params_of_ints : n:int -> d1:int -> d2:int -> params

type state = bool array
(** [FLAG_0 … FLAG_n]. *)

val sig_class : int -> string
(** Partition class of [SIGNAL_i]. *)

val process : params -> int -> (bool, act) Tm_ioa.Ioa.t
(** [P_i]. *)

val line : params -> (state, act) Tm_ioa.Ioa.t
(** The composition with [SIGNAL_1 … SIGNAL_{n-1}] hidden. *)

val boundmap : params -> Tm_timed.Boundmap.t

val dsystem : params -> (state, dact) Tm_ioa.Ioa.t
(** [Ã]: the dummified line. *)

val dboundmap : params -> Tm_timed.Boundmap.t
(** [b̃]. *)

val u_cond : params -> k:int -> (state, dact) Tm_timed.Condition.t
(** [Ũ_{k,n}] for [0 <= k <= n−1]: triggered by [SIGNAL_k] steps,
    bounds [[(n−k)·d1, (n−k)·d2]], [Π = {SIGNAL_n}]. *)

val impl : params -> (state, dact) Tm_core.Time_automaton.t
(** [time(Ã, b̃)], the assumptions automaton. *)

val b_k : params -> k:int -> (state, dact) Tm_core.Time_automaton.t
(** The intermediate requirements automaton [B_k]. *)

val spec : params -> (state, dact) Tm_core.Time_automaton.t
(** [B = time(Ã, {Ũ_{0,n}})], the requirements automaton. *)

val f_k : params -> k:int -> state Tm_core.Mapping.t
(** The mapping of Section 6.4 from [B_k] to [B_{k−1}], [1 <= k <= n−1]. *)

val trivial_top : params -> state Tm_core.Mapping.t
(** [time(Ã, b̃) → B_{n−1}]: renames the components of [SIGNAL_n]'s
    class condition to [U_{n−1,n}] and checks the shared components. *)

val trivial_bottom : params -> state Tm_core.Mapping.t
(** [B_0 → B]: forgets the boundmap components. *)

val chain : params -> (state, dact) Tm_core.Hierarchy.level list
(** The full hierarchy [time(Ã,b̃) → B_{n−1} → … → B_0 → B]. *)

val delay_interval : params -> Tm_base.Interval.t
(** [[n·d1, n·d2]]. *)

val lemma_6_1 : state -> bool
(** At most one flag is set (the invariant of Lemma 6.1, phrased on
    states: [SIGNAL_i] enabled for at most one [i]). *)
