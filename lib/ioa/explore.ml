module Hstore = Tm_base.Hstore
module Metrics = Tm_obs.Metrics
module Tracing = Tm_obs.Tracing

let c_states = Metrics.counter "explore.states"
let c_edges = Metrics.counter "explore.edges"

type ('s, 'a) graph = {
  automaton : ('s, 'a) Ioa.t;
  states : 's Hstore.t;
  edges : (int * 'a * int) list;
  truncated : bool;
}

let successors (a : ('s, 'a) Ioa.t) s =
  List.concat_map
    (fun act -> List.map (fun s' -> (act, s')) (a.Ioa.delta s act))
    a.Ioa.alphabet

let reachable ?(limit = 200_000) (a : ('s, 'a) Ioa.t) =
  Tracing.with_span "explore.reachable" @@ fun () ->
  let store =
    Hstore.create ~equal:a.Ioa.equal_state ~hash:a.Ioa.hash_state 1024
  in
  let queue = Queue.create () in
  let edges = ref [] in
  let truncated = ref false in
  List.iter
    (fun s ->
      match Hstore.add store s with
      | `Added id ->
          Metrics.incr c_states;
          Queue.add id queue
      | `Present _ -> ())
    a.Ioa.start;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let s = Hstore.key_of_id store id in
    List.iter
      (fun (act, s') ->
        if Hstore.length store >= limit then truncated := true
        else begin
          Metrics.incr c_edges;
          match Hstore.add store s' with
          | `Added id' ->
              Metrics.incr c_states;
              edges := (id, act, id') :: !edges;
              Queue.add id' queue
          | `Present id' -> edges := (id, act, id') :: !edges
        end)
      (successors a s)
  done;
  { automaton = a; states = store; edges = List.rev !edges;
    truncated = !truncated }

type ('s, 'a) invariant_result =
  | Holds of int
  | Violated of ('s, 'a) Execution.t
  | Limit_reached of int

let check_invariant (type s a) ?(limit = 200_000) (a : (s, a) Ioa.t) pred =
  let store =
    Hstore.create ~equal:a.Ioa.equal_state ~hash:a.Ioa.hash_state 1024
  in
  (* parent.(id) = Some (parent id, action) for path reconstruction *)
  let parents : (int, int * a) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let path_to id =
    let rec climb id acc =
      match Hashtbl.find_opt parents id with
      | None -> (Hstore.key_of_id store id, acc)
      | Some (pid, act) ->
          climb pid ((act, Hstore.key_of_id store id) :: acc)
    in
    let first, moves = climb id [] in
    Execution.of_states first moves
  in
  let exception Found of (s, a) Execution.t in
  let exception Limit in
  try
    List.iter
      (fun s ->
        match Hstore.add store s with
        | `Added id ->
            if not (pred s) then raise (Found (path_to id));
            Queue.add id queue
        | `Present _ -> ())
      a.Ioa.start;
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      let s = Hstore.key_of_id store id in
      List.iter
        (fun (act, s') ->
          if Hstore.length store >= limit then raise Limit;
          match Hstore.add store s' with
          | `Added id' ->
              Hashtbl.replace parents id' (id, act);
              if not (pred s') then raise (Found (path_to id'));
              Queue.add id' queue
          | `Present _ -> ())
        (successors a s)
    done;
    Holds (Hstore.length store)
  with
  | Found e -> Violated e
  | Limit -> Limit_reached (Hstore.length store)
