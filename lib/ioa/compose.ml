exception Incompatible of string

let fail fmt = Format.kasprintf (fun m -> raise (Incompatible m)) fmt

(* Deduplicate a list of actions with a given equality. *)
let dedup equal xs =
  List.fold_left
    (fun acc x -> if List.exists (equal x) acc then acc else x :: acc)
    [] xs
  |> List.rev

let check_compat name (kinds : ('a * Ioa.kind option * Ioa.kind option) list)
    =
  List.iter
    (fun (_, k1, k2) ->
      match (k1, k2) with
      | Some Ioa.Output, Some Ioa.Output ->
          fail "%s: action is an output of two components" name
      | Some Ioa.Internal, Some _ | Some _, Some Ioa.Internal ->
          fail "%s: internal action shared between components" name
      | _ -> ())
    kinds

let binary ~name (a : ('s1, 'a) Ioa.t) (b : ('s2, 'a) Ioa.t) :
    ('s1 * 's2, 'a) Ioa.t =
  let equal_action = a.Ioa.equal_action in
  let in_a act = List.exists (equal_action act) a.Ioa.alphabet in
  let in_b act = List.exists (equal_action act) b.Ioa.alphabet in
  let alphabet = dedup equal_action (a.Ioa.alphabet @ b.Ioa.alphabet) in
  check_compat name
    (List.map
       (fun act ->
         ( act,
           (if in_a act then Some (a.Ioa.kind_of act) else None),
           if in_b act then Some (b.Ioa.kind_of act) else None ))
       alphabet);
  List.iter
    (fun c ->
      if List.mem c b.Ioa.classes then
        fail "%s: partition class %S appears in both components" name c)
    a.Ioa.classes;
  let kind_of act =
    let ka = if in_a act then Some (a.Ioa.kind_of act) else None in
    let kb = if in_b act then Some (b.Ioa.kind_of act) else None in
    match (ka, kb) with
    | Some Ioa.Output, _ | _, Some Ioa.Output -> Ioa.Output
    | Some Ioa.Internal, _ -> Ioa.Internal
    | _, Some Ioa.Internal -> Ioa.Internal
    | _ -> Ioa.Input
  in
  let delta (s1, s2) act =
    if not (in_a act || in_b act) then []
    else
      let post1 = if in_a act then a.Ioa.delta s1 act else [ s1 ] in
      let post2 = if in_b act then b.Ioa.delta s2 act else [ s2 ] in
      List.concat_map (fun p1 -> List.map (fun p2 -> (p1, p2)) post2) post1
  in
  let class_of act =
    match (if in_a act then a.Ioa.class_of act else None) with
    | Some c -> Some c
    | None -> if in_b act then b.Ioa.class_of act else None
  in
  {
    Ioa.name;
    start =
      List.concat_map
        (fun s1 -> List.map (fun s2 -> (s1, s2)) b.Ioa.start)
        a.Ioa.start;
    alphabet;
    kind_of;
    delta;
    classes = a.Ioa.classes @ b.Ioa.classes;
    class_of;
    equal_state =
      (fun (x1, x2) (y1, y2) ->
        a.Ioa.equal_state x1 y1 && b.Ioa.equal_state x2 y2);
    hash_state =
      (fun (x1, x2) -> (a.Ioa.hash_state x1 * 31) + b.Ioa.hash_state x2);
    pp_state =
      (fun fmt (x1, x2) ->
        Format.fprintf fmt "(%a, %a)" a.Ioa.pp_state x1 b.Ioa.pp_state x2);
    equal_action;
    pp_action = a.Ioa.pp_action;
  }

let array ~name (components : ('s, 'a) Ioa.t array) : ('s array, 'a) Ioa.t =
  if Array.length components = 0 then fail "%s: empty composition" name;
  let c0 = components.(0) in
  let equal_action = c0.Ioa.equal_action in
  let n = Array.length components in
  let in_comp i act =
    List.exists (equal_action act) components.(i).Ioa.alphabet
  in
  let alphabet =
    dedup equal_action
      (List.concat_map
         (fun c -> c.Ioa.alphabet)
         (Array.to_list components))
  in
  (* Strong compatibility across the whole family. *)
  List.iter
    (fun act ->
      let owners = ref 0 in
      Array.iteri
        (fun i c ->
          if in_comp i act then
            match c.Ioa.kind_of act with
            | Ioa.Output -> incr owners
            | Ioa.Internal ->
                let shared = ref 0 in
                Array.iteri
                  (fun j _ -> if in_comp j act then incr shared)
                  components;
                if !shared > 1 then
                  fail "%s: internal action shared between components" name
            | Ioa.Input -> ())
        components;
      if !owners > 1 then
        fail "%s: action is an output of two components" name)
    alphabet;
  let all_classes =
    List.concat_map (fun c -> c.Ioa.classes) (Array.to_list components)
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c then
        fail "%s: partition class %S appears in two components" name c
      else Hashtbl.add seen c ())
    all_classes;
  let kind_of act =
    let k = ref Ioa.Input in
    Array.iteri
      (fun i c ->
        if in_comp i act then
          match c.Ioa.kind_of act with
          | Ioa.Output -> k := Ioa.Output
          | Ioa.Internal -> k := Ioa.Internal
          | Ioa.Input -> ())
      components;
    !k
  in
  let delta states act =
    if not (Array.exists (fun c ->
                List.exists (equal_action act) c.Ioa.alphabet)
              components)
    then []
    else
      let posts =
        Array.mapi
          (fun i c ->
            if in_comp i act then c.Ioa.delta states.(i) act
            else [ states.(i) ])
          components
      in
      (* Cartesian product of per-component post-state lists. *)
      let rec cross i acc =
        if i = n then [ Array.of_list (List.rev acc) ]
        else
          List.concat_map (fun p -> cross (i + 1) (p :: acc)) posts.(i)
      in
      cross 0 []
  in
  let class_of act =
    let found = ref None in
    Array.iteri
      (fun i c ->
        if !found = None && in_comp i act then
          match c.Ioa.class_of act with
          | Some cl -> found := Some cl
          | None -> ())
      components;
    !found
  in
  {
    Ioa.name;
    start =
      (let rec cross i acc =
         if i = n then [ Array.of_list (List.rev acc) ]
         else
           List.concat_map
             (fun s -> cross (i + 1) (s :: acc))
             components.(i).Ioa.start
       in
       cross 0 []);
    alphabet;
    kind_of;
    delta;
    classes = all_classes;
    class_of;
    equal_state =
      (fun xs ys ->
        Array.length xs = Array.length ys
        && Array.for_all2 (fun i x -> i x)
             (Array.mapi (fun i x -> components.(i).Ioa.equal_state x) xs)
             ys);
    hash_state =
      (fun xs ->
        let h = ref 0 in
        Array.iteri
          (fun i x -> h := (!h * 31) + components.(i).Ioa.hash_state x)
          xs;
        !h);
    pp_state =
      (fun fmt xs ->
        Format.fprintf fmt "[|";
        Array.iteri
          (fun i x ->
            if i > 0 then Format.fprintf fmt "; ";
            components.(i).Ioa.pp_state fmt x)
          xs;
        Format.fprintf fmt "|]");
    equal_action;
    pp_action = c0.Ioa.pp_action;
  }
