(** Executions, schedules and behaviours of I/O automata (Section 2.1).

    An execution fragment is a start state followed by alternating
    (action, state) moves; it is an execution when the first state is a
    start state of the automaton. *)

type ('s, 'a) t = { first : 's; moves : ('a * 's) list }

val of_states : 's -> ('a * 's) list -> ('s, 'a) t
val last_state : ('s, 'a) t -> 's
val length : ('s, 'a) t -> int
(** Number of moves. *)

val states : ('s, 'a) t -> 's list
(** All states, in order, including [first]. *)

val append : ('s, 'a) t -> 'a -> 's -> ('s, 'a) t
val prefix : int -> ('s, 'a) t -> ('s, 'a) t
(** First [n] moves. *)

val schedule : ('s, 'a) t -> 'a list
val behavior : ('s, 'a) Ioa.t -> ('s, 'a) t -> 'a list
(** External actions only. *)

val is_fragment : ('s, 'a) Ioa.t -> ('s, 'a) t -> bool
(** Every move is a step of the automaton. *)

val is_execution : ('s, 'a) Ioa.t -> ('s, 'a) t -> bool
(** [is_fragment] and the first state is a start state. *)

val steps : ('s, 'a) t -> ('s * 'a * 's) list
(** The (pre-state, action, post-state) triples, in order. *)

val pp : ('s, 'a) Ioa.t -> Format.formatter -> ('s, 'a) t -> unit
