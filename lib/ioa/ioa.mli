(** I/O automata (Lynch–Tuttle), Section 2.1 of the paper.

    An automaton is a value of type [('s, 'a) t]: states of type ['s],
    actions of type ['a], a finite action alphabet, a step relation
    [delta] (nondeterministic: a list of post-states, empty when the
    action is not enabled), and a partition of the locally controlled
    actions into named classes.

    Because states may come from arbitrary OCaml types, the record also
    carries equality, hashing and printing for states and actions; the
    exploration, simulation and verification layers all use these. *)

type kind = Input | Output | Internal

val kind_to_string : kind -> string
val is_external : kind -> bool
val is_locally_controlled : kind -> bool

type ('s, 'a) t = {
  name : string;
  start : 's list;  (** nonempty *)
  alphabet : 'a list;  (** finite action alphabet, no duplicates *)
  kind_of : 'a -> kind;
  delta : 's -> 'a -> 's list;
      (** post-states of a step; [[]] iff the action is not enabled.
          Input actions must be enabled in every state. *)
  classes : string list;
      (** the partition [part(A)] of locally controlled actions *)
  class_of : 'a -> string option;
      (** [None] exactly for input actions; [Some c] with
          [List.mem c classes] otherwise *)
  equal_state : 's -> 's -> bool;
  hash_state : 's -> int;
  pp_state : Format.formatter -> 's -> unit;
  equal_action : 'a -> 'a -> bool;
  pp_action : Format.formatter -> 'a -> unit;
}

val enabled : ('s, 'a) t -> 's -> 'a -> bool
(** [enabled a s act] iff some step [(s, act, _)] exists. *)

val enabled_actions : ('s, 'a) t -> 's -> 'a list
(** All alphabet actions enabled in [s], in alphabet order. *)

val class_members : ('s, 'a) t -> string -> 'a list
(** Actions belonging to a partition class. *)

val class_enabled : ('s, 'a) t -> string -> 's -> bool
(** [class_enabled a c s]: is [s ∈ enabled(A, C)] — some action of
    class [c] enabled in [s]? *)

val step_exists : ('s, 'a) t -> 's -> 'a -> 's -> bool
(** Membership test for the step relation. *)

val external_actions : ('s, 'a) t -> 'a list
val locally_controlled_actions : ('s, 'a) t -> 'a list
val input_actions : ('s, 'a) t -> 'a list

val hide : ('s, 'a) t -> ('a -> bool) -> ('s, 'a) t
(** [hide a p] reclassifies output actions satisfying [p] as internal
    (the paper's hiding operator). *)

val rename : ('s, 'a) t -> string -> ('s, 'a) t

val validate : ('s, 'a) t -> states:'s list -> (unit, string) result
(** Structural sanity checks: start nonempty; class names of
    locally-controlled actions are listed in [classes]; input actions
    have no class; input actions are enabled in every supplied state
    (input-enabledness can only be checked on a state sample — pass the
    reachable set for finite automata). *)
