(** Breadth-first reachability and invariant checking for finite-state
    I/O automata.

    Used for the "assertional reasoning" side of the paper: proving
    state invariants such as Lemma 4.1 by exhaustive induction over the
    reachable set (for finite or finitely discretized automata). *)

type ('s, 'a) graph = {
  automaton : ('s, 'a) Ioa.t;
  states : 's Tm_base.Hstore.t;  (** reachable states, dense ids *)
  edges : (int * 'a * int) list;  (** (source id, action, target id) *)
  truncated : bool;  (** hit the state limit before exhausting *)
}

val reachable : ?limit:int -> ('s, 'a) Ioa.t -> ('s, 'a) graph
(** BFS from the start states over the full alphabet.
    [limit] defaults to [200_000] states. *)

type ('s, 'a) invariant_result =
  | Holds of int  (** number of reachable states checked *)
  | Violated of ('s, 'a) Execution.t  (** a path to a violating state *)
  | Limit_reached of int

val check_invariant :
  ?limit:int -> ('s, 'a) Ioa.t -> ('s -> bool) -> ('s, 'a) invariant_result
(** BFS that stops at the first state violating the predicate and
    reconstructs a counterexample execution to it. *)

val successors : ('s, 'a) Ioa.t -> 's -> ('a * 's) list
(** All one-step moves out of a state. *)
