type ('s, 'a) t = { first : 's; moves : ('a * 's) list }

let of_states first moves = { first; moves }

let last_state e =
  match List.rev e.moves with [] -> e.first | (_, s) :: _ -> s

let length e = List.length e.moves
let states e = e.first :: List.map snd e.moves
let append e act s = { e with moves = e.moves @ [ (act, s) ] }

let prefix n e =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: xs -> x :: take (n - 1) xs
  in
  { e with moves = take n e.moves }

let schedule e = List.map fst e.moves

let behavior (a : ('s, 'a) Ioa.t) e =
  List.filter (fun act -> Ioa.is_external (a.Ioa.kind_of act)) (schedule e)

let steps e =
  let rec go pre = function
    | [] -> []
    | (act, post) :: rest -> (pre, act, post) :: go post rest
  in
  go e.first e.moves

let is_fragment (a : ('s, 'a) Ioa.t) e =
  List.for_all (fun (pre, act, post) -> Ioa.step_exists a pre act post)
    (steps e)

let is_execution a e =
  List.exists (a.Ioa.equal_state e.first) a.Ioa.start && is_fragment a e

let pp (a : ('s, 'a) Ioa.t) fmt e =
  Format.fprintf fmt "@[<v>%a" a.Ioa.pp_state e.first;
  List.iter
    (fun (act, s) ->
      Format.fprintf fmt "@,--%a--> %a" a.Ioa.pp_action act a.Ioa.pp_state s)
    e.moves;
  Format.fprintf fmt "@]"
