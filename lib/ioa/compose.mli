(** Composition of strongly compatible I/O automata (Section 2.1).

    Components synchronize on shared actions: every component having
    the action in its alphabet takes a step simultaneously.  Strong
    compatibility requires that no action is an output of two
    components, that internal actions are unshared, and that partition
    class names are disjoint; violations raise {!Incompatible}. *)

exception Incompatible of string

val binary :
  name:string -> ('s1, 'a) Ioa.t -> ('s2, 'a) Ioa.t -> ('s1 * 's2, 'a) Ioa.t
(** Composition of two automata over the same action type. *)

val array : name:string -> ('s, 'a) Ioa.t array -> ('s array, 'a) Ioa.t
(** Composition of a family of automata with a common state type (e.g.
    the signal-relay line).  Components must already have pairwise
    distinct partition-class names. *)
