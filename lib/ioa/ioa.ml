type kind = Input | Output | Internal

let kind_to_string = function
  | Input -> "input"
  | Output -> "output"
  | Internal -> "internal"

let is_external = function Input | Output -> true | Internal -> false
let is_locally_controlled = function Output | Internal -> true | Input -> false

type ('s, 'a) t = {
  name : string;
  start : 's list;
  alphabet : 'a list;
  kind_of : 'a -> kind;
  delta : 's -> 'a -> 's list;
  classes : string list;
  class_of : 'a -> string option;
  equal_state : 's -> 's -> bool;
  hash_state : 's -> int;
  pp_state : Format.formatter -> 's -> unit;
  equal_action : 'a -> 'a -> bool;
  pp_action : Format.formatter -> 'a -> unit;
}

let enabled a s act = a.delta s act <> []
let enabled_actions a s = List.filter (enabled a s) a.alphabet

let class_members a c =
  List.filter (fun act -> a.class_of act = Some c) a.alphabet

let class_enabled a c s =
  List.exists (fun act -> a.class_of act = Some c && enabled a s act) a.alphabet

let step_exists a s act s' = List.exists (a.equal_state s') (a.delta s act)

let external_actions a =
  List.filter (fun act -> is_external (a.kind_of act)) a.alphabet

let locally_controlled_actions a =
  List.filter (fun act -> is_locally_controlled (a.kind_of act)) a.alphabet

let input_actions a = List.filter (fun act -> a.kind_of act = Input) a.alphabet

let hide a p =
  let kind_of act =
    match a.kind_of act with
    | Output when p act -> Internal
    | k -> k
  in
  { a with kind_of }

let rename a name = { a with name }

let validate a ~states =
  let ( let* ) r f = Result.bind r f in
  let* () = if a.start = [] then Error "no start state" else Ok () in
  let* () =
    List.fold_left
      (fun acc act ->
        let* () = acc in
        match (a.kind_of act, a.class_of act) with
        | Input, None -> Ok ()
        | Input, Some _ -> Error "input action assigned a partition class"
        | (Output | Internal), None ->
            Error "locally controlled action without a partition class"
        | (Output | Internal), Some c ->
            if List.mem c a.classes then Ok ()
            else Error (Printf.sprintf "unknown partition class %S" c))
      (Ok ()) a.alphabet
  in
  let inputs = input_actions a in
  List.fold_left
    (fun acc s ->
      let* () = acc in
      match List.find_opt (fun act -> not (enabled a s act)) inputs with
      | None -> Ok ()
      | Some act ->
          Error
            (Format.asprintf "input %a not enabled in state %a" a.pp_action
               act a.pp_state s))
    (Ok ()) states
