(** Hierarchical phase profiler: aggregated wall time and GC
    allocation per span *path*.

    Where {!Tracing} records every span occurrence for a timeline
    view, [Prof] folds occurrences of the same call path into one
    node carrying call count, total and self wall time, and total and
    self allocated bytes ([Gc.allocated_bytes] deltas).  Paths are
    [";"]-joined span names ("zones.reachable;recover.snapshot"), the
    collapsed-stack convention, so {!to_folded} output loads directly
    into speedscope or any FlameGraph tool.

    Phases are delimited by {!Tracing.with_span}: enabling the
    profiler makes every existing span site feed it, on the main
    domain and on pool workers alike (worker phases start their own
    roots).  Aggregation is mutex-protected and happens only at phase
    exit, so the disabled-path cost at a span site is one atomic-free
    flag read. *)

type node = {
  path : string;  (** ";"-joined span names, root first *)
  count : int;
  total_s : float;  (** wall time inside the phase, children included *)
  self_s : float;  (** total minus time spent in child phases *)
  alloc_bytes : float;  (** GC-allocated bytes, children included *)
  self_alloc_bytes : float;
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all aggregated nodes (main domain, no phases in flight). *)

val begin_phase : string -> unit
val end_phase : unit -> unit
(** Explicit phase delimiters for call sites that cannot use
    {!with_phase}; must nest properly per domain.  [end_phase] on an
    empty stack is a no-op. *)

val with_phase : string -> (unit -> 'a) -> 'a
(** Run a function inside a phase (exception-safe); a plain call when
    the profiler is disabled. *)

val nodes : unit -> node list
(** Aggregated nodes sorted by path. *)

val to_folded : unit -> string
(** Collapsed-stack lines ["path self_microseconds\n"], one per node
    with positive self time — the format speedscope and
    [flamegraph.pl] import. *)

val write_folded : string -> unit

val to_json : unit -> Json.t

val pp : Format.formatter -> unit -> unit
(** Indented tree with count / total / self / allocation columns. *)
