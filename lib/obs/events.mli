(** Streaming NDJSON run events and the live [--progress] status line.

    When a sink is attached, subsystems emit one JSON object per line:

    {v {"ts":1.5,"seq":12,"ev":"zones.batch","stored":4096,...} v}

    [ts] is seconds since the sink was attached, read from {!Clock}
    (so it never goes backwards); [seq] is a process-wide sequence
    number, strictly increasing across domains.  Every line is
    flushed as it is written, so an interrupted run leaves a
    well-formed stream up to the interrupt.

    Emission is observation-only: subsystems read their own counters
    and write a line, never influencing exploration order — verdicts
    and [zones.stored] are byte-identical with the sink on or off at
    any domain count.  With no sink attached, [emit] is one flag
    read.

    The progress line is independent of the event sink: a throttled,
    carriage-return-overwritten one-liner on stderr (never stdout),
    showing stored zones, frontier size, rate, GC heap words, and an
    ETA when a deadline or state budget bounds the run. *)

val enabled : unit -> bool

val attach : ?stdout_sink:bool -> out_channel -> unit
(** Start streaming to a channel the caller keeps ownership of; resets
    [seq] and the [ts] epoch.  [stdout_sink] marks the sink as being
    process stdout (see {!sink_is_stdout}). *)

val open_path : string -> unit
(** [open_path "-"] attaches process stdout; any other argument opens
    (truncates) that file, owned and closed by {!close}.
    @raise Sys_error when the file cannot be opened. *)

val sink_is_stdout : unit -> bool
(** True while the attached sink is process stdout — the CLI then
    moves human output to stderr so stdout stays pure NDJSON. *)

val close : unit -> unit
(** Flush and detach the sink (closing the channel only if
    {!open_path} opened it).  Idempotent; called on every CLI exit
    path, including interrupts. *)

val emit : string -> (string * Json.t) list -> unit
(** [emit ev fields] writes one event line.  Safe from any domain;
    a no-op without a sink.  A write error (e.g. broken pipe)
    silently detaches the sink rather than killing the run. *)

val seq : unit -> int
(** Number of events emitted since the sink was attached. *)

(** {1 Progress line} *)

val progress_enabled : unit -> bool
val set_progress : bool -> unit

val set_progress_channel : out_channel -> unit
(** Redirect the status line (default stderr) — test hook. *)

val progress :
  ?eta_s:float -> stored:int -> frontier:int -> rate:float -> unit -> unit
(** Repaint the status line in place, throttled to at most ~10
    repaints per second of {!Clock} time. *)

val progress_clear : unit -> unit
(** Erase the status line if one is on screen (end of run, or before
    interleaving other stderr output). *)
