type node = {
  path : string;
  count : int;
  total_s : float;
  self_s : float;
  alloc_bytes : float;
  self_alloc_bytes : float;
}

let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

(* Aggregation table, shared by every domain under [mu].  It is only
   touched at phase exit — phase entry just pushes a frame on the
   calling domain's private stack. *)
type acc = {
  mutable acount : int;
  mutable atotal : float;
  mutable aself : float;
  mutable aalloc : float;
  mutable aself_alloc : float;
}

let mu = Mutex.create ()
let table : (string, acc) Hashtbl.t = Hashtbl.create 64

type frame = {
  fpath : string;
  t0 : float;
  a0 : float;
  mutable child_s : float;
  mutable child_b : float;
}

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let begin_phase name =
  if !on then begin
    let st = Domain.DLS.get stack_key in
    let fpath =
      match !st with [] -> name | f :: _ -> f.fpath ^ ";" ^ name
    in
    st :=
      { fpath; t0 = Clock.now_s (); a0 = Gc.allocated_bytes ();
        child_s = 0.; child_b = 0. }
      :: !st
  end

let end_phase () =
  let st = Domain.DLS.get stack_key in
  match !st with
  | [] -> ()
  | f :: rest ->
      st := rest;
      let dt = Float.max 0. (Clock.now_s () -. f.t0) in
      let db = Float.max 0. (Gc.allocated_bytes () -. f.a0) in
      (match rest with
      | parent :: _ ->
          parent.child_s <- parent.child_s +. dt;
          parent.child_b <- parent.child_b +. db
      | [] -> ());
      Mutex.lock mu;
      let a =
        match Hashtbl.find_opt table f.fpath with
        | Some a -> a
        | None ->
            let a =
              { acount = 0; atotal = 0.; aself = 0.; aalloc = 0.;
                aself_alloc = 0. }
            in
            Hashtbl.add table f.fpath a;
            a
      in
      a.acount <- a.acount + 1;
      a.atotal <- a.atotal +. dt;
      a.aself <- a.aself +. Float.max 0. (dt -. f.child_s);
      a.aalloc <- a.aalloc +. db;
      a.aself_alloc <- a.aself_alloc +. Float.max 0. (db -. f.child_b);
      Mutex.unlock mu

let with_phase name f =
  if not !on then f ()
  else begin
    begin_phase name;
    Fun.protect ~finally:end_phase f
  end

let reset () =
  Mutex.lock mu;
  Hashtbl.reset table;
  Mutex.unlock mu;
  Domain.DLS.get stack_key := []

let nodes () =
  Mutex.lock mu;
  let all =
    Hashtbl.fold
      (fun path a acc ->
        {
          path;
          count = a.acount;
          total_s = a.atotal;
          self_s = a.aself;
          alloc_bytes = a.aalloc;
          self_alloc_bytes = a.aself_alloc;
        }
        :: acc)
      table []
  in
  Mutex.unlock mu;
  List.sort (fun n1 n2 -> compare n1.path n2.path) all

let to_folded () =
  let b = Buffer.create 256 in
  List.iter
    (fun n ->
      let us = int_of_float (Float.round (n.self_s *. 1e6)) in
      if us > 0 then Buffer.add_string b (Printf.sprintf "%s %d\n" n.path us))
    (nodes ());
  Buffer.contents b

let write_folded path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_folded ()))

let to_json () =
  Json.List
    (List.map
       (fun n ->
         Json.Obj
           [
             ("path", Json.String n.path);
             ("count", Json.Int n.count);
             ("total_s", Json.Float n.total_s);
             ("self_s", Json.Float n.self_s);
             ("alloc_bytes", Json.Float n.alloc_bytes);
             ("self_alloc_bytes", Json.Float n.self_alloc_bytes);
           ])
       (nodes ()))

let pp fmt () =
  let depth path =
    String.fold_left (fun d c -> if c = ';' then d + 1 else d) 0 path
  in
  let leaf path =
    match String.rindex_opt path ';' with
    | None -> path
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  in
  Format.fprintf fmt "=== phase profile ===@.";
  Format.fprintf fmt "%-44s %8s %12s %12s %12s@." "phase" "count"
    "total(s)" "self(s)" "alloc(MB)";
  List.iter
    (fun n ->
      let indent = String.make (2 * depth n.path) ' ' in
      Format.fprintf fmt "%-44s %8d %12.6f %12.6f %12.3f@."
        (indent ^ leaf n.path) n.count n.total_s n.self_s
        (n.alloc_bytes /. 1e6))
    (nodes ())
