module Rational = Tm_base.Rational

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition format *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k)
                 (escape_label_value v))
             labels)
      ^ "}"

(* %.17g prints the shortest float that still round-trips; integral
   values come out without an exponent for small magnitudes, which is
   what scrapers expect for counters. *)
let render_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let to_prometheus snap =
  let b = Buffer.create 1024 in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun e ->
      let name = sanitize e.Metrics.name in
      let ls = render_labels e.Metrics.labels in
      match e.Metrics.value with
      | Metrics.Counter_v v ->
          type_line name "counter";
          Buffer.add_string b (Printf.sprintf "%s%s %d\n" name ls v)
      | Metrics.Gauge_v v ->
          type_line name "gauge";
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" name ls (render_float v))
      | Metrics.Histogram_v h ->
          type_line name "histogram";
          let bucket le count =
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{%sle=\"%s\"} %d\n" name
                 (match e.Metrics.labels with
                 | [] -> ""
                 | labels ->
                     String.concat ""
                       (List.map
                          (fun (k, v) ->
                            Printf.sprintf "%s=\"%s\"," (sanitize k)
                              (escape_label_value v))
                          labels))
                 le count)
          in
          List.iter
            (fun (bound, cum) ->
              bucket (render_float (Rational.to_float bound)) cum)
            h.Metrics.buckets;
          bucket "+Inf" h.Metrics.count;
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" name ls
               (render_float (Rational.to_float h.Metrics.sum)));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" name ls h.Metrics.count))
    snap;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* NDJSON: one metric entry per line, same encoding as Metrics JSON *)

let to_ndjson snap =
  let b = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string b (Json.to_string (Metrics.entry_to_json e));
      Buffer.add_char b '\n')
    snap;
  Buffer.contents b

let of_ndjson text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match Json.of_string l with
        | Error m -> Error (Printf.sprintf "bad NDJSON line: %s" m)
        | Ok j -> (
            match Metrics.entry_of_json j with
            | Error m -> Error m
            | Ok e -> go (e :: acc) rest))
  in
  go [] lines

(* ------------------------------------------------------------------ *)
(* snapshot diff — the bench-diff engine *)

type drift = {
  dname : string;
  dlabels : (string * string) list;
  dwhat : string;
}

let pp_drift fmt d =
  let ls =
    match d.dlabels with
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
        ^ "}"
  in
  Format.fprintf fmt "%s%s: %s" d.dname ls d.dwhat

let describe_value = function
  | Metrics.Counter_v v -> string_of_int v
  | Metrics.Gauge_v v -> Printf.sprintf "%g" v
  | Metrics.Histogram_v h ->
      Printf.sprintf "histogram(count=%d,sum=%s)" h.Metrics.count
        (Rational.to_string h.Metrics.sum)

let is_zero = function
  | Metrics.Counter_v 0 -> true
  | Metrics.Gauge_v v -> v = 0.
  | Metrics.Histogram_v h -> h.Metrics.count = 0
  | Metrics.Counter_v _ -> false

let diff ?(ignore_prefixes = []) ~baseline ~current () =
  let ignored name =
    List.exists
      (fun p ->
        String.length name >= String.length p
        && String.sub name 0 (String.length p) = p)
      ignore_prefixes
  in
  let key e = (e.Metrics.name, e.Metrics.labels) in
  let index snap =
    let tbl = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace tbl (key e) e) snap;
    tbl
  in
  let old_t = index baseline and new_t = index current in
  let keys =
    List.sort_uniq compare
      (List.map key baseline @ List.map key current)
  in
  List.filter_map
    (fun ((name, labels) as k) ->
      if ignored name then None
      else
        match (Hashtbl.find_opt old_t k, Hashtbl.find_opt new_t k) with
        | Some _, None ->
            Some
              { dname = name; dlabels = labels;
                dwhat = "present in baseline, missing from current" }
        | None, Some e when is_zero e.Metrics.value -> None
        | None, Some e ->
            Some
              { dname = name; dlabels = labels;
                dwhat =
                  Printf.sprintf "new metric with nonzero value %s"
                    (describe_value e.Metrics.value) }
        | Some old_e, Some new_e
          when not (Metrics.equal_snapshot [ old_e ] [ new_e ]) ->
            Some
              { dname = name; dlabels = labels;
                dwhat =
                  Printf.sprintf "baseline %s, current %s"
                    (describe_value old_e.Metrics.value)
                    (describe_value new_e.Metrics.value) }
        | Some _, Some _ -> None
        | None, None -> None)
    keys
