(** Minimal JSON tree, printer and parser.

    The observability layer must export metrics snapshots and Chrome
    trace-event files without pulling in an external JSON dependency,
    and the test suite round-trips those exports back in, so both
    directions live here.  The printer is canonical: objects keep their
    field order, floats with an integral value print without a
    fractional part, and parsing the printer's output yields an equal
    tree. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool
(** Structural equality; [Int n] and [Float f] are equal when [f] is
    exactly [float_of_int n], so a canonical reprint compares equal to
    its source tree. *)

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit
val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error carries a byte offset. *)

val to_file : string -> t -> unit
val of_file : string -> (t, string) result

(** Accessors used when re-reading exported documents. *)

val member : string -> t -> t option
val to_list_opt : t -> t list option
val string_opt : t -> string option
val int_opt : t -> int option
(** [Int n] directly, or [Float f] with an integral value. *)

val float_opt : t -> float option
(** [Float f], or [Int n] as [float_of_int n]. *)
