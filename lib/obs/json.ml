type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int n, Float f | Float f, Int n -> Float.equal f (float_of_int n)
  | String x, String y -> String.equal x y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           xs ys
  | _ -> false

(* ------------------------------------------------------------------ *)
(* printing *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)

(* ------------------------------------------------------------------ *)
(* parsing *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* encode the code point as UTF-8 (BMP only) *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape %C" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* files *)

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error m -> Error m

(* ------------------------------------------------------------------ *)
(* accessors *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
let string_opt = function String s -> Some s | _ -> None

let int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None
