(** Process-wide metrics registry: labelled counters, gauges, and
    histograms over exact rationals.

    The hot paths of the library (simulator steps, DBM operations,
    product-construction edges) obtain a handle once — typically at
    module initialization — and then update it with a single mutable
    field write, so instrumentation stays cheap enough to leave on
    permanently.  A {!snapshot} freezes the registry into a plain value
    that can be pretty-printed, exported to JSON, and parsed back
    (see the [timedmap obs] subcommand and the round-trip tests).

    Histograms bucket exact rationals, never floats: the quantities
    measured in this library (event times, window widths, feasible
    delays) are rationals, and nearest-rank quantiles over the retained
    samples agree exactly with {!Tm_sim.Measure.quantile} on the same
    sample list.

    {b Domains.}  Updates are safe under multicore parallelism managed
    by [Tm_par.Pool]: while a pool is live ({!par_begin} ...
    {!par_end}), each worker domain writes a private per-handle sink
    selected by its {!set_domain_slot} slot, so no field is ever
    written by two domains.  Reads ({!snapshot}, {!value},
    {!gauge_value}, {!quantile}) merge main value + sinks — counters by
    sum (exact, deterministic at any domain count), gauges by max,
    histograms by summing bins and pooling retained samples — and must
    run on the main domain with no workers live.  Outside a pool the
    hot path is exactly the single mutable field write it always
    was. *)

module Rational = Tm_base.Rational

type counter
type gauge
type histogram

(** {1 Registration}

    Metrics are identified by name plus a sorted label set.  Repeated
    registration with the same identity returns the same handle.
    @raise Invalid_argument if the name is already registered with a
    different metric kind. *)

val counter : ?labels:(string * string) list -> string -> counter
val gauge : ?labels:(string * string) list -> string -> gauge

val histogram :
  ?labels:(string * string) list ->
  ?buckets:Rational.t list ->
  string ->
  histogram
(** [buckets] are the upper bounds of the histogram bins, sorted and
    deduplicated; an implicit overflow bin catches the rest.  Defaults
    to powers of two from 1/8 to 128 — friendly to the small rational
    constants of the reproduced systems. *)

val default_buckets : Rational.t list

(** {1 Domain slots}

    Used by [Tm_par.Pool]; library code never calls these directly. *)

val max_slots : int
(** Upper bound on concurrently writing domains (main = slot 0). *)

val par_begin : unit -> unit
(** Enter parallel mode: updates start routing through the caller's
    domain slot.  Call from the main domain before spawning workers. *)

val par_end : unit -> unit
(** Leave parallel mode once every worker has been joined.  Sinks keep
    their contents (reads keep merging them until {!reset}). *)

val set_domain_slot : int -> unit
(** Bind the calling domain to a sink slot (workers use [1 ..
    max_slots - 1]; the main domain defaults to [0]).
    @raise Invalid_argument when out of range. *)

val domain_slot : unit -> int
(** The calling domain's slot. *)

(** {1 Updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
(** @raise Invalid_argument on a negative increment: counters are
    monotone. *)

val value : counter -> int

val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Keep the running maximum of the observed values. *)

val gauge_value : gauge -> float

val observe : histogram -> Rational.t -> unit
val observe_seconds : histogram -> float -> unit
(** Observe a float duration in seconds, rounded to microseconds and
    recorded as the exact rational [us/1_000_000]. *)

val quantile : histogram -> float -> Rational.t option
(** Nearest-rank quantile over the retained samples — the same
    definition as {!Tm_sim.Measure.quantile}.  At most
    {!sample_cap} samples are retained (further observations still
    count in the buckets); [None] on an empty histogram.
    @raise Invalid_argument unless [0 <= p <= 1]. *)

val sample_cap : int

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : Rational.t;
  buckets : (Rational.t * int) list;  (** cumulative count per bound *)
  overflow : int;  (** observations above every bound *)
  quantiles : (string * Rational.t) list;  (** p50/p90/p99 when nonempty *)
}

type value_snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_snapshot

type entry = {
  name : string;
  labels : (string * string) list;
  value : value_snapshot;
}

type snapshot = entry list
(** Sorted by name, then labels: snapshots of equal registries are
    structurally equal. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered metric.  Handles stay valid — resetting is
    how the CLI and the tests isolate one run from the next. *)

val find : snapshot -> ?labels:(string * string) list -> string
  -> value_snapshot option

val counter_total : snapshot -> string -> int
(** Sum of all counter entries with this name, across label sets. *)

val equal_snapshot : snapshot -> snapshot -> bool

val pp : Format.formatter -> snapshot -> unit
(** Human-readable dump, grouped by metric kind. *)

val to_json : snapshot -> Json.t
val of_json : Json.t -> (snapshot, string) result

val entry_to_json : entry -> Json.t
val entry_of_json : Json.t -> (entry, string) result
(** Single-entry codec used by the NDJSON exporter ({!Export}): the
    same encoding [to_json] wraps in its ["metrics"] array. *)
