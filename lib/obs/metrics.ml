module Rational = Tm_base.Rational

(* ------------------------------------------------------------------ *)
(* Domain sinks.

   A metric handle owns one unsynchronized field per writer: the main
   domain keeps writing the plain [cv]/[gv]/histogram fields, and while
   a {!Tm_par.Pool} is live every worker domain writes a private slot
   of the per-handle sink arrays instead (the slot index comes from
   domain-local storage set by the pool at spawn).  No write is ever
   shared between two domains, so updates need no locks; reads
   ({!snapshot}, {!value}, ...) sum main value + slots and are only
   meaningful from the main domain once the workers have been joined.
   Counter totals are therefore exact and deterministic at any domain
   count — which the CI drift guard relies on.

   [par_on] keeps the sequential hot path unchanged: a single ref read
   and branch in front of the one mutable field write. *)

let max_slots = 64

let par_on = ref false
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let domain_slot () = Domain.DLS.get slot_key

let set_domain_slot s =
  if s < 0 || s >= max_slots then invalid_arg "Metrics.set_domain_slot";
  Domain.DLS.set slot_key s

let par_begin () = par_on := true
let par_end () = par_on := false

type counter = {
  cname : string;
  clabels : (string * string) list;
  mutable cv : int;
  cslots : int array;  (* per worker-domain slot; slot 0 unused *)
}

type gauge = {
  gname : string;
  glabels : (string * string) list;
  mutable gv : float;
  gslots : float array;  (* neg_infinity = slot never written *)
}

(* Per-worker histogram sink, allocated lazily by the owning domain. *)
type hsink = {
  kcounts : int array;
  mutable kcount : int;
  mutable ksum : Rational.t;
  mutable ksamples : Rational.t list;
  mutable knsamples : int;
}

type histogram = {
  hname : string;
  hlabels : (string * string) list;
  bounds : Rational.t array;
  counts : int array;  (* length bounds + 1; last bin is overflow *)
  mutable hcount : int;
  mutable hsum : Rational.t;
  mutable samples : Rational.t list;  (* most recent first, capped *)
  mutable nsamples : int;
  hslots : hsink option array;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string * (string * string) list, metric) Hashtbl.t =
  Hashtbl.create 64

(* Registration is rare (handles are module-level) but may happen from
   a worker the first time a labelled variant fires there; the registry
   table itself is therefore lock-protected. *)
let registry_mu = Mutex.create ()

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let sample_cap = 8192

let default_buckets =
  List.map (fun (n, d) -> Rational.make n d)
    [ (1, 8); (1, 4); (1, 2); (1, 1); (2, 1); (4, 1); (8, 1); (16, 1);
      (32, 1); (64, 1); (128, 1) ]

let register key make describe =
  Mutex.lock registry_mu;
  let m =
    match Hashtbl.find_opt registry key with
    | Some m -> m
    | None ->
        ignore describe;
        let m = make () in
        Hashtbl.add registry key m;
        m
  in
  Mutex.unlock registry_mu;
  m

let kind_error name got =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already registered as a %s" name got)

let counter ?(labels = []) name =
  let labels = norm_labels labels in
  match
    register (name, labels)
      (fun () ->
        C
          {
            cname = name;
            clabels = labels;
            cv = 0;
            cslots = Array.make max_slots 0;
          })
      "counter"
  with
  | C c -> c
  | G _ -> kind_error name "gauge"
  | H _ -> kind_error name "histogram"

let gauge ?(labels = []) name =
  let labels = norm_labels labels in
  match
    register (name, labels)
      (fun () ->
        G
          {
            gname = name;
            glabels = labels;
            gv = 0.;
            gslots = Array.make max_slots neg_infinity;
          })
      "gauge"
  with
  | G g -> g
  | C _ -> kind_error name "counter"
  | H _ -> kind_error name "histogram"

let histogram ?(labels = []) ?(buckets = default_buckets) name =
  let labels = norm_labels labels in
  match
    register (name, labels)
      (fun () ->
        let bounds =
          buckets
          |> List.sort_uniq Rational.compare
          |> Array.of_list
        in
        H
          {
            hname = name;
            hlabels = labels;
            bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            hcount = 0;
            hsum = Rational.zero;
            samples = [];
            nsamples = 0;
            hslots = Array.make max_slots None;
          })
      "histogram"
  with
  | H h -> h
  | C _ -> kind_error name "counter"
  | G _ -> kind_error name "gauge"

(* ------------------------------------------------------------------ *)
(* updates *)

let incr c =
  if not !par_on then c.cv <- c.cv + 1
  else
    let s = Domain.DLS.get slot_key in
    if s = 0 then c.cv <- c.cv + 1 else c.cslots.(s) <- c.cslots.(s) + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotone";
  if not !par_on then c.cv <- c.cv + n
  else
    let s = Domain.DLS.get slot_key in
    if s = 0 then c.cv <- c.cv + n else c.cslots.(s) <- c.cslots.(s) + n

let value c = Array.fold_left ( + ) c.cv c.cslots

(* Worker writes to a gauge keep the slot maximum; the merged reading
   is the max across writers, which matches the only parallel gauge use
   (running maxima such as [zones.waiting_max]). *)
let set g v =
  if not !par_on then g.gv <- v
  else
    let s = Domain.DLS.get slot_key in
    if s = 0 then g.gv <- v
    else if v > g.gslots.(s) then g.gslots.(s) <- v

let set_max g v =
  if not !par_on then (if v > g.gv then g.gv <- v)
  else
    let s = Domain.DLS.get slot_key in
    if s = 0 then (if v > g.gv then g.gv <- v)
    else if v > g.gslots.(s) then g.gslots.(s) <- v

let gauge_value g = Array.fold_left Float.max g.gv g.gslots

let bucket_index bounds q =
  (* first bound >= q, else the overflow bin *)
  let n = Array.length bounds in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Rational.(bounds.(mid) >= q) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let hsink_of h s =
  match h.hslots.(s) with
  | Some k -> k
  | None ->
      let k =
        {
          kcounts = Array.make (Array.length h.counts) 0;
          kcount = 0;
          ksum = Rational.zero;
          ksamples = [];
          knsamples = 0;
        }
      in
      h.hslots.(s) <- Some k;
      k

let observe h q =
  let s = if !par_on then Domain.DLS.get slot_key else 0 in
  if s = 0 then begin
    let i = bucket_index h.bounds q in
    h.counts.(i) <- h.counts.(i) + 1;
    h.hcount <- h.hcount + 1;
    h.hsum <- Rational.add h.hsum q;
    if h.nsamples < sample_cap then begin
      h.samples <- q :: h.samples;
      h.nsamples <- h.nsamples + 1
    end
  end
  else begin
    let k = hsink_of h s in
    let i = bucket_index h.bounds q in
    k.kcounts.(i) <- k.kcounts.(i) + 1;
    k.kcount <- k.kcount + 1;
    k.ksum <- Rational.add k.ksum q;
    if k.knsamples < sample_cap then begin
      k.ksamples <- q :: k.ksamples;
      k.knsamples <- k.knsamples + 1
    end
  end

let observe_seconds h s =
  let us = int_of_float (Float.round (s *. 1e6)) in
  observe h (Rational.make us 1_000_000)

(* Nearest-rank quantile — kept in lockstep with Measure.quantile so
   the two agree exactly on the same sample list. *)
let quantile_of_samples samples p =
  if p < 0.0 || p > 1.0 then invalid_arg "Metrics.quantile";
  match List.sort Rational.compare samples with
  | [] -> None
  | sorted ->
      let n = List.length sorted in
      let rank =
        Stdlib.min (n - 1)
          (Stdlib.max 0 (int_of_float (ceil (p *. float_of_int n)) - 1))
      in
      Some (List.nth sorted rank)

(* Merged view of a histogram: main fields plus every worker sink. *)
let all_samples h =
  Array.fold_left
    (fun acc k ->
      match k with None -> acc | Some k -> List.rev_append k.ksamples acc)
    h.samples h.hslots

let quantile h p = quantile_of_samples (all_samples h) p

(* ------------------------------------------------------------------ *)
(* snapshots *)

type hist_snapshot = {
  count : int;
  sum : Rational.t;
  buckets : (Rational.t * int) list;
  overflow : int;
  quantiles : (string * Rational.t) list;
}

type value_snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_snapshot

type entry = {
  name : string;
  labels : (string * string) list;
  value : value_snapshot;
}

type snapshot = entry list

let hist_snapshot h =
  let nb = Array.length h.bounds in
  let counts = Array.copy h.counts in
  let count = ref h.hcount in
  let sum = ref h.hsum in
  Array.iter
    (function
      | None -> ()
      | Some k ->
          Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) k.kcounts;
          count := !count + k.kcount;
          sum := Rational.add !sum k.ksum)
    h.hslots;
  let cum = ref 0 in
  let buckets =
    List.init nb (fun i ->
        cum := !cum + counts.(i);
        (h.bounds.(i), !cum))
  in
  let quantiles =
    if !count = 0 then []
    else
      let samples = all_samples h in
      List.filter_map
        (fun (lbl, p) ->
          match quantile_of_samples samples p with
          | Some q -> Some (lbl, q)
          | None -> None)
        [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]
  in
  {
    count = !count;
    sum = !sum;
    buckets;
    overflow = counts.(nb);
    quantiles;
  }

let compare_entry a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else compare a.labels b.labels

let snapshot () =
  Hashtbl.fold
    (fun _ m acc ->
      let e =
        match m with
        | C c ->
            { name = c.cname; labels = c.clabels; value = Counter_v (value c) }
        | G g ->
            {
              name = g.gname;
              labels = g.glabels;
              value = Gauge_v (gauge_value g);
            }
        | H h ->
            {
              name = h.hname;
              labels = h.hlabels;
              value = Histogram_v (hist_snapshot h);
            }
      in
      e :: acc)
    registry []
  |> List.sort compare_entry

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c ->
          c.cv <- 0;
          Array.fill c.cslots 0 max_slots 0
      | G g ->
          g.gv <- 0.;
          Array.fill g.gslots 0 max_slots neg_infinity
      | H h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.hcount <- 0;
          h.hsum <- Rational.zero;
          h.samples <- [];
          h.nsamples <- 0;
          Array.fill h.hslots 0 max_slots None)
    registry

let find snap ?(labels = []) name =
  let labels = norm_labels labels in
  List.find_map
    (fun e ->
      if String.equal e.name name && e.labels = labels then Some e.value
      else None)
    snap

let counter_total snap name =
  List.fold_left
    (fun acc e ->
      match e.value with
      | Counter_v v when String.equal e.name name -> acc + v
      | _ -> acc)
    0 snap

let equal_hist a b =
  a.count = b.count
  && Rational.equal a.sum b.sum
  && a.overflow = b.overflow
  && List.length a.buckets = List.length b.buckets
  && List.for_all2
       (fun (b1, c1) (b2, c2) -> Rational.equal b1 b2 && c1 = c2)
       a.buckets b.buckets
  && List.length a.quantiles = List.length b.quantiles
  && List.for_all2
       (fun (l1, q1) (l2, q2) -> String.equal l1 l2 && Rational.equal q1 q2)
       a.quantiles b.quantiles

let equal_value a b =
  match (a, b) with
  | Counter_v x, Counter_v y -> x = y
  | Gauge_v x, Gauge_v y -> Float.equal x y
  | Histogram_v x, Histogram_v y -> equal_hist x y
  | _ -> false

let equal_snapshot a b =
  List.length a = List.length b
  && List.for_all2
       (fun e1 e2 ->
         String.equal e1.name e2.name
         && e1.labels = e2.labels
         && equal_value e1.value e2.value)
       a b

(* ------------------------------------------------------------------ *)
(* pretty printing *)

let pp_labels fmt = function
  | [] -> ()
  | labels ->
      Format.fprintf fmt "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))

let pp fmt snap =
  let counters, gauges, hists =
    List.fold_left
      (fun (cs, gs, hs) e ->
        match e.value with
        | Counter_v _ -> (e :: cs, gs, hs)
        | Gauge_v _ -> (cs, e :: gs, hs)
        | Histogram_v _ -> (cs, gs, e :: hs))
      ([], [], []) (List.rev snap)
  in
  let header title = Format.fprintf fmt "%s:@." title in
  if counters <> [] then begin
    header "counters";
    List.iter
      (fun e ->
        match e.value with
        | Counter_v v ->
            Format.fprintf fmt "  %-44s %12d@."
              (Format.asprintf "%s%a" e.name pp_labels e.labels)
              v
        | _ -> ())
      counters
  end;
  if gauges <> [] then begin
    header "gauges";
    List.iter
      (fun e ->
        match e.value with
        | Gauge_v v ->
            Format.fprintf fmt "  %-44s %12g@."
              (Format.asprintf "%s%a" e.name pp_labels e.labels)
              v
        | _ -> ())
      gauges
  end;
  if hists <> [] then begin
    header "histograms";
    List.iter
      (fun e ->
        match e.value with
        | Histogram_v h ->
            let q lbl =
              match List.assoc_opt lbl h.quantiles with
              | Some v -> Rational.to_string v
              | None -> "-"
            in
            Format.fprintf fmt "  %-44s n=%d sum=%s p50=%s p90=%s@."
              (Format.asprintf "%s%a" e.name pp_labels e.labels)
              h.count
              (Rational.to_string h.sum)
              (q "p50") (q "p90")
        | _ -> ())
      hists
  end

(* ------------------------------------------------------------------ *)
(* JSON export / import *)

let labels_to_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let entry_to_json e =
  let common kind rest =
    Json.Obj
      (("kind", Json.String kind)
      :: ("name", Json.String e.name)
      :: ("labels", labels_to_json e.labels)
      :: rest)
  in
  match e.value with
  | Counter_v v -> common "counter" [ ("value", Json.Int v) ]
  | Gauge_v v -> common "gauge" [ ("value", Json.Float v) ]
  | Histogram_v h ->
      common "histogram"
        [
          ("count", Json.Int h.count);
          ("sum", Json.String (Rational.to_string h.sum));
          ( "buckets",
            Json.List
              (List.map
                 (fun (b, c) ->
                   Json.Obj
                     [
                       ("le", Json.String (Rational.to_string b));
                       ("count", Json.Int c);
                     ])
                 h.buckets) );
          ("overflow", Json.Int h.overflow);
          ( "quantiles",
            Json.Obj
              (List.map
                 (fun (l, q) -> (l, Json.String (Rational.to_string q)))
                 h.quantiles) );
        ]

let to_json snap =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("metrics", Json.List (List.map entry_to_json snap));
    ]

let ( let* ) r k = Result.bind r k

let req what = function Some v -> Ok v | None -> Error ("missing " ^ what)

let rational_of_json what j =
  let* s = req what (Json.string_opt j) in
  match Rational.of_string s with
  | q -> Ok q
  | exception Invalid_argument _ -> Error ("bad rational in " ^ what)

let labels_of_json = function
  | Json.Obj kvs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, Json.String v) :: rest -> go ((k, v) :: acc) rest
        | _ -> Error "labels must be an object of strings"
      in
      go [] kvs
  | _ -> Error "labels must be an object"

let entry_of_json j =
  let* kind = req "kind" (Option.bind (Json.member "kind" j) Json.string_opt) in
  let* name = req "name" (Option.bind (Json.member "name" j) Json.string_opt) in
  let* labels =
    match Json.member "labels" j with
    | Some l -> labels_of_json l
    | None -> Ok []
  in
  let* value =
    match kind with
    | "counter" ->
        let* v =
          req "value" (Option.bind (Json.member "value" j) Json.int_opt)
        in
        Ok (Counter_v v)
    | "gauge" ->
        let* v =
          req "value" (Option.bind (Json.member "value" j) Json.float_opt)
        in
        Ok (Gauge_v v)
    | "histogram" ->
        let* count =
          req "count" (Option.bind (Json.member "count" j) Json.int_opt)
        in
        let* sum =
          match Json.member "sum" j with
          | Some s -> rational_of_json "sum" s
          | None -> Error "missing sum"
        in
        let* bucket_items =
          req "buckets"
            (Option.bind (Json.member "buckets" j) Json.to_list_opt)
        in
        let* buckets =
          List.fold_left
            (fun acc b ->
              let* acc = acc in
              let* le =
                match Json.member "le" b with
                | Some s -> rational_of_json "le" s
                | None -> Error "missing le"
              in
              let* c =
                req "bucket count"
                  (Option.bind (Json.member "count" b) Json.int_opt)
              in
              Ok ((le, c) :: acc))
            (Ok []) bucket_items
        in
        let* overflow =
          req "overflow" (Option.bind (Json.member "overflow" j) Json.int_opt)
        in
        let* quantiles =
          match Json.member "quantiles" j with
          | Some (Json.Obj kvs) ->
              List.fold_left
                (fun acc (l, v) ->
                  let* acc = acc in
                  let* q = rational_of_json ("quantile " ^ l) v in
                  Ok ((l, q) :: acc))
                (Ok []) kvs
              |> Result.map List.rev
          | Some _ -> Error "quantiles must be an object"
          | None -> Ok []
        in
        Ok
          (Histogram_v
             {
               count;
               sum;
               buckets = List.rev buckets;
               overflow;
               quantiles;
             })
    | other -> Error (Printf.sprintf "unknown metric kind %S" other)
  in
  Ok { name; labels; value }

let of_json j =
  let* items =
    req "metrics" (Option.bind (Json.member "metrics" j) Json.to_list_opt)
  in
  let* entries =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* e = entry_of_json item in
        Ok (e :: acc))
      (Ok []) items
  in
  Ok (List.rev entries)
