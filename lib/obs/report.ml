type t = {
  command : string;
  version : string;
  engine : string;
  domains : int;
  wall_s : float;
  metrics : Metrics.snapshot;
  span_count : int;
  span_total_us : float;
}

let make ~command ?(version = "") ?(engine = "") ?(domains = 1) ~wall_s () =
  let events = Tracing.events () in
  let spans = List.filter (fun e -> not e.Tracing.instant) events in
  {
    command;
    version;
    engine;
    domains;
    wall_s;
    metrics = Metrics.snapshot ();
    span_count = List.length spans;
    span_total_us =
      List.fold_left
        (fun acc e ->
          if e.Tracing.depth = 0 then acc +. e.Tracing.dur_us else acc)
        0. spans;
  }

let pp fmt r =
  Format.fprintf fmt "=== run report: %s ===@." r.command;
  if r.engine <> "" || r.version <> "" then
    Format.fprintf fmt "engine: %s, domains: %d, version: %s@."
      (if r.engine = "" then "?" else r.engine)
      r.domains
      (if r.version = "" then "?" else r.version);
  Format.fprintf fmt "wall time: %.6f s@." r.wall_s;
  if r.span_count > 0 then
    Format.fprintf fmt "spans: %d recorded, %.1f us in top-level spans@."
      r.span_count r.span_total_us;
  Metrics.pp fmt r.metrics

let to_json r =
  Json.Obj
    [
      ("command", Json.String r.command);
      ("version", Json.String r.version);
      ("engine", Json.String r.engine);
      ("domains", Json.Int r.domains);
      ("wall_s", Json.Float r.wall_s);
      ("span_count", Json.Int r.span_count);
      ("span_total_us", Json.Float r.span_total_us);
      ("metrics", Metrics.to_json r.metrics);
    ]
