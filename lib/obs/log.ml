type level = Quiet | Error | Warn | Info | Debug

let rank = function
  | Quiet -> 0
  | Error -> 1
  | Warn -> 2
  | Info -> 3
  | Debug -> 4

let current = ref Warn
let set_level l = current := l
let level () = !current
let at_least l = rank !current >= rank l

let level_of_string s =
  match String.lowercase_ascii s with
  | "quiet" -> Ok Quiet
  | "error" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | other -> Error (Printf.sprintf "unknown log level %S" other)

let level_to_string = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let emit tag l fmt =
  if at_least l then
    Format.eprintf ("[%s] " ^^ fmt ^^ "@.") tag
  else Format.ifprintf Format.err_formatter fmt

let err fmt = emit "error" Error fmt
let warn fmt = emit "warn" Warn fmt
let info fmt = emit "info" Info fmt
let debug fmt = emit "debug" Debug fmt
