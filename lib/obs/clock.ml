let source = ref Unix.gettimeofday

(* The clamp is a single high-water mark shared by every domain.  A
   mutex (rather than lock-free tricks) keeps it obviously correct;
   uncontended lock/unlock costs tens of nanoseconds, far below the
   cost of [gettimeofday] itself, and the hot paths that care (DBM
   edges, simulator steps) only read the clock when a wall-clock
   deadline is armed. *)
let mu = Mutex.create ()
let last = ref neg_infinity

let now_s () =
  let t = !source () in
  Mutex.lock mu;
  let t = if t < !last then !last else (last := t; t) in
  Mutex.unlock mu;
  t

let set f =
  Mutex.lock mu;
  source := f;
  last := neg_infinity;
  Mutex.unlock mu

let raw () = !source ()
