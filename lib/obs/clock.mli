(** The one process-wide wall clock behind every observability
    timestamp (Tracing spans, Events lines, Prof phases, wall-clock
    deadlines).

    Readings are clamped non-decreasing across the whole process: an
    NTP step or a VM suspend can make [Unix.gettimeofday] jump
    backwards, which used to surface as negative Chrome-trace
    durations.  [now_s] never goes backwards; during a backwards step
    it reports the high-water mark until real time catches up, so
    durations computed from two readings are always >= 0.

    The source is injectable for tests ({!set}); injecting a new
    source resets the clamp so a deterministic counter clock can start
    below the last real reading. *)

val now_s : unit -> float
(** Current time in seconds, non-decreasing process-wide.  Safe to
    call from any domain. *)

val set : (unit -> float) -> unit
(** Replace the time source (default [Unix.gettimeofday]) and reset
    the monotonicity clamp.  Test hook — call from the main domain
    with no workers live. *)

val raw : unit -> float
(** One unclamped reading of the current source (does not advance the
    clamp). *)
