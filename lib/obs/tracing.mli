(** Nestable span tracing with Chrome trace-event export.

    Disabled by default: {!with_span} then runs its thunk directly with
    no timestamp reads and no allocation, so instrumentation in hot
    paths is effectively free until a caller opts in (the CLI enables
    it when [--trace-out] is given).  When enabled, each span records a
    monotonic start timestamp and duration in microseconds plus its
    nesting depth; {!to_json} renders the buffer as a Chrome
    trace-event document ([ph:"X"] complete events) loadable in
    Perfetto or [chrome://tracing].

    Each domain records into its own buffer (no locking on the span
    path): spans emitted by [Tm_par.Pool] workers show up as separate
    thread rows ([tid] = worker slot + 1; the main domain is [tid 1]).
    {!events}, {!to_json}, {!clear} and {!set_clock} are main-domain
    operations to be called with no workers live. *)

type event = {
  ename : string;
  cat : string;
  ts_us : float;  (** start, microseconds since the trace epoch *)
  dur_us : float;  (** duration; 0 for instants *)
  depth : int;  (** nesting depth at emission; 0 = top level *)
  tid : int;  (** emitting domain's trace row; main = 1 *)
  args : (string * string) list;
  instant : bool;
}

val enabled : unit -> bool
val enable : unit -> unit
(** Also (re)anchors the trace epoch on the first call after a
    {!clear}. *)

val disable : unit -> unit

val set_clock : (unit -> float) -> unit
(** Replace the wall clock (seconds) — forwards to {!Clock.set}, so
    the injected source also drives {!Events} and {!Prof}.  Timestamps
    are clamped to be non-decreasing regardless of the clock's
    behavior; the tests use a deterministic counter clock. *)

val now_s : unit -> float
(** Current (clamped) clock reading, independent of enablement —
    equals {!Clock.now_s}. *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  Exception-safe: the span is
    closed (and recorded) even if the thunk raises. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration marker event. *)

val events : unit -> event list
(** Completed events grouped by [tid] (main domain first), each group
    in emission order (a span is emitted when it closes, so children
    precede their parents). *)

val depth : unit -> int
(** Current open-span nesting depth — 0 when no span is open. *)

val clear : unit -> unit
(** Drop all recorded events and reset the epoch. *)

val to_json : unit -> Json.t
val write : string -> unit
(** [to_json] serialized to a file. *)
