let mu = Mutex.create ()
let chan : out_channel option ref = ref None
let owned = ref false
let is_stdout = ref false
let seq_n = ref 0
let epoch : float option ref = ref None

(* [live] mirrors [chan <> None] outside the lock so that the no-sink
   fast path — taken on every batch boundary of an untelemetered run —
   is a single atomic read. *)
let live = Atomic.make false

let enabled () = Atomic.get live
let sink_is_stdout () = !is_stdout
let seq () = !seq_n

let detach_locked () =
  (match !chan with
  | Some oc -> (
      try
        flush oc;
        if !owned then close_out oc
      with Sys_error _ -> ())
  | None -> ());
  chan := None;
  owned := false;
  is_stdout := false;
  Atomic.set live false

let attach ?(stdout_sink = false) oc =
  Mutex.lock mu;
  detach_locked ();
  chan := Some oc;
  owned := false;
  is_stdout := stdout_sink;
  seq_n := 0;
  epoch := None;
  Atomic.set live true;
  Mutex.unlock mu

let open_path path =
  if path = "-" then attach ~stdout_sink:true stdout
  else begin
    let oc = open_out path in
    attach oc;
    Mutex.lock mu;
    owned := true;
    Mutex.unlock mu
  end

let close () =
  Mutex.lock mu;
  detach_locked ();
  Mutex.unlock mu

let emit ev fields =
  if Atomic.get live then begin
    Mutex.lock mu;
    (match !chan with
    | None -> ()
    | Some oc -> (
        let t = Clock.now_s () in
        let e =
          match !epoch with
          | Some e -> e
          | None ->
              epoch := Some t;
              t
        in
        let line =
          Json.to_string
            (Json.Obj
               (("ts", Json.Float (t -. e))
               :: ("seq", Json.Int !seq_n)
               :: ("ev", Json.String ev)
               :: fields))
        in
        incr seq_n;
        try
          output_string oc line;
          output_char oc '\n';
          flush oc
        with Sys_error _ ->
          (* Broken pipe (reader went away): telemetry must never kill
             the run it observes. *)
          detach_locked ()));
    Mutex.unlock mu
  end

(* ------------------------------------------------------------------ *)
(* progress line *)

let p_on = ref false
let p_chan = ref stderr
let p_last = ref neg_infinity
let p_shown = ref false

let progress_enabled () = !p_on
let set_progress b = p_on := b

let set_progress_channel oc =
  p_chan := oc;
  p_last := neg_infinity;
  p_shown := false

(* The progress line shares the telemetry discipline: a vanished
   reader (closed stderr, broken pipe) detaches the repaint instead of
   killing the run it decorates. *)
let p_write s =
  try
    output_string !p_chan s;
    flush !p_chan;
    true
  with Sys_error _ ->
    p_on := false;
    p_shown := false;
    false

let progress_clear () =
  if !p_shown then begin
    if p_write "\r\027[K" then p_shown := false
  end

let progress ?eta_s ~stored ~frontier ~rate () =
  if !p_on then begin
    let now = Clock.now_s () in
    if now -. !p_last >= 0.1 then begin
      p_last := now;
      let heap_mw =
        float_of_int (Gc.quick_stat ()).Gc.heap_words /. 1e6
      in
      let eta =
        match eta_s with
        | Some e when e >= 0. -> Printf.sprintf "%.0fs" e
        | _ -> "-"
      in
      if
        p_write
          (Printf.sprintf
             "\r\027[K[timedmap] zones=%d frontier=%d rate=%.0f/s \
              heap=%.1fMw eta=%s"
             stored frontier rate heap_mw eta)
      then p_shown := true
    end
  end
