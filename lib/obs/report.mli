(** Structured end-of-run summary combining metrics and tracing.

    The CLI prints one at [info] verbosity and exports it inside the
    metrics JSON; the benchmark harness writes one next to its timing
    tables so perf PRs can diff instrumented baselines. *)

type t = {
  command : string;
  wall_s : float;
  metrics : Metrics.snapshot;
  span_count : int;
  span_total_us : float;  (** summed duration of top-level spans *)
}

val make : command:string -> wall_s:float -> unit -> t
(** Snapshot the global metrics registry and trace buffer. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
