(** Structured end-of-run summary combining metrics and tracing.

    The CLI prints one at [info] verbosity and exports it inside the
    metrics JSON; the benchmark harness writes one next to its timing
    tables so perf PRs can diff instrumented baselines.

    Reports carry build/engine provenance — the tool version, which
    DBM kernel ran (fast/ref/paranoid), and the domain count — so a
    saved artifact is self-describing ([timedmap obs] prints the
    provenance back, and [timedmap bench-diff] can warn when two
    artifacts came from different configurations). *)

type t = {
  command : string;
  version : string;  (** tool version, "" when unknown *)
  engine : string;  (** DBM kernel: "fast", "ref", "paranoid", or "" *)
  domains : int;  (** requested worker-domain count *)
  wall_s : float;
  metrics : Metrics.snapshot;
  span_count : int;
  span_total_us : float;  (** summed duration of top-level spans *)
}

val make :
  command:string ->
  ?version:string ->
  ?engine:string ->
  ?domains:int ->
  wall_s:float ->
  unit ->
  t
(** Snapshot the global metrics registry and trace buffer.
    Provenance fields default to [""] / [1]. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
