(** Exporters and comparators over {!Metrics} snapshots.

    [to_prometheus] renders the Prometheus text exposition format
    (counters, gauges, and histograms with cumulative [_bucket] /
    [_sum] / [_count] samples; metric names have non-alphanumerics
    mapped to underscores, label values are escaped).  Exact rational
    sums are rendered as floats — Prometheus has no rationals — but
    the NDJSON exporter keeps them exact.

    [to_ndjson] / [of_ndjson] stream one metric entry per line using
    the same JSON encoding as {!Metrics.to_json}, and round-trip
    exactly.

    [diff] is the engine behind [timedmap bench-diff]: a structural
    comparison of two snapshots where every value must match exactly
    — counters, gauges, and full histogram state — except for metrics
    whose name starts with one of [ignore_prefixes] (scheduling-
    dependent metrics such as the [par.*] family).  A metric that
    appears only in the current snapshot with a zero value is noted
    but not a drift: freshly registered instrumentation starts at
    zero. *)

val to_prometheus : Metrics.snapshot -> string
val to_ndjson : Metrics.snapshot -> string
val of_ndjson : string -> (Metrics.snapshot, string) result

type drift = {
  dname : string;
  dlabels : (string * string) list;
  dwhat : string;  (** human-readable description of the mismatch *)
}

val diff :
  ?ignore_prefixes:string list ->
  baseline:Metrics.snapshot ->
  current:Metrics.snapshot ->
  unit ->
  drift list
(** Sorted by metric name; empty means the snapshots agree on every
    non-ignored metric. *)

val pp_drift : Format.formatter -> drift -> unit
