type event = {
  ename : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  depth : int;
  tid : int;
  args : (string * string) list;
  instant : bool;
}

(* One span buffer per domain, selected through domain-local storage:
   spans emitted by pool workers land in their own buffer (rendered as
   their own Chrome-trace thread row) without any locking on the span
   path.  The buffer list itself is only mutated under [bufs_mu], once
   per domain lifetime. *)
type buf = {
  btid : int;
  mutable bevents : event list;  (* emission order, most recent first *)
  mutable bdepth : int;
  mutable blast : float;  (* per-thread non-decreasing timestamp clamp *)
}

let on = ref false
let epoch = ref None
let epoch_mu = Mutex.create ()
let bufs_mu = Mutex.create ()
let bufs : buf list ref = ref []

let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      (* tid 1 is the main domain (slot 0), workers are 2, 3, ... —
         matching their Metrics slot + 1. *)
      let b =
        { btid = 1 + Metrics.domain_slot (); bevents = []; bdepth = 0;
          blast = 0. }
      in
      Mutex.lock bufs_mu;
      bufs := b :: !bufs;
      Mutex.unlock bufs_mu;
      b)

let buf () = Domain.DLS.get buf_key

let enabled () = !on

(* All timestamps come from the shared process clock, which already
   clamps non-monotonic sources (NTP steps) process-wide; [now_us]
   adds a second, per-thread-row clamp relative to the trace epoch. *)
let now_s = Clock.now_s

(* Microseconds since the epoch, clamped non-decreasing per thread row:
   Chrome trace viewers reject or misrender events that go backwards in
   time.  The epoch is anchored once, under a mutex, by whichever
   domain records first. *)
let now_us b =
  let e =
    match !epoch with
    | Some e -> e
    | None ->
        Mutex.lock epoch_mu;
        let e =
          match !epoch with
          | Some e -> e
          | None ->
              let e = Clock.now_s () in
              epoch := Some e;
              e
        in
        Mutex.unlock epoch_mu;
        e
  in
  let t = (Clock.now_s () -. e) *. 1e6 in
  let t = if t > b.blast then t else b.blast in
  b.blast <- t;
  t

let enable () = on := true
let disable () = on := false

let set_clock f =
  Clock.set f;
  epoch := None;
  let b = buf () in
  b.blast <- 0.

(* Main-domain only (like every read): worker buffers from joined pools
   are dropped; fresh workers will register fresh buffers. *)
let clear () =
  let b = buf () in
  b.bevents <- [];
  b.bdepth <- 0;
  b.blast <- 0.;
  Mutex.lock bufs_mu;
  bufs := [ b ];
  Mutex.unlock bufs_mu;
  epoch := None

let depth () = (buf ()).bdepth

(* Every span site doubles as a profiler phase: when [Prof] is enabled
   the same begin/end pair feeds its aggregation, whether or not the
   trace buffer is recording. *)
let with_span ?(cat = "tm") ?(args = []) name f =
  let trace = !on and prof = Prof.enabled () in
  if not (trace || prof) then f ()
  else if not trace then Prof.with_phase name f
  else begin
    if prof then Prof.begin_phase name;
    let b = buf () in
    let start = now_us b in
    let d = b.bdepth in
    b.bdepth <- d + 1;
    Fun.protect
      ~finally:(fun () ->
        b.bdepth <- b.bdepth - 1;
        let stop = now_us b in
        b.bevents <-
          {
            ename = name;
            cat;
            ts_us = start;
            dur_us = stop -. start;
            depth = d;
            tid = b.btid;
            args;
            instant = false;
          }
          :: b.bevents;
        if prof then Prof.end_phase ())
      f
  end

let instant ?(cat = "tm") ?(args = []) name =
  if !on then begin
    let b = buf () in
    b.bevents <-
      {
        ename = name;
        cat;
        ts_us = now_us b;
        dur_us = 0.;
        depth = b.bdepth;
        tid = b.btid;
        args;
        instant = true;
      }
      :: b.bevents
  end

let events () =
  ignore (buf ());
  Mutex.lock bufs_mu;
  let all = !bufs in
  Mutex.unlock bufs_mu;
  all
  |> List.sort (fun b1 b2 -> compare b1.btid b2.btid)
  |> List.concat_map (fun b -> List.rev b.bevents)

let event_to_json e =
  Json.Obj
    ([
       ("name", Json.String e.ename);
       ("cat", Json.String e.cat);
       ("ph", Json.String (if e.instant then "i" else "X"));
       ("ts", Json.Float e.ts_us);
     ]
    @ (if e.instant then [ ("s", Json.String "t") ]
       else [ ("dur", Json.Float e.dur_us) ])
    @ [ ("pid", Json.Int 1); ("tid", Json.Int e.tid) ]
    @
    match e.args with
    | [] -> []
    | args ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)) ])

let to_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json (events ())));
      ("displayTimeUnit", Json.String "ms");
    ]

let write path = Json.to_file path (to_json ())
