type event = {
  ename : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  depth : int;
  args : (string * string) list;
  instant : bool;
}

let on = ref false
let clock = ref Unix.gettimeofday
let epoch = ref None
let last_ts = ref 0.
let events_rev : event list ref = ref []
let stack_depth = ref 0

let enabled () = !on

let now_s () = !clock ()

(* Microseconds since the epoch, clamped non-decreasing: Chrome trace
   viewers reject or misrender events that go backwards in time. *)
let now_us () =
  let e =
    match !epoch with
    | Some e -> e
    | None ->
        let e = !clock () in
        epoch := Some e;
        e
  in
  let t = (!clock () -. e) *. 1e6 in
  let t = if t > !last_ts then t else !last_ts in
  last_ts := t;
  t

let enable () = on := true
let disable () = on := false

let set_clock f =
  clock := f;
  epoch := None;
  last_ts := 0.

let clear () =
  events_rev := [];
  epoch := None;
  last_ts := 0.;
  stack_depth := 0

let depth () = !stack_depth

let with_span ?(cat = "tm") ?(args = []) name f =
  if not !on then f ()
  else begin
    let start = now_us () in
    let d = !stack_depth in
    incr stack_depth;
    Fun.protect
      ~finally:(fun () ->
        decr stack_depth;
        let stop = now_us () in
        events_rev :=
          {
            ename = name;
            cat;
            ts_us = start;
            dur_us = stop -. start;
            depth = d;
            args;
            instant = false;
          }
          :: !events_rev)
      f
  end

let instant ?(cat = "tm") ?(args = []) name =
  if !on then
    events_rev :=
      {
        ename = name;
        cat;
        ts_us = now_us ();
        dur_us = 0.;
        depth = !stack_depth;
        args;
        instant = true;
      }
      :: !events_rev

let events () = List.rev !events_rev

let event_to_json e =
  Json.Obj
    ([
       ("name", Json.String e.ename);
       ("cat", Json.String e.cat);
       ("ph", Json.String (if e.instant then "i" else "X"));
       ("ts", Json.Float e.ts_us);
     ]
    @ (if e.instant then [ ("s", Json.String "t") ]
       else [ ("dur", Json.Float e.dur_us) ])
    @ [ ("pid", Json.Int 1); ("tid", Json.Int 1) ]
    @
    match e.args with
    | [] -> []
    | args ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)) ])

let to_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json (events ())));
      ("displayTimeUnit", Json.String "ms");
    ]

let write path = Json.to_file path (to_json ())
