(** Leveled logging to stderr for the CLI and harnesses.

    Deliberately tiny: a global level, printf-style emitters, no
    formatter plumbing.  Defaults to {!Warn} so library code can log
    unconditionally without polluting normal runs. *)

type level = Quiet | Error | Warn | Info | Debug

val set_level : level -> unit
val level : unit -> level
val at_least : level -> bool

val level_of_string : string -> (level, string) result
(** Accepts [quiet], [error], [warn], [info], [debug]. *)

val level_to_string : level -> string

val err : ('a, Format.formatter, unit) format -> 'a
val warn : ('a, Format.formatter, unit) format -> 'a
val info : ('a, Format.formatter, unit) format -> 'a
val debug : ('a, Format.formatter, unit) format -> 'a
