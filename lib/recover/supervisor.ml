module Metrics = Tm_obs.Metrics

exception Interrupted

let c_retries = Metrics.counter "recover.retries"

(* Both flags are atomics because signal handlers run at arbitrary safe
   points (and, under a pool, the cooperative flag is read from worker
   code paths too). *)
let interrupt_flag = Atomic.make false
let graceful_depth = Atomic.make 0
let installed = ref false

let interrupt_requested () = Atomic.get interrupt_flag
let request_interrupt () = Atomic.set interrupt_flag true
let clear_interrupt () = Atomic.set interrupt_flag false

let on_signal _ =
  (* Keep the handler minimal: one flag transition or one raise. *)
  if Atomic.get graceful_depth > 0 && not (Atomic.get interrupt_flag) then
    Atomic.set interrupt_flag true
  else raise Interrupted

let install_handlers () =
  if not !installed then begin
    installed := true;
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    (* With the default disposition a reader going away (events piped
       into [head], a serve client disconnecting mid-response) kills
       the whole process with SIGPIPE before any OCaml code can react.
       Ignoring it turns the condition into EPIPE / [Sys_error], which
       the individual writers handle by detaching their sink. *)
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
    with Invalid_argument _ -> ()
  end

let graceful f =
  Atomic.incr graceful_depth;
  Fun.protect ~finally:(fun () -> Atomic.decr graceful_depth) f

type 'a attempt = Done of 'a | Transient of string

let with_retries ?(attempts = 3) ?(backoff_s = 0.5) ?jitter ?max_backoff_s
    ?(sleep = Unix.sleepf)
    ?(on_retry = fun ~attempt:_ ~delay_s:_ ~reason:_ -> ()) f =
  if attempts < 1 then invalid_arg "Supervisor.with_retries: attempts < 1";
  if backoff_s < 0. then invalid_arg "Supervisor.with_retries: backoff_s < 0";
  (match max_backoff_s with
  | Some m when m < backoff_s ->
      invalid_arg "Supervisor.with_retries: max_backoff_s < backoff_s"
  | _ -> ());
  let cap d = match max_backoff_s with Some m -> Float.min m d | None -> d in
  (* Decorrelated-jitter state: the previous slept delay.  Without a
     PRNG the schedule is the historical pure exponential. *)
  let prev = ref backoff_s in
  let next_delay k =
    match jitter with
    | None -> cap (backoff_s *. (2. ** float_of_int (k - 1)))
    | Some g ->
        (* sleep_k ~ uniform [base, 3 * sleep_{k-1}], capped — a fleet
           of retriers decorrelates instead of thundering in lockstep,
           yet the schedule is a pure function of the injected PRNG. *)
        let hi = Float.max backoff_s (3. *. !prev) in
        let d =
          cap (backoff_s +. (Tm_base.Prng.float g *. (hi -. backoff_s)))
        in
        prev := d;
        d
  in
  let rec go k =
    match f ~attempt:k with
    | Done v -> Ok v
    | Transient reason when k < attempts ->
        Metrics.incr c_retries;
        let delay_s = next_delay k in
        Tm_obs.Events.emit "recover.retry"
          [
            ("attempt", Tm_obs.Json.Int k);
            ("delay_s", Tm_obs.Json.Float delay_s);
            ("reason", Tm_obs.Json.String reason);
          ];
        on_retry ~attempt:k ~delay_s ~reason;
        if delay_s > 0. then sleep delay_s;
        go (k + 1)
    | Transient reason -> Error reason
  in
  go 1
