module Metrics = Tm_obs.Metrics

exception Interrupted

let c_retries = Metrics.counter "recover.retries"

(* Both flags are atomics because signal handlers run at arbitrary safe
   points (and, under a pool, the cooperative flag is read from worker
   code paths too). *)
let interrupt_flag = Atomic.make false
let graceful_depth = Atomic.make 0
let installed = ref false

let interrupt_requested () = Atomic.get interrupt_flag
let request_interrupt () = Atomic.set interrupt_flag true
let clear_interrupt () = Atomic.set interrupt_flag false

let on_signal _ =
  (* Keep the handler minimal: one flag transition or one raise. *)
  if Atomic.get graceful_depth > 0 && not (Atomic.get interrupt_flag) then
    Atomic.set interrupt_flag true
  else raise Interrupted

let install_handlers () =
  if not !installed then begin
    installed := true;
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    (* With the default disposition a reader going away (events piped
       into [head], a serve client disconnecting mid-response) kills
       the whole process with SIGPIPE before any OCaml code can react.
       Ignoring it turns the condition into EPIPE / [Sys_error], which
       the individual writers handle by detaching their sink. *)
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
    with Invalid_argument _ -> ()
  end

let graceful f =
  Atomic.incr graceful_depth;
  Fun.protect ~finally:(fun () -> Atomic.decr graceful_depth) f

(* The backoff schedule is its own little machine so that callers other
   than [with_retries] — the worker-process supervisor restarting dead
   workers, most notably — share the exact same decorrelated-jitter
   discipline instead of reinventing a divergent one. *)
module Backoff = struct
  type t = {
    base_s : float;
    max_s : float option;
    jitter : Tm_base.Prng.t option;
    mutable prev : float;  (** last delay handed out (jitter state) *)
    mutable k : int;  (** delays handed out so far (exponential state) *)
  }

  let create ?jitter ?max_s ~base_s () =
    if base_s < 0. then invalid_arg "Backoff.create: base_s < 0";
    (match max_s with
    | Some m when m < base_s -> invalid_arg "Backoff.create: max_s < base_s"
    | _ -> ());
    { base_s; max_s; jitter; prev = base_s; k = 0 }

  let cap t d = match t.max_s with Some m -> Float.min m d | None -> d

  let next t =
    t.k <- t.k + 1;
    match t.jitter with
    | None -> cap t (t.base_s *. (2. ** float_of_int (t.k - 1)))
    | Some g ->
        (* sleep_k ~ uniform [base, 3 * sleep_{k-1}], capped — a fleet
           of retriers decorrelates instead of thundering in lockstep,
           yet the schedule is a pure function of the injected PRNG. *)
        let hi = Float.max t.base_s (3. *. t.prev) in
        let d = cap t (t.base_s +. (Tm_base.Prng.float g *. (hi -. t.base_s))) in
        t.prev <- d;
        d

  let reset t =
    t.prev <- t.base_s;
    t.k <- 0
end

type 'a attempt = Done of 'a | Transient of string

let with_retries ?(attempts = 3) ?(backoff_s = 0.5) ?jitter ?max_backoff_s
    ?(sleep = Unix.sleepf)
    ?(on_retry = fun ~attempt:_ ~delay_s:_ ~reason:_ -> ()) f =
  if attempts < 1 then invalid_arg "Supervisor.with_retries: attempts < 1";
  if backoff_s < 0. then invalid_arg "Supervisor.with_retries: backoff_s < 0";
  (match max_backoff_s with
  | Some m when m < backoff_s ->
      invalid_arg "Supervisor.with_retries: max_backoff_s < backoff_s"
  | _ -> ());
  let schedule =
    Backoff.create ?jitter ?max_s:max_backoff_s ~base_s:backoff_s ()
  in
  let next_delay _k = Backoff.next schedule in
  let rec go k =
    match f ~attempt:k with
    | Done v -> Ok v
    | Transient reason when k < attempts ->
        Metrics.incr c_retries;
        let delay_s = next_delay k in
        Tm_obs.Events.emit "recover.retry"
          [
            ("attempt", Tm_obs.Json.Int k);
            ("delay_s", Tm_obs.Json.Float delay_s);
            ("reason", Tm_obs.Json.String reason);
          ];
        on_retry ~attempt:k ~delay_s ~reason;
        if delay_s > 0. then sleep delay_s;
        go (k + 1)
    | Transient reason -> Error reason
  in
  go 1
