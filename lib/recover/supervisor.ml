module Metrics = Tm_obs.Metrics

exception Interrupted

let c_retries = Metrics.counter "recover.retries"

(* Both flags are atomics because signal handlers run at arbitrary safe
   points (and, under a pool, the cooperative flag is read from worker
   code paths too). *)
let interrupt_flag = Atomic.make false
let graceful_depth = Atomic.make 0
let installed = ref false

let interrupt_requested () = Atomic.get interrupt_flag
let request_interrupt () = Atomic.set interrupt_flag true
let clear_interrupt () = Atomic.set interrupt_flag false

let on_signal _ =
  (* Keep the handler minimal: one flag transition or one raise. *)
  if Atomic.get graceful_depth > 0 && not (Atomic.get interrupt_flag) then
    Atomic.set interrupt_flag true
  else raise Interrupted

let install_handlers () =
  if not !installed then begin
    installed := true;
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
  end

let graceful f =
  Atomic.incr graceful_depth;
  Fun.protect ~finally:(fun () -> Atomic.decr graceful_depth) f

type 'a attempt = Done of 'a | Transient of string

let with_retries ?(attempts = 3) ?(backoff_s = 0.5) ?(sleep = Unix.sleepf)
    ?(on_retry = fun ~attempt:_ ~delay_s:_ ~reason:_ -> ()) f =
  if attempts < 1 then invalid_arg "Supervisor.with_retries: attempts < 1";
  if backoff_s < 0. then invalid_arg "Supervisor.with_retries: backoff_s < 0";
  let rec go k =
    match f ~attempt:k with
    | Done v -> Ok v
    | Transient reason when k < attempts ->
        Metrics.incr c_retries;
        let delay_s = backoff_s *. (2. ** float_of_int (k - 1)) in
        Tm_obs.Events.emit "recover.retry"
          [
            ("attempt", Tm_obs.Json.Int k);
            ("delay_s", Tm_obs.Json.Float delay_s);
            ("reason", Tm_obs.Json.String reason);
          ];
        on_retry ~attempt:k ~delay_s ~reason;
        if delay_s > 0. then sleep delay_s;
        go (k + 1)
    | Transient reason -> Error reason
  in
  go 1
