exception Mismatch of string

(* Atomic because the zone engine's worker domains read the sampling
   period from their per-domain scratches. *)
let period = Atomic.make 0
let corrupt_flag = Atomic.make false

let set_every k = Atomic.set period (max k 0)
let every () = Atomic.get period
let set_corrupt b = Atomic.set corrupt_flag b
let corrupt () = Atomic.get corrupt_flag
