(** Configuration for paranoid mode: a sampled in-flight self-check of
    the fast DBM kernel against the reference kernel.

    When {!set_every} is given [k > 0], the paranoid kernel
    ([Tm_zones.Dbm_paranoid]) re-executes every [k]-th successor-zone
    pipeline on the reference kernel and compares every observable
    result — emptiness, satisfiability probes, and the frozen zone,
    entry by entry.  A disagreement means the fast kernel (or the
    memory under it) produced a corrupt zone; the kernel records a
    [recover.selfcheck_mismatch] and raises {!Mismatch}, and the
    paranoid engine ([Tm_zones.Reach.Paranoid]) degrades the whole run
    to the reference kernel rather than reporting a possibly corrupt
    verdict.

    This module only holds the knobs and the exception; it lives here
    (below [lib/zones]) so both the kernels and the CLI can share them
    without a dependency cycle. *)

exception Mismatch of string
(** The fast and reference kernels disagreed on a checked pipeline.
    The message says which operation diverged. *)

val set_every : int -> unit
(** Check every [k]-th pipeline; [k <= 0] disables checking (the
    default).  [k = 1] checks everything. *)

val every : unit -> int

val set_corrupt : bool -> unit
(** Test hook: while set, the paranoid kernel deliberately corrupts
    the fast result of each checked pipeline before comparing, so the
    tests can prove the self-check actually detects corruption.  Never
    set outside tests. *)

val corrupt : unit -> bool
