(** Versioned, checksummed, atomically written snapshot blobs.

    A snapshot is an opaque payload (produced by the caller, typically
    with [Marshal]) wrapped in a self-describing envelope:

    - a fixed magic string and a format version, so stale or foreign
      files are rejected with a clear message instead of a marshal
      segfault;
    - a caller-supplied {e fingerprint} identifying the job the payload
      belongs to (engine kernel, entry point, automaton shape, bounds);
      {!read} hands it back so the caller can refuse to resume the
      wrong job;
    - a short human-readable {e info} string (progress so far) that can
      be shown without decoding the payload;
    - a CRC-32 of the fingerprint, info and payload together, so a torn
      or bit-flipped file fails loudly rather than resuming from
      garbage (or posing as a different job).

    Writes are atomic: the envelope is written to a fresh temporary
    file in the destination directory, fsynced, and renamed over the
    target, so a concurrent reader always sees either the old snapshot,
    the new one, or no file — never a partial write. *)

exception Bad_snapshot of string
(** Raised by {!read}/{!inspect} on any malformed snapshot: missing or
    truncated file, wrong magic, unsupported version, checksum
    mismatch.  The message says which check failed.  A bad snapshot
    never yields a payload, so it can never yield a wrong verdict. *)

val format_version : int

val write : path:string -> fingerprint:string -> info:string -> bytes -> unit
(** Atomically (re)write the snapshot at [path].  Increments the
    [recover.snapshot_written] counter. *)

val read : string -> string * string * bytes
(** [read path] is [(fingerprint, info, payload)] after full envelope
    validation.
    @raise Bad_snapshot when any validation fails. *)

val inspect : string -> string * string
(** [(fingerprint, info)] of a snapshot, with the same validation as
    {!read} — used to route a [--resume] file to the right job without
    decoding the payload. *)

val crc32 : bytes -> int
(** IEEE CRC-32 (the zlib/PNG polynomial), exposed for tests. *)

val sweep_temps : string -> int
(** Remove orphaned snapshot temp files ([.tmckpt*.tmp]) left in [dir]
    by a crash between the temp write and the publishing rename, and
    return how many were removed.  Temp files are never adopted as
    snapshots — this is hygiene for long-lived state directories, run
    by the serve daemon on startup.  A missing/unreadable directory is
    0, not an error. *)

(** Injectable write faults — tests only.  {!write} consults these on
    every call; both default to off and {!For_testing.reset} restores
    that. *)
module For_testing : sig
  val truncate_write_to : int option ref
  (** Persist only the first [n] bytes of the envelope (a short write
      the kernel never reported): the published file must then read as
      {!Bad_snapshot}, never as a snapshot. *)

  val fail_before_rename : exn option ref
  (** Raise this exception after the temp file is written but before
      the rename publishes it (ENOSPC at fsync, media failure): the
      temp must be unlinked and a pre-existing snapshot at the target
      path left untouched. *)

  val reset : unit -> unit
end
