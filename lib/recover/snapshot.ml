module Metrics = Tm_obs.Metrics

exception Bad_snapshot of string

let c_written = Metrics.counter "recover.snapshot_written"

let magic = "TMCKPT1\n"
let format_version = 1

(* ------------------------------------------------------------------ *)
(* CRC-32, IEEE polynomial (reflected 0xEDB88320), table-driven.  Kept
   in an OCaml int and masked to 32 bits so it works identically on
   every word size.                                                    *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32 b =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = 0 to Bytes.length b - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Envelope: magic | u32 version | u32 len + fingerprint | u32 len +
   info | u32 len | u32 crc | payload.  All integers big-endian.  The
   checksum covers fingerprint, info and payload, so a flipped bit
   anywhere in the variable part of the envelope reads as corruption,
   not as a different job.                                             *)

let put_u32 buf v =
  Buffer.add_int32_be buf (Int32.of_int (v land 0xFFFFFFFF))

let body_crc ~fingerprint ~info payload =
  let b = Buffer.create (String.length fingerprint + String.length info
                         + Bytes.length payload) in
  Buffer.add_string b fingerprint;
  Buffer.add_string b info;
  Buffer.add_bytes b payload;
  crc32 (Buffer.to_bytes b)

let encode ~fingerprint ~info payload =
  let buf = Buffer.create (Bytes.length payload + 64) in
  Buffer.add_string buf magic;
  put_u32 buf format_version;
  put_u32 buf (String.length fingerprint);
  Buffer.add_string buf fingerprint;
  put_u32 buf (String.length info);
  Buffer.add_string buf info;
  put_u32 buf (Bytes.length payload);
  put_u32 buf (body_crc ~fingerprint ~info payload);
  Buffer.add_bytes buf payload;
  Buffer.contents buf

(* Injectable I/O faults, for the robustness tests only: a short write
   (the kernel persisting fewer bytes than asked, without an error — a
   torn file that must read as corruption, never as a snapshot) and a
   failure raised between the write and the rename (ENOSPC at fsync,
   media death, a crash) after which the temp file must be gone and any
   previous snapshot at [path] untouched. *)
module For_testing = struct
  let truncate_write_to : int option ref = ref None
  let fail_before_rename : exn option ref = ref None

  let reset () =
    truncate_write_to := None;
    fail_before_rename := None
end

let temp_prefix = ".tmckpt"

let write ~path ~fingerprint ~info payload =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir temp_prefix ".tmp" in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         let body = encode ~fingerprint ~info payload in
         let body =
           match !For_testing.truncate_write_to with
           | Some n when n < String.length body -> String.sub body 0 n
           | _ -> body
         in
         output_string oc body;
         flush oc;
         (* Data must hit the disk before the rename publishes it. *)
         Unix.fsync (Unix.descr_of_out_channel oc));
     (match !For_testing.fail_before_rename with
     | Some e -> raise e
     | None -> ());
     Sys.rename tmp path
   with e ->
     cleanup ();
     raise e);
  Metrics.incr c_written;
  Tm_obs.Events.emit "recover.snapshot"
    [
      ("path", Tm_obs.Json.String path);
      ("bytes", Tm_obs.Json.Int (Bytes.length payload));
      ("info", Tm_obs.Json.String info);
    ]

(* Cursor-style decoding with truncation checks at every step. *)
let fail fmt = Format.kasprintf (fun m -> raise (Bad_snapshot m)) fmt

let decode path s =
  let pos = ref 0 in
  let need n what =
    if !pos + n > String.length s then
      fail "%s: truncated snapshot (wanted %d bytes of %s at offset %d, file \
            has %d)"
        path n what !pos (String.length s)
  in
  let take n what =
    need n what;
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  let u32 what =
    need 4 what;
    let v = Int32.to_int (String.get_int32_be s !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    v
  in
  let m = take (String.length magic) "magic" in
  if m <> magic then
    fail "%s: not a timedmap snapshot (bad magic %S)" path m;
  let v = u32 "version" in
  if v <> format_version then
    fail "%s: unsupported snapshot version %d (this build reads version %d)"
      path v format_version;
  let fingerprint = take (u32 "fingerprint length") "fingerprint" in
  let info = take (u32 "info length") "info" in
  let plen = u32 "payload length" in
  let crc = u32 "snapshot checksum" in
  let payload = Bytes.of_string (take plen "payload") in
  if !pos <> String.length s then
    fail "%s: %d trailing bytes after payload" path (String.length s - !pos);
  let crc' = body_crc ~fingerprint ~info payload in
  if crc <> crc' then
    fail "%s: checksum mismatch (stored %08x, computed %08x) — the file is \
          corrupt"
      path crc crc';
  (fingerprint, info, payload)

let read path =
  let s =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | Sys_error m -> fail "%s: cannot read snapshot: %s" path m
    | End_of_file -> fail "%s: truncated snapshot (short read)" path
  in
  decode path s

let inspect path =
  let fingerprint, info, _ = read path in
  (fingerprint, info)

(* A crash between the temp write and the rename (kill -9, power loss)
   leaks the temp file: no exception handler ever ran.  The temp name
   is never adopted by [read]/[inspect] — callers only ever look at the
   published path — but left alone they accumulate forever in a daemon
   state dir, so long-lived processes sweep on startup. *)
let sweep_temps dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      Array.fold_left
        (fun n entry ->
          if
            String.length entry > String.length temp_prefix + 4
            && String.sub entry 0 (String.length temp_prefix) = temp_prefix
            && Filename.check_suffix entry ".tmp"
          then (
            match Sys.remove (Filename.concat dir entry) with
            | () -> n + 1
            | exception Sys_error _ -> n)
          else n)
        0 entries
