(** Signal discipline and bounded-retry supervision for long runs.

    {b Signals.}  {!install_handlers} routes SIGINT/SIGTERM through one
    process-wide policy with two regimes:

    - outside a {!graceful} scope the signal raises {!Interrupted} at
      the next safe point, so [Fun.protect]-style cleanup (flushing
      metrics and trace sinks) runs before the process exits;
    - inside a {!graceful} scope the first signal only sets a flag that
      cooperative loops poll via {!interrupt_requested} — the zone
      engine checks it at every batch boundary, writes a final
      checkpoint, and returns an [Unknown] outcome with partial stats.
      A second signal while the flag is already set escalates to
      {!Interrupted} (the user really means it).

    {!request_interrupt} sets the same flag programmatically, which is
    how the tests exercise the cooperative path deterministically.

    {b Retries.}  {!with_retries} runs an attempt function under a
    bounded retry budget with exponential backoff, for failures that
    are worth retrying — a wall-clock deadline that may not recur, or a
    budget exhaustion whose checkpoint lets the next attempt continue
    instead of restarting. *)

exception Interrupted
(** Raised by a signal arriving outside a {!graceful} scope (or by a
    repeated signal inside one). *)

val install_handlers : unit -> unit
(** Install the SIGINT/SIGTERM policy above.  Idempotent. *)

val graceful : (unit -> 'a) -> 'a
(** Run a cooperative section: signals set the interrupt flag instead
    of raising.  Scopes nest; the flag is {e not} cleared on exit (the
    caller decides when the interrupt has been fully handled). *)

val interrupt_requested : unit -> bool
(** Poll the interrupt flag — one atomic read, cheap enough for hot
    loops. *)

val request_interrupt : unit -> unit
(** Set the interrupt flag, exactly as a signal inside a {!graceful}
    scope would. *)

val clear_interrupt : unit -> unit
(** Reset the flag — between supervised attempts, or in tests. *)

(** Reusable backoff schedules, shared by {!with_retries} and the
    serve-layer worker-process supervisor (restarting crashed worker
    processes).  Without [jitter] the schedule is the pure exponential
    [base_s * 2^(k-1)]; with an injected deterministic PRNG it is
    {e decorrelated jitter}: each delay drawn uniformly from
    [[base_s, 3 * previous]], capped at [max_s] when given. *)
module Backoff : sig
  type t

  val create :
    ?jitter:Tm_base.Prng.t -> ?max_s:float -> base_s:float -> unit -> t
  (** @raise Invalid_argument if [base_s < 0] or [max_s < base_s]. *)

  val next : t -> float
  (** The next delay in seconds; advances the schedule. *)

  val reset : t -> unit
  (** Back to the first delay — after the supervised thing proved
      healthy again. *)
end

type 'a attempt = Done of 'a | Transient of string
(** What one attempt produced: a result, or a failure worth retrying
    (the string says why, for the retry log). *)

val with_retries :
  ?attempts:int ->
  ?backoff_s:float ->
  ?jitter:Tm_base.Prng.t ->
  ?max_backoff_s:float ->
  ?sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> delay_s:float -> reason:string -> unit) ->
  (attempt:int -> 'a attempt) ->
  ('a, string) result
(** [with_retries f] calls [f ~attempt:1], then [~attempt:2], ... up to
    [attempts] (default 3) times, sleeping between attempt [k] and
    [k+1] and incrementing the [recover.retries] counter.

    Without [jitter] the delay before retry [k+1] is the historical
    pure exponential [backoff_s * 2^(k-1)] (default base 0.5 s).  With
    [jitter] the schedule uses {e decorrelated jitter}: each delay is
    drawn uniformly from [[backoff_s, 3 * previous_delay]], so a fleet
    of retrying clients spreads out instead of thundering back in
    lockstep — and because the draw comes from the injected
    deterministic {!Tm_base.Prng.t}, the whole schedule is a pure
    function of the seed (pin the seed, pin the schedule).  Either
    schedule is clamped to [max_backoff_s] when given.

    [Error reason] carries the last transient reason once attempts are
    exhausted.  [on_retry] is called before each backoff sleep; [sleep]
    (default [Unix.sleepf]) is injectable so tests run instantly.  An
    {!Interrupted} raised by the attempt propagates — interrupts are
    never retried.
    @raise Invalid_argument if [attempts < 1], [backoff_s < 0], or
    [max_backoff_s < backoff_s]. *)
