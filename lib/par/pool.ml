module Metrics = Tm_obs.Metrics
module Tracing = Tm_obs.Tracing
module Events = Tm_obs.Events
module Json = Tm_obs.Json

let c_tasks = Metrics.counter "par.tasks"
let c_steals = Metrics.counter "par.steals"
let c_contention = Metrics.counter "par.shard_contention"
let g_domains = Metrics.gauge "par.domains"

(* One run queue (shard) per domain.  A domain pops its own shard under
   a blocking lock and steals from the others with [try_lock] only, so
   a loaded shard never stalls thieves: a failed [try_lock] is counted
   as [par.shard_contention] and the thief moves on. *)
type shard = { smu : Mutex.t; jobs : (int -> unit) Queue.t }

type t = {
  size : int;  (* participating domains, including the caller *)
  owner : bool;  (* this pool holds the process-wide active slot *)
  shards : shard array;
  queued : int Atomic.t;  (* jobs pushed and not yet popped *)
  mutable workers : unit Domain.t array;
  mu : Mutex.t;  (* protects closing/sleepers and pairs with cond *)
  cond : Condition.t;
  mutable closing : bool;
  mutable sleepers : int;
  t_tasks : int Atomic.t;
  t_steals : int Atomic.t;
  t_contention : int Atomic.t;
  mutable rr : int;  (* round-robin push cursor; main domain only *)
}

(* At most one real pool at a time: a nested or concurrent [create]
   degrades to an inline size-1 pool rather than oversubscribing the
   machine or reusing Metrics slots. *)
let active = Atomic.make false

(* How many failed grabs a worker burns through with [cpu_relax] before
   blocking on the condition variable.  Between two back-to-back
   parallel sections (e.g. per-location batches of the zone engine)
   workers stay in the spin phase and pick up new jobs in ~ns; the
   condition variable only pays off across genuinely idle stretches. *)
let spin_max = 20_000

let mk_shards n =
  Array.init n (fun _ -> { smu = Mutex.create (); jobs = Queue.create () })

let seq_pool () =
  {
    size = 1;
    owner = false;
    shards = mk_shards 1;
    queued = Atomic.make 0;
    workers = [||];
    mu = Mutex.create ();
    cond = Condition.create ();
    closing = false;
    sleepers = 0;
    t_tasks = Atomic.make 0;
    t_steals = Atomic.make 0;
    t_contention = Atomic.make 0;
    rr = 0;
  }

let size p = p.size

(* Unsynchronized reads of each shard's queue length: a telemetry-only
   gauge (reading a mutable int field is memory-safe in OCaml, the
   value is just approximate while workers are draining). *)
let queue_depths p = Array.map (fun sh -> Queue.length sh.jobs) p.shards

let pop_locked sh =
  if Queue.is_empty sh.jobs then None else Some (Queue.pop sh.jobs)

let try_pop_own p me =
  let sh = p.shards.(me) in
  Mutex.lock sh.smu;
  let j = pop_locked sh in
  Mutex.unlock sh.smu;
  (match j with Some _ -> ignore (Atomic.fetch_and_add p.queued (-1)) | None -> ());
  j

let try_steal p me =
  let n = p.size in
  let rec go k =
    if k >= n then None
    else
      let sh = p.shards.((me + k) mod n) in
      if Mutex.try_lock sh.smu then begin
        let j = pop_locked sh in
        Mutex.unlock sh.smu;
        match j with
        | Some _ ->
            ignore (Atomic.fetch_and_add p.queued (-1));
            Atomic.incr p.t_steals;
            j
        | None -> go (k + 1)
      end
      else begin
        Atomic.incr p.t_contention;
        go (k + 1)
      end
  in
  go 1

let grab p me =
  if Atomic.get p.queued = 0 then None
  else
    match try_pop_own p me with Some j -> Some j | None -> try_steal p me

(* Jobs come from [parallel_for], which catches everything the user
   body can raise; the defensive catch here only shields the scheduler
   itself from a buggy wrapper. *)
let run_job job me = try job me with _ -> ()

let rec worker p me spin =
  match grab p me with
  | Some job ->
      run_job job me;
      worker p me spin_max
  | None ->
      if spin > 0 then begin
        Domain.cpu_relax ();
        worker p me (spin - 1)
      end
      else begin
        Mutex.lock p.mu;
        if p.closing then Mutex.unlock p.mu
        else if Atomic.get p.queued > 0 then begin
          Mutex.unlock p.mu;
          worker p me spin_max
        end
        else begin
          p.sleepers <- p.sleepers + 1;
          Condition.wait p.cond p.mu;
          p.sleepers <- p.sleepers - 1;
          let closing = p.closing in
          Mutex.unlock p.mu;
          if not closing then worker p me spin_max
        end
      end

let create ?(domains = 1) () =
  let n = max 1 (min domains Metrics.max_slots) in
  if n = 1 then seq_pool ()
  else if not (Atomic.compare_and_set active false true) then seq_pool ()
  else begin
    Metrics.par_begin ();
    let p = { (seq_pool ()) with size = n; owner = true; shards = mk_shards n } in
    p.workers <-
      Array.init (n - 1) (fun i ->
          let me = i + 1 in
          Domain.spawn (fun () ->
              Metrics.set_domain_slot me;
              worker p me spin_max));
    p
  end

let shutdown p =
  if p.owner then begin
    Mutex.lock p.mu;
    p.closing <- true;
    Condition.broadcast p.cond;
    Mutex.unlock p.mu;
    Array.iter Domain.join p.workers;
    Metrics.par_end ();
    Atomic.set active false;
    (* Flush the pool's atomics into the (now single-domain) registry. *)
    Metrics.add c_tasks (Atomic.get p.t_tasks);
    Metrics.add c_steals (Atomic.get p.t_steals);
    Metrics.add c_contention (Atomic.get p.t_contention);
    Metrics.set_max g_domains (float_of_int p.size);
    Events.emit "par.pool"
      [
        ("domains", Json.Int p.size);
        ("tasks", Json.Int (Atomic.get p.t_tasks));
        ("steals", Json.Int (Atomic.get p.t_steals));
        ("contention", Json.Int (Atomic.get p.t_contention));
      ]
  end

let run ?(domains = 1) f =
  let p = create ~domains () in
  if p.size = 1 then Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
  else
    Tracing.with_span "par.pool"
      ~args:[ ("domains", string_of_int p.size) ]
      (fun () -> Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p))

let parallel_for ?(grain = 1) p ~n body =
  if grain < 1 then invalid_arg "Pool.parallel_for: grain < 1";
  if n > 0 then begin
    if p.size = 1 || n <= grain then
      for i = 0 to n - 1 do
        body ~domain:0 i
      done
    else begin
      let nchunks = min ((n + grain - 1) / grain) (p.size * 4) in
      let chunk = (n + nchunks - 1) / nchunks in
      let pending = Atomic.make nchunks in
      let err : exn option Atomic.t = Atomic.make None in
      let job lo hi me =
        (try
           for i = lo to min (hi - 1) (n - 1) do
             body ~domain:me i
           done
         with e -> ignore (Atomic.compare_and_set err None (Some e)));
        ignore (Atomic.fetch_and_add pending (-1))
      in
      for c = 0 to nchunks - 1 do
        let sh = p.shards.(p.rr) in
        p.rr <- (p.rr + 1) mod p.size;
        Mutex.lock sh.smu;
        Queue.add (job (c * chunk) ((c + 1) * chunk)) sh.jobs;
        Mutex.unlock sh.smu
      done;
      ignore (Atomic.fetch_and_add p.queued nchunks);
      ignore (Atomic.fetch_and_add p.t_tasks nchunks);
      Mutex.lock p.mu;
      if p.sleepers > 0 then Condition.broadcast p.cond;
      Mutex.unlock p.mu;
      (* The caller participates until the barrier clears. *)
      let rec help () =
        if Atomic.get pending > 0 then begin
          (match grab p 0 with
          | Some job -> run_job job 0
          | None -> Domain.cpu_relax ());
          help ()
        end
      in
      help ();
      match Atomic.get err with Some e -> raise e | None -> ()
    end
  end

let map_array ?grain p f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?grain p ~n (fun ~domain:_ i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_list ?grain p f xs =
  Array.to_list (map_array ?grain p f (Array.of_list xs))
