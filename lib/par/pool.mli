(** Dependency-free work-sharing pool over stdlib [Domain] /
    [Mutex] / [Condition].

    A pool of [domains] cooperating domains: the creating (main) domain
    plus [domains - 1] spawned workers.  Work arrives as index-range
    jobs ({!parallel_for}) pushed round-robin onto one run-queue shard
    per domain; a domain drains its own shard and steals from the
    others ([Mutex.try_lock] only, so thieves never block — counted as
    [par.steals] / [par.shard_contention]).  {!parallel_for} is a
    barrier: the caller helps execute jobs and returns only when every
    index has been processed.  Idle workers spin briefly, then block on
    a condition variable until new work or shutdown.

    Determinism contract: the pool never reorders *results* — callers
    index output slots by input index — so any fan-out whose items are
    independent computes the same value at every domain count.

    Metrics/tracing integration: workers register themselves with
    {!Tm_obs.Metrics.set_domain_slot}, so metric updates from jobs land
    in per-domain sinks and spans land in per-domain trace rows.
    Totals ([par.tasks], [par.steals], [par.shard_contention], gauge
    [par.domains]) are flushed to the registry at {!shutdown}.

    At most one real pool exists at a time; a nested or concurrent
    {!create} returns an inline pool of size 1 (jobs then run in the
    caller).  [domains <= 1] always yields the inline pool, which
    executes {!parallel_for} as a plain sequential loop — the exact
    sequential path, no domains spawned, no par metrics emitted. *)

type t

val create : ?domains:int -> unit -> t
(** Spawn a pool of [domains] total domains (default 1; clamped to
    [1 .. Tm_obs.Metrics.max_slots]). *)

val shutdown : t -> unit
(** Wake and join every worker and flush pool metrics.  Must be called
    from the creating domain, with no {!parallel_for} in flight. *)

val run : ?domains:int -> (t -> 'a) -> 'a
(** [run ~domains f] = {!create}, apply [f], {!shutdown} — exception
    safe.  Real pools run [f] inside a [par.pool] span. *)

val size : t -> int
(** Number of participating domains (1 for the inline pool). *)

val queue_depths : t -> int array
(** Jobs currently queued per shard (index = domain slot).  A racy,
    telemetry-only gauge: safe to call from any domain at any time,
    exact only when the pool is quiescent (e.g. at a barrier). *)

val parallel_for : ?grain:int -> t -> n:int -> (domain:int -> int -> unit) -> unit
(** [parallel_for p ~n body] runs [body ~domain i] for every
    [i] in [0 .. n-1] and returns when all are done.  [domain] is the
    executing domain's slot in [0 .. size-1] (0 = the caller), for
    indexing per-domain scratch state.  Indices are chunked into at
    most [4 * size] jobs of at least [grain] (default 1) consecutive
    indices.  If any [body] raises, the first exception (in completion
    order) is re-raised after the barrier; the remaining indices of
    that chunk are skipped, other chunks still complete. *)

val map_array : ?grain:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel map preserving order and length. *)

val map_list : ?grain:int -> t -> ('a -> 'b) -> 'a list -> 'b list
