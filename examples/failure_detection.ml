(* A heartbeat failure detector — timing-based distributed computing,
   the application domain the paper's conclusions point to.

   Both of its correctness properties are timing properties in the
   paper's sense, and each is established by three independent
   instruments: simulation envelopes, exact first-occurrence analysis
   on the discretized graph, and zone reachability. *)

module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Prng = Tm_base.Prng
module Completeness = Tm_core.Completeness
module Progress = Tm_core.Progress
module Reach = Tm_zones.Reach
module Region = Tm_zones.Region
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module Measure = Tm_sim.Measure
module FD = Tm_systems.Failure_detector

let q = Rational.of_int

let () =
  let p = FD.params_of_ints ~h1:1 ~h2:2 ~g1:2 ~g2:3 ~m:2 in
  let impl = FD.impl p in
  Format.printf
    "== Failure detector: heartbeats [1,2], polls [2,3], %d misses ==@."
    p.FD.m;
  Format.printf "predicted detection window: %s@.@."
    (Interval.to_string (FD.detection_interval p));

  (* accuracy, by two independent exact engines *)
  (match
     Reach.check_state_invariant (FD.system p) (FD.boundmap p)
       FD.no_false_suspicion
   with
  | Ok st ->
      Format.printf "accuracy (zones):   no false suspicion (%d zones)@."
        st.Reach.zones
  | Error _ -> Format.printf "accuracy (zones):   VIOLATED@.");
  (match
     Region.check_state_invariant (FD.system p) (FD.boundmap p)
       FD.no_false_suspicion
   with
  | Ok st ->
      Format.printf "accuracy (regions): no false suspicion (%d regions)@."
        st.Region.regions
  | Error _ -> Format.printf "accuracy (regions): VIOLATED@.");

  (* completeness: the detection window, exactly *)
  (match Reach.check_condition (FD.system p) (FD.boundmap p) (FD.u_detect p) with
  | Reach.Verified _ -> Format.printf "detection window (zones): VERIFIED@."
  | _ -> Format.printf "detection window (zones): FAILED@.");
  let a = Completeness.analyze ~source:impl ~conds:[| FD.u_detect p |] () in
  (match
     Completeness.bounds_after a
       ~trigger:(fun _ act _ -> act = FD.Crash)
       ~cond:0
   with
  | Some (lo, hi) ->
      Format.printf "detection window (exact grid): [%a, %a]@." Time.pp lo
        Time.pp hi
  | None -> Format.printf "no crash edges?!@.");

  (* liveness of the model itself *)
  Format.printf "%a@." Progress.pp_report (Progress.analyze impl);

  (* measured detection latencies over random crashes *)
  let latencies = ref [] in
  for seed = 0 to 499 do
    let prng = Prng.create seed in
    let run =
      Simulator.simulate ~steps:60
        ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
        impl
    in
    let seq = Simulator.project run in
    let crash = Measure.first_time (fun a -> a = FD.Crash) seq in
    let detect = Measure.first_time (fun a -> a = FD.Check_suspect) seq in
    match (crash, detect) with
    | Some tc, Some td -> latencies := Rational.sub td tc :: !latencies
    | _ -> ()
  done;
  Format.printf "measured detection latency: %s@."
    (Measure.summary !latencies);

  (* the regime boundary: slow heartbeats break accuracy *)
  let bad = FD.params_of_ints ~h1:5 ~h2:8 ~g1:2 ~g2:3 ~m:2 in
  match
    Reach.check_state_invariant (FD.system bad) (FD.boundmap bad)
      FD.no_false_suspicion
  with
  | Error s ->
      Format.printf
        "with heartbeats [5,8] slower than polls: false suspicion at %a@."
        (FD.system bad).Tm_ioa.Ioa.pp_state s
  | Ok _ -> Format.printf "slow heartbeats unexpectedly safe?!@."
