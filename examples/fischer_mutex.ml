(* Fischer's timed mutual exclusion, analyzed with this library — the
   kind of timing-dependent algorithm the paper's conclusions point to
   as future work.

   The safety of Fischer's protocol is itself a timing property: it
   holds exactly when the write deadline [a] is strictly below the
   check delay [b].  We verify mutual exclusion by exact zone
   reachability on both sides of that threshold, verify the
   uncontended-entry timing condition, and sample behaviour by
   simulation. *)

module Rational = Tm_base.Rational
module Prng = Tm_base.Prng
module Reach = Tm_zones.Reach
module Semantics = Tm_timed.Semantics
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module Measure = Tm_sim.Measure
module F = Tm_systems.Fischer

let q = Rational.of_int

let check_mx name p =
  match
    Reach.check_state_invariant (F.system p) (F.boundmap p)
      F.mutual_exclusion
  with
  | Ok st ->
      Format.printf "%s: mutual exclusion HOLDS (%d locations, %d zones)@."
        name st.Reach.locations st.Reach.zones
  | Error s ->
      Format.printf "%s: mutual exclusion VIOLATED at %a@." name
        (F.system p).Tm_ioa.Ioa.pp_state s

let () =
  Format.printf "== Fischer timed mutual exclusion ==@.";
  let good = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:2 in
  let boundary = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:2 ~b:2 ~b2:3 ~e:2 in
  let bad = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:3 ~b:2 ~b2:3 ~e:2 in
  check_mx "a=1 < b=2" good;
  check_mx "a=2 = b=2 (boundary: already unsafe)" boundary;
  check_mx "a=3 > b=2" bad;

  (* the timing condition: an uncontended SET is followed by a critical
     section entry within [b, b2] *)
  (match Reach.check_condition (F.system good) (F.boundmap good) (F.u_enter good) with
  | Reach.Verified st ->
      Format.printf
        "uncontended SET -> ENTER within [2,3]: VERIFIED (%d zones)@."
        st.Reach.zones
  | Reach.Lower_violation _ | Reach.Upper_violation _ ->
      Format.printf "uncontended SET -> ENTER: VIOLATED@."
  | Reach.Unsupported m -> Format.printf "unsupported: %s@." m
  | Reach.Unknown e ->
      Format.printf "uncontended SET -> ENTER: UNKNOWN (%s)@." e.Reach.reason);

  (* three processes *)
  let p3 = F.params_of_ints ~n:3 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:1 in
  check_mx "n=3, a=1 < b=2" p3;

  (* simulate and count entries per process *)
  let entries = Array.make 2 0 in
  for seed = 0 to 49 do
    let prng = Prng.create seed in
    let run =
      Simulator.simulate ~steps:200
        ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 1))
        (F.impl good)
    in
    let seq = Simulator.project run in
    List.iter
      (fun ((act, _), _) ->
        match act with
        | F.Enter i -> entries.(i - 1) <- entries.(i - 1) + 1
        | F.Retry _ | F.Test_succ _ | F.Test_fail _ | F.Set_x _ | F.Fail _
        | F.Exit _ ->
            ())
      seq.Tm_timed.Tseq.moves;
    (* every sampled trace also satisfies the timing condition *)
    assert (Semantics.semi_satisfies seq (F.u_enter good) = [])
  done;
  Format.printf
    "simulation (50 random runs x 200 steps): process 1 entered %d times, process 2 entered %d times@."
    entries.(0) entries.(1)
