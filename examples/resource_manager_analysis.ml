(* The full Section 4 story for the resource manager, end to end:

   1. the invariant of Lemma 4.1, checked exhaustively over the
      discretized reachable states of time(A, b);
   2. the strong possibilities mapping of Section 4.3 (Lemma 4.3),
      checked both along adversarial traces and exhaustively;
   3. Theorem 4.4 cross-checked three independent ways: measured
      simulation envelopes, exact first-occurrence analysis on the
      discretized graph, and exact zone-based verification;
   4. tightness: shaving either end of either bound is refuted. *)

module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Prng = Tm_base.Prng
module Hstore = Tm_base.Hstore
module Condition = Tm_timed.Condition
module TA = Tm_core.Time_automaton
module Tgraph = Tm_core.Tgraph
module Mapping = Tm_core.Mapping
module Completeness = Tm_core.Completeness
module Reach = Tm_zones.Reach
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module Measure = Tm_sim.Measure
module RM = Tm_systems.Resource_manager

let q = Rational.of_int

let () =
  let p = RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1 in
  let impl = RM.impl p and spec = RM.spec p in
  Format.printf "== Resource manager (Section 4): k=%d c1=%a c2=%a l=%a ==@."
    p.RM.k Rational.pp p.RM.c1 Rational.pp p.RM.c2 Rational.pp p.RM.l;

  (* 1. Lemma 4.1, exhaustively on the discretized graph *)
  let g = Tgraph.build impl in
  let violations = ref 0 in
  Hstore.iter
    (fun _ s -> if not (RM.lemma_4_1 p impl s) then incr violations)
    g.Tgraph.nodes;
  Format.printf "Lemma 4.1 over %d reachable discretized states: %s@."
    (Tgraph.node_count g)
    (if !violations = 0 then "holds" else "VIOLATED");

  (* 2. Lemma 4.3: the mapping *)
  (match Mapping.check_exhaustive ~source:impl ~target:spec (RM.mapping p) () with
  | Ok st ->
      Format.printf
        "Lemma 4.3 mapping, exhaustive: OK (%d product states, %d edges)@."
        st.Mapping.product_states st.Mapping.product_edges
  | Error e ->
      Format.printf "Lemma 4.3 mapping: FAILED@.  %a@."
        (Mapping.pp_failure impl) e);

  (* 3a. Theorem 4.4, measured *)
  let firsts = ref [] and gaps = ref [] in
  for seed = 0 to 99 do
    let prng = Prng.create seed in
    let run =
      Simulator.simulate ~steps:150
        ~strategy:(Strategy.random ~prng ~denominator:4 ~cap:(q 1))
        impl
    in
    let ts =
      Measure.occurrence_times (fun a -> a = RM.Grant) (Simulator.project run)
    in
    (match ts with t :: _ -> firsts := t :: !firsts | [] -> ());
    gaps := Measure.gaps ts @ !gaps
  done;
  let report name iv env =
    match env with
    | Some e ->
        Format.printf "%s: paper %s, measured %a -> %s@." name
          (Interval.to_string iv) Measure.pp_envelope e
          (if Measure.within iv e then "inside" else "OUTSIDE")
    | None -> Format.printf "%s: no samples@." name
  in
  report "Theorem 4.4 first-grant (measured)" (RM.grant_interval_first p)
    (Measure.envelope !firsts);
  report "Theorem 4.4 inter-grant (measured)" (RM.grant_interval_between p)
    (Measure.envelope !gaps);

  (* 3b. exact first-occurrence analysis *)
  let a = Completeness.analyze ~source:impl ~conds:[| RM.g1 p; RM.g2 p |] () in
  let lo, hi = Completeness.start_bounds a ~cond:0 in
  Format.printf "exact (grid) first-grant window: [%a, %a]@." Time.pp lo
    Time.pp hi;
  (match
     Completeness.bounds_after a
       ~trigger:(fun _ act _ -> act = RM.Grant)
       ~cond:1
   with
  | Some (lo, hi) ->
      Format.printf "exact (grid) inter-grant window: [%a, %a]@." Time.pp lo
        Time.pp hi
  | None -> Format.printf "no grant edges reachable?!@.");

  (* 3c. zone-based exact verification + 4. tightness *)
  let sys = RM.system p and bm = RM.boundmap p in
  let show name = function
    | Reach.Verified st ->
        Format.printf "%s: VERIFIED (%d zones)@." name st.Reach.zones
    | Reach.Lower_violation _ -> Format.printf "%s: LOWER-VIOLATED@." name
    | Reach.Upper_violation _ -> Format.printf "%s: UPPER-VIOLATED@." name
    | Reach.Unsupported m -> Format.printf "%s: unsupported (%s)@." name m
    | Reach.Unknown e -> Format.printf "%s: UNKNOWN (%s)@." name e.Reach.reason
  in
  show "zones: G1 = [6,10]" (Reach.check_condition sys bm (RM.g1 p));
  show "zones: G2 = [5,10]" (Reach.check_condition sys bm (RM.g2 p));
  let g1x lo hi =
    Condition.make ~name:"G1x"
      ~t_start:(fun _ -> true)
      ~bounds:(Interval.make lo hi)
      ~in_pi:(fun act -> act = RM.Grant)
      ()
  in
  show "zones: G1 shaved to [6,19/2] (expect refuted)"
    (Reach.check_condition sys bm (g1x (q 6) (Time.Fin (Rational.make 19 2))));
  show "zones: G1 raised to [13/2,10] (expect refuted)"
    (Reach.check_condition sys bm (g1x (Rational.make 13 2) (Time.of_int 10)))
