(* The Section 6 signal relay, with the paper's hierarchical proof:

   time(A~, b~) -> B_{n-1} -> ... -> B_0 -> B

   Each consecutive pair is connected by a strong possibilities mapping
   (the f_k of Section 6.4); the composition proves Theorem 6.4.  This
   example walks the chain level by level, then checks it exhaustively,
   and finally compares measured signal delays against [n d1, n d2]. *)

module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng
module D = Tm_core.Dummify
module Mapping = Tm_core.Mapping
module Hierarchy = Tm_core.Hierarchy
module Completeness = Tm_core.Completeness
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module Measure = Tm_sim.Measure
module SR = Tm_systems.Signal_relay

let q = Rational.of_int

let () =
  let p = SR.params_of_ints ~n:4 ~d1:1 ~d2:2 in
  let impl = SR.impl p in
  Format.printf
    "== Signal relay (Section 6): n=%d, per-hop [%a, %a], claim [%a, %a] ==@."
    p.SR.n Rational.pp p.SR.d1 Rational.pp p.SR.d2 Rational.pp
    (Rational.mul_int p.SR.n p.SR.d1)
    Rational.pp
    (Rational.mul_int p.SR.n p.SR.d2);

  (* The hierarchy *)
  let chain = SR.chain p in
  Format.printf "hierarchy: time(A~,b~) -> %s@."
    (String.concat " -> "
       (List.map
          (fun lv ->
            (List.hd
               (Array.to_list lv.Hierarchy.target.Tm_core.Time_automaton.cond_names)))
          chain));
  List.iteri
    (fun i lv ->
      Format.printf "  level %d: %s@." i lv.Hierarchy.map.Mapping.mname)
    chain;

  (* per-level and whole-chain verification along a random execution *)
  let prng = Prng.create 11 in
  let run =
    Simulator.simulate ~steps:100
      ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
      impl
  in
  (match Hierarchy.check_exec ~source:impl ~levels:chain run.Simulator.exec with
  | Ok () -> Format.printf "chain holds along a 100-step random execution@."
  | Error e ->
      Format.printf "chain FAILED at level %d (%s)@." e.Hierarchy.level_index
        e.Hierarchy.level_name);

  (* exhaustive check of the whole chain *)
  (match Hierarchy.check_exhaustive ~source:impl ~levels:chain () with
  | Ok st ->
      Format.printf "chain verified exhaustively: %d product states, %d edges@."
        st.Mapping.product_states st.Mapping.product_edges
  | Error e ->
      Format.printf "chain FAILED exhaustively at level %d (%s)@."
        e.Hierarchy.level_index e.Hierarchy.level_name);

  (* exact delay window from the discretized graph *)
  let a = Completeness.analyze ~source:impl ~conds:[| SR.u_cond p ~k:0 |] () in
  (match
     Completeness.bounds_after a
       ~trigger:(fun _ act _ -> act = D.Base (SR.Signal 0))
       ~cond:0
   with
  | Some (lo, hi) ->
      Format.printf "exact (grid) delay window: [%a, %a]@." Time.pp lo Time.pp
        hi
  | None -> Format.printf "SIGNAL_0 unreachable?!@.");

  (* measured delays *)
  let delays = ref [] in
  for seed = 0 to 199 do
    let prng = Prng.create seed in
    let run =
      Simulator.simulate ~steps:80
        ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
        impl
    in
    let seq = Simulator.project run in
    let at i =
      Measure.occurrence_times (fun act -> act = D.Base (SR.Signal i)) seq
    in
    match (at 0, at p.SR.n) with
    | [ t0 ], [ tn ] -> delays := Rational.sub tn t0 :: !delays
    | _ -> ()
  done;
  match Measure.envelope !delays with
  | Some e ->
      Format.printf "measured delays over %d propagations: %a -> %s@."
        e.Measure.count Measure.pp_envelope e
        (if Measure.within (SR.delay_interval p) e then "inside [n d1, n d2]"
         else "OUTSIDE")
  | None -> Format.printf "no complete propagations measured@."
