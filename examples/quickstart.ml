(* Quickstart: the resource manager of Section 4, end to end.

   1. Build the timed automaton (A, b) and its requirements {G1, G2}.
   2. Simulate it with eager / lazy / random schedulers and check every
      produced trace against the timing conditions.
   3. Check the invariant of Lemma 4.1 and the strong possibilities
      mapping of Section 4.3, both on traces and exhaustively on the
      discretized state graph. *)

module RM = Tm_systems.Resource_manager
module Rational = Tm_base.Rational
module Interval = Tm_base.Interval
module Prng = Tm_base.Prng
module Semantics = Tm_timed.Semantics
module Time_automaton = Tm_core.Time_automaton
module Mapping = Tm_core.Mapping
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module Measure = Tm_sim.Measure

let () =
  let p = RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1 in
  let impl = RM.impl p in
  let spec = RM.spec p in
  Format.printf "Resource manager: k=%d c1=%a c2=%a l=%a@." p.RM.k
    Rational.pp p.RM.c1 Rational.pp p.RM.c2 Rational.pp p.RM.l;
  Format.printf "Paper bounds: first GRANT in %a, between GRANTs %a@.@."
    Interval.pp (RM.grant_interval_first p) Interval.pp
    (RM.grant_interval_between p);

  (* --- simulate ------------------------------------------------- *)
  let check_run name strategy =
    let run = Simulator.simulate ~steps:200 ~strategy impl in
    let seq = Simulator.project run in
    let grants = Measure.occurrence_times (fun a -> a = RM.Grant) seq in
    let first = match grants with [] -> "none" | t :: _ -> Rational.to_string t in
    let viol =
      Semantics.semi_satisfies_all seq [ RM.g1 p; RM.g2 p ]
      @ (match
           Semantics.is_timed_execution ~complete:false (RM.system p)
             (RM.boundmap p) seq
         with
        | Ok vs -> vs
        | Error m -> failwith m)
    in
    Format.printf "%-8s %3d grants, first at t=%-5s violations: %d@." name
      (List.length grants) first (List.length viol);
    List.iter (Format.printf "  %a@." Semantics.pp_violation) viol
  in
  check_run "eager" Strategy.eager;
  check_run "lazy" (Strategy.lazy_ ~cap:Rational.one ());
  let prng = Prng.create 42 in
  for i = 1 to 5 do
    check_run
      (Printf.sprintf "random%d" i)
      (Strategy.random ~prng ~denominator:4 ~cap:Rational.one)
  done;

  (* --- Lemma 4.1 (invariant), on an eager trace ------------------ *)
  let run = Simulator.simulate ~steps:500 ~strategy:Strategy.eager impl in
  let holds =
    List.for_all (RM.lemma_4_1 p impl)
      (Tm_ioa.Execution.states run.Simulator.exec)
  in
  Format.printf "@.Lemma 4.1 on a 500-step eager trace: %s@."
    (if holds then "holds" else "VIOLATED");

  (* --- the mapping of Section 4.3 ------------------------------- *)
  let f = RM.mapping p in
  (match Mapping.check_exec ~source:impl ~target:spec f run.Simulator.exec with
  | Ok () -> Format.printf "Mapping check along the trace: OK@."
  | Error e ->
      Format.printf "Mapping check along the trace: FAILED@.  %a@."
        (Mapping.pp_failure impl) e);
  match Mapping.check_exhaustive ~source:impl ~target:spec f () with
  | Ok st ->
      Format.printf
        "Exhaustive mapping check: OK (%d product states, %d edges%s)@."
        st.Mapping.product_states st.Mapping.product_edges
        (if st.Mapping.truncated then ", TRUNCATED" else "")
  | Error e ->
      Format.printf "Exhaustive mapping check: FAILED@.  %a@."
        (Mapping.pp_failure impl) e
