(* The verification daemon: protocol framing (unit + fuzz), admission
   control, the verdict cache, and end-to-end robustness of forked
   daemon processes — duplicate requests answered byte-identically from
   the cache, floods shed instead of hanging, budget exhaustions
   chained through checkpoints, kill -9 mid-job recovered on restart,
   SIGTERM drained gracefully.  Daemons run as spawned child processes
   (their own metrics, their own crash domain), exactly like
   production. *)

module Json = Tm_obs.Json
module Protocol = Tm_serve.Protocol
module Cache = Tm_serve.Cache
module Admission = Tm_serve.Admission
module Server = Tm_serve.Server
module Snapshot = Tm_recover.Snapshot

(* ------------------------------------------------------------------ *)
(* protocol: reader units *)

let feed_all ?(chunks = [ 7 ]) rd s =
  (* slice [s] into the cyclic chunk sizes — exercises every partial
     header/payload boundary *)
  let n = String.length s in
  let rec go off i =
    if off < n then begin
      let sz = min (List.nth chunks (i mod List.length chunks)) (n - off) in
      Protocol.feed rd (Bytes.of_string (String.sub s off sz)) 0 sz;
      go (off + sz) (i + 1)
    end
  in
  go 0 0

let drain_events rd =
  let rec go acc =
    match Protocol.next rd with
    | Protocol.Frame p -> go (`Frame p :: acc)
    | Protocol.Oversized n -> go (`Oversized n :: acc)
    | Protocol.Await -> List.rev acc
  in
  go []

let event_str = function
  | `Frame p -> Printf.sprintf "frame(%S)" p
  | `Oversized n -> Printf.sprintf "oversized(%d)" n

let events_t =
  Alcotest.testable
    (fun fmt es ->
      Format.pp_print_string fmt (String.concat "; " (List.map event_str es)))
    ( = )

let reader_roundtrip () =
  let rd = Protocol.reader () in
  let payloads = [ "hello"; ""; "{\"op\":\"ping\"}"; String.make 1000 'z' ] in
  feed_all ~chunks:[ 1; 3; 2 ] rd
    (String.concat "" (List.map Protocol.encode_frame payloads));
  Alcotest.check events_t "all frames decoded"
    (List.map (fun p -> `Frame p) payloads)
    (drain_events rd);
  Alcotest.(check bool) "boundary" true (Protocol.at_frame_boundary rd)

let reader_oversized_resync () =
  let rd = Protocol.reader ~max_frame:8 () in
  let stream =
    Protocol.encode_frame "ok1"
    ^ Protocol.encode_frame (String.make 100 'x')
    ^ Protocol.encode_frame "ok2"
  in
  feed_all ~chunks:[ 5 ] rd stream;
  Alcotest.check events_t "oversized reported once, framing recovers"
    [ `Frame "ok1"; `Oversized 100; `Frame "ok2" ]
    (drain_events rd);
  Alcotest.(check bool) "boundary" true (Protocol.at_frame_boundary rd)

let reader_truncation_visible () =
  let rd = Protocol.reader () in
  let whole = Protocol.encode_frame "abcdef" in
  feed_all rd (String.sub whole 0 (String.length whole - 2));
  Alcotest.check events_t "no frame from a cut-off payload" []
    (drain_events rd);
  Alcotest.(check bool) "mid-frame EOF detectable" false
    (Protocol.at_frame_boundary rd)

(* ------------------------------------------------------------------ *)
(* protocol: fuzz *)

let expected_of_clean_script items =
  List.filter_map
    (function
      | Gen.Wire_frame p -> Some (`Frame p)
      | Gen.Wire_oversized n -> Some (`Oversized n)
      | _ -> None)
    items

let fuzz_clean_decode =
  Gen.check_holds "fuzz: chunked decode matches script" ~count:300
    ~print:(fun (s, c) ->
      Printf.sprintf "%s / chunks=%s" (Gen.print_frame_script s)
        (String.concat "," (List.map string_of_int c)))
    QCheck2.Gen.(pair Gen.clean_frame_script Gen.chunk_sizes)
    (fun (script, chunks) ->
      let chunks = if chunks = [] then [ 1 ] else chunks in
      let rd = Protocol.reader ~max_frame:Gen.fuzz_max_frame () in
      feed_all ~chunks rd (Gen.render_frame_script script);
      drain_events rd = expected_of_clean_script script
      && Protocol.at_frame_boundary rd)

let fuzz_reader_total =
  Gen.check_holds "fuzz: reader total on hostile bytes" ~count:300
    ~print:(fun (s, c) ->
      Printf.sprintf "%s / chunks=%s" (Gen.print_frame_script s)
        (String.concat "," (List.map string_of_int c)))
    QCheck2.Gen.(pair Gen.frame_script Gen.chunk_sizes)
    (fun (script, chunks) ->
      let chunks = if chunks = [] then [ 1 ] else chunks in
      let rd = Protocol.reader ~max_frame:Gen.fuzz_max_frame () in
      let stream = Gen.render_frame_script script in
      feed_all ~chunks rd stream;
      (* never raises, terminates, and every decoded frame fits the
         limit the reader was given *)
      List.for_all
        (function
          | `Frame p -> String.length p <= Gen.fuzz_max_frame
          | `Oversized n -> n > Gen.fuzz_max_frame)
        (drain_events rd))

(* ------------------------------------------------------------------ *)
(* admission control *)

let admission_unit () =
  let adm = Admission.create ~max_depth:2 in
  let admit fp r = Admission.try_admit adm ~fingerprint:fp ~request:Json.Null r in
  (match admit "a" 1 with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "first request should be admitted");
  (match admit "a" 2 with
  | Admission.Coalesced j ->
      Alcotest.(check (list int)) "both respondents" [ 2; 1 ] j.respondents
  | _ -> Alcotest.fail "duplicate should coalesce");
  (match admit "b" 3 with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "second distinct request fits");
  (match admit "c" 4 with
  | Admission.Shed hint -> Alcotest.(check bool) "hint > 0" true (hint > 0.)
  | _ -> Alcotest.fail "queue of 2 must shed the third");
  (* the running job keeps coalescing until finished *)
  let running = Option.get (Admission.pop adm) in
  (match admit "a" 5 with
  | Admission.Coalesced _ -> ()
  | _ -> Alcotest.fail "running job should still coalesce");
  Admission.finished adm running ~note_wall_s:0.2;
  (* once finished, "a" no longer coalesces — it re-enters the queue *)
  (match admit "a" 6 with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "finished job must be re-admitted, not coalesced");
  (match admit "d" 7 with
  | Admission.Shed _ -> ()
  | _ -> Alcotest.fail "queue of 2 must shed again once refilled");
  let drained = Admission.drain adm in
  Alcotest.(check int) "drain returns the queue" 2 (List.length drained);
  Alcotest.(check int) "drain empties" 0 (Admission.depth adm)

let admission_capacity () =
  let adm = Admission.create ~max_depth:1 in
  Alcotest.(check int) "default capacity" 1 (Admission.capacity adm);
  (* teach the EWMA a real job duration so prices are above the floor *)
  (match Admission.try_admit adm ~fingerprint:"warm" ~request:Json.Null () with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "warmup admit");
  let j = Option.get (Admission.pop adm) in
  Admission.finished adm j ~note_wall_s:2.0;
  (* refill the queue so further admits shed with a priced hint *)
  (match Admission.try_admit adm ~fingerprint:"full" ~request:Json.Null () with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "refill admit");
  let hint_at n =
    Admission.set_capacity adm n;
    match
      Admission.try_admit adm ~fingerprint:(Printf.sprintf "f%d" n)
        ~request:Json.Null ()
    with
    | Admission.Shed h -> h
    | _ -> Alcotest.fail "full queue must shed"
  in
  let h1 = hint_at 1 in
  let h4 = hint_at 4 in
  let h0 = hint_at 0 in
  let h1' = hint_at 1 in
  Alcotest.(check bool) "live capacity prices the hint" true
    (h4 < h1 && h1 > 0.1);
  Alcotest.(check bool) "zero capacity floors at 1s" true (h0 >= 1.0);
  Alcotest.(check bool)
    "capacity recovery restores the old price" true
    (Float.abs (h1' -. h1) < 1e-9);
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Admission.set_capacity: capacity < 0") (fun () ->
      Admission.set_capacity adm (-1))

(* ------------------------------------------------------------------ *)
(* protocol: deadline reads *)

let protocol_read_deadline () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
    (fun () ->
      (* nothing arrives: the deadline fires instead of blocking *)
      let t0 = Unix.gettimeofday () in
      (match
         Protocol.read_frame_deadline (Protocol.reader ()) a
           ~deadline:(t0 +. 0.2)
       with
      | exception Protocol.Timeout -> ()
      | _ -> Alcotest.fail "expected Timeout on a silent peer");
      let waited = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "waited about the deadline" true
        (waited >= 0.15 && waited < 5.);
      (* a frame arrives in time: delivered, not timed out *)
      Protocol.write_frame b "hello";
      Alcotest.(check (option string))
        "frame beats deadline" (Some "hello")
        (Protocol.read_frame_deadline (Protocol.reader ()) a
           ~deadline:(Unix.gettimeofday () +. 5.)))

(* ------------------------------------------------------------------ *)
(* verdict cache *)

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tm_serve_test_%d_%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let cache_roundtrip () =
  let dir = tmp_dir () in
  let c = Cache.create ~dir () in
  Alcotest.(check (option string)) "miss" None (Cache.find c ~fingerprint:"fp1");
  Cache.store c ~fingerprint:"fp1" "verdict-1";
  Alcotest.(check (option string)) "hit" (Some "verdict-1")
    (Cache.find c ~fingerprint:"fp1");
  (* a new process with the same directory sees the verdict *)
  let c2 = Cache.create ~dir () in
  Alcotest.(check (option string)) "disk hit" (Some "verdict-1")
    (Cache.find c2 ~fingerprint:"fp1");
  (* same digest file, different fingerprint: not trusted *)
  Alcotest.(check (option string)) "other fp misses" None
    (Cache.find c2 ~fingerprint:"fp2")

let cache_corruption_dropped () =
  let dir = tmp_dir () in
  let c = Cache.create ~dir () in
  Cache.store c ~fingerprint:"fp1" "verdict-1";
  let path = Filename.concat dir (Cache.digest "fp1" ^ ".tmv") in
  Alcotest.(check bool) "stored on disk" true (Sys.file_exists path);
  (* flip a payload byte: CRC must reject, and the entry is deleted *)
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  let b = Bytes.of_string b in
  Bytes.set b (n - 1) (Char.chr (Char.code (Bytes.get b (n - 1)) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  let c2 = Cache.create ~dir () in
  Alcotest.(check (option string)) "corrupt entry is a miss" None
    (Cache.find c2 ~fingerprint:"fp1");
  Alcotest.(check bool) "and is removed" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* forked daemons *)

let fischer_req =
  "{\"op\":\"verify\",\"system\":\"fischer\",\"params\":{\"n\":3},\"item\":0}"

let sock_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tm_srv_%d_%d.sock" (Unix.getpid ()) !counter)

(* Daemons run as real child processes (their own metrics, their own
   crash domain) via [serve_helper.exe] — [Unix.fork] is forbidden once
   the par suite has spawned domains, so we [create_process] instead. *)
let spawn_server cfg =
  let helper =
    Filename.concat (Filename.dirname Sys.executable_name) "serve_helper.exe"
  in
  let args =
    [
      helper;
      "socket=" ^ cfg.Server.socket_path;
      "queue=" ^ string_of_int cfg.Server.max_queue;
      "max_frame=" ^ string_of_int cfg.Server.max_frame;
      "attempts=" ^ string_of_int cfg.Server.attempts;
      Printf.sprintf "backoff_ms=%g" (cfg.Server.backoff_s *. 1000.);
    ]
    @ (match cfg.Server.state_dir with
      | Some d -> [ "state_dir=" ^ d ]
      | None -> [])
    @ (match cfg.Server.max_deadline_s with
      | Some s -> [ Printf.sprintf "deadline_ms=%g" (s *. 1000.) ]
      | None -> [])
    @ (if cfg.Server.workers > 0 then
         [
           "workers=" ^ string_of_int cfg.Server.workers;
           "quarantine=" ^ string_of_int cfg.Server.quarantine_after;
           Printf.sprintf "hb_timeout_ms=%g" (cfg.Server.hb_timeout_s *. 1000.);
         ]
       else [])
    @
    match cfg.Server.chaos_kill_every_s with
    | Some s -> [ Printf.sprintf "chaos_kill_ms=%g" (s *. 1000.) ]
    | None -> []
  in
  let pid =
    Unix.create_process helper (Array.of_list args) Unix.stdin Unix.stdout
      Unix.stderr
  in
  (* wait until the daemon answers a probe connect *)
  let rec wait n =
    if n = 0 then Alcotest.fail "daemon did not come up";
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let ok =
      match Unix.connect fd (Unix.ADDR_UNIX cfg.Server.socket_path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if not ok then begin
      Unix.sleepf 0.025;
      wait (n - 1)
    end
  in
  wait 400;
  pid

(* One test-side connection.  The reader must persist across [recv]
   calls: pipelined responses coalesce into one [read], and a
   throwaway reader would silently drop the frames it had already
   buffered — the daemon-side regression that [daemon_pipeline]
   originally caught. *)
type cx = { cfd : Unix.file_descr; crd : Protocol.reader }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (* a hung daemon must fail the test, not hang the suite *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.;
  { cfd = fd; crd = Protocol.reader () }

let send cx payload = Protocol.write_frame cx.cfd payload
let close_cx cx = try Unix.close cx.cfd with Unix.Unix_error _ -> ()

let recv cx =
  match Protocol.read_frame_with cx.crd cx.cfd with
  | Some payload -> (
      match Json.of_string payload with
      | Ok doc -> doc
      | Error m -> Alcotest.fail ("response is not JSON: " ^ m))
  | None -> Alcotest.fail "daemon closed before responding"

let status doc = Option.value (Protocol.status_of_response doc) ~default:"?"

let verdict_text doc =
  match Json.member "verdict" doc with
  | Some v -> Json.to_string v
  | None -> Alcotest.fail ("response has no verdict: " ^ Json.to_string doc)

let shutdown_server pid sock =
  (match connect sock with
  | cx ->
      send cx "{\"op\":\"shutdown\"}";
      ignore (Protocol.read_frame_with cx.crd cx.cfd);
      close_cx cx
  | exception Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

let base_cfg sock =
  {
    (Server.default_config ~socket_path:sock) with
    Server.backoff_s = 0.01;
    max_deadline_s = Some 60.;
  }

(* The regression scenario from bring-up: one pipelined connection
   sending ping + job + duplicate job + stats must get exactly four
   responses, and the duplicate's verdict must be byte-identical
   whether it was coalesced onto the in-flight job or served from the
   cache. *)
let daemon_pipeline () =
  let sock = sock_path () in
  let cfg = { (base_cfg sock) with Server.state_dir = Some (tmp_dir ()) } in
  let pid = spawn_server cfg in
  Fun.protect
    ~finally:(fun () -> shutdown_server pid sock)
    (fun () ->
      let cx = connect sock in
      List.iter (send cx)
        [ "{\"op\":\"ping\"}"; fischer_req; fischer_req; "{\"op\":\"stats\"}" ];
      let replies = List.init 4 (fun _ -> recv cx) in
      close_cx cx;
      let verdicts =
        List.filter_map
          (fun d ->
            if Json.member "verdict" d <> None && Json.member "cached" d <> None
            then Some (verdict_text d)
            else None)
          replies
      in
      Alcotest.(check int) "two job responses" 2 (List.length verdicts);
      (match verdicts with
      | [ a; b ] -> Alcotest.(check string) "byte-identical verdicts" a b
      | _ -> assert false);
      Alcotest.(check (list string))
        "every response structured, none lost"
        [ "ok"; "ok"; "ok"; "ok" ]
        (List.map status replies))

(* Budget exhaustion chains through checkpoints: a per-request zone
   limit far below the fixpoint still verifies, because each supervised
   attempt resumes the previous frontier with a re-based budget — and
   the verdict is byte-identical to an unbudgeted run.  The limit must
   stay below the LU fixpoint (~337 stored zones) so chaining is
   actually exercised, while attempts x limit must cover the non-LU
   exploration (~913 zones) — CI runs this suite under TM_NO_LU=1
   too. *)
let daemon_budget_chaining () =
  let run_one ~req =
    let sock = sock_path () in
    let cfg =
      {
        (base_cfg sock) with
        Server.state_dir = Some (tmp_dir ());
        attempts = 6;
      }
    in
    let pid = spawn_server cfg in
    Fun.protect
      ~finally:(fun () -> shutdown_server pid sock)
      (fun () ->
        let cx = connect sock in
        send cx req;
        let doc = recv cx in
        close_cx cx;
        doc)
  in
  let free = run_one ~req:fischer_req in
  let capped =
    run_one
      ~req:
        "{\"op\":\"verify\",\"system\":\"fischer\",\"params\":{\"n\":3},\
         \"item\":0,\"limit\":200}"
  in
  Alcotest.(check string) "uncapped verifies" "ok" (status free);
  Alcotest.(check string) "capped verifies via chaining" "ok" (status capped);
  Alcotest.(check string) "identical verdict bytes" (verdict_text free)
    (verdict_text capped)

(* Flood a queue of depth 0: every job is shed with a structured
   UNKNOWN + retry hint, nothing hangs, and the daemon still answers
   pings afterwards. *)
let daemon_sheds_under_flood () =
  let sock = sock_path () in
  let cfg = { (base_cfg sock) with Server.max_queue = 0 } in
  let pid = spawn_server cfg in
  Fun.protect
    ~finally:(fun () -> shutdown_server pid sock)
    (fun () ->
      let cx = connect sock in
      let n = 8 in
      for _ = 1 to n do
        send cx fischer_req
      done;
      let replies = List.init n (fun _ -> recv cx) in
      List.iter
        (fun d ->
          Alcotest.(check string) "shed is unknown" "unknown" (status d);
          Alcotest.(check bool) "carries retry hint" true
            (Json.member "retry_after_s" d <> None))
        replies;
      send cx "{\"op\":\"ping\"}";
      Alcotest.(check string) "alive after flood" "ok" (status (recv cx));
      close_cx cx)

(* Hostile input against a live daemon: framed garbage payloads are
   answered with structured errors on the same connection; raw byte
   vomit and truncated frames at worst kill that one connection — a
   fresh connection always works. *)
let daemon_survives_garbage () =
  let sock = sock_path () in
  let cfg = { (base_cfg sock) with Server.max_frame = 4096 } in
  let pid = spawn_server cfg in
  Fun.protect
    ~finally:(fun () -> shutdown_server pid sock)
    (fun () ->
      let prng = Tm_base.Prng.create 0xFEED in
      let rand_string n =
        String.init n (fun _ -> Char.chr (Tm_base.Prng.int prng 256))
      in
      (* framed garbage: every frame gets exactly one error back *)
      let cx = connect sock in
      for i = 1 to 10 do
        send cx (rand_string (i * 7));
        Alcotest.(check string) "framed garbage answered" "error"
          (status (recv cx))
      done;
      (* an oversized announcement is answered and framing survives *)
      send cx (String.make 5000 'x');
      Alcotest.(check string) "oversized answered" "error" (status (recv cx));
      send cx "{\"op\":\"ping\"}";
      Alcotest.(check string) "same connection usable" "ok" (status (recv cx));
      close_cx cx;
      (* raw unframed bytes, then vanish mid-frame *)
      for i = 1 to 5 do
        let cx = connect sock in
        let junk = rand_string (20 * i) in
        ignore
          (Unix.write cx.cfd (Bytes.of_string junk) 0 (String.length junk));
        close_cx cx
      done;
      let cx = connect sock in
      send cx "{\"op\":\"ping\"}";
      Alcotest.(check string) "daemon alive after byte vomit" "ok"
        (status (recv cx));
      (* malformed requests: structured errors, not crashes *)
      List.iter
        (fun req ->
          send cx req;
          Alcotest.(check string)
            (Printf.sprintf "rejected: %s" req)
            "error" (status (recv cx)))
        [
          "{\"op\":\"warp\"}";
          "{\"system\":\"vax\"}";
          "{\"engine\":\"gpu\"}";
          "{\"system\":\"rm\",\"params\":{\"q\":1}}";
          "{\"system\":\"rm\",\"params\":{\"k\":\"three\"}}";
          "{\"system\":\"rm\",\"item\":99}";
          "{\"op\":\"simulate\",\"strategy\":\"clairvoyant\"}";
          "[1,2,3]";
          (* rm with c1 > c2: constructor validation, contained *)
          "{\"system\":\"rm\",\"params\":{\"c1\":9,\"c2\":1}}";
        ];
      close_cx cx)

(* kill -9 mid-job, restart on the same state dir, resubmit: the
   recovered verdict must be byte-identical to an undisturbed daemon's.
   Whether the kill landed mid-computation (checkpoint or recompute)
   or just after (cache hit) the bytes must not change. *)
let daemon_kill9_restart () =
  let state = tmp_dir () in
  let sock = sock_path () in
  let reference =
    let sock = sock_path () in
    let cfg = { (base_cfg sock) with Server.state_dir = Some (tmp_dir ()) } in
    let pid = spawn_server cfg in
    Fun.protect
      ~finally:(fun () -> shutdown_server pid sock)
      (fun () ->
        let cx = connect sock in
        send cx fischer_req;
        let doc = recv cx in
        close_cx cx;
        verdict_text doc)
  in
  let cfg = { (base_cfg sock) with Server.state_dir = Some state } in
  let pid = spawn_server cfg in
  let cx = connect sock in
  send cx fischer_req;
  (* let the job start, then pull the plug — no drain, no checkpoint
     flush beyond what the engine already wrote *)
  Unix.sleepf 0.3;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  close_cx cx;
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let pid2 = spawn_server cfg in
  Fun.protect
    ~finally:(fun () -> shutdown_server pid2 sock)
    (fun () ->
      let cx = connect sock in
      send cx fischer_req;
      let doc = recv cx in
      close_cx cx;
      Alcotest.(check string) "recovered verdict" "ok" (status doc);
      Alcotest.(check string) "byte-identical to undisturbed daemon"
        reference (verdict_text doc))

(* SIGTERM mid-job: the daemon answers the in-flight job (UNKNOWN if it
   had to stop, OK if it won the race), drains, unlinks its socket and
   exits 0. *)
let daemon_sigterm_drains () =
  let sock = sock_path () in
  let cfg = { (base_cfg sock) with Server.state_dir = Some (tmp_dir ()) } in
  let pid = spawn_server cfg in
  let cx = connect sock in
  send cx fischer_req;
  Unix.sleepf 0.2;
  Unix.kill pid Sys.sigterm;
  let doc = recv cx in
  Alcotest.(check bool)
    (Printf.sprintf "in-flight job answered (%s)" (status doc))
    true
    (List.mem (status doc) [ "ok"; "unknown" ]);
  close_cx cx;
  let _, exit_status = Unix.waitpid [] pid in
  Alcotest.(check bool) "clean exit" true (exit_status = Unix.WEXITED 0);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock)

(* ------------------------------------------------------------------ *)
(* worker processes *)

module Workers = Tm_serve.Workers

let test_caps =
  {
    Workers.state_dir = None;
    max_limit = Some 200_000;
    max_deadline_s = Some 60.;
    domains = 1;
    attempts = 3;
    backoff_s = 0.01;
    default_engine = "auto";
  }

let req_json s =
  match Json.of_string s with
  | Ok j -> j
  | Error m -> Alcotest.fail ("bad request literal: " ^ m)

(* Drive a pool directly (this test binary re-execs itself as the
   worker): the verdict that comes back over the socketpair must be
   byte-identical to the shared runner executing in-process. *)
let workers_pool_roundtrip () =
  let requests =
    [
      fischer_req;
      "{\"op\":\"verify\",\"system\":\"fischer\",\"params\":{\"n\":2},\
       \"item\":0}";
    ]
  in
  let inproc =
    List.map
      (fun r ->
        match Workers.execute test_caps (req_json r) with
        | Workers.E_ok v -> Json.to_string v
        | _ -> Alcotest.fail "in-process run must verify")
      requests
  in
  let pool = Workers.create test_caps ~n:2 in
  Fun.protect
    ~finally:(fun () -> Workers.shutdown pool)
    (fun () ->
      let results = Hashtbl.create 4 in
      let todo = ref requests in
      let deadline = Unix.gettimeofday () +. 60. in
      while
        Hashtbl.length results < List.length requests
        && Unix.gettimeofday () < deadline
      do
        (match !todo with
        | r :: rest when Workers.has_idle pool ->
            if Workers.submit pool ~fingerprint:r ~request:(req_json r) r
            then todo := rest
        | _ -> ());
        let handle = function
          | Workers.Completed (r, Workers.E_ok v, _) ->
              Hashtbl.replace results r (Json.to_string v)
          | Workers.Completed (r, _, _) ->
              Alcotest.fail ("worker run must verify: " ^ r)
          | Workers.Crash_retry r -> todo := r :: !todo
          | Workers.Crash_quarantined (r, why) ->
              Alcotest.fail ("unexpected quarantine of " ^ r ^ ": " ^ why)
        in
        (match Unix.select (Workers.fds pool) [] [] 0.02 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | ready, _, _ ->
            List.iter
              (fun fd -> List.iter handle (Workers.on_readable pool fd))
              ready);
        List.iter handle (Workers.tick pool)
      done;
      List.iter2
        (fun r expect ->
          match Hashtbl.find_opt results r with
          | Some got ->
              Alcotest.(check string) "pool verdict byte-identical" expect got
          | None -> Alcotest.fail ("pool never answered " ^ r))
        requests inproc)

(* A --workers 2 daemon under a flood of pipelined jobs: every request
   answered, verdicts byte-identical to a --workers 0 daemon on the
   same mix. *)
let daemon_workers_byte_identical () =
  let mix =
    [
      fischer_req;
      "{\"op\":\"verify\",\"system\":\"fischer\",\"params\":{\"n\":2},\
       \"item\":0}";
      fischer_req (* duplicate: coalesced or cached *);
      "{\"op\":\"verify\",\"system\":\"fischer\",\"params\":{\"n\":3,\
       \"b\":3},\"item\":0}";
    ]
  in
  let run_daemon cfg =
    let pid = spawn_server cfg in
    Fun.protect
      ~finally:(fun () -> shutdown_server pid cfg.Server.socket_path)
      (fun () ->
        let cx = connect cfg.Server.socket_path in
        List.iteri
          (fun i r ->
            match Json.of_string r with
            | Ok (Json.Obj kvs) ->
                send cx
                  (Json.to_string (Json.Obj (("id", Json.Int i) :: kvs)))
            | _ -> assert false)
          mix;
        let replies = List.init (List.length mix) (fun _ -> recv cx) in
        close_cx cx;
        (* responses may complete out of order across workers: key them
           back by id *)
        List.map
          (fun doc ->
            match Option.bind (Json.member "id" doc) Json.int_opt with
            | Some id -> (id, (status doc, verdict_text doc))
            | None -> Alcotest.fail "response lost its id")
          replies
        |> List.sort compare)
  in
  let with_workers =
    run_daemon
      {
        (base_cfg (sock_path ())) with
        Server.state_dir = Some (tmp_dir ());
        workers = 2;
      }
  in
  let in_process =
    run_daemon
      { (base_cfg (sock_path ())) with Server.state_dir = Some (tmp_dir ()) }
  in
  List.iter2
    (fun (id_w, (st_w, v_w)) (id_i, (st_i, v_i)) ->
      Alcotest.(check int) "same response set" id_i id_w;
      Alcotest.(check string) "same status" st_i st_w;
      Alcotest.(check string)
        (Printf.sprintf "verdict %d byte-identical across modes" id_w)
        v_i v_w)
    with_workers in_process

(* Chaos: a --workers 2 daemon whose workers are SIGKILLed every 150 ms
   mid-flood.  Every job must still be answered OK (crashed jobs are
   resubmitted to fresh workers) and the daemon itself must survive.
   Quarantine is effectively disabled: random murder must not ban
   innocent fingerprints. *)
let daemon_chaos_no_loss () =
  let sock = sock_path () in
  let cfg =
    {
      (base_cfg sock) with
      Server.state_dir = Some (tmp_dir ());
      workers = 2;
      quarantine_after = 1_000_000;
      chaos_kill_every_s = Some 0.15;
    }
  in
  let pid = spawn_server cfg in
  Fun.protect
    ~finally:(fun () -> shutdown_server pid sock)
    (fun () ->
      let cx = connect sock in
      let jobs =
        [
          fischer_req;
          "{\"op\":\"verify\",\"system\":\"fischer\",\"params\":{\"n\":3,\
           \"b\":3},\"item\":0}";
          "{\"op\":\"verify\",\"system\":\"fischer\",\"params\":{\"n\":2},\
           \"item\":0}";
          "{\"op\":\"verify\",\"system\":\"fischer\",\"params\":{\"n\":2,\
           \"b\":3},\"item\":0}";
        ]
      in
      List.iter (send cx) jobs;
      let replies = List.init (List.length jobs) (fun _ -> recv cx) in
      List.iter
        (fun doc ->
          Alcotest.(check string)
            (Printf.sprintf "chaos victim still answered (%s)"
               (Json.to_string doc))
            "ok" (status doc))
        replies;
      send cx "{\"op\":\"ping\"}";
      Alcotest.(check string) "daemon alive after chaos" "ok"
        (status (recv cx));
      close_cx cx)

(* A poison job (the worker SIGKILLs itself on a marker in the payload)
   crashes [quarantine_after] workers, then is quarantined: the pending
   request answers a structured error naming the quarantine, later
   requests for the same fingerprint are refused at admission, and
   other jobs still verify. *)
let daemon_poison_quarantine () =
  let marker = "tm_poison_7f3a" in
  let sock = sock_path () in
  let cfg =
    {
      (base_cfg sock) with
      Server.state_dir = Some (tmp_dir ());
      workers = 1;
      quarantine_after = 2;
    }
  in
  Unix.putenv "TM_WORKER_POISON" marker;
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "TM_WORKER_POISON" "")
      (fun () -> spawn_server cfg)
  in
  Fun.protect
    ~finally:(fun () -> shutdown_server pid sock)
    (fun () ->
      let cx = connect sock in
      let poison_req =
        Printf.sprintf
          "{\"id\":\"%s\",\"op\":\"verify\",\"system\":\"fischer\",\
           \"params\":{\"n\":2},\"item\":0}"
          marker
      in
      send cx poison_req;
      let doc = recv cx in
      Alcotest.(check string) "poison job answered as error" "error"
        (status doc);
      (match Option.bind (Json.member "error" doc) Json.string_opt with
      | Some m ->
          Alcotest.(check bool)
            (Printf.sprintf "error names the quarantine (%s)" m)
            true
            (String.length m >= 11 && String.sub m 0 11 = "quarantined")
      | None -> Alcotest.fail "quarantine error carries no message");
      (* the fingerprint is now banned at the door *)
      send cx poison_req;
      Alcotest.(check string) "refused on arrival" "error" (status (recv cx));
      (* an innocent job with a different fingerprint still verifies *)
      send cx fischer_req;
      Alcotest.(check string) "pool recovered for clean jobs" "ok"
        (status (recv cx));
      close_cx cx)

(* SIGTERM with jobs on workers: in-flight jobs are answered (OK or
   UNKNOWN), the daemon exits 0, the socket is unlinked, and no worker
   process is left behind. *)
let daemon_sigterm_drains_workers () =
  let sock = sock_path () in
  let cfg =
    {
      (base_cfg sock) with
      Server.state_dir = Some (tmp_dir ());
      workers = 2;
    }
  in
  let pid = spawn_server cfg in
  let cx = connect sock in
  send cx fischer_req;
  send cx
    "{\"op\":\"verify\",\"system\":\"fischer\",\"params\":{\"n\":3,\"b\":3},\
     \"item\":0}";
  Unix.sleepf 0.2;
  Unix.kill pid Sys.sigterm;
  let docs = List.init 2 (fun _ -> recv cx) in
  List.iter
    (fun doc ->
      Alcotest.(check bool)
        (Printf.sprintf "in-flight worker job answered (%s)" (status doc))
        true
        (List.mem (status doc) [ "ok"; "unknown" ]))
    docs;
  close_cx cx;
  let _, exit_status = Unix.waitpid [] pid in
  Alcotest.(check bool) "clean exit" true (exit_status = Unix.WEXITED 0);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock)

let suite =
  [
    Alcotest.test_case "protocol: chunked roundtrip" `Quick reader_roundtrip;
    Alcotest.test_case "protocol: oversized reported, framing resyncs" `Quick
      reader_oversized_resync;
    Alcotest.test_case "protocol: truncation visible at EOF" `Quick
      reader_truncation_visible;
    fuzz_clean_decode;
    fuzz_reader_total;
    Alcotest.test_case "admission: coalesce, shed, drain" `Quick
      admission_unit;
    Alcotest.test_case "cache: memory + disk roundtrip" `Quick cache_roundtrip;
    Alcotest.test_case "cache: corruption detected and dropped" `Quick
      cache_corruption_dropped;
    Alcotest.test_case "daemon: pipelined ping/job/dup/stats" `Slow
      daemon_pipeline;
    Alcotest.test_case "daemon: budget chains through checkpoints" `Slow
      daemon_budget_chaining;
    Alcotest.test_case "daemon: flood sheds, never hangs" `Slow
      daemon_sheds_under_flood;
    Alcotest.test_case "daemon: survives garbage, truncation, oversize" `Slow
      daemon_survives_garbage;
    Alcotest.test_case "daemon: kill -9 then restart recovers verdict" `Slow
      daemon_kill9_restart;
    Alcotest.test_case "daemon: SIGTERM drains gracefully" `Slow
      daemon_sigterm_drains;
    Alcotest.test_case "admission: capacity scales shed prices" `Quick
      admission_capacity;
    Alcotest.test_case "protocol: read_frame_deadline times out" `Quick
      protocol_read_deadline;
    Alcotest.test_case "workers: pool verdicts byte-identical" `Slow
      workers_pool_roundtrip;
    Alcotest.test_case "daemon: --workers 2 byte-identical to --workers 0"
      `Slow daemon_workers_byte_identical;
    Alcotest.test_case "daemon: chaos kills lose no job" `Slow
      daemon_chaos_no_loss;
    Alcotest.test_case "daemon: poison job quarantined" `Slow
      daemon_poison_quarantine;
    Alcotest.test_case "daemon: SIGTERM drains worker pool" `Slow
      daemon_sigterm_drains_workers;
  ]
