module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Prng = Tm_base.Prng
module Tseq = Tm_timed.Tseq
module Condition = Tm_timed.Condition
module Semantics = Tm_timed.Semantics
module RM = Tm_systems.Resource_manager
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
open Gen

(* ------------------------------------------------------------------ *)
(* Handcrafted checks of Definitions 2.2 and 3.1 on an abstract alphabet *)

type ev = A | B

(* A condition: after a B step, an A within [2, 4]; disabled by state 9. *)
let cond =
  Condition.make ~name:"test"
    ~t_step:(fun _ act _ -> act = B)
    ~bounds:(Interval.of_ints 2 4)
    ~in_pi:(fun act -> act = A)
    ~in_s:(fun s -> s = 9)
    ()

let seq moves = Tseq.of_moves 0 (List.map (fun (a, t, s) -> ((a, t), s)) moves)

let test_satisfied () =
  (* B at 1, A at 4 (= 1+3, inside [3,5]) *)
  let s = seq [ (B, q 1, 1); (A, q 4, 2) ] in
  Alcotest.(check int) "no violations" 0
    (List.length (Semantics.satisfies s cond))

let test_upper_violation_by_late_event () =
  (* B at 1, A at 6 > 1+4 *)
  let s = seq [ (B, q 1, 1); (A, q 6, 2) ] in
  match Semantics.satisfies s cond with
  | [ v ] ->
      Alcotest.(check bool) "upper" true (v.Semantics.vwhich = Semantics.Upper);
      Alcotest.(check int) "trigger" 1 v.Semantics.vtrigger
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs))

let test_upper_violation_by_truncation () =
  (* B at 1, sequence ends at 3 < 5: complete semantics violated,
     semi-satisfaction excused *)
  let s = seq [ (B, q 1, 1); (B, q 3, 1) ] in
  (* second B retriggers too; both deadlines pending *)
  Alcotest.(check bool) "satisfies finds violations" true
    (Semantics.satisfies s cond <> []);
  Alcotest.(check int) "semi excuses pending deadlines" 0
    (List.length (Semantics.semi_satisfies s cond))

let test_lower_violation () =
  (* B at 1, A at 2 < 1+2 *)
  let s = seq [ (B, q 1, 1); (A, q 2, 2) ] in
  (match Semantics.satisfies s cond with
  | [ v ] ->
      Alcotest.(check bool) "lower" true (v.Semantics.vwhich = Semantics.Lower);
      Alcotest.(check (option int)) "offender" (Some 2) v.Semantics.voffender
  | _ -> Alcotest.fail "expected exactly one violation");
  (* the lower bound is a safety property: same verdict under semi *)
  Alcotest.(check int) "semi agrees" 1
    (List.length (Semantics.semi_satisfies s cond))

let test_disabling_set_excuses_upper () =
  (* B at 1, then state 9 at time 3: measurement disabled *)
  let s = seq [ (B, q 1, 1); (A, q 3, 9); (B, q 8, 1); (A, q 11, 2) ] in
  (* note: A at 3 is fine (1+2 <= 3 <= 1+4); s=9 also disables.
     B at 8 rearms; A at 11 within [10, 12]. *)
  Alcotest.(check int) "all satisfied" 0
    (List.length (Semantics.satisfies s cond))

let test_disabling_set_excuses_lower () =
  (* A lower-bound offense is forgiven when an S-state strictly
     precedes the Pi event (Definition 2.2, condition 2). *)
  let c =
    Condition.make ~name:"t2"
      ~t_step:(fun _ act s -> act = B && s <> 9)
      ~bounds:(Interval.of_ints 5 10)
      ~in_pi:(fun act -> act = A)
      ~in_s:(fun s -> s = 9)
      ()
  in
  let bad = seq [ (B, q 1, 1); (A, q 2, 2) ] in
  Alcotest.(check int) "violation without intervening S" 1
    (List.length (Semantics.satisfies bad c));
  let s = seq [ (B, q 1, 1); (B, qq 3 2, 9); (A, q 2, 2) ] in
  Alcotest.(check int) "excused by S" 0
    (List.length (Semantics.satisfies s c))

let test_start_trigger () =
  let c =
    Condition.make ~name:"st"
      ~t_start:(fun s -> s = 0)
      ~bounds:(Interval.of_ints 1 3)
      ~in_pi:(fun act -> act = A)
      ()
  in
  Alcotest.(check int) "A at 2 ok" 0
    (List.length (Semantics.satisfies (seq [ (A, q 2, 1) ]) c));
  Alcotest.(check int) "A at 4 late (and still pending)" 1
    (List.length (Semantics.satisfies (seq [ (A, q 4, 1) ]) c));
  Alcotest.(check int) "A at 1/2 early" 1
    (List.length (Semantics.satisfies (seq [ (A, qq 1 2, 1) ]) c));
  Alcotest.(check int) "empty sequence violates complete" 1
    (List.length (Semantics.satisfies (seq []) c));
  Alcotest.(check int) "empty sequence semi-satisfies" 0
    (List.length (Semantics.semi_satisfies (seq []) c))

let test_boundary_times () =
  (* boundary equalities: t = trigger + b_l is legal, t = trigger + b_u
     is legal *)
  let at t = seq [ (B, q 1, 1); (A, q t, 2) ] in
  Alcotest.(check int) "exactly lower" 0
    (List.length (Semantics.satisfies (at 3) cond));
  Alcotest.(check int) "exactly upper" 0
    (List.length (Semantics.satisfies (at 5) cond))

(* ------------------------------------------------------------------ *)
(* Lemma 2.1 / Corollary 2.2: Definition 2.1 agrees with the cond(C)
   conditions, on simulator traces and on perturbed (possibly invalid)
   variants. *)

let p = RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1
let sys = RM.system p
let bm = RM.boundmap p
let ub = Semantics.conds_of_boundmap sys bm

let random_trace seed len =
  let prng = Prng.create seed in
  let run =
    Simulator.simulate ~steps:len
      ~strategy:(Strategy.random ~prng ~denominator:3 ~cap:(q 2))
      (RM.impl p)
  in
  Simulator.project run

let perturb seed (s : ('a, 'b) Tseq.t) =
  let prng = Prng.create (seed * 31) in
  let moves =
    List.map
      (fun ((act, t), st) ->
        if Prng.int prng 4 = 0 then
          let delta = qq (Prng.int prng 5 - 2) 2 in
          ((act, Rational.max Rational.zero (Rational.add t delta)), st)
        else ((act, t), st))
      s.Tseq.moves
  in
  { s with Tseq.moves }

let lemma_2_1_agree seq =
  match Semantics.is_timed_execution ~complete:false sys bm seq with
  | Error _ -> true (* not an execution of A: Lemma 2.1 is vacuous *)
  | Ok direct ->
      let via_conds = Semantics.semi_satisfies_all seq ub in
      (direct = []) = (via_conds = [])

let prop_lemma_2_1_valid =
  check_holds "Lemma 2.1 on valid traces" QCheck2.Gen.(int_range 0 500)
    (fun seed -> lemma_2_1_agree (random_trace seed 40))

let prop_lemma_2_1_perturbed =
  check_holds "Lemma 2.1 on perturbed traces" QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let s = perturb seed (random_trace seed 40) in
      (not (Tseq.times_ok s)) || lemma_2_1_agree s)

let prop_simulator_traces_satisfy_ub =
  check_holds "Corollary 2.2: simulated traces semi-satisfy U_b"
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      Semantics.semi_satisfies_all (random_trace seed 60) ub = [])

let suite =
  [
    Alcotest.test_case "satisfied" `Quick test_satisfied;
    Alcotest.test_case "upper violated by late event" `Quick
      test_upper_violation_by_late_event;
    Alcotest.test_case "upper violated by truncation" `Quick
      test_upper_violation_by_truncation;
    Alcotest.test_case "lower violated" `Quick test_lower_violation;
    Alcotest.test_case "disabling set excuses upper" `Quick
      test_disabling_set_excuses_upper;
    Alcotest.test_case "disabling set excuses lower" `Quick
      test_disabling_set_excuses_lower;
    Alcotest.test_case "start trigger" `Quick test_start_trigger;
    Alcotest.test_case "boundary times legal" `Quick test_boundary_times;
    prop_lemma_2_1_valid;
    prop_lemma_2_1_perturbed;
    prop_simulator_traces_satisfy_ub;
  ]
