module Region = Tm_zones.Region
module Reach = Tm_zones.Reach
module RM = Tm_systems.Resource_manager
module IM = Tm_systems.Interrupt_manager
module SR = Tm_systems.Signal_relay
module TR = Tm_systems.Token_ring
module F = Tm_systems.Fischer
module FD = Tm_systems.Failure_detector
open Gen

let test_region_algebra () =
  let r0 = Region.initial ~nclocks:2 ~max_const:2 in
  (* both clocks at 0 *)
  Alcotest.(check bool) "x0 >= 0" true (Region.sat_ge r0 0 0);
  Alcotest.(check bool) "x0 >= 1 false" false (Region.sat_ge r0 0 1);
  Alcotest.(check bool) "x0 <= 0" true (Region.sat_le r0 0 0);
  (* elapse: both fractional in (0,1) *)
  let r1 = Region.time_successor r0 in
  Alcotest.(check bool) "changed" false (Region.equal r0 r1);
  Alcotest.(check bool) "x0 <= 1 in (0,1)" true (Region.sat_le r1 0 1);
  Alcotest.(check bool) "x0 >= 1 false in (0,1)" false (Region.sat_ge r1 0 1);
  (* elapse again: both reach 1 *)
  let r2 = Region.time_successor r1 in
  Alcotest.(check bool) "x0 >= 1 at 1" true (Region.sat_ge r2 0 1);
  Alcotest.(check bool) "x0 <= 1 at 1" true (Region.sat_le r2 0 1);
  (* reset splits the fractional order *)
  let r3 = Region.reset (Region.time_successor r2) 0 in
  Alcotest.(check bool) "x0 back to 0" true (Region.sat_le r3 0 0);
  Alcotest.(check bool) "x1 still above 1" true (Region.sat_ge r3 1 1)

let test_region_saturates () =
  let r = ref (Region.initial ~nclocks:1 ~max_const:1) in
  for _ = 1 to 10 do
    r := Region.time_successor !r
  done;
  (* x > max: time-closed fixpoint *)
  Alcotest.(check bool) "fixpoint" true
    (Region.equal !r (Region.time_successor !r));
  Alcotest.(check bool) "x >= 1" true (Region.sat_ge !r 0 1);
  Alcotest.(check bool) "x <= 1 false" false (Region.sat_le !r 0 1)

let test_free () =
  let r = Region.free (Region.initial ~nclocks:2 ~max_const:3) 0 in
  Alcotest.(check bool) "freed clock large" true (Region.sat_ge r 0 3);
  Alcotest.(check bool) "other clock still 0" true (Region.sat_le r 1 0)

(* The two exact engines must agree on the timed-reachable state set. *)
let agree (type s a) ?limit (sys : (s, a) Tm_ioa.Ioa.t) bm =
  let _, rs = Region.reachable ?limit sys bm in
  let _, zs = Reach.reachable ?limit sys bm in
  List.length rs = List.length zs
  && List.for_all (fun s -> List.exists (sys.Tm_ioa.Ioa.equal_state s) zs) rs

let test_agreement_rm () =
  let p = RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1 in
  Alcotest.(check bool) "manager" true (agree (RM.system p) (RM.boundmap p))

let test_agreement_fractional () =
  let p = RM.params ~k:2 ~c1:(qq 3 2) ~c2:(qq 5 2) ~l:(qq 1 2) in
  Alcotest.(check bool) "fractional constants" true
    (agree (RM.system p) (RM.boundmap p))

let test_agreement_more_systems () =
  let im = IM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:3 in
  Alcotest.(check bool) "interrupt manager" true
    (agree (IM.system im) (IM.boundmap im));
  let sr = SR.params_of_ints ~n:3 ~d1:1 ~d2:2 in
  Alcotest.(check bool) "relay" true (agree (SR.line sr) (SR.boundmap sr));
  let tr = TR.params_of_ints ~n:3 ~d1:1 ~d2:2 in
  Alcotest.(check bool) "token ring" true
    (agree (TR.system tr) (TR.boundmap tr))

let test_fischer_mx_regions () =
  let p = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:2 in
  (match
     Region.check_state_invariant (F.system p) (F.boundmap p)
       F.mutual_exclusion
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "regions: MX should hold for a < b");
  let bad = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:2 ~b:2 ~b2:3 ~e:2 in
  match
    Region.check_state_invariant (F.system bad) (F.boundmap bad)
      F.mutual_exclusion
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "regions: MX must fail for a = b"

let test_fd_accuracy_regions () =
  let p = FD.params_of_ints ~h1:1 ~h2:2 ~g1:2 ~g2:3 ~m:2 in
  (match
     Region.check_state_invariant (FD.system p) (FD.boundmap p)
       FD.no_false_suspicion
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "regions: accuracy should hold");
  let bad = FD.params_of_ints ~h1:5 ~h2:8 ~g1:2 ~g2:3 ~m:2 in
  match
    Region.check_state_invariant (FD.system bad) (FD.boundmap bad)
      FD.no_false_suspicion
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "regions: slow heartbeats must break accuracy"

let test_open_system_rejected () =
  let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1 in
  let m = RM.manager p in
  let mbm =
    Tm_timed.Boundmap.of_list
      [ (RM.local_class,
         Tm_base.Interval.make Tm_base.Rational.zero (Tm_base.Time.Fin (q 1)))
      ]
  in
  Alcotest.(check bool) "open system" true
    (match Region.reachable m mbm with
    | exception Tm_zones.Clock_enc.Open_system _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "region algebra" `Quick test_region_algebra;
    Alcotest.test_case "saturation at the ceiling" `Quick
      test_region_saturates;
    Alcotest.test_case "free" `Quick test_free;
    Alcotest.test_case "zones/regions agree: manager" `Quick
      test_agreement_rm;
    Alcotest.test_case "zones/regions agree: fractional constants" `Quick
      test_agreement_fractional;
    Alcotest.test_case "zones/regions agree: other systems" `Quick
      test_agreement_more_systems;
    Alcotest.test_case "fischer MX by regions" `Slow
      test_fischer_mx_regions;
    Alcotest.test_case "failure-detector accuracy by regions" `Quick
      test_fd_accuracy_regions;
    Alcotest.test_case "open system rejected" `Quick
      test_open_system_rejected;
  ]
