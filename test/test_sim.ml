module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng
module Tstate = Tm_core.Tstate
module TA = Tm_core.Time_automaton
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module Measure = Tm_sim.Measure
module RM = Tm_systems.Resource_manager
open Gen

let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1
let impl = RM.impl p

let test_eager_zeno () =
  (* documented behaviour: the fully eager schedule of the polling
     manager is Zeno — ELSE fires at t=0 forever *)
  let run = Simulator.simulate ~steps:50 ~strategy:Strategy.eager impl in
  Alcotest.(check bool) "completes steps" true
    (run.Simulator.reason = Simulator.Step_limit);
  let seq = Simulator.project run in
  Alcotest.(check rational_t) "time stuck at 0" Rational.zero
    (Tm_timed.Tseq.t_end seq)

let test_lazy_progress () =
  let run =
    Simulator.simulate ~steps:100 ~strategy:(Strategy.lazy_ ~cap:(q 1) ()) impl
  in
  let seq = Simulator.project run in
  Alcotest.(check bool) "time advances" true
    Rational.(Tm_timed.Tseq.t_end seq > q 10);
  Alcotest.(check bool) "grants appear" true
    (Measure.occurrence_times (fun a -> a = RM.Grant) seq <> [])

let test_random_progress () =
  let prng = Prng.create 23 in
  let run =
    Simulator.simulate ~steps:200
      ~strategy:(Strategy.random ~prng ~denominator:4 ~cap:(q 1))
      impl
  in
  let seq = Simulator.project run in
  Alcotest.(check bool) "time advances" true
    Rational.(Tm_timed.Tseq.t_end seq > Rational.zero)

let test_stop_predicate () =
  let run =
    Simulator.simulate
      ~stop:(fun s -> RM.timer s.Tstate.base = 0)
      ~steps:1000
      ~strategy:(Strategy.lazy_ ~cap:(q 1) ())
      impl
  in
  Alcotest.(check bool) "stopped" true (run.Simulator.reason = Simulator.Stopped);
  Alcotest.(check int) "timer is 0" 0
    (RM.timer (Tm_ioa.Execution.last_state run.Simulator.exec).Tstate.base)

let test_strategy_stop () =
  let run =
    Simulator.simulate ~steps:10 ~strategy:(fun _ _ _ -> None) impl
  in
  Alcotest.(check bool) "strategy stop" true
    (run.Simulator.reason = Simulator.Strategy_stop);
  Alcotest.(check int) "no moves" 0 (Tm_ioa.Execution.length run.Simulator.exec)

let test_prefer () =
  (* prefer TICK over ELSE when both are available *)
  let strategy =
    Strategy.prefer (fun a -> a = RM.Tick) (Strategy.lazy_ ~cap:(q 1) ())
  in
  let run = Simulator.simulate ~steps:50 ~strategy impl in
  let seq = Simulator.project run in
  Alcotest.(check bool) "ticks occur" true
    (List.exists (fun ((a, _), _) -> a = RM.Tick) seq.Tm_timed.Tseq.moves)

let test_simulate_from () =
  let s0 = List.hd impl.TA.start in
  let shifted = Tstate.shift (q 5) s0 in
  let run =
    Simulator.simulate_from ~steps:10 ~strategy:(Strategy.lazy_ ~cap:(q 1) ())
      impl shifted
  in
  let seq = Simulator.project run in
  Alcotest.(check bool) "times continue from the shifted clock" true
    Rational.(Tm_timed.Tseq.t_end seq >= q 5)

let test_measure_basics () =
  let times = [ q 2; q 5; q 9 ] in
  Alcotest.(check int) "gaps count" 2 (List.length (Measure.gaps times));
  Alcotest.(check (list string)) "gap values" [ "3"; "4" ]
    (List.map Rational.to_string (Measure.gaps times));
  match Measure.envelope times with
  | Some e ->
      Alcotest.(check rational_t) "min" (q 2) e.Measure.min;
      Alcotest.(check rational_t) "max" (q 9) e.Measure.max;
      Alcotest.(check int) "count" 3 e.Measure.count;
      Alcotest.(check bool) "within [2,9]" true
        (Measure.within (Tm_base.Interval.of_ints 2 9) e);
      Alcotest.(check bool) "not within [3,9]" false
        (Measure.within (Tm_base.Interval.of_ints 3 9) e)
  | None -> Alcotest.fail "envelope of nonempty list"

let test_measure_empty () =
  Alcotest.(check bool) "empty envelope" true (Measure.envelope [] = None);
  Alcotest.(check (list string)) "empty gaps" []
    (List.map Rational.to_string (Measure.gaps []))

let test_measure_merge () =
  match (Measure.envelope [ q 1; q 3 ], Measure.envelope [ q 2; q 8 ]) with
  | Some a, Some b ->
      let m = Measure.merge a b in
      Alcotest.(check rational_t) "min" (q 1) m.Measure.min;
      Alcotest.(check rational_t) "max" (q 8) m.Measure.max;
      Alcotest.(check int) "count" 4 m.Measure.count
  | _ -> Alcotest.fail "envelopes"

let test_ensemble () =
  let e =
    Measure.ensemble ~runs:30 ~steps:100 ~denominator:4 ~cap:(q 1)
      ~event:(fun a -> a = RM.Grant) impl
  in
  Alcotest.(check int) "runs recorded" 30 e.Measure.runs;
  Alcotest.(check bool) "events seen" true (e.Measure.seeds_with_events > 0);
  (match e.Measure.first with
  | Some env ->
      Alcotest.(check bool) "first grants within the paper interval" true
        (Measure.within (RM.grant_interval_first p) env)
  | None -> Alcotest.fail "no first-occurrence envelope");
  (match e.Measure.gap with
  | Some env ->
      Alcotest.(check bool) "gaps within the paper interval" true
        (Measure.within (RM.grant_interval_between p) env)
  | None -> Alcotest.fail "no gap envelope");
  (* deterministic: same seed range, same envelopes *)
  let e2 =
    Measure.ensemble ~runs:30 ~steps:100 ~denominator:4 ~cap:(q 1)
      ~event:(fun a -> a = RM.Grant) impl
  in
  match (e.Measure.first, e2.Measure.first) with
  | Some a, Some b ->
      Alcotest.(check rational_t) "deterministic min" a.Measure.min
        b.Measure.min;
      Alcotest.(check rational_t) "deterministic max" a.Measure.max
        b.Measure.max
  | _ -> Alcotest.fail "envelopes"

let prop_random_deterministic_given_seed =
  check_holds "same seed, same trace" QCheck2.Gen.(int_range 0 100)
    (fun seed ->
      let trace s =
        let prng = Prng.create s in
        Simulator.project
          (Simulator.simulate ~steps:30
             ~strategy:(Strategy.random ~prng ~denominator:3 ~cap:(q 1))
             impl)
      in
      let t1 = trace seed and t2 = trace seed in
      List.for_all2
        (fun ((a1, x1), _) ((a2, x2), _) -> a1 = a2 && Rational.equal x1 x2)
        t1.Tm_timed.Tseq.moves t2.Tm_timed.Tseq.moves)

let suite =
  [
    Alcotest.test_case "eager is Zeno on the polling manager" `Quick
      test_eager_zeno;
    Alcotest.test_case "lazy makes progress" `Quick test_lazy_progress;
    Alcotest.test_case "random makes progress" `Quick test_random_progress;
    Alcotest.test_case "stop predicate" `Quick test_stop_predicate;
    Alcotest.test_case "strategy stop" `Quick test_strategy_stop;
    Alcotest.test_case "prefer combinator" `Quick test_prefer;
    Alcotest.test_case "simulate_from" `Quick test_simulate_from;
    Alcotest.test_case "measure basics" `Quick test_measure_basics;
    Alcotest.test_case "measure empty" `Quick test_measure_empty;
    Alcotest.test_case "measure merge" `Quick test_measure_merge;
    Alcotest.test_case "ensemble" `Quick test_ensemble;
    prop_random_deterministic_given_seed;
  ]
