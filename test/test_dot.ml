module Dot = Tm_core.Dot
module Tgraph = Tm_core.Tgraph
module Explore = Tm_ioa.Explore
module RM = Tm_systems.Resource_manager
module SR = Tm_systems.Signal_relay

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_tgraph_dot () =
  let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1 in
  let g = Tgraph.build (RM.impl p) in
  let dot = Dot.of_tgraph g in
  Alcotest.(check bool) "digraph header" true (contains ~needle:"digraph" dot);
  Alcotest.(check bool) "has nodes" true (contains ~needle:"n0 [label=" dot);
  Alcotest.(check bool) "has edges" true (contains ~needle:"->" dot);
  Alcotest.(check bool) "mentions TIMER" true (contains ~needle:"TIMER" dot)

let test_tgraph_truncation () =
  let p = RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1 in
  let g = Tgraph.build (RM.impl p) in
  let dot = Dot.of_tgraph ~max_nodes:2 g in
  Alcotest.(check bool) "truncation marker" true
    (contains ~needle:"more nodes" dot);
  Alcotest.(check bool) "n5 not rendered" false (contains ~needle:"n5 [" dot)

let test_explore_dot () =
  let rp = SR.params_of_ints ~n:2 ~d1:1 ~d2:2 in
  let g = Explore.reachable (SR.line rp) in
  let dot = Dot.of_explore g in
  Alcotest.(check bool) "digraph header" true (contains ~needle:"digraph" dot);
  Alcotest.(check bool) "signal edge label" true
    (contains ~needle:"SIGNAL_0" dot)

let test_escaping () =
  (* quotes in state printing must not break the output *)
  let dot = Dot.of_explore
      (Explore.reachable
         {
           (SR.line (SR.params_of_ints ~n:1 ~d1:1 ~d2:2)) with
           Tm_ioa.Ioa.pp_state =
             (fun fmt _ -> Format.pp_print_string fmt "a\"b");
         })
  in
  Alcotest.(check bool) "escaped quote" true (contains ~needle:"a\\\"b" dot)

let suite =
  [
    Alcotest.test_case "tgraph dot" `Quick test_tgraph_dot;
    Alcotest.test_case "tgraph truncation" `Quick test_tgraph_truncation;
    Alcotest.test_case "explore dot" `Quick test_explore_dot;
    Alcotest.test_case "escaping" `Quick test_escaping;
  ]
