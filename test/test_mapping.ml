module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng
module Tstate = Tm_core.Tstate
module TA = Tm_core.Time_automaton
module Mapping = Tm_core.Mapping
module RM = Tm_systems.Resource_manager
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
open Gen

let p = RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1
let impl = RM.impl p
let spec = RM.spec p
let f = RM.mapping p

let random_exec seed steps =
  let prng = Prng.create seed in
  (Simulator.simulate ~steps
     ~strategy:(Strategy.random ~prng ~denominator:3 ~cap:(q 2))
     impl)
    .Simulator.exec

let test_start_witness () =
  match Mapping.start_witness ~source:impl ~target:spec f (List.hd impl.TA.start) with
  | Ok u0 ->
      Alcotest.(check rational_t) "witness Ct" Rational.zero u0.Tstate.now
  | Error _ -> Alcotest.fail "start witness should exist"

let test_check_exec_ok () =
  for seed = 0 to 20 do
    match Mapping.check_exec ~source:impl ~target:spec f (random_exec seed 60) with
    | Ok () -> ()
    | Error e ->
        Alcotest.failf "seed %d: %a" seed (Mapping.pp_failure impl) e
  done

let test_check_exec_lazy_and_eager () =
  List.iter
    (fun strategy ->
      let e = (Simulator.simulate ~steps:100 ~strategy impl).Simulator.exec in
      match Mapping.check_exec ~source:impl ~target:spec f e with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%a" (Mapping.pp_failure impl) e)
    [ Strategy.eager; Strategy.lazy_ ~cap:Rational.one () ]

let test_check_exhaustive_ok () =
  match Mapping.check_exhaustive ~source:impl ~target:spec f () with
  | Ok st ->
      Alcotest.(check bool) "nonempty product" true
        (st.Mapping.product_states > 0);
      Alcotest.(check bool) "not truncated" false st.Mapping.truncated
  | Error e -> Alcotest.failf "%a" (Mapping.pp_failure impl) e

(* Failure injection: a mapping that claims tighter deadlines than the
   spec can honour must be rejected. *)
let test_broken_mapping_rejected () =
  let broken =
    {
      Mapping.mname = "broken";
      contains =
        (fun _s u ->
          (* requires the spec to promise a grant within 1 of now —
             false at the start state where Lt(G1) = k c2 + l *)
          Time.(u.Tstate.lt.(0) <= Time.add_q (Time.Fin u.Tstate.now) (q 1)));
    }
  in
  match Mapping.check_exhaustive ~source:impl ~target:spec broken () with
  | Error (Mapping.No_start_image _) -> ()
  | Error _ -> Alcotest.fail "expected a start-image failure"
  | Ok _ -> Alcotest.fail "broken mapping must fail"

(* A mapping that is fine at the start but not preserved by steps. *)
let test_unpreserved_mapping_rejected () =
  let i_tick = TA.cond_index impl "cond(TICK)" in
  let shallow =
    {
      Mapping.mname = "unpreserved";
      contains =
        (fun s u ->
          (* holds with equality at the start state but ignores the
             TIMER, so it breaks as soon as a tick is consumed *)
          Time.(
            u.Tstate.lt.(0)
            >= Time.add_q s.Tstate.lt.(i_tick)
                 (Rational.add
                    (Rational.mul_int (p.RM.k - 1) p.RM.c2)
                    p.RM.l)));
    }
  in
  match Mapping.check_exhaustive ~source:impl ~target:spec shallow () with
  | Error (Mapping.Image_lost _) -> ()
  | Error e -> Alcotest.failf "expected Image_lost, got %a" (Mapping.pp_failure impl) e
  | Ok _ -> Alcotest.fail "unpreserved mapping must fail"

(* Against a spec with a too-tight upper bound, the paper mapping must
   fail with a Move_not_enabled or Image_lost (the property is false). *)
let test_tight_spec_rejected () =
  let tight =
    TA.make (RM.system p)
      [
        Tm_timed.Condition.make ~name:"G1"
          ~t_start:(fun _ -> true)
          ~bounds:
            (Tm_base.Interval.make
               (Rational.mul_int p.RM.k p.RM.c1)
               (Time.Fin (Rational.mul_int p.RM.k p.RM.c2)))
          (* paper bound is k c2 + l; drop the + l *)
          ~in_pi:(fun a -> a = RM.Grant)
          ();
        RM.g2 p;
      ]
  in
  match Mapping.check_exhaustive ~source:impl ~target:tight f () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tight spec must be refuted"

let test_check_exec_detects_on_trace () =
  (* the same tight spec refuted along a lazy trace, which realizes the
     worst-case first grant *)
  let tight_g1 =
    Tm_timed.Condition.make ~name:"G1"
      ~t_start:(fun _ -> true)
      ~bounds:
        (Tm_base.Interval.make
           (Rational.mul_int p.RM.k p.RM.c1)
           (Time.Fin (Rational.mul_int p.RM.k p.RM.c2)))
      ~in_pi:(fun a -> a = RM.Grant)
      ()
  in
  let tight = TA.make (RM.system p) [ tight_g1; RM.g2 p ] in
  let e =
    (Simulator.simulate ~steps:60 ~strategy:(Strategy.lazy_ ~cap:Rational.one ())
       impl)
      .Simulator.exec
  in
  match Mapping.check_exec ~source:impl ~target:tight f e with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "lazy trace should refute the tight spec"

let prop_random_exec_mapped =
  check_holds "mapping holds along random executions"
    QCheck2.Gen.(int_range 0 200)
    (fun seed ->
      match Mapping.check_exec ~source:impl ~target:spec f (random_exec seed 40) with
      | Ok () -> true
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "start witness" `Quick test_start_witness;
    Alcotest.test_case "check_exec ok (random)" `Quick test_check_exec_ok;
    Alcotest.test_case "check_exec ok (lazy/eager)" `Quick
      test_check_exec_lazy_and_eager;
    Alcotest.test_case "check_exhaustive ok" `Quick test_check_exhaustive_ok;
    Alcotest.test_case "broken mapping rejected" `Quick
      test_broken_mapping_rejected;
    Alcotest.test_case "unpreserved mapping rejected" `Quick
      test_unpreserved_mapping_rejected;
    Alcotest.test_case "tight spec refuted exhaustively" `Quick
      test_tight_spec_rejected;
    Alcotest.test_case "tight spec refuted on a lazy trace" `Quick
      test_check_exec_detects_on_trace;
    prop_random_exec_mapped;
  ]
