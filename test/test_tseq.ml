module Rational = Tm_base.Rational
module Tseq = Tm_timed.Tseq
module RM = Tm_systems.Resource_manager
open Gen

let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1
let m = RM.manager p

let seq =
  Tseq.of_moves 2
    [ ((RM.Tick, q 2), 1); ((RM.Tick, q 4), 0); ((RM.Grant, qq 9 2), 2) ]

let test_accessors () =
  Alcotest.(check int) "length" 3 (Tseq.length seq);
  Alcotest.(check int) "last" 2 (Tseq.last_state seq);
  Alcotest.(check rational_t) "t_end" (qq 9 2) (Tseq.t_end seq);
  Alcotest.(check rational_t) "t_end empty" Rational.zero
    (Tseq.t_end (Tseq.of_moves 7 []));
  Alcotest.(check (list int)) "states" [ 2; 1; 0; 2 ] (Tseq.states seq)

let test_times_ok () =
  Alcotest.(check bool) "nondecreasing" true (Tseq.times_ok seq);
  let bad =
    Tseq.of_moves 2 [ ((RM.Tick, q 3), 1); ((RM.Tick, q 2), 0) ]
  in
  Alcotest.(check bool) "decreasing rejected" false (Tseq.times_ok bad);
  let neg = Tseq.of_moves 2 [ ((RM.Tick, q (-1)), 1) ] in
  Alcotest.(check bool) "negative rejected" false (Tseq.times_ok neg);
  let eq = Tseq.of_moves 2 [ ((RM.Tick, q 2), 1); ((RM.Else, q 2), 1) ] in
  Alcotest.(check bool) "simultaneous allowed" true (Tseq.times_ok eq)

let test_ord () =
  let e = Tseq.ord seq in
  Alcotest.(check bool) "ord is an execution of the manager" true
    (Tm_ioa.Execution.is_execution m e);
  Alcotest.(check int) "ord length" 3 (Tm_ioa.Execution.length e)

let test_schedules () =
  Alcotest.(check int) "timed schedule" 3 (List.length (Tseq.timed_schedule seq));
  (* under the manager alone, ELSE is internal *)
  let s = Tseq.of_moves 2 [ ((RM.Else, q 1), 2); ((RM.Tick, q 2), 1) ] in
  Alcotest.(check int) "timed behavior drops internal" 1
    (List.length (Tseq.timed_behavior m s))

let test_append_prefix () =
  let s = Tseq.append seq RM.Tick (q 6) 1 in
  Alcotest.(check int) "append" 4 (Tseq.length s);
  Alcotest.(check rational_t) "append t_end" (q 6) (Tseq.t_end s);
  Alcotest.(check int) "prefix" 1 (Tseq.length (Tseq.prefix 1 seq))

let test_events () =
  match Tseq.events seq with
  | [ (2, RM.Tick, t1, 1); (1, RM.Tick, t2, 0); (0, RM.Grant, t3, 2) ] ->
      Alcotest.(check rational_t) "t1" (q 2) t1;
      Alcotest.(check rational_t) "t2" (q 4) t2;
      Alcotest.(check rational_t) "t3" (qq 9 2) t3
  | _ -> Alcotest.fail "events mismatch"

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "times_ok" `Quick test_times_ok;
    Alcotest.test_case "ord" `Quick test_ord;
    Alcotest.test_case "schedules" `Quick test_schedules;
    Alcotest.test_case "append/prefix" `Quick test_append_prefix;
    Alcotest.test_case "events" `Quick test_events;
  ]
