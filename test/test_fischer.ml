module Rational = Tm_base.Rational
module Prng = Tm_base.Prng
module Ioa = Tm_ioa.Ioa
module Semantics = Tm_timed.Semantics
module Reach = Tm_zones.Reach
module F = Tm_systems.Fischer
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
open Gen

let p = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:2

let test_params () =
  Alcotest.(check bool) "n=1 rejected" true
    (match F.params_of_ints ~n:1 ~r:1 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "b2 < b rejected" true
    (match F.params_of_ints ~n:2 ~r:1 ~t:1 ~a:1 ~b:3 ~b2:2 ~e:1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* a >= b allowed: used in refutation runs *)
  ignore (F.params_of_ints ~n:2 ~r:1 ~t:1 ~a:5 ~b:2 ~b2:3 ~e:1)

let test_structure () =
  let sys = F.system p in
  Alcotest.(check int) "alphabet" 14 (List.length sys.Ioa.alphabet);
  Alcotest.(check int) "classes" 10 (List.length sys.Ioa.classes);
  Alcotest.(check int) "no inputs" 0 (List.length (Ioa.input_actions sys));
  match Tm_timed.Boundmap.covers (F.boundmap p) sys with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_steps () =
  let sys = F.system p in
  let s0 = List.hd sys.Ioa.start in
  (* only retries enabled initially *)
  Alcotest.(check int) "two retries" 2
    (List.length (Ioa.enabled_actions sys s0));
  match sys.Ioa.delta s0 (F.Retry 1) with
  | [ s1 ] -> (
      Alcotest.(check bool) "pc1 = Test" true (s1.F.pcs.(0) = F.Test);
      match sys.Ioa.delta s1 (F.Test_succ 1) with
      | [ s2 ] -> (
          Alcotest.(check bool) "pc1 = Set" true (s2.F.pcs.(0) = F.Set);
          match sys.Ioa.delta s2 (F.Set_x 1) with
          | [ s3 ] ->
              Alcotest.(check int) "x = 1" 1 s3.F.x;
              Alcotest.(check bool) "pc1 = Check" true
                (s3.F.pcs.(0) = F.Check)
          | _ -> Alcotest.fail "set")
      | _ -> Alcotest.fail "test")
  | _ -> Alcotest.fail "retry"

let test_mutual_exclusion_zones () =
  match
    Reach.check_state_invariant (F.system p) (F.boundmap p)
      F.mutual_exclusion
  with
  | Ok _ -> ()
  | Error s ->
      Alcotest.failf "MX violated at %a" (F.system p).Ioa.pp_state s

let test_mutual_exclusion_refuted_when_a_ge_b () =
  let bad = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:3 ~b:2 ~b2:3 ~e:2 in
  match
    Reach.check_state_invariant (F.system bad) (F.boundmap bad)
      F.mutual_exclusion
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a >= b must break mutual exclusion"

let test_boundary_a_eq_b_refuted () =
  (* the classic subtlety: a = b already breaks the algorithm (the
     check may fire exactly when the other write lands) *)
  let bad = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:2 ~b:2 ~b2:3 ~e:2 in
  match
    Reach.check_state_invariant (F.system bad) (F.boundmap bad)
      F.mutual_exclusion
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a = b must break mutual exclusion"

let test_u_enter_verified () =
  match Reach.check_condition (F.system p) (F.boundmap p) (F.u_enter p) with
  | Reach.Verified _ -> ()
  | Reach.Lower_violation _ -> Alcotest.fail "lower violated"
  | Reach.Upper_violation _ -> Alcotest.fail "upper violated"
  | Reach.Unsupported m -> Alcotest.fail m
  | Reach.Unknown e -> Alcotest.fail e.Reach.reason

let test_u_enter_tight_refuted () =
  let tight =
    {
      (F.u_enter p) with
      Tm_timed.Condition.bounds =
        Tm_base.Interval.make p.F.b (Tm_base.Time.Fin (qq 5 2));
    }
  in
  match Reach.check_condition (F.system p) (F.boundmap p) tight with
  | Reach.Upper_violation _ -> ()
  | _ -> Alcotest.fail "tightened upper must be refuted"

let test_three_processes_mx () =
  let p3 = F.params_of_ints ~n:3 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:1 in
  match
    Reach.check_state_invariant ~limit:500_000 (F.system p3)
      (F.boundmap p3) F.mutual_exclusion
  with
  | Ok _ -> ()
  | Error s ->
      Alcotest.failf "MX violated at %a" (F.system p3).Ioa.pp_state s

let prop_simulated_mx =
  check_holds "simulated traces keep mutual exclusion"
    QCheck2.Gen.(int_range 0 150)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:120
          ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 1))
          (F.impl p)
      in
      List.for_all
        (fun s -> F.mutual_exclusion s.Tm_core.Tstate.base)
        (Tm_ioa.Execution.states run.Simulator.exec))

let prop_simulated_u_enter =
  check_holds "simulated traces satisfy U_enter"
    QCheck2.Gen.(int_range 0 150)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:120
          ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 1))
          (F.impl p)
      in
      Semantics.semi_satisfies (Simulator.project run) (F.u_enter p) = [])

let suite =
  [
    Alcotest.test_case "params" `Quick test_params;
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "protocol steps" `Quick test_steps;
    Alcotest.test_case "mutual exclusion (zones, a<b)" `Slow
      test_mutual_exclusion_zones;
    Alcotest.test_case "mutual exclusion refuted (a>b)" `Slow
      test_mutual_exclusion_refuted_when_a_ge_b;
    Alcotest.test_case "mutual exclusion refuted (a=b)" `Slow
      test_boundary_a_eq_b_refuted;
    Alcotest.test_case "U_enter verified" `Slow test_u_enter_verified;
    Alcotest.test_case "U_enter tightened refuted" `Slow
      test_u_enter_tight_refuted;
    Alcotest.test_case "three-process mutual exclusion" `Slow
      test_three_processes_mx;
    prop_simulated_mx;
    prop_simulated_u_enter;
  ]
