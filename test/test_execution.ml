module Ioa = Tm_ioa.Ioa
module Execution = Tm_ioa.Execution
module RM = Tm_systems.Resource_manager

let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1
let m = RM.manager p

(* 2 --TICK--> 1 --TICK--> 0 --GRANT--> 2 *)
let good =
  Execution.of_states 2 [ (RM.Tick, 1); (RM.Tick, 0); (RM.Grant, 2) ]

let test_accessors () =
  Alcotest.(check int) "length" 3 (Execution.length good);
  Alcotest.(check int) "last" 2 (Execution.last_state good);
  Alcotest.(check int) "last of empty" 5
    (Execution.last_state (Execution.of_states 5 []));
  Alcotest.(check (list int)) "states" [ 2; 1; 0; 2 ] (Execution.states good)

let test_is_execution () =
  Alcotest.(check bool) "good accepted" true (Execution.is_execution m good);
  let bad_step =
    Execution.of_states 2 [ (RM.Grant, 2) ] (* grant disabled at 2 *)
  in
  Alcotest.(check bool) "bad step rejected" false
    (Execution.is_execution m bad_step);
  let bad_start = Execution.of_states 0 [ (RM.Grant, 2) ] in
  Alcotest.(check bool) "bad start rejected" false
    (Execution.is_execution m bad_start);
  Alcotest.(check bool) "bad start is a fragment" true
    (Execution.is_fragment m bad_start);
  let wrong_post = Execution.of_states 2 [ (RM.Tick, 0) ] in
  Alcotest.(check bool) "wrong post state rejected" false
    (Execution.is_fragment m wrong_post)

let test_schedule_behavior () =
  Alcotest.(check int) "schedule length" 3
    (List.length (Execution.schedule good));
  (* manager alone: TICK is input (external), GRANT output (external),
     ELSE internal *)
  let e = Execution.of_states 2 [ (RM.Else, 2); (RM.Tick, 1) ] in
  Alcotest.(check int) "behavior drops internal" 1
    (List.length (Execution.behavior m e))

let test_append_prefix () =
  let e = Execution.append good RM.Tick 1 in
  Alcotest.(check int) "append length" 4 (Execution.length e);
  Alcotest.(check int) "append last" 1 (Execution.last_state e);
  let pre = Execution.prefix 2 good in
  Alcotest.(check int) "prefix length" 2 (Execution.length pre);
  Alcotest.(check int) "prefix last" 0 (Execution.last_state pre);
  Alcotest.(check int) "prefix beyond end" 3
    (Execution.length (Execution.prefix 10 good))

let test_steps () =
  match Execution.steps good with
  | [ (2, RM.Tick, 1); (1, RM.Tick, 0); (0, RM.Grant, 2) ] -> ()
  | _ -> Alcotest.fail "steps triples wrong"

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "is_execution" `Quick test_is_execution;
    Alcotest.test_case "schedule/behavior" `Quick test_schedule_behavior;
    Alcotest.test_case "append/prefix" `Quick test_append_prefix;
    Alcotest.test_case "steps" `Quick test_steps;
  ]
