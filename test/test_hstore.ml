module Hstore = Tm_base.Hstore

let make () = Hstore.create ~equal:String.equal ~hash:Hashtbl.hash 4

let test_add_find () =
  let s = make () in
  Alcotest.(check int) "empty" 0 (Hstore.length s);
  (match Hstore.add s "a" with
  | `Added 0 -> ()
  | _ -> Alcotest.fail "first id should be 0");
  (match Hstore.add s "b" with
  | `Added 1 -> ()
  | _ -> Alcotest.fail "second id should be 1");
  (match Hstore.add s "a" with
  | `Present 0 -> ()
  | _ -> Alcotest.fail "re-add should be Present 0");
  Alcotest.(check int) "length" 2 (Hstore.length s);
  Alcotest.(check (option int)) "find a" (Some 0) (Hstore.find s "a");
  Alcotest.(check (option int)) "find missing" None (Hstore.find s "zz")

let test_key_of_id () =
  let s = make () in
  ignore (Hstore.add s "x");
  ignore (Hstore.add s "y");
  Alcotest.(check string) "key 0" "x" (Hstore.key_of_id s 0);
  Alcotest.(check string) "key 1" "y" (Hstore.key_of_id s 1);
  Alcotest.check_raises "bad id" (Invalid_argument "Hstore.key_of_id")
    (fun () -> ignore (Hstore.key_of_id s 5))

let test_iter_order () =
  let s = make () in
  List.iter (fun k -> ignore (Hstore.add s k)) [ "p"; "q"; "r" ];
  Alcotest.(check (list string)) "to_list in id order" [ "p"; "q"; "r" ]
    (Hstore.to_list s);
  let acc = ref [] in
  Hstore.iter (fun id k -> acc := (id, k) :: !acc) s;
  Alcotest.(check (list (pair int string)))
    "iter order" [ (0, "p"); (1, "q"); (2, "r") ] (List.rev !acc)

let test_collisions () =
  (* constant hash forces every key into one bucket *)
  let s = Hstore.create ~equal:Int.equal ~hash:(fun _ -> 42) 4 in
  for i = 0 to 99 do
    match Hstore.add s i with
    | `Added id when id = i -> ()
    | _ -> Alcotest.fail "dense ids under collisions"
  done;
  for i = 0 to 99 do
    Alcotest.(check (option int)) "find under collisions" (Some i)
      (Hstore.find s i)
  done

let test_growth () =
  let s = make () in
  for i = 0 to 999 do
    ignore (Hstore.add s (string_of_int i))
  done;
  Alcotest.(check int) "length 1000" 1000 (Hstore.length s);
  Alcotest.(check string) "key 999" "999" (Hstore.key_of_id s 999)

let test_intern () =
  let s = make () in
  let a = String.init 3 (fun i -> Char.chr (97 + i)) in
  let b = String.init 3 (fun i -> Char.chr (97 + i)) in
  Alcotest.(check bool) "distinct copies" false (a == b);
  (* first intern keeps the argument as canonical representative *)
  Alcotest.(check bool) "first is canonical" true (Hstore.intern s a == a);
  (* a structurally equal key maps back to the stored representative *)
  Alcotest.(check bool) "second maps to first" true (Hstore.intern s b == a);
  Alcotest.(check int) "one entry" 1 (Hstore.length s);
  let c = "xyz" in
  Alcotest.(check bool) "fresh key canonical" true (Hstore.intern s c == c);
  Alcotest.(check int) "two entries" 2 (Hstore.length s)

let suite =
  [
    Alcotest.test_case "add/find" `Quick test_add_find;
    Alcotest.test_case "intern" `Quick test_intern;
    Alcotest.test_case "key_of_id" `Quick test_key_of_id;
    Alcotest.test_case "iter order" `Quick test_iter_order;
    Alcotest.test_case "hash collisions" `Quick test_collisions;
    Alcotest.test_case "growth" `Quick test_growth;
  ]
