module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
open Gen

let test_make_valid () =
  let iv = Interval.of_ints 1 3 in
  Alcotest.(check rational_t) "lo" (q 1) (Interval.lo iv);
  Alcotest.(check time_t) "hi" (Time.of_int 3) (Interval.hi iv);
  let unb = Interval.unbounded_above (q 2) in
  Alcotest.(check time_t) "unbounded hi" Time.Inf (Interval.hi unb)

let test_make_invalid () =
  let ill f = Alcotest.(check bool) "raises Ill_formed" true
      (match f () with
      | exception Interval.Ill_formed _ -> true
      | _ -> false)
  in
  ill (fun () -> Interval.make (q (-1)) (Time.of_int 1));
  ill (fun () -> Interval.make (q 3) (Time.of_int 2));
  ill (fun () -> Interval.make Rational.zero Time.zero)

let test_special () =
  Alcotest.(check bool) "trivial mem" true (Interval.mem (q 100) Interval.trivial);
  Alcotest.(check time_t) "upper_only hi" (Time.of_int 5)
    (Interval.hi (Interval.upper_only (Time.of_int 5)));
  Alcotest.(check rational_t) "lower_only lo" (q 5)
    (Interval.lo (Interval.lower_only (q 5)))

let test_mem () =
  let iv = Interval.of_ints 2 4 in
  Alcotest.(check bool) "below" false (Interval.mem (q 1) iv);
  Alcotest.(check bool) "at lo" true (Interval.mem (q 2) iv);
  Alcotest.(check bool) "inside" true (Interval.mem (q 3) iv);
  Alcotest.(check bool) "at hi" true (Interval.mem (q 4) iv);
  Alcotest.(check bool) "above" false (Interval.mem (q 5) iv);
  Alcotest.(check bool) "mem_time inf in bounded" false
    (Interval.mem_time Time.Inf iv);
  Alcotest.(check bool) "mem_time inf in unbounded" true
    (Interval.mem_time Time.Inf (Interval.unbounded_above (q 0)))

let test_ops () =
  let iv = Interval.of_ints 1 3 in
  Alcotest.(check interval_t) "shift" (Interval.of_ints 3 5)
    (Interval.shift (q 2) iv);
  Alcotest.(check interval_t) "scale" (Interval.of_ints 3 9)
    (Interval.scale 3 iv);
  Alcotest.(check time_t) "width" (Time.of_int 2) (Interval.width iv);
  Alcotest.(check bool) "subset yes" true
    (Interval.subset (Interval.of_ints 2 3) iv);
  Alcotest.(check bool) "subset no" false
    (Interval.subset (Interval.of_ints 0 3) iv)

let prop_mem_endpoints =
  check_holds "lo is always a member" interval (fun iv ->
      Interval.mem (Interval.lo iv) iv)

let prop_shift_mem =
  check_holds "shift preserves membership"
    QCheck2.Gen.(triple interval nonneg_rational nonneg_rational)
    (fun (iv, t, d) ->
      QCheck2.assume (Interval.mem t iv);
      Interval.mem (Rational.add t d) (Interval.shift d iv))

let prop_scale_lo =
  check_holds "scale multiplies lo" QCheck2.Gen.(pair interval (int_range 1 8))
    (fun (iv, n) ->
      Rational.equal
        (Interval.lo (Interval.scale n iv))
        (Rational.mul_int n (Interval.lo iv)))

let suite =
  [
    Alcotest.test_case "make valid" `Quick test_make_valid;
    Alcotest.test_case "make invalid" `Quick test_make_invalid;
    Alcotest.test_case "special constructors" `Quick test_special;
    Alcotest.test_case "membership" `Quick test_mem;
    Alcotest.test_case "shift/scale/width/subset" `Quick test_ops;
    prop_mem_endpoints;
    prop_shift_mem;
    prop_scale_lo;
  ]
