module Ioa = Tm_ioa.Ioa
module Explore = Tm_ioa.Explore
module Execution = Tm_ioa.Execution
module Hstore = Tm_base.Hstore
module RM = Tm_systems.Resource_manager
module SR = Tm_systems.Signal_relay

let test_reachable_manager () =
  (* the untimed manager alone can tick below zero forever; the
     composed system is infinite-state untimed, so explore the relay *)
  let rp = SR.params_of_ints ~n:3 ~d1:1 ~d2:2 in
  let g = Explore.reachable (SR.line rp) in
  (* flag configurations reachable: signal at position 0..3 or gone *)
  Alcotest.(check int) "5 reachable states" 5 (Hstore.length g.Explore.states);
  Alcotest.(check bool) "not truncated" false g.Explore.truncated;
  Alcotest.(check int) "4 edges" 4 (List.length g.Explore.edges)

let test_reachable_limit () =
  let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1 in
  (* untimed, the manager timer decreases unboundedly: limit must hit *)
  let g = Explore.reachable ~limit:50 (RM.system p) in
  Alcotest.(check bool) "truncated" true g.Explore.truncated

let test_invariant_holds () =
  let rp = SR.params_of_ints ~n:4 ~d1:1 ~d2:2 in
  match Explore.check_invariant (SR.line rp) SR.lemma_6_1 with
  | Explore.Holds n -> Alcotest.(check int) "state count" 6 n
  | Explore.Violated _ -> Alcotest.fail "Lemma 6.1 should hold"
  | Explore.Limit_reached _ -> Alcotest.fail "should not hit limit"

let test_invariant_violated_with_path () =
  let rp = SR.params_of_ints ~n:3 ~d1:1 ~d2:2 in
  let line = SR.line rp in
  (* claim "the signal never reaches P_3" — false, with a 3-step path *)
  match Explore.check_invariant line (fun flags -> not flags.(3)) with
  | Explore.Violated e ->
      Alcotest.(check int) "counterexample length" 3 (Execution.length e);
      Alcotest.(check bool) "counterexample is an execution" true
        (Execution.is_execution line e);
      Alcotest.(check bool) "end state violates" true
        (Execution.last_state e).(3)
  | Explore.Holds _ -> Alcotest.fail "should be violated"
  | Explore.Limit_reached _ -> Alcotest.fail "should not hit limit"

let test_invariant_violated_at_start () =
  let rp = SR.params_of_ints ~n:2 ~d1:1 ~d2:2 in
  match Explore.check_invariant (SR.line rp) (fun flags -> not flags.(0)) with
  | Explore.Violated e ->
      Alcotest.(check int) "zero-length counterexample" 0
        (Execution.length e)
  | _ -> Alcotest.fail "start state violates"

let test_successors () =
  let rp = SR.params_of_ints ~n:2 ~d1:1 ~d2:2 in
  let line = SR.line rp in
  let s0 = List.hd line.Ioa.start in
  Alcotest.(check int) "one successor at start" 1
    (List.length (Explore.successors line s0))

let suite =
  [
    Alcotest.test_case "reachable relay" `Quick test_reachable_manager;
    Alcotest.test_case "reachable limit" `Quick test_reachable_limit;
    Alcotest.test_case "invariant holds (Lemma 6.1)" `Quick
      test_invariant_holds;
    Alcotest.test_case "invariant violated with path" `Quick
      test_invariant_violated_with_path;
    Alcotest.test_case "invariant violated at start" `Quick
      test_invariant_violated_at_start;
    Alcotest.test_case "successors" `Quick test_successors;
  ]
