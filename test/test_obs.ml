(* Tests for the Tm_obs observability layer: counter monotonicity,
   histogram quantiles against Measure.quantile, span nesting
   well-formedness, the golden Chrome-trace JSON, and snapshot/JSON
   round-trips driven by the Gen.metric_update scripts. *)

module Rational = Tm_base.Rational
module Measure = Tm_sim.Measure
module Json = Tm_obs.Json
module Metrics = Tm_obs.Metrics
module Tracing = Tm_obs.Tracing
open Gen

(* The registry is global and append-only, so every test or property
   iteration works on freshly named metrics. *)
let fresh =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "test.%s.%d" prefix !n

(* ------------------------------------------------------------------ *)
(* counters *)

let prop_counter_monotone =
  check_holds ~count:100 "counter: monotone, value = sum of updates"
    metric_updates (fun updates ->
      let c = Metrics.counter (fresh "mono") in
      let expected = ref 0 in
      let monotone = ref true in
      List.iter
        (fun u ->
          let before = Metrics.value c in
          (match u with
          | Incr_counter _ ->
              Metrics.incr c;
              incr expected
          | Add_counter (_, n) ->
              Metrics.add c n;
              expected := !expected + n
          | Set_gauge _ | Max_gauge _ | Observe _ -> ());
          if Metrics.value c < before then monotone := false)
        updates;
      !monotone && Metrics.value c = !expected)

let test_counter_rejects_negative () =
  let c = Metrics.counter (fresh "neg") in
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: counters are monotone") (fun () ->
      Metrics.add c (-1))

(* ------------------------------------------------------------------ *)
(* histograms *)

let prop_histogram_quantile_matches_measure =
  check_holds ~count:100 "histogram quantiles = Measure.quantile"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 40) nonneg_rational)
        (float_range 0. 1.))
    (fun (samples, p) ->
      let h = Metrics.histogram (fresh "quant") in
      List.iter (Metrics.observe h) samples;
      match (Metrics.quantile h p, Measure.quantile samples p) with
      | None, None -> true
      | Some a, Some b -> Rational.equal a b
      | _ -> false)

let test_histogram_buckets () =
  let name = fresh "bucket" in
  let h = Metrics.histogram name in
  let samples = [ qq 1 8; qq 1 2; q 3; q 200; q 1000 ] in
  List.iter (Metrics.observe h) samples;
  match Metrics.find (Metrics.snapshot ()) name with
  | Some (Metrics.Histogram_v hv) ->
      (* cumulative bucket counts are non-decreasing, and the last
         cumulative count plus overflow equals the total *)
      let counts = List.map snd hv.Metrics.buckets in
      let sorted = List.sort compare counts in
      Alcotest.(check (list int)) "cumulative" sorted counts;
      let last = List.fold_left (fun _ c -> c) 0 counts in
      Alcotest.(check int) "total" hv.Metrics.count
        (last + hv.Metrics.overflow);
      Alcotest.(check int) "overflow counts the outliers" 2
        hv.Metrics.overflow;
      Alcotest.check rational_t "sum"
        (List.fold_left Rational.add Rational.zero samples)
        hv.Metrics.sum
  | _ -> Alcotest.fail "histogram not in snapshot"

(* ------------------------------------------------------------------ *)
(* span tracing *)

let with_fake_clock f =
  let t = ref 0. in
  Tracing.disable ();
  Tracing.clear ();
  Tracing.set_clock (fun () ->
      t := !t +. 1.;
      !t);
  Tracing.enable ();
  Fun.protect
    ~finally:(fun () ->
      Tracing.disable ();
      Tracing.clear ();
      Tracing.set_clock Unix.gettimeofday)
    f

let test_span_nesting () =
  with_fake_clock @@ fun () ->
  Tracing.with_span "a" (fun () ->
      Tracing.with_span "b" (fun () -> ());
      Tracing.with_span "c" (fun () -> ()));
  Tracing.with_span "d" (fun () -> ());
  Alcotest.(check int) "depth restored" 0 (Tracing.depth ());
  let by_name n =
    List.find (fun e -> e.Tracing.ename = n) (Tracing.events ())
  in
  let a = by_name "a" and b = by_name "b" and c = by_name "c"
  and d = by_name "d" in
  Alcotest.(check int) "a top-level" 0 a.Tracing.depth;
  Alcotest.(check int) "b nested" 1 b.Tracing.depth;
  Alcotest.(check int) "c nested" 1 c.Tracing.depth;
  Alcotest.(check int) "d top-level" 0 d.Tracing.depth;
  let inside child parent =
    parent.Tracing.ts_us <= child.Tracing.ts_us
    && child.Tracing.ts_us +. child.Tracing.dur_us
       <= parent.Tracing.ts_us +. parent.Tracing.dur_us
  in
  Alcotest.(check bool) "b inside a" true (inside b a);
  Alcotest.(check bool) "c inside a" true (inside c a);
  Alcotest.(check bool) "b before c" true
    (b.Tracing.ts_us +. b.Tracing.dur_us <= c.Tracing.ts_us);
  Alcotest.(check bool) "d after a" true
    (a.Tracing.ts_us +. a.Tracing.dur_us <= d.Tracing.ts_us)

let test_span_exception_safe () =
  with_fake_clock @@ fun () ->
  (try Tracing.with_span "boom" (fun () -> raise Exit)
   with Exit -> ());
  Alcotest.(check int) "depth restored" 0 (Tracing.depth ());
  Alcotest.(check int) "span recorded" 1 (List.length (Tracing.events ()))

let test_disabled_is_noop () =
  Tracing.disable ();
  Tracing.clear ();
  let r = Tracing.with_span "skipped" (fun () -> 42) in
  Alcotest.(check int) "value" 42 r;
  Alcotest.(check int) "no events" 0 (List.length (Tracing.events ()))

(* ------------------------------------------------------------------ *)
(* golden Chrome trace JSON *)

let golden_trace =
  String.concat ""
    [
      {|{"traceEvents":[|};
      {|{"name":"inner","cat":"tm","ph":"X","ts":2000000,"dur":1000000,"pid":1,"tid":1},|};
      {|{"name":"mark","cat":"tm","ph":"i","ts":4000000,"s":"t","pid":1,"tid":1},|};
      {|{"name":"outer","cat":"tm","ph":"X","ts":1000000,"dur":4000000,"pid":1,"tid":1}|};
      {|],"displayTimeUnit":"ms"}|};
    ]

let record_golden_spans () =
  Tracing.with_span "outer" (fun () ->
      Tracing.with_span "inner" (fun () -> ());
      Tracing.instant "mark")

let test_golden_trace () =
  with_fake_clock @@ fun () ->
  record_golden_spans ();
  Alcotest.(check string) "golden serialization" golden_trace
    (Json.to_string (Tracing.to_json ()))

let test_golden_trace_file_roundtrip () =
  with_fake_clock @@ fun () ->
  record_golden_spans ();
  let path = "golden_trace_test.json" in
  Tracing.write path;
  (match Json.of_file path with
  | Error m -> Alcotest.fail m
  | Ok reread ->
      (match Json.of_string golden_trace with
      | Error m -> Alcotest.fail m
      | Ok golden ->
          Alcotest.(check bool) "file round-trip equals golden" true
            (Json.equal reread golden)));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* JSON printer/parser *)

let test_json_fixed_point () =
  let doc = {|[1,2.5,"a\nb",true,null,{"k":[],"u":"é"}]|} in
  match Json.of_string doc with
  | Error m -> Alcotest.fail m
  | Ok j -> (
      let printed = Json.to_string j in
      match Json.of_string printed with
      | Error m -> Alcotest.fail m
      | Ok j' ->
          Alcotest.(check bool) "reparse equals" true (Json.equal j j');
          Alcotest.(check string) "print is a fixed point" printed
            (Json.to_string j'))

let test_json_rejects_garbage () =
  let bad = [ "{"; "[1,]"; "tru"; ""; "{\"a\" 1}"; "[1] x" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad

(* ------------------------------------------------------------------ *)
(* snapshot / JSON round-trip *)

let apply_updates prefix updates =
  let cname i = Printf.sprintf "%s.c%d" prefix i in
  let gname i = Printf.sprintf "%s.g%d" prefix i in
  let hname i = Printf.sprintf "%s.h%d" prefix i in
  List.iter
    (fun u ->
      match u with
      | Incr_counter i -> Metrics.incr (Metrics.counter (cname i))
      | Add_counter (i, n) -> Metrics.add (Metrics.counter (cname i)) n
      | Set_gauge (i, v) ->
          if Float.is_finite v then Metrics.set (Metrics.gauge (gname i)) v
      | Max_gauge (i, v) ->
          if Float.is_finite v then
            Metrics.set_max (Metrics.gauge (gname i)) v
      | Observe (i, s) -> Metrics.observe (Metrics.histogram (hname i)) s)
    updates

let prop_snapshot_json_roundtrip =
  check_holds ~count:60 "metrics snapshot JSON round-trip" metric_updates
    (fun updates ->
      let prefix = fresh "rt" in
      apply_updates prefix updates;
      let snap =
        List.filter
          (fun e ->
            String.length e.Metrics.name >= String.length prefix
            && String.sub e.Metrics.name 0 (String.length prefix) = prefix)
          (Metrics.snapshot ())
      in
      let json_text = Json.to_string (Metrics.to_json snap) in
      match Json.of_string json_text with
      | Error _ -> false
      | Ok j -> (
          match Metrics.of_json j with
          | Error _ -> false
          | Ok snap' -> Metrics.equal_snapshot snap snap'))

let test_reset_keeps_handles_valid () =
  let name = fresh "reset" in
  let c = Metrics.counter name in
  Metrics.add c 7;
  Metrics.reset ();
  Alcotest.(check int) "zeroed" 0 (Metrics.value c);
  Metrics.incr c;
  Alcotest.(check int) "handle still live" 1 (Metrics.value c);
  match Metrics.find (Metrics.snapshot ()) name with
  | Some (Metrics.Counter_v 1) -> ()
  | _ -> Alcotest.fail "snapshot does not see the post-reset update"

let suite =
  [
    prop_counter_monotone;
    Alcotest.test_case "counter: rejects negative add" `Quick
      test_counter_rejects_negative;
    prop_histogram_quantile_matches_measure;
    Alcotest.test_case "histogram: bucket accounting" `Quick
      test_histogram_buckets;
    Alcotest.test_case "spans: nesting well-formed" `Quick test_span_nesting;
    Alcotest.test_case "spans: exception-safe" `Quick
      test_span_exception_safe;
    Alcotest.test_case "spans: disabled is a no-op" `Quick
      test_disabled_is_noop;
    Alcotest.test_case "trace: golden Chrome JSON" `Quick test_golden_trace;
    Alcotest.test_case "trace: golden file round-trip" `Quick
      test_golden_trace_file_roundtrip;
    Alcotest.test_case "json: print/parse fixed point" `Quick
      test_json_fixed_point;
    Alcotest.test_case "json: rejects malformed input" `Quick
      test_json_rejects_garbage;
    prop_snapshot_json_roundtrip;
    Alcotest.test_case "metrics: reset keeps handles valid" `Quick
      test_reset_keeps_handles_valid;
  ]
