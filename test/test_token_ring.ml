module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng
module Semantics = Tm_timed.Semantics
module Mapping = Tm_core.Mapping
module Hierarchy = Tm_core.Hierarchy
module Completeness = Tm_core.Completeness
module Reach = Tm_zones.Reach
module TR = Tm_systems.Token_ring
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module Measure = Tm_sim.Measure
open Gen

let p = TR.params_of_ints ~n:4 ~d1:1 ~d2:2
let impl = TR.impl p

let test_structure () =
  let sys = TR.system p in
  Alcotest.(check int) "alphabet" 4 (List.length sys.Tm_ioa.Ioa.alphabet);
  (* token moves around the ring *)
  (match sys.Tm_ioa.Ioa.delta 3 (TR.Pass 3) with
  | [ 0 ] -> ()
  | _ -> Alcotest.fail "wraparound");
  Alcotest.(check bool) "only holder can pass" true
    (sys.Tm_ioa.Ioa.delta 1 (TR.Pass 2) = [])

let test_rotation_interval () =
  Alcotest.(check interval_t) "[4,8]" (Tm_base.Interval.of_ints 4 8)
    (TR.rotation_interval p)

let test_zone_verified () =
  (match Reach.check_condition (TR.system p) (TR.boundmap p) (TR.u_rotation p) with
  | Reach.Verified _ -> ()
  | _ -> Alcotest.fail "rotation should verify");
  (* tightness *)
  let tighten bounds = { (TR.u_rotation p) with Tm_timed.Condition.bounds } in
  (match
     Reach.check_condition (TR.system p) (TR.boundmap p)
       (tighten (Tm_base.Interval.of_ints 4 7))
   with
  | Reach.Upper_violation _ -> ()
  | _ -> Alcotest.fail "upper must be tight");
  match
    Reach.check_condition (TR.system p) (TR.boundmap p)
      (tighten (Tm_base.Interval.of_ints 5 8))
  with
  | Reach.Lower_violation _ -> ()
  | _ -> Alcotest.fail "lower must be tight"

let test_chain_exhaustive () =
  List.iter
    (fun n ->
      let p = TR.params_of_ints ~n ~d1:1 ~d2:2 in
      match
        Hierarchy.check_exhaustive ~source:(TR.impl p) ~levels:(TR.chain p) ()
      with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "n=%d failed at level %d (%s)" n
            e.Hierarchy.level_index e.Hierarchy.level_name)
    [ 2; 3; 4; 5 ]

let test_exact_rotation () =
  let a = Completeness.analyze ~source:impl ~conds:[| TR.u_rotation p |] () in
  match
    Completeness.bounds_after a
      ~trigger:(fun _ act _ -> act = TR.Pass 0)
      ~cond:0
  with
  | Some (lo, hi) ->
      Alcotest.(check time_t) "n d1" (Time.of_int 4) lo;
      Alcotest.(check time_t) "n d2" (Time.of_int 8) hi
  | None -> Alcotest.fail "no rotations"

let test_intermediate_conditions () =
  let u2 = TR.u_from p ~k:2 in
  Alcotest.(check interval_t) "U(from 2) = [2,4]"
    (Tm_base.Interval.of_ints 2 4) u2.Tm_timed.Condition.bounds;
  Alcotest.(check bool) "bad k" true
    (match TR.u_from p ~k:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_broken_close_mapping () =
  (* a close mapping claiming one hop fewer must be caught *)
  let broken =
    let good = TR.f_close p in
    {
      good with
      Mapping.contains =
        (fun s u ->
          if s.Tm_core.Tstate.base = 1 then
            Time.(
              u.Tm_core.Tstate.lt.(0)
              >= Time.add_q s.Tm_core.Tstate.lt.(1)
                   (Rational.mul_int p.TR.n p.TR.d2))
          else good.Mapping.contains s u);
    }
  in
  let levels =
    List.mapi
      (fun i lv ->
        if i = List.length (TR.chain p) - 1 then
          { lv with Hierarchy.map = broken }
        else lv)
      (TR.chain p)
  in
  match Hierarchy.check_exhaustive ~source:impl ~levels () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "broken close mapping must be rejected"

let prop_rotations_in_bounds =
  check_holds "measured rotations within [n d1, n d2]"
    QCheck2.Gen.(int_range 0 200)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:60
          ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 1))
          impl
      in
      let seq = Simulator.project run in
      let t0s = Measure.occurrence_times (fun a -> a = TR.Pass 0) seq in
      List.for_all
        (fun gap -> Tm_base.Interval.mem gap (TR.rotation_interval p))
        (Measure.gaps t0s))

let prop_traces_satisfy_u_rotation =
  check_holds "traces satisfy the rotation condition"
    QCheck2.Gen.(int_range 0 200)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:60
          ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 1))
          impl
      in
      Semantics.semi_satisfies (Simulator.project run) (TR.u_rotation p) = [])

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "rotation interval" `Quick test_rotation_interval;
    Alcotest.test_case "zone verified and tight" `Quick test_zone_verified;
    Alcotest.test_case "hierarchy across sizes" `Quick test_chain_exhaustive;
    Alcotest.test_case "exact rotation window" `Quick test_exact_rotation;
    Alcotest.test_case "intermediate conditions" `Quick
      test_intermediate_conditions;
    Alcotest.test_case "broken close mapping rejected" `Quick
      test_broken_close_mapping;
    prop_rotations_in_bounds;
    prop_traces_satisfy_u_rotation;
  ]
