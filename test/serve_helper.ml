(* Child-process entry point for the daemon tests: [main.exe] launches
   this via [Unix.create_process] (fork is off-limits once worker
   domains exist) with the server config flattened to key=value args. *)

let () =
  (* this binary hosts worker re-executions when the daemon under test
     runs with workers > 0 *)
  Tm_serve.Workers.maybe_worker_main ();
  let cfg = ref (Tm_serve.Server.default_config ~socket_path:"serve.sock") in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match String.index_opt arg '=' with
        | None ->
            prerr_endline ("serve_helper: bad arg " ^ arg);
            exit 2
        | Some k -> (
            let key = String.sub arg 0 k in
            let v = String.sub arg (k + 1) (String.length arg - k - 1) in
            match key with
            | "socket" -> cfg := { !cfg with Tm_serve.Server.socket_path = v }
            | "state_dir" ->
                cfg := { !cfg with Tm_serve.Server.state_dir = Some v }
            | "queue" ->
                cfg := { !cfg with Tm_serve.Server.max_queue = int_of_string v }
            | "max_frame" ->
                cfg := { !cfg with Tm_serve.Server.max_frame = int_of_string v }
            | "attempts" ->
                cfg := { !cfg with Tm_serve.Server.attempts = int_of_string v }
            | "backoff_ms" ->
                cfg :=
                  { !cfg with
                    Tm_serve.Server.backoff_s = float_of_string v /. 1000. }
            | "deadline_ms" ->
                cfg :=
                  { !cfg with
                    Tm_serve.Server.max_deadline_s =
                      Some (float_of_string v /. 1000.) }
            | "workers" ->
                cfg := { !cfg with Tm_serve.Server.workers = int_of_string v }
            | "quarantine" ->
                cfg :=
                  { !cfg with
                    Tm_serve.Server.quarantine_after = int_of_string v }
            | "hb_timeout_ms" ->
                cfg :=
                  { !cfg with
                    Tm_serve.Server.hb_timeout_s = float_of_string v /. 1000. }
            | "chaos_kill_ms" ->
                cfg :=
                  { !cfg with
                    Tm_serve.Server.chaos_kill_every_s =
                      Some (float_of_string v /. 1000.) }
            | _ ->
                prerr_endline ("serve_helper: unknown key " ^ key);
                exit 2))
    Sys.argv;
  match Tm_serve.Server.run !cfg with
  | () -> exit 0
  | exception Tm_serve.Server.Already_running _ -> exit 3
  | exception _ -> exit 1
