(* Shared QCheck generators and Alcotest testables. *)

module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval

let rational : Rational.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map2
      (fun n d -> Rational.make n d)
      (int_range (-200) 200) (int_range 1 12))

let pos_rational : Rational.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map2 (fun n d -> Rational.make n d) (int_range 1 200) (int_range 1 12))

let nonneg_rational : Rational.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map2 (fun n d -> Rational.make n d) (int_range 0 200) (int_range 1 12))

let time : Time.t QCheck2.Gen.t =
  QCheck2.Gen.(
    frequency
      [ (6, map (fun q -> Time.Fin q) rational); (1, return Time.Inf) ])

let interval : Interval.t QCheck2.Gen.t =
  QCheck2.Gen.(
    bind nonneg_rational (fun lo ->
        frequency
          [
            ( 4,
              map
                (fun w ->
                  Interval.make lo (Time.Fin (Rational.add lo w)))
                pos_rational );
            (1, return (Interval.unbounded_above lo));
          ]))

let print_rational = Rational.to_string
let print_time = Time.to_string

(* Alcotest testables *)
let rational_t = Alcotest.testable Rational.pp Rational.equal
let time_t = Alcotest.testable Time.pp Time.equal
let interval_t = Alcotest.testable Interval.pp Interval.equal

let q = Rational.of_int
let qq n d = Rational.make n d

let check_holds name ?(count = 200) gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)
