(* Shared QCheck generators and Alcotest testables. *)

module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval

let rational : Rational.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map2
      (fun n d -> Rational.make n d)
      (int_range (-200) 200) (int_range 1 12))

let pos_rational : Rational.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map2 (fun n d -> Rational.make n d) (int_range 1 200) (int_range 1 12))

let nonneg_rational : Rational.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map2 (fun n d -> Rational.make n d) (int_range 0 200) (int_range 1 12))

let time : Time.t QCheck2.Gen.t =
  QCheck2.Gen.(
    frequency
      [ (6, map (fun q -> Time.Fin q) rational); (1, return Time.Inf) ])

let interval : Interval.t QCheck2.Gen.t =
  QCheck2.Gen.(
    bind nonneg_rational (fun lo ->
        frequency
          [
            ( 4,
              map
                (fun w ->
                  Interval.make lo (Time.Fin (Rational.add lo w)))
                pos_rational );
            (1, return (Interval.unbounded_above lo));
          ]))

let print_rational = Rational.to_string
let print_time = Time.to_string

(* Alcotest testables *)
let rational_t = Alcotest.testable Rational.pp Rational.equal
let time_t = Alcotest.testable Time.pp Time.equal
let interval_t = Alcotest.testable Interval.pp Interval.equal

let q = Rational.of_int
let qq n d = Rational.make n d

let check_holds name ?(count = 200) gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)

(* Random metric-update scripts for the Tm_obs round-trip property:
   indices select from a small per-kind name pool so one script mixes
   updates to a handful of counters, gauges and histograms. *)
type metric_update =
  | Incr_counter of int
  | Add_counter of int * int
  | Set_gauge of int * float
  | Max_gauge of int * float
  | Observe of int * Rational.t

let metric_update : metric_update QCheck2.Gen.t =
  QCheck2.Gen.(
    frequency
      [
        (3, map (fun i -> Incr_counter i) (int_range 0 3));
        ( 2,
          map2 (fun i n -> Add_counter (i, n)) (int_range 0 3)
            (int_range 0 50) );
        (2, map2 (fun i v -> Set_gauge (i, v)) (int_range 0 2) float);
        (1, map2 (fun i v -> Max_gauge (i, v)) (int_range 0 2) float);
        ( 3,
          map2 (fun i s -> Observe (i, s)) (int_range 0 2) nonneg_rational );
      ])

let metric_updates : metric_update list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 0 40) metric_update)

let print_metric_update = function
  | Incr_counter i -> Printf.sprintf "incr c%d" i
  | Add_counter (i, n) -> Printf.sprintf "add c%d %d" i n
  | Set_gauge (i, v) -> Printf.sprintf "set g%d %h" i v
  | Max_gauge (i, v) -> Printf.sprintf "max g%d %h" i v
  | Observe (i, s) -> Printf.sprintf "observe h%d %s" i (Rational.to_string s)
