(* Shared QCheck generators and Alcotest testables. *)

module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval

let rational : Rational.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map2
      (fun n d -> Rational.make n d)
      (int_range (-200) 200) (int_range 1 12))

let pos_rational : Rational.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map2 (fun n d -> Rational.make n d) (int_range 1 200) (int_range 1 12))

let nonneg_rational : Rational.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map2 (fun n d -> Rational.make n d) (int_range 0 200) (int_range 1 12))

let time : Time.t QCheck2.Gen.t =
  QCheck2.Gen.(
    frequency
      [ (6, map (fun q -> Time.Fin q) rational); (1, return Time.Inf) ])

let interval : Interval.t QCheck2.Gen.t =
  QCheck2.Gen.(
    bind nonneg_rational (fun lo ->
        frequency
          [
            ( 4,
              map
                (fun w ->
                  Interval.make lo (Time.Fin (Rational.add lo w)))
                pos_rational );
            (1, return (Interval.unbounded_above lo));
          ]))

let print_rational = Rational.to_string
let print_time = Time.to_string

(* Alcotest testables *)
let rational_t = Alcotest.testable Rational.pp Rational.equal
let time_t = Alcotest.testable Time.pp Time.equal
let interval_t = Alcotest.testable Interval.pp Interval.equal

let q = Rational.of_int
let qq n d = Rational.make n d

let check_holds name ?(count = 200) ?print gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ?print gen prop)

(* Random metric-update scripts for the Tm_obs round-trip property:
   indices select from a small per-kind name pool so one script mixes
   updates to a handful of counters, gauges and histograms. *)
type metric_update =
  | Incr_counter of int
  | Add_counter of int * int
  | Set_gauge of int * float
  | Max_gauge of int * float
  | Observe of int * Rational.t

let metric_update : metric_update QCheck2.Gen.t =
  QCheck2.Gen.(
    frequency
      [
        (3, map (fun i -> Incr_counter i) (int_range 0 3));
        ( 2,
          map2 (fun i n -> Add_counter (i, n)) (int_range 0 3)
            (int_range 0 50) );
        (2, map2 (fun i v -> Set_gauge (i, v)) (int_range 0 2) float);
        (1, map2 (fun i v -> Max_gauge (i, v)) (int_range 0 2) float);
        ( 3,
          map2 (fun i s -> Observe (i, s)) (int_range 0 2) nonneg_rational );
      ])

let metric_updates : metric_update list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 0 40) metric_update)

let print_metric_update = function
  | Incr_counter i -> Printf.sprintf "incr c%d" i
  | Add_counter (i, n) -> Printf.sprintf "add c%d %d" i n
  | Set_gauge (i, v) -> Printf.sprintf "set g%d %h" i v
  | Max_gauge (i, v) -> Printf.sprintf "max g%d %h" i v
  | Observe (i, s) -> Printf.sprintf "observe h%d %s" i (Rational.to_string s)

(* ------------------------------------------------------------------ *)
(* Random DBM-operation scripts for the kernel differential harness
   (test_dbm_diff).  Clock indices and bound constants are generated
   raw and normalized by the applier, so shrinking stays structural. *)

type dbm_constraint = {
  ci : int;  (** raw row index, applier takes [mod nclocks] *)
  cj : int;  (** raw column index *)
  cnum : int;
  cden : int;  (** bound is [cnum/cden] *)
  cstrict : bool;
}

type dbm_op =
  | Constrain of dbm_constraint
  | Up
  | Reset of int  (** raw clock, applier maps into [1..nclocks-1] *)
  | Free of int
  | Intersect of dbm_constraint list
      (** intersect with [top] refined by these constraints *)
  | Extrapolate of int  (** max constant *)

type dbm_script = { ds_clocks : int; ds_ops : dbm_op list }

let dbm_constraint : dbm_constraint QCheck2.Gen.t =
  QCheck2.Gen.(
    map
      (fun (ci, cj, cnum, (cden, cstrict)) ->
        { ci; cj; cnum; cden; cstrict })
      (quad (int_range 0 4) (int_range 0 4) (int_range (-12) 12)
         (pair (int_range 1 4) bool)))

let dbm_op : dbm_op QCheck2.Gen.t =
  QCheck2.Gen.(
    frequency
      [
        (6, map (fun c -> Constrain c) dbm_constraint);
        (2, return Up);
        (2, map (fun x -> Reset x) (int_range 0 4));
        (2, map (fun x -> Free x) (int_range 0 4));
        (1, map (fun cs -> Intersect cs) (list_size (int_range 0 3) dbm_constraint));
        (1, map (fun m -> Extrapolate m) (int_range 0 6));
      ])

let dbm_script : dbm_script QCheck2.Gen.t =
  QCheck2.Gen.(
    map2
      (fun ds_clocks ds_ops -> { ds_clocks; ds_ops })
      (int_range 2 5)
      (list_size (int_range 1 25) dbm_op))

let print_dbm_constraint c =
  Printf.sprintf "x%d-x%d %s %d/%d" c.ci c.cj
    (if c.cstrict then "<" else "<=")
    c.cnum c.cden

let print_dbm_op = function
  | Constrain c -> print_dbm_constraint c
  | Up -> "up"
  | Reset x -> Printf.sprintf "reset x%d" x
  | Free x -> Printf.sprintf "free x%d" x
  | Intersect cs ->
      Printf.sprintf "intersect[%s]"
        (String.concat "; " (List.map print_dbm_constraint cs))
  | Extrapolate m -> Printf.sprintf "extrapolate %d" m

let print_dbm_script s =
  Printf.sprintf "clocks=%d: %s" s.ds_clocks
    (String.concat " | " (List.map print_dbm_op s.ds_ops))

(* Integral script variant: the same op mix with every bound
   denominator pinned to 1.  These are exactly the inputs the
   packed-int kernel accepts, so the three-way differential
   (int == fast == ref) draws from here. *)
let int_dbm_constraint : dbm_constraint QCheck2.Gen.t =
  QCheck2.Gen.(
    map
      (fun (ci, cj, cnum, cstrict) -> { ci; cj; cnum; cden = 1; cstrict })
      (quad (int_range 0 4) (int_range 0 4) (int_range (-12) 12) bool))

let int_dbm_op : dbm_op QCheck2.Gen.t =
  QCheck2.Gen.(
    frequency
      [
        (6, map (fun c -> Constrain c) int_dbm_constraint);
        (2, return Up);
        (2, map (fun x -> Reset x) (int_range 0 4));
        (2, map (fun x -> Free x) (int_range 0 4));
        ( 1,
          map
            (fun cs -> Intersect cs)
            (list_size (int_range 0 3) int_dbm_constraint) );
        (1, map (fun m -> Extrapolate m) (int_range 0 6));
      ])

let int_dbm_script : dbm_script QCheck2.Gen.t =
  QCheck2.Gen.(
    map2
      (fun ds_clocks ds_ops -> { ds_clocks; ds_ops })
      (int_range 2 5)
      (list_size (int_range 1 25) int_dbm_op))

(* ------------------------------------------------------------------ *)
(* Small random MMT automata (boundmap + closed IOA) for the
   fixpoint-for-fixpoint engine differential.  States are [0..ns-1],
   actions [0..na-1] with action [a] in class [a mod nc]; bounds use
   small numerators over denominators 1-2 so zones hit fractional
   corners without blowing up the constant range. *)

type raut = {
  ra_states : int;
  ra_nclasses : int;
  ra_delta : int list array array;  (** [state].(action) -> successors *)
  ra_bounds : ((int * int) * (int * int) option) array;
      (** per class: lower [(num, den)]; upper is lower + width, or
          unbounded when [None] *)
}

let boundmap_automaton : raut QCheck2.Gen.t =
  QCheck2.Gen.(
    int_range 1 4 >>= fun ns ->
    int_range 1 3 >>= fun nc ->
    int_range nc (nc + 2) >>= fun na ->
    let successors =
      frequency
        [
          (1, return []);
          (2, map (fun s -> [ s ]) (int_range 0 (ns - 1)));
          ( 1,
            map2 (fun s s' -> [ s; s' ]) (int_range 0 (ns - 1))
              (int_range 0 (ns - 1)) );
        ]
    in
    array_size (return ns) (array_size (return na) successors)
    >>= fun ra_delta ->
    let bound = pair (int_range 0 8) (int_range 1 2) in
    let upper =
      frequency [ (5, map (fun b -> Some b) bound); (1, return None) ]
    in
    array_size (return nc) (pair bound upper) >>= fun ra_bounds ->
    return { ra_states = ns; ra_nclasses = nc; ra_delta; ra_bounds })

(* Integral automaton variant: every bound endpoint is an integer, so
   [Tm_timed.Boundmap.is_integral] holds for the built map and
   [Reach.Auto] selects the packed-int kernel — QCheck exercises the
   auto-dispatch path with these. *)
let int_boundmap_automaton : raut QCheck2.Gen.t =
  QCheck2.Gen.(
    int_range 1 4 >>= fun ns ->
    int_range 1 3 >>= fun nc ->
    int_range nc (nc + 2) >>= fun na ->
    let successors =
      frequency
        [
          (1, return []);
          (2, map (fun s -> [ s ]) (int_range 0 (ns - 1)));
          ( 1,
            map2 (fun s s' -> [ s; s' ]) (int_range 0 (ns - 1))
              (int_range 0 (ns - 1)) );
        ]
    in
    array_size (return ns) (array_size (return na) successors)
    >>= fun ra_delta ->
    let bound = pair (int_range 0 8) (return 1) in
    let upper =
      frequency [ (5, map (fun b -> Some b) bound); (1, return None) ]
    in
    array_size (return nc) (pair bound upper) >>= fun ra_bounds ->
    return { ra_states = ns; ra_nclasses = nc; ra_delta; ra_bounds })

let build_boundmap_automaton (r : raut) :
    (int, int) Tm_ioa.Ioa.t * Tm_timed.Boundmap.t =
  let module Ioa = Tm_ioa.Ioa in
  let module Boundmap = Tm_timed.Boundmap in
  let nc = r.ra_nclasses in
  let cname i = "k" ^ string_of_int i in
  let classes = List.init nc cname in
  let na = Array.length r.ra_delta.(0) in
  let aut =
    {
      Ioa.name = "rand_mmt";
      start = [ 0 ];
      alphabet = List.init na Fun.id;
      kind_of = (fun _ -> Ioa.Output);
      delta =
        (fun s a ->
          if s < 0 || s >= r.ra_states || a < 0 || a >= na then []
          else r.ra_delta.(s).(a));
      classes;
      class_of = (fun a -> Some (cname (a mod nc)));
      equal_state = Int.equal;
      hash_state = Hashtbl.hash;
      pp_state = Format.pp_print_int;
      equal_action = Int.equal;
      pp_action = Format.pp_print_int;
    }
  in
  let bm =
    Boundmap.of_list
      (List.mapi
         (fun i c ->
           let (ln, ld), ub = r.ra_bounds.(i) in
           let lo = Rational.make ln ld in
           let hi =
             match ub with
             | None -> Time.Inf
             | Some (wn, wd) ->
                 let w = Rational.make wn wd in
                 (* MMT boundmaps need b_u > 0. *)
                 let w =
                   if Rational.sign lo = 0 && Rational.sign w = 0 then
                     Rational.one
                   else w
                 in
                 Time.Fin (Rational.add lo w)
           in
           (c, Interval.make lo hi))
         classes)
  in
  (aut, bm)

(* Random fault-model perturbations over a given class set, paired
   with {!boundmap_automaton} (classes "k0".."k2") by the robustness
   metamorphic suite. *)
let perturbation ~classes : Tm_faults.Perturb.spec QCheck2.Gen.t =
  let module P = Tm_faults.Perturb in
  QCheck2.Gen.(
    let cls = oneofl classes in
    let mag =
      map2 (fun n d -> Rational.make n d) (int_range 0 8) (int_range 1 4)
    in
    let base =
      frequency
        [
          (3, map P.widen mag);
          (3, map2 P.widen_class cls mag);
          (2, map P.drift mag);
          (2, map2 P.drift_class cls mag);
          (1, map2 P.rebound cls interval);
        ]
    in
    frequency
      [ (5, base); (1, map P.seq (list_size (int_range 0 3) base)) ])

let print_perturbation = Tm_faults.Perturb.to_string

let print_raut (r : raut) =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "states=%d classes=%d bounds=[" r.ra_states r.ra_nclasses);
  Array.iteri
    (fun i ((ln, ld), ub) ->
      Buffer.add_string b
        (Printf.sprintf "%sk%d:[%d/%d,%s]"
           (if i > 0 then " " else "")
           i ln ld
           (match ub with
           | None -> "inf"
           | Some (wn, wd) -> Printf.sprintf "+%d/%d" wn wd)))
    r.ra_bounds;
  Buffer.add_string b "] delta=";
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun a succs ->
          if succs <> [] then
            Buffer.add_string b
              (Printf.sprintf "(%d,a%d->%s)" s a
                 (String.concat "," (List.map string_of_int succs))))
        row)
    r.ra_delta;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Byte-level scripts for the serve-protocol fuzz tests.  A script is
   rendered to one byte stream (length-prefixed frames, oversized
   announcements, raw garbage, a frame cut off mid-payload) and fed to
   the reader in arbitrary chunk sizes; encoding lives here so the
   generator stays independent of the library under test. *)

type frame_item =
  | Wire_frame of string  (* well-formed: header + payload *)
  | Wire_oversized of int  (* header announcing [n] > max_frame, body sent *)
  | Wire_garbage of string  (* raw bytes: desyncs framing on purpose *)
  | Wire_truncated of string  (* header claims one byte more than sent *)

let frame_header n =
  String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff))

(* [max_frame] the matching reader must use; oversized bodies stay small
   so rendering an announcement of millions of bytes costs nothing. *)
let fuzz_max_frame = 256

let render_frame_item = function
  | Wire_frame p -> frame_header (String.length p) ^ p
  | Wire_oversized n -> frame_header n ^ String.make (min n 4096) 'x'
  | Wire_garbage g -> g
  | Wire_truncated p -> frame_header (String.length p + 1) ^ p

let render_frame_script items = String.concat "" (List.map render_frame_item items)

let frame_payload : string QCheck2.Gen.t =
  QCheck2.Gen.(string_size ~gen:char (int_range 0 fuzz_max_frame))

let frame_item : frame_item QCheck2.Gen.t =
  QCheck2.Gen.(
    frequency
      [
        (5, map (fun p -> Wire_frame p) frame_payload);
        ( 1,
          map
            (fun n -> Wire_oversized n)
            (int_range (fuzz_max_frame + 1) (1 lsl 28)) );
        (1, map (fun g -> Wire_garbage g) (string_size ~gen:char (int_range 1 40)));
        (1, map (fun p -> Wire_truncated p) frame_payload);
      ])

(* Scripts whose decode is exactly predictable: only complete frames and
   oversized announcements small enough that the full body is sent, so
   the expected event list is the script. *)
let clean_frame_script : frame_item list QCheck2.Gen.t =
  QCheck2.Gen.(
    list_size (int_range 0 8)
      (frequency
         [
           (4, map (fun p -> Wire_frame p) frame_payload);
           ( 1,
             map
               (fun n -> Wire_oversized n)
               (int_range (fuzz_max_frame + 1) 4096) );
         ]))

let frame_script : frame_item list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 0 8) frame_item)

(* Chunk sizes used to slice the stream on its way into the reader. *)
let chunk_sizes : int list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 1 12) (int_range 1 17))

let print_frame_item = function
  | Wire_frame p -> Printf.sprintf "frame(%d)" (String.length p)
  | Wire_oversized n -> Printf.sprintf "oversized(%d)" n
  | Wire_garbage g -> Printf.sprintf "garbage(%d)" (String.length g)
  | Wire_truncated p -> Printf.sprintf "truncated(%d)" (String.length p)

let print_frame_script items =
  String.concat "; " (List.map print_frame_item items)
