module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Boundmap = Tm_timed.Boundmap
module RM = Tm_systems.Resource_manager
open Gen

let bm =
  Boundmap.of_list
    [ ("A", Interval.of_ints 1 2); ("B", Interval.unbounded_above (q 3)) ]

let test_find () =
  Alcotest.(check interval_t) "A" (Interval.of_ints 1 2) (Boundmap.find bm "A");
  Alcotest.(check rational_t) "lower B" (q 3) (Boundmap.lower bm "B");
  Alcotest.(check time_t) "upper B" Time.Inf (Boundmap.upper bm "B");
  Alcotest.check_raises "missing"
    (Invalid_argument "Boundmap.find: class \"Z\" has no bounds") (fun () ->
      ignore (Boundmap.find bm "Z"))

let test_duplicate () =
  Alcotest.(check bool) "duplicate rejected" true
    (match
       Boundmap.of_list
         [ ("A", Interval.of_ints 1 2); ("A", Interval.of_ints 1 3) ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_classes () =
  Alcotest.(check (list string)) "classes" [ "A"; "B" ] (Boundmap.classes bm)

let test_covers () =
  let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1 in
  (match Boundmap.covers (RM.boundmap p) (RM.system p) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  match Boundmap.covers bm (RM.system p) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "should not cover TICK/LOCAL"

let test_add () =
  let bm2 = Boundmap.add bm "C" (Interval.of_ints 0 1) in
  Alcotest.(check interval_t) "added" (Interval.of_ints 0 1)
    (Boundmap.find bm2 "C");
  Alcotest.(check bool) "re-add rejected" true
    (match Boundmap.add bm "A" (Interval.of_ints 0 1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_max_constant () =
  Alcotest.(check rational_t) "max constant" (q 3) (Boundmap.max_constant bm);
  let bm3 =
    Boundmap.of_list [ ("X", Interval.make (qq 1 2) (Time.Fin (qq 7 3))) ]
  in
  Alcotest.(check rational_t) "fractional max" (qq 7 3)
    (Boundmap.max_constant bm3)

let suite =
  [
    Alcotest.test_case "find/lower/upper" `Quick test_find;
    Alcotest.test_case "duplicates" `Quick test_duplicate;
    Alcotest.test_case "classes" `Quick test_classes;
    Alcotest.test_case "covers" `Quick test_covers;
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "max_constant" `Quick test_max_constant;
  ]
