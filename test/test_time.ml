module Rational = Tm_base.Rational
module Time = Tm_base.Time
open Gen

let test_basics () =
  Alcotest.(check bool) "zero finite" true (Time.is_finite Time.zero);
  Alcotest.(check bool) "inf not finite" false (Time.is_finite Time.Inf);
  Alcotest.(check rational_t) "to_rational" (q 3)
    (Time.to_rational (Time.of_int 3));
  Alcotest.check_raises "to_rational inf"
    (Invalid_argument "Time.to_rational: infinite") (fun () ->
      ignore (Time.to_rational Time.Inf))

let test_add () =
  Alcotest.(check time_t) "fin+fin" (Time.of_int 5)
    (Time.add (Time.of_int 2) (Time.of_int 3));
  Alcotest.(check time_t) "fin+inf" Time.Inf
    (Time.add (Time.of_int 2) Time.Inf);
  Alcotest.(check time_t) "add_q inf" Time.Inf (Time.add_q Time.Inf (q 1));
  Alcotest.(check time_t) "sub_q" (Time.of_int 1)
    (Time.sub_q (Time.of_int 3) (q 2));
  Alcotest.(check time_t) "sub_q inf" Time.Inf (Time.sub_q Time.Inf (q 2))

let test_mul_int () =
  Alcotest.(check time_t) "3 * 2" (Time.of_int 6)
    (Time.mul_int 3 (Time.of_int 2));
  Alcotest.(check time_t) "0 * inf = 0" Time.zero (Time.mul_int 0 Time.Inf);
  Alcotest.(check time_t) "2 * inf" Time.Inf (Time.mul_int 2 Time.Inf);
  Alcotest.check_raises "negative"
    (Invalid_argument "Time.mul_int: negative multiplier") (fun () ->
      ignore (Time.mul_int (-1) Time.zero))

let test_compare () =
  Alcotest.(check bool) "fin < inf" true Time.(of_int 1000 < Inf);
  Alcotest.(check bool) "inf <= inf" true Time.(Inf <= Inf);
  Alcotest.(check bool) "le_q" true (Time.le_q (q 3) (Time.of_int 3));
  Alcotest.(check bool) "lt_q strict" false (Time.lt_q (q 3) (Time.of_int 3));
  Alcotest.(check bool) "lt_q inf" true (Time.lt_q (q 3) Time.Inf);
  Alcotest.(check time_t) "min" (Time.of_int 1)
    (Time.min (Time.of_int 1) Time.Inf);
  Alcotest.(check time_t) "max" Time.Inf (Time.max (Time.of_int 1) Time.Inf)

let prop_add_monotone =
  check_holds "add_q monotone" QCheck2.Gen.(triple time rational rational)
    (fun (t, a, b) ->
      QCheck2.assume Rational.(a <= b);
      Time.(Time.add_q t a <= Time.add_q t b))

let prop_add_sub_roundtrip =
  check_holds "add_q then sub_q" QCheck2.Gen.(pair time rational)
    (fun (t, a) -> Time.equal t (Time.sub_q (Time.add_q t a) a))

let prop_compare_consistent_with_rational =
  check_holds "Fin comparison matches Rational"
    QCheck2.Gen.(pair rational rational)
    (fun (a, b) ->
      Time.compare (Time.Fin a) (Time.Fin b) = Rational.compare a b)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "addition" `Quick test_add;
    Alcotest.test_case "mul_int" `Quick test_mul_int;
    Alcotest.test_case "comparisons" `Quick test_compare;
    prop_add_monotone;
    prop_add_sub_roundtrip;
    prop_compare_consistent_with_rational;
  ]
