module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module TA = Tm_core.Time_automaton
module Mapping = Tm_core.Mapping
module Completeness = Tm_core.Completeness
module RM = Tm_systems.Resource_manager
module IM = Tm_systems.Interrupt_manager
module SR = Tm_systems.Signal_relay
module D = Tm_core.Dummify
module Reach = Tm_zones.Reach
module Region = Tm_zones.Region
open Gen

let p = RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1
let impl = RM.impl p
let analysis = Completeness.analyze ~source:impl ~conds:[| RM.g1 p; RM.g2 p |] ()

let test_exact_first_grant () =
  let lo, hi = Completeness.start_bounds analysis ~cond:0 in
  Alcotest.(check time_t) "inf = k c1" (Time.of_int 6) lo;
  Alcotest.(check time_t) "sup = k c2 + l" (Time.of_int 10) hi

let test_exact_inter_grant () =
  match
    Completeness.bounds_after analysis
      ~trigger:(fun _ act _ -> act = RM.Grant)
      ~cond:1
  with
  | Some (lo, hi) ->
      Alcotest.(check time_t) "inf = k c1 - l" (Time.of_int 5) lo;
      Alcotest.(check time_t) "sup = k c2 + l" (Time.of_int 10) hi
  | None -> Alcotest.fail "no grant edges reachable"

let test_exact_interrupt_variant () =
  let ip = IM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:3 in
  let a =
    Completeness.analyze ~source:(IM.impl ip)
      ~conds:[| IM.g1 ip; IM.g2 ip |] ()
  in
  let lo, hi = Completeness.start_bounds a ~cond:0 in
  Alcotest.(check time_t) "first inf" (Time.of_int 6) lo;
  Alcotest.(check time_t) "first sup" (Time.of_int 12) hi;
  match
    Completeness.bounds_after a ~trigger:(fun _ act _ -> act = IM.Grant)
      ~cond:1
  with
  | Some (lo, hi) ->
      (* l >= c1: lower degrades to (k-1) c1 *)
      Alcotest.(check time_t) "between inf" (Time.of_int 4) lo;
      Alcotest.(check time_t) "between sup" (Time.of_int 12) hi
  | None -> Alcotest.fail "no grant edges"

let test_thm_7_1_manager () =
  let f = Completeness.mapping analysis ~spec:(RM.spec p) in
  match Mapping.check_exhaustive ~source:impl ~target:(RM.spec p) f () with
  | Ok st -> Alcotest.(check bool) "nonempty" true (st.Mapping.product_states > 0)
  | Error e -> Alcotest.failf "%a" (Mapping.pp_failure impl) e

let test_thm_7_1_relay () =
  let rp = SR.params_of_ints ~n:2 ~d1:1 ~d2:2 in
  let rimpl = SR.impl rp in
  let a =
    Completeness.analyze ~source:rimpl ~conds:[| SR.u_cond rp ~k:0 |] ()
  in
  let f = Completeness.mapping a ~spec:(SR.spec rp) in
  match Mapping.check_exhaustive ~source:rimpl ~target:(SR.spec rp) f () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" (Mapping.pp_failure rimpl) e

let test_relay_exact_delay () =
  let rp = SR.params_of_ints ~n:4 ~d1:1 ~d2:3 in
  let a =
    Completeness.analyze ~source:(SR.impl rp) ~conds:[| SR.u_cond rp ~k:0 |] ()
  in
  match
    Completeness.bounds_after a
      ~trigger:(fun _ act _ -> act = D.Base (SR.Signal 0))
      ~cond:0
  with
  | Some (lo, hi) ->
      Alcotest.(check time_t) "n d1" (Time.of_int 4) lo;
      Alcotest.(check time_t) "n d2" (Time.of_int 12) hi
  | None -> Alcotest.fail "no SIGNAL_0 edges"

(* The completeness analysis derives the relay window from the region
   construction; the packed-int zone kernel (running under LU
   widening) is an independent decision procedure and must certify the
   very same window as tight, and agree with the region engine on the
   reachable base states. *)
let test_relay_window_matches_int_kernel () =
  let rp = SR.params_of_ints ~n:4 ~d1:1 ~d2:3 in
  let a =
    Completeness.analyze ~source:(SR.impl rp) ~conds:[| SR.u_cond rp ~k:0 |] ()
  in
  (match
     Completeness.bounds_after a
       ~trigger:(fun _ act _ -> act = D.Base (SR.Signal 0))
       ~cond:0
   with
  | None -> Alcotest.fail "no SIGNAL_0 edges"
  | Some (lo, hi) -> (
      match (lo, hi) with
      | Time.Fin lo_q, Time.Fin hi_q ->
          let line = SR.line rp and rbm = SR.boundmap rp in
          let u bounds =
            Tm_timed.Condition.make ~name:"U"
              ~t_step:(fun _ act _ -> act = SR.Signal 0)
              ~bounds
              ~in_pi:(fun act -> act = SR.Signal rp.SR.n)
              ()
          in
          (* whole-unit tightenings: the int kernel rejects non-integer
             bounds, and the window is tight at integer granularity *)
          let one = q 1 in
          let v bounds = Reach.Int.check_condition line rbm (u bounds) in
          Alcotest.(check bool) "analysis window verified by int kernel" true
            (match v (Interval.make lo_q hi) with
            | Reach.Verified _ -> true
            | _ -> false);
          Alcotest.(check bool) "upper - 1 refuted" true
            (match
               v (Interval.make lo_q (Time.Fin (Rational.sub hi_q one)))
             with
            | Reach.Upper_violation _ -> true
            | _ -> false);
          Alcotest.(check bool) "lower + 1 refuted" true
            (match v (Interval.make (Rational.add lo_q one) hi) with
            | Reach.Lower_violation _ -> true
            | _ -> false)
      | _ -> Alcotest.fail "relay window should be finite"));
  let rp = SR.params_of_ints ~n:3 ~d1:1 ~d2:2 in
  let line = SR.line rp and rbm = SR.boundmap rp in
  let _, zstates = Reach.Int.reachable line rbm in
  let _, rstates = Region.reachable line rbm in
  Alcotest.(check bool) "regions agree with the int kernel" true
    (List.sort compare (List.map Array.to_list zstates)
    = List.sort compare (List.map Array.to_list rstates))

(* Theorem 7.1 is stated under the hypothesis that the conditions hold;
   with a condition the system violates, the constructed mapping must
   fail against that spec. *)
let test_completeness_needs_truth () =
  let tight =
    Tm_timed.Condition.make ~name:"G1"
      ~t_start:(fun _ -> true)
      ~bounds:(Interval.of_ints 6 9) (* true bound is 10 *)
      ~in_pi:(fun a -> a = RM.Grant)
      ()
  in
  let a = Completeness.analyze ~source:impl ~conds:[| tight |] () in
  let spec = TA.make (RM.system p) [ tight ] in
  let f = Completeness.mapping a ~spec in
  match Mapping.check_exhaustive ~source:impl ~target:spec f () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "false spec must not admit a mapping"

let test_dead_state_detected () =
  (* the raw (un-dummified) relay deadlocks: analyze must refuse *)
  let rp = SR.params_of_ints ~n:2 ~d1:1 ~d2:2 in
  let raw = TA.of_boundmap (SR.line rp) (SR.boundmap rp) in
  let base_cond =
    Tm_timed.Condition.make ~name:"u"
      ~t_step:(fun _ a _ -> a = SR.Signal 0)
      ~bounds:(SR.delay_interval rp)
      ~in_pi:(fun a -> a = SR.Signal rp.SR.n)
      ()
  in
  Alcotest.check_raises "Dead_state" Completeness.Dead_state (fun () ->
      ignore (Completeness.analyze ~source:raw ~conds:[| base_cond |] ()))

let test_sup_infinite_when_unreachable () =
  (* a condition whose Pi action never occurs: sup = inf = infinity *)
  let never =
    Tm_timed.Condition.make ~name:"never"
      ~t_start:(fun _ -> true)
      ~bounds:(Interval.unbounded_above Rational.zero)
      ~in_pi:(fun _ -> false)
      ()
  in
  let a = Completeness.analyze ~source:impl ~conds:[| never |] () in
  let lo, hi = Completeness.start_bounds a ~cond:0 in
  Alcotest.(check time_t) "inf" Time.Inf lo;
  Alcotest.(check time_t) "sup" Time.Inf hi

(* Theorem 4.4's closed forms hold across random parameter draws. *)
let prop_closed_forms_random_params =
  Gen.check_holds ~count:40 "closed forms across random manager parameters"
    QCheck2.Gen.(
      quad (int_range 1 4) (int_range 2 4) (int_range 0 3) (int_range 1 3))
    (fun (k, c1, dc, l) ->
      let c2 = c1 + dc in
      QCheck2.assume (l < c1);
      let p = RM.params_of_ints ~k ~c1 ~c2 ~l in
      let a =
        Completeness.analyze ~source:(RM.impl p)
          ~conds:[| RM.g1 p; RM.g2 p |] ()
      in
      let lo, hi = Completeness.start_bounds a ~cond:0 in
      let iv = RM.grant_interval_first p in
      Time.equal lo (Time.Fin (Interval.lo iv))
      && Time.equal hi (Interval.hi iv)
      &&
      match
        Completeness.bounds_after a
          ~trigger:(fun _ act _ -> act = RM.Grant)
          ~cond:1
      with
      | Some (lo, hi) ->
          let iv = RM.grant_interval_between p in
          Time.equal lo (Time.Fin (Interval.lo iv))
          && Time.equal hi (Interval.hi iv)
      | None -> false)

let suite =
  [
    Alcotest.test_case "exact first-grant window" `Quick
      test_exact_first_grant;
    Alcotest.test_case "exact inter-grant window" `Quick
      test_exact_inter_grant;
    Alcotest.test_case "interrupt variant exact windows" `Quick
      test_exact_interrupt_variant;
    Alcotest.test_case "Theorem 7.1 on the manager" `Quick
      test_thm_7_1_manager;
    Alcotest.test_case "Theorem 7.1 on the relay" `Quick test_thm_7_1_relay;
    Alcotest.test_case "relay exact delay" `Quick test_relay_exact_delay;
    Alcotest.test_case "relay window certified by int kernel" `Quick
      test_relay_window_matches_int_kernel;
    Alcotest.test_case "false spec rejected" `Quick
      test_completeness_needs_truth;
    Alcotest.test_case "dead states detected" `Quick test_dead_state_detected;
    Alcotest.test_case "unreachable Pi gives infinity" `Quick
      test_sup_infinite_when_unreachable;
    prop_closed_forms_random_params;
  ]
