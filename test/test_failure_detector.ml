module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng
module Semantics = Tm_timed.Semantics
module Completeness = Tm_core.Completeness
module Reach = Tm_zones.Reach
module FD = Tm_systems.Failure_detector
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
open Gen

let p = FD.params_of_ints ~h1:1 ~h2:2 ~g1:2 ~g2:3 ~m:2
let impl = FD.impl p

let test_params () =
  Alcotest.(check bool) "accurate regime" true (FD.accurate p);
  Alcotest.(check bool) "m=0 rejected" true
    (match FD.params_of_ints ~h1:1 ~h2:2 ~g1:2 ~g2:3 ~m:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "inaccurate params allowed" false
    (FD.accurate (FD.params_of_ints ~h1:5 ~h2:8 ~g1:2 ~g2:3 ~m:2))

let test_protocol () =
  let sys = FD.system p in
  let s0 = List.hd sys.Tm_ioa.Ioa.start in
  (* fresh heartbeat then a clean poll *)
  (match sys.Tm_ioa.Ioa.delta s0 FD.Hb with
  | [ s1 ] -> (
      Alcotest.(check bool) "fresh" true s1.FD.fresh;
      match sys.Tm_ioa.Ioa.delta s1 FD.Check_ok with
      | [ s2 ] ->
          Alcotest.(check bool) "cleared" false s2.FD.fresh;
          Alcotest.(check int) "misses reset" 0 s2.FD.misses
      | _ -> Alcotest.fail "check_ok")
  | _ -> Alcotest.fail "hb");
  (* no heartbeat: miss, then suspicion at the m-th *)
  (match sys.Tm_ioa.Ioa.delta s0 FD.Check_miss with
  | [ s1 ] -> (
      Alcotest.(check int) "one miss" 1 s1.FD.misses;
      match sys.Tm_ioa.Ioa.delta s1 FD.Check_suspect with
      | [ s2 ] -> Alcotest.(check bool) "suspected" true s2.FD.suspected
      | _ -> Alcotest.fail "suspect")
  | _ -> Alcotest.fail "miss");
  (* dead sender emits nothing *)
  let dead = { s0 with FD.alive = false } in
  Alcotest.(check bool) "no heartbeat when dead" true
    (sys.Tm_ioa.Ioa.delta dead FD.Hb = []);
  Alcotest.(check bool) "no double crash" true
    (sys.Tm_ioa.Ioa.delta dead FD.Crash = [])

let test_accuracy_zones () =
  match
    Reach.check_state_invariant (FD.system p) (FD.boundmap p)
      FD.no_false_suspicion
  with
  | Ok _ -> ()
  | Error s ->
      Alcotest.failf "false suspicion at %a" (FD.system p).Tm_ioa.Ioa.pp_state
        s

let test_accuracy_refuted_when_slow () =
  let bad = FD.params_of_ints ~h1:5 ~h2:8 ~g1:2 ~g2:3 ~m:2 in
  match
    Reach.check_state_invariant (FD.system bad) (FD.boundmap bad)
      FD.no_false_suspicion
  with
  | Error s -> Alcotest.(check bool) "still alive" true s.FD.alive
  | Ok _ -> Alcotest.fail "slow heartbeats must cause false suspicion"

let test_completeness_zones () =
  (match Reach.check_condition (FD.system p) (FD.boundmap p) (FD.u_detect p) with
  | Reach.Verified _ -> ()
  | _ -> Alcotest.fail "detection window should verify");
  (* both endpoints tight *)
  let tighten bounds = { (FD.u_detect p) with Tm_timed.Condition.bounds } in
  (match
     Reach.check_condition (FD.system p) (FD.boundmap p)
       (tighten (Tm_base.Interval.of_ints 2 8))
   with
  | Reach.Upper_violation _ -> ()
  | _ -> Alcotest.fail "upper endpoint must be tight");
  match
    Reach.check_condition (FD.system p) (FD.boundmap p)
      (tighten (Tm_base.Interval.of_ints 3 9))
  with
  | Reach.Lower_violation _ -> ()
  | _ -> Alcotest.fail "lower endpoint must be tight"

let test_exact_window_sweep () =
  List.iter
    (fun (g1, g2, m) ->
      let p = FD.params_of_ints ~h1:1 ~h2:2 ~g1 ~g2 ~m in
      QCheck2.assume (FD.accurate p);
      let a =
        Completeness.analyze ~source:(FD.impl p) ~conds:[| FD.u_detect p |] ()
      in
      match
        Completeness.bounds_after a
          ~trigger:(fun _ act _ -> act = FD.Crash)
          ~cond:0
      with
      | Some (lo, hi) ->
          let iv = FD.detection_interval p in
          Alcotest.(check time_t)
            (Printf.sprintf "lo g=(%d,%d) m=%d" g1 g2 m)
            (Time.Fin (Tm_base.Interval.lo iv))
            lo;
          Alcotest.(check time_t)
            (Printf.sprintf "hi g=(%d,%d) m=%d" g1 g2 m)
            (Tm_base.Interval.hi iv) hi
      | None -> Alcotest.fail "no crash edges")
    [ (2, 3, 2); (2, 3, 3); (3, 4, 2); (3, 4, 3) ]

let prop_traces_satisfy_detection =
  check_holds "simulated traces satisfy U(detect)"
    QCheck2.Gen.(int_range 0 300)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:80
          ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
          impl
      in
      Semantics.semi_satisfies (Simulator.project run) (FD.u_detect p) = [])

let prop_no_false_suspicion_simulated =
  check_holds "no false suspicion along simulated traces"
    QCheck2.Gen.(int_range 0 300)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:80
          ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
          impl
      in
      List.for_all
        (fun s -> FD.no_false_suspicion s.Tm_core.Tstate.base)
        (Tm_ioa.Execution.states run.Simulator.exec))

let suite =
  [
    Alcotest.test_case "params" `Quick test_params;
    Alcotest.test_case "protocol" `Quick test_protocol;
    Alcotest.test_case "accuracy (zones)" `Quick test_accuracy_zones;
    Alcotest.test_case "accuracy refuted with slow heartbeats" `Quick
      test_accuracy_refuted_when_slow;
    Alcotest.test_case "detection window verified and tight" `Quick
      test_completeness_zones;
    Alcotest.test_case "exact windows across a sweep" `Quick
      test_exact_window_sweep;
    prop_traces_satisfy_detection;
    prop_no_false_suspicion_simulated;
  ]
