module Rational = Tm_base.Rational
module Prng = Tm_base.Prng
module Boundmap = Tm_timed.Boundmap
module Timed_compose = Tm_timed.Timed_compose
module Semantics = Tm_timed.Semantics
module TA = Tm_core.Time_automaton
module RM = Tm_systems.Resource_manager
module SR = Tm_systems.Signal_relay
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
open Gen

let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1

let clock_bm =
  Boundmap.of_list [ (RM.tick_class, Tm_base.Interval.of_ints 2 3) ]

let manager_bm =
  Boundmap.of_list
    [ (RM.local_class,
       Tm_base.Interval.make Rational.zero (Tm_base.Time.of_int 1)) ]

let test_binary_matches_monolithic () =
  let composed, bm =
    Timed_compose.binary ~name:"rm" (RM.clock, clock_bm)
      (RM.manager p, manager_bm)
  in
  (* same classes and the same bounds as the paper's single boundmap *)
  Alcotest.(check (list string)) "classes"
    (RM.system p).Tm_ioa.Ioa.classes composed.Tm_ioa.Ioa.classes;
  List.iter
    (fun c ->
      Alcotest.(check interval_t) c
        (Boundmap.find (RM.boundmap p) c)
        (Boundmap.find bm c))
    (Boundmap.classes bm)

(* Footnote 2's equivalence, operationally: the timed semantics built
   from composed-timed-automata equals the one built from the composed
   automaton with the monolithic boundmap. *)
let prop_same_timed_semantics =
  check_holds "composed timed semantics agree"
    QCheck2.Gen.(int_range 0 200)
    (fun seed ->
      let composed, bm =
        Timed_compose.binary ~name:"rm" (RM.clock, clock_bm)
          (RM.manager p, manager_bm)
      in
      let via_compose =
        TA.of_boundmap (Tm_ioa.Ioa.hide composed (fun a -> a = RM.Tick)) bm
      in
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:40
          ~strategy:(Strategy.random ~prng ~denominator:3 ~cap:(q 1))
          via_compose
      in
      let seq = Simulator.project run in
      (* any trace of one is a timed (semi-)execution of the other *)
      match
        Semantics.is_timed_execution ~complete:false (RM.system p)
          (RM.boundmap p) seq
      with
      | Ok [] -> true
      | Ok _ | Error _ -> false)

let test_array_relay () =
  let sp = SR.params_of_ints ~n:3 ~d1:1 ~d2:2 in
  let components =
    Array.init 4 (fun i ->
        ( SR.process sp i,
          Boundmap.of_list
            [ (SR.sig_class i,
               if i = 0 then Tm_base.Interval.unbounded_above Rational.zero
               else Tm_base.Interval.of_ints 1 2) ] ))
  in
  let composed, bm = Timed_compose.array ~name:"relay" components in
  Alcotest.(check int) "classes" 4 (List.length composed.Tm_ioa.Ioa.classes);
  List.iter
    (fun c ->
      Alcotest.(check interval_t) c
        (Boundmap.find (SR.boundmap sp) c)
        (Boundmap.find bm c))
    (Boundmap.classes bm)

let test_incomplete_boundmap_rejected () =
  Alcotest.(check bool) "missing class" true
    (match
       Timed_compose.binary ~name:"bad" (RM.clock, Boundmap.of_list [])
         (RM.manager p, manager_bm)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "binary matches the monolithic boundmap" `Quick
      test_binary_matches_monolithic;
    Alcotest.test_case "array relay" `Quick test_array_relay;
    Alcotest.test_case "incomplete boundmap rejected" `Quick
      test_incomplete_boundmap_rejected;
    prop_same_timed_semantics;
  ]
