module Interval = Tm_base.Interval
module Condition = Tm_timed.Condition
module RM = Tm_systems.Resource_manager
open Gen

let test_make_defaults () =
  let c =
    Condition.make ~name:"c" ~bounds:(Interval.of_ints 1 2)
      ~in_pi:(fun (_ : int) -> true)
      ()
  in
  Alcotest.(check string) "name" "c" c.Condition.cname;
  Alcotest.(check bool) "t_start empty" false (c.Condition.t_start 0);
  Alcotest.(check bool) "t_step empty" false (c.Condition.t_step 0 1 2);
  Alcotest.(check bool) "in_s empty" false (c.Condition.in_s 0)

let test_upper_bounded () =
  let c1 =
    Condition.make ~name:"c1" ~bounds:(Interval.of_ints 1 2)
      ~in_pi:(fun (_ : int) -> true)
      ()
  in
  Alcotest.(check bool) "bounded" true (Condition.upper_bounded c1);
  let c2 =
    Condition.make ~name:"c2" ~bounds:(Interval.unbounded_above (q 1))
      ~in_pi:(fun (_ : int) -> true)
      ()
  in
  Alcotest.(check bool) "unbounded" false (Condition.upper_bounded c2)

let test_well_formed () =
  let good =
    Condition.make ~name:"good"
      ~t_start:(fun s -> s = 0)
      ~t_step:(fun _ _ s -> s = 1)
      ~bounds:(Interval.of_ints 1 2)
      ~in_pi:(fun (_ : int) -> true)
      ~in_s:(fun s -> s = 9)
      ()
  in
  (match
     Condition.well_formed_on good ~starts:[ 0; 5 ]
       ~steps:[ (0, 0, 1); (1, 0, 2) ]
   with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* trigger start state inside S *)
  let bad1 =
    Condition.make ~name:"bad1"
      ~t_start:(fun s -> s = 9)
      ~bounds:(Interval.of_ints 1 2)
      ~in_pi:(fun (_ : int) -> true)
      ~in_s:(fun s -> s = 9)
      ()
  in
  (match Condition.well_formed_on bad1 ~starts:[ 9 ] ~steps:[] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "start-in-S must be rejected");
  (* trigger step ending in S *)
  let bad2 =
    Condition.make ~name:"bad2"
      ~t_step:(fun _ _ s -> s = 9)
      ~bounds:(Interval.of_ints 1 2)
      ~in_pi:(fun (_ : int) -> true)
      ~in_s:(fun s -> s = 9)
      ()
  in
  match Condition.well_formed_on bad2 ~starts:[] ~steps:[ (0, 0, 9) ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "step-into-S must be rejected"

let test_paper_conditions_well_formed () =
  let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1 in
  let sys = RM.system p in
  let starts = sys.Tm_ioa.Ioa.start in
  let steps =
    List.concat_map
      (fun s ->
        List.concat_map
          (fun a ->
            List.map (fun s' -> (s, a, s')) (sys.Tm_ioa.Ioa.delta s a))
          sys.Tm_ioa.Ioa.alphabet)
      (((), 0) :: ((), 1) :: starts)
  in
  List.iter
    (fun c ->
      match Condition.well_formed_on c ~starts ~steps with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    [ RM.g1 p; RM.g2 p ]

let suite =
  [
    Alcotest.test_case "defaults" `Quick test_make_defaults;
    Alcotest.test_case "upper_bounded" `Quick test_upper_bounded;
    Alcotest.test_case "well_formed_on" `Quick test_well_formed;
    Alcotest.test_case "paper conditions well-formed" `Quick
      test_paper_conditions_well_formed;
  ]
