(* Minimal-constraint storage and arena interning.

   The kernels' [Min] modules keep the non-redundant constraint subset
   of each stored zone (Larsen et al., RTSS'97); {!Tm_zones.Reach} uses
   them for waiting/passed subsumption.  These tests pin all three
   kernels to the dense semantics: [of_zone |> to_zone] must rebuild
   the identical canonical matrix, [subsumes] must agree with dense
   [includes] on every snapshot pair, and reductions of equal zones
   must be structurally equal (the construction is deterministic).

   The arena tests pin the zero-copy storage discipline:
   [copy_into]/[freeze_into] round-trip zone payloads through bump
   arenas (across chunk growth), a no-op edge pipeline still freezes
   to the original interned zone, and an engine-level regression holds
   verdicts fixed across TM_STORE modes and domain counts — a worker
   arena reset must discard exactly the speculative zones and nothing
   else. *)

module Rational = Tm_base.Rational
module Bnd = Tm_zones.Dbm_bound
module Dbm = Tm_zones.Dbm
module Dbm_ref = Tm_zones.Dbm_ref
module Dbm_int = Tm_zones.Dbm_int
module Reach = Tm_zones.Reach
module F = Tm_systems.Fischer

(* Normalize raw generated indices into valid kernel arguments —
   mirrors the differential harness so both draw the same zones from
   one script. *)
let norm_constraint n (c : Gen.dbm_constraint) =
  let i = c.ci mod n in
  let j = c.cj mod n in
  let j = if i = j then (j + 1) mod n else j in
  let q = Rational.make c.cnum c.cden in
  (i, j, if c.cstrict then Bnd.Lt q else Bnd.Le q)

let norm_clock n x = 1 + (x mod (n - 1))

(* Every zone a script's persistent interpretation passes through,
   including [top] and any empties. *)
let zones_of_script (type z) (module K : Tm_zones.Dbm_sig.S with type t = z)
    (s : Gen.dbm_script) : z list =
  let n = s.Gen.ds_clocks in
  let step z op =
    match op with
    | Gen.Constrain c ->
        let i, j, b = norm_constraint n c in
        K.constrain z i j b
    | Gen.Up -> K.up z
    | Gen.Reset x -> K.reset z (norm_clock n x)
    | Gen.Free x -> K.free z (norm_clock n x)
    | Gen.Intersect cs ->
        K.intersect z
          (List.fold_left
             (fun acc c ->
               let i, j, b = norm_constraint n c in
               K.constrain acc i j b)
             (K.top n) cs)
    | Gen.Extrapolate m -> K.extrapolate (Rational.of_int m) z
  in
  let zs, _ =
    List.fold_left
      (fun (zs, z) op ->
        let z' = step z op in
        (z' :: zs, z'))
      ([ K.top n ], K.top n)
      s.Gen.ds_ops
  in
  List.rev zs

let snapshot (type z) (module K : Tm_zones.Dbm_sig.S with type t = z) (z : z)
    =
  if K.is_empty z then None
  else
    let n = K.dim z in
    Some (Array.init (n * n) (fun k -> K.get z (k / n) (k mod n)))

let snap_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y ->
      Array.length x = Array.length y
      && Array.for_all2 (fun u v -> Bnd.compare u v = 0) x y
  | _ -> false

let finite_offdiag = function
  | None -> 0
  | Some m ->
      let n = int_of_float (sqrt (float_of_int (Array.length m))) in
      let c = ref 0 in
      Array.iteri
        (fun k b ->
          if k / n <> k mod n && b <> Bnd.Inf then incr c)
        m;
      !c

(* of_zone |> to_zone rebuilds the identical canonical matrix; the
   reduction is deterministic (re-reducing the rebuilt zone gives a
   structurally equal value) and never keeps more constraints than the
   matrix has finite off-diagonal entries. *)
let roundtrip (type z) (module K : Tm_zones.Dbm_sig.S with type t = z) s =
  List.for_all
    (fun z ->
      let m = K.Min.of_zone z in
      let z' = K.Min.to_zone m in
      K.equal z z'
      && snap_equal (snapshot (module K) z) (snapshot (module K) z')
      && K.Min.equal m (K.Min.of_zone z')
      && K.Min.count m <= finite_offdiag (snapshot (module K) z))
    (zones_of_script (module K) s)

let roundtrip_fast =
  Gen.check_holds "min: of_zone |> to_zone is identity (fast)" ~count:200
    ~print:Gen.print_dbm_script Gen.dbm_script (fun s ->
      roundtrip (module Dbm) s)

let roundtrip_ref =
  Gen.check_holds "min: of_zone |> to_zone is identity (ref)" ~count:200
    ~print:Gen.print_dbm_script Gen.dbm_script (fun s ->
      roundtrip (module Dbm_ref) s)

let roundtrip_int =
  Gen.check_holds "min: of_zone |> to_zone is identity (int)" ~count:200
    ~print:Gen.print_dbm_script Gen.int_dbm_script (fun s ->
      roundtrip (module Dbm_int) s)

(* The sparse probe must equal the dense verdict on every ordered pair
   of zones a script produces — including empty operands on both
   sides. *)
let subsumes_agrees (type z) (module K : Tm_zones.Dbm_sig.S with type t = z)
    s =
  let zs = Array.of_list (zones_of_script (module K) s) in
  let ok = ref true in
  Array.iter
    (fun zi ->
      let m = K.Min.of_zone zi in
      Array.iter
        (fun zj -> if K.Min.subsumes m zj <> K.includes zi zj then ok := false)
        zs)
    zs;
  !ok

let subsumes_fast =
  Gen.check_holds "min: subsumes == dense includes (fast)" ~count:150
    ~print:Gen.print_dbm_script Gen.dbm_script (fun s ->
      subsumes_agrees (module Dbm) s)

let subsumes_ref =
  Gen.check_holds "min: subsumes == dense includes (ref)" ~count:150
    ~print:Gen.print_dbm_script Gen.dbm_script (fun s ->
      subsumes_agrees (module Dbm_ref) s)

let subsumes_int =
  Gen.check_holds "min: subsumes == dense includes (int)" ~count:150
    ~print:Gen.print_dbm_script Gen.int_dbm_script (fun s ->
      subsumes_agrees (module Dbm_int) s)

(* ------------------------------------------------------------------ *)
(* Arena unit tests (fast and int kernels; paranoid delegates to fast,
   ref ignores the arena by construction).                             *)

let unit_copy_into (type z) (module K : Tm_zones.Dbm_sig.S with type t = z)
    () =
  let z = K.constrain (K.up (K.zero 4)) 1 0 (Bnd.Lt (Gen.q 7)) in
  let a = K.Arena.create () in
  Alcotest.(check bool) "copy_into preserves the zone" true
    (K.equal z (K.copy_into a z));
  (* enough copies to force chunk growth; every slice must stay intact *)
  let copies = List.init 300 (fun _ -> K.copy_into a z) in
  Alcotest.(check bool) "all slices equal after chunk growth" true
    (List.for_all (K.equal z) copies)

let unit_freeze_into (type z) (module K : Tm_zones.Dbm_sig.S with type t = z)
    () =
  let a = K.Arena.create () in
  let scr = K.Scratch.create 3 in
  K.Scratch.load scr (K.zero 3);
  K.Scratch.up scr;
  K.Scratch.constrain scr 1 0 (Bnd.Le (Gen.q 5));
  let via_arena = K.Scratch.freeze_into a scr in
  let persistent = K.constrain (K.up (K.zero 3)) 1 0 (Bnd.Le (Gen.q 5)) in
  Alcotest.(check bool) "freeze_into equals the persistent pipeline" true
    (K.equal via_arena persistent)

let unit_short_circuit (type z)
    (module K : Tm_zones.Dbm_sig.S with type t = z) () =
  let z = K.up (K.zero 3) in
  let a = K.Arena.create () in
  let scr = K.Scratch.create 3 in
  K.Scratch.load scr z;
  Alcotest.(check bool) "no-op pipeline freezes to the original zone" true
    (K.Scratch.freeze_into a scr == z)

let unit_reset_reuse (type z) (module K : Tm_zones.Dbm_sig.S with type t = z)
    () =
  (* Speculative freeze, discard, rewind — zones frozen after the
     reset land on the recycled space and must be exactly right. *)
  let a = K.Arena.create () in
  let scr = K.Scratch.create 3 in
  K.Scratch.load scr (K.zero 3);
  K.Scratch.up scr;
  ignore (K.Scratch.freeze_into a scr);
  K.Arena.reset a;
  K.Scratch.load scr (K.top 3);
  K.Scratch.reset scr 1;
  let after = K.Scratch.freeze_into a scr in
  Alcotest.(check bool) "post-reset freeze is exact" true
    (K.equal after (K.reset (K.top 3) 1))

(* ------------------------------------------------------------------ *)
(* Engine regression: a worker arena reset discards exactly the
   speculative zones.  Any leak of recycled payloads into the shared
   store would perturb the verdict, the zone count or the reachable
   state set somewhere across store modes and domain counts — all
   nine combinations must agree bit for bit, on both the rational and
   the packed-int engine. *)

let store_modes_agree (module E : Reach.S) () =
  let p = F.params_of_ints ~n:3 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:2 in
  let sys = F.system p and bm = F.boundmap p in
  let run mode d =
    Unix.putenv "TM_STORE" mode;
    Fun.protect
      ~finally:(fun () -> Unix.putenv "TM_STORE" "")
      (fun () ->
        let st, states = E.reachable ~domains:d sys bm in
        (st, List.sort compare states))
  in
  let base = run "arena" 1 in
  List.iter
    (fun mode ->
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s @ domains=%d matches arena @ 1" mode d)
            true
            (run mode d = base))
        [ 1; 2; 4 ])
    [ "arena"; "heap"; "seed" ]

let suite =
  [
    roundtrip_fast;
    roundtrip_ref;
    roundtrip_int;
    subsumes_fast;
    subsumes_ref;
    subsumes_int;
    Alcotest.test_case "arena: copy_into round-trips (fast)" `Quick
      (unit_copy_into (module Dbm));
    Alcotest.test_case "arena: copy_into round-trips (int)" `Quick
      (unit_copy_into (module Dbm_int));
    Alcotest.test_case "arena: freeze_into matches persistent (fast)" `Quick
      (unit_freeze_into (module Dbm));
    Alcotest.test_case "arena: freeze_into matches persistent (int)" `Quick
      (unit_freeze_into (module Dbm_int));
    Alcotest.test_case "arena: no-op freeze returns the original (fast)"
      `Quick
      (unit_short_circuit (module Dbm));
    Alcotest.test_case "arena: no-op freeze returns the original (int)"
      `Quick
      (unit_short_circuit (module Dbm_int));
    Alcotest.test_case "arena: reset recycles space exactly (fast)" `Quick
      (unit_reset_reuse (module Dbm));
    Alcotest.test_case "arena: reset recycles space exactly (int)" `Quick
      (unit_reset_reuse (module Dbm_int));
    Alcotest.test_case "engine: TM_STORE modes x domains agree (rational)"
      `Quick
      (store_modes_agree (module Reach.Default));
    Alcotest.test_case "engine: TM_STORE modes x domains agree (int)" `Quick
      (store_modes_agree (module Reach.Int));
  ]
