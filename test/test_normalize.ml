(* Soundness of the relative-deadline normalization: normalized states
   must be behaviourally indistinguishable from their originals — same
   firing windows (relative to now), same successors modulo
   normalization.  The exhaustive checkers and the completeness
   analysis all rest on this. *)

module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng
module Tstate = Tm_core.Tstate
module TA = Tm_core.Time_automaton
module Tgraph = Tm_core.Tgraph
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module RM = Tm_systems.Resource_manager
module SR = Tm_systems.Signal_relay
open Gen

let p = RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1
let impl = RM.impl p
let clamp = (Tgraph.default_params impl).Tgraph.clamp

(* a reachable state after [steps] random moves *)
let reachable_state seed steps =
  let prng = Prng.create seed in
  let run =
    Simulator.simulate ~steps
      ~strategy:(Strategy.random ~prng ~denominator:3 ~cap:(q 1))
      impl
  in
  Tm_ioa.Execution.last_state run.Simulator.exec

let rel_window s (lo, hi) =
  (Rational.sub lo s.Tstate.now, Time.sub_q hi s.Tstate.now)

(* windows are preserved relative to now *)
let prop_windows_preserved =
  check_holds "normalize preserves firing windows"
    QCheck2.Gen.(pair (int_range 0 200) (int_range 0 40))
    (fun (seed, steps) ->
      let s = reachable_state seed steps in
      let n = Tstate.normalize ~clamp s in
      List.for_all
        (fun act ->
          match (TA.window impl s act, TA.window impl n act) with
          | None, None -> true
          | Some w, Some w' ->
              let rlo, rhi = rel_window s w in
              let nlo, nhi = rel_window n w' in
              Rational.equal rlo nlo && Time.equal rhi nhi
          | Some _, None | None, Some _ -> false)
        impl.TA.base.Tm_ioa.Ioa.alphabet)

(* firing commutes with normalization *)
let prop_fire_commutes =
  check_holds "fire then normalize = normalize then fire"
    QCheck2.Gen.(pair (int_range 0 200) (int_range 0 40))
    (fun (seed, steps) ->
      let s = reachable_state seed steps in
      let n = Tstate.normalize ~clamp s in
      List.for_all
        (fun act ->
          match TA.window impl s act with
          | None -> true
          | Some (lo, _) ->
              let dt = Rational.sub lo s.Tstate.now in
              let t_orig = lo in
              let t_norm = Rational.add n.Tstate.now dt in
              let posts_orig =
                List.map (Tstate.normalize ~clamp)
                  (TA.fire impl s act t_orig)
              in
              let posts_norm =
                List.map (Tstate.normalize ~clamp)
                  (TA.fire impl n act t_norm)
              in
              List.length posts_orig = List.length posts_norm
              && List.for_all2 (TA.equal_state impl) posts_orig posts_norm)
        impl.TA.base.Tm_ioa.Ioa.alphabet)

(* coarser clamps refine the graph: node counts shrink or stay put as
   the clamp grows past the adequate point *)
let test_clamp_stability () =
  let params = Tgraph.default_params impl in
  let n1 =
    Tgraph.node_count
      (Tgraph.build ~params:{ params with Tgraph.clamp = params.Tgraph.clamp }
         impl)
  in
  let n2 =
    Tgraph.node_count
      (Tgraph.build
         ~params:
           {
             params with
             Tgraph.clamp = Rational.mul_int 2 params.Tgraph.clamp;
             cap = Rational.mul_int 2 params.Tgraph.cap;
           }
         impl)
  in
  (* with the collapse rule the state space is already saturated: a
     larger clamp must not change the graph *)
  Alcotest.(check int) "clamp-stable node count" n1 n2

let test_relay_clamp_stability () =
  let sp = SR.params_of_ints ~n:3 ~d1:1 ~d2:2 in
  let impl = SR.impl sp in
  let params = Tgraph.default_params impl in
  let n1 = Tgraph.node_count (Tgraph.build ~params impl) in
  let n2 =
    Tgraph.node_count
      (Tgraph.build
         ~params:
           {
             params with
             Tgraph.clamp = Rational.mul_int 3 params.Tgraph.clamp;
             cap = Rational.mul_int 3 params.Tgraph.cap;
           }
         impl)
  in
  Alcotest.(check int) "relay clamp-stable node count" n1 n2

let suite =
  [
    prop_windows_preserved;
    prop_fire_commutes;
    Alcotest.test_case "manager graph clamp-stable" `Quick
      test_clamp_stability;
    Alcotest.test_case "relay graph clamp-stable" `Quick
      test_relay_clamp_stability;
  ]
