(* Tests for the live-telemetry layer: the monotonic process clock,
   the golden NDJSON event stream, reach-driven event smoke (with the
   determinism contract: stats identical with the sink on or off, at
   any domain count), the Prometheus / NDJSON exporters under
   Gen.metric_updates scripts, the bench-diff drift engine, the
   stderr-only progress line, the phase profiler, and report
   provenance. *)

module Rational = Tm_base.Rational
module Json = Tm_obs.Json
module Clock = Tm_obs.Clock
module Metrics = Tm_obs.Metrics
module Tracing = Tm_obs.Tracing
module Events = Tm_obs.Events
module Prof = Tm_obs.Prof
module Export = Tm_obs.Export
module Report = Tm_obs.Report
module Reach = Tm_zones.Reach
module RM = Tm_systems.Resource_manager
open Gen

let fresh =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "tele.%s.%d" prefix !n

(* Counter clock: each reading advances one second.  Goes through
   Tracing.set_clock so the trace epoch resets along with the Clock
   clamp; always restored, because the clock is process-wide. *)
let with_counter_clock f =
  let t = ref 0. in
  Tracing.set_clock (fun () ->
      t := !t +. 1.;
      !t);
  Fun.protect ~finally:(fun () -> Tracing.set_clock Unix.gettimeofday) f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_file f =
  let path = Filename.temp_file "tm_telemetry" ".ndjson" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* clock *)

let test_clock_clamps_backward_steps () =
  let readings = [| 5.0; 3.0; 4.0; 9.0; 2.0 |] in
  let i = ref (-1) in
  Clock.set (fun () ->
      incr i;
      readings.(!i mod Array.length readings));
  Fun.protect ~finally:(fun () -> Clock.set Unix.gettimeofday) @@ fun () ->
  let out = List.init 5 (fun _ -> Clock.now_s ()) in
  Alcotest.(check (list (float 0.))) "high-water mark"
    [ 5.0; 5.0; 5.0; 9.0; 9.0 ] out;
  List.fold_left
    (fun prev t ->
      Alcotest.(check bool) "non-decreasing" true (t >= prev);
      t)
    neg_infinity out
  |> ignore

let test_clock_set_resets_clamp () =
  Clock.set (fun () -> 1000.);
  ignore (Clock.now_s ());
  (* A fresh source may start far below the previous high-water mark. *)
  Clock.set (fun () -> 1.);
  Fun.protect ~finally:(fun () -> Clock.set Unix.gettimeofday) @@ fun () ->
  Alcotest.(check (float 0.)) "clamp reset" 1. (Clock.now_s ())

(* ------------------------------------------------------------------ *)
(* golden NDJSON event stream *)

let golden_events =
  String.concat "\n"
    [
      {|{"ts":0,"seq":0,"ev":"run.start","tool":"test"}|};
      {|{"ts":1,"seq":1,"ev":"zones.batch","stored":4,"frontier":2,"rate":2.5}|};
      {|{"ts":2,"seq":2,"ev":"run.done","ok":true,"note":null}|};
      "";
    ]

let test_golden_event_stream () =
  with_counter_clock @@ fun () ->
  with_temp_file @@ fun path ->
  Events.open_path path;
  Fun.protect ~finally:Events.close @@ fun () ->
  Events.emit "run.start" [ ("tool", Json.String "test") ];
  Events.emit "zones.batch"
    [
      ("stored", Json.Int 4);
      ("frontier", Json.Int 2);
      ("rate", Json.Float 2.5);
    ];
  Events.emit "run.done" [ ("ok", Json.Bool true); ("note", Json.Null) ];
  Alcotest.(check int) "seq counts emits" 3 (Events.seq ());
  Events.close ();
  Alcotest.(check string) "golden NDJSON" golden_events (read_file path);
  (* closed sink: emit is a no-op, close is idempotent *)
  Events.emit "after.close" [];
  Events.close ();
  Alcotest.(check string) "no write after close" golden_events
    (read_file path)

let test_attach_resets_sequence () =
  with_counter_clock @@ fun () ->
  with_temp_file @@ fun path ->
  Events.open_path path;
  Events.emit "one" [];
  Events.emit "two" [];
  Events.close ();
  Events.open_path path;
  Fun.protect ~finally:Events.close @@ fun () ->
  Events.emit "anew" [];
  Events.close ();
  match Json.of_string (String.trim (read_file path)) with
  | Error m -> Alcotest.fail m
  | Ok j ->
      let field_is k v fields =
        match List.assoc_opt k fields with
        | Some j' -> Json.equal j' v
        | None -> false
      in
      Alcotest.(check bool) "seq restarts at 0" true
        (match j with
        | Json.Obj fields ->
            field_is "seq" (Json.Int 0) fields
            && field_is "ts" (Json.Float 0.) fields
        | _ -> false)

(* ------------------------------------------------------------------ *)
(* reach-driven events: well-formed stream, observation-only *)

let rm_params = RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1
let rm_sys = RM.system rm_params
let rm_bm = RM.boundmap rm_params

let run_rm ?domains () =
  match Reach.check_condition ?domains rm_sys rm_bm (RM.g1 rm_params) with
  | Reach.Verified s -> s
  | _ -> Alcotest.fail "resource manager G1 should verify"

let test_reach_event_stream () =
  let baseline = run_rm () in
  with_temp_file @@ fun path ->
  Events.open_path path;
  let observed =
    Fun.protect ~finally:Events.close (fun () -> run_rm ())
  in
  Events.close ();
  Alcotest.(check int) "stored zones unaffected by telemetry"
    baseline.Reach.zones observed.Reach.zones;
  Alcotest.(check int) "edges unaffected" baseline.Reach.edges
    observed.Reach.edges;
  let observed2 =
    with_temp_file @@ fun path2 ->
    Events.open_path path2;
    Fun.protect ~finally:Events.close (fun () -> run_rm ~domains:2 ())
  in
  Alcotest.(check int) "domains=2 under telemetry agrees"
    baseline.Reach.zones observed2.Reach.zones;
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check bool) "stream non-empty" true (lines <> []);
  let parsed =
    List.map
      (fun l ->
        match Json.of_string l with
        | Ok (Json.Obj fields) -> fields
        | Ok _ -> Alcotest.failf "event line is not an object: %s" l
        | Error m -> Alcotest.failf "bad event line %S: %s" l m)
      lines
  in
  let seqs =
    List.map
      (fun fields ->
        match List.assoc_opt "seq" fields with
        | Some (Json.Int n) -> n
        | Some (Json.Float f) when Float.is_integer f -> int_of_float f
        | _ -> Alcotest.fail "event without seq")
      parsed
  in
  Alcotest.(check (list int)) "seq strictly increasing from 0"
    (List.init (List.length seqs) Fun.id)
    seqs;
  let names =
    List.filter_map
      (fun fields ->
        match List.assoc_opt "ev" fields with
        | Some (Json.String s) -> Some s
        | _ -> None)
      parsed
  in
  Alcotest.(check bool) "final fixpoint event present" true
    (List.mem "zones.done" names)

(* ------------------------------------------------------------------ *)
(* exporters *)

let snapshot_with_prefix prefix =
  List.filter
    (fun e ->
      String.length e.Metrics.name >= String.length prefix
      && String.sub e.Metrics.name 0 (String.length prefix) = prefix)
    (Metrics.snapshot ())

let apply_updates prefix updates =
  let cname i = Printf.sprintf "%s.c%d" prefix i in
  let gname i = Printf.sprintf "%s.g%d" prefix i in
  let hname i = Printf.sprintf "%s.h%d" prefix i in
  List.iter
    (fun u ->
      match u with
      | Incr_counter i -> Metrics.incr (Metrics.counter (cname i))
      | Add_counter (i, n) -> Metrics.add (Metrics.counter (cname i)) n
      | Set_gauge (i, v) ->
          if Float.is_finite v then Metrics.set (Metrics.gauge (gname i)) v
      | Max_gauge (i, v) ->
          if Float.is_finite v then
            Metrics.set_max (Metrics.gauge (gname i)) v
      | Observe (i, s) -> Metrics.observe (Metrics.histogram (hname i)) s)
    updates

let prop_ndjson_roundtrip =
  check_holds ~count:60 "exporter: NDJSON round-trip is exact"
    metric_updates (fun updates ->
      let prefix = fresh "nd" in
      apply_updates prefix updates;
      let snap = snapshot_with_prefix prefix in
      match Export.of_ndjson (Export.to_ndjson snap) with
      | Error _ -> false
      | Ok snap' -> Metrics.equal_snapshot snap snap')

(* A sample line is NAME{labels} VALUE where NAME is [a-zA-Z0-9_:]+ and
   VALUE parses as a float; comment lines start with '#'. *)
let prometheus_line_ok line =
  if line = "" || line.[0] = '#' then true
  else
    match String.rindex_opt line ' ' with
    | None -> false
    | Some sp -> (
        let name_part = String.sub line 0 sp in
        let value_part =
          String.sub line (sp + 1) (String.length line - sp - 1)
        in
        let name_end =
          match String.index_opt name_part '{' with
          | Some i -> i
          | None -> String.length name_part
        in
        let name_ok =
          name_end > 0
          && String.for_all
               (function
                 | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
                 | _ -> false)
               (String.sub name_part 0 name_end)
        in
        name_ok
        &&
        match value_part with
        | "+Inf" | "-Inf" | "NaN" -> true
        | v -> float_of_string_opt v <> None)

let prop_prometheus_well_formed =
  check_holds ~count:60 "exporter: Prometheus text is well-formed"
    metric_updates (fun updates ->
      let prefix = fresh "prom" in
      apply_updates prefix updates;
      let snap = snapshot_with_prefix prefix in
      let text = Export.to_prometheus snap in
      List.for_all prometheus_line_ok (String.split_on_char '\n' text))

let test_prometheus_histogram_shape () =
  let name = fresh "promh" in
  let h = Metrics.histogram name in
  List.iter (Metrics.observe h) [ q 1; q 3; q 200 ];
  let text = Export.to_prometheus (snapshot_with_prefix name) in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "+Inf bucket" true (contains {|le="+Inf"|});
  Alcotest.(check bool) "_count sample" true (contains "_count");
  Alcotest.(check bool) "_sum sample" true (contains "_sum");
  Alcotest.(check bool) "histogram TYPE line" true (contains "# TYPE")

(* ------------------------------------------------------------------ *)
(* bench-diff engine *)

let entries prefix = snapshot_with_prefix prefix

let test_diff_identical () =
  let prefix = fresh "d0" in
  Metrics.add (Metrics.counter (prefix ^ ".c")) 5;
  Metrics.observe (Metrics.histogram (prefix ^ ".h")) (q 2);
  let snap = entries prefix in
  Alcotest.(check int) "no drift" 0
    (List.length (Export.diff ~baseline:snap ~current:snap ()))

let test_diff_detects_counter_drift () =
  let prefix = fresh "d1" in
  let c = Metrics.counter (prefix ^ ".c") in
  Metrics.add c 5;
  let baseline = entries prefix in
  Metrics.incr c;
  let current = entries prefix in
  match Export.diff ~baseline ~current () with
  | [ d ] ->
      Alcotest.(check string) "names the metric" (prefix ^ ".c")
        d.Export.dname
  | l -> Alcotest.failf "expected one drift, got %d" (List.length l)

let test_diff_detects_histogram_drift () =
  let prefix = fresh "d2" in
  let h = Metrics.histogram (prefix ^ ".h") in
  Metrics.observe h (q 2);
  let baseline = entries prefix in
  Metrics.observe h (q 1000);
  let current = entries prefix in
  Alcotest.(check bool) "histogram state change is drift" true
    (Export.diff ~baseline ~current () <> [])

let test_diff_tolerates_new_zero_metric () =
  let prefix = fresh "d3" in
  Metrics.add (Metrics.counter (prefix ^ ".old")) 3;
  let baseline = entries prefix in
  ignore (Metrics.counter (prefix ^ ".fresh"));
  let current = entries prefix in
  Alcotest.(check int) "fresh zero counter tolerated" 0
    (List.length (Export.diff ~baseline ~current ()));
  Metrics.incr (Metrics.counter (prefix ^ ".fresh"));
  let current' = entries prefix in
  Alcotest.(check bool) "fresh nonzero counter is drift" true
    (Export.diff ~baseline ~current:current' () <> [])

let test_diff_missing_metric_is_drift () =
  let prefix = fresh "d4" in
  Metrics.incr (Metrics.counter (prefix ^ ".gone"));
  let baseline = entries prefix in
  Alcotest.(check bool) "baseline metric missing from current" true
    (Export.diff ~baseline ~current:[] () <> [])

let test_diff_respects_ignore_prefixes () =
  let prefix = fresh "d5" in
  let c = Metrics.counter (prefix ^ ".par.steals") in
  Metrics.add c 10;
  let baseline = entries prefix in
  Metrics.add c 7;
  let current = entries prefix in
  Alcotest.(check bool) "drifts without the ignore" true
    (Export.diff ~baseline ~current () <> []);
  Alcotest.(check int) "ignored prefix suppresses the drift" 0
    (List.length
       (Export.diff
          ~ignore_prefixes:[ prefix ^ ".par." ]
          ~baseline ~current ()))

(* ------------------------------------------------------------------ *)
(* progress line: dedicated channel, throttling, clear *)

let test_progress_channel_and_throttle () =
  let t = ref 100. in
  Clock.set (fun () -> !t);
  let path = Filename.temp_file "tm_progress" ".txt" in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () ->
      Events.set_progress false;
      Events.set_progress_channel stderr;
      Clock.set Unix.gettimeofday;
      close_out_noerr oc;
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Events.set_progress true;
  Events.set_progress_channel oc;
  Events.progress ~stored:10 ~frontier:4 ~rate:123. ();
  (* same Clock reading: throttled away *)
  Events.progress ~stored:11 ~frontier:4 ~rate:123. ();
  t := 100.2;
  Events.progress ~eta_s:9. ~stored:12 ~frontier:3 ~rate:150. ();
  Events.progress_clear ();
  close_out oc;
  let body = read_file path in
  let count_sub sub =
    let n = String.length body and m = String.length sub in
    let rec go i acc =
      if i + m > n then acc
      else if String.sub body i m = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "two paints (middle call throttled)" 2
    (count_sub "[timedmap]");
  Alcotest.(check int) "three erase sequences (2 repaints + clear)" 3
    (count_sub "\r\027[K");
  Alcotest.(check bool) "carries the counters" true
    (count_sub "zones=12" = 1 && count_sub "eta=9s" = 1)

(* ------------------------------------------------------------------ *)
(* phase profiler *)

let with_prof f =
  Prof.reset ();
  Prof.enable ();
  Fun.protect
    ~finally:(fun () ->
      Prof.disable ();
      Prof.reset ())
    f

let test_prof_self_total_split () =
  with_counter_clock @@ fun () ->
  with_prof @@ fun () ->
  Prof.with_phase "outer" (fun () ->
      Prof.with_phase "inner" (fun () -> ()));
  let by_path p = List.find (fun n -> n.Prof.path = p) (Prof.nodes ()) in
  let outer = by_path "outer" and inner = by_path "outer;inner" in
  (* counter clock: outer spans t=1..4 (total 3), inner t=2..3 (1) *)
  Alcotest.(check (float 1e-9)) "outer total" 3. outer.Prof.total_s;
  Alcotest.(check (float 1e-9)) "inner total" 1. inner.Prof.total_s;
  Alcotest.(check (float 1e-9)) "outer self = total - child" 2.
    outer.Prof.self_s;
  Alcotest.(check (float 1e-9)) "inner self = total (leaf)" 1.
    inner.Prof.self_s;
  Alcotest.(check int) "counts" 1 outer.Prof.count;
  let folded = Prof.to_folded () in
  Alcotest.(check string) "collapsed-stack lines"
    "outer 2000000\nouter;inner 1000000\n" folded

let test_prof_via_tracing_span () =
  with_counter_clock @@ fun () ->
  with_prof @@ fun () ->
  Tracing.disable ();
  (* Tracing disabled but the profiler enabled: with_span still feeds
     phases — every existing span site is a profiling point. *)
  let r = Tracing.with_span "spanphase" (fun () -> 17) in
  Alcotest.(check int) "value passes through" 17 r;
  Alcotest.(check bool) "phase recorded" true
    (List.exists (fun n -> n.Prof.path = "spanphase") (Prof.nodes ()));
  Alcotest.(check int) "no trace events recorded" 0
    (List.length (Tracing.events ()))

let test_prof_disabled_passthrough () =
  Prof.disable ();
  Prof.reset ();
  let r = Prof.with_phase "skipped" (fun () -> 42) in
  Alcotest.(check int) "value" 42 r;
  Alcotest.(check int) "no nodes" 0 (List.length (Prof.nodes ()));
  (* stray end_phase never underflows *)
  Prof.end_phase ()

let test_prof_exception_safe () =
  with_counter_clock @@ fun () ->
  with_prof @@ fun () ->
  (try Prof.with_phase "boom" (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check bool) "phase recorded despite raise" true
    (List.exists (fun n -> n.Prof.path = "boom") (Prof.nodes ()));
  (* the stack unwound: a new phase is a root, not a child of boom *)
  Prof.with_phase "next" (fun () -> ());
  Alcotest.(check bool) "stack unwound" true
    (List.exists (fun n -> n.Prof.path = "next") (Prof.nodes ()))

(* ------------------------------------------------------------------ *)
(* report provenance *)

let test_report_provenance () =
  let r =
    Report.make ~command:"verify" ~version:"9.9.9" ~engine:"paranoid"
      ~domains:3 ~wall_s:0.25 ()
  in
  Alcotest.(check string) "version" "9.9.9" r.Report.version;
  Alcotest.(check string) "engine" "paranoid" r.Report.engine;
  Alcotest.(check int) "domains" 3 r.Report.domains;
  (match Report.to_json r with
  | Json.Obj fields ->
      Alcotest.(check bool) "json carries provenance" true
        (List.assoc_opt "version" fields = Some (Json.String "9.9.9")
        && List.assoc_opt "engine" fields = Some (Json.String "paranoid")
        && List.assoc_opt "domains" fields = Some (Json.Int 3))
  | _ -> Alcotest.fail "report JSON is not an object");
  let text = Format.asprintf "%a" Report.pp r in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pp names the engine" true (contains "paranoid");
  Alcotest.(check bool) "pp names the version" true (contains "9.9.9")

let suite =
  [
    Alcotest.test_case "clock: clamps backward steps" `Quick
      test_clock_clamps_backward_steps;
    Alcotest.test_case "clock: set resets the clamp" `Quick
      test_clock_set_resets_clamp;
    Alcotest.test_case "events: golden NDJSON stream" `Quick
      test_golden_event_stream;
    Alcotest.test_case "events: attach resets seq and epoch" `Quick
      test_attach_resets_sequence;
    Alcotest.test_case "events: reach stream well-formed, stats unchanged"
      `Quick test_reach_event_stream;
    prop_ndjson_roundtrip;
    prop_prometheus_well_formed;
    Alcotest.test_case "exporter: Prometheus histogram shape" `Quick
      test_prometheus_histogram_shape;
    Alcotest.test_case "diff: identical snapshots agree" `Quick
      test_diff_identical;
    Alcotest.test_case "diff: counter drift detected" `Quick
      test_diff_detects_counter_drift;
    Alcotest.test_case "diff: histogram drift detected" `Quick
      test_diff_detects_histogram_drift;
    Alcotest.test_case "diff: new zero metric tolerated" `Quick
      test_diff_tolerates_new_zero_metric;
    Alcotest.test_case "diff: missing metric is drift" `Quick
      test_diff_missing_metric_is_drift;
    Alcotest.test_case "diff: ignore prefixes" `Quick
      test_diff_respects_ignore_prefixes;
    Alcotest.test_case "progress: channel, throttle, clear" `Quick
      test_progress_channel_and_throttle;
    Alcotest.test_case "prof: self/total split, folded output" `Quick
      test_prof_self_total_split;
    Alcotest.test_case "prof: fed by Tracing.with_span" `Quick
      test_prof_via_tracing_span;
    Alcotest.test_case "prof: disabled is a plain call" `Quick
      test_prof_disabled_passthrough;
    Alcotest.test_case "prof: exception-safe" `Quick
      test_prof_exception_safe;
    Alcotest.test_case "report: build/engine provenance" `Quick
      test_report_provenance;
  ]
