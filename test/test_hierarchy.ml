module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng
module Tstate = Tm_core.Tstate
module Mapping = Tm_core.Mapping
module Hierarchy = Tm_core.Hierarchy
module SR = Tm_systems.Signal_relay
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
open Gen

let rp = SR.params_of_ints ~n:3 ~d1:1 ~d2:2
let impl = SR.impl rp

let random_exec seed steps =
  let prng = Prng.create seed in
  (Simulator.simulate ~steps
     ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
     impl)
    .Simulator.exec

let test_chain_structure () =
  (* n = 3: impl -> B2 -> B1 -> B0 -> B = 4 levels *)
  Alcotest.(check int) "levels" 4 (List.length (SR.chain rp))

let test_check_exec () =
  for seed = 0 to 20 do
    match
      Hierarchy.check_exec ~source:impl ~levels:(SR.chain rp)
        (random_exec seed 50)
    with
    | Ok () -> ()
    | Error e ->
        Alcotest.failf "seed %d failed at level %d (%s)" seed
          e.Hierarchy.level_index e.Hierarchy.level_name
  done

let test_check_exhaustive () =
  match Hierarchy.check_exhaustive ~source:impl ~levels:(SR.chain rp) () with
  | Ok st ->
      Alcotest.(check bool) "nonempty" true (st.Mapping.product_states > 0);
      Alcotest.(check bool) "not truncated" false st.Mapping.truncated
  | Error e ->
      Alcotest.failf "failed at level %d (%s)" e.Hierarchy.level_index
        e.Hierarchy.level_name

let test_n1_chain () =
  (* n = 1 degenerates to impl -> B0 -> B with no f_k levels *)
  let rp1 = SR.params_of_ints ~n:1 ~d1:1 ~d2:2 in
  Alcotest.(check int) "two levels" 2 (List.length (SR.chain rp1));
  match
    Hierarchy.check_exhaustive ~source:(SR.impl rp1) ~levels:(SR.chain rp1) ()
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "n=1 chain failed (%s)" e.Hierarchy.level_name

let test_larger_n_exec () =
  let rp6 = SR.params_of_ints ~n:6 ~d1:1 ~d2:3 in
  let impl6 = SR.impl rp6 in
  let prng = Prng.create 7 in
  let e =
    (Simulator.simulate ~steps:60
       ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
       impl6)
      .Simulator.exec
  in
  match Hierarchy.check_exec ~source:impl6 ~levels:(SR.chain rp6) e with
  | Ok () -> ()
  | Error err -> Alcotest.failf "n=6 failed (%s)" err.Hierarchy.level_name

(* Failure injection: break one middle mapping (wrong hop count) and
   check the failure is localized to that level. *)
let test_broken_level_detected () =
  let broken_f1 =
    let good = SR.f_k rp ~k:1 in
    {
      good with
      Mapping.contains =
        (fun s u ->
          (* claim one hop more than reality: a tighter image that the
             real successors fall outside of *)
          let flags = s.Tstate.base in
          if flags.(1) then
            Time.(
              u.Tstate.lt.(0)
              >= Time.add_q s.Tstate.lt.(2) (Rational.mul_int 3 rp.SR.d2))
          else good.Mapping.contains s u);
    }
  in
  let levels =
    List.mapi
      (fun i lv ->
        if i = 2 then { lv with Hierarchy.map = broken_f1 } else lv)
      (SR.chain rp)
  in
  match Hierarchy.check_exhaustive ~source:impl ~levels () with
  | Error e -> Alcotest.(check int) "failure at level 2" 2 e.Hierarchy.level_index
  | Ok _ -> Alcotest.fail "broken level must be detected"

let prop_chain_on_random_traces =
  check_holds "hierarchy holds on random traces"
    QCheck2.Gen.(int_range 0 150)
    (fun seed ->
      match
        Hierarchy.check_exec ~source:impl ~levels:(SR.chain rp)
          (random_exec seed 40)
      with
      | Ok () -> true
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "chain structure" `Quick test_chain_structure;
    Alcotest.test_case "check_exec" `Quick test_check_exec;
    Alcotest.test_case "check_exhaustive" `Quick test_check_exhaustive;
    Alcotest.test_case "n=1 chain" `Quick test_n1_chain;
    Alcotest.test_case "n=6 on a trace" `Quick test_larger_n_exec;
    Alcotest.test_case "broken level detected" `Quick
      test_broken_level_detected;
    prop_chain_on_random_traces;
  ]
