module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Prng = Tm_base.Prng
module Tstate = Tm_core.Tstate
module Mapping = Tm_core.Mapping
module Hierarchy = Tm_core.Hierarchy
module Condition = Tm_timed.Condition
module Reach = Tm_zones.Reach
module SR = Tm_systems.Signal_relay
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module Measure = Tm_sim.Measure
module D = Tm_core.Dummify
open Gen

let rp = SR.params_of_ints ~n:3 ~d1:1 ~d2:2
let impl = SR.impl rp

let random_exec seed steps =
  let prng = Prng.create seed in
  (Simulator.simulate ~steps
     ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
     impl)
    .Simulator.exec

let test_chain_structure () =
  (* n = 3: impl -> B2 -> B1 -> B0 -> B = 4 levels *)
  Alcotest.(check int) "levels" 4 (List.length (SR.chain rp))

let test_check_exec () =
  for seed = 0 to 20 do
    match
      Hierarchy.check_exec ~source:impl ~levels:(SR.chain rp)
        (random_exec seed 50)
    with
    | Ok () -> ()
    | Error e ->
        Alcotest.failf "seed %d failed at level %d (%s)" seed
          e.Hierarchy.level_index e.Hierarchy.level_name
  done

let test_check_exhaustive () =
  match Hierarchy.check_exhaustive ~source:impl ~levels:(SR.chain rp) () with
  | Ok st ->
      Alcotest.(check bool) "nonempty" true (st.Mapping.product_states > 0);
      Alcotest.(check bool) "not truncated" false st.Mapping.truncated
  | Error e ->
      Alcotest.failf "failed at level %d (%s)" e.Hierarchy.level_index
        e.Hierarchy.level_name

let test_n1_chain () =
  (* n = 1 degenerates to impl -> B0 -> B with no f_k levels *)
  let rp1 = SR.params_of_ints ~n:1 ~d1:1 ~d2:2 in
  Alcotest.(check int) "two levels" 2 (List.length (SR.chain rp1));
  match
    Hierarchy.check_exhaustive ~source:(SR.impl rp1) ~levels:(SR.chain rp1) ()
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "n=1 chain failed (%s)" e.Hierarchy.level_name

let test_larger_n_exec () =
  let rp6 = SR.params_of_ints ~n:6 ~d1:1 ~d2:3 in
  let impl6 = SR.impl rp6 in
  let prng = Prng.create 7 in
  let e =
    (Simulator.simulate ~steps:60
       ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
       impl6)
      .Simulator.exec
  in
  match Hierarchy.check_exec ~source:impl6 ~levels:(SR.chain rp6) e with
  | Ok () -> ()
  | Error err -> Alcotest.failf "n=6 failed (%s)" err.Hierarchy.level_name

(* Failure injection: break one middle mapping (wrong hop count) and
   check the failure is localized to that level. *)
let test_broken_level_detected () =
  let broken_f1 =
    let good = SR.f_k rp ~k:1 in
    {
      good with
      Mapping.contains =
        (fun s u ->
          (* claim one hop more than reality: a tighter image that the
             real successors fall outside of *)
          let flags = s.Tstate.base in
          if flags.(1) then
            Time.(
              u.Tstate.lt.(0)
              >= Time.add_q s.Tstate.lt.(2) (Rational.mul_int 3 rp.SR.d2))
          else good.Mapping.contains s u);
    }
  in
  let levels =
    List.mapi
      (fun i lv ->
        if i = 2 then { lv with Hierarchy.map = broken_f1 } else lv)
      (SR.chain rp)
  in
  match Hierarchy.check_exhaustive ~source:impl ~levels () with
  | Error e -> Alcotest.(check int) "failure at level 2" 2 e.Hierarchy.level_index
  | Ok _ -> Alcotest.fail "broken level must be detected"

(* The mapping chain proves the end-to-end bound abstractly; the
   packed-int zone kernel (running under LU widening) and the
   simulator are two independent oracles for the same claim.  The int
   kernel must certify exactly the chain's [n d1, n d2] window —
   refuting both half-unit tightenings, so agreement is on the tight
   interval — and every sampled execution must land inside it. *)
let test_int_kernel_agrees_with_chain () =
  let line = SR.line rp and rbm = SR.boundmap rp in
  let iv = SR.delay_interval rp in
  let u bounds =
    Condition.make ~name:"U0n"
      ~t_step:(fun _ a _ -> a = SR.Signal 0)
      ~bounds
      ~in_pi:(fun a -> a = SR.Signal rp.SR.n)
      ()
  in
  (* the int kernel rejects non-integer bounds outright, so the
     tightenings are whole units — still refuted, since the window is
     tight at integer granularity *)
  let one = q 1 in
  let hi_q = match Interval.hi iv with Time.Fin q -> q | Time.Inf -> assert false in
  let v bounds = Reach.Int.check_condition line rbm (u bounds) in
  Alcotest.(check bool) "int kernel verifies [n d1, n d2]" true
    (match v iv with Reach.Verified _ -> true | _ -> false);
  Alcotest.(check bool) "upper - 1 refuted" true
    (match
       v (Interval.make (Interval.lo iv) (Time.Fin (Rational.sub hi_q one)))
     with
    | Reach.Upper_violation _ -> true
    | _ -> false);
  Alcotest.(check bool) "lower + 1 refuted" true
    (match
       v (Interval.make (Rational.add (Interval.lo iv) one) (Interval.hi iv))
     with
    | Reach.Lower_violation _ -> true
    | _ -> false);
  let delays = ref [] in
  for seed = 0 to 29 do
    let prng = Prng.create seed in
    let run =
      Simulator.simulate ~steps:40
        ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
        impl
    in
    let seq = Simulator.project run in
    let at i =
      Measure.occurrence_times (fun a -> a = D.Base (SR.Signal i)) seq
    in
    match (at 0, at rp.SR.n) with
    | [ t0 ], [ tn ] -> delays := Rational.sub tn t0 :: !delays
    | _ -> ()
  done;
  match Measure.envelope !delays with
  | None -> Alcotest.fail "no complete relay traversals sampled"
  | Some env ->
      Alcotest.(check bool) "sampled delays within the verified window" true
        (Measure.within iv env)

let prop_chain_on_random_traces =
  check_holds "hierarchy holds on random traces"
    QCheck2.Gen.(int_range 0 150)
    (fun seed ->
      match
        Hierarchy.check_exec ~source:impl ~levels:(SR.chain rp)
          (random_exec seed 40)
      with
      | Ok () -> true
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "chain structure" `Quick test_chain_structure;
    Alcotest.test_case "check_exec" `Quick test_check_exec;
    Alcotest.test_case "check_exhaustive" `Quick test_check_exhaustive;
    Alcotest.test_case "n=1 chain" `Quick test_n1_chain;
    Alcotest.test_case "n=6 on a trace" `Quick test_larger_n_exec;
    Alcotest.test_case "broken level detected" `Quick
      test_broken_level_detected;
    Alcotest.test_case "int kernel + simulator agree with the chain" `Quick
      test_int_kernel_agrees_with_chain;
    prop_chain_on_random_traces;
  ]
