(* Regression tests pinning the semantics of Measure.envelope,
   Measure.merge and Measure.quantile (the issue-1 audit): the merged
   mean is the sample-count-weighted average, extremes take min/max,
   and quantiles are exact nearest-rank. *)

module Rational = Tm_base.Rational
module Interval = Tm_base.Interval
module Measure = Tm_sim.Measure
open Gen

let env_exn samples =
  match Measure.envelope samples with
  | Some e -> e
  | None -> Alcotest.fail "expected an envelope"

let test_envelope_empty () =
  Alcotest.(check bool) "empty" true (Measure.envelope [] = None)

let test_envelope_basic () =
  let e = env_exn [ q 2; q 1; q 3 ] in
  Alcotest.(check int) "count" 3 e.Measure.count;
  Alcotest.check rational_t "min" (q 1) e.Measure.min;
  Alcotest.check rational_t "max" (q 3) e.Measure.max;
  Alcotest.(check (float 1e-12)) "mean" 2.0 e.Measure.mean

let test_merge_weighted_mean () =
  (* 1 sample at 0 against 3 samples at 4: the merged mean must weight
     by sample count (3.0), not average the means (2.0). *)
  let a = env_exn [ q 0 ] in
  let b = env_exn [ q 4; q 4; q 4 ] in
  let m = Measure.merge a b in
  Alcotest.(check int) "count" 4 m.Measure.count;
  Alcotest.check rational_t "min" (q 0) m.Measure.min;
  Alcotest.check rational_t "max" (q 4) m.Measure.max;
  Alcotest.(check (float 1e-12)) "mean" 3.0 m.Measure.mean

let test_merge_commutes () =
  let a = env_exn [ q 1; q 5 ] in
  let b = env_exn [ q 2; q 2; q 9 ] in
  let ab = Measure.merge a b and ba = Measure.merge b a in
  Alcotest.(check int) "count" ab.Measure.count ba.Measure.count;
  Alcotest.check rational_t "min" ab.Measure.min ba.Measure.min;
  Alcotest.check rational_t "max" ab.Measure.max ba.Measure.max;
  Alcotest.(check (float 0.)) "mean" ab.Measure.mean ba.Measure.mean

let nonempty_samples =
  QCheck2.Gen.(list_size (int_range 1 30) rational)

let prop_merge_is_concat_envelope =
  check_holds "merge (envelope xs) (envelope ys) = envelope (xs @ ys)"
    QCheck2.Gen.(pair nonempty_samples nonempty_samples)
    (fun (xs, ys) ->
      let m = Measure.merge (env_exn xs) (env_exn ys) in
      let e = env_exn (xs @ ys) in
      m.Measure.count = e.Measure.count
      && Rational.equal m.Measure.min e.Measure.min
      && Rational.equal m.Measure.max e.Measure.max
      && Float.abs (m.Measure.mean -. e.Measure.mean) <= 1e-9)

let prop_mean_within_extremes =
  check_holds "envelope mean lies within [min, max]" nonempty_samples
    (fun xs ->
      let e = env_exn xs in
      Rational.to_float e.Measure.min -. 1e-9 <= e.Measure.mean
      && e.Measure.mean <= Rational.to_float e.Measure.max +. 1e-9)

let test_quantile_pinned () =
  let samples = [ q 1; q 2; q 3; q 4 ] in
  let check_q p expect =
    Alcotest.(check (option rational_t))
      (Printf.sprintf "p=%.2f" p)
      expect
      (Measure.quantile samples p)
  in
  (* nearest-rank: rank = min (n-1) (max 0 (ceil (p*n) - 1)) *)
  check_q 0.0 (Some (q 1));
  check_q 0.5 (Some (q 2));
  check_q 0.75 (Some (q 3));
  check_q 0.9 (Some (q 4));
  check_q 1.0 (Some (q 4));
  Alcotest.(check (option rational_t))
    "empty" None (Measure.quantile [] 0.5);
  Alcotest.(check (option rational_t))
    "odd median" (Some (q 2))
    (Measure.quantile [ q 3; q 1; q 2 ] 0.5)

let test_quantile_out_of_range () =
  Alcotest.check_raises "p > 1" (Invalid_argument "Measure.quantile")
    (fun () -> ignore (Measure.quantile [ q 1 ] 1.5))

let test_within () =
  let e = env_exn [ q 2; q 3 ] in
  Alcotest.(check bool) "inside" true
    (Measure.within (Interval.make (q 1) (Tm_base.Time.of_int 4)) e);
  Alcotest.(check bool) "outside" false
    (Measure.within (Interval.make (q 1) (Tm_base.Time.of_int 2)) e)

let suite =
  [
    Alcotest.test_case "envelope: empty" `Quick test_envelope_empty;
    Alcotest.test_case "envelope: basic" `Quick test_envelope_basic;
    Alcotest.test_case "merge: weighted mean" `Quick test_merge_weighted_mean;
    Alcotest.test_case "merge: commutes" `Quick test_merge_commutes;
    prop_merge_is_concat_envelope;
    prop_mean_within_extremes;
    Alcotest.test_case "quantile: pinned values" `Quick test_quantile_pinned;
    Alcotest.test_case "quantile: out of range" `Quick
      test_quantile_out_of_range;
    Alcotest.test_case "within" `Quick test_within;
  ]
