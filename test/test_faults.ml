(* Fault-injection and robustness-margin subsystem.

   The load-bearing properties are metamorphic: widening a boundmap
   only grows the timed language, so verification verdicts must be
   monotone in the perturbation magnitude, and the margin search built
   on that monotonicity must land exactly on the hand-computable
   thresholds of the paper's systems (failure detector: accuracy flips
   when the heartbeat upper bound h2 is pushed past the poll gap g1).
   Budget exhaustion is pinned as a first-class outcome: a run that
   gives up must never surface as Verified. *)

module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Prng = Tm_base.Prng
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module TA = Tm_core.Time_automaton
module Dummify = Tm_core.Dummify
module Simulator = Tm_sim.Simulator
module Reach = Tm_zones.Reach
module Perturb = Tm_faults.Perturb
module Crash = Tm_faults.Crash
module Margin = Tm_faults.Margin
module Inject = Tm_faults.Inject
module FD = Tm_systems.Failure_detector

let q = Gen.q
let qq = Gen.qq

(* The shared condition of the engine-differential suite: trigger and
   Pi are both action 0, bounds [0, 3]. *)
let cond0 =
  Condition.make ~name:"D"
    ~t_step:(fun _ a _ -> a = 0)
    ~bounds:(Interval.make Rational.zero (Time.Fin (q 3)))
    ~in_pi:(fun a -> a = 0)
    ()

(* ------------------------------------------------------------------ *)
(* Perturb: structural properties, driven by Gen.perturbation.         *)

let classes3 = [ "k0"; "k1"; "k2" ]

(* A fixed three-class boundmap the random perturbations act on. *)
let bm3 =
  Boundmap.of_list
    [
      ("k0", Interval.make (q 1) (Time.Fin (q 2)));
      ("k1", Interval.make Rational.zero (Time.Fin (qq 3 2)));
      ("k2", Interval.unbounded_above (q 2));
    ]

let perturb_preserves_classes =
  Gen.check_holds "perturb: class set preserved, intervals stay legal"
    ~count:300 ~print:Gen.print_perturbation
    (Gen.perturbation ~classes:classes3)
    (fun spec ->
      match Perturb.apply spec bm3 with
      | Error _ -> true (* validation refused it, nothing to check *)
      | Ok bm' ->
          Boundmap.classes bm' = Boundmap.classes bm3
          && List.for_all
               (fun (_, iv) ->
                 Rational.sign (Interval.lo iv) >= 0
                 && Time.le_q (Interval.lo iv) (Interval.hi iv))
               (Boundmap.to_list bm'))

let widen_grows_pointwise =
  Gen.check_holds "perturb: widen contains the original interval"
    ~count:200 ~print:Rational.to_string
    QCheck2.Gen.(
      map2 (fun n d -> Rational.make n d) (int_range 0 12) (int_range 1 4))
    (fun e ->
      match Perturb.apply (Perturb.widen e) bm3 with
      | Error _ -> false
      | Ok bm' ->
          List.for_all
            (fun (c, iv) ->
              let iv' = Boundmap.find bm' c in
              Rational.(Interval.lo iv' <= Interval.lo iv)
              && Time.(Interval.hi iv <= Interval.hi iv'))
            (Boundmap.to_list bm3))

(* ------------------------------------------------------------------ *)
(* Metamorphic: widening is monotone in the verification preorder.     *)

let status aut bm e =
  match Perturb.apply (Perturb.widen e) bm with
  | Error _ -> Margin.Unknown "inapplicable"
  | Ok bm' ->
      Margin.condition_status (module Reach.Default) ~limit:2000 aut cond0
        bm'

let widen_monotone =
  let gen =
    QCheck2.Gen.(
      triple Gen.boundmap_automaton
        (map2 (fun n d -> Rational.make n d) (int_range 0 6) (int_range 1 3))
        (map2 (fun n d -> Rational.make n d) (int_range 0 6) (int_range 1 3)))
  in
  Gen.check_holds
    "margin: verified at e2 implies verified at every e1 <= e2" ~count:80
    ~print:(fun (r, e1, e2) ->
      Printf.sprintf "%s e1=%s e2=%s" (Gen.print_raut r)
        (Rational.to_string e1) (Rational.to_string e2))
    gen
    (fun (r, ea, eb) ->
      let e1 = Rational.min ea eb and e2 = Rational.max ea eb in
      let aut, bm = Gen.build_boundmap_automaton r in
      match (status aut bm e1, status aut bm e2) with
      | Margin.Unsat, Margin.Sat -> false
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Exhaustion is never Verified (the budget discipline).               *)

let budget_never_verified =
  Gen.check_holds
    "budget: a run that could exhaust never reports Verified beyond it"
    ~count:150 ~print:Gen.print_raut Gen.boundmap_automaton (fun r ->
      let aut, bm = Gen.build_boundmap_automaton r in
      match Reach.Default.check_condition ~limit:6 aut bm cond0 with
      | Reach.Verified st -> st.Reach.zones <= 6
      | Reach.Unknown e ->
          (* partial stats must reflect a genuinely exhausted store *)
          e.Reach.partial.Reach.zones > 6
      | Reach.Lower_violation _ | Reach.Upper_violation _
      | Reach.Unsupported _ ->
          true
      | exception Reach.Open_system _ -> true)

(* ------------------------------------------------------------------ *)
(* Failure detector: the accuracy margin is exactly g1 - h2.           *)

let fd_margin_is_g1_minus_h2 () =
  (* Single-miss detector (m=1): a false suspicion needs a heartbeat
     gap > g1, so widening the HB class upper bound h2=2 by e breaks
     accuracy exactly when 2 + e >= g1 = 3 (at e = g1 - h2 the
     perturbed gap can equal the poll gap and fool the detector), i.e.
     e* = 1, supremum not attained. *)
  let p = FD.params_of_ints ~h1:1 ~h2:2 ~g1:3 ~g2:4 ~m:1 in
  let sys = FD.system p and bm = FD.boundmap p in
  let check bm' =
    Margin.invariant_status
      (module Reach.Default)
      sys FD.no_false_suspicion bm'
  in
  match
    Margin.search ~family:(Perturb.widen_class FD.hb_class) ~check bm
  with
  | Error m -> Alcotest.fail m
  | Ok v ->
      Alcotest.(check bool) "exact" true v.Margin.exact;
      Alcotest.check Gen.rational_t "threshold = g1 - h2" (q 1)
        v.Margin.threshold;
      Alcotest.(check bool) "open (refuted at e*)" false v.Margin.attained;
      (match v.Margin.refuted_at with
      | Some r -> Alcotest.check Gen.rational_t "refuted at g1 - h2" (q 1) r
      | None -> Alcotest.fail "expected a refutation bound")

let fd_margin_report_names_critical () =
  let p = FD.params_of_ints ~h1:1 ~h2:2 ~g1:3 ~g2:4 ~m:1 in
  let sys = FD.system p and bm = FD.boundmap p in
  let r =
    Margin.report ~subject:"fd accuracy"
      ~check:(fun bm' ->
        Margin.invariant_status
          (module Reach.Default)
          sys FD.no_false_suspicion bm')
      bm
  in
  match r.Margin.critical with
  | Some c -> Alcotest.(check string) "critical class" FD.hb_class c
  | None -> Alcotest.fail "expected a critical class"

(* ------------------------------------------------------------------ *)
(* Crash-stop transformer.                                             *)

(* One state, one action in class k0, self-loop. *)
let loop_raut =
  {
    Gen.ra_states = 1;
    ra_nclasses = 1;
    ra_delta = [| [| [ 0 ] |] |];
    ra_bounds = [| ((1, 1), Some (1, 1)) |];
  }

let crash_disables_killed () =
  let aut, bm = Gen.build_boundmap_automaton loop_raut in
  let caut = Crash.automaton ~kill:[ "k0" ] aut in
  let s0 = List.hd caut.Tm_ioa.Ioa.start in
  Alcotest.(check bool) "starts up" false (Crash.crashed s0);
  (match caut.Tm_ioa.Ioa.delta s0 Crash.Crash with
  | [ s1 ] ->
      Alcotest.(check bool) "crashed after Crash" true (Crash.crashed s1);
      Alcotest.(check (list int))
        "killed class disabled" []
        (List.map
           (fun s -> s.Crash.base)
           (caut.Tm_ioa.Ioa.delta s1 (Crash.Step 0)));
      Alcotest.(check int) "crash is one-shot" 0
        (List.length (caut.Tm_ioa.Ioa.delta s1 Crash.Crash))
  | other -> Alcotest.failf "Crash fired %d successors" (List.length other));
  (* base behavior untouched while up *)
  (match caut.Tm_ioa.Ioa.delta s0 (Crash.Step 0) with
  | [ s' ] -> Alcotest.(check bool) "still up" false (Crash.crashed s')
  | _ -> Alcotest.fail "up step lost");
  let bm' =
    Crash.boundmap ~crash_bounds:(Interval.unbounded_above Rational.zero) bm
  in
  Alcotest.(check bool) "crash class bounded" true
    (Boundmap.mem bm' Crash.fault_class)

let crash_rejects_bad_kill () =
  let aut, _ = Gen.build_boundmap_automaton loop_raut in
  Alcotest.check_raises "unknown class"
    (Invalid_argument "Crash.automaton: unknown class \"nope\"")
    (fun () -> ignore (Crash.automaton ~kill:[ "nope" ] aut))

(* Adversarial injection drives a live crash-transformed system into
   the crashed regime and the run still reaches the step limit — the
   dummy keeps executions infinite after the kill (Theorem 5.4). *)
let inject_reaches_crash () =
  let aut, bm = Gen.build_boundmap_automaton loop_raut in
  let caut, cbm =
    Crash.live ~kill:[ "k0" ]
      ~crash_bounds:(Interval.make (q 1) (Time.Fin (q 2)))
      aut bm
  in
  let taut = TA.of_boundmap caut cbm in
  let is_fault = function
    | Dummify.Base Crash.Crash -> true
    | Dummify.Base (Crash.Step _) | Dummify.Null -> false
  in
  let strategy =
    Inject.strategy ~is_fault ~fault_bias_pct:100 ~prng:(Prng.create 7)
      ~denominator:2 ~cap:(q 1) ()
  in
  let run = Simulator.simulate ~steps:30 ~strategy taut in
  Alcotest.(check bool) "ran to the step limit" true
    (run.Simulator.reason = Simulator.Step_limit);
  let final = Tm_ioa.Execution.last_state run.Simulator.exec in
  Alcotest.(check bool) "crash was injected" true
    (Crash.crashed final.Tm_core.Tstate.base)

(* ------------------------------------------------------------------ *)
(* Simulator watchdog.                                                 *)

let watchdog_stops_run () =
  let aut, bm = Gen.build_boundmap_automaton loop_raut in
  let taut = TA.of_boundmap aut bm in
  (* An already-expired deadline must stop the run deterministically
     before the first step, as Watchdog — not hang, not Step_limit. *)
  let run =
    Simulator.simulate ~deadline_s:(-1.0) ~steps:1_000_000
      ~strategy:Tm_sim.Strategy.eager taut
  in
  Alcotest.(check bool) "watchdog fired" true
    (run.Simulator.reason = Simulator.Watchdog);
  Alcotest.(check int) "no steps taken" 0
    (List.length run.Simulator.exec.Tm_ioa.Execution.moves)

let suite =
  [
    perturb_preserves_classes;
    widen_grows_pointwise;
    widen_monotone;
    budget_never_verified;
    Alcotest.test_case "fd: accuracy margin is exactly g1 - h2" `Quick
      fd_margin_is_g1_minus_h2;
    Alcotest.test_case "fd: report names HB as the critical class" `Quick
      fd_margin_report_names_critical;
    Alcotest.test_case "crash: kill disables exactly the killed class"
      `Quick crash_disables_killed;
    Alcotest.test_case "crash: unknown kill class rejected" `Quick
      crash_rejects_bad_kill;
    Alcotest.test_case "inject: biased strategy reaches the crash" `Quick
      inject_reaches_crash;
    Alcotest.test_case "simulator: watchdog stops an expired run" `Quick
      watchdog_stops_run;
  ]
