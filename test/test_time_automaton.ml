module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng
module Tstate = Tm_core.Tstate
module TA = Tm_core.Time_automaton
module Semantics = Tm_timed.Semantics
module RM = Tm_systems.Resource_manager
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
open Gen

let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1
let impl = RM.impl p
let spec = RM.spec p

let start = List.hd impl.TA.start

let test_initial_state () =
  (* time(A, b): TICK enabled at start -> Ft = c1, Lt = c2;
     LOCAL enabled (ELSE) -> Ft = 0, Lt = l *)
  Alcotest.(check rational_t) "Ct" Rational.zero start.Tstate.now;
  let i_tick = TA.cond_index impl "cond(TICK)" in
  let i_local = TA.cond_index impl "cond(LOCAL)" in
  Alcotest.(check rational_t) "Ft(TICK)" (q 2) start.Tstate.ft.(i_tick);
  Alcotest.(check time_t) "Lt(TICK)" (Time.of_int 3) start.Tstate.lt.(i_tick);
  Alcotest.(check rational_t) "Ft(LOCAL)" Rational.zero
    start.Tstate.ft.(i_local);
  Alcotest.(check time_t) "Lt(LOCAL)" (Time.of_int 1)
    start.Tstate.lt.(i_local)

let test_initial_spec_state () =
  (* time(A, {G1, G2}): G1 triggered at start, G2 not *)
  let u0 = List.hd spec.TA.start in
  Alcotest.(check rational_t) "Ft(G1)" (q 4) u0.Tstate.ft.(0);
  Alcotest.(check time_t) "Lt(G1)" (Time.of_int 7) u0.Tstate.lt.(0);
  Alcotest.(check rational_t) "Ft(G2) default" Rational.zero u0.Tstate.ft.(1);
  Alcotest.(check time_t) "Lt(G2) default" Time.Inf u0.Tstate.lt.(1)

let test_duplicate_condition_rejected () =
  Alcotest.(check bool) "duplicate name" true
    (match TA.make (RM.system p) [ RM.g1 p; RM.g1 p ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_window () =
  (* at start: ELSE may fire in [0, min(3,1)] = [0,1]; TICK window
     [2,1] is empty; GRANT disabled *)
  (match TA.window impl start RM.Else with
  | Some (lo, hi) ->
      Alcotest.(check rational_t) "else lo" Rational.zero lo;
      Alcotest.(check time_t) "else hi" (Time.of_int 1) hi
  | None -> Alcotest.fail "ELSE should have a window");
  Alcotest.(check bool) "TICK window empty" true
    (TA.window impl start RM.Tick = None);
  Alcotest.(check bool) "GRANT disabled" true
    (TA.window impl start RM.Grant = None)

let test_enabled_moves () =
  match TA.enabled_moves impl start with
  | [ (RM.Else, _, _) ] -> ()
  | ms -> Alcotest.fail (Printf.sprintf "expected only ELSE, got %d moves" (List.length ms))

let test_fire_updates_predictions () =
  (* fire ELSE at 1: LOCAL retriggers with Ft=1+0, Lt=1+1 *)
  match TA.fire impl start RM.Else (q 1) with
  | [ s1 ] ->
      let i_local = TA.cond_index impl "cond(LOCAL)" in
      let i_tick = TA.cond_index impl "cond(TICK)" in
      Alcotest.(check rational_t) "now" (q 1) s1.Tstate.now;
      Alcotest.(check rational_t) "Ft(LOCAL)" (q 1) s1.Tstate.ft.(i_local);
      Alcotest.(check time_t) "Lt(LOCAL)" (Time.of_int 2)
        s1.Tstate.lt.(i_local);
      (* TICK untouched *)
      Alcotest.(check rational_t) "Ft(TICK)" (q 2) s1.Tstate.ft.(i_tick);
      Alcotest.(check time_t) "Lt(TICK)" (Time.of_int 3)
        s1.Tstate.lt.(i_tick)
  | _ -> Alcotest.fail "expected one successor"

let test_fire_out_of_window () =
  Alcotest.(check (list bool)) "ELSE at 2 rejected (Lt(LOCAL)=1)" []
    (List.map (fun _ -> true) (TA.fire impl start RM.Else (q 2)));
  Alcotest.(check bool) "time before now rejected" true
    (TA.fire impl (Tstate.shift (q 5) start) RM.Else (q 4) = [])

let test_check_step () =
  match TA.fire impl start RM.Else (q 1) with
  | [ s1 ] ->
      Alcotest.(check bool) "valid step accepted" true
        (TA.check_step impl start (RM.Else, q 1) s1);
      Alcotest.(check bool) "wrong post rejected" false
        (TA.check_step impl start (RM.Else, q 1) start)
  | _ -> Alcotest.fail "expected one successor"

let test_fire_det () =
  let s1 = TA.fire_det impl start RM.Else (q 1) ~base_post:start.Tstate.base in
  Alcotest.(check bool) "fire_det succeeds" true (s1 <> None);
  Alcotest.(check bool) "fire_det wrong base post" true
    (TA.fire_det impl start RM.Else (q 1) ~base_post:((), 0) = None)

let test_max_constant () =
  Alcotest.(check rational_t) "max constant" (q 3) (TA.max_constant impl);
  Alcotest.(check rational_t) "spec max constant" (q 7)
    (TA.max_constant spec)

let random_run seed steps =
  let prng = Prng.create seed in
  Simulator.simulate ~steps
    ~strategy:(Strategy.random ~prng ~denominator:3 ~cap:(q 2))
    impl

let prop_simulated_is_execution =
  check_holds "simulated runs are executions of time(A,b)"
    QCheck2.Gen.(int_range 0 300)
    (fun seed -> TA.is_execution impl (random_run seed 30).Simulator.exec)

(* Lemma 3.2 part 2: projections of finite executions of time(A,U) are
   timed semi-executions of (A, U). *)
let prop_lemma_3_2 =
  check_holds "Lemma 3.2: project gives semi-executions"
    QCheck2.Gen.(int_range 0 300)
    (fun seed ->
      let seq = Simulator.project (random_run seed 40) in
      Semantics.semi_satisfies_all seq
        (Semantics.conds_of_boundmap (RM.system p) (RM.boundmap p))
      = []
      && Tm_ioa.Execution.is_execution (RM.system p) (Tm_timed.Tseq.ord seq))

let prop_project_keeps_times =
  check_holds "project keeps (action, time) pairs"
    QCheck2.Gen.(int_range 0 300)
    (fun seed ->
      let run = random_run seed 25 in
      let seq = Simulator.project run in
      List.for_all2
        (fun ((a1, t1), _) ((a2, t2), _) ->
          a1 = a2 && Rational.equal t1 t2)
        run.Simulator.exec.Tm_ioa.Execution.moves seq.Tm_timed.Tseq.moves)

let suite =
  [
    Alcotest.test_case "initial time(A,b) state" `Quick test_initial_state;
    Alcotest.test_case "initial requirements state" `Quick
      test_initial_spec_state;
    Alcotest.test_case "duplicate condition rejected" `Quick
      test_duplicate_condition_rejected;
    Alcotest.test_case "window" `Quick test_window;
    Alcotest.test_case "enabled_moves" `Quick test_enabled_moves;
    Alcotest.test_case "fire updates predictions" `Quick
      test_fire_updates_predictions;
    Alcotest.test_case "fire out of window" `Quick test_fire_out_of_window;
    Alcotest.test_case "check_step" `Quick test_check_step;
    Alcotest.test_case "fire_det" `Quick test_fire_det;
    Alcotest.test_case "max_constant" `Quick test_max_constant;
    prop_simulated_is_execution;
    prop_lemma_3_2;
    prop_project_keeps_times;
  ]
