module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng
module Ioa = Tm_ioa.Ioa
module Tseq = Tm_timed.Tseq
module Semantics = Tm_timed.Semantics
module D = Tm_core.Dummify
module SR = Tm_systems.Signal_relay
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module Measure = Tm_sim.Measure
open Gen

let rp = SR.params_of_ints ~n:4 ~d1:1 ~d2:2
let impl = SR.impl rp

let test_params () =
  let bad f = Alcotest.(check bool) "rejected" true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  bad (fun () -> SR.params_of_ints ~n:0 ~d1:1 ~d2:2);
  bad (fun () -> SR.params_of_ints ~n:2 ~d1:3 ~d2:2);
  bad (fun () -> SR.params ~n:2 ~d1:(q 0) ~d2:(q 0) ());
  (* d1 = 0 is fine *)
  ignore (SR.params_of_ints ~n:2 ~d1:0 ~d2:1)

let test_lemma_6_1 () =
  Alcotest.(check bool) "single flag ok" true
    (SR.lemma_6_1 [| false; true; false |]);
  Alcotest.(check bool) "no flags ok" true (SR.lemma_6_1 [| false; false |]);
  Alcotest.(check bool) "two flags bad" false
    (SR.lemma_6_1 [| true; true; false |])

let test_u_cond_bounds () =
  let u2 = SR.u_cond rp ~k:2 in
  Alcotest.(check interval_t) "U(2,4) bounds" (Tm_base.Interval.of_ints 2 4)
    u2.Tm_timed.Condition.bounds;
  Alcotest.(check bool) "bad k rejected" true
    (match SR.u_cond rp ~k:4 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let signal_times i seq =
  Measure.occurrence_times
    (fun a -> a = D.Base (SR.Signal i))
    seq

(* Theorem 6.4 measured: over random runs, when SIGNAL_0 occurs at t0
   and SIGNAL_n at tn, the delay is within [n d1, n d2], and SIGNAL_n
   occurs exactly once. *)
let prop_theorem_6_4_measured =
  check_holds "delays within [n d1, n d2]" QCheck2.Gen.(int_range 0 300)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:80
          ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
          impl
      in
      let seq = Simulator.project run in
      match (signal_times 0 seq, signal_times rp.SR.n seq) with
      | [ t0 ], [ tn ] ->
          Tm_base.Interval.mem (Rational.sub tn t0) (SR.delay_interval rp)
      | [ _t0 ], [] -> true (* run ended before propagation finished *)
      | [], [] -> true (* SIGNAL_0 never fired: allowed, b_u = inf *)
      | _ -> false (* duplicated signals: forbidden *))

let prop_traces_satisfy_all_u_k =
  check_holds "traces satisfy every U(k,n)" QCheck2.Gen.(int_range 0 200)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:80
          ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
          impl
      in
      let seq = Simulator.project run in
      List.for_all
        (fun k -> Semantics.semi_satisfies seq (SR.u_cond rp ~k) = [])
        [ 0; 1; 2; 3 ])

(* An eager dummified run where SIGNAL_0 fires immediately propagates in
   exactly n*d1. *)
let test_eager_run_minimal_delay () =
  let strategy =
    Strategy.prefer
      (fun a -> match a with D.Base _ -> true | D.Null -> false)
      Strategy.eager
  in
  let run = Simulator.simulate ~steps:60 ~strategy impl in
  let seq = Simulator.project run in
  match (signal_times 0 seq, signal_times rp.SR.n seq) with
  | [ t0 ], tn :: _ ->
      Alcotest.(check rational_t) "delay = n d1" (q 4) (Rational.sub tn t0)
  | _ -> Alcotest.fail "signals did not propagate"

let test_chain_sizes () =
  List.iter
    (fun n ->
      let p = SR.params_of_ints ~n ~d1:1 ~d2:2 in
      Alcotest.(check int)
        (Printf.sprintf "chain length n=%d" n)
        (n + 1)
        (List.length (SR.chain p)))
    [ 1; 2; 3; 5; 8 ]

let test_b_k_condition_order () =
  (* the mappings depend on this ordering *)
  let b1 = SR.b_k rp ~k:1 in
  Alcotest.(check (array string)) "B_1 condition names"
    [| "U(1,4)"; "cond(SIG_0)"; "cond(SIG_1)"; "cond(NULL)" |]
    b1.Tm_core.Time_automaton.cond_names

let test_undum_roundtrip () =
  let prng = Prng.create 5 in
  let run =
    Simulator.simulate ~steps:50
      ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
      impl
  in
  let dseq = Simulator.project run in
  let useq = D.tseq dseq in
  Alcotest.(check bool) "undum is an execution of the line" true
    (Tm_ioa.Execution.is_execution (SR.line rp) (Tseq.ord useq));
  Alcotest.(check bool) "undum has no NULLs and same signals" true
    (List.length useq.Tseq.moves
    = List.length
        (List.filter
           (fun ((a, _), _) -> a <> D.Null)
           dseq.Tseq.moves))

let suite =
  [
    Alcotest.test_case "params" `Quick test_params;
    Alcotest.test_case "Lemma 6.1 predicate" `Quick test_lemma_6_1;
    Alcotest.test_case "U(k,n) bounds" `Quick test_u_cond_bounds;
    Alcotest.test_case "eager run minimal delay" `Quick
      test_eager_run_minimal_delay;
    Alcotest.test_case "chain sizes" `Quick test_chain_sizes;
    Alcotest.test_case "B_k condition order" `Quick test_b_k_condition_order;
    Alcotest.test_case "undum roundtrip" `Quick test_undum_roundtrip;
    prop_theorem_6_4_measured;
    prop_traces_satisfy_all_u_k;
  ]
