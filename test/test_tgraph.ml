module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Hstore = Tm_base.Hstore
module Tstate = Tm_core.Tstate
module TA = Tm_core.Time_automaton
module Tgraph = Tm_core.Tgraph
module RM = Tm_systems.Resource_manager
open Gen

let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1
let impl = RM.impl p

let test_default_params () =
  let pr = Tgraph.default_params impl in
  Alcotest.(check int) "integer constants: unit grid" 1
    pr.Tgraph.denominator;
  Alcotest.(check rational_t) "clamp = 4 * max" (q 12) pr.Tgraph.clamp;
  (* fractional bounds coarsen the grid *)
  let p2 =
    RM.params ~k:2 ~c1:(qq 3 2) ~c2:(qq 7 3) ~l:(qq 1 2)
  in
  let pr2 = Tgraph.default_params (RM.impl p2) in
  Alcotest.(check int) "lcm of denominators" 6 pr2.Tgraph.denominator

let test_grid_moves () =
  let pr = Tgraph.default_params impl in
  let start = List.hd impl.TA.start in
  (* at start only ELSE is fireable, in [0,1]: grid times 0 and 1 *)
  match Tgraph.moves pr impl start with
  | [ (RM.Else, t0); (RM.Else, t1) ] ->
      Alcotest.(check rational_t) "first grid time" Rational.zero t0;
      Alcotest.(check rational_t) "second grid time" (q 1) t1
  | ms -> Alcotest.fail (Printf.sprintf "expected 2 moves, got %d" (List.length ms))

let test_build () =
  let g = Tgraph.build impl in
  Alcotest.(check bool) "nonempty" true (Tgraph.node_count g > 0);
  Alcotest.(check bool) "not truncated" false g.Tgraph.truncated;
  (* all nodes normalized: now = 0 *)
  Hstore.iter
    (fun _ s ->
      if not (Rational.equal s.Tstate.now Rational.zero) then
        Alcotest.fail "non-normalized node")
    g.Tgraph.nodes;
  (* all edges have source/target in range and nonneg times *)
  List.iter
    (fun (src, (_, t), dst) ->
      if src < 0 || src >= Tgraph.node_count g then Alcotest.fail "bad src";
      if dst < 0 || dst >= Tgraph.node_count g then Alcotest.fail "bad dst";
      if Rational.sign t < 0 then Alcotest.fail "negative edge time")
    g.Tgraph.edges

let test_build_deterministic () =
  let g1 = Tgraph.build impl and g2 = Tgraph.build impl in
  Alcotest.(check int) "same node count" (Tgraph.node_count g1)
    (Tgraph.node_count g2);
  Alcotest.(check int) "same edge count" (Tgraph.edge_count g1)
    (Tgraph.edge_count g2)

let test_truncation () =
  let pr = { (Tgraph.default_params impl) with Tgraph.limit = 3 } in
  let g = Tgraph.build ~params:pr impl in
  Alcotest.(check bool) "truncated" true g.Tgraph.truncated

let test_finer_grid_superset () =
  let pr = Tgraph.default_params impl in
  let fine = { pr with Tgraph.denominator = 2 } in
  let g1 = Tgraph.build ~params:pr impl in
  let g2 = Tgraph.build ~params:fine impl in
  Alcotest.(check bool) "finer grid has at least as many nodes" true
    (Tgraph.node_count g2 >= Tgraph.node_count g1)

let suite =
  [
    Alcotest.test_case "default params" `Quick test_default_params;
    Alcotest.test_case "grid moves" `Quick test_grid_moves;
    Alcotest.test_case "build" `Quick test_build;
    Alcotest.test_case "build deterministic" `Quick test_build_deterministic;
    Alcotest.test_case "truncation" `Quick test_truncation;
    Alcotest.test_case "finer grid superset" `Quick test_finer_grid_superset;
  ]
