(* Multi-core parallel exploration.

   The load-bearing property is bit-identical determinism: every entry
   point that takes [?domains] must produce the same verdict, the same
   reachable base-state set and the same deterministic counters
   (zones.stored, faults.margin_probes) at 1, 2 and 4 domains — the
   speculate-then-commit engine replays speculative results in exact
   sequential order, so parallelism may only change wall-clock time.
   The pool itself is checked for coverage, ordering, exception
   propagation and the single-active-pool fallback, and the
   single-domain ownership of hash-consing stores is enforced. *)

module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Prng = Tm_base.Prng
module Hstore = Tm_base.Hstore
module Boundmap = Tm_timed.Boundmap
module Condition = Tm_timed.Condition
module Reach = Tm_zones.Reach
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module Margin = Tm_faults.Margin
module Metrics = Tm_obs.Metrics
module Pool = Tm_par.Pool
module F = Tm_systems.Fischer
module RM = Tm_systems.Resource_manager

let q = Gen.q
let domain_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool: coverage, ordering, exceptions, nesting.                      *)

let pool_covers_all_indices () =
  Pool.run ~domains:3 (fun p ->
      let n = 1000 in
      let hits = Array.make n 0 in
      (* Each index is touched exactly once; chunks never overlap, so
         unsynchronized increments of distinct cells are safe. *)
      Pool.parallel_for p ~n (fun ~domain:_ i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (list int))
        "each index exactly once" []
        (List.filter (fun h -> h <> 1) (Array.to_list hits)))

let pool_map_preserves_order () =
  Pool.run ~domains:4 (fun p ->
      let xs = List.init 257 (fun i -> i) in
      Alcotest.(check (list int))
        "map_list order"
        (List.map (fun i -> (i * i) + 1) xs)
        (Pool.map_list p (fun i -> (i * i) + 1) xs);
      let a = Array.init 63 string_of_int in
      Alcotest.(check (array string))
        "map_array order"
        (Array.map (fun s -> s ^ "!") a)
        (Pool.map_array p (fun s -> s ^ "!") a))

exception Boom of int

let pool_propagates_exception () =
  Pool.run ~domains:2 (fun p ->
      match Pool.parallel_for p ~n:100 (fun ~domain:_ i ->
                if i = 37 then raise (Boom i))
      with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom 37 -> ()
      | exception Boom i -> Alcotest.failf "Boom %d (wanted 37)" i)

let pool_nested_create_is_inline () =
  Pool.run ~domains:3 (fun _outer ->
      (* only one real pool at a time: the inner one degrades to the
         inline size-1 pool and still computes correctly *)
      Pool.run ~domains:3 (fun inner ->
          Alcotest.(check int) "inner size" 1 (Pool.size inner);
          let total = ref 0 in
          Pool.parallel_for inner ~n:10 (fun ~domain:_ i ->
              total := !total + i);
          Alcotest.(check int) "inner sum" 45 !total))

let pool_metrics_merge () =
  let c = Metrics.counter "par_test.jobs" in
  let before = Metrics.value c in
  let n = 500 in
  Pool.run ~domains:3 (fun p ->
      Pool.parallel_for p ~n (fun ~domain:_ _ -> Metrics.incr c));
  Alcotest.(check int)
    "per-domain counter sinks merge by sum" (before + n) (Metrics.value c)

(* ------------------------------------------------------------------ *)
(* Differential: random automata agree at every domain count.          *)

let c_stored = Metrics.counter "zones.stored"

let reach_at aut bm d =
  let stored0 = Metrics.value c_stored in
  let st, states = Reach.Default.reachable ~domains:d aut bm in
  (st, List.sort compare states, Metrics.value c_stored - stored0)

let cond0 =
  Condition.make ~name:"D"
    ~t_step:(fun _ a _ -> a = 0)
    ~bounds:(Interval.make Rational.zero (Time.Fin (q 3)))
    ~in_pi:(fun a -> a = 0)
    ()

let reach_domain_invariance =
  Gen.check_holds
    "reach: stats, reachable set and zones.stored identical at 1/2/4 domains"
    ~count:30 ~print:Gen.print_raut Gen.boundmap_automaton (fun r ->
      let aut, bm = Gen.build_boundmap_automaton r in
      let base = reach_at aut bm 1 in
      List.for_all (fun d -> reach_at aut bm d = base) [ 2; 4 ])

let condition_domain_invariance =
  Gen.check_holds "check_condition: verdict identical at 1/2/4 domains"
    ~count:30 ~print:Gen.print_raut Gen.boundmap_automaton (fun r ->
      let aut, bm = Gen.build_boundmap_automaton r in
      let base = Reach.Default.check_condition ~domains:1 aut bm cond0 in
      List.for_all
        (fun d -> Reach.Default.check_condition ~domains:d aut bm cond0 = base)
        [ 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Margin reports and simulator batches.                               *)

let margin_domain_invariance () =
  let p = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:2 in
  let c_probes = Metrics.counter "faults.margin_probes" in
  let report d =
    let probes0 = Metrics.value c_probes in
    let r =
      Margin.report ~domains:d ~subject:"fischer n=2 mutex"
        ~check:(fun bm' ->
          Margin.invariant_status
            (module Reach.Default)
            (F.system p) F.mutual_exclusion bm')
        (F.boundmap p)
    in
    (r, Metrics.value c_probes - probes0)
  in
  let base = report 1 in
  List.iter
    (fun d ->
      if report d <> base then
        Alcotest.failf "margin report differs at %d domains" d)
    domain_counts

let batch_domain_invariance () =
  let p = RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1 in
  let impl = RM.impl p in
  let trace_of run =
    List.map fst (Simulator.project run).Tm_timed.Tseq.moves
  in
  let batch d =
    Simulator.batch ~domains:d ~runs:20 ~steps:40
      ~prng:(fun seed -> Prng.create seed)
      ~strategy:(fun prng -> Strategy.random ~prng ~denominator:4 ~cap:(q 1))
      impl
  in
  let base = Array.map trace_of (batch 1) in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "batch traces identical at %d domains" d)
        true
        (Array.map trace_of (batch d) = base))
    domain_counts

(* ------------------------------------------------------------------ *)
(* Budget discipline under parallelism.                                *)

let budget_discipline_parallel () =
  let p = F.params_of_ints ~n:3 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:2 in
  let outcome d =
    Reach.Default.check_condition ~limit:200 ~domains:d (F.system p)
      (F.boundmap p) (F.u_enter p)
  in
  let base = outcome 1 in
  (match base with
  | Reach.Unknown e ->
      Alcotest.(check bool)
        "partial stats populated" true
        (e.Reach.partial.Reach.zones > 0)
  | _ -> Alcotest.fail "limit 200 should exhaust the zone budget");
  List.iter
    (fun d ->
      match outcome d with
      | Reach.Verified _ ->
          Alcotest.failf "exhausted run surfaced as VERIFIED at %d domains" d
      | o ->
          Alcotest.(check bool)
            (Printf.sprintf "UNKNOWN with identical partial stats at %d" d)
            true (o = base))
    domain_counts

(* ------------------------------------------------------------------ *)
(* Hstore ownership and Boundmap ordering.                             *)

let hstore_cross_domain_raises () =
  let st = Hstore.create ~equal:String.equal ~hash:Hashtbl.hash 16 in
  ignore (Hstore.intern st "home");
  let raised =
    Domain.join
      (Domain.spawn (fun () ->
           match Hstore.intern st "away" with
           | _ -> false
           | exception Invalid_argument _ -> true))
  in
  Alcotest.(check bool) "cross-domain intern raises" true raised;
  (* the owning domain is still fine afterwards *)
  Alcotest.(check int) "owner still works" 2
    (ignore (Hstore.intern st "home2");
     Hstore.length st)

let boundmap_to_list_sorted () =
  let bm =
    Boundmap.of_list
      [
        ("zeta", Interval.make (q 1) (Time.Fin (q 2)));
        ("alpha", Interval.make Rational.zero (Time.Fin (q 1)));
        ("mid", Interval.unbounded_above (q 2));
      ]
  in
  Alcotest.(check (list string))
    "to_list sorted by class name" [ "alpha"; "mid"; "zeta" ]
    (List.map fst (Boundmap.to_list bm));
  Alcotest.(check (list string))
    "classes keeps declaration order" [ "zeta"; "alpha"; "mid" ]
    (Boundmap.classes bm)

let suite =
  [
    Alcotest.test_case "pool: covers all indices" `Quick
      pool_covers_all_indices;
    Alcotest.test_case "pool: map preserves order" `Quick
      pool_map_preserves_order;
    Alcotest.test_case "pool: propagates exceptions" `Quick
      pool_propagates_exception;
    Alcotest.test_case "pool: nested create is inline" `Quick
      pool_nested_create_is_inline;
    Alcotest.test_case "pool: metric sinks merge" `Quick pool_metrics_merge;
    reach_domain_invariance;
    condition_domain_invariance;
    Alcotest.test_case "margin: report identical at 1/2/4 domains" `Quick
      margin_domain_invariance;
    Alcotest.test_case "simulator: batch identical at 1/2/4 domains" `Quick
      batch_domain_invariance;
    Alcotest.test_case "budget: UNKNOWN, never VERIFIED, stats merge" `Quick
      budget_discipline_parallel;
    Alcotest.test_case "hstore: single-domain ownership enforced" `Quick
      hstore_cross_domain_raises;
    Alcotest.test_case "boundmap: to_list sorted" `Quick
      boundmap_to_list_sorted;
  ]
