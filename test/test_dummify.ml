module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Prng = Tm_base.Prng
module Ioa = Tm_ioa.Ioa
module Tseq = Tm_timed.Tseq
module Semantics = Tm_timed.Semantics
module Dummify = Tm_core.Dummify
module TA = Tm_core.Time_automaton
module SR = Tm_systems.Signal_relay
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
open Gen

let rp = SR.params_of_ints ~n:3 ~d1:1 ~d2:2
let line = SR.line rp
let dsys = SR.dsystem rp

let test_structure () =
  Alcotest.(check int) "alphabet grows by one"
    (List.length line.Ioa.alphabet + 1)
    (List.length dsys.Ioa.alphabet);
  Alcotest.(check bool) "NULL class present" true
    (List.mem Dummify.null_class dsys.Ioa.classes);
  Alcotest.(check bool) "NULL is output" true
    (dsys.Ioa.kind_of Dummify.Null = Ioa.Output);
  Alcotest.(check bool) "NULL always enabled" true
    (List.for_all
       (fun s -> Ioa.enabled dsys s Dummify.Null)
       (line.Ioa.start
       @ List.concat_map
           (fun s ->
             List.concat_map (fun a -> line.Ioa.delta s a) line.Ioa.alphabet)
           line.Ioa.start))

let test_null_identity () =
  let s0 = List.hd dsys.Ioa.start in
  match dsys.Ioa.delta s0 Dummify.Null with
  | [ s ] -> Alcotest.(check bool) "state unchanged" true (dsys.Ioa.equal_state s s0)
  | _ -> Alcotest.fail "NULL must be a self-loop"

let test_double_dummify_rejected () =
  Alcotest.(check bool) "already has NULL" true
    (match Dummify.automaton dsys with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_boundmap_lift () =
  let bm = SR.dboundmap rp in
  Alcotest.(check interval_t) "null bounds" (Interval.of_ints 1 2)
    (Tm_timed.Boundmap.find bm Dummify.null_class);
  Alcotest.(check rational_t) "existing class kept" (q 1)
    (Tm_timed.Boundmap.lower bm (SR.sig_class 1))

let test_condition_lift () =
  let base_cond =
    Tm_timed.Condition.make ~name:"c"
      ~t_step:(fun _ a _ -> a = SR.Signal 0)
      ~bounds:(Interval.of_ints 1 2)
      ~in_pi:(fun a -> a = SR.Signal 3)
      ()
  in
  let lifted = Dummify.condition base_cond in
  Alcotest.(check bool) "NULL not in Pi" false
    (lifted.Tm_timed.Condition.in_pi Dummify.Null);
  Alcotest.(check bool) "Base Pi preserved" true
    (lifted.Tm_timed.Condition.in_pi (Dummify.Base (SR.Signal 3)));
  let s0 = List.hd line.Ioa.start in
  Alcotest.(check bool) "NULL never triggers" false
    (lifted.Tm_timed.Condition.t_step s0 Dummify.Null s0);
  Alcotest.(check bool) "Base trigger preserved" true
    (lifted.Tm_timed.Condition.t_step s0 (Dummify.Base (SR.Signal 0)) s0)

(* Lemma 5.1: dummified simulations never deadlock. *)
let prop_no_deadlock =
  check_holds "Lemma 5.1: dummified runs never deadlock"
    QCheck2.Gen.(int_range 0 200)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:40
          ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
          (SR.impl rp)
      in
      run.Simulator.reason = Simulator.Step_limit)

(* The raw relay does deadlock. *)
let test_raw_relay_deadlocks () =
  let raw = TA.of_boundmap line (SR.boundmap rp) in
  let run = Simulator.simulate ~steps:1000 ~strategy:Strategy.eager raw in
  Alcotest.(check bool) "deadlocks" true
    (run.Simulator.reason = Simulator.Deadlock)

(* Lemma 5.2/5.3 flavour: undum of a dummified timed execution is a
   timed execution of the original system, and satisfies the original
   conditions iff the dummified one satisfies the lifted conditions. *)
let prop_undum =
  check_holds "Lemmas 5.2/5.3: undum preserves execution and conditions"
    QCheck2.Gen.(int_range 0 200)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:50
          ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 2))
          (SR.impl rp)
      in
      let dseq = Simulator.project run in
      let useq = Dummify.tseq dseq in
      let cond_u k = SR.u_cond rp ~k in
      let base_cond k =
        Tm_timed.Condition.make ~name:"u"
          ~t_step:(fun _ a _ -> a = SR.Signal k)
          ~bounds:(Interval.make
                     (Rational.mul_int (rp.SR.n - k) rp.SR.d1)
                     (Time.Fin (Rational.mul_int (rp.SR.n - k) rp.SR.d2)))
          ~in_pi:(fun a -> a = SR.Signal rp.SR.n)
          ()
      in
      Tm_ioa.Execution.is_execution line (Tseq.ord useq)
      && List.for_all
           (fun k ->
             (Semantics.semi_satisfies dseq (cond_u k) = [])
             = (Semantics.semi_satisfies useq (base_cond k) = []))
           [ 0; 1; 2 ])

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "NULL identity" `Quick test_null_identity;
    Alcotest.test_case "double dummify rejected" `Quick
      test_double_dummify_rejected;
    Alcotest.test_case "boundmap lift" `Quick test_boundmap_lift;
    Alcotest.test_case "condition lift" `Quick test_condition_lift;
    Alcotest.test_case "raw relay deadlocks" `Quick test_raw_relay_deadlocks;
    prop_no_deadlock;
    prop_undum;
  ]
