module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng
module Semantics = Tm_timed.Semantics
module Completeness = Tm_core.Completeness
module RM = Tm_systems.Resource_manager
module IM = Tm_systems.Interrupt_manager
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
module Measure = Tm_sim.Measure
open Gen

let p = IM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1
let impl = IM.impl p

let test_params () =
  (* l >= c1 is allowed here (unlike the polling manager) *)
  ignore (IM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:5);
  Alcotest.(check bool) "k=0 rejected" true
    (match IM.params_of_ints ~k:0 ~c1:2 ~c2:3 ~l:1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_intervals_match_polling_when_c1_gt_l () =
  let rp = RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1 in
  Alcotest.(check interval_t) "first identical"
    (RM.grant_interval_first rp) (IM.grant_interval_first p);
  Alcotest.(check interval_t) "between identical"
    (RM.grant_interval_between rp) (IM.grant_interval_between p)

let test_interval_formula_when_l_ge_c1 () =
  let p2 = IM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:3 in
  Alcotest.(check rational_t) "lower = (k-1) c1" (q 4)
    (Tm_base.Interval.lo (IM.grant_interval_between p2))

let test_no_else_action () =
  let sys = IM.system p in
  Alcotest.(check int) "two actions only" 2
    (List.length sys.Tm_ioa.Ioa.alphabet)

(* The eager strategy is NOT Zeno here: no always-enabled zero-lower
   class exists, so grants flow. *)
let test_eager_not_zeno () =
  let run = Simulator.simulate ~steps:100 ~strategy:Strategy.eager impl in
  let seq = Simulator.project run in
  Alcotest.(check bool) "time advances" true
    Rational.(Tm_timed.Tseq.t_end seq > q 10);
  match Measure.occurrence_times (fun a -> a = IM.Grant) seq with
  | t :: _ -> Alcotest.(check rational_t) "first grant at k c1" (q 6) t
  | [] -> Alcotest.fail "no grants"

let prop_traces_meet_requirements =
  check_holds "simulated traces satisfy G1, G2"
    QCheck2.Gen.(int_range 0 300)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:100
          ~strategy:(Strategy.random ~prng ~denominator:3 ~cap:(q 1))
          impl
      in
      Semantics.semi_satisfies_all (Simulator.project run)
        [ IM.g1 p; IM.g2 p ]
      = [])

(* Exact windows agree with the closed forms across a sweep, including
   the l >= c1 regime the polling manager cannot handle. *)
let test_exact_windows_sweep () =
  List.iter
    (fun (k, c1, c2, l) ->
      let p = IM.params_of_ints ~k ~c1 ~c2 ~l in
      let a =
        Completeness.analyze ~source:(IM.impl p)
          ~conds:[| IM.g1 p; IM.g2 p |] ()
      in
      let lo, hi = Completeness.start_bounds a ~cond:0 in
      let iv = IM.grant_interval_first p in
      Alcotest.(check time_t)
        (Printf.sprintf "first lo k=%d l=%d" k l)
        (Time.Fin (Tm_base.Interval.lo iv))
        lo;
      Alcotest.(check time_t)
        (Printf.sprintf "first hi k=%d l=%d" k l)
        (Tm_base.Interval.hi iv) hi;
      match
        Completeness.bounds_after a
          ~trigger:(fun _ act _ -> act = IM.Grant)
          ~cond:1
      with
      | Some (lo, hi) ->
          let iv = IM.grant_interval_between p in
          Alcotest.(check time_t)
            (Printf.sprintf "between lo k=%d l=%d" k l)
            (Time.Fin (Tm_base.Interval.lo iv))
            lo;
          Alcotest.(check time_t)
            (Printf.sprintf "between hi k=%d l=%d" k l)
            (Tm_base.Interval.hi iv) hi
      | None -> Alcotest.fail "no grants reachable")
    [ (1, 2, 3, 1); (2, 2, 3, 1); (3, 2, 3, 3); (2, 3, 4, 5) ]

let suite =
  [
    Alcotest.test_case "params" `Quick test_params;
    Alcotest.test_case "intervals match polling variant (c1 > l)" `Quick
      test_intervals_match_polling_when_c1_gt_l;
    Alcotest.test_case "interval formula when l >= c1" `Quick
      test_interval_formula_when_l_ge_c1;
    Alcotest.test_case "no ELSE action" `Quick test_no_else_action;
    Alcotest.test_case "eager not Zeno" `Quick test_eager_not_zeno;
    Alcotest.test_case "exact windows across a sweep" `Slow
      test_exact_windows_sweep;
    prop_traces_meet_requirements;
  ]
