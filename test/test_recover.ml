(* Checkpoint/resume, snapshot integrity, retry supervision and the
   paranoid self-checking kernel.

   The load-bearing property is kill-and-resume equivalence: a run
   interrupted at an arbitrary checkpoint boundary and resumed must
   produce the same verdict, the same reachable base-state set and the
   same zones.stored as the uninterrupted run — for both kernels and at
   1/2/4 domains.  Snapshot corruption of any kind must surface as a
   descriptive [Bad_snapshot], never as a wrong verdict. *)

module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module Condition = Tm_timed.Condition
module Reach = Tm_zones.Reach
module Metrics = Tm_obs.Metrics
module Snapshot = Tm_recover.Snapshot
module Supervisor = Tm_recover.Supervisor
module Paranoid = Tm_recover.Paranoid
module F = Tm_systems.Fischer

let q = Gen.q
let domain_counts = [ 1; 2; 4 ]
let c_stored = Metrics.counter "zones.stored"
let c_resumed = Metrics.counter "recover.resumed"
let c_written = Metrics.counter "recover.snapshot_written"
let c_selfcheck = Metrics.counter "recover.selfcheck_total"
let c_mismatch = Metrics.counter "recover.selfcheck_mismatch"
let c_degraded = Metrics.counter "recover.degraded"

let tmp_ck () = Filename.temp_file "tmtest" ".ckpt"
let rm_f p = try Sys.remove p with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Snapshot envelope.                                                  *)

let crc32_known_vector () =
  (* The IEEE CRC-32 check value: crc32("123456789") = 0xCBF43926. *)
  Alcotest.(check int)
    "check value" 0xCBF43926
    (Snapshot.crc32 (Bytes.of_string "123456789"))

let snapshot_roundtrip () =
  let path = tmp_ck () in
  Fun.protect ~finally:(fun () -> rm_f path) @@ fun () ->
  let payload = Bytes.of_string "the payload \x00\x01\xff bytes" in
  let w0 = Metrics.value c_written in
  Snapshot.write ~path ~fingerprint:"job-fp" ~info:"zones=7" payload;
  Alcotest.(check int) "write counted" (w0 + 1) (Metrics.value c_written);
  let fp, info, got = Snapshot.read path in
  Alcotest.(check string) "fingerprint" "job-fp" fp;
  Alcotest.(check string) "info" "zones=7" info;
  Alcotest.(check bytes) "payload" payload got;
  Alcotest.(check (pair string string))
    "inspect" ("job-fp", "zones=7") (Snapshot.inspect path);
  (* overwrite is atomic-by-rename: the second write fully replaces *)
  Snapshot.write ~path ~fingerprint:"job-fp2" ~info:"zones=9"
    (Bytes.of_string "other");
  let fp2, _, got2 = Snapshot.read path in
  Alcotest.(check string) "second fingerprint" "job-fp2" fp2;
  Alcotest.(check bytes) "second payload" (Bytes.of_string "other") got2

let expect_bad path substr =
  match Snapshot.read path with
  | _ -> Alcotest.failf "expected Bad_snapshot mentioning %S" substr
  | exception Snapshot.Bad_snapshot m ->
      let lower = String.lowercase_ascii m in
      if
        not
          (String.length lower >= String.length substr
          && (let found = ref false in
              for i = 0 to String.length lower - String.length substr do
                if String.sub lower i (String.length substr) = substr then
                  found := true
              done;
              !found))
      then Alcotest.failf "message %S does not mention %S" m substr

let write_sample path =
  Snapshot.write ~path ~fingerprint:"fingerprint-string" ~info:"zones=3"
    (Bytes.of_string "payload-bytes-here")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let snapshot_rejects_corruption () =
  let path = tmp_ck () in
  Fun.protect ~finally:(fun () -> rm_f path) @@ fun () ->
  write_sample path;
  let whole = read_file path in
  (* truncated anywhere: descriptive truncation error *)
  write_file path (String.sub whole 0 (String.length whole / 2));
  expect_bad path "truncated";
  write_file path (String.sub whole 0 3);
  expect_bad path "truncated";
  (* a flipped byte in the fingerprint region: checksum, not a
     different job *)
  let b = Bytes.of_string whole in
  Bytes.set b 17 (Char.chr (Char.code (Bytes.get b 17) lxor 0x40));
  write_file path (Bytes.to_string b);
  expect_bad path "checksum";
  (* a flipped payload byte: checksum *)
  let b = Bytes.of_string whole in
  let last = Bytes.length b - 2 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x01));
  write_file path (Bytes.to_string b);
  expect_bad path "checksum";
  (* wrong magic *)
  let b = Bytes.of_string whole in
  Bytes.set b 0 'X';
  write_file path (Bytes.to_string b);
  expect_bad path "magic";
  (* unsupported version (field sits right after the 8-byte magic) *)
  let b = Bytes.of_string whole in
  Bytes.set b 11 (Char.chr 99);
  write_file path (Bytes.to_string b);
  expect_bad path "version";
  (* trailing garbage *)
  write_file path (whole ^ "x");
  expect_bad path "trailing"

(* A short write the kernel never reported (power cut between write
   and fsync completing): whatever length survives, the published file
   must read as [Bad_snapshot] — never as a snapshot, never as a
   payload. *)
let snapshot_short_write_never_adopted () =
  let dir = Filename.dirname (tmp_ck ()) in
  let path = Filename.concat dir (Printf.sprintf "tm_short_%d.ckpt" (Unix.getpid ())) in
  Fun.protect
    ~finally:(fun () ->
      Snapshot.For_testing.reset ();
      rm_f path)
  @@ fun () ->
  write_sample path;
  let full = String.length (read_file path) in
  rm_f path;
  for keep = 0 to full - 1 do
    Snapshot.For_testing.truncate_write_to := Some keep;
    write_sample path;
    (match Snapshot.read path with
    | _ ->
        Alcotest.failf "short write of %d/%d bytes was adopted" keep full
    | exception Snapshot.Bad_snapshot _ -> ());
    rm_f path
  done;
  (* and a non-truncated write through the same hook still reads *)
  Snapshot.For_testing.truncate_write_to := Some full;
  write_sample path;
  let fp, _, _ = Snapshot.read path in
  Alcotest.(check string) "full write adopted" "fingerprint-string" fp

(* A crash between the temp write and the publishing rename (ENOSPC at
   fsync, media failure): the write raises, the temp file is unlinked,
   and a pre-existing snapshot at the target is untouched. *)
let snapshot_fail_before_rename () =
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tm_rename_%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let path = Filename.concat dir "job.ckpt" in
  Fun.protect
    ~finally:(fun () ->
      Snapshot.For_testing.reset ();
      Array.iter (fun f -> rm_f (Filename.concat dir f)) (Sys.readdir dir))
  @@ fun () ->
  write_sample path;
  let before = read_file path in
  Snapshot.For_testing.fail_before_rename := Some Exit;
  (match
     Snapshot.write ~path ~fingerprint:"other-job" ~info:"zones=99"
       (Bytes.of_string "would-clobber")
   with
  | () -> Alcotest.fail "write must re-raise the injected failure"
  | exception Exit -> ());
  Snapshot.For_testing.reset ();
  Alcotest.(check string) "old snapshot intact" before (read_file path);
  let leaked =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> f <> Filename.basename path)
  in
  Alcotest.(check (list string)) "no temp leaked" [] leaked

(* [sweep_temps] removes exactly the orphaned temp files — never the
   snapshot itself, never unrelated files. *)
let snapshot_sweep_temps () =
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tm_sweep_%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> rm_f (Filename.concat dir f)) (Sys.readdir dir))
  @@ fun () ->
  let path = Filename.concat dir "job.ckpt" in
  write_sample path;
  let mk name s =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc s;
    close_out oc
  in
  mk ".tmckpt123abc.tmp" "orphaned half-written envelope";
  mk ".tmckpt456def.tmp" "";
  mk "unrelated.txt" "keep me";
  Alcotest.(check int) "two orphans removed" 2 (Snapshot.sweep_temps dir);
  let left = Sys.readdir dir |> Array.to_list |> List.sort compare in
  Alcotest.(check (list string))
    "snapshot and unrelated files kept"
    [ "job.ckpt"; "unrelated.txt" ]
    left;
  Alcotest.(check int) "idempotent" 0 (Snapshot.sweep_temps dir);
  Alcotest.(check int) "missing dir is 0"
    0
    (Snapshot.sweep_temps (Filename.concat dir "no-such-subdir"))

(* ------------------------------------------------------------------ *)
(* Retry supervision.                                                  *)

let with_retries_backoff () =
  let sleeps = ref [] in
  let sleep d = sleeps := d :: !sleeps in
  let calls = ref 0 in
  let r =
    Supervisor.with_retries ~attempts:5 ~backoff_s:0.25 ~sleep
      (fun ~attempt ->
        incr calls;
        Alcotest.(check int) "attempt number" !calls attempt;
        if attempt < 3 then Supervisor.Transient "flaky"
        else Supervisor.Done "ok")
  in
  Alcotest.(check (result string string)) "result" (Ok "ok") r;
  Alcotest.(check int) "attempts used" 3 !calls;
  Alcotest.(check (list (float 1e-9)))
    "exponential backoff" [ 0.25; 0.5 ] (List.rev !sleeps)

let with_retries_exhausts () =
  let retried = ref [] in
  let r =
    Supervisor.with_retries ~attempts:3 ~backoff_s:0.
      ~sleep:(fun _ -> ())
      ~on_retry:(fun ~attempt ~delay_s:_ ~reason ->
        retried := (attempt, reason) :: !retried)
      (fun ~attempt -> Supervisor.Transient (Printf.sprintf "fail%d" attempt))
  in
  Alcotest.(check (result unit string)) "last reason" (Error "fail3") r;
  Alcotest.(check (list (pair int string)))
    "on_retry calls"
    [ (1, "fail1"); (2, "fail2") ]
    (List.rev !retried)

let jitter_schedule seed =
  let sleeps = ref [] in
  ignore
    (Supervisor.with_retries ~attempts:6 ~backoff_s:0.1
       ~jitter:(Tm_base.Prng.create seed) ~max_backoff_s:0.5
       ~sleep:(fun d -> sleeps := d :: !sleeps)
       (fun ~attempt:_ -> Supervisor.Transient "always"));
  List.rev !sleeps

let with_retries_jitter () =
  let a = jitter_schedule 7 in
  Alcotest.(check int) "five sleeps for six attempts" 5 (List.length a);
  (* deterministic: the schedule is a pure function of the seed *)
  Alcotest.(check (list (float 1e-12))) "replayable" a (jitter_schedule 7);
  (* decorrelated: a different seed spreads differently *)
  Alcotest.(check bool) "seeds decorrelate" false (a = jitter_schedule 8);
  (* every delay within [backoff_s, max_backoff_s], and the first draw
     within the decorrelated-jitter window [base, 3*base] *)
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "delay %.4f in bounds" d)
        true
        (d >= 0.1 && d <= 0.5))
    a;
  (match a with
  | d1 :: _ ->
      Alcotest.(check bool) "first draw <= 3*base" true (d1 <= 0.3 +. 1e-12)
  | [] -> assert false);
  (* without jitter, a cap still clamps the pure exponential *)
  let sleeps = ref [] in
  ignore
    (Supervisor.with_retries ~attempts:4 ~backoff_s:0.25 ~max_backoff_s:0.3
       ~sleep:(fun d -> sleeps := d :: !sleeps)
       (fun ~attempt:_ -> Supervisor.Transient "always"));
  Alcotest.(check (list (float 1e-9)))
    "clamped exponential" [ 0.25; 0.3; 0.3 ] (List.rev !sleeps)

let with_retries_validates () =
  (match
     Supervisor.with_retries ~backoff_s:0.5 ~max_backoff_s:0.1
       (fun ~attempt:_ -> Supervisor.Done ())
   with
  | _ -> Alcotest.fail "max_backoff_s < backoff_s accepted"
  | exception Invalid_argument _ -> ());
  (match
     Supervisor.with_retries ~attempts:0 (fun ~attempt:_ ->
         Supervisor.Done ())
   with
  | _ -> Alcotest.fail "attempts=0 accepted"
  | exception Invalid_argument _ -> ());
  match
    Supervisor.with_retries ~backoff_s:(-1.) (fun ~attempt:_ ->
        Supervisor.Done ())
  with
  | _ -> Alcotest.fail "negative backoff accepted"
  | exception Invalid_argument _ -> ()

let interrupt_flag_basics () =
  Supervisor.clear_interrupt ();
  Alcotest.(check bool) "clear" false (Supervisor.interrupt_requested ());
  Supervisor.request_interrupt ();
  Alcotest.(check bool) "set" true (Supervisor.interrupt_requested ());
  Supervisor.clear_interrupt ();
  Alcotest.(check bool) "cleared" false (Supervisor.interrupt_requested ())

(* ------------------------------------------------------------------ *)
(* Kill-and-resume differential.                                       *)

(* One uninterrupted run: stats, sorted reachable set, stored delta. *)
let oneshot (module E : Reach.S) aut bm d =
  let s0 = Metrics.value c_stored in
  let st, states = E.reachable ~domains:d aut bm in
  (st, List.sort compare states, Metrics.value c_stored - s0)

(* Exhaust the zone budget at [limit] with a checkpoint, then resume
   without a budget; measure the resumed leg's stored delta (which must
   match the one-shot delta: the restore replays the counters).  When
   the run fits under [limit] there is nothing to resume and the direct
   result is returned. *)
let interrupted_resumed (module E : Reach.S) aut bm d ~limit =
  let ck = tmp_ck () in
  Fun.protect ~finally:(fun () -> rm_f ck) @@ fun () ->
  let s0 = Metrics.value c_stored in
  match E.reachable ~limit ~domains:d ~checkpoint:(ck, 0) aut bm with
  | st, states ->
      (* fit under the limit: nothing to resume *)
      (st, List.sort compare states, Metrics.value c_stored - s0)
  | exception Reach.Out_of_budget e ->
      Alcotest.(check (option string))
        "exhaustion names the checkpoint" (Some ck) e.Reach.checkpoint;
      let r0 = Metrics.value c_resumed in
      let s0 = Metrics.value c_stored in
      let st, states = E.reachable ~domains:d ~resume:ck aut bm in
      Alcotest.(check int) "resume counted" (r0 + 1) (Metrics.value c_resumed);
      (st, List.sort compare states, Metrics.value c_stored - s0)

let kernels : (string * (module Reach.S)) list =
  [ ("fast", (module Reach.Default)); ("ref", (module Reach.Ref)) ]

let kill_resume_random =
  Gen.check_holds
    "kill+resume: verdict, reachable set and zones.stored equal one-shot \
     (both kernels, 1/2/4 domains)"
    ~count:12 ~print:Gen.print_raut Gen.boundmap_automaton (fun r ->
      let aut, bm = Gen.build_boundmap_automaton r in
      List.for_all
        (fun (_, k) ->
          let st, states, stored = oneshot k aut bm 1 in
          (* interrupt at a boundary roughly mid-search, and at the
             first boundary *)
          let limits = [ 1; (st.Reach.zones / 2) + 1 ] in
          List.for_all
            (fun limit ->
              List.for_all
                (fun d ->
                  let st', states', stored' =
                    interrupted_resumed k aut bm d ~limit
                  in
                  st' = st && states' = states && stored' = stored)
                domain_counts)
            limits)
        kernels)

(* The same discipline on a real system, checking the exact condition
   verdict and periodic snapshots along the way. *)
let fischer_cond_resume () =
  let p = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:2 in
  let sys = F.system p and bm = F.boundmap p in
  let cond = F.u_enter p in
  let base = Reach.Default.check_condition ~domains:1 sys bm cond in
  let full_zones =
    match base with
    | Reach.Verified st -> st.Reach.zones
    | _ -> Alcotest.fail "fischer n=2 U_enter should verify"
  in
  (* A budget at half the fixpoint always exhausts, whatever the
     widening mode stores in total (LU stores far fewer zones than
     max-constant, so a fixed count would not survive the ablation). *)
  let limit = (full_zones / 2) + 1 in
  let every = max 1 (limit / 4) in
  List.iter
    (fun (name, (module E : Reach.S)) ->
      List.iter
        (fun d ->
          let ck = tmp_ck () in
          Fun.protect ~finally:(fun () -> rm_f ck) @@ fun () ->
          (match
             E.check_condition ~limit ~domains:d ~checkpoint:(ck, every) sys
               bm cond
           with
          | Reach.Unknown e ->
              Alcotest.(check (option string))
                "checkpoint advertised" (Some ck) e.Reach.checkpoint
          | _ -> Alcotest.failf "%s d=%d: limit %d should exhaust" name d limit);
          match E.check_condition ~domains:d ~resume:ck sys bm cond with
          | o when o = base -> ()
          | _ -> Alcotest.failf "%s d=%d: resumed verdict differs" name d)
        domain_counts)
    kernels

let cooperative_interrupt_resume () =
  let p = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:2 in
  let sys = F.system p and bm = F.boundmap p in
  let base = oneshot (module Reach.Default) sys bm 1 in
  let ck = tmp_ck () in
  Fun.protect
    ~finally:(fun () ->
      Supervisor.clear_interrupt ();
      rm_f ck)
  @@ fun () ->
  Supervisor.request_interrupt ();
  (match Reach.Default.reachable ~checkpoint:(ck, 0) sys bm with
  | _ -> Alcotest.fail "interrupted run should not complete"
  | exception Reach.Out_of_budget e ->
      Alcotest.(check bool)
        "reason mentions interrupt" true
        (String.length e.Reach.reason >= 11
        && String.sub e.Reach.reason 0 11 = "interrupted");
      Alcotest.(check (option string))
        "checkpoint written" (Some ck) e.Reach.checkpoint);
  Supervisor.clear_interrupt ();
  let s0 = Metrics.value c_stored in
  let st, states = Reach.Default.reachable ~resume:ck sys bm in
  let bst, bstates, bstored = base in
  Alcotest.(check bool) "stats equal" true (st = bst);
  Alcotest.(check bool)
    "reachable set equal" true
    (List.sort compare states = bstates);
  Alcotest.(check int) "stored equal" bstored (Metrics.value c_stored - s0)

let completed_run_removes_checkpoint () =
  let p = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:2 in
  let sys = F.system p and bm = F.boundmap p in
  let ck = tmp_ck () in
  Fun.protect ~finally:(fun () -> rm_f ck) @@ fun () ->
  let w0 = Metrics.value c_written in
  let _ = Reach.Default.reachable ~checkpoint:(ck, 5) sys bm in
  Alcotest.(check bool)
    "periodic snapshots were written" true
    (Metrics.value c_written > w0);
  Alcotest.(check bool)
    "checkpoint removed on completion" false (Sys.file_exists ck)

let resume_rejects_wrong_job () =
  let p = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:2 in
  let sys = F.system p and bm = F.boundmap p in
  let ck = tmp_ck () in
  Fun.protect ~finally:(fun () -> rm_f ck) @@ fun () ->
  Snapshot.write ~path:ck ~fingerprint:"some-other-job" ~info:"zones=1"
    (Marshal.to_bytes 42 []);
  match Reach.Default.reachable ~resume:ck sys bm with
  | _ -> Alcotest.fail "foreign snapshot accepted"
  | exception Snapshot.Bad_snapshot m ->
      Alcotest.(check bool)
        "message names both jobs" true
        (String.length m > 0)

(* ------------------------------------------------------------------ *)
(* Paranoid self-checking kernel.                                      *)

let with_paranoid ~every ~corrupt f =
  Paranoid.set_every every;
  Paranoid.set_corrupt corrupt;
  Fun.protect
    ~finally:(fun () ->
      Paranoid.set_every 0;
      Paranoid.set_corrupt false)
    f

let paranoid_clean_agrees () =
  let p = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:2 in
  let sys = F.system p and bm = F.boundmap p in
  let cond = F.u_enter p in
  let base = Reach.Default.check_condition sys bm cond in
  with_paranoid ~every:1 ~corrupt:false @@ fun () ->
  let t0 = Metrics.value c_selfcheck and m0 = Metrics.value c_mismatch in
  let o = Reach.Paranoid.check_condition sys bm cond in
  Alcotest.(check bool) "verdict equals fast engine" true (o = base);
  Alcotest.(check bool)
    "pipelines were checked" true
    (Metrics.value c_selfcheck > t0);
  Alcotest.(check int) "no mismatches" m0 (Metrics.value c_mismatch)

let paranoid_detects_corruption () =
  let p = F.params_of_ints ~n:2 ~r:2 ~t:1 ~a:1 ~b:2 ~b2:3 ~e:2 in
  let sys = F.system p and bm = F.boundmap p in
  let cond = F.u_enter p in
  let base = Reach.Default.check_condition sys bm cond in
  with_paranoid ~every:1 ~corrupt:true @@ fun () ->
  let m0 = Metrics.value c_mismatch and d0 = Metrics.value c_degraded in
  let o = Reach.Paranoid.check_condition sys bm cond in
  Alcotest.(check bool)
    "degraded run still reports the correct verdict" true (o = base);
  Alcotest.(check bool)
    "mismatch recorded" true
    (Metrics.value c_mismatch > m0);
  Alcotest.(check int) "degraded once" (d0 + 1) (Metrics.value c_degraded)

(* ------------------------------------------------------------------ *)
(* Deadline granularity.                                               *)

(* An adversarially slow automaton: every successor computation burns
   ~10 ms, and the full space has hundreds of zones, so an uninterrupted
   run takes seconds.  A 50 ms deadline must stop the search after at
   most one in-flight zone expansion — well under a second. *)
let slow_automaton () =
  let module Ioa = Tm_ioa.Ioa in
  let n = 400 in
  {
    Ioa.name = "slow";
    start = [ 0 ];
    alphabet = [ 0 ];
    kind_of = (fun _ -> Ioa.Output);
    delta =
      (fun s a ->
        if a <> 0 then []
        else begin
          Unix.sleepf 0.01;
          [ (s + 1) mod n ]
        end);
    classes = [ "k" ];
    class_of = (fun _ -> Some "k");
    equal_state = Int.equal;
    hash_state = Hashtbl.hash;
    pp_state = Format.pp_print_int;
    equal_action = Int.equal;
    pp_action = Format.pp_print_int;
  }

let deadline_overshoot_bounded () =
  let aut = slow_automaton () in
  let bm =
    Tm_timed.Boundmap.of_list
      [ ("k", Interval.make (q 1) (Time.Fin (q 2))) ]
  in
  let t0 = Unix.gettimeofday () in
  (match Reach.Default.reachable ~deadline_s:0.05 aut bm with
  | _ -> Alcotest.fail "slow run should hit the deadline"
  | exception Reach.Out_of_budget e ->
      Alcotest.(check bool)
        "reason names the deadline" true
        (String.length e.Reach.reason >= 8
        && String.sub e.Reach.reason 0 8 = "deadline"));
  let elapsed = Unix.gettimeofday () -. t0 in
  (* one zone expansion here costs ~10 ms; allow generous CI slack but
     stay far below the multi-second uninterrupted run *)
  Alcotest.(check bool)
    (Printf.sprintf "stopped promptly (%.3f s)" elapsed)
    true (elapsed < 1.0)

let suite =
  [
    Alcotest.test_case "snapshot: crc32 check value" `Quick crc32_known_vector;
    Alcotest.test_case "snapshot: write/read/inspect round-trip" `Quick
      snapshot_roundtrip;
    Alcotest.test_case "snapshot: corruption rejected descriptively" `Quick
      snapshot_rejects_corruption;
    Alcotest.test_case "snapshot: short write never adopted" `Quick
      snapshot_short_write_never_adopted;
    Alcotest.test_case "snapshot: crash before rename leaks nothing" `Quick
      snapshot_fail_before_rename;
    Alcotest.test_case "snapshot: sweep removes only orphaned temps" `Quick
      snapshot_sweep_temps;
    Alcotest.test_case "retries: exponential backoff then success" `Quick
      with_retries_backoff;
    Alcotest.test_case "retries: exhaustion keeps last reason" `Quick
      with_retries_exhausts;
    Alcotest.test_case "retries: decorrelated jitter deterministic" `Quick
      with_retries_jitter;
    Alcotest.test_case "retries: invalid arguments rejected" `Quick
      with_retries_validates;
    Alcotest.test_case "supervisor: interrupt flag" `Quick
      interrupt_flag_basics;
    kill_resume_random;
    Alcotest.test_case "fischer: condition verdict survives kill+resume"
      `Quick fischer_cond_resume;
    Alcotest.test_case "interrupt: checkpoint then resume equals one-shot"
      `Quick cooperative_interrupt_resume;
    Alcotest.test_case "checkpoint: removed when the run completes" `Quick
      completed_run_removes_checkpoint;
    Alcotest.test_case "resume: foreign snapshot rejected" `Quick
      resume_rejects_wrong_job;
    Alcotest.test_case "paranoid: clean run agrees with fast" `Quick
      paranoid_clean_agrees;
    Alcotest.test_case "paranoid: injected corruption detected, degraded"
      `Quick paranoid_detects_corruption;
    Alcotest.test_case "deadline: overshoot bounded by one expansion" `Quick
      deadline_overshoot_bounded;
  ]
