module Rational = Tm_base.Rational
module Prng = Tm_base.Prng
module Ioa = Tm_ioa.Ioa
module Semantics = Tm_timed.Semantics
module Reach = Tm_zones.Reach
module RG = Tm_systems.Request_grant
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
open Gen

let p = RG.params_of_ints ~r1:2 ~r2:5 ~w1:1 ~w2:3

let test_params () =
  Alcotest.(check bool) "r2 < r1 rejected" true
    (match RG.params_of_ints ~r1:5 ~r2:2 ~w1:1 ~w2:3 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "w2 = 0 rejected" true
    (match RG.params_of_ints ~r1:1 ~r2:2 ~w1:0 ~w2:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_server_steps () =
  let sys = RG.system p in
  let s0 = List.hd sys.Ioa.start in
  (* REQ from idle -> pending *)
  (match sys.Ioa.delta s0 RG.Req with
  | [ ((), s1) ] -> (
      Alcotest.(check bool) "pending" true s1.RG.pending;
      Alcotest.(check bool) "not overloaded" false s1.RG.overloaded;
      (* second REQ -> overloaded, pending dropped *)
      match sys.Ioa.delta ((), s1) RG.Req with
      | [ ((), s2) ] ->
          Alcotest.(check bool) "dropped" false s2.RG.pending;
          Alcotest.(check bool) "overloaded" true s2.RG.overloaded
      | _ -> Alcotest.fail "second req")
  | _ -> Alcotest.fail "first req");
  (* RESP disabled when idle *)
  Alcotest.(check bool) "RESP disabled when idle" true
    (sys.Ioa.delta s0 RG.Resp = [])

let test_condition_trigger_shape () =
  let u = RG.u_response p in
  let idle = ((), { RG.pending = false; overloaded = false }) in
  let pending = ((), { RG.pending = true; overloaded = false }) in
  let over = ((), { RG.pending = false; overloaded = true }) in
  Alcotest.(check bool) "idle REQ triggers" true
    (u.Tm_timed.Condition.t_step idle RG.Req pending);
  Alcotest.(check bool) "overloaded REQ does not trigger" false
    (u.Tm_timed.Condition.t_step over RG.Req pending);
  Alcotest.(check bool) "overloaded state disables" true
    (u.Tm_timed.Condition.in_s over);
  (* technical conditions of Section 2.3 on a state sample *)
  match
    Tm_timed.Condition.well_formed_on u ~starts:[ idle ]
      ~steps:[ (idle, RG.Req, pending) ]
  with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_zone_verdicts () =
  let sys = RG.system p and bm = RG.boundmap p in
  (match Reach.check_condition sys bm (RG.u_response p) with
  | Reach.Verified _ -> ()
  | _ -> Alcotest.fail "with S must verify");
  match Reach.check_condition sys bm (RG.u_response_no_disable p) with
  | Reach.Upper_violation _ -> ()
  | _ -> Alcotest.fail "without S must be refuted"

let prop_traces_satisfy_with_s =
  check_holds "simulated traces satisfy U_response"
    QCheck2.Gen.(int_range 0 300)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:100
          ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 1))
          (RG.impl p)
      in
      Semantics.semi_satisfies (Simulator.project run) (RG.u_response p)
      = [])

(* The no-disable variant must be violated on SOME trace; find one with
   an adversarial strategy (request again as soon as possible). *)
let test_overload_realizable () =
  let strategy = Strategy.prefer (fun a -> a = RG.Req) Strategy.eager in
  let run = Simulator.simulate ~steps:60 ~strategy (RG.impl p) in
  let seq = Simulator.project run in
  Alcotest.(check bool) "no-disable condition violated on greedy trace"
    true
    (Semantics.semi_satisfies seq (RG.u_response_no_disable p) <> []);
  Alcotest.(check bool) "with S the same trace is fine" true
    (Semantics.semi_satisfies seq (RG.u_response p) = [])

let suite =
  [
    Alcotest.test_case "params" `Quick test_params;
    Alcotest.test_case "server steps" `Quick test_server_steps;
    Alcotest.test_case "condition trigger shape" `Quick
      test_condition_trigger_shape;
    Alcotest.test_case "zone verdicts" `Quick test_zone_verdicts;
    Alcotest.test_case "overload realizable" `Quick test_overload_realizable;
    prop_traces_satisfy_with_s;
  ]
