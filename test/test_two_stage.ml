module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Prng = Tm_base.Prng
module Semantics = Tm_timed.Semantics
module Mapping = Tm_core.Mapping
module Hierarchy = Tm_core.Hierarchy
module Completeness = Tm_core.Completeness
module Reach = Tm_zones.Reach
module TS = Tm_systems.Two_stage
module Simulator = Tm_sim.Simulator
module Strategy = Tm_sim.Strategy
open Gen

let p = TS.params_of_ints ~p1:1 ~p2:3 ~q1:1 ~q2:2 ~r1:2 ~r2:4
let impl = TS.impl p

let test_intervals () =
  Alcotest.(check interval_t) "end-to-end [3,6]"
    (Tm_base.Interval.of_ints 3 6)
    (TS.end_to_end_interval p)

let test_protocol () =
  let sys = TS.system p in
  (match sys.Tm_ioa.Ioa.delta TS.Idle TS.Start with
  | [ TS.Wait_mid ] -> ()
  | _ -> Alcotest.fail "start");
  Alcotest.(check bool) "Mid disabled when idle" true
    (sys.Tm_ioa.Ioa.delta TS.Idle TS.Mid = []);
  Alcotest.(check bool) "Done disabled when idle" true
    (sys.Tm_ioa.Ioa.delta TS.Idle TS.Done = [])

let all_conds = [ TS.u_start_mid p; TS.u_mid_done p; TS.u_end_to_end p ]

let test_zone_verdicts () =
  let sys = TS.system p and bm = TS.boundmap p in
  List.iter
    (fun c ->
      match Reach.check_condition sys bm c with
      | Reach.Verified _ -> ()
      | _ -> Alcotest.failf "%s should verify" c.Tm_timed.Condition.cname)
    all_conds;
  (* tightened end-to-end bounds refuted in both directions *)
  let tighten bounds =
    { (TS.u_end_to_end p) with Tm_timed.Condition.bounds }
  in
  (match
     Reach.check_condition sys bm
       (tighten (Tm_base.Interval.of_ints 3 5))
   with
  | Reach.Upper_violation _ -> ()
  | _ -> Alcotest.fail "upper 5 < 6 must be refuted");
  match
    Reach.check_condition sys bm (tighten (Tm_base.Interval.of_ints 4 6))
  with
  | Reach.Lower_violation _ -> ()
  | _ -> Alcotest.fail "lower 4 > 3 must be refuted"

let test_chain_exhaustive () =
  match Hierarchy.check_exhaustive ~source:impl ~levels:(TS.chain p) () with
  | Ok st ->
      Alcotest.(check bool) "nonempty" true (st.Mapping.product_states > 0)
  | Error e ->
      Alcotest.failf "chain failed at level %d (%s)" e.Hierarchy.level_index
        e.Hierarchy.level_name

let test_exact_window () =
  let a =
    Completeness.analyze ~source:impl ~conds:[| TS.u_end_to_end p |] ()
  in
  match
    Completeness.bounds_after a
      ~trigger:(fun _ act _ -> act = TS.Start)
      ~cond:0
  with
  | Some (lo, hi) ->
      Alcotest.(check time_t) "inf = q1+r1" (Time.of_int 3) lo;
      Alcotest.(check time_t) "sup = q2+r2" (Time.of_int 6) hi
  | None -> Alcotest.fail "no Start edges"

let test_broken_stage_mapping () =
  (* claim the second stage takes at most r2 - 1: too tight *)
  let broken =
    let good = TS.stage_mapping p in
    {
      good with
      Mapping.contains =
        (fun s u ->
          match s.Tm_core.Tstate.base with
          | TS.Wait_mid ->
              Time.(
                u.Tm_core.Tstate.lt.(0)
                >= Time.add_q s.Tm_core.Tstate.lt.(2)
                     (Rational.add p.TS.r2 Rational.one))
          | TS.Idle | TS.Wait_done -> good.Mapping.contains s u);
    }
  in
  let levels =
    [
      { Hierarchy.target = TS.intermediate p; map = TS.top_mapping p };
      { Hierarchy.target = TS.spec p; map = broken };
    ]
  in
  match Hierarchy.check_exhaustive ~source:impl ~levels () with
  | Error e -> Alcotest.(check int) "fails at stage level" 1 e.Hierarchy.level_index
  | Ok _ -> Alcotest.fail "broken stage mapping must be rejected"

let prop_traces_satisfy =
  check_holds "simulated traces satisfy all three conditions"
    QCheck2.Gen.(int_range 0 300)
    (fun seed ->
      let prng = Prng.create seed in
      let run =
        Simulator.simulate ~steps:80
          ~strategy:(Strategy.random ~prng ~denominator:2 ~cap:(q 1))
          impl
      in
      Semantics.semi_satisfies_all (Simulator.project run) all_conds = [])

let suite =
  [
    Alcotest.test_case "intervals" `Quick test_intervals;
    Alcotest.test_case "protocol" `Quick test_protocol;
    Alcotest.test_case "zone verdicts" `Quick test_zone_verdicts;
    Alcotest.test_case "hierarchy exhaustive" `Quick test_chain_exhaustive;
    Alcotest.test_case "exact end-to-end window" `Quick test_exact_window;
    Alcotest.test_case "broken stage mapping rejected" `Quick
      test_broken_stage_mapping;
    prop_traces_satisfy;
  ]
