module Rational = Tm_base.Rational
module Time = Tm_base.Time
module Interval = Tm_base.Interval
module TA = Tm_core.Time_automaton
module Refinement = Tm_core.Refinement
module Mapping = Tm_core.Mapping
module RM = Tm_systems.Resource_manager
module SR = Tm_systems.Signal_relay
module TS = Tm_systems.Two_stage
open Gen

let p = RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1

let test_true_claims_refine () =
  (* the paper's specs hold, so refinement must succeed without any
     user-supplied mapping *)
  (match Refinement.check ~source:(RM.impl p) ~target:(RM.spec p) () with
  | Ok st -> Alcotest.(check bool) "nonempty" true (st.Mapping.product_states > 0)
  | Error _ -> Alcotest.fail "manager refinement should hold");
  let sp = SR.params_of_ints ~n:3 ~d1:1 ~d2:2 in
  (match Refinement.check ~source:(SR.impl sp) ~target:(SR.spec sp) () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "relay refinement should hold");
  let tp = TS.params_of_ints ~p1:1 ~p2:3 ~q1:1 ~q2:2 ~r1:2 ~r2:4 in
  match Refinement.check ~source:(TS.impl tp) ~target:(TS.spec tp) () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "two-stage refinement should hold"

let tight_spec hi =
  TA.make (RM.system p)
    [
      Tm_timed.Condition.make ~name:"G1"
        ~t_start:(fun _ -> true)
        ~bounds:(Interval.make (q 6) hi)
        ~in_pi:(fun a -> a = RM.Grant)
        ();
    ]

let test_false_claims_refuted () =
  (* shaving the proved bound: no mapping can exist, and the checker
     finds the violation without being given one *)
  match Refinement.check ~source:(RM.impl p) ~target:(tight_spec (Time.of_int 9)) () with
  | Error (Mapping.Move_not_enabled _) -> ()
  | Error _ -> Alcotest.fail "expected a Move_not_enabled refutation"
  | Ok _ -> Alcotest.fail "false claim must be refuted"

let test_refinement_agrees_with_mapping () =
  (* on the exact proved bound, both the explicit Lemma 4.3 mapping and
     the mapping-free refinement succeed, exploring comparable spaces *)
  match
    ( Refinement.check ~source:(RM.impl p) ~target:(RM.spec p) (),
      Mapping.check_exhaustive ~source:(RM.impl p) ~target:(RM.spec p)
        (RM.mapping p) () )
  with
  | Ok r, Ok m ->
      Alcotest.(check int) "same product states" m.Mapping.product_states
        r.Mapping.product_states
  | _ -> Alcotest.fail "both should succeed"

let test_boundary_exact () =
  (* the exact bound refines; one grid step tighter does not *)
  (match Refinement.check ~source:(RM.impl p) ~target:(tight_spec (Time.of_int 10)) () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "[6,10] must refine");
  match
    Refinement.check ~source:(RM.impl p)
      ~target:(tight_spec (Time.Fin (qq 39 4)))
      ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "[6,39/4] must be refuted"

let suite =
  [
    Alcotest.test_case "true claims refine" `Quick test_true_claims_refine;
    Alcotest.test_case "false claims refuted" `Quick
      test_false_claims_refuted;
    Alcotest.test_case "agrees with the explicit mapping" `Quick
      test_refinement_agrees_with_mapping;
    Alcotest.test_case "boundary exactness" `Quick test_boundary_exact;
  ]
