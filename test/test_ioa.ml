module Ioa = Tm_ioa.Ioa
module RM = Tm_systems.Resource_manager

(* A tiny two-state toggle used in several structural tests. *)
type toggle_act = Flip | Ping

let toggle : (bool, toggle_act) Ioa.t =
  {
    Ioa.name = "toggle";
    start = [ false ];
    alphabet = [ Flip; Ping ];
    kind_of = (function Flip -> Ioa.Output | Ping -> Ioa.Input);
    delta =
      (fun s -> function
        | Flip -> [ not s ]
        | Ping -> [ s ]);
    classes = [ "FLIP" ];
    class_of = (function Flip -> Some "FLIP" | Ping -> None);
    equal_state = Bool.equal;
    hash_state = (fun b -> if b then 1 else 0);
    pp_state = (fun fmt b -> Format.fprintf fmt "%B" b);
    equal_action = ( = );
    pp_action =
      (fun fmt a ->
        Format.pp_print_string fmt
          (match a with Flip -> "flip" | Ping -> "ping"));
  }

let test_kinds () =
  Alcotest.(check string) "input" "input" (Ioa.kind_to_string Ioa.Input);
  Alcotest.(check bool) "input external" true (Ioa.is_external Ioa.Input);
  Alcotest.(check bool) "internal not external" false
    (Ioa.is_external Ioa.Internal);
  Alcotest.(check bool) "output locally controlled" true
    (Ioa.is_locally_controlled Ioa.Output);
  Alcotest.(check bool) "input not locally controlled" false
    (Ioa.is_locally_controlled Ioa.Input)

let test_enabled () =
  let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1 in
  let m = RM.manager p in
  Alcotest.(check bool) "grant disabled at start" false
    (Ioa.enabled m 2 RM.Grant);
  Alcotest.(check bool) "grant enabled at 0" true (Ioa.enabled m 0 RM.Grant);
  Alcotest.(check bool) "else enabled at start" true
    (Ioa.enabled m 2 RM.Else);
  Alcotest.(check bool) "else disabled at 0" false (Ioa.enabled m 0 RM.Else);
  Alcotest.(check int) "two actions enabled at start" 2
    (List.length (Ioa.enabled_actions m 2))

let test_classes () =
  let p = RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1 in
  let m = RM.manager p in
  Alcotest.(check int) "LOCAL members" 2
    (List.length (Ioa.class_members m RM.local_class));
  Alcotest.(check bool) "LOCAL enabled everywhere (grant xor else)" true
    (List.for_all (Ioa.class_enabled m RM.local_class) [ -1; 0; 1; 2 ])

let test_hide () =
  let sys = RM.system (RM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:1) in
  Alcotest.(check bool) "TICK internal after hide" true
    (sys.Ioa.kind_of RM.Tick = Ioa.Internal);
  Alcotest.(check bool) "GRANT still output" true
    (sys.Ioa.kind_of RM.Grant = Ioa.Output);
  Alcotest.(check int) "one external action" 1
    (List.length (Ioa.external_actions sys))

let test_action_sets () =
  Alcotest.(check int) "toggle locally controlled" 1
    (List.length (Ioa.locally_controlled_actions toggle));
  Alcotest.(check int) "toggle inputs" 1
    (List.length (Ioa.input_actions toggle))

let test_validate_ok () =
  match Ioa.validate toggle ~states:[ true; false ] with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_validate_bad_class () =
  let bad = { toggle with Ioa.class_of = (fun _ -> Some "NOPE") } in
  match Ioa.validate bad ~states:[ false ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected class error"

let test_validate_input_class () =
  let bad =
    { toggle with Ioa.class_of = (function _ -> Some "FLIP") }
  in
  match Ioa.validate bad ~states:[ false ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected input-with-class error"

let test_validate_input_enabled () =
  let bad =
    {
      toggle with
      Ioa.delta =
        (fun s -> function
          | Flip -> [ not s ]
          | Ping -> if s then [ s ] else []);
    }
  in
  match Ioa.validate bad ~states:[ false ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected input-enabledness error"

let test_validate_no_start () =
  let bad = { toggle with Ioa.start = [] } in
  match Ioa.validate bad ~states:[] with
  | Error "no start state" -> ()
  | _ -> Alcotest.fail "expected no-start error"

let test_step_exists () =
  Alcotest.(check bool) "flip step" true
    (Ioa.step_exists toggle false Flip true);
  Alcotest.(check bool) "flip wrong post" false
    (Ioa.step_exists toggle false Flip false)

let suite =
  [
    Alcotest.test_case "kinds" `Quick test_kinds;
    Alcotest.test_case "enabled/enabled_actions" `Quick test_enabled;
    Alcotest.test_case "classes" `Quick test_classes;
    Alcotest.test_case "hide" `Quick test_hide;
    Alcotest.test_case "action subsets" `Quick test_action_sets;
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "validate unknown class" `Quick test_validate_bad_class;
    Alcotest.test_case "validate input with class" `Quick
      test_validate_input_class;
    Alcotest.test_case "validate input enabledness" `Quick
      test_validate_input_enabled;
    Alcotest.test_case "validate no start" `Quick test_validate_no_start;
    Alcotest.test_case "step_exists" `Quick test_step_exists;
  ]
