let () =
  (* tests that drive a Workers pool directly make THIS binary the
     worker host: the guard must run before alcotest takes over *)
  Tm_serve.Workers.maybe_worker_main ();
  Alcotest.run "timed_mappings"
    [
      ("rational", Test_rational.suite);
      ("time", Test_time.suite);
      ("interval", Test_interval.suite);
      ("prng", Test_prng.suite);
      ("hstore", Test_hstore.suite);
      ("ioa", Test_ioa.suite);
      ("execution", Test_execution.suite);
      ("compose", Test_compose.suite);
      ("explore", Test_explore.suite);
      ("boundmap", Test_boundmap.suite);
      ("tseq", Test_tseq.suite);
      ("condition", Test_condition.suite);
      ("semantics", Test_semantics.suite);
      ("tstate", Test_tstate.suite);
      ("time_automaton", Test_time_automaton.suite);
      ("tgraph", Test_tgraph.suite);
      ("mapping", Test_mapping.suite);
      ("dummify", Test_dummify.suite);
      ("hierarchy", Test_hierarchy.suite);
      ("completeness", Test_completeness.suite);
      ("sim", Test_sim.suite);
      ("dbm", Test_dbm.suite);
      ("dbm_diff", Test_dbm_diff.suite);
      ("dbm_min", Test_dbm_min.suite);
      ("reach", Test_reach.suite);
      ("faults", Test_faults.suite);
      ("oracle", Test_oracle.suite);
      ("resource_manager", Test_resource_manager.suite);
      ("interrupt_manager", Test_interrupt_manager.suite);
      ("signal_relay", Test_signal_relay.suite);
      ("fischer", Test_fischer.suite);
      ("request_grant", Test_request_grant.suite);
      ("two_stage", Test_two_stage.suite);
      ("dot", Test_dot.suite);
      ("token_ring", Test_token_ring.suite);
      ("failure_detector", Test_failure_detector.suite);
      ("region", Test_region.suite);
      ("progress", Test_progress.suite);
      ("trace_io", Test_trace_io.suite);
      ("refinement", Test_refinement.suite);
      ("timed_compose", Test_timed_compose.suite);
      ("normalize", Test_normalize.suite);
      ("measure", Test_measure.suite);
      ("obs", Test_obs.suite);
      ("telemetry", Test_telemetry.suite);
      ("par", Test_par.suite);
      ("recover", Test_recover.suite);
      ("serve", Test_serve.suite);
    ]
