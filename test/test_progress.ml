module Progress = Tm_core.Progress
module TA = Tm_core.Time_automaton
module RM = Tm_systems.Resource_manager
module IM = Tm_systems.Interrupt_manager
module SR = Tm_systems.Signal_relay
module TR = Tm_systems.Token_ring
module FD = Tm_systems.Failure_detector
module TS = Tm_systems.Two_stage

(* Lemma 4.2 generalized: the running systems have neither deadlocks
   nor Zeno traps. *)
let test_live_systems () =
  let check name r =
    if not (Progress.ok r) then
      Alcotest.failf "%s: %a" name Progress.pp_report r
  in
  check "resource manager"
    (Progress.analyze (RM.impl (RM.params_of_ints ~k:3 ~c1:2 ~c2:3 ~l:1)));
  check "interrupt manager"
    (Progress.analyze (IM.impl (IM.params_of_ints ~k:2 ~c1:2 ~c2:3 ~l:3)));
  check "token ring"
    (Progress.analyze (TR.impl (TR.params_of_ints ~n:4 ~d1:1 ~d2:2)));
  check "failure detector"
    (Progress.analyze (FD.impl (FD.params_of_ints ~h1:1 ~h2:2 ~g1:2 ~g2:3 ~m:2)));
  check "two stage"
    (Progress.analyze
       (TS.impl (TS.params_of_ints ~p1:1 ~p2:3 ~q1:1 ~q2:2 ~r1:2 ~r2:4)));
  check "dummified relay"
    (Progress.analyze (SR.impl (SR.params_of_ints ~n:3 ~d1:1 ~d2:2)))

(* The raw (un-dummified) relay deadlocks once the signal has passed —
   the reason Section 5 exists. *)
let test_raw_relay_deadlocks () =
  let p = SR.params_of_ints ~n:2 ~d1:1 ~d2:2 in
  let raw = TA.of_boundmap (SR.line p) (SR.boundmap p) in
  let r = Progress.analyze raw in
  Alcotest.(check bool) "has deadlocks" true (r.Progress.deadlocked <> []);
  Alcotest.(check bool) "not ok" false (Progress.ok r)

(* A hand-built Zeno trap: a tick that may repeat arbitrarily fast,
   plus a condition demanding an impossible event by time 1 — after
   that deadline every continuation is pinned at t <= 1 by 4(a), so
   time can never diverge. *)
let test_zeno_trap_detected () =
  let toggle : (bool, [ `Tick ]) Tm_ioa.Ioa.t =
    {
      Tm_ioa.Ioa.name = "pinned";
      start = [ false ];
      alphabet = [ `Tick ];
      kind_of = (fun _ -> Tm_ioa.Ioa.Internal);
      delta = (fun s `Tick -> [ not s ]);
      classes = [ "T" ];
      class_of = (fun _ -> Some "T");
      equal_state = Bool.equal;
      hash_state = (fun b -> if b then 1 else 0);
      pp_state = (fun fmt b -> Format.fprintf fmt "%B" b);
      equal_action = ( = );
      pp_action = (fun fmt _ -> Format.pp_print_string fmt "tick");
    }
  in
  let impossible =
    Tm_timed.Condition.make ~name:"impossible"
      ~t_start:(fun _ -> true)
      ~bounds:(Tm_base.Interval.upper_only (Tm_base.Time.of_int 1))
      ~in_pi:(fun _ -> false)
      ()
  in
  let tick_cond =
    Tm_timed.Condition.make ~name:"tick"
      ~t_start:(fun _ -> true)
      ~t_step:(fun _ _ _ -> true)
      ~bounds:(Tm_base.Interval.of_ints 0 1)
      ~in_pi:(fun _ -> true)
      ()
  in
  let aut = TA.make toggle [ tick_cond; impossible ] in
  let r = Progress.analyze aut in
  Alcotest.(check bool) "trap found" false (Progress.ok r);
  Alcotest.(check bool) "specifically a Zeno trap or deadlock" true
    (r.Progress.zeno_trapped <> [] || r.Progress.deadlocked <> [])

let suite =
  [
    Alcotest.test_case "live systems are deadlock- and trap-free" `Quick
      test_live_systems;
    Alcotest.test_case "raw relay deadlocks" `Quick test_raw_relay_deadlocks;
    Alcotest.test_case "Zeno trap detected" `Quick test_zeno_trap_detected;
  ]
